// Weakened Grain key recovery with decomposition-set search: the analogue of
// the paper's Grain experiments (Figure 4 and the GrainK rows of Table 3).
//
// The program has two parts:
//
//  1. On a moderately weakened instance (part of the NFSR and part of the
//     LFSR unknown) it searches for a decomposition set with the tabu search
//     — the method the paper uses for Grain — and reports how the found set
//     splits between the NFSR and the LFSR; the paper's observation is that
//     the best sets live entirely in the LFSR.
//  2. On a heavily weakened instance (11 unknown state bits) it runs the
//     Table 3 protocol: predict the family-processing cost, process the
//     whole family, recover the state and compare.
//
// Run with:
//
//	go run ./examples/grainweak
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/paper-repro/pdsat-go/internal/crypto"
	"github.com/paper-repro/pdsat-go/internal/encoder"
	"github.com/paper-repro/pdsat-go/internal/montecarlo"
	"github.com/paper-repro/pdsat-go/internal/optimize"
	"github.com/paper-repro/pdsat-go/internal/solver"
	"github.com/paper-repro/pdsat-go/pdsat"
)

func main() {
	ctx := context.Background()

	// --- Part 1: decomposition-set search and the NFSR/LFSR split ---------
	searchInst, err := encoder.NewInstance(encoder.Grain(), encoder.Config{
		KeystreamLen: 80,
		KnownPrefix:  75, // first 75 NFSR cells known
		KnownSuffix:  55, // last 55 LFSR cells known -> 5 NFSR + 25 LFSR unknown
		Seed:         91,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search instance %s: %d unknown state bits\n", searchInst.Name, len(searchInst.UnknownStartVars()))

	searchEngine, err := pdsat.NewSession(pdsat.FromInstance(searchInst), pdsat.Config{
		Runner: pdsat.RunnerConfig{SampleSize: 15, Seed: 5, CostMetric: solver.CostPropagations},
		Search: optimize.Options{Seed: 5, MaxEvaluations: 70},
		Cores:  480,
	})
	if err != nil {
		log.Fatal(err)
	}
	outcome, err := searchEngine.SearchTabu(ctx)
	if err != nil {
		log.Fatal(err)
	}
	nfsr, lfsr := 0, 0
	for _, v := range outcome.Result.BestPoint.SortedVars() {
		isLFSR := false
		for i := crypto.GrainNFSRLen; i < crypto.GrainStateBits; i++ {
			if searchInst.StartVars[i] == v {
				isLFSR = true
				break
			}
		}
		if isLFSR {
			lfsr++
		} else {
			nfsr++
		}
	}
	fmt.Printf("tabu search visited %d points (%s)\n", outcome.Result.Evaluations, outcome.Result.Stop)
	fmt.Printf("best set: %d variables (NFSR %d, LFSR %d), F = %.4g propagations\n",
		outcome.Result.BestPoint.Count(), nfsr, lfsr, outcome.Result.BestValue)
	fmt.Println("(the paper's 69-variable Grain set lies entirely in the LFSR)")
	fmt.Println()

	// --- Part 2: Table 3 protocol on a heavily weakened instance ----------
	solveInst, err := encoder.NewInstance(encoder.Grain(), encoder.Config{
		KeystreamLen: 80,
		KnownSuffix:  149, // Grain149: 11 unknown state bits
		Seed:         92,
	})
	if err != nil {
		log.Fatal(err)
	}
	solveEngine, err := pdsat.NewSession(pdsat.FromInstance(solveInst), pdsat.Config{
		Runner: pdsat.RunnerConfig{SampleSize: 300, Seed: 5, CostMetric: solver.CostPropagations},
		Cores:  480,
	})
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := solveEngine.PredictAndSolve(ctx, solveInst.UnknownStartVars())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solve instance %s: %d unknown state bits\n", solveInst.Name, cmp.SetSize)
	fmt.Printf("predicted family cost:   %.4g propagations\n", cmp.Predicted1Core)
	fmt.Printf("measured family cost:    %.4g propagations (deviation %.1f%%)\n",
		cmp.MeasuredTotal, 100*montecarlo.RelativeDeviation(cmp.Predicted1Core, cmp.MeasuredTotal))
	fmt.Printf("state recovered: %v, reproduces keystream: %v\n", cmp.FoundSat, cmp.KeyValid)
}
