// A5/1 decomposition-set search: the analogue of the paper's Table 1 and
// Figures 1-2 on a weakened instance.
//
// The program estimates the hand-built "clocking control" decomposition set
// (the S1 of the paper) and then runs both metaheuristics — simulated
// annealing and tabu search — to find competing sets, printing the same kind
// of comparison the paper reports.
//
// Run with:
//
//	go run ./examples/a51search
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/paper-repro/pdsat-go/internal/expts"
)

func main() {
	ctx := context.Background()

	scale := expts.QuickScale()

	fmt.Println("searching A5/1 decomposition sets (this takes a minute or two)...")
	result, err := expts.RunA51(ctx, scale)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(result.Table1().String())
	fmt.Print(result.Figure1().String())
	fmt.Print(result.Figure2().String())

	best := result.S1
	for _, s := range []expts.SetReport{result.S2, result.S3} {
		if s.F < best.F {
			best = s
		}
	}
	fmt.Printf("best decomposition set: %s with F = %.4g %s\n", best.Name, best.F, scale.CostUnit())
}
