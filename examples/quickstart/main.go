// Quickstart: estimate and solve a partitioning of a weakened A5/1
// cryptanalysis instance.
//
// The program walks through the whole workflow of the paper on an instance
// small enough to finish in a few seconds:
//
//  1. generate a cryptanalysis SAT instance (secret state -> keystream ->
//     Tseitin-encoded circuit with keystream constraints),
//  2. evaluate the predictive function F for the starting decomposition set
//     (the unknown state bits) with the Monte Carlo method,
//  3. process the whole decomposition family in parallel and recover the
//     secret state, and
//  4. compare the measured total cost with the prediction.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/paper-repro/pdsat-go/internal/crypto"
	"github.com/paper-repro/pdsat-go/internal/encoder"
	"github.com/paper-repro/pdsat-go/internal/optimize"
	"github.com/paper-repro/pdsat-go/internal/solver"
	"github.com/paper-repro/pdsat-go/pdsat"
)

func main() {
	ctx := context.Background()

	// 1. Build the instance: A5/1 with 52 of the 64 state bits known, so 12
	// remain unknown and the decomposition family has 2^12 members.
	inst, err := encoder.NewInstance(encoder.A51(), encoder.Config{
		KeystreamLen: 48,
		KnownSuffix:  52,
		Seed:         2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance:  %s\n", inst.Name)
	fmt.Printf("variables: %d, clauses: %d\n", inst.CNF.NumVars, inst.CNF.NumClauses())
	fmt.Printf("keystream: %s\n", crypto.BitsToString(inst.Keystream))
	fmt.Printf("unknown state bits: %d\n\n", len(inst.UnknownStartVars()))

	engine, err := pdsat.NewSession(pdsat.FromInstance(inst), pdsat.Config{
		Runner: pdsat.RunnerConfig{
			SampleSize: 200,
			Seed:       7,
			CostMetric: solver.CostPropagations,
		},
		Search: optimize.Options{Seed: 7, MaxEvaluations: 10},
		Cores:  480,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Predictive function for the starting decomposition set.
	est, err := engine.EstimateStartSet(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predictive function F (1 core):   %.4g propagations\n", est.Estimate.Value)
	fmt.Printf("extrapolated to %d cores:        %.4g propagations\n\n", est.Cores, est.PerCores)

	// 3 + 4. Process the whole family and compare with the prediction.
	cmp, err := engine.PredictAndSolve(ctx, inst.UnknownStartVars())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured family cost:             %.4g propagations\n", cmp.MeasuredTotal)
	fmt.Printf("prediction vs measurement:        %.1f%% deviation\n", 100*cmp.Deviation)
	fmt.Printf("secret state recovered:           %v (keystream check: %v)\n", cmp.FoundSat, cmp.KeyValid)
}
