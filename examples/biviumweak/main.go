// Weakened Bivium key recovery: the analogue of one row of the paper's
// Table 3.
//
// A BiviumK-style instance (K state bits known) is generated, the predictive
// function of its unknown starting variables is computed with the Monte
// Carlo method, the whole decomposition family is processed by the
// leader/worker runner, and the measured cost is compared with the
// prediction.  Three instances are solved with the set estimated on the
// first one, exactly as in Section 4.4 of the paper.
//
// Run with:
//
//	go run ./examples/biviumweak
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/paper-repro/pdsat-go/internal/encoder"
	"github.com/paper-repro/pdsat-go/internal/montecarlo"
	"github.com/paper-repro/pdsat-go/internal/solver"
	"github.com/paper-repro/pdsat-go/pdsat"
)

func main() {
	ctx := context.Background()
	const (
		knownBits = 166 // Bivium166 in the paper's BiviumK notation
		instances = 3
	)

	var (
		prediction float64
		vars       = []int{}
	)
	fmt.Printf("Bivium%d: %d unknown state bits, %d instances\n\n", knownBits, 177-knownBits, instances)

	for i := 0; i < instances; i++ {
		inst, err := encoder.NewInstance(encoder.Bivium(), encoder.Config{
			KeystreamLen: 200,
			KnownSuffix:  knownBits,
			Seed:         int64(400 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		engine, err := pdsat.NewSession(pdsat.FromInstance(inst), pdsat.Config{
			Runner: pdsat.RunnerConfig{SampleSize: 300, Seed: 11, CostMetric: solver.CostPropagations},
			Cores:  480,
		})
		if err != nil {
			log.Fatal(err)
		}

		if i == 0 {
			est, eerr := engine.EstimateStartSet(ctx)
			if eerr != nil {
				log.Fatal(eerr)
			}
			prediction = est.Estimate.Value
			vars = make([]int, len(est.Vars))
			for j, v := range est.Vars {
				vars[j] = int(v)
			}
			fmt.Printf("decomposition set (|set|=%d): %v\n", len(vars), vars)
			fmt.Printf("predicted family cost (1 core):    %.4g propagations\n", prediction)
			fmt.Printf("predicted on 480 cores:            %.4g propagations\n\n", est.PerCores)
		}

		report, err := engine.SolveWithSet(ctx, inst.UnknownStartVars(), pdsat.SolveOptions{})
		if err != nil {
			log.Fatal(err)
		}
		ok := false
		if report.FoundSat {
			valid, err := inst.CheckRecoveredState(encoder.Bivium(), report.Model)
			ok = valid && err == nil
		}
		dev := montecarlo.RelativeDeviation(prediction, report.TotalCost)
		fmt.Printf("instance %d: family cost %.4g, to first SAT %.4g, key found=%v valid=%v, deviation from prediction %.1f%%\n",
			i+1, report.TotalCost, report.CostToFirstSat, report.FoundSat, ok, 100*dev)
	}
}
