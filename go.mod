module github.com/paper-repro/pdsat-go

go 1.24
