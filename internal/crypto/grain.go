package crypto

import (
	"fmt"
	"math/rand"

	"github.com/paper-repro/pdsat-go/internal/circuit"
)

// Grain models the Grain v1 keystream generator: an 80-bit NFSR and an
// 80-bit LFSR combined through the filter function h(x).  As in the paper
// the cryptanalysis circuit takes the 160-bit register state at the end of
// the initialization phase as its unknown input and produces 160 keystream
// bits; the key/IV initialization is available in the reference
// implementation.
type Grain struct {
	// B holds the NFSR cells b0..b79, S the LFSR cells s0..s79.
	B, S []bool
}

// Grain parameters.
const (
	// GrainNFSRLen and GrainLFSRLen are the register lengths.
	GrainNFSRLen = 80
	GrainLFSRLen = 80
	// GrainStateBits is the total number of state bits.
	GrainStateBits = GrainNFSRLen + GrainLFSRLen
	// GrainKeystreamLen is the keystream length used in the paper.
	GrainKeystreamLen = 160
	// GrainKeyBits and GrainIVBits are the key/IV lengths.
	GrainKeyBits = 80
	GrainIVBits  = 64
	// GrainInitRounds is the number of initialization rounds.
	GrainInitRounds = 160
)

// grainOutputTaps are the NFSR cells XORed into every keystream bit.
var grainOutputTaps = []int{1, 2, 4, 10, 31, 43, 56}

// NewGrainFromState creates a Grain generator from a 160-bit state
// (NFSR b0..b79 followed by LFSR s0..s79).
func NewGrainFromState(state []bool) (*Grain, error) {
	if len(state) != GrainStateBits {
		return nil, fmt.Errorf("crypto: Grain state must have %d bits, got %d", GrainStateBits, len(state))
	}
	return &Grain{
		B: append([]bool(nil), state[:GrainNFSRLen]...),
		S: append([]bool(nil), state[GrainNFSRLen:]...),
	}, nil
}

// NewGrainFromKeyIV creates a Grain generator from an 80-bit key and 64-bit
// IV and runs the 160 initialization rounds (during which the output bit is
// fed back into both registers and no keystream is produced).
func NewGrainFromKeyIV(key, iv []bool) (*Grain, error) {
	if len(key) != GrainKeyBits || len(iv) != GrainIVBits {
		return nil, fmt.Errorf("crypto: Grain needs %d key and %d IV bits", GrainKeyBits, GrainIVBits)
	}
	g := &Grain{B: append([]bool(nil), key...), S: make([]bool, GrainLFSRLen)}
	copy(g.S, iv)
	for i := GrainIVBits; i < GrainLFSRLen; i++ {
		g.S[i] = true // remaining LFSR cells filled with ones
	}
	for i := 0; i < GrainInitRounds; i++ {
		z := g.outputBit()
		fbL := g.lfsrFeedback() != z
		fbN := g.nfsrFeedback() != z
		g.shift(fbN, fbL)
	}
	return g, nil
}

// RandomGrainState returns a uniformly random 160-bit state.
func RandomGrainState(rng *rand.Rand) []bool {
	return randomBits(rng, GrainStateBits)
}

// State returns a copy of the 160-bit state (NFSR then LFSR).
func (g *Grain) State() []bool {
	out := make([]bool, 0, GrainStateBits)
	out = append(out, g.B...)
	out = append(out, g.S...)
	return out
}

// lfsrFeedback computes f: s80 = s62+s51+s38+s23+s13+s0.
func (g *Grain) lfsrFeedback() bool {
	s := g.S
	return s[62] != s[51] != s[38] != s[23] != s[13] != s[0]
}

// nfsrFeedback computes the nonlinear feedback g of Grain v1.
func (g *Grain) nfsrFeedback() bool {
	b := g.B
	v := g.S[0] != b[62] != b[60] != b[52] != b[45] != b[37] != b[33] != b[28] !=
		b[21] != b[14] != b[9] != b[0]
	v = v != (b[63] && b[60])
	v = v != (b[37] && b[33])
	v = v != (b[15] && b[9])
	v = v != (b[60] && b[52] && b[45])
	v = v != (b[33] && b[28] && b[21])
	v = v != (b[63] && b[45] && b[28] && b[9])
	v = v != (b[60] && b[52] && b[37] && b[33])
	v = v != (b[63] && b[60] && b[21] && b[15])
	v = v != (b[63] && b[60] && b[52] && b[45] && b[37])
	v = v != (b[33] && b[28] && b[21] && b[15] && b[9])
	v = v != (b[52] && b[45] && b[37] && b[33] && b[28] && b[21])
	return v
}

// h computes the filter function h(x0..x4) of Grain v1.
func grainH(x0, x1, x2, x3, x4 bool) bool {
	v := x1 != x4
	v = v != (x0 && x3)
	v = v != (x2 && x3)
	v = v != (x3 && x4)
	v = v != (x0 && x1 && x2)
	v = v != (x0 && x2 && x3)
	v = v != (x0 && x2 && x4)
	v = v != (x1 && x2 && x4)
	v = v != (x2 && x3 && x4)
	return v
}

// outputBit computes the keystream bit for the current state.
func (g *Grain) outputBit() bool {
	h := grainH(g.S[3], g.S[25], g.S[46], g.S[64], g.B[63])
	z := h
	for _, k := range grainOutputTaps {
		z = z != g.B[k]
	}
	return z
}

// shift advances both registers by one position with the given feedback
// bits.
func (g *Grain) shift(fbN, fbL bool) {
	copy(g.B, g.B[1:])
	g.B[GrainNFSRLen-1] = fbN
	copy(g.S, g.S[1:])
	g.S[GrainLFSRLen-1] = fbL
}

// Clock advances the generator one step and returns the keystream bit.
func (g *Grain) Clock() bool {
	z := g.outputBit()
	g.shift(g.nfsrFeedback(), g.lfsrFeedback())
	return z
}

// Keystream produces the next n keystream bits.
func (g *Grain) Keystream(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = g.Clock()
	}
	return out
}

// GrainKeystream is a convenience: keystream of length n from a state.
func GrainKeystream(state []bool, n int) ([]bool, error) {
	g, err := NewGrainFromState(state)
	if err != nil {
		return nil, err
	}
	return g.Keystream(n), nil
}

// BuildGrainCircuit builds a combinational circuit computing the first
// keystreamLen keystream bits of Grain v1 from the unknown 160-bit state
// (NFSR inputs b0..b79 first, then LFSR inputs s0..s79), matching the
// starting-variable layout of the paper (Figure 4).
func BuildGrainCircuit(keystreamLen int) *circuit.Circuit {
	c := circuit.New()
	b := make([]circuit.GateID, GrainNFSRLen)
	s := make([]circuit.GateID, GrainLFSRLen)
	for i := range b {
		b[i] = c.Input(fmt.Sprintf("b%d", i))
	}
	for i := range s {
		s[i] = c.Input(fmt.Sprintf("s%d", i))
	}

	for t := 0; t < keystreamLen; t++ {
		h := buildGrainH(c, s[3], s[25], s[46], s[64], b[63])
		terms := []circuit.GateID{h}
		for _, k := range grainOutputTaps {
			terms = append(terms, b[k])
		}
		z := c.Xor(terms...)
		c.MarkOutput(z, fmt.Sprintf("z_%d", t))

		fbL := c.Xor(s[62], s[51], s[38], s[23], s[13], s[0])
		fbN := buildGrainNFSRFeedback(c, b, s[0])

		copy(b, b[1:])
		b[GrainNFSRLen-1] = fbN
		copy(s, s[1:])
		s[GrainLFSRLen-1] = fbL
	}
	return c
}

func buildGrainH(c *circuit.Circuit, x0, x1, x2, x3, x4 circuit.GateID) circuit.GateID {
	return c.Xor(
		x1, x4,
		c.And2(x0, x3),
		c.And2(x2, x3),
		c.And2(x3, x4),
		c.And(x0, x1, x2),
		c.And(x0, x2, x3),
		c.And(x0, x2, x4),
		c.And(x1, x2, x4),
		c.And(x2, x3, x4),
	)
}

func buildGrainNFSRFeedback(c *circuit.Circuit, b []circuit.GateID, s0 circuit.GateID) circuit.GateID {
	return c.Xor(
		s0, b[62], b[60], b[52], b[45], b[37], b[33], b[28], b[21], b[14], b[9], b[0],
		c.And2(b[63], b[60]),
		c.And2(b[37], b[33]),
		c.And2(b[15], b[9]),
		c.And(b[60], b[52], b[45]),
		c.And(b[33], b[28], b[21]),
		c.And(b[63], b[45], b[28], b[9]),
		c.And(b[60], b[52], b[37], b[33]),
		c.And(b[63], b[60], b[21], b[15]),
		c.And(b[63], b[60], b[52], b[45], b[37]),
		c.And(b[33], b[28], b[21], b[15], b[9]),
		c.And(b[52], b[45], b[37], b[33], b[28], b[21]),
	)
}
