// Package crypto contains bit-level reference implementations and Boolean
// circuit models of the three keystream generators studied in the paper:
// A5/1, Bivium and Grain (v1).
//
// For each generator two artefacts are provided:
//
//   - a reference implementation operating on register states, used to
//     generate keystreams and to validate the circuit models, and
//   - a circuit builder producing a combinational circuit whose primary
//     inputs are the unknown register state at the start of keystream
//     generation and whose outputs are the first L keystream bits.  These
//     circuits are the Transalg-equivalent encodings on which the SAT
//     cryptanalysis instances of the paper are built (the key/IV
//     initialization phase is omitted, exactly as in the paper: the object
//     searched for is the post-initialization state).
package crypto

import (
	"fmt"
	"math/rand"

	"github.com/paper-repro/pdsat-go/internal/circuit"
)

// A51 models the GSM A5/1 keystream generator: three LFSRs of lengths 19, 22
// and 23 bits with majority-controlled irregular clocking.  The total state
// is 64 bits, which is also the secret searched for in the paper's
// cryptanalysis formulation (114 keystream bits observed).
type A51 struct {
	// R1, R2, R3 hold the register contents, least significant index = cell 0.
	R1, R2, R3 []bool
}

// A5/1 register lengths and tap/clocking positions.
const (
	A51R1Len = 19
	A51R2Len = 22
	A51R3Len = 23
	// A51StateBits is the total number of state (input) bits.
	A51StateBits = A51R1Len + A51R2Len + A51R3Len
	// A51KeystreamLen is the keystream length used in the paper (one GSM
	// burst).
	A51KeystreamLen = 114

	a51R1Clock = 8
	a51R2Clock = 10
	a51R3Clock = 10
)

var (
	a51R1Taps = []int{18, 17, 16, 13}
	a51R2Taps = []int{21, 20}
	a51R3Taps = []int{22, 21, 20, 7}
)

// NewA51FromState creates an A5/1 generator from a 64-bit state (R1 cells
// 0..18, then R2 cells 0..21, then R3 cells 0..22).
func NewA51FromState(state []bool) (*A51, error) {
	if len(state) != A51StateBits {
		return nil, fmt.Errorf("crypto: A5/1 state must have %d bits, got %d", A51StateBits, len(state))
	}
	g := &A51{
		R1: append([]bool(nil), state[:A51R1Len]...),
		R2: append([]bool(nil), state[A51R1Len:A51R1Len+A51R2Len]...),
		R3: append([]bool(nil), state[A51R1Len+A51R2Len:]...),
	}
	return g, nil
}

// RandomA51State returns a uniformly random 64-bit A5/1 state.
func RandomA51State(rng *rand.Rand) []bool {
	return randomBits(rng, A51StateBits)
}

// State returns the current 64-bit state.
func (g *A51) State() []bool {
	out := make([]bool, 0, A51StateBits)
	out = append(out, g.R1...)
	out = append(out, g.R2...)
	out = append(out, g.R3...)
	return out
}

func xorBits(reg []bool, taps []int) bool {
	v := false
	for _, t := range taps {
		v = v != reg[t]
	}
	return v
}

func shiftIn(reg []bool, fb bool) {
	copy(reg[1:], reg[:len(reg)-1])
	reg[0] = fb
}

// Clock advances the generator one step and returns the produced keystream
// bit.
func (g *A51) Clock() bool {
	c1, c2, c3 := g.R1[a51R1Clock], g.R2[a51R2Clock], g.R3[a51R3Clock]
	maj := (c1 && c2) || (c1 && c3) || (c2 && c3)
	if c1 == maj {
		fb := xorBits(g.R1, a51R1Taps)
		shiftIn(g.R1, fb)
	}
	if c2 == maj {
		fb := xorBits(g.R2, a51R2Taps)
		shiftIn(g.R2, fb)
	}
	if c3 == maj {
		fb := xorBits(g.R3, a51R3Taps)
		shiftIn(g.R3, fb)
	}
	return g.R1[A51R1Len-1] != g.R2[A51R2Len-1] != g.R3[A51R3Len-1]
}

// Keystream produces the next n keystream bits.
func (g *A51) Keystream(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = g.Clock()
	}
	return out
}

// A51Keystream is a convenience: keystream of length n from a 64-bit state.
func A51Keystream(state []bool, n int) ([]bool, error) {
	g, err := NewA51FromState(state)
	if err != nil {
		return nil, err
	}
	return g.Keystream(n), nil
}

// BuildA51Circuit builds a combinational circuit computing the first
// keystreamLen bits of A5/1 keystream from the 64 unknown state bits.
// Register cells are modelled with MUX gates selecting between "shifted" and
// "unchanged" according to the majority clocking.
func BuildA51Circuit(keystreamLen int) *circuit.Circuit {
	c := circuit.New()
	r1 := make([]circuit.GateID, A51R1Len)
	r2 := make([]circuit.GateID, A51R2Len)
	r3 := make([]circuit.GateID, A51R3Len)
	for i := range r1 {
		r1[i] = c.Input(fmt.Sprintf("r1_%d", i))
	}
	for i := range r2 {
		r2[i] = c.Input(fmt.Sprintf("r2_%d", i))
	}
	for i := range r3 {
		r3[i] = c.Input(fmt.Sprintf("r3_%d", i))
	}

	xorTaps := func(reg []circuit.GateID, taps []int) circuit.GateID {
		ids := make([]circuit.GateID, len(taps))
		for i, t := range taps {
			ids[i] = reg[t]
		}
		return c.Xor(ids...)
	}
	stepReg := func(reg []circuit.GateID, taps []int, move circuit.GateID) []circuit.GateID {
		fb := xorTaps(reg, taps)
		next := make([]circuit.GateID, len(reg))
		next[0] = c.Mux(move, fb, reg[0])
		for i := 1; i < len(reg); i++ {
			next[i] = c.Mux(move, reg[i-1], reg[i])
		}
		return next
	}

	for t := 0; t < keystreamLen; t++ {
		maj := c.Maj(r1[a51R1Clock], r2[a51R2Clock], r3[a51R3Clock])
		// Register moves iff its clocking bit equals the majority.
		move1 := c.Not(c.Xor2(r1[a51R1Clock], maj))
		move2 := c.Not(c.Xor2(r2[a51R2Clock], maj))
		move3 := c.Not(c.Xor2(r3[a51R3Clock], maj))
		r1 = stepReg(r1, a51R1Taps, move1)
		r2 = stepReg(r2, a51R2Taps, move2)
		r3 = stepReg(r3, a51R3Taps, move3)
		z := c.Xor(r1[A51R1Len-1], r2[A51R2Len-1], r3[A51R3Len-1])
		c.MarkOutput(z, fmt.Sprintf("z_%d", t))
	}
	return c
}

// randomBits returns n uniformly random bits.
func randomBits(rng *rand.Rand, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Intn(2) == 1
	}
	return out
}

// BitsToString renders a bit slice as a 0/1 string, useful in logs and
// examples.
func BitsToString(bits []bool) string {
	buf := make([]byte, len(bits))
	for i, b := range bits {
		if b {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}
