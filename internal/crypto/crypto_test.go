package crypto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestA51StateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	state := RandomA51State(rng)
	g, err := NewA51FromState(state)
	if err != nil {
		t.Fatal(err)
	}
	got := g.State()
	for i := range state {
		if got[i] != state[i] {
			t.Fatalf("state round trip failed at bit %d", i)
		}
	}
	if _, err := NewA51FromState(make([]bool, 10)); err == nil {
		t.Fatal("expected error for wrong state size")
	}
}

func TestA51KeystreamDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	state := RandomA51State(rng)
	k1, err := A51Keystream(state, 114)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := A51Keystream(state, 114)
	if err != nil {
		t.Fatal(err)
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatal("keystream is not deterministic")
		}
	}
	if len(k1) != 114 {
		t.Fatalf("keystream length = %d", len(k1))
	}
}

func TestA51KeystreamDependsOnState(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s1 := RandomA51State(rng)
	s2 := append([]bool(nil), s1...)
	s2[0] = !s2[0]
	k1, _ := A51Keystream(s1, 64)
	k2, _ := A51Keystream(s2, 64)
	same := true
	for i := range k1 {
		if k1[i] != k2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("flipping a state bit should eventually change the keystream")
	}
}

func TestA51CircuitMatchesReference(t *testing.T) {
	const ksLen = 32
	circ := BuildA51Circuit(ksLen)
	if circ.NumInputs() != A51StateBits {
		t.Fatalf("circuit inputs = %d, want %d", circ.NumInputs(), A51StateBits)
	}
	if circ.NumOutputs() != ksLen {
		t.Fatalf("circuit outputs = %d, want %d", circ.NumOutputs(), ksLen)
	}
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 20; iter++ {
		state := RandomA51State(rng)
		want, err := A51Keystream(state, ksLen)
		if err != nil {
			t.Fatal(err)
		}
		got, err := circ.Evaluate(state)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("iter %d: circuit and reference disagree at keystream bit %d", iter, i)
			}
		}
	}
}

func TestBiviumStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	state := RandomBiviumState(rng)
	g, err := NewBiviumFromState(state)
	if err != nil {
		t.Fatal(err)
	}
	got := g.State()
	for i := range state {
		if got[i] != state[i] {
			t.Fatal("state round trip failed")
		}
	}
	if _, err := NewBiviumFromState(make([]bool, 7)); err == nil {
		t.Fatal("expected error for wrong state size")
	}
}

func TestBiviumKeyIVInit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	key := randomBits(rng, BiviumKeyBits)
	iv := randomBits(rng, BiviumIVBits)
	g, err := NewBiviumFromKeyIV(key, iv)
	if err != nil {
		t.Fatal(err)
	}
	ks := g.Keystream(100)
	if len(ks) != 100 {
		t.Fatal("keystream length")
	}
	// Same key/IV must reproduce the same keystream.
	g2, _ := NewBiviumFromKeyIV(key, iv)
	ks2 := g2.Keystream(100)
	for i := range ks {
		if ks[i] != ks2[i] {
			t.Fatal("initialization is not deterministic")
		}
	}
	// Different key should diverge.
	key2 := append([]bool(nil), key...)
	key2[0] = !key2[0]
	g3, _ := NewBiviumFromKeyIV(key2, iv)
	ks3 := g3.Keystream(100)
	same := true
	for i := range ks {
		if ks[i] != ks3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different keys should give different keystreams")
	}
	if _, err := NewBiviumFromKeyIV(key[:10], iv); err == nil {
		t.Fatal("expected error for short key")
	}
}

func TestBiviumCircuitMatchesReference(t *testing.T) {
	const ksLen = 40
	circ := BuildBiviumCircuit(ksLen)
	if circ.NumInputs() != BiviumStateBits {
		t.Fatalf("circuit inputs = %d, want %d", circ.NumInputs(), BiviumStateBits)
	}
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 20; iter++ {
		state := RandomBiviumState(rng)
		want, err := BiviumKeystream(state, ksLen)
		if err != nil {
			t.Fatal(err)
		}
		got, err := circ.Evaluate(state)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("iter %d: circuit and reference disagree at bit %d", iter, i)
			}
		}
	}
}

func TestGrainStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	state := RandomGrainState(rng)
	g, err := NewGrainFromState(state)
	if err != nil {
		t.Fatal(err)
	}
	got := g.State()
	for i := range state {
		if got[i] != state[i] {
			t.Fatal("state round trip failed")
		}
	}
	if _, err := NewGrainFromState(make([]bool, 3)); err == nil {
		t.Fatal("expected error for wrong state size")
	}
}

func TestGrainKeyIVInit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	key := randomBits(rng, GrainKeyBits)
	iv := randomBits(rng, GrainIVBits)
	g, err := NewGrainFromKeyIV(key, iv)
	if err != nil {
		t.Fatal(err)
	}
	ks := g.Keystream(80)
	g2, _ := NewGrainFromKeyIV(key, iv)
	ks2 := g2.Keystream(80)
	for i := range ks {
		if ks[i] != ks2[i] {
			t.Fatal("initialization is not deterministic")
		}
	}
	if _, err := NewGrainFromKeyIV(key, iv[:3]); err == nil {
		t.Fatal("expected error for short IV")
	}
}

func TestGrainCircuitMatchesReference(t *testing.T) {
	const ksLen = 30
	circ := BuildGrainCircuit(ksLen)
	if circ.NumInputs() != GrainStateBits {
		t.Fatalf("circuit inputs = %d, want %d", circ.NumInputs(), GrainStateBits)
	}
	rng := rand.New(rand.NewSource(10))
	for iter := 0; iter < 15; iter++ {
		state := RandomGrainState(rng)
		want, err := GrainKeystream(state, ksLen)
		if err != nil {
			t.Fatal(err)
		}
		got, err := circ.Evaluate(state)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("iter %d: circuit and reference disagree at bit %d", iter, i)
			}
		}
	}
}

// Property: keystream generation from a state is a pure function of the
// state (no hidden global state), for all three generators.
func TestKeystreamPureFunctionProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandomA51State(rng)
		b := RandomBiviumState(rng)
		g := RandomGrainState(rng)
		ka1, _ := A51Keystream(a, 40)
		kb1, _ := BiviumKeystream(b, 40)
		kg1, _ := GrainKeystream(g, 40)
		ka2, _ := A51Keystream(a, 40)
		kb2, _ := BiviumKeystream(b, 40)
		kg2, _ := GrainKeystream(g, 40)
		for i := 0; i < 40; i++ {
			if ka1[i] != ka2[i] || kb1[i] != kb2[i] || kg1[i] != kg2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Keystreams should look balanced (not constant) — a sanity check against
// trivially broken feedback functions.
func TestKeystreamBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	count := func(bits []bool) int {
		n := 0
		for _, b := range bits {
			if b {
				n++
			}
		}
		return n
	}
	const n = 2000
	ka, _ := A51Keystream(RandomA51State(rng), n)
	kb, _ := BiviumKeystream(RandomBiviumState(rng), n)
	kg, _ := GrainKeystream(RandomGrainState(rng), n)
	for name, ks := range map[string][]bool{"a5/1": ka, "bivium": kb, "grain": kg} {
		ones := count(ks)
		if ones < n/4 || ones > 3*n/4 {
			t.Errorf("%s keystream looks badly unbalanced: %d ones out of %d", name, ones, n)
		}
	}
}

func TestBitsToString(t *testing.T) {
	if got := BitsToString([]bool{true, false, true}); got != "101" {
		t.Fatalf("BitsToString = %q", got)
	}
	if got := BitsToString(nil); got != "" {
		t.Fatalf("BitsToString(nil) = %q", got)
	}
}

func TestRandomStatesHaveCorrectSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	if len(RandomA51State(rng)) != A51StateBits {
		t.Fatal("A5/1 state size")
	}
	if len(RandomBiviumState(rng)) != BiviumStateBits {
		t.Fatal("Bivium state size")
	}
	if len(RandomGrainState(rng)) != GrainStateBits {
		t.Fatal("Grain state size")
	}
}

func TestA51CircuitSizeIsReasonable(t *testing.T) {
	circ := BuildA51Circuit(16)
	if circ.NumGates() == 0 || circ.NumGates() > 200000 {
		t.Fatalf("suspicious gate count %d", circ.NumGates())
	}
}
