package crypto

import (
	"fmt"
	"math/rand"

	"github.com/paper-repro/pdsat-go/internal/circuit"
)

// Bivium models the Bivium-B keystream generator (De Cannière's reduced
// Trivium with two registers of 93 and 84 cells, 177 state bits in total).
// The paper's cryptanalysis formulation searches for the 177-bit register
// state at the end of the initialization phase given 200 keystream bits, so
// the initialization phase itself is not modelled in the circuit; it is
// available in the reference implementation for completeness.
type Bivium struct {
	// S holds the 177 state cells s1..s177 (S[0] is s1).
	S []bool
}

// Bivium parameters.
const (
	// BiviumReg1Len is the length of the first register (cells s1..s93).
	BiviumReg1Len = 93
	// BiviumReg2Len is the length of the second register (cells s94..s177).
	BiviumReg2Len = 84
	// BiviumStateBits is the total number of state bits.
	BiviumStateBits = BiviumReg1Len + BiviumReg2Len
	// BiviumKeystreamLen is the keystream length used in the paper.
	BiviumKeystreamLen = 200
	// BiviumKeyBits and BiviumIVBits are the key/IV lengths used by the
	// initialization phase.
	BiviumKeyBits = 80
	BiviumIVBits  = 80
	// BiviumInitRounds is the number of initialization rounds.
	BiviumInitRounds = 708
)

// NewBiviumFromState creates a Bivium generator from a 177-bit state.
func NewBiviumFromState(state []bool) (*Bivium, error) {
	if len(state) != BiviumStateBits {
		return nil, fmt.Errorf("crypto: Bivium state must have %d bits, got %d", BiviumStateBits, len(state))
	}
	return &Bivium{S: append([]bool(nil), state...)}, nil
}

// NewBiviumFromKeyIV creates a Bivium generator from an 80-bit key and an
// 80-bit IV and runs the 708-round initialization phase (no keystream is
// produced during initialization).
func NewBiviumFromKeyIV(key, iv []bool) (*Bivium, error) {
	if len(key) != BiviumKeyBits || len(iv) != BiviumIVBits {
		return nil, fmt.Errorf("crypto: Bivium needs %d key and %d IV bits", BiviumKeyBits, BiviumIVBits)
	}
	s := make([]bool, BiviumStateBits)
	copy(s, key) // s1..s80 = key, s81..s93 = 0
	copy(s[BiviumReg1Len:], iv)
	g := &Bivium{S: s}
	for i := 0; i < BiviumInitRounds; i++ {
		g.Clock()
	}
	return g, nil
}

// RandomBiviumState returns a uniformly random 177-bit state.
func RandomBiviumState(rng *rand.Rand) []bool {
	return randomBits(rng, BiviumStateBits)
}

// State returns a copy of the current 177-bit state.
func (g *Bivium) State() []bool { return append([]bool(nil), g.S...) }

// cell returns s_i (1-based, as in the cipher specification).
func (g *Bivium) cell(i int) bool { return g.S[i-1] }

// Clock advances the generator one step and returns the keystream bit.
func (g *Bivium) Clock() bool {
	t1 := g.cell(66) != g.cell(93)
	t2 := g.cell(162) != g.cell(177)
	z := t1 != t2
	t1 = t1 != (g.cell(91) && g.cell(92)) != g.cell(171)
	t2 = t2 != (g.cell(175) && g.cell(176)) != g.cell(69)
	// Shift register 1: s1..s93 <- (t2, s1..s92)
	copy(g.S[1:BiviumReg1Len], g.S[0:BiviumReg1Len-1])
	g.S[0] = t2
	// Shift register 2: s94..s177 <- (t1, s94..s176)
	copy(g.S[BiviumReg1Len+1:], g.S[BiviumReg1Len:BiviumStateBits-1])
	g.S[BiviumReg1Len] = t1
	return z
}

// Keystream produces the next n keystream bits.
func (g *Bivium) Keystream(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = g.Clock()
	}
	return out
}

// BiviumKeystream is a convenience: keystream of length n from a state.
func BiviumKeystream(state []bool, n int) ([]bool, error) {
	g, err := NewBiviumFromState(state)
	if err != nil {
		return nil, err
	}
	return g.Keystream(n), nil
}

// BuildBiviumCircuit builds a combinational circuit computing the first
// keystreamLen keystream bits of Bivium from the unknown 177-bit state at
// the end of the initialization phase.  Inputs are named s1..s177; inputs
// 1..93 are the first register, inputs 94..177 the second, matching the
// "starting variables" of the paper (Figure 3).
func BuildBiviumCircuit(keystreamLen int) *circuit.Circuit {
	c := circuit.New()
	s := make([]circuit.GateID, BiviumStateBits)
	for i := range s {
		s[i] = c.Input(fmt.Sprintf("s%d", i+1))
	}
	cell := func(i int) circuit.GateID { return s[i-1] } // 1-based access
	for t := 0; t < keystreamLen; t++ {
		t1 := c.Xor2(cell(66), cell(93))
		t2 := c.Xor2(cell(162), cell(177))
		z := c.Xor2(t1, t2)
		c.MarkOutput(z, fmt.Sprintf("z_%d", t))
		nt1 := c.Xor(t1, c.And2(cell(91), cell(92)), cell(171))
		nt2 := c.Xor(t2, c.And2(cell(175), cell(176)), cell(69))
		next := make([]circuit.GateID, BiviumStateBits)
		next[0] = nt2
		copy(next[1:BiviumReg1Len], s[0:BiviumReg1Len-1])
		next[BiviumReg1Len] = nt1
		copy(next[BiviumReg1Len+1:], s[BiviumReg1Len:BiviumStateBits-1])
		s = next
	}
	return c
}
