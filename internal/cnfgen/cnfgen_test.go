package cnfgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

func TestRandomKSATParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f, err := RandomKSAT(rng, 3, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 50 {
		t.Fatalf("clauses = %d", f.NumClauses())
	}
	for _, c := range f.Clauses {
		if len(c) != 3 {
			t.Fatalf("clause width %d", len(c))
		}
	}
	for _, bad := range [][3]int{{0, 5, 5}, {3, 0, 5}, {3, 5, -1}} {
		if _, err := RandomKSAT(rng, bad[0], bad[1], bad[2]); err == nil {
			t.Fatalf("expected error for %v", bad)
		}
	}
}

func TestRandom3SATRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f, err := Random3SAT(rng, 50, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 200 {
		t.Fatalf("clauses = %d, want 200", f.NumClauses())
	}
}

func TestPigeonholeSatisfiability(t *testing.T) {
	sat, err := Pigeonhole(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res := solver.NewDefault(sat).Solve(); res.Status != solver.Sat {
		t.Fatalf("PHP(4,4) should be SAT, got %v", res.Status)
	}
	unsat, err := Pigeonhole(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res := solver.NewDefault(unsat).Solve(); res.Status != solver.Unsat {
		t.Fatalf("PHP(5,4) should be UNSAT, got %v", res.Status)
	}
	if _, err := Pigeonhole(0, 3); err == nil {
		t.Fatal("expected error for zero pigeons")
	}
}

func TestParityChain(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16} {
		for _, parity := range []bool{false, true} {
			f, err := ParityChain(n, parity)
			if err != nil {
				t.Fatal(err)
			}
			res := solver.NewDefault(f).Solve()
			if res.Status != solver.Sat {
				t.Fatalf("parity chain n=%d parity=%v should be SAT", n, parity)
			}
			// Check the model's parity over the first n variables.
			got := false
			for v := 1; v <= n; v++ {
				if res.Model.Value(cnf.Var(v)) == cnf.True {
					got = !got
				}
			}
			if got != parity {
				t.Fatalf("model parity %v, want %v (n=%d)", got, parity, n)
			}
		}
	}
	if _, err := ParityChain(0, true); err == nil {
		t.Fatal("expected error for n=0")
	}
}

func TestGraphColoring(t *testing.T) {
	// An odd cycle needs 3 colours.
	odd := CycleGraph(5)
	two, err := GraphColoring(5, odd, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res := solver.NewDefault(two).Solve(); res.Status != solver.Unsat {
		t.Fatal("odd cycle with 2 colours should be UNSAT")
	}
	three, err := GraphColoring(5, odd, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res := solver.NewDefault(three).Solve(); res.Status != solver.Sat {
		t.Fatal("odd cycle with 3 colours should be SAT")
	}
	// K4 needs 4 colours.
	k4 := CompleteGraph(4)
	withThree, _ := GraphColoring(4, k4, 3)
	if res := solver.NewDefault(withThree).Solve(); res.Status != solver.Unsat {
		t.Fatal("K4 with 3 colours should be UNSAT")
	}
	withFour, _ := GraphColoring(4, k4, 4)
	if res := solver.NewDefault(withFour).Solve(); res.Status != solver.Sat {
		t.Fatal("K4 with 4 colours should be SAT")
	}
	// Validation errors.
	if _, err := GraphColoring(0, nil, 3); err == nil {
		t.Fatal("expected error for zero vertices")
	}
	if _, err := GraphColoring(3, [][2]int{{0, 7}}, 2); err == nil {
		t.Fatal("expected error for out-of-range edge")
	}
}

func TestCycleAndCompleteGraphShapes(t *testing.T) {
	if len(CycleGraph(6)) != 6 {
		t.Fatal("cycle edge count")
	}
	if len(CompleteGraph(5)) != 10 {
		t.Fatal("complete graph edge count")
	}
}

// Property: even cycles are 2-colourable, odd cycles are not.
func TestCycleColoringProperty(t *testing.T) {
	prop := func(seed int64) bool {
		n := 3 + int(seed%8+8)%8 // 3..10
		edges := CycleGraph(n)
		f, err := GraphColoring(n, edges, 2)
		if err != nil {
			return false
		}
		res := solver.NewDefault(f).Solve()
		if n%2 == 0 {
			return res.Status == solver.Sat
		}
		return res.Status == solver.Unsat
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
