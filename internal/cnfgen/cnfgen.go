// Package cnfgen generates classic CNF benchmark families used by the tests
// and benchmarks of this repository: random k-SAT, pigeonhole-principle
// instances, parity (XOR chain) instances and graph-colouring instances.
//
// These generators are not part of the paper itself; they exercise the SAT
// substrate independently of the cryptographic encodings and provide easy /
// hard / UNSAT instances of controllable size.
package cnfgen

import (
	"fmt"
	"math/rand"

	"github.com/paper-repro/pdsat-go/internal/cnf"
)

// RandomKSAT returns a uniformly random k-SAT formula with the given number
// of variables and clauses.  Literals within a clause are drawn
// independently (duplicate variables may occur, as in the standard fixed
// clause-length model).
func RandomKSAT(rng *rand.Rand, k, numVars, numClauses int) (*cnf.Formula, error) {
	if k <= 0 || numVars <= 0 || numClauses < 0 {
		return nil, fmt.Errorf("cnfgen: invalid k-SAT parameters k=%d vars=%d clauses=%d", k, numVars, numClauses)
	}
	f := cnf.New(numVars)
	for i := 0; i < numClauses; i++ {
		c := make(cnf.Clause, k)
		for j := range c {
			c[j] = cnf.NewLit(cnf.Var(rng.Intn(numVars)+1), rng.Intn(2) == 0)
		}
		f.AddClause(c)
	}
	return f, nil
}

// Random3SAT returns a random 3-SAT formula at the given clause/variable
// ratio (the phase transition is near 4.27).
func Random3SAT(rng *rand.Rand, numVars int, ratio float64) (*cnf.Formula, error) {
	return RandomKSAT(rng, 3, numVars, int(ratio*float64(numVars)))
}

// Pigeonhole returns the pigeonhole-principle CNF PHP(pigeons, holes):
// every pigeon sits in some hole and no hole hosts two pigeons.  It is
// satisfiable iff pigeons <= holes; PHP(n+1, n) requires exponentially long
// resolution proofs and is the classic stress test for clause learning.
func Pigeonhole(pigeons, holes int) (*cnf.Formula, error) {
	if pigeons <= 0 || holes <= 0 {
		return nil, fmt.Errorf("cnfgen: invalid pigeonhole parameters p=%d h=%d", pigeons, holes)
	}
	v := func(i, j int) cnf.Lit { return cnf.Lit(i*holes + j + 1) }
	f := cnf.New(pigeons * holes)
	for i := 0; i < pigeons; i++ {
		c := make(cnf.Clause, 0, holes)
		for j := 0; j < holes; j++ {
			c = append(c, v(i, j))
		}
		f.AddClause(c)
	}
	for j := 0; j < holes; j++ {
		for i1 := 0; i1 < pigeons; i1++ {
			for i2 := i1 + 1; i2 < pigeons; i2++ {
				f.AddClauseLits(-v(i1, j), -v(i2, j))
			}
		}
	}
	return f, nil
}

// ParityChain returns a CNF encoding of the XOR chain
//
//	x1 ⊕ x2 ⊕ ... ⊕ xn = parity
//
// using auxiliary variables for the running prefix.  The instance is
// satisfiable for every parity value and exercises long implication chains.
func ParityChain(n int, parity bool) (*cnf.Formula, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cnfgen: parity chain needs at least one variable")
	}
	// Variables 1..n are the chain inputs; n+1..n+(n-1) are prefix sums.
	f := cnf.New(n)
	if n == 1 {
		f.AddClause(cnf.Clause{cnf.NewLit(1, parity)})
		return f, nil
	}
	aux := cnf.Var(n)
	prev := cnf.Var(1)
	for i := 2; i <= n; i++ {
		aux++
		addXORClauses(f, aux, prev, cnf.Var(i))
		prev = aux
	}
	f.AddClause(cnf.Clause{cnf.NewLit(prev, parity)})
	return f, nil
}

// addXORClauses encodes y <-> a xor b.
func addXORClauses(f *cnf.Formula, y, a, b cnf.Var) {
	yl, al, bl := cnf.NewLit(y, true), cnf.NewLit(a, true), cnf.NewLit(b, true)
	f.AddClause(cnf.Clause{yl.Neg(), al, bl})
	f.AddClause(cnf.Clause{yl.Neg(), al.Neg(), bl.Neg()})
	f.AddClause(cnf.Clause{yl, al.Neg(), bl})
	f.AddClause(cnf.Clause{yl, al, bl.Neg()})
}

// GraphColoring returns a CNF asserting that the given undirected graph
// (edges as pairs of 0-based vertex indices) is colourable with the given
// number of colours.
func GraphColoring(numVertices int, edges [][2]int, colors int) (*cnf.Formula, error) {
	if numVertices <= 0 || colors <= 0 {
		return nil, fmt.Errorf("cnfgen: invalid colouring parameters v=%d c=%d", numVertices, colors)
	}
	v := func(vertex, color int) cnf.Lit { return cnf.Lit(vertex*colors + color + 1) }
	f := cnf.New(numVertices * colors)
	for vertex := 0; vertex < numVertices; vertex++ {
		// At least one colour.
		c := make(cnf.Clause, 0, colors)
		for color := 0; color < colors; color++ {
			c = append(c, v(vertex, color))
		}
		f.AddClause(c)
		// At most one colour.
		for c1 := 0; c1 < colors; c1++ {
			for c2 := c1 + 1; c2 < colors; c2++ {
				f.AddClauseLits(-v(vertex, c1), -v(vertex, c2))
			}
		}
	}
	for _, e := range edges {
		if e[0] < 0 || e[0] >= numVertices || e[1] < 0 || e[1] >= numVertices {
			return nil, fmt.Errorf("cnfgen: edge %v out of range", e)
		}
		for color := 0; color < colors; color++ {
			f.AddClauseLits(-v(e[0], color), -v(e[1], color))
		}
	}
	return f, nil
}

// CycleGraph returns the edge list of the cycle on n vertices (odd cycles
// need 3 colours, even cycles 2).
func CycleGraph(n int) [][2]int {
	edges := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return edges
}

// CompleteGraph returns the edge list of the complete graph on n vertices.
func CompleteGraph(n int) [][2]int {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return edges
}
