package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/paper-repro/pdsat-go/internal/solver"
)

// ErrRejected marks a leader's explicit registration refusal (protocol
// version mismatch, bad capacity).  It is permanent: Serve does not redial
// on it, so an incompatible worker fails fast instead of reconnecting in a
// loop.
var ErrRejected = errors.New("cluster: leader rejected registration")

// WorkerOptions configure a remote worker process.
type WorkerOptions struct {
	// Capacity is the number of concurrent solving slots (goroutines, each
	// owning one persistent solver).  0 or negative means GOMAXPROCS.
	Capacity int
	// Name identifies the worker in the leader's logs (default: hostname).
	Name string
	// Redial, when positive, makes Serve reconnect after a lost connection
	// instead of returning the error; the leader requeues whatever the
	// worker had in flight either way.  Redial is the *initial* delay of a
	// capped exponential backoff (doubling per consecutive failure up to
	// maxRedial, plus a deterministic per-worker jitter derived from Name);
	// a successful registration resets the backoff to Redial.
	Redial time.Duration
	// Logf, when non-nil, receives human-readable worker events.
	Logf func(format string, args ...any)
	// TaskDelay, when non-nil, injects extra latency before each task's
	// solve (fault injection for straggler tests and benchmarks).  The
	// delay is interruptible: a batch abort or a speculation revoke cuts
	// it short and the task reports a cancelled placeholder.
	TaskDelay func(Task) time.Duration
}

func (o *WorkerOptions) fill() {
	if o.Capacity <= 0 {
		o.Capacity = runtime.GOMAXPROCS(0)
	}
	if o.Name == "" {
		if host, err := os.Hostname(); err == nil {
			o.Name = host
		} else {
			o.Name = "worker"
		}
	}
}

func (o *WorkerOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Serve connects to the leader at addr, registers as a worker and processes
// task batches until the context is cancelled or the leader shuts the
// worker down (kindStop → nil).  With Redial set, connection failures lead
// to reconnection attempts instead of an error return.
//
// The worker receives the formula once at registration and builds a local
// in-process executor for it, so the persistent-solver reuse (pristine
// Reset per task, or MiniSat-style retention in retain batches) works
// exactly as it does for local goroutine workers.
func Serve(ctx context.Context, addr string, opts WorkerOptions) error {
	opts.fill()
	// attempt counts consecutive failed connections since the last
	// successful registration; it drives the redial backoff so a fleet of
	// workers facing a restarted (or permanently gone) leader spreads out
	// instead of thundering in lockstep at a fixed rate.
	attempt := 0
	for {
		registered, err := serveOnce(ctx, addr, &opts)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if opts.Redial <= 0 || errors.Is(err, ErrRejected) {
			return err
		}
		if registered {
			attempt = 0
		}
		delay := redialDelay(opts.Redial, attempt, opts.Name)
		attempt++
		opts.logf("cluster: connection to %s lost (%v); redialing in %v", addr, err, delay)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// maxRedial caps the exponential redial backoff: a worker probing a
// permanently gone leader settles at roughly one dial per half minute
// instead of spinning at the base rate forever.
const maxRedial = 30 * time.Second

// redialDelay returns the delay before redial attempt (0-based) after
// `attempt` consecutive failures: the base doubles per failure up to
// maxRedial, and a deterministic per-worker jitter of up to +50% — derived
// from the worker name, not from a random source, so restarts reproduce the
// exact same schedule — decorrelates workers that lost the same leader at
// the same instant.
func redialDelay(base time.Duration, attempt int, name string) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 0; i < attempt && d < maxRedial; i++ {
		d *= 2
	}
	if d > maxRedial {
		d = maxRedial
	}
	// FNV-1a over the name and attempt number: stable across runs,
	// different across workers and attempts.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	h ^= uint64(attempt)
	h *= 1099511628211
	jitter := time.Duration(h % uint64(d/2+1))
	return d + jitter
}

// serveOnce runs one connection's lifetime: dial, register, serve batches.
// registered reports whether the registration handshake completed — the
// redial backoff resets only then, so a leader that accepts connections but
// never welcomes them still backs the worker off.
func serveOnce(ctx context.Context, addr string, opts *WorkerOptions) (registered bool, _ error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return false, err
	}
	w := newWire(conn)
	defer w.close()

	// Unblock the read loop when the context is cancelled.
	unwatch := make(chan struct{})
	defer close(unwatch)
	go func() {
		select {
		case <-ctx.Done():
			w.close()
		case <-unwatch:
		}
	}()

	if serr := w.send(helloFor(opts.Name, opts.Capacity)); serr != nil {
		return false, serr
	}
	env, err := w.recv(handshakeTimeout)
	if err != nil {
		return false, err
	}
	var exec *Inproc
	hb := defaultHeartbeat
	switch env.Kind {
	case kindWelcome:
		if env.Formula == nil || env.SolverOptions == nil {
			return false, fmt.Errorf("cluster: leader welcome carried no formula")
		}
		exec = NewInproc(env.Formula, opts.Capacity, *env.SolverOptions)
		if env.Heartbeat > 0 {
			hb = env.Heartbeat
		}
	case kindStop:
		if env.Err != "" {
			return false, fmt.Errorf("%w: %s", ErrRejected, env.Err)
		}
		return false, nil
	default:
		return false, fmt.Errorf("cluster: expected welcome, got message kind %d", env.Kind)
	}
	opts.logf("cluster: registered with leader %s (%d variables, %d clauses, %d slot(s))",
		addr, env.Formula.NumVars, env.Formula.NumClauses(), opts.Capacity)
	registered = true

	var batch *workerBatch
	// interrupted is the highest batch id the leader has told us to
	// abandon.  Batch ids increase monotonically per leader, so a
	// kindTasks chunk for a batch ≤ interrupted is a wire reordering: the
	// leader's interrupt broadcast (sent by its read-loop goroutine)
	// overtook a chunk its Run loop had already marked in-flight.  Such a
	// chunk must be answered with cancelled placeholders — solving it
	// would be uninterruptible (the batch's interrupt already went by),
	// and dropping it silently would leave the leader waiting forever.
	var interrupted uint64
	// The closure re-reads batch at exit time; a plain `defer batch.stop()`
	// would pin the nil receiver evaluated at the defer statement and leave
	// the final batch's solves running after the connection drops.
	defer func() { batch.stop() }()
	for {
		env, err := w.recv(hb * readGraceFactor)
		if err != nil {
			if ctx.Err() != nil {
				return registered, ctx.Err()
			}
			return registered, err
		}
		switch env.Kind {
		case kindPing:
			if err := w.send(&envelope{Kind: kindPong}); err != nil {
				return registered, err
			}
		case kindTasks:
			if env.Opts == nil {
				continue
			}
			if env.Batch <= interrupted {
				for _, t := range env.Tasks {
					res := TaskResult{Index: t.Index, Status: solver.Unknown}
					if err := w.send(&envelope{Kind: kindResult, Batch: env.Batch, Result: toWire(&res)}); err != nil {
						return registered, err
					}
				}
				continue
			}
			if batch == nil || batch.id != env.Batch {
				batch.stop()
				batch = newWorkerBatch(ctx, env.Batch, *env.Opts, exec, w, opts.TaskDelay)
			}
			batch.q.push(env.Tasks)
		case kindRevoke:
			// Stealing form: give back up to Count queued (never started)
			// tasks from the back of the local queue and acknowledge them —
			// the leader requeues a task only on that acknowledgement.
			// Discard form: the leader already recorded another copy's
			// result; drop queued copies, interrupt started ones, reply
			// nothing.
			if env.Discard {
				if batch != nil && batch.id == env.Batch {
					batch.discard(env.Indices)
				}
				continue
			}
			var idxs []int
			if batch != nil && batch.id == env.Batch {
				idxs = batch.stealQueued(env.Count)
			}
			// Always acknowledge — an empty ack unblocks the leader's
			// per-worker steal bookkeeping even when the queue drained (or
			// the batch died) before the revoke arrived.
			if err := w.send(&envelope{Kind: kindRevoked, Batch: env.Batch, Indices: idxs}); err != nil {
				return registered, err
			}
		case kindInterrupt, kindAbort:
			// kindAbort is the evaluation engine's planned per-batch abort
			// (incumbent pruning); on the worker it is handled exactly like
			// an interrupt — only the batch dies, the connection and the
			// pooled solvers survive.
			if env.Batch > interrupted {
				interrupted = env.Batch
			}
			if batch != nil && batch.id == env.Batch {
				batch.stop()
				batch = nil
			}
		case kindStop:
			if env.Err != "" {
				return registered, fmt.Errorf("cluster: leader stopped worker: %s", env.Err)
			}
			opts.logf("cluster: leader %s shut this worker down", addr)
			return registered, nil
		}
	}
}

// workerBatch runs one batch's tasks on the local executor, streaming each
// result back to the leader as soon as it is available.
type workerBatch struct {
	id     uint64
	opts   BatchOptions
	cancel context.CancelFunc
	q      *taskQueue
	wg     sync.WaitGroup

	// mu guards running, the per-task cancel functions of the solves
	// currently executing on this batch's slots; a discard revoke for a
	// started task (speculation loser) interrupts exactly that solve,
	// leaving its siblings and the batch itself untouched.
	mu      sync.Mutex
	running map[int]context.CancelFunc // guarded by mu
}

func newWorkerBatch(parent context.Context, id uint64, opts BatchOptions, exec *Inproc, w *wire, delay func(Task) time.Duration) *workerBatch {
	ctx, cancel := context.WithCancel(parent)
	b := &workerBatch{id: id, opts: opts, cancel: cancel, q: newTaskQueue(),
		running: make(map[int]context.CancelFunc)}
	for i := 0; i < exec.Workers(); i++ {
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			sw := newSolveWorker(exec, opts.Retain)
			defer sw.close()
			for {
				t, ok, cancelled := b.q.pop()
				if !ok {
					return
				}
				var res TaskResult
				if cancelled || ctx.Err() != nil {
					// Cancelled before a solver saw it: report a
					// placeholder, exactly like the in-process producer
					// draining its queue.
					res = TaskResult{Index: t.Index, Status: solver.Unknown}
				} else {
					res = b.solveOne(ctx, sw, t, delay)
				}
				if err := w.send(&envelope{Kind: kindResult, Batch: id, Result: toWire(&res)}); err != nil {
					// Connection gone; the read loop notices too.  Stop
					// pulling work — the leader requeues it elsewhere.
					b.q.cancelQueue()
					return
				}
			}
		}()
	}
	return b
}

// solveOne runs one task under a per-task cancellable context (registered
// in b.running so a discard revoke can interrupt it) with the optional
// injected latency applied first.
func (b *workerBatch) solveOne(ctx context.Context, sw *solveWorker, t Task, delay func(Task) time.Duration) TaskResult {
	tctx, tcancel := context.WithCancel(ctx)
	defer tcancel()
	b.mu.Lock()
	b.running[t.Index] = tcancel
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		delete(b.running, t.Index)
		b.mu.Unlock()
	}()
	if delay != nil {
		if d := delay(t); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-tctx.Done():
				timer.Stop()
				return TaskResult{Index: t.Index, Status: solver.Unknown}
			}
		}
	}
	return sw.solveTask(tctx, t, b.opts)
}

// stealQueued removes up to n not-yet-started tasks from the back of the
// batch's local queue and returns their indices (the stealing revoke's
// acknowledgement payload).  Taking from the back preserves the FIFO head
// this worker is about to start on.
func (b *workerBatch) stealQueued(n int) []int {
	tasks := b.q.removeTail(n)
	idxs := make([]int, len(tasks))
	for i, t := range tasks {
		idxs[i] = t.Index
	}
	return idxs
}

// discard drops the listed tasks without reporting results: queued copies
// are removed from the local queue, started ones have their solve
// interrupted (the truncated result the slot then sends is stale on the
// leader, which already recorded the winning copy).
func (b *workerBatch) discard(idxs []int) {
	for _, idx := range idxs {
		if b.q.remove(idx) {
			continue
		}
		b.mu.Lock()
		cancel := b.running[idx]
		b.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
}

// stop interrupts the batch's in-flight solves, drains its queue as
// placeholders and waits for the slots to finish (returning their pooled
// solvers).  It is nil-safe and idempotent.
func (b *workerBatch) stop() {
	if b == nil {
		return
	}
	b.cancel()
	b.q.cancelQueue()
	b.wg.Wait()
}

// taskQueue is an unbounded FIFO of tasks with a cancellation flag: after
// cancelQueue, remaining and future tasks are handed out flagged as
// cancelled (the popper reports placeholders for them), and pop unblocks.
type taskQueue struct {
	mu        sync.Mutex
	cond      *sync.Cond
	items     []Task
	cancelled bool
}

func newTaskQueue() *taskQueue {
	q := &taskQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *taskQueue) push(tasks []Task) {
	q.mu.Lock()
	q.items = append(q.items, tasks...)
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *taskQueue) cancelQueue() {
	q.mu.Lock()
	q.cancelled = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// pop blocks until a task is available or the queue is cancelled.  ok is
// false when the queue is cancelled and empty; cancelled marks tasks that
// must be reported as placeholders instead of solved.
func (q *taskQueue) pop() (t Task, ok, cancelled bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.cancelled {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return Task{}, false, false
	}
	t = q.items[0]
	q.items = q.items[1:]
	return t, true, q.cancelled
}

// removeTail removes and returns up to n tasks from the back of the queue
// (nothing once the queue is cancelled: its tasks are already owed to the
// leader as placeholders and must not be requeued elsewhere too).
func (q *taskQueue) removeTail(n int) []Task {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.cancelled || n <= 0 {
		return nil
	}
	if n > len(q.items) {
		n = len(q.items)
	}
	cut := len(q.items) - n
	removed := append([]Task(nil), q.items[cut:]...)
	q.items = q.items[:cut]
	return removed
}

// remove deletes the queued task with the given index, reporting whether it
// was still queued (same cancellation guard as removeTail).
func (q *taskQueue) remove(idx int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.cancelled {
		return false
	}
	for i, t := range q.items {
		if t.Index == idx {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}
