package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/paper-repro/pdsat-go/internal/solver"
)

// ErrRejected marks a leader's explicit registration refusal (protocol
// version mismatch, bad capacity).  It is permanent: Serve does not redial
// on it, so an incompatible worker fails fast instead of reconnecting in a
// loop.
var ErrRejected = errors.New("cluster: leader rejected registration")

// WorkerOptions configure a remote worker process.
type WorkerOptions struct {
	// Capacity is the number of concurrent solving slots (goroutines, each
	// owning one persistent solver).  0 or negative means GOMAXPROCS.
	Capacity int
	// Name identifies the worker in the leader's logs (default: hostname).
	Name string
	// Redial, when positive, makes Serve reconnect after a lost connection
	// instead of returning the error; the leader requeues whatever the
	// worker had in flight either way.
	Redial time.Duration
	// Logf, when non-nil, receives human-readable worker events.
	Logf func(format string, args ...any)
}

func (o *WorkerOptions) fill() {
	if o.Capacity <= 0 {
		o.Capacity = runtime.GOMAXPROCS(0)
	}
	if o.Name == "" {
		if host, err := os.Hostname(); err == nil {
			o.Name = host
		} else {
			o.Name = "worker"
		}
	}
}

func (o *WorkerOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Serve connects to the leader at addr, registers as a worker and processes
// task batches until the context is cancelled or the leader shuts the
// worker down (kindStop → nil).  With Redial set, connection failures lead
// to reconnection attempts instead of an error return.
//
// The worker receives the formula once at registration and builds a local
// in-process executor for it, so the persistent-solver reuse (pristine
// Reset per task, or MiniSat-style retention in retain batches) works
// exactly as it does for local goroutine workers.
func Serve(ctx context.Context, addr string, opts WorkerOptions) error {
	opts.fill()
	for {
		err := serveOnce(ctx, addr, &opts)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if opts.Redial <= 0 || errors.Is(err, ErrRejected) {
			return err
		}
		opts.logf("cluster: connection to %s lost (%v); redialing in %v", addr, err, opts.Redial)
		select {
		case <-time.After(opts.Redial):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// serveOnce runs one connection's lifetime: dial, register, serve batches.
func serveOnce(ctx context.Context, addr string, opts *WorkerOptions) error {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return err
	}
	w := newWire(conn)
	defer w.close()

	// Unblock the read loop when the context is cancelled.
	unwatch := make(chan struct{})
	defer close(unwatch)
	go func() {
		select {
		case <-ctx.Done():
			w.close()
		case <-unwatch:
		}
	}()

	if serr := w.send(helloFor(opts.Name, opts.Capacity)); serr != nil {
		return serr
	}
	env, err := w.recv(handshakeTimeout)
	if err != nil {
		return err
	}
	var exec *Inproc
	hb := defaultHeartbeat
	switch env.Kind {
	case kindWelcome:
		if env.Formula == nil || env.SolverOptions == nil {
			return fmt.Errorf("cluster: leader welcome carried no formula")
		}
		exec = NewInproc(env.Formula, opts.Capacity, *env.SolverOptions)
		if env.Heartbeat > 0 {
			hb = env.Heartbeat
		}
	case kindStop:
		if env.Err != "" {
			return fmt.Errorf("%w: %s", ErrRejected, env.Err)
		}
		return nil
	default:
		return fmt.Errorf("cluster: expected welcome, got message kind %d", env.Kind)
	}
	opts.logf("cluster: registered with leader %s (%d variables, %d clauses, %d slot(s))",
		addr, env.Formula.NumVars, env.Formula.NumClauses(), opts.Capacity)

	var batch *workerBatch
	// interrupted is the highest batch id the leader has told us to
	// abandon.  Batch ids increase monotonically per leader, so a
	// kindTasks chunk for a batch ≤ interrupted is a wire reordering: the
	// leader's interrupt broadcast (sent by its read-loop goroutine)
	// overtook a chunk its Run loop had already marked in-flight.  Such a
	// chunk must be answered with cancelled placeholders — solving it
	// would be uninterruptible (the batch's interrupt already went by),
	// and dropping it silently would leave the leader waiting forever.
	var interrupted uint64
	// The closure re-reads batch at exit time; a plain `defer batch.stop()`
	// would pin the nil receiver evaluated at the defer statement and leave
	// the final batch's solves running after the connection drops.
	defer func() { batch.stop() }()
	for {
		env, err := w.recv(hb * readGraceFactor)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		switch env.Kind {
		case kindPing:
			if err := w.send(&envelope{Kind: kindPong}); err != nil {
				return err
			}
		case kindTasks:
			if env.Opts == nil {
				continue
			}
			if env.Batch <= interrupted {
				for _, t := range env.Tasks {
					res := TaskResult{Index: t.Index, Status: solver.Unknown}
					if err := w.send(&envelope{Kind: kindResult, Batch: env.Batch, Result: toWire(&res)}); err != nil {
						return err
					}
				}
				continue
			}
			if batch == nil || batch.id != env.Batch {
				batch.stop()
				batch = newWorkerBatch(ctx, env.Batch, *env.Opts, exec, w)
			}
			batch.q.push(env.Tasks)
		case kindInterrupt, kindAbort:
			// kindAbort is the evaluation engine's planned per-batch abort
			// (incumbent pruning); on the worker it is handled exactly like
			// an interrupt — only the batch dies, the connection and the
			// pooled solvers survive.
			if env.Batch > interrupted {
				interrupted = env.Batch
			}
			if batch != nil && batch.id == env.Batch {
				batch.stop()
				batch = nil
			}
		case kindStop:
			if env.Err != "" {
				return fmt.Errorf("cluster: leader stopped worker: %s", env.Err)
			}
			opts.logf("cluster: leader %s shut this worker down", addr)
			return nil
		}
	}
}

// workerBatch runs one batch's tasks on the local executor, streaming each
// result back to the leader as soon as it is available.
type workerBatch struct {
	id     uint64
	opts   BatchOptions
	cancel context.CancelFunc
	q      *taskQueue
	wg     sync.WaitGroup
}

func newWorkerBatch(parent context.Context, id uint64, opts BatchOptions, exec *Inproc, w *wire) *workerBatch {
	ctx, cancel := context.WithCancel(parent)
	b := &workerBatch{id: id, opts: opts, cancel: cancel, q: newTaskQueue()}
	for i := 0; i < exec.Workers(); i++ {
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			sw := newSolveWorker(exec, opts.Retain)
			defer sw.close()
			for {
				t, ok, cancelled := b.q.pop()
				if !ok {
					return
				}
				var res TaskResult
				if cancelled || ctx.Err() != nil {
					// Cancelled before a solver saw it: report a
					// placeholder, exactly like the in-process producer
					// draining its queue.
					res = TaskResult{Index: t.Index, Status: solver.Unknown}
				} else {
					res = sw.solveTask(ctx, t, opts)
				}
				if err := w.send(&envelope{Kind: kindResult, Batch: id, Result: toWire(&res)}); err != nil {
					// Connection gone; the read loop notices too.  Stop
					// pulling work — the leader requeues it elsewhere.
					b.q.cancelQueue()
					return
				}
			}
		}()
	}
	return b
}

// stop interrupts the batch's in-flight solves, drains its queue as
// placeholders and waits for the slots to finish (returning their pooled
// solvers).  It is nil-safe and idempotent.
func (b *workerBatch) stop() {
	if b == nil {
		return
	}
	b.cancel()
	b.q.cancelQueue()
	b.wg.Wait()
}

// taskQueue is an unbounded FIFO of tasks with a cancellation flag: after
// cancelQueue, remaining and future tasks are handed out flagged as
// cancelled (the popper reports placeholders for them), and pop unblocks.
type taskQueue struct {
	mu        sync.Mutex
	cond      *sync.Cond
	items     []Task
	cancelled bool
}

func newTaskQueue() *taskQueue {
	q := &taskQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *taskQueue) push(tasks []Task) {
	q.mu.Lock()
	q.items = append(q.items, tasks...)
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *taskQueue) cancelQueue() {
	q.mu.Lock()
	q.cancelled = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// pop blocks until a task is available or the queue is cancelled.  ok is
// false when the queue is cancelled and empty; cancelled marks tasks that
// must be reported as placeholders instead of solved.
func (q *taskQueue) pop() (t Task, ok, cancelled bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.cancelled {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return Task{}, false, false
	}
	t = q.items[0]
	q.items = q.items[1:]
	return t, true, q.cancelled
}
