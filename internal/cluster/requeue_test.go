package cluster

import (
	"context"
	"net"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// requeueFormula builds a small formula with enough search effort per
// subproblem to keep tasks in flight: a chain of equivalences plus a few
// xor-ish clauses.
func requeueFormula() *cnf.Formula {
	f := cnf.New(24)
	for v := 1; v < 24; v++ {
		a, b := cnf.Var(v), cnf.Var(v+1)
		f.AddClauseLits(cnf.NewLit(a, false), cnf.NewLit(b, true))
		f.AddClauseLits(cnf.NewLit(a, true), cnf.NewLit(b, false))
	}
	f.AddClauseLits(cnf.NewLit(1, true), cnf.NewLit(12, true), cnf.NewLit(24, true))
	return f
}

// requeueTasks makes one task per assignment of variables 1..2 plus extras,
// all indices 0..n-1.
func requeueTasks(n int) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		v1 := cnf.NewLit(1, i%2 == 0)
		v2 := cnf.NewLit(2, (i/2)%2 == 0)
		tasks[i] = Task{Index: i, Assumptions: []cnf.Lit{v1, v2}}
	}
	return tasks
}

// fakeWorker speaks just enough of the wire protocol to register, receive a
// chunk of tasks, and then vanish without answering — the worker-loss
// scenario the leader must absorb by requeuing.
func fakeWorker(t *testing.T, addr string, capacity int, gotTasks chan<- int) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		t.Errorf("fake worker dial: %v", err)
		close(gotTasks)
		return
	}
	w := newWire(conn)
	defer w.close()
	if err := w.send(helloFor("fake", capacity)); err != nil {
		t.Errorf("fake worker hello: %v", err)
		close(gotTasks)
		return
	}
	if _, err := w.recv(handshakeTimeout); err != nil { // welcome
		t.Errorf("fake worker welcome: %v", err)
		close(gotTasks)
		return
	}
	for {
		env, err := w.recv(10 * time.Second)
		if err != nil {
			t.Errorf("fake worker waiting for tasks: %v", err)
			close(gotTasks)
			return
		}
		switch env.Kind {
		case kindPing:
			if err := w.send(&envelope{Kind: kindPong}); err != nil {
				t.Errorf("fake worker pong: %v", err)
				close(gotTasks)
				return
			}
		case kindTasks:
			// Took a chunk, now die without answering.
			gotTasks <- len(env.Tasks)
			close(gotTasks)
			return
		}
	}
}

// TestWorkerDisconnectRequeues kills a worker that has accepted tasks and
// checks that the leader requeues them onto a later-joining worker: the
// batch still completes with every task actually solved (no cancelled
// placeholders), and the results match the in-process transport exactly.
func TestWorkerDisconnectRequeues(t *testing.T) {
	f := requeueFormula()
	leader, err := Listen("127.0.0.1:0", f, LeaderOptions{
		Heartbeat: 100 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	addr := leader.Addr().String()

	// The doomed worker registers first and receives the initial chunk.
	gotTasks := make(chan int, 1)
	go fakeWorker(t, addr, 4, gotTasks)
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer waitCancel()
	if err := leader.WaitForWorkers(waitCtx, 1); err != nil {
		t.Fatalf("fake worker did not register: %v", err)
	}

	tasks := requeueTasks(16)
	opts := BatchOptions{CostMetric: solver.CostPropagations}
	type runOutcome struct {
		results []TaskResult
		err     error
	}
	done := make(chan runOutcome, 1)
	runCtx, runCancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer runCancel()
	go func() {
		res, err := leader.Run(runCtx, tasks, opts)
		done <- runOutcome{res, err}
	}()

	// Wait until the fake worker has actually been handed tasks and died.
	n, ok := <-gotTasks
	if ok && n == 0 {
		t.Fatal("fake worker received an empty chunk")
	}

	// Now bring up a real worker; the leader must requeue the lost chunk
	// onto it.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = Serve(ctx, addr, WorkerOptions{Capacity: 2, Name: "survivor", Logf: t.Logf})
	}()

	out := <-done
	if out.err != nil {
		t.Fatalf("Run after worker loss: %v", out.err)
	}
	if len(out.results) != len(tasks) {
		t.Fatalf("got %d results for %d tasks", len(out.results), len(tasks))
	}
	seen := make([]bool, len(tasks))
	for _, res := range out.results {
		if seen[res.Index] {
			t.Fatalf("duplicate result for task %d", res.Index)
		}
		seen[res.Index] = true
		if !res.Started {
			t.Fatalf("task %d was never solved (lost instead of requeued)", res.Index)
		}
	}

	// The requeued run must be bit-identical to the in-process transport.
	want, err := NewInproc(f, 2, solver.DefaultOptions()).Run(context.Background(), tasks, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantByIdx := make([]TaskResult, len(tasks))
	for _, res := range want {
		wantByIdx[res.Index] = res
	}
	for _, res := range out.results {
		w := wantByIdx[res.Index]
		if res.Cost != w.Cost || res.Status != w.Status {
			t.Fatalf("task %d differs after requeue: net cost %v status %v, inproc cost %v status %v",
				res.Index, res.Cost, res.Status, w.Cost, w.Status)
		}
	}
}

// TestInprocStopOnDecided checks the portfolio stop policy on the
// in-process backend: a batch with StopOnDecided is cancelled by the first
// conclusive result.
func TestInprocStopOnDecided(t *testing.T) {
	f := requeueFormula()
	tasks := requeueTasks(8)
	results, err := NewInproc(f, 2, solver.DefaultOptions()).Run(context.Background(), tasks,
		BatchOptions{Stop: StopOnDecided, CostMetric: solver.CostPropagations})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(tasks) {
		t.Fatalf("got %d results for %d tasks", len(results), len(tasks))
	}
	decided := false
	for _, res := range results {
		if res.Status == solver.Sat || res.Status == solver.Unsat {
			decided = true
		}
	}
	if !decided {
		t.Fatal("expected at least one conclusive result")
	}
}

// TestBatchIndexValidation checks the shared index contract.
func TestBatchIndexValidation(t *testing.T) {
	f := requeueFormula()
	tr := NewInproc(f, 1, solver.DefaultOptions())
	_, err := tr.Run(context.Background(), []Task{{Index: 1}}, BatchOptions{})
	if err == nil {
		t.Fatal("expected an error for an out-of-range task index")
	}
	_, err = tr.Run(context.Background(), []Task{{Index: 0}, {Index: 0}}, BatchOptions{})
	if err == nil {
		t.Fatal("expected an error for duplicate task indices")
	}
}
