package cluster

import (
	"context"
	"net"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// requeueFormula builds a small formula with enough search effort per
// subproblem to keep tasks in flight: a chain of equivalences plus a few
// xor-ish clauses.
func requeueFormula() *cnf.Formula {
	f := cnf.New(24)
	for v := 1; v < 24; v++ {
		a, b := cnf.Var(v), cnf.Var(v+1)
		f.AddClauseLits(cnf.NewLit(a, false), cnf.NewLit(b, true))
		f.AddClauseLits(cnf.NewLit(a, true), cnf.NewLit(b, false))
	}
	f.AddClauseLits(cnf.NewLit(1, true), cnf.NewLit(12, true), cnf.NewLit(24, true))
	return f
}

// requeueTasks makes one task per assignment of variables 1..2 plus extras,
// all indices 0..n-1.
func requeueTasks(n int) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		v1 := cnf.NewLit(1, i%2 == 0)
		v2 := cnf.NewLit(2, (i/2)%2 == 0)
		tasks[i] = Task{Index: i, Assumptions: []cnf.Lit{v1, v2}}
	}
	return tasks
}

// fakeWorker speaks just enough of the wire protocol to register, receive a
// chunk of tasks, and then vanish without answering — the worker-loss
// scenario the leader must absorb by requeuing.
func fakeWorker(t *testing.T, addr string, capacity int, gotTasks chan<- int) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		t.Errorf("fake worker dial: %v", err)
		close(gotTasks)
		return
	}
	w := newWire(conn)
	defer w.close()
	if err := w.send(helloFor("fake", capacity)); err != nil {
		t.Errorf("fake worker hello: %v", err)
		close(gotTasks)
		return
	}
	if _, err := w.recv(handshakeTimeout); err != nil { // welcome
		t.Errorf("fake worker welcome: %v", err)
		close(gotTasks)
		return
	}
	for {
		env, err := w.recv(10 * time.Second)
		if err != nil {
			t.Errorf("fake worker waiting for tasks: %v", err)
			close(gotTasks)
			return
		}
		switch env.Kind {
		case kindPing:
			if err := w.send(&envelope{Kind: kindPong}); err != nil {
				t.Errorf("fake worker pong: %v", err)
				close(gotTasks)
				return
			}
		case kindTasks:
			// Took a chunk, now die without answering.
			gotTasks <- len(env.Tasks)
			close(gotTasks)
			return
		}
	}
}

// TestWorkerDisconnectRequeues kills a worker that has accepted tasks and
// checks that the leader requeues them onto a later-joining worker: the
// batch still completes with every task actually solved (no cancelled
// placeholders), and the results match the in-process transport exactly.
func TestWorkerDisconnectRequeues(t *testing.T) {
	f := requeueFormula()
	leader, err := Listen("127.0.0.1:0", f, LeaderOptions{
		Heartbeat: 100 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	addr := leader.Addr().String()

	// The doomed worker registers first and receives the initial chunk.
	gotTasks := make(chan int, 1)
	go fakeWorker(t, addr, 4, gotTasks)
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer waitCancel()
	if err := leader.WaitForWorkers(waitCtx, 1); err != nil {
		t.Fatalf("fake worker did not register: %v", err)
	}

	tasks := requeueTasks(16)
	opts := BatchOptions{CostMetric: solver.CostPropagations}
	type runOutcome struct {
		results []TaskResult
		err     error
	}
	done := make(chan runOutcome, 1)
	runCtx, runCancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer runCancel()
	go func() {
		res, err := leader.Run(runCtx, tasks, opts)
		done <- runOutcome{res, err}
	}()

	// Wait until the fake worker has actually been handed tasks and died.
	n, ok := <-gotTasks
	if ok && n == 0 {
		t.Fatal("fake worker received an empty chunk")
	}

	// Now bring up a real worker; the leader must requeue the lost chunk
	// onto it.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = Serve(ctx, addr, WorkerOptions{Capacity: 2, Name: "survivor", Logf: t.Logf})
	}()

	out := <-done
	if out.err != nil {
		t.Fatalf("Run after worker loss: %v", out.err)
	}
	if len(out.results) != len(tasks) {
		t.Fatalf("got %d results for %d tasks", len(out.results), len(tasks))
	}
	seen := make([]bool, len(tasks))
	for _, res := range out.results {
		if seen[res.Index] {
			t.Fatalf("duplicate result for task %d", res.Index)
		}
		seen[res.Index] = true
		if !res.Started {
			t.Fatalf("task %d was never solved (lost instead of requeued)", res.Index)
		}
	}

	// The requeued run must be bit-identical to the in-process transport.
	want, err := NewInproc(f, 2, solver.DefaultOptions()).Run(context.Background(), tasks, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantByIdx := make([]TaskResult, len(tasks))
	for _, res := range want {
		wantByIdx[res.Index] = res
	}
	for _, res := range out.results {
		w := wantByIdx[res.Index]
		if res.Cost != w.Cost || res.Status != w.Status {
			t.Fatalf("task %d differs after requeue: net cost %v status %v, inproc cost %v status %v",
				res.Index, res.Cost, res.Status, w.Cost, w.Status)
		}
	}
}

// TestInprocStopOnDecided checks the portfolio stop policy on the
// in-process backend: a batch with StopOnDecided is cancelled by the first
// conclusive result.
func TestInprocStopOnDecided(t *testing.T) {
	f := requeueFormula()
	tasks := requeueTasks(8)
	results, err := NewInproc(f, 2, solver.DefaultOptions()).Run(context.Background(), tasks,
		BatchOptions{Stop: StopOnDecided, CostMetric: solver.CostPropagations})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(tasks) {
		t.Fatalf("got %d results for %d tasks", len(results), len(tasks))
	}
	decided := false
	for _, res := range results {
		if res.Status == solver.Sat || res.Status == solver.Unsat {
			decided = true
		}
	}
	if !decided {
		t.Fatal("expected at least one conclusive result")
	}
}

// TestBatchIndexValidation checks the shared index contract.
func TestBatchIndexValidation(t *testing.T) {
	f := requeueFormula()
	tr := NewInproc(f, 1, solver.DefaultOptions())
	_, err := tr.Run(context.Background(), []Task{{Index: 1}}, BatchOptions{})
	if err == nil {
		t.Fatal("expected an error for an out-of-range task index")
	}
	_, err = tr.Run(context.Background(), []Task{{Index: 0}, {Index: 0}}, BatchOptions{})
	if err == nil {
		t.Fatal("expected an error for duplicate task indices")
	}
}

// abortingWorker speaks the wire protocol far enough to register, take a
// chunk of tasks and then hold them silently (answering pings) until it is
// told to die.  It reports the abort notification it receives, so the test
// can order "leader aborted the batch" strictly before "worker vanished".
func abortingWorker(t *testing.T, addr string, capacity int, gotTasks chan<- int, sawAbort chan<- uint64, die <-chan struct{}) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		t.Errorf("aborting worker dial: %v", err)
		close(gotTasks)
		return
	}
	w := newWire(conn)
	defer w.close()
	if err := w.send(helloFor("holder", capacity)); err != nil {
		t.Errorf("aborting worker hello: %v", err)
		close(gotTasks)
		return
	}
	if _, err := w.recv(handshakeTimeout); err != nil { // welcome
		t.Errorf("aborting worker welcome: %v", err)
		close(gotTasks)
		return
	}
	reported := false
	for {
		select {
		case <-die:
			return // vanish without answering anything
		default:
		}
		env, err := w.recv(500 * time.Millisecond)
		if err != nil {
			continue // read timeout: poll the die channel again
		}
		switch env.Kind {
		case kindPing:
			w.send(&envelope{Kind: kindPong})
		case kindTasks:
			if !reported {
				reported = true
				gotTasks <- len(env.Tasks)
				close(gotTasks)
			}
		case kindAbort:
			sawAbort <- env.Batch
		}
	}
}

// TestAbortedBatchWorkerLossDoesNotResurrectTasks is the non-blocking
// batch-abort requeue test: when a worker holding an aborted batch's tasks
// is lost, the leader must *not* requeue those tasks onto the remaining
// workers — the abort already converted the batch's outcome to
// placeholders, and resurrecting the tasks would solve subproblems the
// evaluation engine has proven worthless.
func TestAbortedBatchWorkerLossDoesNotResurrectTasks(t *testing.T) {
	f := requeueFormula()
	type lost struct {
		name     string
		requeued int
	}
	lostCh := make(chan lost, 4)
	leader, err := Listen("127.0.0.1:0", f, LeaderOptions{
		Heartbeat: 100 * time.Millisecond,
		Logf:      t.Logf,
		OnWorkerLost: func(name string, requeued int) {
			lostCh <- lost{name, requeued}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	addr := leader.Addr().String()

	// The holder registers with enough capacity to be handed every task
	// (the leader assigns up to 2× capacity), takes the batch and sits on
	// it.
	gotTasks := make(chan int, 1)
	sawAbort := make(chan uint64, 1)
	die := make(chan struct{})
	go abortingWorker(t, addr, 8, gotTasks, sawAbort, die)
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer waitCancel()
	if err := leader.WaitForWorkers(waitCtx, 1); err != nil {
		t.Fatalf("holder did not register: %v", err)
	}

	// A survivor with spare capacity is present the whole time: if the
	// leader wrongly requeued the aborted tasks, it would solve them.
	survivorCtx, survivorCancel := context.WithCancel(context.Background())
	defer survivorCancel()
	go func() {
		_ = Serve(survivorCtx, addr, WorkerOptions{Capacity: 2, Name: "survivor", Logf: t.Logf})
	}()
	if err := leader.WaitForWorkers(waitCtx, 2); err != nil {
		t.Fatalf("survivor did not register: %v", err)
	}

	tasks := requeueTasks(16)
	abort := make(chan struct{})
	type runOutcome struct {
		results []TaskResult
		err     error
	}
	done := make(chan runOutcome, 1)
	runCtx, runCancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer runCancel()
	go func() {
		res, err := leader.RunAbortable(runCtx, tasks, BatchOptions{CostMetric: solver.CostPropagations}, nil, abort)
		done <- runOutcome{res, err}
	}()

	// Wait for the holder to own tasks, then abort the batch and wait for
	// the abort to reach the holder before killing it, so the worker loss
	// strictly follows the abort.
	if n, ok := <-gotTasks; ok && n == 0 {
		t.Fatal("holder received an empty chunk")
	}
	close(abort)
	select {
	case <-sawAbort:
	case <-time.After(10 * time.Second):
		t.Fatal("holder never received the batch abort")
	}
	close(die)

	out := <-done
	if out.err != nil {
		t.Fatalf("aborted Run returned error: %v", out.err)
	}
	if len(out.results) != len(tasks) {
		t.Fatalf("got %d results for %d tasks", len(out.results), len(tasks))
	}
	solved := 0
	seen := make([]bool, len(tasks))
	for _, res := range out.results {
		if seen[res.Index] {
			t.Fatalf("duplicate result for task %d", res.Index)
		}
		seen[res.Index] = true
		if res.Started && !res.Cancelled {
			solved++
		}
	}
	// The holder answered nothing and its loss happened after the abort:
	// every one of its tasks must come back as a placeholder or truncated
	// result, none solved by the survivor.
	if solved != 0 {
		t.Fatalf("%d task(s) of the aborted batch were resurrected and solved", solved)
	}
	// The holder's loss must have requeued nothing.
	deadline := time.After(10 * time.Second)
	for {
		select {
		case l := <-lostCh:
			if l.name == "holder" {
				if l.requeued != 0 {
					t.Fatalf("worker loss during the aborted batch requeued %d task(s)", l.requeued)
				}
				return
			}
		case <-deadline:
			t.Fatal("leader never reported the holder as lost")
		}
	}
}

// TestInprocAbort checks the in-process batch abort: a pre-fired abort
// channel yields one result per task with a nil error (a planned outcome,
// not a cancellation), nothing solved to completion, and leaves the
// transport and its solver pool fully usable for the next batch.
func TestInprocAbort(t *testing.T) {
	f := requeueFormula()
	tr := NewInproc(f, 2, solver.DefaultOptions())
	tasks := requeueTasks(8)

	abort := make(chan struct{})
	close(abort)
	results, err := tr.RunAbortable(context.Background(), tasks, BatchOptions{CostMetric: solver.CostPropagations}, nil, abort)
	if err != nil {
		t.Fatalf("aborted batch returned error: %v", err)
	}
	if len(results) != len(tasks) {
		t.Fatalf("got %d results for %d tasks", len(results), len(tasks))
	}
	for _, res := range results {
		if res.Started && !res.Cancelled {
			t.Fatalf("task %d was solved to completion despite the abort", res.Index)
		}
	}

	// The transport must still run normal batches, bit-identical to a
	// fresh one.
	after, err := tr.Run(context.Background(), tasks, BatchOptions{CostMetric: solver.CostPropagations})
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewInproc(f, 2, solver.DefaultOptions()).Run(context.Background(), tasks, BatchOptions{CostMetric: solver.CostPropagations})
	if err != nil {
		t.Fatal(err)
	}
	byIdx := func(rs []TaskResult) map[int]TaskResult {
		m := make(map[int]TaskResult, len(rs))
		for _, r := range rs {
			m[r.Index] = r
		}
		return m
	}
	wa, wb := byIdx(after), byIdx(want)
	for i := range wa {
		if wa[i].Cost != wb[i].Cost || wa[i].Status != wb[i].Status {
			t.Fatalf("post-abort batch differs at task %d: %+v vs %+v", i, wa[i], wb[i])
		}
	}
}

// TestInprocAbortMidBatch aborts from the observe callback after half the
// results arrived: the collected prefix must be real solves and the batch
// must still account for every task.
func TestInprocAbortMidBatch(t *testing.T) {
	f := requeueFormula()
	tr := NewInproc(f, 2, solver.DefaultOptions())
	tasks := requeueTasks(16)

	abort := make(chan struct{})
	collected := 0
	results, err := tr.RunAbortable(context.Background(), tasks, BatchOptions{CostMetric: solver.CostPropagations},
		func(res TaskResult) {
			collected++
			if collected == 4 {
				close(abort)
			}
		}, abort)
	if err != nil {
		t.Fatalf("aborted batch returned error: %v", err)
	}
	if len(results) != len(tasks) {
		t.Fatalf("got %d results for %d tasks", len(results), len(tasks))
	}
	full := 0
	for _, res := range results {
		if res.Started && !res.Cancelled {
			full++
		}
	}
	if full == 0 {
		t.Fatal("no task finished before the abort")
	}
	if full == len(tasks) {
		t.Fatal("abort did not cut the batch short")
	}
}
