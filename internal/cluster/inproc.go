package cluster

import (
	"context"
	"runtime"
	"sync"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// Inproc is the in-process Transport: tasks run on goroutines in the
// current process, each owning one persistent solver drawn from a pool that
// survives across batches, so the clause database and watch lists are built
// once per worker instead of once per subproblem.
//
// In pristine (non-Retain) batches every task starts with a solver.Reset,
// which makes the observed cost of a subproblem identical to what a freshly
// constructed solver would measure; fixed-seed estimates are therefore
// bit-for-bit independent of the pooling and of scheduling.
type Inproc struct {
	formula *cnf.Formula
	opts    solver.Options
	workers int

	// poolMu guards pool, the persistent per-worker solvers reused across
	// batches.  A solver is taken from the pool for the lifetime of one
	// worker goroutine and returned when the worker exits.  In pristine
	// batches every subproblem starts with a Reset, so any pooled solver is
	// interchangeable with any other; retain-mode workers instead carry
	// learned clauses and activities in the pooled solver and must rebase
	// budgets and activity diffs onto its cumulative counters.
	poolMu sync.Mutex
	pool   []*solver.Solver
}

// NewInproc creates an in-process transport for the formula.  workers is
// the number of concurrent solver goroutines (0 or negative means
// GOMAXPROCS); opts configures the shared pooled solvers.
func NewInproc(f *cnf.Formula, workers int, opts solver.Options) *Inproc {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.VarDecay == 0 {
		opts = solver.DefaultOptions()
	}
	return &Inproc{formula: f, opts: opts, workers: workers}
}

// Workers reports the number of concurrent solver goroutines per batch.
func (t *Inproc) Workers() int { return t.workers }

// Close implements Transport; the pooled solvers are simply released to the
// garbage collector.
func (t *Inproc) Close() error { return nil }

// acquire hands out a persistent solver for one worker goroutine, creating
// it on first use.
func (t *Inproc) acquire() *solver.Solver {
	t.poolMu.Lock()
	if n := len(t.pool); n > 0 {
		s := t.pool[n-1]
		t.pool = t.pool[:n-1]
		t.poolMu.Unlock()
		return s
	}
	t.poolMu.Unlock()
	return solver.New(t.formula, t.opts)
}

// release returns a worker's solver to the pool.
func (t *Inproc) release(s *solver.Solver) {
	t.poolMu.Lock()
	t.pool = append(t.pool, s)
	t.poolMu.Unlock()
}

// PoolSize reports how many persistent solvers are currently parked in the
// pool (i.e. not held by a running worker goroutine).
func (t *Inproc) PoolSize() int {
	t.poolMu.Lock()
	defer t.poolMu.Unlock()
	return len(t.pool)
}

// PooledSolvers returns a snapshot of the parked persistent solvers, for
// diagnostics and accounting tests (e.g. comparing a retain-mode solver's
// cumulative conflict activity against the absorbed totals).  The solvers
// are shared, not copies: callers must not use them while a batch runs.
func (t *Inproc) PooledSolvers() []*solver.Solver {
	t.poolMu.Lock()
	defer t.poolMu.Unlock()
	return append([]*solver.Solver(nil), t.pool...)
}

// Run distributes the tasks over the worker goroutines and collects one
// result per task, in completion order.
func (t *Inproc) Run(ctx context.Context, tasks []Task, opts BatchOptions) ([]TaskResult, error) {
	return t.RunObserved(ctx, tasks, opts, nil)
}

// RunObserved implements ObservedTransport: observe (when non-nil) receives
// every result from the collection loop the moment it is gathered, in the
// same order as the returned slice.
func (t *Inproc) RunObserved(ctx context.Context, tasks []Task, opts BatchOptions, observe func(TaskResult)) ([]TaskResult, error) {
	return t.RunAbortable(ctx, tasks, opts, observe, nil)
}

// RunAbortable implements AbortableTransport: when abort fires, the batch's
// in-flight solves are interrupted (their truncated results are marked
// Cancelled) and queued tasks drain as placeholders, but — unlike a context
// cancellation — the call returns the full result set with a nil error and
// the transport (solver pool included) stays usable for the next batch.
func (t *Inproc) RunAbortable(ctx context.Context, tasks []Task, opts BatchOptions, observe func(TaskResult), abort <-chan struct{}) ([]TaskResult, error) {
	if err := checkBatch(tasks); err != nil {
		return nil, err
	}
	if len(tasks) == 0 {
		return nil, ctx.Err()
	}
	workers := t.workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	taskCh := make(chan Task)
	// Exactly one result is emitted per task — by the worker that received
	// it, or by the producer for a task cancelled before it could be handed
	// out — so a len(tasks) buffer keeps every send non-blocking.
	resCh := make(chan TaskResult, len(tasks))
	innerCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if abort != nil {
		// The abort cancels only innerCtx — the batch — never ctx, so the
		// "was this a planned abort or a real cancellation" distinction at
		// the end of the collection loop stays a plain ctx.Err() check.
		batchDone := make(chan struct{})
		defer close(batchDone)
		go func() {
			select {
			case <-abort:
				cancel()
			case <-batchDone:
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sw := newSolveWorker(t, opts.Retain)
			defer sw.close()
			for tk := range taskCh {
				if innerCtx.Err() != nil {
					resCh <- TaskResult{Index: tk.Index, Status: solver.Unknown}
					continue
				}
				resCh <- sw.solveTask(innerCtx, tk, opts)
			}
		}()
	}

	go func() {
		defer close(taskCh)
		for _, tk := range tasks {
			select {
			case taskCh <- tk:
			case <-innerCtx.Done():
				// Drain remaining tasks as cancelled results so indices stay
				// complete.
				resCh <- TaskResult{Index: tk.Index, Status: solver.Unknown}
			}
		}
	}()

	results := make([]TaskResult, 0, len(tasks))
	for len(results) < len(tasks) {
		res := <-resCh
		results = append(results, res)
		if observe != nil {
			observe(res)
		}
		if stopTriggered(opts.Stop, res.Status) {
			cancel()
		}
	}
	wg.Wait()
	close(resCh)
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// stopTriggered reports whether a result's status cancels the batch under
// the given stop policy.
func stopTriggered(mode StopMode, st solver.Status) bool {
	switch mode {
	case StopOnSat:
		return st == solver.Sat
	case StopOnDecided:
		return st == solver.Sat || st == solver.Unsat
	default:
		return false
	}
}

// solveWorker is the per-goroutine solving state: one persistent pooled
// solver plus the scratch needed to attribute statistics and conflict
// activity to individual tasks when the solver outlives them.  The network
// worker (worker.go) reuses it for its local solving slots.
type solveWorker struct {
	transport *Inproc
	solver    *solver.Solver
	retain    bool
	// prevAct is the solver's cumulative conflict activity after the
	// previous task (retain mode only); the per-task contribution is the
	// difference, since conflict activity grows monotonically.
	prevAct []float64
}

// newSolveWorker draws a pooled solver for one worker goroutine.
func newSolveWorker(t *Inproc, retain bool) *solveWorker {
	sw := &solveWorker{transport: t, solver: t.acquire(), retain: retain}
	if retain {
		// A pooled solver may carry conflict activity from a previous batch
		// that was already absorbed by the caller; without a Reset to zero
		// it, the per-task diff must start from the current cumulative
		// values.
		sw.prevAct = sw.solver.ConflictActivities()
	}
	return sw
}

// close returns the pooled solver.
func (w *solveWorker) close() { w.transport.release(w.solver) }

// searchAllowance is the search effort a budget leaves after charging the
// construction baseline (0 if the baseline alone exhausts it, which makes
// the budget trip immediately, exactly like a fresh solver).
func searchAllowance(budget, base uint64) uint64 {
	if budget <= base {
		return 0
	}
	return budget - base
}

// solveTask solves one subproblem on the worker's persistent solver.  The
// reported cost is the equivalent of a fresh solver's lifetime effort —
// construction-time (root-level) propagation plus the search under the
// assumptions — because each member of a decomposition family is
// conceptually solved from scratch, exactly as the paper's modified MiniSat
// re-reads C[X̃/α] for every subproblem.  Counting only the post-assumption
// search would report zero cost for subproblems already decided by root
// propagation.
//
// In pristine mode solver.Reset makes the search (and therefore the cost)
// bit-for-bit identical to a fresh solver's.  In retain mode the search
// benefits from previously learned clauses; the cost is the construction
// baseline plus this call's actual effort.
func (w *solveWorker) solveTask(ctx context.Context, t Task, opts BatchOptions) TaskResult {
	if t.Options != nil {
		return solveOverrideTask(ctx, w.transport.formula, t, opts)
	}
	s := w.solver
	start := time.Now()
	if w.retain {
		s.ClearInterrupt()
		// The solver's counters are cumulative across tasks, so a per-task
		// effort budget must be rebased onto the current totals.  Like a
		// fresh solver (whose lifetime counters include construction), the
		// budget charges the construction baseline, so the per-task search
		// allowance is budget minus baseline in both modes.
		b := opts.Budget
		base := s.BaseStats()
		if b.MaxConflicts > 0 {
			b.MaxConflicts = s.Stats().Conflicts + searchAllowance(b.MaxConflicts, base.Conflicts)
		}
		if b.MaxPropagations > 0 {
			b.MaxPropagations = s.Stats().Propagations + searchAllowance(b.MaxPropagations, base.Propagations)
		}
		s.SetBudget(b)
	} else {
		s.Reset()
		s.SetBudget(opts.Budget)
	}
	res, cancelled := solveInterruptibly(ctx, s, t.Assumptions)
	var taskStats solver.Stats
	var actVars []float64
	if w.retain {
		taskStats = s.BaseStats().Add(res.Stats)
		cur := s.ConflictActivities()
		actVars = make([]float64, len(cur))
		for v := range cur {
			prev := 0.0
			if v < len(w.prevAct) {
				prev = w.prevAct[v]
			}
			actVars[v] = cur[v] - prev
		}
		w.prevAct = cur
	} else {
		// Reset rebased the stats to the construction baseline and zeroed
		// the conflict activities, so the lifetime values are per-task.
		taskStats = s.Stats()
		actVars = s.ConflictActivities()
	}
	taskStats.SolveTime = time.Since(start)
	return TaskResult{
		Index:       t.Index,
		Cost:        solver.EffortCost(taskStats, opts.CostMetric),
		Status:      res.Status,
		Model:       res.Model,
		ActVars:     actVars,
		Stats:       taskStats,
		Started:     true,
		Interrupted: res.Interrupted,
		Cancelled:   cancelled,
	}
}

// solveOverrideTask solves a task that carries its own solver configuration
// (a portfolio member) on a fresh throwaway solver.  Its Stats cover the
// solve call only, matching the portfolio's per-member accounting.
func solveOverrideTask(ctx context.Context, f *cnf.Formula, t Task, opts BatchOptions) TaskResult {
	s := solver.New(f, *t.Options)
	s.SetBudget(opts.Budget)
	start := time.Now()
	res, cancelled := solveInterruptibly(ctx, s, t.Assumptions)
	stats := res.Stats
	stats.SolveTime = time.Since(start)
	return TaskResult{
		Index:       t.Index,
		Cost:        solver.EffortCost(stats, opts.CostMetric),
		Status:      res.Status,
		Model:       res.Model,
		ActVars:     s.ConflictActivities(),
		Stats:       stats,
		Started:     true,
		Interrupted: res.Interrupted,
		Cancelled:   cancelled,
	}
}

// solveInterruptibly runs one solve and converts a context cancellation
// into the solver's non-blocking interrupt, mirroring the paper's modified
// MiniSat that polls for leader messages during search.  cancelled reports
// that the solve ended inconclusively because of the cancellation (and not,
// say, its own budget): its cost then undercounts the subproblem.
func solveInterruptibly(ctx context.Context, s *solver.Solver, assumptions []cnf.Lit) (res solver.Result, cancelled bool) {
	done := make(chan struct{})
	go func() {
		res = s.SolveWithAssumptions(assumptions)
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.Interrupt()
		<-done
		// A solve that still concluded (the interrupt raced with a normal
		// finish) produced a complete cost; only inconclusive ones are
		// truncated.
		cancelled = res.Status == solver.Unknown
	}
	return res, cancelled
}
