package cluster

import (
	"context"
	"errors"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// ErrClosed is returned by Leader methods after Close.
var ErrClosed = errors.New("cluster: leader is closed")

// LeaderOptions configure a network leader.
type LeaderOptions struct {
	// SolverOptions is the shared solver configuration shipped to every
	// worker at registration (zero value: solver.DefaultOptions).
	SolverOptions solver.Options
	// Heartbeat is the ping interval; a worker silent for several
	// intervals is declared lost and its in-flight tasks are requeued
	// (0 means a 1s default).
	Heartbeat time.Duration
	// Logf, when non-nil, receives human-readable cluster events (worker
	// joins, losses, requeues).
	Logf func(format string, args ...any)
	// OnWorkerJoined, when non-nil, is called after a worker completes its
	// registration handshake, with the worker's self-reported name and slot
	// count.  It runs on the connection's goroutine and must not block.
	OnWorkerJoined func(name string, slots int)
	// OnWorkerLost, when non-nil, is called when a registered worker is
	// dropped (connection error, missed heartbeats or leader shutdown),
	// with the number of in-flight tasks that were requeued onto the
	// remaining workers.  It must not block.
	OnWorkerLost func(name string, requeued int)
	// OnTaskStolen, when non-nil, is called when queued tasks are revoked
	// from a backlogged worker for reassignment (BatchOptions.Steal), with
	// the victim's name and the number of tasks taken back.  It runs on
	// the victim's connection goroutine and must not block.
	OnTaskStolen func(name string, tasks int)
	// OnSpeculationWon, when non-nil, is called when the speculative
	// duplicate of a straggling task delivers the first (recorded) result
	// (BatchOptions.Speculate), with the winning worker's name.  It runs
	// on that worker's connection goroutine and must not block.
	OnSpeculationWon func(name string, tasks int)
}

// Leader is the network Transport: it accepts worker registrations on a TCP
// listener, ships each worker the formula once, streams task batches to
// them, and collects results.  It implements the leader role of the paper's
// MPI program PDSAT, including its non-blocking interrupt messages
// (stop-on-SAT and cancellation reach workers without waiting for them to
// finish their current subproblem).
//
// Run dispatches only to remote workers; the leader process itself solves
// nothing, like the PDSAT control process.  Workers may join at any time —
// including in the middle of a batch — and a worker whose connection is
// lost has its outstanding tasks requeued onto the remaining workers, so a
// batch survives worker churn as long as at least one worker eventually
// serves it.
type Leader struct {
	ln      net.Listener
	formula *cnf.Formula
	opts    LeaderOptions

	mu       sync.Mutex
	workers  map[uint64]*remoteWorker // guarded by mu
	nextID   uint64                   // guarded by mu
	batch    *netBatch                // guarded by mu
	batchSeq uint64                   // guarded by mu
	closed   bool                     // guarded by mu

	// runMu serializes Run calls: the wire protocol tracks one active
	// batch at a time.
	runMu sync.Mutex
}

// remoteWorker is the leader-side state of one registered worker.
type remoteWorker struct {
	id       uint64
	name     string
	capacity int
	w        *wire
	// gone, inflight and revoking are guarded by Leader.mu.
	gone     bool
	inflight map[int]Task
	// revoking marks an outstanding stealing revoke: the leader waits for
	// this worker's kindRevoked acknowledgement (or its death) before
	// planning another steal, so a task can never be in doubt between the
	// worker's queue and the leader's pending list.
	revoking bool
	// done is closed when the worker is dropped; it stops the pinger.
	done chan struct{}
}

// netBatch is the leader-side state of one Run call (guarded by Leader.mu).
type netBatch struct {
	id        uint64
	opts      BatchOptions
	pending   []Task
	got       []bool
	results   []TaskResult
	remaining int
	cancelled bool
	wake      chan struct{} // capacity 1; non-blocking notifications
	// spec maps a speculatively duplicated task index to the worker id the
	// duplicate was sent to (nil until the first duplication).  An index
	// present here is live on two workers at once; everywhere else a task
	// has exactly one live assignment.
	spec map[int]uint64
	// stats counts this batch's adaptive-dispatch actions.
	stats DispatchStats
}

// Listen starts a leader for the formula on the given TCP address
// (host:port; port 0 picks a free port, see Addr).
func Listen(addr string, f *cnf.Formula, opts LeaderOptions) (*Leader, error) {
	if opts.SolverOptions.VarDecay == 0 {
		opts.SolverOptions = solver.DefaultOptions()
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = defaultHeartbeat
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &Leader{ln: ln, formula: f, opts: opts, workers: make(map[uint64]*remoteWorker)}
	go l.acceptLoop()
	return l, nil
}

// Addr returns the address the leader is listening on.
func (l *Leader) Addr() net.Addr { return l.ln.Addr() }

func (l *Leader) logf(format string, args ...any) {
	if l.opts.Logf != nil {
		l.opts.Logf(format, args...)
	}
}

// Workers reports the summed capacity of the currently registered workers.
func (l *Leader) Workers() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := 0
	for _, rw := range l.workers {
		total += rw.capacity
	}
	return total
}

// WorkerCount reports how many workers are currently registered.
func (l *Leader) WorkerCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.workers)
}

// WaitForWorkers blocks until at least n workers are registered, the
// context is cancelled, or the leader is closed.
func (l *Leader) WaitForWorkers(ctx context.Context, n int) error {
	for {
		l.mu.Lock()
		count := len(l.workers)
		closed := l.closed
		l.mu.Unlock()
		if count >= n {
			return nil
		}
		if closed {
			return ErrClosed
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// Close stops accepting workers, tells the registered ones to shut down and
// disconnects them.
func (l *Leader) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	ws := workersByIDLocked(l.workers)
	if b := l.batch; b != nil {
		wakeLocked(b)
	}
	l.mu.Unlock()

	err := l.ln.Close()
	for _, rw := range ws {
		rw.w.send(&envelope{Kind: kindStop}) // best effort
		l.dropWorker(rw, ErrClosed)
	}
	return err
}

// acceptLoop registers incoming workers until the listener closes.
func (l *Leader) acceptLoop() {
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return
		}
		go l.handleConn(conn)
	}
}

// handleConn performs the registration handshake and then runs the per-
// worker read loop.
func (l *Leader) handleConn(conn net.Conn) {
	w := newWire(conn)
	env, err := w.recv(handshakeTimeout)
	if err != nil {
		w.close()
		return
	}
	if err := checkHello(env); err != nil {
		w.send(&envelope{Kind: kindStop, Err: err.Error()})
		w.close()
		l.logf("cluster: rejected worker from %s: %v", conn.RemoteAddr(), err)
		return
	}
	welcome := &envelope{
		Kind:          kindWelcome,
		Formula:       l.formula,
		SolverOptions: &l.opts.SolverOptions,
		Heartbeat:     l.opts.Heartbeat,
	}
	if err := w.send(welcome); err != nil {
		w.close()
		return
	}

	rw := &remoteWorker{
		name:     env.Name,
		capacity: env.Capacity,
		w:        w,
		inflight: make(map[int]Task),
		done:     make(chan struct{}),
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		w.send(&envelope{Kind: kindStop})
		w.close()
		return
	}
	l.nextID++
	rw.id = l.nextID
	l.workers[rw.id] = rw
	b := l.batch
	if b != nil {
		wakeLocked(b) // a running batch can start using the newcomer
	}
	l.mu.Unlock()
	l.logf("cluster: worker %q joined from %s with %d slot(s)", rw.name, conn.RemoteAddr(), rw.capacity)
	if l.opts.OnWorkerJoined != nil {
		l.opts.OnWorkerJoined(rw.name, rw.capacity)
	}

	go l.ping(rw)

	for {
		env, err := w.recv(l.opts.Heartbeat * readGraceFactor)
		if err != nil {
			l.dropWorker(rw, err)
			return
		}
		switch env.Kind {
		case kindResult:
			l.deliver(rw, env)
		case kindRevoked:
			l.handleRevoked(rw, env)
		case kindPong, kindHello:
			// Liveness is implied by the successful read.
		}
	}
}

// ping sends heartbeats until the worker is dropped.
func (l *Leader) ping(rw *remoteWorker) {
	t := time.NewTicker(l.opts.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-rw.done:
			return
		case <-t.C:
			if err := rw.w.send(&envelope{Kind: kindPing}); err != nil {
				l.dropWorker(rw, err)
				return
			}
		}
	}
}

// dropWorker unregisters a worker and requeues its in-flight tasks onto the
// active batch (as pending work, or as cancelled placeholders if the batch
// is already cancelled).  It is idempotent.
func (l *Leader) dropWorker(rw *remoteWorker, cause error) {
	l.mu.Lock()
	if rw.gone {
		l.mu.Unlock()
		return
	}
	rw.gone = true
	delete(l.workers, rw.id)
	requeued := 0
	if b := l.batch; b != nil {
		// Requeue in task-index order, not map order, so the surviving
		// workers see the lost worker's tasks in a stable sequence.
		idxs := make([]int, 0, len(rw.inflight))
		for idx := range rw.inflight {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			if b.got[idx] {
				continue
			}
			if l.assigneeLocked(idx) != nil {
				// A speculative copy of this task is still live on another
				// worker; that copy answers for it, so requeuing here would
				// duplicate the assignment.  If the dying worker held the
				// duplicate, the index becomes speculatable again.
				if b.spec[idx] == rw.id {
					delete(b.spec, idx)
				}
				continue
			}
			delete(b.spec, idx)
			if b.cancelled {
				placeholderLocked(b, idx)
			} else {
				b.pending = append(b.pending, rw.inflight[idx])
				requeued++
			}
		}
		wakeLocked(b)
	}
	rw.inflight = nil
	l.mu.Unlock()

	close(rw.done)
	rw.w.close()
	if requeued > 0 {
		l.logf("cluster: worker %q lost (%v); requeued %d task(s)", rw.name, cause, requeued)
	} else {
		l.logf("cluster: worker %q disconnected (%v)", rw.name, cause)
	}
	if l.opts.OnWorkerLost != nil {
		l.opts.OnWorkerLost(rw.name, requeued)
	}
}

// deliver records one result from a worker into the active batch.
func (l *Leader) deliver(rw *remoteWorker, env *envelope) {
	if env.Result == nil {
		return
	}
	res := env.Result.taskResult()
	l.mu.Lock()
	b := l.batch
	if b == nil || env.Batch != b.id || res.Index < 0 || res.Index >= len(b.got) {
		// Stale result from a finished or cancelled batch (e.g. a worker
		// that was presumed lost and answered late).
		l.mu.Unlock()
		return
	}
	delete(rw.inflight, res.Index)
	if b.got[res.Index] {
		l.mu.Unlock()
		return
	}
	b.got[res.Index] = true
	b.results = append(b.results, res)
	b.remaining--
	// Speculation resolution: the first result for a duplicated task wins
	// — in pristine batches both copies would be bit-identical, so this
	// decides timing, never content — and every other live copy is wiped
	// from the books and discarded on its worker.
	var losers []*remoteWorker
	specWin := false
	if dupID, dup := b.spec[res.Index]; dup {
		specWin = dupID == rw.id
		if specWin {
			b.stats.SpeculationWins++
		}
		for _, ow := range workersByIDLocked(l.workers) {
			if ow == rw {
				continue
			}
			if _, live := ow.inflight[res.Index]; live {
				delete(ow.inflight, res.Index)
				losers = append(losers, ow)
			}
		}
		delete(b.spec, res.Index)
	}
	broadcast := false
	if stopTriggered(b.opts.Stop, res.Status) && !b.cancelled {
		cancelLocked(b)
		broadcast = true
	}
	id := b.id
	winner := rw.name
	wakeLocked(b)
	l.mu.Unlock()
	for _, ow := range losers {
		// Best effort: a loser that misses the discard keeps solving a
		// stale copy whose eventual result the got guard drops.
		if err := ow.w.send(&envelope{Kind: kindRevoke, Batch: id, Discard: true, Indices: []int{res.Index}}); err != nil {
			l.dropWorker(ow, err)
		}
	}
	if specWin {
		l.logf("cluster: speculative duplicate of task %d won on worker %q", res.Index, winner)
		if l.opts.OnSpeculationWon != nil {
			l.opts.OnSpeculationWon(winner, 1)
		}
	}
	if broadcast {
		l.broadcastInterrupt(id)
	}
}

// handleRevoked processes a worker's stealing acknowledgement: only now do
// the revoked tasks move back onto the batch's pending queue.  Between the
// revoke and this acknowledgement a task stayed in the worker's inflight
// set, so a worker dying mid-steal requeues it exactly once through
// dropWorker — never zero times, never twice.
func (l *Leader) handleRevoked(rw *remoteWorker, env *envelope) {
	l.mu.Lock()
	rw.revoking = false
	b := l.batch
	if b == nil || env.Batch != b.id {
		l.mu.Unlock()
		return
	}
	stolen := 0
	for _, idx := range env.Indices {
		if idx < 0 || idx >= len(b.got) {
			continue
		}
		t, ok := rw.inflight[idx]
		if !ok {
			continue
		}
		delete(rw.inflight, idx)
		if b.got[idx] {
			continue
		}
		if l.assigneeLocked(idx) != nil {
			// The worker gave back a speculative duplicate; the surviving
			// copy stays the live assignment.
			if b.spec[idx] == rw.id {
				delete(b.spec, idx)
			}
			continue
		}
		delete(b.spec, idx)
		if b.cancelled {
			// The revoked copy left the worker's queue before the abort
			// could drain it as a placeholder, so it is accounted here.
			placeholderLocked(b, idx)
			continue
		}
		b.pending = append(b.pending, t)
		stolen++
	}
	if stolen > 0 {
		b.stats.TasksStolen += stolen
	}
	wakeLocked(b)
	victim := rw.name
	l.mu.Unlock()
	if stolen > 0 {
		l.logf("cluster: stole %d queued task(s) back from worker %q", stolen, victim)
		if l.opts.OnTaskStolen != nil {
			l.opts.OnTaskStolen(victim, stolen)
		}
	}
}

// assigneeLocked returns the registered worker currently holding the task
// index in its inflight set, nil if none (workers are scanned in id order,
// so ties — impossible outside speculation — are deterministic).
// requires mu
func (l *Leader) assigneeLocked(idx int) *remoteWorker {
	for _, rw := range workersByIDLocked(l.workers) {
		if _, ok := rw.inflight[idx]; ok {
			return rw
		}
	}
	return nil
}

// cancelLocked marks the batch cancelled and converts its not-yet-assigned
// tasks into placeholder results (callers hold Leader.mu).
func cancelLocked(b *netBatch) {
	b.cancelled = true
	for _, t := range b.pending {
		placeholderLocked(b, t.Index)
	}
	b.pending = nil
}

// placeholderLocked records a cancelled-before-start result (callers hold
// Leader.mu).
func placeholderLocked(b *netBatch, idx int) {
	if b.got[idx] {
		return
	}
	b.got[idx] = true
	b.results = append(b.results, TaskResult{Index: idx, Status: solver.Unknown})
	b.remaining--
}

// wakeLocked nudges the Run loop (callers hold Leader.mu).
func wakeLocked(b *netBatch) {
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// broadcastInterrupt tells every worker to abandon the batch.  This is the
// leader's non-blocking interrupt: workers poll for it mid-search.
func (l *Leader) broadcastInterrupt(batchID uint64) {
	l.broadcast(&envelope{Kind: kindInterrupt, Batch: batchID})
}

// broadcastAbort tells every worker to abandon the batch as a planned
// pruning abort.  On the worker the effect is identical to an interrupt
// (only the batch dies; connection and solver pool survive); the distinct
// message kind records intent on the wire and is what protocol version 2
// adds.
func (l *Leader) broadcastAbort(batchID uint64) {
	l.broadcast(&envelope{Kind: kindAbort, Batch: batchID})
}

// broadcast sends one envelope to every registered worker, dropping workers
// whose connection fails.
func (l *Leader) broadcast(env *envelope) {
	l.mu.Lock()
	ws := workersByIDLocked(l.workers)
	l.mu.Unlock()
	for _, rw := range ws {
		if err := rw.w.send(env); err != nil {
			l.dropWorker(rw, err)
		}
	}
}

// workersByIDLocked snapshots the worker map in registration (id) order so
// broadcast, shutdown and task assignment walk the workers deterministically
// instead of in map-iteration order (callers hold Leader.mu).
func workersByIDLocked(workers map[uint64]*remoteWorker) []*remoteWorker {
	ws := make([]*remoteWorker, 0, len(workers))
	for _, rw := range workers {
		ws = append(ws, rw)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].id < ws[j].id })
	return ws
}

// sendChunk is one pending kindTasks transmission planned under Leader.mu
// and sent outside it.
type sendChunk struct {
	rw    *remoteWorker
	tasks []Task
}

// targetDepth is the dispatch depth for one worker — in-flight plus locally
// queued tasks — as capacity times the batch's queue factor.  The default
// factor of 2 keeps one queued chunk hiding the network round-trip while
// results stream back; the evaluation engine's cost model shrinks the
// factor on heavy-tailed ζ so less work queues up behind a potential
// straggler.  A worker always gets at least its capacity, so its solving
// slots can fill.
func targetDepth(capacity int, factor float64) int {
	if factor <= 0 {
		return capacity * 2
	}
	d := int(math.Ceil(float64(capacity) * factor))
	if d < capacity {
		d = capacity
	}
	return d
}

// assign hands pending tasks to workers with spare dispatch depth (see
// targetDepth).  When the pending queue is dry and tasks remain unfinished,
// the batch's adaptive dispatch policies take over: stealing plans a revoke
// of queued tasks from the most backlogged worker, and speculation
// duplicates the batch's last unfinished tasks onto idle execution slots.
func (l *Leader) assign(b *netBatch) {
	var sends []sendChunk
	var stealFrom *remoteWorker
	stealCount := 0
	l.mu.Lock()
	if l.batch != b || b.cancelled {
		l.mu.Unlock()
		return
	}
	ws := workersByIDLocked(l.workers)
	if b.opts.Steal || b.opts.Speculate {
		// With adaptive dispatch on, fill free execution slots across the
		// whole cluster before topping up anyone's queue: a task just stolen
		// off a backlogged worker must land where it can run now, not bounce
		// back into the victim's spare dispatch depth in id order — that
		// bounce would steal the same task forever.  Steals are capped at
		// the cluster's free slots, so this pass absorbs every stolen task.
		sends = distributeLocked(b, ws, sends, func(rw *remoteWorker) int { return rw.capacity })
	}
	sends = distributeLocked(b, ws, sends, func(rw *remoteWorker) int {
		return targetDepth(rw.capacity, b.opts.QueueFactor)
	})
	if len(b.pending) == 0 && b.remaining > 0 {
		// While a steal acknowledgement is outstanding the revoked tasks'
		// custody is in transit — plan neither another steal nor a
		// speculation round until it lands (or the victim dies).
		revoking := false
		for _, rw := range ws {
			if rw.revoking {
				revoking = true
				break
			}
		}
		if !revoking {
			if b.opts.Steal {
				stealFrom, stealCount = planStealLocked(ws)
			}
			if b.opts.Speculate && stealFrom == nil {
				sends = append(sends, l.planSpeculationLocked(b, ws)...)
			}
		}
	}
	id, opts := b.id, b.opts
	l.mu.Unlock()
	for _, c := range sends {
		if err := c.rw.w.send(&envelope{Kind: kindTasks, Batch: id, Opts: &opts, Tasks: c.tasks}); err != nil {
			// dropWorker requeues the chunk we just marked in-flight.
			l.dropWorker(c.rw, err)
		}
	}
	if stealFrom != nil {
		if err := stealFrom.w.send(&envelope{Kind: kindRevoke, Batch: id, Count: stealCount}); err != nil {
			l.dropWorker(stealFrom, err)
		}
	}
}

// distributeLocked hands pending tasks to workers in id order, filling each
// worker up to limit(rw) outstanding tasks, and appends the planned
// transmissions to sends (callers hold Leader.mu and send outside it).
func distributeLocked(b *netBatch, ws []*remoteWorker, sends []sendChunk, limit func(*remoteWorker) int) []sendChunk {
	for _, rw := range ws {
		if len(b.pending) == 0 {
			break
		}
		spare := limit(rw) - len(rw.inflight)
		if spare <= 0 {
			continue
		}
		if spare > len(b.pending) {
			spare = len(b.pending)
		}
		ck := append([]Task(nil), b.pending[:spare]...)
		b.pending = b.pending[spare:]
		for _, t := range ck {
			rw.inflight[t.Index] = t
		}
		sends = append(sends, sendChunk{rw, ck})
	}
	return sends
}

// planStealLocked picks the stealing victim: the most backlogged worker
// (queued tasks beyond its execution slots; ties break to the oldest
// registration, since ws is in id order) while at least one other worker
// has a free execution slot.  It marks the victim as mid-revoke — at most
// one steal is in flight per worker, and none is planned while any is
// outstanding elsewhere, keeping every task's custody unambiguous.
// Callers hold Leader.mu.
func planStealLocked(ws []*remoteWorker) (*remoteWorker, int) {
	idle := 0
	for _, rw := range ws {
		if free := rw.capacity - len(rw.inflight); free > 0 {
			idle += free
		}
	}
	if idle == 0 {
		return nil, 0
	}
	var victim *remoteWorker
	backlog := 0
	for _, rw := range ws {
		if bl := len(rw.inflight) - rw.capacity; bl > backlog {
			backlog, victim = bl, rw
		}
	}
	if victim == nil {
		return nil, 0
	}
	count := backlog
	if count > idle {
		count = idle
	}
	victim.revoking = true
	return victim, count
}

// planSpeculationLocked duplicates the batch's unfinished tail onto idle
// execution slots: once fewer tasks remain than the cluster has slots, each
// unfinished, not-yet-duplicated task is copied to one worker (in id order)
// with a free slot that is not its current owner.  The first result per
// index wins in deliver; duplicates never enter b.results twice, so the
// caller's accounting sees exactly one result per task.  Callers hold
// Leader.mu.
func (l *Leader) planSpeculationLocked(b *netBatch, ws []*remoteWorker) []sendChunk {
	capacity := 0
	for _, rw := range ws {
		capacity += rw.capacity
	}
	if b.remaining > capacity {
		return nil
	}
	var sends []sendChunk
	for idx := 0; idx < len(b.got); idx++ {
		if b.got[idx] {
			continue
		}
		if _, dup := b.spec[idx]; dup {
			continue
		}
		owner := l.assigneeLocked(idx)
		if owner == nil {
			continue
		}
		var target *remoteWorker
		for _, rw := range ws {
			if rw == owner || rw.capacity-len(rw.inflight) <= 0 {
				continue
			}
			target = rw
			break
		}
		if target == nil {
			continue
		}
		if b.spec == nil {
			b.spec = make(map[int]uint64)
		}
		b.spec[idx] = target.id
		b.stats.SpeculativeDuplicates++
		t := owner.inflight[idx]
		target.inflight[idx] = t
		sends = append(sends, sendChunk{target, []Task{t}})
	}
	return sends
}

// Run implements Transport: it streams the tasks to the registered workers
// and collects one result per task.  If no worker is registered, Run waits
// for one to join (bound the wait with the context or WaitForWorkers).
func (l *Leader) Run(ctx context.Context, tasks []Task, opts BatchOptions) ([]TaskResult, error) {
	return l.RunObserved(ctx, tasks, opts, nil)
}

// RunObserved implements ObservedTransport: observe (when non-nil) receives
// every collected result from the batch loop's goroutine as workers deliver
// them, in the same order as the returned slice.
func (l *Leader) RunObserved(ctx context.Context, tasks []Task, opts BatchOptions, observe func(TaskResult)) ([]TaskResult, error) {
	return l.RunAbortable(ctx, tasks, opts, observe, nil)
}

// RunAbortable implements AbortableTransport: when abort fires, the leader
// converts the batch's unassigned tasks into placeholders and broadcasts a
// kindAbort to the workers — cancelling only this batch's in-flight solves,
// never the worker connections — then keeps collecting until every task has
// answered.  The call returns the full result set with a nil error; a
// context cancellation racing the abort takes precedence and is reported as
// usual.
func (l *Leader) RunAbortable(ctx context.Context, tasks []Task, opts BatchOptions, observe func(TaskResult), abort <-chan struct{}) ([]TaskResult, error) {
	results, _, err := l.RunDispatch(ctx, tasks, opts, observe, abort)
	return results, err
}

// RunDispatch implements DispatchTransport: RunAbortable plus the batch's
// adaptive-dispatch statistics.  Stealing and speculation run only when the
// batch options ask for them, so a RunDispatch call with a zero-policy
// BatchOptions behaves — and schedules — exactly like RunAbortable.
func (l *Leader) RunDispatch(ctx context.Context, tasks []Task, opts BatchOptions, observe func(TaskResult), abort <-chan struct{}) ([]TaskResult, DispatchStats, error) {
	if err := checkBatch(tasks); err != nil {
		return nil, DispatchStats{}, err
	}
	l.runMu.Lock()
	defer l.runMu.Unlock()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, DispatchStats{}, ErrClosed
	}
	l.batchSeq++
	b := &netBatch{
		id:        l.batchSeq,
		opts:      opts,
		pending:   append([]Task(nil), tasks...),
		got:       make([]bool, len(tasks)),
		results:   make([]TaskResult, 0, len(tasks)),
		remaining: len(tasks),
		wake:      make(chan struct{}, 1),
	}
	l.batch = b
	l.mu.Unlock()

	defer func() {
		l.mu.Lock()
		l.batch = nil
		for _, rw := range l.workers {
			rw.inflight = make(map[int]Task)
			// A steal acknowledgement still in flight refers to a dead
			// batch; don't let it block the next batch's stealing.
			rw.revoking = false
		}
		l.mu.Unlock()
		// Idempotent batch teardown: workers drop any leftover batch state.
		l.broadcastInterrupt(b.id)
	}()

	// The ticker is a backstop for assignment opportunities that produce no
	// wake (and for requeues racing with the loop); every state change also
	// nudges b.wake directly.
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	// reported tracks how much of b.results has been streamed to observe;
	// the batch loop is the only reporter, so the order matches the slice.
	reported := 0
	ctxDone := ctx.Done()
	for {
		l.assign(b)
		l.mu.Lock()
		done := b.remaining == 0
		closed := l.closed
		l.mu.Unlock()
		l.reportNew(b, &reported, observe)
		if done {
			break
		}
		if closed {
			// Stream anything delivered between reportNew and this
			// snapshot, keeping the one-observe-call-per-result contract
			// on the abnormal exit too.
			results := l.snapshotResults(b)
			if observe != nil {
				for _, res := range results[reported:] {
					observe(res)
				}
			}
			return results, l.snapshotDispatchStats(b), ErrClosed
		}
		select {
		case <-b.wake:
		case <-ticker.C:
		case <-abort:
			// Planned pruning abort: like a cancellation, but scoped to the
			// batch (workers stay registered) and reported as a normal
			// outcome rather than an error.
			abort = nil
			l.mu.Lock()
			broadcast := !b.cancelled
			if broadcast {
				cancelLocked(b)
			}
			l.mu.Unlock()
			if broadcast {
				l.broadcastAbort(b.id)
			}
		case <-ctxDone:
			// First cancellation notice: convert unassigned tasks into
			// placeholders and interrupt the workers, then keep collecting
			// the in-flight results (workers answer promptly once
			// interrupted; a hung worker is eventually declared lost by the
			// heartbeat, which converts its tasks into placeholders too).
			ctxDone = nil
			l.mu.Lock()
			broadcast := !b.cancelled
			if broadcast {
				cancelLocked(b)
			}
			l.mu.Unlock()
			if broadcast {
				l.broadcastInterrupt(b.id)
			}
		}
	}
	results := l.snapshotResults(b)
	if err := ctx.Err(); err != nil {
		return results, l.snapshotDispatchStats(b), err
	}
	return results, l.snapshotDispatchStats(b), nil
}

// snapshotResults copies the batch results under the lock (late stale
// deliveries may still append concurrently on abnormal exits).
func (l *Leader) snapshotResults(b *netBatch) []TaskResult {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]TaskResult(nil), b.results...)
}

// snapshotDispatchStats copies the batch's dispatch counters under the lock.
func (l *Leader) snapshotDispatchStats(b *netBatch) DispatchStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return b.stats
}

// reportNew streams the not-yet-reported tail of the batch results to
// observe.  Only the batch loop calls it, so *reported needs no lock; the
// results are copied under the lock and observed outside it.
func (l *Leader) reportNew(b *netBatch, reported *int, observe func(TaskResult)) {
	if observe == nil {
		return
	}
	l.mu.Lock()
	fresh := append([]TaskResult(nil), b.results[*reported:]...)
	l.mu.Unlock()
	*reported += len(fresh)
	for _, res := range fresh {
		observe(res)
	}
}
