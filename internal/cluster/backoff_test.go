package cluster

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/internal/solver"
)

// TestRedialDelaySchedule pins the redial backoff shape: the base doubles
// per consecutive failure, caps at maxRedial, and carries a deterministic
// per-worker jitter of at most +50% — so a fleet of workers that lost the
// same leader at the same instant fans out instead of thundering back in
// lockstep, and a restarted worker reproduces its exact schedule.
func TestRedialDelaySchedule(t *testing.T) {
	const base = time.Second
	for attempt := 0; attempt < 12; attempt++ {
		want := base << attempt
		if want > maxRedial || want <= 0 { // <<= overflow guard for the test's own math
			want = maxRedial
		}
		d := redialDelay(base, attempt, "w1")
		if d < want || d > want+want/2 {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, want, want+want/2)
		}
	}

	// Deterministic: the same (base, attempt, name) always maps to the same
	// delay, so restarts replay the exact schedule.
	for attempt := 0; attempt < 6; attempt++ {
		if a, b := redialDelay(base, attempt, "w1"), redialDelay(base, attempt, "w1"); a != b {
			t.Fatalf("attempt %d: nondeterministic delay %v vs %v", attempt, a, b)
		}
	}

	// Decorrelated: differently named workers do not share a schedule.
	same := 0
	for attempt := 0; attempt < 8; attempt++ {
		if redialDelay(base, attempt, "w1") == redialDelay(base, attempt, "w2") {
			same++
		}
	}
	if same == 8 {
		t.Fatal("two differently named workers got an identical redial schedule")
	}

	// No redial configured means no delay.
	if d := redialDelay(0, 3, "w1"); d != 0 {
		t.Fatalf("zero base produced delay %v", d)
	}
}

// TestServeBacksOffAgainstBrokenLeader points a worker at a listener that
// accepts connections and immediately drops them — registration never
// completes, so every dial is a consecutive failure and the worker must walk
// the growing redialDelay schedule (the seed's bug was a fixed 1s retry that
// never backed off).  The logged delays are compared against the exact
// schedule, which also pins that the attempt counter is not reset by a
// connection that merely *connected* without registering.
func TestServeBacksOffAgainstBrokenLeader(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close() // never send a welcome
		}
	}()

	const base = time.Millisecond
	var mu sync.Mutex
	var delays []string
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- Serve(ctx, ln.Addr().String(), WorkerOptions{
			Capacity: 1,
			Name:     "prober",
			Redial:   base,
			Logf: func(format string, args ...any) {
				if !strings.Contains(format, "redialing in") {
					return
				}
				mu.Lock()
				delays = append(delays, args[len(args)-1].(time.Duration).String())
				if len(delays) == 5 {
					cancel()
				}
				mu.Unlock()
			},
		})
	}()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Serve returned %v, want context.Canceled after 5 redials", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker never reached 5 redial attempts")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(delays) < 5 {
		t.Fatalf("saw %d redial delays, want 5", len(delays))
	}
	for attempt := 0; attempt < 5; attempt++ {
		want := redialDelay(base, attempt, "prober").String()
		if delays[attempt] != want {
			t.Fatalf("redial %d waited %s, want %s (full schedule %v)", attempt, delays[attempt], want, delays)
		}
	}
}

// TestServeBackoffResetsAfterRegistration checks the other half of the
// backoff contract: a completed registration resets the attempt counter.  A
// scripted leader welcomes every connection and then drops it abruptly (no
// kindStop), so each cycle is register → lose → redial; because every
// connection registered, every redial must use the attempt-0 delay instead
// of the inflated tail the previous failures would otherwise have built up.
func TestServeBackoffResetsAfterRegistration(t *testing.T) {
	f := requeueFormula()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				w := newWire(conn)
				defer w.close()
				if _, err := w.recv(handshakeTimeout); err != nil { // hello
					return
				}
				sopts := solver.DefaultOptions()
				// A valid welcome completes the registration; closing the
				// connection right after is the abrupt leader death.
				_ = w.send(&envelope{Kind: kindWelcome, Formula: f, SolverOptions: &sopts, Heartbeat: time.Second})
			}(conn)
		}
	}()

	const base = time.Millisecond
	var mu sync.Mutex
	var delays []string
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- Serve(ctx, ln.Addr().String(), WorkerOptions{
			Capacity: 1,
			Name:     "returner",
			Redial:   base,
			Logf: func(format string, args ...any) {
				if !strings.Contains(format, "redialing in") {
					return
				}
				mu.Lock()
				delays = append(delays, args[len(args)-1].(time.Duration).String())
				if len(delays) == 4 {
					cancel()
				}
				mu.Unlock()
			},
		})
	}()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Serve returned %v, want context.Canceled after 4 register/lose cycles", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker never reached 4 register/lose cycles")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(delays) < 4 {
		t.Fatalf("saw %d redial delays, want 4", len(delays))
	}
	want := redialDelay(base, 0, "returner").String()
	for i, d := range delays {
		if d != want {
			t.Fatalf("redial %d after a successful registration waited %s, want the attempt-0 delay %s (schedule %v)",
				i, d, want, delays)
		}
	}
}
