package cluster_test

import (
	"context"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cluster"
	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/decomp"
	"github.com/paper-repro/pdsat-go/internal/encoder"
	"github.com/paper-repro/pdsat-go/internal/pdsat"
	"github.com/paper-repro/pdsat-go/internal/portfolio"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// testInstance builds the small weakened A5/1 instance used across the
// runner tests.
func testInstance(t *testing.T) *encoder.Instance {
	t.Helper()
	inst, err := encoder.NewInstance(encoder.A51(), encoder.Config{
		KeystreamLen: 40, KnownSuffix: 44, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func testPoint(t *testing.T, inst *encoder.Instance, n int) decomp.Point {
	t.Helper()
	space := decomp.NewSpace(inst.UnknownStartVars())
	p, err := space.PointFromVars(space.Vars()[:n])
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// startLeader spins up a loopback leader plus one real worker process
// (in-process goroutine running the worker protocol) and waits for the
// registration to complete.
func startLeader(t *testing.T, inst *encoder.Instance, capacity int) *cluster.Leader {
	t.Helper()
	leader, err := cluster.Listen("127.0.0.1:0", inst.CNF, cluster.LeaderOptions{
		Heartbeat: 100 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader.Close() })
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go func() {
		// Serve returns nil when the leader closes the worker down.
		_ = cluster.Serve(ctx, leader.Addr().String(), cluster.WorkerOptions{
			Capacity: capacity, Name: "test-worker", Logf: t.Logf,
		})
	}()
	waitCtx, waitCancel := context.WithTimeout(ctx, 10*time.Second)
	defer waitCancel()
	if err := leader.WaitForWorkers(waitCtx, 1); err != nil {
		t.Fatalf("worker did not register: %v", err)
	}
	return leader
}

// TestNetEstimateBitIdenticalToInproc is the acceptance regression for the
// network transport: a fixed-seed EvaluatePoint routed through a loopback
// TCP worker must be bit-for-bit identical to the in-process estimate —
// same sample costs, same F value, same absorbed conflict activity, same
// aggregate statistics — because every subproblem is solved from a pristine
// solver state regardless of which worker (goroutine or remote machine)
// processed it.
func TestNetEstimateBitIdenticalToInproc(t *testing.T) {
	inst := testInstance(t)
	p := testPoint(t, inst, 8)
	cfg := pdsat.Config{SampleSize: 24, Workers: 3, Seed: 7, CostMetric: solver.CostPropagations}

	local := pdsat.NewRunner(inst.CNF, cfg)

	leader := startLeader(t, inst, 3)
	netCfg := cfg
	netCfg.Transport = leader
	remote := pdsat.NewRunner(inst.CNF, netCfg)

	// Two evaluations back to back: the second exercises batch reuse of the
	// same worker connection (and of its pooled solvers).
	for round := 0; round < 2; round++ {
		le, err := local.EvaluatePoint(context.Background(), p)
		if err != nil {
			t.Fatalf("round %d: inproc: %v", round, err)
		}
		re, err := remote.EvaluatePoint(context.Background(), p)
		if err != nil {
			t.Fatalf("round %d: net: %v", round, err)
		}
		if le.Estimate.Value != re.Estimate.Value {
			t.Fatalf("round %d: F differs: inproc %v, net %v", round, le.Estimate.Value, re.Estimate.Value)
		}
		lv, rv := le.Sample.Values(), re.Sample.Values()
		if len(lv) != len(rv) {
			t.Fatalf("round %d: sample sizes differ: %d vs %d", round, len(lv), len(rv))
		}
		for i := range lv {
			if lv[i] != rv[i] {
				t.Fatalf("round %d: sample %d differs: inproc %v, net %v", round, i, lv[i], rv[i])
			}
		}
		if le.SatisfiableSamples != re.SatisfiableSamples {
			t.Fatalf("round %d: SAT counts differ: %d vs %d", round, le.SatisfiableSamples, re.SatisfiableSamples)
		}
	}

	if l, r := local.SubproblemsSolved(), remote.SubproblemsSolved(); l != r {
		t.Fatalf("subproblem counts differ: inproc %d, net %d", l, r)
	}
	la, ra := local.AggregateStats(), remote.AggregateStats()
	la.SolveTime, ra.SolveTime = 0, 0 // wall time legitimately differs
	if la != ra {
		t.Fatalf("aggregate stats differ:\ninproc %+v\nnet    %+v", la, ra)
	}
	for v := 1; v <= inst.CNF.NumVars; v++ {
		if l, r := local.VarActivity(cnf.Var(v)), remote.VarActivity(cnf.Var(v)); l != r {
			t.Fatalf("conflict activity of variable %d differs: inproc %v, net %v", v, l, r)
		}
	}
}

// TestNetSolveStopOnSat exercises the leader→worker interrupt broadcast:
// processing a decomposition family over the network with StopOnSat must
// find the planted key and terminate (cancelling the in-flight subproblems
// instead of waiting for the whole family).
func TestNetSolveStopOnSat(t *testing.T) {
	inst := testInstance(t)
	p := testPoint(t, inst, 10)
	leader := startLeader(t, inst, 2)
	cfg := pdsat.Config{SampleSize: 4, Seed: 1, Transport: leader}
	r := pdsat.NewRunner(inst.CNF, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	report, err := r.Solve(ctx, p, pdsat.SolveOptions{StopOnSat: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.FoundSat {
		t.Fatal("expected a satisfiable subproblem (the planted secret)")
	}
	if ok, err := inst.CheckRecoveredState(encoder.A51(), report.Model); err != nil || !ok {
		t.Fatalf("recovered state does not reproduce the keystream (ok=%v, err=%v)", ok, err)
	}
}

// TestNetRunnerInterruptPartialEstimate checks the Ctrl-C semantics end to
// end over the network: cancelling mid-evaluation returns a partial
// estimate plus the context error.
func TestNetRunnerInterruptPartialEstimate(t *testing.T) {
	inst := testInstance(t)
	p := testPoint(t, inst, 8)
	leader := startLeader(t, inst, 2)
	cfg := pdsat.Config{SampleSize: 64, Seed: 5, Transport: leader, CostMetric: solver.CostPropagations}
	r := pdsat.NewRunner(inst.CNF, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	est, err := r.EvaluatePoint(ctx, p)
	if err == nil {
		// The whole sample finished before the cancel landed; nothing to
		// assert beyond a complete estimate.
		if est == nil || est.Interrupted {
			t.Fatal("uninterrupted evaluation must return a complete estimate")
		}
		return
	}
	if est == nil {
		t.Skip("cancelled before any subproblem completed")
	}
	if !est.Interrupted {
		t.Fatal("partial estimate must be marked Interrupted")
	}
	if n := len(est.Sample.Values()); n == 0 || n > 64 {
		t.Fatalf("partial sample has %d values, want 1..64", n)
	}
}

// TestPortfolioOverTransport runs the portfolio members as cluster tasks on
// the loopback network transport and checks it reaches the same conclusion
// as the local goroutine race.
func TestPortfolioOverTransport(t *testing.T) {
	inst := testInstance(t)

	localRes, err := portfolio.Solve(context.Background(), inst.CNF, portfolio.Options{
		CostMetric: solver.CostPropagations,
	})
	if err != nil {
		t.Fatal(err)
	}

	leader := startLeader(t, inst, 3)
	pf, err := portfolio.New(inst.CNF, portfolio.Options{
		CostMetric: solver.CostPropagations,
		Transport:  leader,
	})
	if err != nil {
		t.Fatal(err)
	}
	netRes, err := pf.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if netRes.Status != localRes.Status {
		t.Fatalf("portfolio status differs: local %v, net %v", localRes.Status, netRes.Status)
	}
	if netRes.Winner == "" {
		t.Fatal("expected a conclusive winner over the transport")
	}
	if netRes.Status == solver.Sat && !inst.CNF.IsSatisfiedBy(netRes.Model) {
		t.Fatal("winner's model does not satisfy the formula")
	}
	if len(netRes.MemberStats) == 0 {
		t.Fatal("expected per-member statistics from the transport run")
	}
}
