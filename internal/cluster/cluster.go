// Package cluster dispatches batches of SAT subproblems to a pool of
// workers and collects their results.  It is the communication layer of the
// paper's PDSAT leader/worker architecture: the leader (internal/pdsat's
// Runner) prepares a batch of subproblems — a decomposition set plus
// assumption vectors plus a solver configuration — and a Transport decides
// where the subproblems actually run.
//
// Two backends implement Transport:
//
//   - Inproc runs the subproblems on goroutines inside the current process,
//     each owning one persistent solver, exactly like the original
//     goroutine-based runner.  This is the default and is bit-for-bit
//     identical to running without a cluster at all.
//
//   - Leader/Serve form a network transport (stdlib-only: encoding/gob over
//     TCP).  A leader listens for workers, ships them the formula once at
//     registration, streams task batches, broadcasts non-blocking
//     interrupts (stop-on-SAT, Ctrl-C), exchanges heartbeats, and requeues
//     the in-flight tasks of a lost worker onto the remaining ones.  This
//     reproduces the MPI leader/worker deployment of the paper's
//     experiments (conf_pact_SemenovZ15 §4) across real machines.
//
// The contract is the same for every backend: Run returns exactly one
// TaskResult per task, in completion order; tasks cancelled before a solver
// saw them yield placeholder results with Started == false; on context
// cancellation the partial results collected so far are returned together
// with the context's error.
//
// # Protocol compatibility
//
// The network transport speaks a versioned wire protocol (see proto.go for
// the version history).  Version 3 adds the task-revoke exchange behind
// work stealing and speculative straggler re-dispatch.  There is no
// cross-version negotiation: a v2 worker dialing a v3 leader (or vice
// versa) is rejected at registration with an explicit version-mismatch
// error, because a worker that ignores revokes would wedge the leader's
// steal bookkeeping and keep solving speculation losers whose results the
// leader has already recorded.  Deployments must upgrade leaders and
// workers together; the rejected worker fails fast (ErrRejected) instead
// of redialing forever.
package cluster

import (
	"context"
	"errors"
	"fmt"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// Task is one subproblem: solve the transport's formula under the given
// assumptions.
type Task struct {
	// Index identifies the task within its batch.  A batch's indices must
	// be exactly 0..len(tasks)-1 (each once); both backends rely on this to
	// track completion and requeue lost work.
	Index int
	// Assumptions select the subproblem C[X̃/α].
	Assumptions []cnf.Lit
	// Options optionally overrides the transport's shared solver
	// configuration for this task (used by the portfolio approach, where
	// every member is the same instance under a different configuration).
	// Override tasks are solved on a fresh throwaway solver instead of a
	// pooled one, and their Stats cover only the solve call itself, like a
	// portfolio member's.  Nil means the shared pooled configuration.
	Options *solver.Options
}

// TaskResult is the outcome of one subproblem solve.  It is the wire-level
// (gob-encodable) mirror of what the in-process runner collects per task.
type TaskResult struct {
	// Index echoes Task.Index.
	Index int
	// Cost is the subproblem's observed cost in the batch's cost metric.
	Cost float64
	// Status is the solver's conclusion (Unknown if interrupted/budgeted).
	Status solver.Status
	// Model is a satisfying assignment when Status == Sat.
	Model cnf.Assignment
	// ActVars is the per-variable conflict-activity contribution of this
	// subproblem, indexed by cnf.Var.
	ActVars []float64
	// Stats are the solver statistics attributed to this subproblem.
	Stats solver.Stats
	// Started distinguishes real solves (even interrupted ones) from
	// placeholders for tasks cancelled before a solver ever saw them.
	Started bool
	// Interrupted reports whether the solve ended early (interrupt message
	// or exhausted budget).
	Interrupted bool
	// Cancelled reports that the solve was cut short inconclusively by a
	// batch cancellation (context cancelled or stop-on-SAT) rather than by
	// its own per-task budget: its cost undercounts the subproblem's true
	// effort and must not be used as a Monte Carlo sample.  The effort it
	// did spend is still real (Stats), so aggregate accounting may keep it.
	Cancelled bool
}

// IsInterruption reports whether an error is a context cancellation — the
// only transport error for which partial results are meaningful (all other
// errors mean the batch genuinely failed).
func IsInterruption(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// StopMode tells a transport when to cancel the remainder of a batch.
type StopMode int

const (
	// StopNone processes every task of the batch.
	StopNone StopMode = iota
	// StopOnSat cancels the batch as soon as one task reports Sat
	// (solving mode of the paper: stop at the first recovered key).
	StopOnSat
	// StopOnDecided cancels the batch as soon as one task reports Sat or
	// Unsat (portfolio mode: the first conclusive member wins).
	StopOnDecided
)

// BatchOptions configure one Run call.
type BatchOptions struct {
	// Stop selects the early-cancellation policy.
	Stop StopMode
	// Retain lets each worker keep learned clauses, activities and phases
	// across the tasks it processes in this batch (MiniSat-style
	// incremental reuse); otherwise every task starts from the solver's
	// pristine post-construction state, which makes its cost independent
	// of scheduling.
	Retain bool
	// Budget bounds the effort spent on a single task (0 fields mean
	// unlimited).
	Budget solver.Budget
	// CostMetric selects the unit of TaskResult.Cost.
	CostMetric solver.CostMetric
	// Steal lets a dispatching transport revoke queued (not yet started)
	// tasks from a backlogged worker and reassign them to an idle one.
	// Only DispatchTransport backends honour it; stealing moves tasks
	// between workers but never changes which subproblems are solved, so
	// in pristine (non-Retain) batches the results are unaffected.
	Steal bool
	// Speculate lets a dispatching transport duplicate the last unfinished
	// tasks of a batch onto idle slots: the first result per task index
	// wins and the losing copy is discarded.  Task results are a pure
	// function of the task in pristine batches, so which copy wins never
	// changes the result content — only how soon it arrives.
	Speculate bool
	// QueueFactor is the dispatch layer's target depth per worker as a
	// multiple of its capacity (in-flight plus locally queued tasks).
	// 0 means the historical default of 2 — one executing chunk plus one
	// queued chunk hiding the network round-trip; values below 1 are
	// raised to 1 so a worker can always fill its solving slots.  The
	// evaluation engine's cost model shrinks it when the observed ζ
	// distribution is heavy-tailed (queued work behind a straggler is
	// exactly what stealing has to undo) and grows it when costs
	// concentrate.
	QueueFactor float64
}

// Transport runs batches of tasks for one fixed formula.  Implementations
// must return one TaskResult per task (see the package comment for the
// exact contract).  A Transport is bound to the formula it was created
// with; the pdsat Runner using it must be built on the same formula.
type Transport interface {
	// Run distributes the tasks, waits for the batch to finish (or be
	// cancelled) and returns the results in completion order.
	Run(ctx context.Context, tasks []Task, opts BatchOptions) ([]TaskResult, error)
	// Workers reports the current solving capacity (number of concurrent
	// subproblem slots).
	Workers() int
	// Close releases the transport's resources.  Closing the default
	// in-process transport is a no-op; closing a network leader
	// disconnects its workers.
	Close() error
}

// ObservedTransport is implemented by transports that can report batch
// progress while a Run call is still in flight.  observe is called once per
// TaskResult, in the same completion order in which the result will appear
// in Run's return value, from a single goroutine; it must not block for
// long, since it runs on the batch's collection path.  Both built-in
// backends (Inproc and Leader) implement it; callers fall back to plain Run
// when a transport does not.
type ObservedTransport interface {
	Transport
	// RunObserved behaves exactly like Run but additionally streams every
	// collected TaskResult to observe as it arrives.
	RunObserved(ctx context.Context, tasks []Task, opts BatchOptions, observe func(TaskResult)) ([]TaskResult, error)
}

// AbortableTransport is implemented by transports that support a
// caller-initiated mid-batch abort, the mechanism behind the evaluation
// engine's incumbent pruning: when the abort channel fires (is closed or
// sent to), the transport cancels the remainder of the batch — in-flight
// solves receive the solver's non-blocking interrupt and report truncated
// results marked Cancelled, tasks no solver has seen yet become placeholder
// results with Started == false — while the transport itself stays fully
// usable: the network leader keeps its workers connected (it cancels only
// the batch, via a kindAbort message), and the in-process backend keeps its
// solver pool.
//
// Unlike a context cancellation, an abort is a planned outcome: the call
// still returns one result per task and a nil error (unless ctx was also
// cancelled, which takes precedence).  Both built-in backends implement it;
// callers fall back to stage-boundary pruning when a transport does not.
type AbortableTransport interface {
	ObservedTransport
	// RunAbortable behaves exactly like RunObserved but additionally
	// abandons the remainder of the batch when abort fires.  A nil abort
	// channel makes it identical to RunObserved.
	RunAbortable(ctx context.Context, tasks []Task, opts BatchOptions, observe func(TaskResult), abort <-chan struct{}) ([]TaskResult, error)
}

// DispatchStats counts the adaptive-dispatch actions of one batch.  All
// three are scheduling events: none of them changes the per-task results,
// which stay exactly one per index with content independent of where (and
// how often) a task ran.
type DispatchStats struct {
	// TasksStolen counts queued tasks revoked from a backlogged worker and
	// reassigned to another one.
	TasksStolen int
	// SpeculativeDuplicates counts unfinished tasks duplicated onto idle
	// slots near the end of a batch.
	SpeculativeDuplicates int
	// SpeculationWins counts speculated tasks whose duplicate copy
	// delivered the first (and therefore recorded) result.
	SpeculationWins int
}

// DispatchTransport is implemented by transports whose dispatch layer can
// reassign or duplicate tasks between workers — work stealing and
// speculative straggler re-dispatch, enabled per batch through
// BatchOptions.Steal/Speculate — and report what it did.  The network
// Leader implements it; the in-process backend does not (its workers pull
// from one shared queue, so imbalance cannot build up).  Callers fall back
// to RunAbortable when a transport does not implement it.
type DispatchTransport interface {
	AbortableTransport
	// RunDispatch behaves exactly like RunAbortable but additionally
	// returns the batch's dispatch statistics.
	RunDispatch(ctx context.Context, tasks []Task, opts BatchOptions, observe func(TaskResult), abort <-chan struct{}) ([]TaskResult, DispatchStats, error)
}

// checkBatch validates the index contract shared by every backend.
func checkBatch(tasks []Task) error {
	seen := make([]bool, len(tasks))
	for _, t := range tasks {
		if t.Index < 0 || t.Index >= len(tasks) || seen[t.Index] {
			return fmt.Errorf("cluster: batch task indices must be a permutation of 0..%d (got index %d)",
				len(tasks)-1, t.Index)
		}
		seen[t.Index] = true
	}
	return nil
}
