package cluster

import (
	"context"
	"net"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/internal/solver"
)

// hoardingWorker registers with a large capacity, swallows every task it is
// handed, answers pings, and reacts to the leader's steal revoke in one of
// two ways: ack the revoke (giving back the requested tail of its queue) and
// then die, or die without acking.  Both orders must leave every task solved
// exactly once — the acked tasks requeue through handleRevoked, everything
// still in the dead worker's custody requeues through dropWorker, and
// nothing requeues through both.
func hoardingWorker(t *testing.T, addr string, capacity, expect int, ackSteal bool, gotTasks chan<- int) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		t.Errorf("hoarding worker dial: %v", err)
		close(gotTasks)
		return
	}
	w := newWire(conn)
	defer w.close()
	if err := w.send(helloFor("hoarder", capacity)); err != nil {
		t.Errorf("hoarding worker hello: %v", err)
		close(gotTasks)
		return
	}
	if _, err := w.recv(handshakeTimeout); err != nil { // welcome
		t.Errorf("hoarding worker welcome: %v", err)
		close(gotTasks)
		return
	}
	var held []int
	reported := false
	for {
		env, err := w.recv(10 * time.Second)
		if err != nil {
			t.Errorf("hoarding worker read: %v", err)
			if !reported {
				close(gotTasks)
			}
			return
		}
		switch env.Kind {
		case kindPing:
			if err := w.send(&envelope{Kind: kindPong}); err != nil {
				t.Errorf("hoarding worker pong: %v", err)
				if !reported {
					close(gotTasks)
				}
				return
			}
		case kindTasks:
			for _, task := range env.Tasks {
				held = append(held, task.Index)
			}
			// The adaptive assignment fills execution slots and queue depth
			// as separate chunks, so wait until the whole batch arrived.
			if !reported && len(held) >= expect {
				reported = true
				gotTasks <- len(held)
				close(gotTasks)
			}
		case kindRevoke:
			if !ackSteal {
				return // die mid-steal, before the acknowledgement
			}
			n := env.Count
			if n > len(held) {
				n = len(held)
			}
			idxs := append([]int(nil), held[len(held)-n:]...)
			if err := w.send(&envelope{Kind: kindRevoked, Batch: env.Batch, Indices: idxs}); err != nil {
				t.Errorf("hoarding worker revoke ack: %v", err)
			}
			return // die right after the acknowledgement
		}
	}
}

// runStealRequeueScenario drives the shared exactly-once custody scenario:
// a hoarding worker takes the whole batch, a real worker joins and triggers
// a steal, and the hoarder dies (before or after acking the revoke,
// depending on ackSteal).  Every task must come back solved exactly once and
// bit-identical to the in-process transport.
func runStealRequeueScenario(t *testing.T, ackSteal bool) DispatchStats {
	t.Helper()
	f := requeueFormula()
	leader, err := Listen("127.0.0.1:0", f, LeaderOptions{
		Heartbeat: 100 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	addr := leader.Addr().String()

	// The hoarder registers alone with capacity 8 (dispatch depth 16), so
	// the initial assignment hands it the entire 16-task batch.
	gotTasks := make(chan int, 1)
	go hoardingWorker(t, addr, 8, 16, ackSteal, gotTasks)
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer waitCancel()
	if err := leader.WaitForWorkers(waitCtx, 1); err != nil {
		t.Fatalf("hoarder did not register: %v", err)
	}

	tasks := requeueTasks(16)
	opts := BatchOptions{CostMetric: solver.CostPropagations, Steal: true}
	type runOutcome struct {
		results []TaskResult
		stats   DispatchStats
		err     error
	}
	done := make(chan runOutcome, 1)
	runCtx, runCancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer runCancel()
	go func() {
		res, ds, err := leader.RunDispatch(runCtx, tasks, opts, nil, nil)
		done <- runOutcome{res, ds, err}
	}()

	// Wait until the hoarder holds the whole batch, then bring up the real
	// worker: the pending queue is dry, so the leader plans a steal against
	// the hoarder, and the hoarder's scripted death follows.
	if n, ok := <-gotTasks; ok && n != len(tasks) {
		t.Fatalf("hoarder received %d tasks, want the whole batch of %d", n, len(tasks))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = Serve(ctx, addr, WorkerOptions{Capacity: 2, Name: "survivor", Logf: t.Logf})
	}()

	out := <-done
	if out.err != nil {
		t.Fatalf("RunDispatch after steal/death: %v", out.err)
	}
	if len(out.results) != len(tasks) {
		t.Fatalf("got %d results for %d tasks", len(out.results), len(tasks))
	}
	seen := make([]bool, len(tasks))
	for _, res := range out.results {
		if seen[res.Index] {
			t.Fatalf("duplicate result for task %d", res.Index)
		}
		seen[res.Index] = true
		if !res.Started || res.Cancelled {
			t.Fatalf("task %d was never solved (lost in the steal/death window)", res.Index)
		}
	}

	// Custody churn must not change results: pristine per-task resets make
	// the outcome worker-independent, so the run matches in-process exactly.
	want, err := NewInproc(f, 2, solver.DefaultOptions()).Run(context.Background(), tasks, BatchOptions{CostMetric: solver.CostPropagations})
	if err != nil {
		t.Fatal(err)
	}
	wantByIdx := make([]TaskResult, len(tasks))
	for _, res := range want {
		wantByIdx[res.Index] = res
	}
	for _, res := range out.results {
		w := wantByIdx[res.Index]
		if res.Cost != w.Cost || res.Status != w.Status {
			t.Fatalf("task %d differs after steal: net cost %v status %v, inproc cost %v status %v",
				res.Index, res.Cost, res.Status, w.Cost, w.Status)
		}
	}
	return out.stats
}

// TestStealAckThenWorkerDeathRequeuesExactlyOnce covers the acked-revoke
// side of the custody invariant: the hoarder gives back the stolen tail and
// dies immediately after, so the stolen tasks requeue through the
// acknowledgement and the rest through worker loss — each exactly once.
func TestStealAckThenWorkerDeathRequeuesExactlyOnce(t *testing.T) {
	stats := runStealRequeueScenario(t, true)
	if stats.TasksStolen == 0 {
		t.Fatal("no task was stolen despite a backlogged hoarder and an idle worker")
	}
	if stats.SpeculativeDuplicates != 0 || stats.SpeculationWins != 0 {
		t.Fatalf("speculation ran in a steal-only batch: %+v", stats)
	}
}

// TestStealVictimDiesBeforeAckRequeuesExactlyOnce covers the other side:
// the victim dies with the revoke un-acked, so custody of every task it
// held — including the ones the leader asked back — transfers through
// dropWorker alone.  Nothing is stolen (the ack never landed) and nothing
// is solved twice.
func TestStealVictimDiesBeforeAckRequeuesExactlyOnce(t *testing.T) {
	stats := runStealRequeueScenario(t, false)
	if stats.TasksStolen != 0 {
		t.Fatalf("%d task(s) counted as stolen although the revoke was never acked", stats.TasksStolen)
	}
}

// TestSpeculationOvertakesStraggler is the fault-injection test of the
// adaptive dispatch pipeline on real workers: one worker's execution is
// stalled by an injected per-task delay far longer than the test budget, so
// the batch finishes only if the leader first steals the straggler's queued
// task and then speculatively duplicates its running one onto the healthy
// worker.  The duplicate's result must win, the straggler's copy must be
// discarded, and the results must still be bit-identical to the in-process
// transport.
func TestSpeculationOvertakesStraggler(t *testing.T) {
	f := requeueFormula()
	leader, err := Listen("127.0.0.1:0", f, LeaderOptions{
		Heartbeat: 100 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	addr := leader.Addr().String()

	// The straggler registers first (lowest id, first in assignment order)
	// and sleeps two minutes on every task it starts; the healthy worker
	// does everything else.  The whole test runs under a 90-second deadline,
	// so waiting out even one injected delay fails the test.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = Serve(ctx, addr, WorkerOptions{
			Capacity: 1, Name: "straggler", Logf: t.Logf,
			TaskDelay: func(Task) time.Duration { return 2 * time.Minute },
		})
	}()
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer waitCancel()
	if err := leader.WaitForWorkers(waitCtx, 1); err != nil {
		t.Fatalf("straggler did not register: %v", err)
	}
	go func() {
		_ = Serve(ctx, addr, WorkerOptions{Capacity: 2, Name: "healthy", Logf: t.Logf})
	}()
	if err := leader.WaitForWorkers(waitCtx, 2); err != nil {
		t.Fatalf("healthy worker did not register: %v", err)
	}

	tasks := requeueTasks(8)
	opts := BatchOptions{CostMetric: solver.CostPropagations, Steal: true, Speculate: true}
	runCtx, runCancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer runCancel()
	results, stats, err := leader.RunDispatch(runCtx, tasks, opts, nil, nil)
	if err != nil {
		t.Fatalf("RunDispatch with a straggler: %v", err)
	}
	if len(results) != len(tasks) {
		t.Fatalf("got %d results for %d tasks", len(results), len(tasks))
	}
	seen := make([]bool, len(tasks))
	for _, res := range results {
		if seen[res.Index] {
			t.Fatalf("duplicate result for task %d", res.Index)
		}
		seen[res.Index] = true
		if !res.Started || res.Cancelled {
			t.Fatalf("task %d was not solved (stalled behind the straggler)", res.Index)
		}
	}
	if stats.SpeculativeDuplicates == 0 {
		t.Fatal("no speculative duplicate was dispatched against the straggler")
	}
	if stats.SpeculationWins == 0 {
		t.Fatal("no speculative duplicate won against the straggler")
	}
	if stats.SpeculationWins > stats.SpeculativeDuplicates {
		t.Fatalf("more wins than duplicates: %+v", stats)
	}

	// First-result-wins must be invisible in the content: the winning copy
	// solves the same subproblem from the same pristine state.
	want, err := NewInproc(f, 2, solver.DefaultOptions()).Run(context.Background(), tasks, BatchOptions{CostMetric: solver.CostPropagations})
	if err != nil {
		t.Fatal(err)
	}
	wantByIdx := make([]TaskResult, len(tasks))
	for _, res := range want {
		wantByIdx[res.Index] = res
	}
	for _, res := range results {
		w := wantByIdx[res.Index]
		if res.Cost != w.Cost || res.Status != w.Status {
			t.Fatalf("task %d differs under speculation: net cost %v status %v, inproc cost %v status %v",
				res.Index, res.Cost, res.Status, w.Cost, w.Status)
		}
	}
}
