package cluster

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// protocolVersion guards against mixing incompatible leader and worker
// binaries; bump it whenever the envelope or the solver result layout
// changes incompatibly.
//
// Version history:
//
//	1  initial leader/worker protocol
//	2  kindAbort (per-batch evaluation abort for incumbent pruning); a v1
//	   worker would silently keep solving an aborted batch's tasks, so the
//	   mismatch is rejected at registration
//	3  kindRevoke / kindRevoked (work stealing and speculative straggler
//	   re-dispatch).  A v2 worker would ignore a revoke it cannot decode —
//	   leaving the leader's steal state wedged and a speculation loser
//	   solving a task whose result the leader already recorded — so, as
//	   with v1↔v2, the mismatch is rejected at registration: leaders and
//	   workers must be upgraded together.
const protocolVersion = 3

// Wire timeouts shared by both sides.
const (
	defaultHeartbeat = 1 * time.Second
	dialTimeout      = 5 * time.Second
	handshakeTimeout = 10 * time.Second
	writeTimeout     = 15 * time.Second
	// readGraceFactor scales the heartbeat interval into a read deadline:
	// each side hears from its peer at least once per heartbeat (pings one
	// way, pongs the other), so a silence of several intervals means the
	// peer or the link is gone.
	readGraceFactor = 5
)

// msgKind discriminates envelope payloads.
type msgKind uint8

const (
	// kindHello is the worker's registration: protocol version + capacity.
	kindHello msgKind = iota + 1
	// kindWelcome is the leader's reply: the formula, the shared solver
	// options and the heartbeat interval.
	kindWelcome
	// kindTasks streams a chunk of a batch to a worker.
	kindTasks
	// kindResult returns one task result to the leader.
	kindResult
	// kindInterrupt tells a worker to abandon a batch: interrupt in-flight
	// solves, drain queued tasks as placeholders.  It is the non-blocking
	// leader→worker message of the paper's modified MiniSat.
	kindInterrupt
	// kindPing / kindPong are heartbeats (leader pings, worker pongs).
	kindPing
	kindPong
	// kindStop shuts a worker down for good (leader closing).
	kindStop
	// kindAbort abandons one batch exactly like kindInterrupt — in-flight
	// solves are interrupted, queued tasks drained as placeholders — but
	// marks a *planned* early end rather than a failure: the evaluation
	// engine aborts the remainder of a candidate's sample once its partial
	// lower bound exceeds the search incumbent.  The worker keeps its
	// connection and pooled solvers; only the batch dies.
	kindAbort
	// kindRevoke (v3) takes tasks back from a worker.  In its stealing form
	// (Count > 0) the worker removes up to Count not-yet-started tasks from
	// the back of its local queue and acknowledges them with kindRevoked;
	// only that acknowledgement moves a task back onto the leader's pending
	// queue, so a task is never simultaneously queued on the leader and
	// live on a worker.  In its discard form (Discard, explicit Indices)
	// the worker silently drops the listed tasks — interrupting them
	// mid-solve if they already started — without replying: the leader has
	// already recorded another copy's result (speculation loser cleanup).
	kindRevoke
	// kindRevoked (v3) is the worker's steal acknowledgement: the indices
	// it actually gave back (possibly none, if the queue drained first).
	kindRevoked
)

// envelope is the single gob-encoded message type exchanged on a cluster
// connection; Kind selects which fields are meaningful.
type envelope struct {
	Kind msgKind

	// kindHello
	Proto    int
	Capacity int
	Name     string

	// kindWelcome
	Formula       *cnf.Formula
	SolverOptions *solver.Options
	Heartbeat     time.Duration

	// kindTasks / kindResult / kindInterrupt
	Batch uint64
	Opts  *BatchOptions
	Tasks []Task

	// kindResult
	Result *wireResult

	// kindRevoke / kindRevoked (v3)
	//
	// Count is the stealing form's upper bound on how many queued tasks to
	// give back; Indices carries the discard form's targets and the
	// acknowledgement's actual task indices; Discard selects the discard
	// form (drop/interrupt, no acknowledgement, no requeue).
	Count   int
	Indices []int
	Discard bool

	// kindStop
	Err string
}

// wireResult is TaskResult with the conflict-activity vector stored
// sparsely: ActVars is a dense O(NumVars) float64 slice that is mostly
// zeros for easy subproblems, and one is shipped per task result, so the
// dense form would dominate the transport's bandwidth on large formulas.
type wireResult struct {
	Index       int
	Cost        float64
	Status      solver.Status
	Model       cnf.Assignment
	Stats       solver.Stats
	Started     bool
	Interrupted bool
	Cancelled   bool
	// ActLen is len(TaskResult.ActVars); ActIdx/ActVal hold its non-zero
	// entries.
	ActLen int
	ActIdx []int32
	ActVal []float64
}

// toWire converts a result for transmission.
func toWire(r *TaskResult) *wireResult {
	w := &wireResult{
		Index:       r.Index,
		Cost:        r.Cost,
		Status:      r.Status,
		Model:       r.Model,
		Stats:       r.Stats,
		Started:     r.Started,
		Interrupted: r.Interrupted,
		Cancelled:   r.Cancelled,
		ActLen:      len(r.ActVars),
	}
	for i, v := range r.ActVars {
		if v != 0 {
			w.ActIdx = append(w.ActIdx, int32(i))
			w.ActVal = append(w.ActVal, v)
		}
	}
	return w
}

// taskResult reconstructs the dense result.
func (w *wireResult) taskResult() TaskResult {
	r := TaskResult{
		Index:       w.Index,
		Cost:        w.Cost,
		Status:      w.Status,
		Model:       w.Model,
		Stats:       w.Stats,
		Started:     w.Started,
		Interrupted: w.Interrupted,
		Cancelled:   w.Cancelled,
	}
	if w.ActLen > 0 {
		r.ActVars = make([]float64, w.ActLen)
		for i, idx := range w.ActIdx {
			if int(idx) < w.ActLen && i < len(w.ActVal) {
				r.ActVars[idx] = w.ActVal[i]
			}
		}
	}
	return r
}

// wire wraps one duplex gob connection with serialized, deadline-guarded
// writes (gob encoders are not safe for concurrent use).
type wire struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	mu   sync.Mutex
}

func newWire(conn net.Conn) *wire {
	return &wire{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

// send encodes one envelope under the write deadline.
func (w *wire) send(env *envelope) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.conn.SetWriteDeadline(time.Now().Add(writeTimeout)); err != nil {
		return err
	}
	return w.enc.Encode(env)
}

// recv decodes one envelope, allowing at most timeout of silence (0 means
// no deadline).
func (w *wire) recv(timeout time.Duration) (*envelope, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	if err := w.conn.SetReadDeadline(deadline); err != nil {
		return nil, err
	}
	var env envelope
	if err := w.dec.Decode(&env); err != nil {
		return nil, err
	}
	return &env, nil
}

func (w *wire) close() error { return w.conn.Close() }

// helloFor builds a worker registration message.
func helloFor(name string, capacity int) *envelope {
	return &envelope{Kind: kindHello, Proto: protocolVersion, Capacity: capacity, Name: name}
}

// checkHello validates a registration.
func checkHello(env *envelope) error {
	if env.Kind != kindHello {
		return fmt.Errorf("cluster: expected hello, got message kind %d", env.Kind)
	}
	if env.Proto != protocolVersion {
		return fmt.Errorf("cluster: protocol version mismatch: leader speaks %d, worker %d",
			protocolVersion, env.Proto)
	}
	if env.Capacity <= 0 {
		return fmt.Errorf("cluster: worker registered with non-positive capacity %d", env.Capacity)
	}
	return nil
}
