package pdsat

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cluster"
	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/decomp"
	"github.com/paper-repro/pdsat-go/internal/eval"
	"github.com/paper-repro/pdsat-go/internal/montecarlo"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// Scope is an isolated evaluation context on a shared Runner: its own sample
// seed, evaluation counter, conflict-activity table and statistics over the
// same formula, configuration and transport.  Concurrent search-fleet
// members each evaluate through their own scope, so member i's j-th sample
// depends only on (seed, j) — never on how concurrently running scopes
// interleave on the transport — while every scope shares the runner's solver
// pool (or cluster workers).  Work done in a scope is additionally rolled up
// into the runner's global counters (Evaluations, SubproblemsSolved,
// VarActivity, AggregateStats), which therefore cover the whole session.
//
// A Scope is safe for concurrent use, but per-scope determinism assumes one
// search per scope: two goroutines interleaving evaluations on one scope
// interleave its evaluation counter.
type Scope struct {
	r    *Runner
	seed int64

	mu                 sync.Mutex
	confAct            []float64
	evaluations        int
	prunedEvaluations  int
	subproblemsSolved  int
	subproblemsAborted int
	samplesPlanned     int
	samplesSkipped     int
	// Dispatch statistics (scheduling events, outside the sample ledger;
	// see the Runner counterparts).
	tasksStolen           int
	speculativeDuplicates int
	speculationWins       int
	aggStats              solver.Stats
}

// NewScope creates an evaluation scope with its own sample seed over the
// runner's formula, configuration and transport.
func (r *Runner) NewScope(seed int64) *Scope {
	return &Scope{r: r, seed: seed, confAct: make([]float64, r.formula.NumVars+1)}
}

// Seed returns the scope's sample seed.
func (sc *Scope) Seed() int64 { return sc.seed }

// Runner returns the runner the scope evaluates through.
func (sc *Scope) Runner() *Runner { return sc.r }

// Evaluations returns the number of predictive-function evaluations this
// scope has performed (full, pruned and partial alike).
func (sc *Scope) Evaluations() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.evaluations
}

// PrunedEvaluations returns how many of the scope's evaluations were aborted
// by incumbent pruning.
func (sc *Scope) PrunedEvaluations() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.prunedEvaluations
}

// SubproblemsSolved returns the number of subproblems the scope solved to
// completion.
func (sc *Scope) SubproblemsSolved() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.subproblemsSolved
}

// SubproblemsAborted returns how many of the scope's dispatched subproblems
// were cut short by a batch abort or cancellation.
func (sc *Scope) SubproblemsAborted() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.subproblemsAborted
}

// SamplesPlanned returns the total number of Monte Carlo samples the
// scope's evaluations committed to (N per evaluation that reached its
// sample): the left-hand side of the sample ledger
// SamplesPlanned == SubproblemsSolved + SubproblemsAborted + SamplesSkipped.
func (sc *Scope) SamplesPlanned() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.samplesPlanned
}

// SamplesSkipped returns the planned samples that were never dispatched to
// a solver: stages skipped by an early stop or a stage-boundary prune, and
// the tails of evaluations cancelled by the scheduler (e.g. siblings of a
// decided neighborhood winner).
func (sc *Scope) SamplesSkipped() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.samplesSkipped
}

// TasksStolen returns how many queued tasks the dispatch layer revoked and
// reassigned between workers on behalf of this scope's batches.
func (sc *Scope) TasksStolen() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.tasksStolen
}

// SpeculativeDuplicates returns how many unfinished tasks of this scope's
// batches were speculatively duplicated onto idle slots; SpeculationWins how
// many duplicates won.  See the Runner accessors of the same names.
func (sc *Scope) SpeculativeDuplicates() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.speculativeDuplicates
}

// SpeculationWins returns how many speculated tasks were won by their
// duplicate copy; see SpeculativeDuplicates.
func (sc *Scope) SpeculationWins() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.speculationWins
}

// AggregateStats returns the summed solver statistics of the scope's solved
// subproblems.
func (sc *Scope) AggregateStats() solver.Stats {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.aggStats
}

// VarActivity returns the cumulative conflict activity of a variable over
// the subproblems solved by this scope only — the activity source a fleet
// member's tabu search consumes, so its getNewCenter heuristic never
// depends on what concurrent members happened to solve.
func (sc *Scope) VarActivity(v cnf.Var) float64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if int(v) <= 0 || int(v) >= len(sc.confAct) {
		return 0
	}
	return sc.confAct[v]
}

// nextEvalIndex reserves the scope's next evaluation slot and mirrors the
// count into the runner's global roll-up.
func (sc *Scope) nextEvalIndex() int { return sc.ReserveEvalSlots(1) }

// ReserveEvalSlots implements eval.SlotBackend: it reserves n consecutive
// evaluation slots (mirrored into the runner roll-up) and returns the
// first.  The neighborhood scheduler reserves a whole submission upfront
// so every sibling's sample — a pure function of (scope seed, slot) —
// is independent of completion order and cancellation timing; slots of
// candidates that end up cancelled stay burned, deliberately.
func (sc *Scope) ReserveEvalSlots(n int) int {
	sc.mu.Lock()
	idx := sc.evaluations
	sc.evaluations += n
	sc.mu.Unlock()
	sc.r.mu.Lock()
	sc.r.evaluations += n
	sc.r.mu.Unlock()
	return idx
}

// notePlanned counts an evaluation's committed sample size in the scope
// and runner ledgers; noteSkipped the part of it that was never
// dispatched.
func (sc *Scope) notePlanned(n int) {
	sc.mu.Lock()
	sc.samplesPlanned += n
	sc.mu.Unlock()
	sc.r.mu.Lock()
	sc.r.samplesPlanned += n
	sc.r.mu.Unlock()
}

func (sc *Scope) noteSkipped(n int) {
	if n <= 0 {
		return
	}
	sc.mu.Lock()
	sc.samplesSkipped += n
	sc.mu.Unlock()
	sc.r.mu.Lock()
	sc.r.samplesSkipped += n
	sc.r.mu.Unlock()
}

// noteDispatch rolls one batch's dispatch statistics into the scope's
// counters and the runner roll-up.
func (sc *Scope) noteDispatch(ds cluster.DispatchStats) {
	if ds == (cluster.DispatchStats{}) {
		return
	}
	sc.mu.Lock()
	sc.tasksStolen += ds.TasksStolen
	sc.speculativeDuplicates += ds.SpeculativeDuplicates
	sc.speculationWins += ds.SpeculationWins
	sc.mu.Unlock()
	sc.r.noteDispatch(ds)
}

// notePruned counts one incumbent-pruned evaluation in the scope and the
// runner roll-up.
func (sc *Scope) notePruned() {
	sc.mu.Lock()
	sc.prunedEvaluations++
	sc.mu.Unlock()
	sc.r.mu.Lock()
	sc.r.prunedEvaluations++
	sc.r.mu.Unlock()
}

// absorb adds a batch's conflict activities and statistics into the scope's
// local tables and the runner's global roll-up, both through the shared
// absorbResults classification.
func (sc *Scope) absorb(results []cluster.TaskResult) {
	sc.mu.Lock()
	absorbResults(results, sc.confAct, &sc.aggStats, &sc.subproblemsSolved, &sc.subproblemsAborted)
	sc.mu.Unlock()
	sc.r.absorbActivities(results)
}

// EvaluatePoint computes the predictive function F at the point under the
// runner's configured policy with no incumbent; see Runner.EvaluatePoint.
func (sc *Scope) EvaluatePoint(ctx context.Context, p decomp.Point) (*PointEstimate, error) {
	return sc.EvaluatePointBudgeted(ctx, p, sc.r.cfg.Policy, math.Inf(1), nil)
}

// Evaluate implements the optimizer objective on the scope.
func (sc *Scope) Evaluate(ctx context.Context, p decomp.Point) (float64, error) {
	est, err := sc.EvaluatePoint(ctx, p)
	if err != nil {
		return 0, err
	}
	return est.Estimate.Value, nil
}

// EvaluateBudgeted implements eval.Backend on the scope.
func (sc *Scope) EvaluateBudgeted(ctx context.Context, p decomp.Point, pol eval.Policy, incumbent float64) (*eval.Evaluation, error) {
	pe, err := sc.EvaluatePointBudgeted(ctx, p, pol, incumbent, nil)
	if pe == nil {
		return nil, err
	}
	ev := pe.Evaluation()
	return &ev, err
}

// EvaluateF implements eval.Evaluator under the runner's configured policy.
func (sc *Scope) EvaluateF(ctx context.Context, p decomp.Point, incumbent float64) (*eval.Evaluation, error) {
	return sc.EvaluateBudgeted(ctx, p, sc.r.cfg.Policy, incumbent)
}

// ReserveSlots implements eval.SlotEvaluator (the evaluator-level view the
// frontier consumes when a search runs directly on a Scope).
func (sc *Scope) ReserveSlots(n int) (int, bool) { return sc.ReserveEvalSlots(n), true }

// EvaluateSlotF implements eval.SlotEvaluator under the runner's
// configured policy.
func (sc *Scope) EvaluateSlotF(ctx context.Context, p decomp.Point, incumbent float64, slot int) (*eval.Evaluation, error) {
	return sc.EvaluateSlot(ctx, p, sc.r.cfg.Policy, incumbent, slot)
}

// EvaluatePointBudgeted is the budget-aware evaluation at the heart of the
// engine, running in this scope: the sample depends only on (scope seed,
// scope evaluation counter), the policy decides how much of it is solved,
// and the incumbent bound drives pruning.  See the method of the same name
// on Runner (which delegates to its default scope) for the full contract.
func (sc *Scope) EvaluatePointBudgeted(ctx context.Context, p decomp.Point, pol eval.Policy, incumbent float64, observe func(Progress)) (*PointEstimate, error) {
	return sc.evaluatePointAt(ctx, p, pol, incumbent, observe, -1)
}

// EvaluateSlot implements eval.SlotBackend: EvaluateBudgeted with the
// sample drawn from a pre-reserved evaluation slot (see ReserveEvalSlots)
// instead of a freshly reserved one.
func (sc *Scope) EvaluateSlot(ctx context.Context, p decomp.Point, pol eval.Policy, incumbent float64, slot int) (*eval.Evaluation, error) {
	return sc.EvaluateSlotObserved(ctx, p, pol, incumbent, slot, nil)
}

// EvaluateSlotObserved is EvaluateSlot with a sample-progress observer (the
// session layer's event streaming hooks in here).
func (sc *Scope) EvaluateSlotObserved(ctx context.Context, p decomp.Point, pol eval.Policy, incumbent float64, slot int, observe func(Progress)) (*eval.Evaluation, error) {
	pe, err := sc.evaluatePointAt(ctx, p, pol, incumbent, observe, slot)
	if pe == nil {
		return nil, err
	}
	ev := pe.Evaluation()
	return &ev, err
}

// evaluatePointAt runs one budget-aware evaluation against a fixed
// evaluation slot; a negative slot reserves the next one.  The live
// incumbent bound of a neighborhood frontier, when attached to ctx, is
// re-read at every pruning checkpoint, so sibling candidates completing
// concurrently tighten this evaluation's abort threshold mid-sample.
func (sc *Scope) evaluatePointAt(ctx context.Context, p decomp.Point, pol eval.Policy, incumbent float64, observe func(Progress), slot int) (*PointEstimate, error) {
	r := sc.r
	if r.cfgErr != nil {
		return nil, r.cfgErr
	}
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	if p.Count() == 0 {
		return nil, errors.New("pdsat: empty decomposition set")
	}
	start := time.Now()
	evalIndex := slot
	if evalIndex < 0 {
		evalIndex = sc.nextEvalIndex()
	}

	fam := decomp.FamilyOf(r.formula, p)
	// Derive a per-evaluation RNG so evaluation results do not depend on the
	// order in which the optimizer visits points.
	rng := rand.New(rand.NewSource(sc.seed ^ int64(evalIndex)*0x5851f42d4c957f2d))
	d := fam.Dimension()
	n := r.cfg.SampleSize
	scale := math.Exp2(float64(d))

	tasks := make([]cluster.Task, n)
	for i := 0; i < n; i++ {
		alpha := fam.RandomAssignment(rng)
		assumptions, err := fam.AssumptionsForBits(alpha)
		if err != nil {
			return nil, err
		}
		tasks[i] = cluster.Task{Index: i, Assumptions: assumptions}
	}

	// A live bound (attached by the neighborhood frontier) supplies sibling
	// improvements as they complete; it only ever tightens the incumbent.
	live := eval.LiveBoundFrom(ctx)
	if live != nil {
		if b := live.Get(); b < incumbent {
			incumbent = b
		}
	}
	prune := pol.Prune &&
		((!math.IsInf(incumbent, 1) && !math.IsNaN(incumbent)) || live != nil)
	// sumBound is the incumbent translated onto the plain cost sum:
	// 2^d·(Σζ)/N > incumbent  ⇔  Σζ > incumbent·N/2^d.
	sumBound := math.Inf(1)
	if prune {
		sumBound = incumbent * float64(n) / scale
	}
	// refreshBound re-reads the live bound at a pruning checkpoint.  It runs
	// either between stages or on the batch collection path (whose calls
	// complete before the batch call returns), never concurrently with
	// itself, so the captured locals need no locking.
	refreshBound := func() {
		if live == nil || !prune {
			return
		}
		if b := live.Get(); b < incumbent {
			incumbent = b
			sumBound = incumbent * float64(n) / scale
		}
	}

	// The stage observer runs on the batch collection path (a single
	// goroutine whose calls complete before the batch call returns), so the
	// running totals need no locking.
	var (
		sumAll  float64 // every observed cost, truncated solves included
		done    int     // Progress numbering across stages
		aborted bool
		abortCh = make(chan struct{})
	)
	stageObserver := func(globalOffset int) func(cluster.TaskResult) {
		return func(res cluster.TaskResult) {
			res.Index += globalOffset
			if res.Started {
				sumAll += res.Cost
			}
			done++
			if observe != nil {
				observe(Progress{Done: done, Total: n, Result: res})
			}
			refreshBound()
			if prune && !aborted && sumAll > sumBound {
				aborted = true
				close(abortCh)
			}
		}
	}

	var (
		costs        []float64 // completed samples, enumeration order
		satCount     int
		collected    int // results gathered over all dispatched stages
		pruned       bool
		earlyStopped bool
		stagesRun    int
		runErr       error
	)
	sc.notePlanned(n)
	defer func() { sc.noteSkipped(n - collected) }()
	// Adaptive dispatch: with stealing or speculation on, each stage's batch
	// carries a queue-depth hint derived from the ζ costs observed on the
	// same stage index of earlier evaluations, and its completed costs feed
	// the model in turn.  The hint shapes scheduling only — the sample, the
	// costs and the stage plan are untouched — so fixed-seed estimates stay
	// bit-identical with the model on or off.
	adaptive := r.cfg.Steal || r.cfg.Speculate
	next := 0
	for si, end := range eval.StagePlan(n, pol.Stages) {
		begin := next
		next = end
		refreshBound()
		if prune && sumAll > sumBound {
			pruned = true
			break
		}
		if earlyStopped {
			break
		}
		opts := cluster.BatchOptions{
			Budget:     r.cfg.SubproblemBudget,
			CostMetric: r.cfg.CostMetric,
		}
		if adaptive {
			opts.Steal = r.cfg.Steal
			opts.Speculate = r.cfg.Speculate
			opts.QueueFactor = r.costModel.QueueFactor(si)
		}
		if prune {
			// Per-stage budget: no single task may cost more than what is
			// left before the sum certifiably crosses the bound.
			opts.Budget = opts.Budget.TightenedBy(
				solver.BudgetForCost(r.cfg.CostMetric, sumBound-sumAll))
		}
		sub := make([]cluster.Task, end-begin)
		for j := range sub {
			sub[j] = cluster.Task{Index: j, Assumptions: tasks[begin+j].Assumptions}
		}
		var abort <-chan struct{}
		if prune {
			abort = abortCh
		}
		results, ds, err := r.runBatch(ctx, sub, opts, stageObserver(begin), abort)
		sc.noteDispatch(ds)
		if err != nil && !cluster.IsInterruption(err) {
			return nil, err
		}
		stagesRun++
		collected += len(results)
		// Completed samples in enumeration order, for deterministic
		// float summation regardless of scheduling.
		ordered := make([]*cluster.TaskResult, len(sub))
		for i := range results {
			if idx := results[i].Index; idx >= 0 && idx < len(ordered) {
				ordered[idx] = &results[i]
			}
		}
		for _, res := range ordered {
			if res == nil || !res.Started || res.Cancelled {
				continue
			}
			costs = append(costs, res.Cost)
			if res.Status == solver.Sat {
				satCount++
			}
			if adaptive {
				r.costModel.Observe(si, res.Cost)
			}
		}
		sc.absorb(results)
		if err != nil {
			runErr = err
			break
		}
		if prune && (aborted || sumAll > sumBound) {
			pruned = true
			break
		}
		if next < n && len(costs) >= 2 {
			s := montecarlo.NewSample(costs)
			if eval.Confident(s.Mean(), s.StdDev(), s.Len(), pol.EffectiveGamma(), pol.Epsilon) {
				earlyStopped = true
			}
		}
	}

	if pruned {
		sc.notePruned()
	}
	if runErr != nil && len(costs) == 0 {
		return nil, runErr
	}
	// Partial evaluations (interrupted or pruned) keep only subproblems a
	// solver ran to its normal conclusion (or per-task budget) as samples —
	// a solve truncated by the cancellation/abort itself undercounts its
	// subproblem outright.  An interrupted subset is completion-time
	// censored (in-flight subproblems skew expensive), so a partial F is an
	// indication, not an unbiased estimate; see PointEstimate.Interrupted.
	sample := montecarlo.NewSample(costs)
	est := montecarlo.NewEstimate(d, sample)
	return &PointEstimate{
		Point:              p,
		Estimate:           est,
		Sample:             sample,
		SatisfiableSamples: satCount,
		WallTime:           time.Since(start),
		Interrupted:        runErr != nil,
		Pruned:             pruned,
		EarlyStopped:       earlyStopped,
		SamplesPlanned:     n,
		SamplesAborted:     collected - sample.Len(),
		StagesRun:          stagesRun,
		LowerBound:         scale * sumAll / float64(n),
	}, runErr
}
