package pdsat

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/decomp"
	"github.com/paper-repro/pdsat-go/internal/encoder"
	"github.com/paper-repro/pdsat-go/internal/montecarlo"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// weakBivium builds a small weakened Bivium instance suitable for fast tests.
func weakBivium(t testing.TB, known int, ksLen int, seed int64) *encoder.Instance {
	t.Helper()
	inst, err := encoder.NewInstance(encoder.Bivium(), encoder.Config{
		KeystreamLen: ksLen,
		KnownSuffix:  known,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func unknownSpace(inst *encoder.Instance) *decomp.Space {
	return decomp.NewSpace(inst.UnknownStartVars())
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.SampleSize <= 0 || cfg.Workers <= 0 {
		t.Fatalf("bad default config: %+v", cfg)
	}
}

func TestNewRunnerFillsZeroFields(t *testing.T) {
	f := cnf.New(3)
	f.AddClauseLits(1, 2, 3)
	r := NewRunner(f, Config{})
	if r.Config().SampleSize <= 0 || r.Config().Workers <= 0 {
		t.Fatalf("zero config not completed: %+v", r.Config())
	}
	if r.Formula() != f {
		t.Fatal("Formula accessor")
	}
}

func TestEvaluatePointProducesEstimate(t *testing.T) {
	inst := weakBivium(t, 167, 60, 21)
	space := unknownSpace(inst)
	r := NewRunner(inst.CNF, Config{SampleSize: 16, Workers: 2, Seed: 3})
	est, err := r.EvaluatePoint(context.Background(), space.FullPoint())
	if err != nil {
		t.Fatal(err)
	}
	if est.Estimate.Dimension != space.Size() {
		t.Fatalf("dimension = %d, want %d", est.Estimate.Dimension, space.Size())
	}
	if est.Estimate.SampleSize != 16 || est.Sample.Len() != 16 {
		t.Fatalf("sample size = %d", est.Estimate.SampleSize)
	}
	if est.Estimate.Value < 0 || math.IsNaN(est.Estimate.Value) {
		t.Fatalf("bad estimate value %v", est.Estimate.Value)
	}
	if est.WallTime <= 0 {
		t.Fatal("wall time should be positive")
	}
	if r.Evaluations() != 1 {
		t.Fatalf("Evaluations = %d", r.Evaluations())
	}
	if r.SubproblemsSolved() != 16 {
		t.Fatalf("SubproblemsSolved = %d", r.SubproblemsSolved())
	}
}

func TestEvaluateEmptyPointFails(t *testing.T) {
	inst := weakBivium(t, 170, 40, 5)
	space := unknownSpace(inst)
	r := NewRunner(inst.CNF, Config{SampleSize: 4, Workers: 1, Seed: 1})
	if _, err := r.EvaluatePoint(context.Background(), space.EmptyPoint()); err == nil {
		t.Fatal("expected error for empty decomposition set")
	}
	if _, err := r.Evaluate(context.Background(), space.EmptyPoint()); err == nil {
		t.Fatal("expected error for empty decomposition set")
	}
	if _, err := r.Solve(context.Background(), space.EmptyPoint(), SolveOptions{}); err == nil {
		t.Fatal("expected error for empty decomposition set")
	}
}

func TestEvaluateDeterministicWithConflictCost(t *testing.T) {
	inst := weakBivium(t, 168, 50, 9)
	space := unknownSpace(inst)
	run := func() float64 {
		r := NewRunner(inst.CNF, Config{SampleSize: 12, Workers: 2, Seed: 7, CostMetric: solver.CostConflicts})
		v, err := r.Evaluate(context.Background(), space.FullPoint())
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if v1, v2 := run(), run(); v1 != v2 {
		t.Fatalf("evaluation is not deterministic: %v vs %v", v1, v2)
	}
}

func TestEvaluateIndependentOfVisitOrder(t *testing.T) {
	// The value of a point must not depend on which points were evaluated
	// before it (each evaluation derives its RNG from the evaluation index,
	// so evaluating A,B gives the same sample for A as evaluating A alone —
	// but B's sample differs from A's).  Here we check the weaker, load-
	// bearing property: re-creating the runner and evaluating the same point
	// first always gives the same value.
	inst := weakBivium(t, 169, 40, 13)
	space := unknownSpace(inst)
	p := space.FullPoint()
	q := p.Flip(0)

	r1 := NewRunner(inst.CNF, Config{SampleSize: 10, Workers: 2, Seed: 5})
	v1p, err := r1.Evaluate(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(inst.CNF, Config{SampleSize: 10, Workers: 2, Seed: 5})
	v2p, err := r2.Evaluate(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if v1p != v2p {
		t.Fatalf("first-evaluation values differ: %v vs %v", v1p, v2p)
	}
	if _, err := r2.Evaluate(context.Background(), q); err != nil {
		t.Fatal(err)
	}
}

func TestVarActivityAccumulates(t *testing.T) {
	// Suffix-weakened Bivium is decided by unit propagation alone (no
	// conflicts, hence no conflict activity), so use a weakened A5/1
	// instance, whose majority clocking forces real search on wrong guesses.
	inst, err := encoder.NewInstance(encoder.A51(), encoder.Config{
		KeystreamLen: 40, KnownSuffix: 44, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	space := unknownSpace(inst)
	p, err := space.PointFromVars(space.Vars()[:8])
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(inst.CNF, Config{SampleSize: 10, Workers: 2, Seed: 3})
	if _, err := r.EvaluatePoint(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for v := cnf.Var(1); int(v) <= inst.CNF.NumVars; v++ {
		total += r.VarActivity(v)
	}
	if total <= 0 {
		t.Fatal("conflict activity should accumulate over subproblem solves")
	}
	if r.VarActivity(0) != 0 || r.VarActivity(cnf.Var(inst.CNF.NumVars+5)) != 0 {
		t.Fatal("out-of-range activity should be zero")
	}
}

func TestSolveWholeFamilyFindsSecret(t *testing.T) {
	// Small unknown part (10 variables) so the full 2^10 family can be
	// enumerated; the secret must be found and the model must reproduce the
	// keystream.
	inst := weakBivium(t, 167, 60, 41)
	space := unknownSpace(inst)
	if space.Size() != 10 {
		t.Fatalf("unexpected unknown-space size %d", space.Size())
	}
	r := NewRunner(inst.CNF, Config{SampleSize: 4, Workers: 2, Seed: 1})
	report, err := r.Solve(context.Background(), space.FullPoint(), SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.FoundSat {
		t.Fatal("processing the whole family must find the secret")
	}
	if report.Processed != 1024 {
		t.Fatalf("processed = %d, want 1024", report.Processed)
	}
	if report.TotalCost < report.CostToFirstSat {
		t.Fatal("total cost must dominate cost-to-first-SAT")
	}
	if report.SatIndex < 0 {
		t.Fatal("SatIndex should be set")
	}
	ok, err := inst.CheckRecoveredState(encoder.Bivium(), report.Model)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("recovered state does not reproduce the keystream")
	}
	if report.WallTime <= 0 {
		t.Fatal("wall time should be positive")
	}
}

func TestSolveStopOnSat(t *testing.T) {
	inst := weakBivium(t, 168, 60, 43)
	space := unknownSpace(inst)
	r := NewRunner(inst.CNF, Config{SampleSize: 4, Workers: 2, Seed: 1})
	report, err := r.Solve(context.Background(), space.FullPoint(), SolveOptions{StopOnSat: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.FoundSat {
		t.Fatal("expected to find the secret")
	}
	// Stop-on-SAT may well process fewer subproblems than the whole family.
	if report.Processed > 512 {
		t.Logf("stop-on-sat processed %d of 512 subproblems", report.Processed)
	}
}

func TestSolveMaxSubproblems(t *testing.T) {
	inst := weakBivium(t, 169, 40, 45)
	space := unknownSpace(inst)
	r := NewRunner(inst.CNF, Config{SampleSize: 4, Workers: 2, Seed: 1})
	report, err := r.Solve(context.Background(), space.FullPoint(), SolveOptions{MaxSubproblems: 16})
	if err != nil {
		t.Fatal(err)
	}
	if report.Processed != 16 {
		t.Fatalf("processed = %d, want 16", report.Processed)
	}
}

func TestSolveRejectsHugeFamilies(t *testing.T) {
	inst := weakBivium(t, 100, 40, 47)
	space := unknownSpace(inst) // 77 unknowns
	r := NewRunner(inst.CNF, Config{SampleSize: 2, Workers: 1, Seed: 1})
	if _, err := r.Solve(context.Background(), space.FullPoint(), SolveOptions{}); err == nil {
		t.Fatal("expected refusal to enumerate 2^77 subproblems")
	}
}

func TestSolveContextCancellation(t *testing.T) {
	inst := weakBivium(t, 163, 60, 49)
	space := unknownSpace(inst) // 14 unknowns -> 16384 subproblems
	r := NewRunner(inst.CNF, Config{SampleSize: 4, Workers: 2, Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	report, err := r.Solve(ctx, space.FullPoint(), SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Interrupted {
		// The machine may be fast enough to finish; only fail if it neither
		// finished nor reported interruption.
		if report.Processed != 16384 {
			t.Fatalf("cancelled run neither complete nor interrupted: processed=%d", report.Processed)
		}
	}
}

// TestEstimateForCores pins the edge cases of the core-count extrapolation
// the reports rely on: core counts ≤ 1 are the identity (a prediction is
// never inflated by a bogus core count) and a zero estimate stays zero.
func TestEstimateForCores(t *testing.T) {
	if EstimateForCores(960, 480) != 2 {
		t.Fatal("EstimateForCores")
	}
	for _, cores := range []int{-3, 0, 1} {
		if got := EstimateForCores(960, cores); got != 960 {
			t.Fatalf("EstimateForCores(960, %d) = %v, want identity", cores, got)
		}
	}
	for _, cores := range []int{-3, 0, 1, 480} {
		if got := EstimateForCores(0, cores); got != 0 {
			t.Fatalf("EstimateForCores(0, %d) = %v, want 0", cores, got)
		}
	}
}

func TestPredictionMatchesFullProcessingOnSmallFamily(t *testing.T) {
	// The headline property of the method (Table 3): the Monte Carlo
	// prediction of the total family-processing cost should be close to the
	// actually measured total cost.  With a sample of the whole family size
	// the agreement should be within a modest factor even though the sample
	// is drawn with replacement.
	inst := weakBivium(t, 168, 80, 51)
	space := unknownSpace(inst) // 9 unknowns -> family of 512
	p := space.FullPoint()
	r := NewRunner(inst.CNF, Config{SampleSize: 256, Workers: 2, Seed: 13, CostMetric: solver.CostPropagations})
	est, err := r.EvaluatePoint(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	report, err := r.Solve(context.Background(), p, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalCost == 0 {
		t.Skip("all subproblems solved by unit propagation alone; prediction trivially exact")
	}
	dev := montecarlo.RelativeDeviation(est.Estimate.Value, report.TotalCost)
	if dev > 0.5 {
		t.Fatalf("prediction %v deviates from measured total %v by %.0f%%",
			est.Estimate.Value, report.TotalCost, dev*100)
	}
}
