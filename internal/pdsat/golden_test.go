package pdsat

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/eval"
	"github.com/paper-repro/pdsat-go/internal/optimize"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// The estimator golden suite pins the end-to-end fixed-seed pipeline —
// CNF encoding, subproblem sampling, pooled CDCL sessions, Monte Carlo
// estimate and tabu search — to absolute values recorded from the seed
// (pointer-clause) solver before the flat-arena rewrite of PR 9.  The
// solver-level suite (internal/solver/golden_test.go) pins individual
// solves; this one proves the bit-identity contract survives the whole
// stack: F values, raw samples, conflict activities and aggregate solver
// statistics.
//
// Regenerate with:
//
//	PDSAT_UPDATE_GOLDENS=1 go test -run TestEstimatorGoldens ./internal/pdsat
const estimatorGoldenFile = "testdata/estimator_goldens.json"

// estGoldenStats mirrors the seed-era deterministic Stats counters (wall
// clock and the arena-era gauges are excluded so the file stays comparable
// with the pointer implementation that recorded it).
type estGoldenStats struct {
	Decisions    uint64 `json:"decisions"`
	Propagations uint64 `json:"propagations"`
	Conflicts    uint64 `json:"conflicts"`
	Restarts     uint64 `json:"restarts"`
	Learned      uint64 `json:"learned"`
	Removed      uint64 `json:"removed"`
	MaxLevel     int    `json:"max_level"`
}

func toEstGoldenStats(s solver.Stats) estGoldenStats {
	return estGoldenStats{
		Decisions:    s.Decisions,
		Propagations: s.Propagations,
		Conflicts:    s.Conflicts,
		Restarts:     s.Restarts,
		Learned:      s.Learned,
		Removed:      s.Removed,
		MaxLevel:     s.MaxLevel,
	}
}

type estimateGolden struct {
	FBits      uint64         `json:"f_bits"`
	MeanBits   uint64         `json:"mean_bits"`
	SampleFNV  uint64         `json:"sample_fnv"`
	Solved     int            `json:"solved"`
	Stats      estGoldenStats `json:"stats"`
	ActFNV     uint64         `json:"act_fnv"`
	StagesRun  int            `json:"stages_run"`
	EarlyStop  bool           `json:"early_stop"`
	SampleSize int            `json:"sample_size"`
}

type searchGolden struct {
	BestFBits   uint64 `json:"best_f_bits"`
	BestPoint   string `json:"best_point"`
	Evaluations int    `json:"evaluations"`
	// The following are recorded only on the zero-policy search, where
	// every quantity of the run is deterministic; under the default policy
	// prune aborts land at timing-dependent sample boundaries, so only the
	// search outcome above is pinned (matching the existing regression
	// tests' determinism contract).
	TraceFNV uint64         `json:"trace_fnv,omitempty"`
	Solved   int            `json:"solved,omitempty"`
	Stats    estGoldenStats `json:"stats,omitempty"`
	ActFNV   uint64         `json:"act_fnv,omitempty"`
}

type estimatorGoldens struct {
	EstimateZero    estimateGolden `json:"estimate_zero"`
	EstimateStaged  estimateGolden `json:"estimate_staged"`
	SearchZero      searchGolden   `json:"search_zero"`
	SearchDefault   searchGolden   `json:"search_default"`
	ActivityTopVars []int          `json:"activity_top_vars"`
}

func hashFloatSlice(fs []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, f := range fs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	return h.Sum64()
}

func runnerActivityHash(r *Runner, numVars int) uint64 {
	acts := make([]float64, 0, numVars)
	for v := 1; v <= numVars; v++ {
		acts = append(acts, r.VarActivity(cnf.Var(v)))
	}
	return hashFloatSlice(acts)
}

// computeEstimatorGoldens runs the four pinned fixed-seed scenarios.
func computeEstimatorGoldens(t *testing.T) estimatorGoldens {
	t.Helper()
	var g estimatorGoldens

	inst := weakBivium(t, 167, 60, 21)
	space := unknownSpace(inst)
	p := space.FullPoint()

	// Zero-policy full-sample estimate: every bit of the pipeline is
	// deterministic and recorded.
	{
		r := NewRunner(inst.CNF, evalTestConfig(eval.Policy{}))
		pe, err := r.EvaluatePoint(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		g.EstimateZero = estimateGolden{
			FBits:      math.Float64bits(pe.Estimate.Value),
			MeanBits:   math.Float64bits(pe.Estimate.Mean),
			SampleFNV:  hashFloatSlice(pe.Sample.Values()),
			Solved:     r.SubproblemsSolved(),
			Stats:      toEstGoldenStats(statsNoTime(r.AggregateStats())),
			ActFNV:     runnerActivityHash(r, inst.CNF.NumVars),
			StagesRun:  1,
			SampleSize: pe.Sample.Len(),
		}
	}

	// Default-policy estimate against an infinite incumbent: pruning never
	// fires, stage boundaries and the early-stop decision depend only on
	// complete stage prefixes, so the run stays bit-deterministic.
	{
		pol := eval.DefaultPolicy()
		r := NewRunner(inst.CNF, evalTestConfig(pol))
		pe, err := r.EvaluatePointBudgeted(context.Background(), p, pol, math.Inf(1), nil)
		if err != nil {
			t.Fatal(err)
		}
		g.EstimateStaged = estimateGolden{
			FBits:      math.Float64bits(pe.Estimate.Value),
			MeanBits:   math.Float64bits(pe.Estimate.Mean),
			SampleFNV:  hashFloatSlice(pe.Sample.Values()),
			Solved:     r.SubproblemsSolved(),
			Stats:      toEstGoldenStats(statsNoTime(r.AggregateStats())),
			ActFNV:     runnerActivityHash(r, inst.CNF.NumVars),
			StagesRun:  pe.StagesRun,
			EarlyStop:  pe.EarlyStopped,
			SampleSize: pe.Sample.Len(),
		}
	}

	opts := optimize.Options{Seed: 5, MaxEvaluations: 25}

	// Zero-policy tabu search: the full trace is deterministic.
	{
		r := NewRunner(inst.CNF, evalTestConfig(eval.Policy{}))
		res, err := optimize.TabuSearch(context.Background(), r, space.FullPoint(), opts)
		if err != nil {
			t.Fatal(err)
		}
		trace := make([]float64, 0, len(res.Trace))
		for _, v := range res.Trace {
			trace = append(trace, v.Value)
		}
		g.SearchZero = searchGolden{
			BestFBits:   math.Float64bits(res.BestValue),
			BestPoint:   res.BestPoint.Key(),
			Evaluations: res.Evaluations,
			TraceFNV:    hashFloatSlice(trace),
			Solved:      r.SubproblemsSolved(),
			Stats:       toEstGoldenStats(statsNoTime(r.AggregateStats())),
			ActFNV:      runnerActivityHash(r, inst.CNF.NumVars),
		}
		top := res.BestPoint.Vars()
		g.ActivityTopVars = make([]int, 0, len(top))
		for _, v := range top {
			g.ActivityTopVars = append(g.ActivityTopVars, int(v))
		}
	}

	// Default-policy tabu search: prune aborts cut samples at
	// timing-dependent boundaries, so only the search outcome is pinned
	// (the same contract TestPruningAndStagingSaveSubproblems relies on).
	{
		r := NewRunner(inst.CNF, evalTestConfig(eval.DefaultPolicy()))
		res, err := optimize.TabuSearch(context.Background(), r, space.FullPoint(), opts)
		if err != nil {
			t.Fatal(err)
		}
		g.SearchDefault = searchGolden{
			BestFBits:   math.Float64bits(res.BestValue),
			BestPoint:   res.BestPoint.Key(),
			Evaluations: res.Evaluations,
		}
	}
	return g
}

func statsNoTime(s solver.Stats) solver.Stats {
	s.SolveTime = 0
	return s
}

// TestEstimatorGoldens compares the fixed-seed pipeline against the values
// recorded from the seed implementation.
func TestEstimatorGoldens(t *testing.T) {
	got := computeEstimatorGoldens(t)

	if os.Getenv("PDSAT_UPDATE_GOLDENS") != "" {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(estimatorGoldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(estimatorGoldenFile, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded estimator goldens to %s", estimatorGoldenFile)
		return
	}

	buf, err := os.ReadFile(estimatorGoldenFile)
	if err != nil {
		t.Fatalf("missing golden file (record with PDSAT_UPDATE_GOLDENS=1): %v", err)
	}
	var want estimatorGoldens
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if got.EstimateZero != want.EstimateZero {
		t.Errorf("zero-policy estimate diverges from the seed:\n got %+v\nwant %+v", got.EstimateZero, want.EstimateZero)
	}
	if got.EstimateStaged != want.EstimateStaged {
		t.Errorf("staged estimate diverges from the seed:\n got %+v\nwant %+v", got.EstimateStaged, want.EstimateStaged)
	}
	if got.SearchZero != want.SearchZero {
		t.Errorf("zero-policy search diverges from the seed:\n got %+v\nwant %+v", got.SearchZero, want.SearchZero)
	}
	if got.SearchDefault != want.SearchDefault {
		t.Errorf("default-policy search diverges from the seed:\n got %+v\nwant %+v", got.SearchDefault, want.SearchDefault)
	}
	if len(got.ActivityTopVars) != len(want.ActivityTopVars) {
		t.Errorf("best-point variables diverge: got %v, want %v", got.ActivityTopVars, want.ActivityTopVars)
	} else {
		for i := range want.ActivityTopVars {
			if got.ActivityTopVars[i] != want.ActivityTopVars[i] {
				t.Errorf("best-point variable %d diverges: got %v, want %v", i, got.ActivityTopVars, want.ActivityTopVars)
				break
			}
		}
	}
}
