package pdsat

import (
	"context"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cluster"
	"github.com/paper-repro/pdsat-go/internal/eval"
)

// TestAdaptiveDispatchBitIdenticalEstimate is the determinism gate of the
// adaptive dispatch tentpole: with work stealing, speculation and the
// variance-aware batching they activate all engaged — against a cluster
// whose first worker stalls every task it starts — a fixed-seed estimate
// must still be bit-identical to the plain in-process runner.  The cost
// model and the dispatch policies may only move subproblems between
// workers; each sample's content is a function of the scope seed and its
// slot alone.
func TestAdaptiveDispatchBitIdenticalEstimate(t *testing.T) {
	inst := weakBivium(t, 167, 60, 21)
	space := unknownSpace(inst)
	p := space.FullPoint()

	ref := NewRunner(inst.CNF, evalTestConfig(eval.Policy{}))
	want, err := ref.EvaluatePoint(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}

	leader, err := cluster.Listen("127.0.0.1:0", inst.CNF, cluster.LeaderOptions{
		Heartbeat: 100 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	addr := leader.Addr().String()

	// The straggler registers first, so it sits at the head of the
	// assignment order and stalls whatever it is handed; only stealing its
	// queue and speculating its running task lets the batch finish inside
	// the test deadline.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = cluster.Serve(ctx, addr, cluster.WorkerOptions{
			Capacity: 1, Name: "straggler", Logf: t.Logf,
			TaskDelay: func(cluster.Task) time.Duration { return 2 * time.Minute },
		})
	}()
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer waitCancel()
	if err := leader.WaitForWorkers(waitCtx, 1); err != nil {
		t.Fatalf("straggler did not register: %v", err)
	}
	go func() {
		_ = cluster.Serve(ctx, addr, cluster.WorkerOptions{Capacity: 2, Name: "healthy", Logf: t.Logf})
	}()
	if err := leader.WaitForWorkers(waitCtx, 2); err != nil {
		t.Fatalf("healthy worker did not register: %v", err)
	}

	cfg := evalTestConfig(eval.Policy{})
	cfg.Transport = leader
	cfg.Steal = true
	cfg.Speculate = true
	r := NewRunner(inst.CNF, cfg)
	runCtx, runCancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer runCancel()
	got, err := r.EvaluatePoint(runCtx, p)
	if err != nil {
		t.Fatal(err)
	}

	if got.Estimate != want.Estimate {
		t.Fatalf("estimate differs under adaptive dispatch:\n got %+v\nwant %+v", got.Estimate, want.Estimate)
	}
	gv, wv := got.Sample.Values(), want.Sample.Values()
	if len(gv) != len(wv) {
		t.Fatalf("sample sizes differ: %d vs %d", len(gv), len(wv))
	}
	for i := range gv {
		if gv[i] != wv[i] {
			t.Fatalf("sample %d differs under adaptive dispatch: %v vs %v", i, gv[i], wv[i])
		}
	}

	// The policies must actually have fired — a test where the straggler
	// never stalls anything would prove nothing — and their duplicates must
	// stay invisible to the sample accounting.
	if r.SpeculativeDuplicates() == 0 || r.SpeculationWins() == 0 {
		t.Fatalf("speculation never engaged against the straggler: stolen=%d dup=%d wins=%d",
			r.TasksStolen(), r.SpeculativeDuplicates(), r.SpeculationWins())
	}
	if got, want := r.SubproblemsSolved(), ref.SubproblemsSolved(); got != want {
		t.Fatalf("solved-subproblem count differs under speculation: %d vs %d (duplicate leaked into the ledger)", got, want)
	}
}
