package pdsat

import (
	"context"
	"math"
	"testing"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/decomp"
	"github.com/paper-repro/pdsat-go/internal/eval"
	"github.com/paper-repro/pdsat-go/internal/optimize"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// evalTestConfig is the fixed-seed configuration shared by the regression
// tests of the budget-aware evaluation engine.
func evalTestConfig(pol eval.Policy) Config {
	return Config{
		SampleSize: 24,
		Workers:    2,
		Seed:       3,
		CostMetric: solver.CostPropagations,
		Policy:     pol,
	}
}

// legacyActivityObjective wraps a runner as a plain optimize.Objective
// *without* implementing eval.Evaluator, pinning the pre-engine evaluation
// path (one full batch per evaluation) so the tests below can compare the
// refactored pipeline against it.  It forwards conflict activity so the
// tabu search's getNewCenter heuristic behaves identically on both paths.
type legacyActivityObjective struct{ r *Runner }

func (o legacyActivityObjective) Evaluate(ctx context.Context, p decomp.Point) (float64, error) {
	return o.r.Evaluate(ctx, p)
}

func (o legacyActivityObjective) VarActivity(v cnf.Var) float64 { return o.r.VarActivity(v) }

// TestEvalPolicyDisabledBitIdenticalEstimate checks the tentpole's central
// regression guarantee at the single-evaluation level: with pruning and
// staging disabled (the zero policy) the budget-aware path reproduces the
// classic full-sample evaluation bit for bit — F value, every raw sample
// cost, conflict activities and aggregate solver statistics.
func TestEvalPolicyDisabledBitIdenticalEstimate(t *testing.T) {
	inst := weakBivium(t, 167, 60, 21)
	space := unknownSpace(inst)
	p := space.FullPoint()

	classic := NewRunner(inst.CNF, evalTestConfig(eval.Policy{}))
	want, err := classic.EvaluatePoint(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}

	budgeted := NewRunner(inst.CNF, evalTestConfig(eval.Policy{}))
	got, err := budgeted.EvaluatePointBudgeted(context.Background(), p, eval.Policy{}, math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}

	if got.Estimate != want.Estimate {
		t.Fatalf("estimate differs: got %+v, want %+v", got.Estimate, want.Estimate)
	}
	gv, wv := got.Sample.Values(), want.Sample.Values()
	if len(gv) != len(wv) {
		t.Fatalf("sample sizes differ: %d vs %d", len(gv), len(wv))
	}
	for i := range gv {
		if gv[i] != wv[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, gv[i], wv[i])
		}
	}
	if got.Pruned || got.EarlyStopped || got.StagesRun != 1 {
		t.Fatalf("zero policy must run exactly one full stage: %+v", got)
	}
	if got.SamplesAborted != 0 {
		t.Fatalf("zero policy aborted %d samples", got.SamplesAborted)
	}
	for v := 1; v <= inst.CNF.NumVars; v++ {
		if a, b := classic.VarActivity(cnf.Var(v)), budgeted.VarActivity(cnf.Var(v)); a != b {
			t.Fatalf("conflict activity of %d differs: %v vs %v", v, a, b)
		}
	}
	ca, ba := classic.AggregateStats(), budgeted.AggregateStats()
	ca.SolveTime, ba.SolveTime = 0, 0 // wall clock is not bit-comparable
	if ca != ba {
		t.Fatalf("aggregate stats differ:\n%+v\n%+v", ca, ba)
	}
	if classic.SubproblemsSolved() != budgeted.SubproblemsSolved() {
		t.Fatalf("solved counts differ: %d vs %d", classic.SubproblemsSolved(), budgeted.SubproblemsSolved())
	}
}

// TestEvalPolicyDisabledBitIdenticalSearch is the CI regression gate for
// the pruning-off path: a fixed-seed tabu search driven through the new
// eval.Evaluator plumbing with the zero policy must reproduce the legacy
// bare-Objective search exactly — same best point, same best F, same trace
// values, same conflict activities and solved-subproblem counts.
func TestEvalPolicyDisabledBitIdenticalSearch(t *testing.T) {
	inst := weakBivium(t, 167, 60, 21)
	space := unknownSpace(inst)
	opts := optimize.Options{Seed: 5, MaxEvaluations: 25}

	legacy := NewRunner(inst.CNF, evalTestConfig(eval.Policy{}))
	want, err := optimize.TabuSearch(context.Background(), legacyActivityObjective{legacy}, space.FullPoint(), opts)
	if err != nil {
		t.Fatal(err)
	}

	// The bare Runner implements eval.Evaluator, so this search runs
	// through the budget-aware engine (with everything disabled).
	engine := NewRunner(inst.CNF, evalTestConfig(eval.Policy{}))
	got, err := optimize.TabuSearch(context.Background(), engine, space.FullPoint(), opts)
	if err != nil {
		t.Fatal(err)
	}

	if got.BestValue != want.BestValue {
		t.Fatalf("best F differs: %v vs %v", got.BestValue, want.BestValue)
	}
	if !got.BestPoint.Equal(want.BestPoint) {
		t.Fatalf("best point differs: %v vs %v", got.BestPoint, want.BestPoint)
	}
	if got.Evaluations != want.Evaluations {
		t.Fatalf("evaluation counts differ: %d vs %d", got.Evaluations, want.Evaluations)
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(got.Trace), len(want.Trace))
	}
	for i := range got.Trace {
		g, w := got.Trace[i], want.Trace[i]
		if g.Value != w.Value || !g.Point.Equal(w.Point) || g.Improved != w.Improved || g.Pruned {
			t.Fatalf("trace visit %d differs: %+v vs %+v", i, g, w)
		}
	}
	for _, v := range inst.UnknownStartVars() {
		if a, b := legacy.VarActivity(v), engine.VarActivity(v); a != b {
			t.Fatalf("conflict activity of %d differs: %v vs %v", v, a, b)
		}
	}
	if legacy.SubproblemsSolved() != engine.SubproblemsSolved() {
		t.Fatalf("solved counts differ: %d vs %d", legacy.SubproblemsSolved(), engine.SubproblemsSolved())
	}
	if engine.PrunedEvaluations() != 0 || engine.SubproblemsAborted() != 0 {
		t.Fatalf("zero policy pruned %d evaluations / aborted %d subproblems",
			engine.PrunedEvaluations(), engine.SubproblemsAborted())
	}
}

// TestEvaluatePointBudgetedPrunes checks the pruning mechanism directly: an
// evaluation given an incumbent far below the point's true F must abort
// early, report a certified lower bound above the incumbent, and account
// the skipped subproblems as aborted.
func TestEvaluatePointBudgetedPrunes(t *testing.T) {
	inst := weakBivium(t, 167, 60, 21)
	space := unknownSpace(inst)
	p := space.FullPoint()

	full, err := NewRunner(inst.CNF, evalTestConfig(eval.Policy{})).
		EvaluatePoint(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}

	r := NewRunner(inst.CNF, evalTestConfig(eval.Policy{Prune: true}))
	incumbent := full.Estimate.Value / 100
	pe, err := r.EvaluatePointBudgeted(context.Background(), p, r.Config().Policy, incumbent, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !pe.Pruned {
		t.Fatalf("evaluation with incumbent %v was not pruned: %+v", incumbent, pe)
	}
	if pe.LowerBound <= incumbent {
		t.Fatalf("lower bound %v does not exceed the incumbent %v", pe.LowerBound, incumbent)
	}
	if pe.BoundedValue() != pe.LowerBound {
		t.Fatalf("BoundedValue = %v, want the lower bound %v", pe.BoundedValue(), pe.LowerBound)
	}
	if pe.Sample.Len()+pe.SamplesAborted > pe.SamplesPlanned {
		t.Fatalf("accounting: %d solved + %d aborted > %d planned",
			pe.Sample.Len(), pe.SamplesAborted, pe.SamplesPlanned)
	}
	if pe.Sample.Len() >= pe.SamplesPlanned {
		t.Fatalf("pruned evaluation still solved the full sample (%d)", pe.Sample.Len())
	}
	if r.PrunedEvaluations() != 1 {
		t.Fatalf("PrunedEvaluations = %d, want 1", r.PrunedEvaluations())
	}
	if got := r.SubproblemsSolved() + r.SubproblemsAborted(); got != pe.Sample.Len()+pe.SamplesAborted {
		t.Fatalf("runner counters (%d) disagree with the estimate (%d)",
			got, pe.Sample.Len()+pe.SamplesAborted)
	}
	ev := pe.Evaluation()
	if ev.Value != pe.LowerBound || !ev.Pruned || ev.SamplesSolved != pe.Sample.Len() {
		t.Fatalf("Evaluation conversion mismatch: %+v", ev)
	}
}

// TestEvaluatePointBudgetedStagesEarlyStop checks staged sampling: with a
// generous ε a cheap homogeneous point must stop after the first stage, and
// the estimate over the prefix must match a same-seed evaluation truncated
// to that prefix length.
func TestEvaluatePointBudgetedStagesEarlyStop(t *testing.T) {
	inst := weakBivium(t, 167, 60, 21)
	space := unknownSpace(inst)
	p := space.FullPoint()

	pol := eval.Policy{Stages: 3, Epsilon: 10} // ε so large any 2-sample stage passes
	r := NewRunner(inst.CNF, evalTestConfig(pol))
	pe, err := r.EvaluatePointBudgeted(context.Background(), p, pol, math.Inf(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !pe.EarlyStopped {
		t.Fatalf("evaluation did not stop early: %+v", pe)
	}
	if pe.StagesRun != 1 {
		t.Fatalf("StagesRun = %d, want 1", pe.StagesRun)
	}
	wantLen := eval.StagePlan(24, 3)[0]
	if pe.Sample.Len() != wantLen {
		t.Fatalf("solved %d samples, want the first stage of %d", pe.Sample.Len(), wantLen)
	}
	if pe.SamplesAborted != 0 {
		t.Fatalf("early stop aborted %d samples (none were dispatched)", pe.SamplesAborted)
	}

	// The prefix must be exactly the first samples of the full-sample
	// evaluation (the sample depends only on seed and counter).
	full, err := NewRunner(inst.CNF, evalTestConfig(eval.Policy{})).
		EvaluatePoint(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	fv, gv := full.Sample.Values(), pe.Sample.Values()
	for i := range gv {
		if gv[i] != fv[i] {
			t.Fatalf("staged sample %d differs from the full sample prefix: %v vs %v", i, gv[i], fv[i])
		}
	}
}

// TestPruningAndStagingSaveSubproblems is the behavioural headline of the
// engine: on the weakened-Bivium tabu search the default policy must cut
// the number of solved subproblems by a large margin (the acceptance bar is
// ≥30%) while finding the same best F as the exhaustive path — on this
// fixed seed the best F is identical.
func TestPruningAndStagingSaveSubproblems(t *testing.T) {
	inst := weakBivium(t, 160, 200, 7)
	space := unknownSpace(inst)
	opts := optimize.Options{Seed: 5, MaxEvaluations: 40}

	run := func(pol eval.Policy) (float64, int) {
		r := NewRunner(inst.CNF, Config{
			SampleSize: 30,
			Workers:    2,
			Seed:       3,
			CostMetric: solver.CostPropagations,
			Policy:     pol,
		})
		res, err := optimize.TabuSearch(context.Background(), r, space.FullPoint(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.BestValue, r.SubproblemsSolved()
	}

	bestOff, solvedOff := run(eval.Policy{})
	bestOn, solvedOn := run(eval.DefaultPolicy())
	t.Logf("subproblems solved: %d without policy, %d with defaults (best F %g vs %g)",
		solvedOff, solvedOn, bestOff, bestOn)
	if bestOn != bestOff {
		t.Fatalf("best F changed under the default policy: %v vs %v", bestOn, bestOff)
	}
	if float64(solvedOn) > 0.7*float64(solvedOff) {
		t.Fatalf("default policy saved too little: %d of %d subproblems solved (want ≤70%%)",
			solvedOn, solvedOff)
	}
}

// TestSolveReportCountsAborted checks the solving-mode accounting: a
// stop-on-SAT family run reports the subproblems it cut short.
func TestSolveReportCountsAborted(t *testing.T) {
	inst := weakBivium(t, 172, 60, 21)
	space := unknownSpace(inst)
	r := NewRunner(inst.CNF, Config{Workers: 2, Seed: 3, CostMetric: solver.CostPropagations})
	report, err := r.Solve(context.Background(), space.FullPoint(), SolveOptions{StopOnSat: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.FoundSat {
		t.Fatal("weakened instance must contain its key")
	}
	if report.SubproblemsAborted != r.SubproblemsAborted() {
		t.Fatalf("report aborted %d, runner counted %d", report.SubproblemsAborted, r.SubproblemsAborted())
	}
	if report.Processed == 0 {
		t.Fatal("no subproblem processed")
	}
}
