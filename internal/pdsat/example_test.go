package pdsat_test

import (
	"context"
	"fmt"

	"github.com/paper-repro/pdsat-go/internal/decomp"
	"github.com/paper-repro/pdsat-go/internal/encoder"
	"github.com/paper-repro/pdsat-go/internal/pdsat"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// ExampleRunner_EvaluatePoint evaluates the predictive function F (eq. 5 of
// the paper) for a decomposition set of a weakened A5/1 cryptanalysis
// instance.  With a deterministic cost metric the estimate is reproducible:
// the sample depends only on the seed and every subproblem is solved exactly
// as a fresh solver would solve it, even though each worker reuses one
// persistent solver.
func ExampleRunner_EvaluatePoint() {
	inst, err := encoder.NewInstance(encoder.A51(), encoder.Config{
		KeystreamLen: 40, // bits of observed keystream
		KnownSuffix:  44, // weakening: fix a suffix of the state to its true value
		Seed:         31,
	})
	if err != nil {
		panic(err)
	}
	// The search space is the set of unknown starting variables; use its
	// first 8 variables as the decomposition set X̃.
	space := decomp.NewSpace(inst.UnknownStartVars())
	point, err := space.PointFromVars(space.Vars()[:8])
	if err != nil {
		panic(err)
	}

	runner := pdsat.NewRunner(inst.CNF, pdsat.Config{
		SampleSize: 12,
		Workers:    3,
		Seed:       7,
		CostMetric: solver.CostConflicts,
	})
	est, err := runner.EvaluatePoint(context.Background(), point)
	if err != nil {
		panic(err)
	}
	fmt.Printf("d=%d N=%d F=%.2f conflicts\n",
		est.Estimate.Dimension, est.Estimate.SampleSize, est.Estimate.Value)
	// Output:
	// d=8 N=12 F=533.33 conflicts
}
