package pdsat

import (
	"context"
	"strings"
	"testing"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/decomp"
)

// TestConfigValidateRejectsNegatives checks the validation satellite:
// negative worker counts and sample sizes must surface as clear errors
// instead of being silently coerced (or panicking/hanging downstream).
func TestConfigValidateRejectsNegatives(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config must be valid (defaults), got %v", err)
	}
	if err := (Config{SampleSize: -1}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "sample size") {
		t.Fatalf("negative sample size must be rejected with a clear error, got %v", err)
	}
	if err := (Config{Workers: -2}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "worker count") {
		t.Fatalf("negative worker count must be rejected with a clear error, got %v", err)
	}
}

// TestNewRunnerSurfacesInvalidConfig checks that a runner built from an
// invalid configuration reports the validation error on first use.
func TestNewRunnerSurfacesInvalidConfig(t *testing.T) {
	f := cnf.New(3)
	f.AddClauseLits(cnf.NewLit(1, true), cnf.NewLit(2, true))
	r := NewRunner(f, Config{Workers: -1})
	p := decomp.NewSpace([]cnf.Var{1, 2}).FullPoint()
	if _, err := r.EvaluatePoint(context.Background(), p); err == nil ||
		!strings.Contains(err.Error(), "worker count") {
		t.Fatalf("EvaluatePoint must surface the config error, got %v", err)
	}
	if _, err := r.Solve(context.Background(), p, SolveOptions{}); err == nil ||
		!strings.Contains(err.Error(), "worker count") {
		t.Fatalf("Solve must surface the config error, got %v", err)
	}
}
