package pdsat

import (
	"context"
	"math"
	"sync"
	"testing"

	"github.com/paper-repro/pdsat-go/internal/decomp"
	"github.com/paper-repro/pdsat-go/internal/encoder"
	"github.com/paper-repro/pdsat-go/internal/eval"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// scopeTestInstance builds a weakened A5/1 instance for scope tests.
func scopeTestInstance(t testing.TB) *encoder.Instance {
	t.Helper()
	inst, err := encoder.NewInstance(encoder.A51(), encoder.Config{
		KeystreamLen: 40,
		KnownSuffix:  46,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// estimatesEqual compares two point estimates bit for bit: F, every raw
// sample cost and the satisfiable count.
func estimatesEqual(a, b *PointEstimate) bool {
	if a.Estimate.Value != b.Estimate.Value || a.SatisfiableSamples != b.SatisfiableSamples {
		return false
	}
	av, bv := a.Sample.Values(), b.Sample.Values()
	if len(av) != len(bv) {
		return false
	}
	for i := range av {
		if av[i] != bv[i] {
			return false
		}
	}
	return true
}

// TestScopeBitIdenticalToFreshRunner pins the scope isolation guarantee: a
// scope with seed S on a busy runner evaluates exactly like a fresh runner
// configured with Seed S, even though the runner's default scope has already
// advanced its own evaluation counter.
func TestScopeBitIdenticalToFreshRunner(t *testing.T) {
	inst := scopeTestInstance(t)
	cfg := Config{SampleSize: 12, Workers: 2, Seed: 3, CostMetric: solver.CostPropagations}
	r := NewRunner(inst.CNF, cfg)
	space := decomp.NewSpace(inst.UnknownStartVars())
	p := space.FullPoint()

	// Advance the default scope so a shared counter would diverge.
	for i := 0; i < 3; i++ {
		if _, err := r.EvaluatePoint(context.Background(), p); err != nil {
			t.Fatal(err)
		}
	}

	scopeSeed := int64(91)
	sc := r.NewScope(scopeSeed)
	fresh := NewRunner(inst.CNF, Config{SampleSize: 12, Workers: 2, Seed: scopeSeed, CostMetric: solver.CostPropagations})

	q := p.Flip(0)
	for i, point := range []decomp.Point{p, q, p.Flip(1)} {
		got, err := sc.EvaluatePoint(context.Background(), point)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.EvaluatePoint(context.Background(), point)
		if err != nil {
			t.Fatal(err)
		}
		if !estimatesEqual(got, want) {
			t.Fatalf("evaluation %d: scope F=%v differs from fresh runner F=%v",
				i, got.Estimate.Value, want.Estimate.Value)
		}
	}

	// The scope's local activity matches the fresh runner's global activity.
	for _, v := range inst.UnknownStartVars() {
		if sc.VarActivity(v) != fresh.VarActivity(v) {
			t.Fatalf("scope activity of %d differs from fresh runner", v)
		}
	}
	if sc.Evaluations() != 3 || fresh.Evaluations() != 3 {
		t.Fatalf("scope counted %d evaluations, fresh runner %d, want 3", sc.Evaluations(), fresh.Evaluations())
	}
}

// TestConcurrentScopesDeterministic runs several scopes concurrently against
// one runner (one transport, one solver pool) and checks each scope's
// results are bit-identical to running it alone: interleaving on the shared
// transport must never leak into a scope's sampling.
func TestConcurrentScopesDeterministic(t *testing.T) {
	inst := scopeTestInstance(t)
	cfg := Config{SampleSize: 10, Workers: 4, Seed: 1, CostMetric: solver.CostPropagations}
	space := decomp.NewSpace(inst.UnknownStartVars())
	points := []decomp.Point{space.FullPoint(), space.FullPoint().Flip(0), space.FullPoint().Flip(2)}

	const scopes = 4
	// Solo reference: each scope's sequence run on its own runner.
	want := make([][]*PointEstimate, scopes)
	for i := 0; i < scopes; i++ {
		solo := NewRunner(inst.CNF, Config{SampleSize: 10, Workers: 4, Seed: int64(100 + i), CostMetric: solver.CostPropagations})
		for _, p := range points {
			pe, err := solo.EvaluatePoint(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = append(want[i], pe)
		}
	}

	r := NewRunner(inst.CNF, cfg)
	got := make([][]*PointEstimate, scopes)
	var wg sync.WaitGroup
	errs := make([]error, scopes)
	for i := 0; i < scopes; i++ {
		sc := r.NewScope(int64(100 + i))
		wg.Add(1)
		go func(i int, sc *Scope) {
			defer wg.Done()
			for _, p := range points {
				pe, err := sc.EvaluatePoint(context.Background(), p)
				if err != nil {
					errs[i] = err
					return
				}
				got[i] = append(got[i], pe)
			}
		}(i, sc)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("scope %d: %v", i, err)
		}
	}
	for i := range got {
		for k := range got[i] {
			if !estimatesEqual(got[i][k], want[i][k]) {
				t.Fatalf("scope %d evaluation %d differs under concurrency: F=%v want %v",
					i, k, got[i][k].Estimate.Value, want[i][k].Estimate.Value)
			}
		}
	}

	// Global roll-up covers every scope's work.
	totalEvals := scopes * len(points)
	if r.Evaluations() != totalEvals {
		t.Fatalf("runner rolled up %d evaluations, want %d", r.Evaluations(), totalEvals)
	}
	solved := 0
	for i := 0; i < scopes; i++ {
		solved += 10 * len(points)
	}
	if r.SubproblemsSolved() != solved {
		t.Fatalf("runner rolled up %d solved subproblems, want %d", r.SubproblemsSolved(), solved)
	}
}

// TestScopePruningCounters checks that an incumbent-pruned scope evaluation
// counts in both the scope and the runner roll-up.
func TestScopePruningCounters(t *testing.T) {
	inst := scopeTestInstance(t)
	r := NewRunner(inst.CNF, Config{SampleSize: 16, Workers: 2, Seed: 3, CostMetric: solver.CostPropagations})
	space := decomp.NewSpace(inst.UnknownStartVars())
	p := space.FullPoint()
	sc := r.NewScope(17)

	// An absurdly low incumbent forces the prune on the first stage.
	pe, err := sc.EvaluatePointBudgeted(context.Background(), p, eval.Policy{Prune: true, Stages: 2}, 1e-9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !pe.Pruned {
		t.Fatal("evaluation with an epsilon incumbent was not pruned")
	}
	if pe.LowerBound <= 1e-9 {
		t.Fatalf("pruned lower bound %v does not exceed the incumbent", pe.LowerBound)
	}
	if sc.PrunedEvaluations() != 1 || r.PrunedEvaluations() != 1 {
		t.Fatalf("pruned counters scope=%d runner=%d, want 1/1", sc.PrunedEvaluations(), r.PrunedEvaluations())
	}
	if sc.SubproblemsAborted() == 0 || r.SubproblemsAborted() != sc.SubproblemsAborted() {
		t.Fatalf("aborted counters scope=%d runner=%d disagree", sc.SubproblemsAborted(), r.SubproblemsAborted())
	}
	if math.IsInf(pe.LowerBound, 1) {
		t.Fatal("lower bound is infinite")
	}
}
