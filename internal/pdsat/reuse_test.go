package pdsat

import (
	"context"
	"testing"

	"github.com/paper-repro/pdsat-go/internal/cluster"
	"github.com/paper-repro/pdsat-go/internal/encoder"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// TestEvaluatePointUnaffectedBySolverReuse is the runner-level counterpart
// of solver.TestResetEquivalentToFresh: because every worker restores its
// persistent solver to the pristine state before each subproblem, the
// estimate of a point must not depend on how many subproblems the runner's
// pooled solvers have processed before (here: many evaluations and a whole
// family solve on one runner vs. a fresh runner per evaluation).
func TestEvaluatePointUnaffectedBySolverReuse(t *testing.T) {
	inst, err := encoder.NewInstance(encoder.A51(), encoder.Config{
		KeystreamLen: 40, KnownSuffix: 44, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	space := unknownSpace(inst)
	p, err := space.PointFromVars(space.Vars()[:8])
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{SampleSize: 12, Workers: 3, Seed: 7, CostMetric: solver.CostConflicts}

	// Reference: a fresh runner (hence freshly built solvers) per evaluation
	// index.
	want := make([]float64, 3)
	for i := range want {
		r := NewRunner(inst.CNF, cfg)
		for j := 0; j <= i; j++ {
			est, err := r.EvaluatePoint(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			if j == i {
				want[j] = est.Estimate.Value
			}
		}
	}

	// One long-lived runner whose pooled solvers accumulate history: the
	// same three evaluations, interleaved with a full family solve.
	r := NewRunner(inst.CNF, cfg)
	for i := range want {
		est, err := r.EvaluatePoint(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if est.Estimate.Value != want[i] {
			t.Fatalf("evaluation %d: estimate %v differs from fresh-runner value %v",
				i, est.Estimate.Value, want[i])
		}
		if i == 0 {
			if _, err := r.Solve(context.Background(), p, SolveOptions{}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSolveRetainLearnedFindsSameAnswer checks that solving mode with
// learned-clause retention reaches the same conclusion (secret found, model
// valid) as the default pristine mode, and that the accounting fields stay
// consistent.
func TestSolveRetainLearnedFindsSameAnswer(t *testing.T) {
	inst := weakBivium(t, 167, 60, 41)
	space := unknownSpace(inst)

	pristine := NewRunner(inst.CNF, Config{SampleSize: 4, Workers: 2, Seed: 1, CostMetric: solver.CostPropagations})
	base, err := pristine.Solve(context.Background(), space.FullPoint(), SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{SampleSize: 4, Workers: 2, Seed: 1, CostMetric: solver.CostPropagations, RetainLearned: true}
	r := NewRunner(inst.CNF, cfg)
	report, err := r.Solve(context.Background(), space.FullPoint(), SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.FoundSat {
		t.Fatal("retain-learned solve must still find the secret")
	}
	if report.SatIndex != base.SatIndex {
		t.Fatalf("first satisfiable subproblem moved: %d vs %d", report.SatIndex, base.SatIndex)
	}
	if report.Processed != base.Processed {
		t.Fatalf("processed %d vs %d subproblems", report.Processed, base.Processed)
	}
	ok, err := inst.CheckRecoveredState(encoder.Bivium(), report.Model)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("recovered state does not reproduce the keystream")
	}
	if report.TotalCost <= 0 {
		t.Fatal("retained-mode costs must still include the construction baseline")
	}
}

// TestAggregateStats checks the per-worker stats aggregation: the runner's
// aggregate must equal the sum of per-subproblem lifetime efforts, i.e. the
// cost metric applied to it must match the summed sample costs.
func TestAggregateStats(t *testing.T) {
	inst := weakBivium(t, 168, 50, 9)
	space := unknownSpace(inst)
	r := NewRunner(inst.CNF, Config{SampleSize: 8, Workers: 2, Seed: 7, CostMetric: solver.CostPropagations})
	est, err := r.EvaluatePoint(context.Background(), space.FullPoint())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range est.Sample.Values() {
		sum += v
	}
	agg := r.AggregateStats()
	if got := float64(agg.Propagations); got != sum {
		t.Fatalf("aggregate propagations %v != summed sample costs %v", got, sum)
	}
	if agg.SolveTime <= 0 {
		t.Fatal("aggregate solve time should be positive")
	}
}

// TestRetainModeActivityNotDoubleCounted checks the per-task activity
// attribution when a retained solver outlives both tasks and runs: with one
// worker the per-task diffs telescope, so the activity absorbed by the
// runner over two solving runs must equal the pooled solver's cumulative
// conflict activity — if the second run's worker failed to start its diff
// from the solver's existing counters, the first run's residue would be
// counted twice.
func TestRetainModeActivityNotDoubleCounted(t *testing.T) {
	inst, err := encoder.NewInstance(encoder.A51(), encoder.Config{
		KeystreamLen: 40, KnownSuffix: 44, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	space := unknownSpace(inst)
	p, err := space.PointFromVars(space.Vars()[:8])
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(inst.CNF, Config{SampleSize: 4, Workers: 1, Seed: 3, RetainLearned: true})
	for i := 0; i < 2; i++ {
		if _, err := r.Solve(context.Background(), p, SolveOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	absorbed := 0.0
	for v := range r.confAct {
		absorbed += r.confAct[v]
	}
	pooled := r.Transport().(*cluster.Inproc).PooledSolvers()
	if len(pooled) != 1 {
		t.Fatalf("expected exactly one pooled solver, got %d", len(pooled))
	}
	cumulative := 0.0
	for _, a := range pooled[0].ConflictActivities() {
		cumulative += a
	}
	if absorbed == 0 {
		t.Fatal("expected some conflict activity on this instance")
	}
	if absorbed != cumulative {
		t.Fatalf("absorbed activity %v != solver cumulative activity %v (double counting)",
			absorbed, cumulative)
	}
}

// TestSolverPoolIsBounded checks that the pool never holds more solvers than
// the configured worker count (workers return their solver when done).
func TestSolverPoolIsBounded(t *testing.T) {
	inst := weakBivium(t, 168, 50, 9)
	space := unknownSpace(inst)
	r := NewRunner(inst.CNF, Config{SampleSize: 16, Workers: 3, Seed: 2})
	for i := 0; i < 3; i++ {
		if _, err := r.EvaluatePoint(context.Background(), space.FullPoint()); err != nil {
			t.Fatal(err)
		}
	}
	n := r.Transport().(*cluster.Inproc).PoolSize()
	if n == 0 || n > 3 {
		t.Fatalf("pool holds %d solvers, want 1..3", n)
	}
}
