// Package pdsat reproduces the leader/worker architecture of the MPI program
// PDSAT used in the paper's experiments, on top of goroutines.
//
// The Runner has two modes, mirroring the paper:
//
//   - Estimation mode (EvaluatePoint): for a decomposition set X̃ the leader
//     draws a random sample of N assignments of X̃, the workers solve the
//     induced subproblems C[X̃/α], and the observed costs are combined into
//     the predictive-function value F = 2^d · mean (montecarlo.Estimate).
//     Per-variable conflict activity is accumulated across the sample; the
//     tabu search uses it to pick new neighbourhood centres.
//
// Each worker goroutine owns one persistent solver, drawn from a pool that
// the Runner keeps across evaluations, so the clause database and watch
// lists are built once per worker instead of once per subproblem.  In
// estimation mode the solver is restored to its pristine state
// (solver.Reset) before every subproblem, which makes the observed cost of a
// subproblem identical to what a freshly constructed solver would measure —
// the per-subproblem costs stay samples of the single well-defined random
// variable the Monte Carlo method requires, and fixed-seed estimates are
// bit-for-bit unchanged by the reuse.  In solving mode the Config.RetainLearned
// option additionally allows MiniSat-style retention of learned clauses
// across the subproblems a worker processes.
//
//   - Solving mode (Solve): all 2^d assignments of X̃ are enumerated and the
//     corresponding subproblems are solved, optionally stopping at the first
//     satisfiable one.  Workers honour interruption, like the modified
//     MiniSat of the paper that stops on non-blocking messages from the
//     leader.
//
// The predictive value is always computed for one CPU core; extrapolation to
// k cores is a division (montecarlo.ExtrapolateCores), justified by the
// independence of the subproblems.
package pdsat

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/cnf"
	"repro/internal/decomp"
	"repro/internal/montecarlo"
	"repro/internal/solver"
)

// Config configures a Runner.
type Config struct {
	// SampleSize is N, the number of random subproblems per predictive
	// function evaluation.
	SampleSize int
	// Workers is the number of computing processes (goroutines).  Zero
	// means GOMAXPROCS.
	Workers int
	// Seed drives the random samples.
	Seed int64
	// CostMetric selects the cost unit ζ (conflicts by default; wall time
	// reproduces the paper's setup).
	CostMetric solver.CostMetric
	// SolverOptions configures the per-subproblem CDCL solver.
	SolverOptions solver.Options
	// SubproblemBudget bounds the effort spent on a single subproblem
	// (useful as a safety net during estimation of very bad points).
	SubproblemBudget solver.Budget
	// RetainLearned lets each worker keep learned clauses, variable
	// activities and saved phases across the subproblems it processes in
	// solving mode (Runner.Solve), MiniSat-style.  Later subproblems on the
	// same worker then typically solve faster, but the reported per-subproblem
	// costs depend on which worker processed which subproblem and are no
	// longer comparable with the predictive function, so estimation mode
	// (EvaluatePoint) always uses pristine per-subproblem resets regardless
	// of this flag.
	RetainLearned bool
}

// DefaultConfig returns a configuration suitable for the scaled-down
// experiments: N=100 samples, conflicts as cost, all cores.
func DefaultConfig() Config {
	return Config{
		SampleSize:    100,
		Workers:       runtime.GOMAXPROCS(0),
		Seed:          1,
		CostMetric:    solver.CostConflicts,
		SolverOptions: solver.DefaultOptions(),
	}
}

// Runner evaluates predictive functions and processes decomposition families
// for one SAT instance.
type Runner struct {
	formula *cnf.Formula
	cfg     Config

	mu sync.Mutex
	// confAct accumulates per-variable conflict activity over every
	// subproblem solved by this runner (indexed by cnf.Var).
	confAct []float64
	// evaluations counts predictive-function evaluations.
	evaluations int
	// subproblemsSolved counts individual subproblem solves.
	subproblemsSolved int
	// aggStats accumulates the per-subproblem solver statistics.
	aggStats solver.Stats

	// poolMu guards pool, the persistent per-worker solvers reused across
	// evaluations.  A solver is taken from the pool for the lifetime of one
	// worker goroutine and returned when the worker exits.  In pristine
	// (estimation) mode every subproblem starts with a Reset, so any pooled
	// solver is interchangeable with any other; retain-mode workers instead
	// carry learned clauses and activities in the pooled solver and must
	// rebase budgets and activity diffs onto its cumulative counters.
	poolMu sync.Mutex
	pool   []*solver.Solver
}

// NewRunner creates a runner for the formula.
func NewRunner(f *cnf.Formula, cfg Config) *Runner {
	if cfg.SampleSize <= 0 {
		cfg.SampleSize = DefaultConfig().SampleSize
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.SolverOptions.VarDecay == 0 {
		cfg.SolverOptions = solver.DefaultOptions()
	}
	return &Runner{
		formula: f,
		cfg:     cfg,
		confAct: make([]float64, f.NumVars+1),
	}
}

// Formula returns the underlying formula.
func (r *Runner) Formula() *cnf.Formula { return r.formula }

// Config returns the runner configuration.
func (r *Runner) Config() Config { return r.cfg }

// Evaluations returns the number of predictive-function evaluations so far.
func (r *Runner) Evaluations() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evaluations
}

// SubproblemsSolved returns the number of subproblems solved so far.
func (r *Runner) SubproblemsSolved() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.subproblemsSolved
}

// AggregateStats returns the summed solver statistics of every subproblem
// solved so far (in the same accounting as the cost metric: construction
// baseline plus search effort per subproblem).
func (r *Runner) AggregateStats() solver.Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.aggStats
}

// acquireSolver hands out a persistent solver for one worker goroutine,
// creating it on first use.  Solvers live in a pool on the Runner so the
// clause database survives across evaluations (the optimizer calls
// EvaluatePoint thousands of times on the same formula).
func (r *Runner) acquireSolver() *solver.Solver {
	r.poolMu.Lock()
	if n := len(r.pool); n > 0 {
		s := r.pool[n-1]
		r.pool = r.pool[:n-1]
		r.poolMu.Unlock()
		return s
	}
	r.poolMu.Unlock()
	return solver.New(r.formula, r.cfg.SolverOptions)
}

// releaseSolver returns a worker's solver to the pool.
func (r *Runner) releaseSolver(s *solver.Solver) {
	r.poolMu.Lock()
	r.pool = append(r.pool, s)
	r.poolMu.Unlock()
}

// VarActivity returns the cumulative conflict activity of a variable over
// all subproblems solved so far.  It implements the activity source used by
// the tabu search's getNewCenter heuristic.
func (r *Runner) VarActivity(v cnf.Var) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(v) <= 0 || int(v) >= len(r.confAct) {
		return 0
	}
	return r.confAct[v]
}

// PointEstimate is the result of one predictive-function evaluation.
type PointEstimate struct {
	// Point is the evaluated decomposition set.
	Point decomp.Point
	// Estimate is the Monte Carlo estimate (mean, F value, etc.).
	Estimate montecarlo.Estimate
	// Sample holds the raw observed costs.
	Sample *montecarlo.Sample
	// SatisfiableSamples counts how many sampled subproblems were SAT.
	SatisfiableSamples int
	// WallTime is the elapsed wall-clock time of the evaluation.
	WallTime time.Duration
}

// task is one subproblem to solve.
type task struct {
	index       int
	assumptions []cnf.Lit
}

// taskResult is the outcome of one subproblem solve.
type taskResult struct {
	index   int
	cost    float64
	status  solver.Status
	model   cnf.Assignment
	actVars []float64 // conflict activity contribution, indexed by cnf.Var
	stats   solver.Stats
	// started distinguishes real solves (even interrupted ones) from
	// placeholders for tasks cancelled before a solver ever saw them.
	started bool
}

// EvaluatePoint computes the predictive function F at the decomposition set
// given by the point, using the runner's sample size and worker pool.  The
// evaluation is deterministic for a fixed configuration when the cost metric
// is deterministic: the sample depends only on (Seed, evaluation counter),
// and although each worker reuses one persistent solver, the solver is
// restored to its pristine state before every subproblem, so every
// subproblem is solved exactly as a fresh solver would solve it.
func (r *Runner) EvaluatePoint(ctx context.Context, p decomp.Point) (*PointEstimate, error) {
	if p.Count() == 0 {
		return nil, errors.New("pdsat: empty decomposition set")
	}
	start := time.Now()
	r.mu.Lock()
	evalIndex := r.evaluations
	r.evaluations++
	r.mu.Unlock()

	fam := decomp.FamilyOf(r.formula, p)
	// Derive a per-evaluation RNG so evaluation results do not depend on the
	// order in which the optimizer visits points.
	rng := rand.New(rand.NewSource(r.cfg.Seed ^ int64(evalIndex)*0x5851f42d4c957f2d))
	d := fam.Dimension()
	n := r.cfg.SampleSize

	tasks := make([]task, n)
	for i := 0; i < n; i++ {
		alpha := fam.RandomAssignment(rng)
		assumptions, err := fam.AssumptionsForBits(alpha)
		if err != nil {
			return nil, err
		}
		tasks[i] = task{index: i, assumptions: assumptions}
	}

	results, err := r.runTasks(ctx, tasks, false, false)
	if err != nil {
		return nil, err
	}

	costs := make([]float64, n)
	satCount := 0
	for _, res := range results {
		costs[res.index] = res.cost
		if res.status == solver.Sat {
			satCount++
		}
	}
	r.absorbActivities(results)

	sample := montecarlo.NewSample(costs)
	est := montecarlo.NewEstimate(d, sample)
	return &PointEstimate{
		Point:              p,
		Estimate:           est,
		Sample:             sample,
		SatisfiableSamples: satCount,
		WallTime:           time.Since(start),
	}, nil
}

// Evaluate implements the optimizer objective: it returns the predictive
// function value F(χ) at the point.
func (r *Runner) Evaluate(ctx context.Context, p decomp.Point) (float64, error) {
	est, err := r.EvaluatePoint(ctx, p)
	if err != nil {
		return 0, err
	}
	return est.Estimate.Value, nil
}

// absorbActivities adds the per-task conflict activities and statistics into
// the runner's cumulative tables.  Results arrive in completion order, which
// is fine here: the absorbed quantities are integer-valued counters, so the
// float sums are exact and order-insensitive.
func (r *Runner) absorbActivities(results []taskResult) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, res := range results {
		if !res.started {
			// Cancelled before a solver saw it: nothing to absorb, and
			// counting it would skew per-subproblem averages.
			continue
		}
		for v := 1; v < len(res.actVars) && v < len(r.confAct); v++ {
			r.confAct[v] += res.actVars[v]
		}
		r.aggStats = r.aggStats.Add(res.stats)
		r.subproblemsSolved++
	}
}

// searchAllowance is the search effort a budget leaves after charging the
// construction baseline (0 if the baseline alone exhausts it, which makes
// the budget trip immediately, exactly like a fresh solver).
func searchAllowance(budget, base uint64) uint64 {
	if budget <= base {
		return 0
	}
	return budget - base
}

// runTasks distributes tasks over the worker pool and collects one result
// per task (in completion order; callers needing enumeration order index by
// taskResult.index).  Each worker goroutine owns one persistent solver for
// the whole run; retain selects whether it keeps learned clauses across
// tasks (solving mode with Config.RetainLearned) or is restored to its
// pristine state before every task.  If stopOnSat is true the remaining work
// is cancelled as soon as one subproblem is satisfiable.
func (r *Runner) runTasks(ctx context.Context, tasks []task, stopOnSat, retain bool) ([]taskResult, error) {
	workers := r.cfg.Workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	taskCh := make(chan task)
	// Exactly one result is emitted per task — by the worker that received
	// it, or by the producer for a task cancelled before it could be handed
	// out — so a len(tasks) buffer keeps every send non-blocking.
	resCh := make(chan taskResult, len(tasks))
	innerCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wk := &worker{runner: r, solver: r.acquireSolver(), retain: retain}
			if retain {
				// A pooled solver may carry conflict activity from a previous
				// run that was already absorbed by the runner; without a Reset
				// to zero it, the per-task diff must start from the current
				// cumulative values.
				wk.prevAct = wk.solver.ConflictActivities()
			}
			defer r.releaseSolver(wk.solver)
			for t := range taskCh {
				if innerCtx.Err() != nil {
					resCh <- taskResult{index: t.index, status: solver.Unknown}
					continue
				}
				resCh <- wk.solveTask(innerCtx, t)
			}
		}()
	}

	go func() {
		defer close(taskCh)
		for _, t := range tasks {
			select {
			case taskCh <- t:
			case <-innerCtx.Done():
				// Drain remaining tasks as cancelled results so indices stay
				// complete.
				resCh <- taskResult{index: t.index, status: solver.Unknown}
			}
		}
	}()

	results := make([]taskResult, 0, len(tasks))
	for len(results) < len(tasks) {
		res := <-resCh
		results = append(results, res)
		if stopOnSat && res.status == solver.Sat {
			cancel()
		}
	}
	wg.Wait()
	close(resCh)
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// worker is the per-goroutine solving state: one persistent solver plus the
// scratch needed to attribute statistics and conflict activity to individual
// tasks when the solver outlives them.
type worker struct {
	runner *Runner
	solver *solver.Solver
	retain bool
	// prevAct is the solver's cumulative conflict activity after the
	// previous task (retain mode only); the per-task contribution is the
	// difference, since conflict activity grows monotonically.
	prevAct []float64
}

// solveTask solves one subproblem on the worker's persistent solver.  The
// reported cost is the equivalent of a fresh solver's lifetime effort —
// construction-time (root-level) propagation plus the search under the
// assumptions — because each member of a decomposition family is
// conceptually solved from scratch, exactly as the paper's modified MiniSat
// re-reads C[X̃/α] for every subproblem.  Counting only the post-assumption
// search would report zero cost for subproblems already decided by root
// propagation.
//
// In pristine mode solver.Reset makes the search (and therefore the cost)
// bit-for-bit identical to a fresh solver's.  In retain mode the search
// benefits from previously learned clauses; the cost is the construction
// baseline plus this call's actual effort.
func (w *worker) solveTask(ctx context.Context, t task) taskResult {
	r, s := w.runner, w.solver
	start := time.Now()
	if w.retain {
		s.ClearInterrupt()
		// The solver's counters are cumulative across tasks, so a per-task
		// effort budget must be rebased onto the current totals.  Like a
		// fresh solver (whose lifetime counters include construction), the
		// budget charges the construction baseline, so the per-task search
		// allowance is budget minus baseline in both modes.
		b := r.cfg.SubproblemBudget
		base := s.BaseStats()
		if b.MaxConflicts > 0 {
			b.MaxConflicts = s.Stats().Conflicts + searchAllowance(b.MaxConflicts, base.Conflicts)
		}
		if b.MaxPropagations > 0 {
			b.MaxPropagations = s.Stats().Propagations + searchAllowance(b.MaxPropagations, base.Propagations)
		}
		s.SetBudget(b)
	} else {
		s.Reset()
		s.SetBudget(r.cfg.SubproblemBudget)
	}
	done := make(chan struct{})
	var res solver.Result
	go func() {
		res = s.SolveWithAssumptions(t.assumptions)
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.Interrupt()
		<-done
	}
	var taskStats solver.Stats
	var actVars []float64
	if w.retain {
		taskStats = s.BaseStats().Add(res.Stats)
		cur := s.ConflictActivities()
		actVars = make([]float64, len(cur))
		for v := range cur {
			prev := 0.0
			if v < len(w.prevAct) {
				prev = w.prevAct[v]
			}
			actVars[v] = cur[v] - prev
		}
		w.prevAct = cur
	} else {
		// Reset rebased the stats to the construction baseline and zeroed
		// the conflict activities, so the lifetime values are per-task.
		taskStats = s.Stats()
		actVars = s.ConflictActivities()
	}
	taskStats.SolveTime = time.Since(start)
	return taskResult{
		index:   t.index,
		cost:    solver.EffortCost(taskStats, r.cfg.CostMetric),
		status:  res.Status,
		model:   res.Model,
		actVars: actVars,
		stats:   taskStats,
		started: true,
	}
}

// SolveReport is the outcome of processing a whole decomposition family
// (solving mode).
type SolveReport struct {
	// Point is the decomposition set used.
	Point decomp.Point
	// Processed is the number of subproblems solved.
	Processed int
	// TotalCost is the summed cost of all processed subproblems (1-core
	// sequential cost, comparable with the predictive function value).
	TotalCost float64
	// CostToFirstSat is the summed cost of subproblems processed up to and
	// including the first satisfiable one (in enumeration order); equal to
	// TotalCost if no subproblem is satisfiable or StopOnSat was false and
	// the family was processed completely.
	CostToFirstSat float64
	// FoundSat reports whether a satisfiable subproblem was found.
	FoundSat bool
	// Model is a model of the original formula if FoundSat.
	Model cnf.Assignment
	// SatIndex is the enumeration index of the first satisfiable
	// subproblem, -1 if none.
	SatIndex int64
	// WallTime is the elapsed wall-clock time.
	WallTime time.Duration
	// Interrupted reports whether the run was cancelled before completion.
	Interrupted bool
}

// SolveOptions configure the solving mode.
type SolveOptions struct {
	// StopOnSat stops processing as soon as one subproblem is satisfiable.
	// The paper's validation runs process the whole family to gather
	// statistics; key-recovery runs stop at the first hit.
	StopOnSat bool
	// MaxSubproblems bounds the number of processed subproblems (0 = all).
	// Enumeration order is by increasing assignment index.
	MaxSubproblems uint64
}

// Solve processes the decomposition family induced by the point: it
// enumerates assignments of the decomposition set, solves every subproblem
// and aggregates costs.  The decomposition set must be small enough to
// enumerate (d < 63).  With Config.RetainLearned set, each worker keeps its
// learned clauses across subproblems, which usually lowers the total effort
// at the price of scheduling-dependent per-subproblem costs.
func (r *Runner) Solve(ctx context.Context, p decomp.Point, opts SolveOptions) (*SolveReport, error) {
	if p.Count() == 0 {
		return nil, errors.New("pdsat: empty decomposition set")
	}
	if p.Count() >= 63 {
		return nil, fmt.Errorf("pdsat: decomposition set of size %d cannot be enumerated", p.Count())
	}
	start := time.Now()
	fam := decomp.FamilyOf(r.formula, p)
	total := fam.SizeUint()
	if opts.MaxSubproblems > 0 && opts.MaxSubproblems < total {
		total = opts.MaxSubproblems
	}

	tasks := make([]task, total)
	for idx := uint64(0); idx < total; idx++ {
		tasks[idx] = task{index: int(idx), assumptions: fam.AssumptionsFor(idx)}
	}
	results, err := r.runTasks(ctx, tasks, opts.StopOnSat, r.cfg.RetainLearned)
	interrupted := false
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			interrupted = true
		} else {
			return nil, err
		}
	}
	r.absorbActivities(results)

	report := &SolveReport{Point: p, SatIndex: -1}
	// Aggregate in enumeration order for deterministic cost-to-first-SAT.
	byIndex := make([]taskResult, len(tasks))
	seen := make([]bool, len(tasks))
	for _, res := range results {
		byIndex[res.index] = res
		seen[res.index] = true
	}
	for idx := range byIndex {
		if !seen[idx] {
			continue
		}
		res := byIndex[idx]
		if !res.started {
			// Cancelled before a solver saw it.
			continue
		}
		report.Processed++
		report.TotalCost += res.cost
		if !report.FoundSat {
			report.CostToFirstSat += res.cost
			if res.status == solver.Sat {
				report.FoundSat = true
				report.Model = res.model
				report.SatIndex = int64(idx)
			}
		}
	}
	report.WallTime = time.Since(start)
	report.Interrupted = interrupted
	return report, nil
}

// EstimateForCores converts a 1-core predictive value into the expected
// processing time on the given number of cores.
func EstimateForCores(value float64, cores int) float64 {
	return montecarlo.ExtrapolateCores(value, cores)
}
