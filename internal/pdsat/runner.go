// Package pdsat reproduces the leader/worker architecture of the MPI program
// PDSAT used in the paper's experiments.
//
// The Runner has two modes, mirroring the paper:
//
//   - Estimation mode (EvaluatePoint): for a decomposition set X̃ the leader
//     draws a random sample of N assignments of X̃, the workers solve the
//     induced subproblems C[X̃/α], and the observed costs are combined into
//     the predictive-function value F = 2^d · mean (montecarlo.Estimate).
//     Per-variable conflict activity is accumulated across the sample; the
//     tabu search uses it to pick new neighbourhood centres.
//
//   - Solving mode (Solve): all 2^d assignments of X̃ are enumerated and the
//     corresponding subproblems are solved, optionally stopping at the first
//     satisfiable one.  Workers honour interruption, like the modified
//     MiniSat of the paper that stops on non-blocking messages from the
//     leader.
//
// Where the subproblems actually run is decided by a cluster.Transport.  By
// default the Runner owns a private in-process transport (cluster.Inproc):
// worker goroutines with persistent pooled solvers, reused across
// evaluations, so the clause database and watch lists are built once per
// worker instead of once per subproblem.  Setting Config.Transport instead
// targets remote machines through a network leader (cluster.Leader), which
// reproduces the paper's multi-machine MPI deployment.  In estimation mode
// every subproblem starts from the solver's pristine state (solver.Reset),
// which makes the observed cost of a subproblem identical to what a freshly
// constructed solver would measure — the per-subproblem costs stay samples
// of the single well-defined random variable the Monte Carlo method
// requires, and fixed-seed estimates are bit-for-bit identical across
// backends and scheduling.  In solving mode the Config.RetainLearned option
// additionally allows MiniSat-style retention of learned clauses across the
// subproblems a worker processes.
//
// The predictive value is always computed for one CPU core; extrapolation to
// k cores is a division (montecarlo.ExtrapolateCores), justified by the
// independence of the subproblems.
package pdsat

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cluster"
	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/decomp"
	"github.com/paper-repro/pdsat-go/internal/eval"
	"github.com/paper-repro/pdsat-go/internal/montecarlo"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// Config configures a Runner.
type Config struct {
	// SampleSize is N, the number of random subproblems per predictive
	// function evaluation.  Zero means the DefaultConfig value; negative
	// values are rejected (see Validate).
	SampleSize int
	// Workers is the number of computing processes (goroutines) of the
	// default in-process transport.  Zero means GOMAXPROCS; negative
	// values are rejected (see Validate).  It is ignored when Transport is
	// set — the transport then decides the capacity.
	Workers int
	// Seed drives the random samples.
	Seed int64
	// CostMetric selects the cost unit ζ (conflicts by default; wall time
	// reproduces the paper's setup).
	CostMetric solver.CostMetric
	// SolverOptions configures the per-subproblem CDCL solver.
	SolverOptions solver.Options
	// SubproblemBudget bounds the effort spent on a single subproblem
	// (useful as a safety net during estimation of very bad points).
	SubproblemBudget solver.Budget
	// RetainLearned lets each worker keep learned clauses, variable
	// activities and saved phases across the subproblems it processes in
	// solving mode (Runner.Solve), MiniSat-style.  Later subproblems on the
	// same worker then typically solve faster, but the reported per-subproblem
	// costs depend on which worker processed which subproblem and are no
	// longer comparable with the predictive function, so estimation mode
	// (EvaluatePoint) always uses pristine per-subproblem resets regardless
	// of this flag.
	RetainLearned bool
	// Transport optionally overrides where subproblem batches run — e.g. a
	// cluster.Leader dispatching to remote machines.  The transport must
	// have been created for the same formula the Runner is built on.  Nil
	// means a private in-process transport with Workers goroutines.  The
	// Runner does not close the transport; its creator owns its lifetime.
	Transport cluster.Transport
	// Steal enables work stealing on dispatching transports: queued
	// (not yet started) tasks are revoked from a backlogged worker and
	// reassigned to a drained one.  It also activates the variance-aware
	// batching of the evaluation cost model, which sizes per-worker queue
	// depths from the observed ζ distribution.  Stealing moves tasks but
	// never changes which subproblems are solved or what they cost in
	// pristine batches, so fixed-seed estimates stay bit-identical.  The
	// in-process transport ignores it (its workers already pull from one
	// shared queue).
	Steal bool
	// Speculate enables speculative straggler re-dispatch on dispatching
	// transports: the last unfinished subproblems of a batch are duplicated
	// onto idle slots, the first result per task wins and the losing copy
	// is aborted.  Like Steal it activates variance-aware batching, applies
	// only to pristine batches (a pristine solve is a pure function of the
	// task, so which copy wins never changes the result content, only its
	// arrival time), and is ignored by the in-process transport.
	Speculate bool
	// Policy configures the budget-aware evaluation engine: incumbent
	// pruning and staged adaptive sampling of predictive-function
	// evaluations (see internal/eval).  The zero value disables both and
	// reproduces the always-full-sample evaluation bit for bit.  The
	// policy's Cache flag is interpreted by the session layer, which owns
	// the cross-search F-cache; the Runner itself never memoizes.
	Policy eval.Policy
}

// Validate reports whether the configuration is usable.  Zero values are
// fine (they select documented defaults); negative worker counts or sample
// sizes are configuration mistakes and are rejected with a clear error
// rather than being silently coerced.
func (c Config) Validate() error {
	if c.SampleSize < 0 {
		return fmt.Errorf("pdsat: negative sample size %d (use 0 for the default of %d)",
			c.SampleSize, DefaultConfig().SampleSize)
	}
	if c.Workers < 0 {
		return fmt.Errorf("pdsat: negative worker count %d (use 0 for all CPUs)", c.Workers)
	}
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	return nil
}

// DefaultConfig returns a configuration suitable for the scaled-down
// experiments: N=100 samples, conflicts as cost, an in-process transport
// using all cores.
func DefaultConfig() Config {
	return Config{
		SampleSize:    100,
		Workers:       runtime.GOMAXPROCS(0),
		Seed:          1,
		CostMetric:    solver.CostConflicts,
		SolverOptions: solver.DefaultOptions(),
	}
}

// Runner evaluates predictive functions and processes decomposition families
// for one SAT instance.
type Runner struct {
	formula *cnf.Formula
	cfg     Config
	// transport dispatches subproblem batches (Config.Transport, or a
	// private in-process transport).
	transport cluster.Transport
	// cfgErr is the deferred Config.Validate error: NewRunner cannot
	// return one without breaking every call site, so an invalid
	// configuration surfaces on the first evaluation instead of panicking
	// or hanging.
	cfgErr error
	// def is the runner's default evaluation scope (seeded with Config.Seed);
	// the Evaluate* methods below delegate to it.  Fleet members instead
	// evaluate through their own NewScope, sharing the transport but not the
	// sampling state.
	def *Scope
	// costModel tracks the observed ζ distribution per sample stage when
	// adaptive dispatch (Config.Steal/Speculate) is on, turning it into
	// per-batch queue-depth hints.  Shared by every scope: the model only
	// influences scheduling, never sample content, so cross-scope sharing
	// cannot leak state into results.
	costModel *eval.CostModel

	mu sync.Mutex
	// confAct accumulates per-variable conflict activity over every
	// subproblem solved by this runner (indexed by cnf.Var).
	confAct []float64
	// evaluations counts predictive-function evaluations (full, pruned and
	// partial alike — the counter also seeds each evaluation's sample RNG,
	// so it must advance identically whether or not a policy is active).
	evaluations int
	// prunedEvaluations counts evaluations aborted by incumbent pruning;
	// their reported values are lower bounds, not full estimates.
	prunedEvaluations int
	// subproblemsSolved counts subproblems solved to completion (their own
	// conclusion or per-task budget); subproblemsAborted counts dispatched
	// subproblems cut short by a batch abort or cancellation (truncated
	// mid-solve or never handed to a solver).
	subproblemsSolved  int
	subproblemsAborted int
	// samplesPlanned counts the Monte Carlo samples committed by
	// evaluations across all scopes; samplesSkipped the planned samples
	// never dispatched (early-stopped or pruned-away stages, tails of
	// scheduler-cancelled evaluations).  Together with the subproblem
	// counters they form the ledger
	// samplesPlanned == subproblemsSolved + subproblemsAborted + samplesSkipped
	// for estimation/search work (Solve-mode subproblems are outside it).
	samplesPlanned int
	samplesSkipped int
	// tasksStolen, speculativeDuplicates and speculationWins accumulate the
	// dispatch statistics of every batch (see cluster.DispatchStats).  They
	// count scheduling events, not samples, and therefore live outside the
	// sample ledger above: a stolen task is still solved exactly once, and a
	// speculative duplicate's losing copy never enters the results.
	tasksStolen           int
	speculativeDuplicates int
	speculationWins       int
	// aggStats accumulates the per-subproblem solver statistics.
	aggStats solver.Stats
}

// NewRunner creates a runner for the formula.  An invalid configuration
// (negative sample size or worker count) is reported by the first
// evaluation or solve call; validate eagerly with Config.Validate.
func NewRunner(f *cnf.Formula, cfg Config) *Runner {
	cfgErr := cfg.Validate()
	if cfg.SampleSize <= 0 {
		cfg.SampleSize = DefaultConfig().SampleSize
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.SolverOptions.VarDecay == 0 {
		cfg.SolverOptions = solver.DefaultOptions()
	}
	transport := cfg.Transport
	if transport == nil {
		transport = cluster.NewInproc(f, cfg.Workers, cfg.SolverOptions)
	}
	r := &Runner{
		formula:   f,
		cfg:       cfg,
		transport: transport,
		cfgErr:    cfgErr,
		confAct:   make([]float64, f.NumVars+1),
		costModel: eval.NewCostModel(),
	}
	r.def = r.NewScope(cfg.Seed)
	return r
}

// Formula returns the underlying formula.
func (r *Runner) Formula() *cnf.Formula { return r.formula }

// Config returns the runner configuration.
func (r *Runner) Config() Config { return r.cfg }

// Transport returns the transport the runner dispatches batches through.
func (r *Runner) Transport() cluster.Transport { return r.transport }

// Evaluations returns the number of predictive-function evaluations so far.
func (r *Runner) Evaluations() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evaluations
}

// SubproblemsSolved returns the number of subproblems solved to completion
// so far.  Subproblems cut short by a batch abort or cancellation are
// counted by SubproblemsAborted instead.
func (r *Runner) SubproblemsSolved() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.subproblemsSolved
}

// PrunedEvaluations returns how many predictive-function evaluations were
// aborted by incumbent pruning (Evaluations counts them too; the difference
// plus interrupted runs gives the full evaluations).
func (r *Runner) PrunedEvaluations() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.prunedEvaluations
}

// SubproblemsAborted returns how many dispatched subproblems were cut short
// — truncated mid-solve by a batch abort/cancellation, or never handed to a
// solver at all — and therefore produced no full Monte Carlo sample.
func (r *Runner) SubproblemsAborted() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.subproblemsAborted
}

// SamplesPlanned returns the Monte Carlo samples committed by evaluations
// across every scope of this runner; see Scope.SamplesPlanned for the
// ledger it balances.
func (r *Runner) SamplesPlanned() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.samplesPlanned
}

// SamplesSkipped returns the planned samples never dispatched to a solver;
// see Scope.SamplesSkipped.
func (r *Runner) SamplesSkipped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.samplesSkipped
}

// TasksStolen returns how many queued tasks the dispatch layer revoked from
// a backlogged worker and reassigned to another one across every batch of
// this runner.  A stolen task is still solved exactly once, so the counter
// is outside the sample ledger.
func (r *Runner) TasksStolen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tasksStolen
}

// SpeculativeDuplicates returns how many unfinished tasks the dispatch
// layer duplicated onto idle slots; SpeculationWins how many of those
// duplicates delivered the first (and therefore recorded) result.  Losing
// copies never enter the results, so neither counter touches the sample
// ledger.
func (r *Runner) SpeculativeDuplicates() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.speculativeDuplicates
}

// SpeculationWins returns how many speculated tasks were won by their
// duplicate copy; see SpeculativeDuplicates.
func (r *Runner) SpeculationWins() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.speculationWins
}

// AggregateStats returns the summed solver statistics of every subproblem
// solved so far (in the same accounting as the cost metric: construction
// baseline plus search effort per subproblem).
func (r *Runner) AggregateStats() solver.Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.aggStats
}

// VarActivity returns the cumulative conflict activity of a variable over
// all subproblems solved so far.  It implements the activity source used by
// the tabu search's getNewCenter heuristic.
func (r *Runner) VarActivity(v cnf.Var) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(v) <= 0 || int(v) >= len(r.confAct) {
		return 0
	}
	return r.confAct[v]
}

// PointEstimate is the result of one predictive-function evaluation.
type PointEstimate struct {
	// Point is the evaluated decomposition set.
	Point decomp.Point
	// Estimate is the Monte Carlo estimate (mean, F value, etc.).
	Estimate montecarlo.Estimate
	// Sample holds the raw observed costs.  When Interrupted, it covers
	// only the subproblems that were actually solved and may be smaller
	// than the configured sample size.
	Sample *montecarlo.Sample
	// SatisfiableSamples counts how many sampled subproblems were SAT.
	SatisfiableSamples int
	// WallTime is the elapsed wall-clock time of the evaluation.
	WallTime time.Duration
	// Interrupted reports whether the evaluation was cancelled before the
	// full sample was processed.  The estimate is then partial: it uses
	// only the subproblems that completed, which skews toward cheaper
	// subproblems (the expensive ones are the likeliest to be in flight at
	// the interrupt), so treat a partial F as a rough indication rather
	// than an unbiased Monte Carlo estimate.
	Interrupted bool
	// Pruned reports that the evaluation was aborted by incumbent pruning:
	// the partial lower bound 2^d·(Σζ)/N exceeded the incumbent the
	// evaluation was given, so the candidate is provably worse and the
	// rest of its sample was skipped.  BoundedValue then returns
	// LowerBound; the Estimate over the completed prefix is biased high
	// (the evaluation aborted because the costs were large) and exists for
	// diagnostics only.
	Pruned bool
	// EarlyStopped reports that staged sampling ended before the full
	// sample because the eq.-3 confidence half-width met the policy's ε
	// target.  Unlike an interruption, the solved prefix was chosen
	// independently of the observed values, so the Estimate remains an
	// unbiased Monte Carlo estimate — just over fewer samples.
	EarlyStopped bool
	// SamplesPlanned is the configured sample size N.  The number actually
	// solved to completion is Sample.Len(); SamplesAborted counts
	// dispatched subproblems cut short by the prune abort (truncated
	// mid-solve or drained as placeholders).  Samples of stages that were
	// never dispatched appear in neither counter: SamplesPlanned −
	// Sample.Len() − SamplesAborted is the work the policy skipped
	// entirely.
	SamplesPlanned int
	SamplesAborted int
	// StagesRun counts the sample stages dispatched (1 without staging).
	StagesRun int
	// LowerBound is 2^d·(Σζ)/N over every observed cost — including solves
	// truncated by the abort — a certified lower bound on the full-sample
	// F value.
	LowerBound float64
}

// BoundedValue returns the evaluation's headline value: the Monte Carlo
// estimate for complete, early-stopped and interrupted evaluations, or the
// certified LowerBound for pruned ones (which by construction exceeds the
// incumbent the evaluation was pruned against).
func (pe *PointEstimate) BoundedValue() float64 {
	if pe.Pruned {
		return pe.LowerBound
	}
	return pe.Estimate.Value
}

// Evaluation converts the estimate into the evaluation engine's result
// form.
func (pe *PointEstimate) Evaluation() eval.Evaluation {
	return eval.Evaluation{
		Value:              pe.BoundedValue(),
		Estimate:           pe.Estimate,
		LowerBound:         pe.LowerBound,
		Pruned:             pe.Pruned,
		EarlyStopped:       pe.EarlyStopped,
		Interrupted:        pe.Interrupted,
		SamplesPlanned:     pe.SamplesPlanned,
		SamplesSolved:      pe.Sample.Len(),
		SamplesAborted:     pe.SamplesAborted,
		StagesRun:          pe.StagesRun,
		SatisfiableSamples: pe.SatisfiableSamples,
		WallTime:           pe.WallTime,
	}
}

// Progress describes one completed subproblem within a running evaluation
// (EvaluatePointObserved) or family-processing call (SolveObserved).
type Progress struct {
	// Done is the number of subproblem results collected so far in this
	// call, including cancelled placeholders; Total is the call's batch
	// size, so Done == Total on the last notification.
	Done, Total int
	// Result is the subproblem result that triggered the notification
	// (Result.Started is false for tasks cancelled before a solver saw
	// them).
	Result cluster.TaskResult
}

// EvaluatePoint computes the predictive function F at the decomposition set
// given by the point, using the runner's sample size and worker transport.
// The evaluation is deterministic for a fixed configuration when the cost
// metric is deterministic: the sample depends only on (Seed, evaluation
// counter), and every subproblem is solved from a solver's pristine state,
// so its observed cost does not depend on which worker — local goroutine or
// remote machine — happened to process it.
//
// If the context is cancelled mid-evaluation, EvaluatePoint returns the
// partial estimate computed from the subproblems that did complete (marked
// Interrupted) together with the context's error, so an interrupted run can
// still print a report; the result is nil only if no subproblem finished.
func (r *Runner) EvaluatePoint(ctx context.Context, p decomp.Point) (*PointEstimate, error) {
	return r.EvaluatePointObserved(ctx, p, nil)
}

// EvaluatePointObserved behaves exactly like EvaluatePoint but additionally
// streams a Progress notification for every collected subproblem result to
// observe (when non-nil).  Notifications arrive from a single goroutine, in
// collection order; observe must not block for long.  The estimate itself
// is bit-identical to EvaluatePoint's — observation never changes the
// sample, the costs or the evaluation counter.
//
// Both run under the runner's configured evaluation policy with no
// incumbent, so staged sampling applies but pruning never triggers.
func (r *Runner) EvaluatePointObserved(ctx context.Context, p decomp.Point, observe func(Progress)) (*PointEstimate, error) {
	return r.EvaluatePointBudgeted(ctx, p, r.cfg.Policy, math.Inf(1), observe)
}

// EvaluatePointBudgeted is the budget-aware evaluation at the heart of the
// engine: it computes the predictive function F at the point under the
// given policy and incumbent bound (the best F the caller has already
// certified; +Inf if none).
//
// The sample itself — which N assignments of the decomposition set are
// drawn — depends only on (Seed, evaluation counter), exactly as in
// EvaluatePoint; the policy decides how much of it is solved:
//
//   - Staged sampling (Policy.Stages) dispatches the sample in
//     geometrically growing prefixes and stops once the eq.-3 confidence
//     half-width of the mean falls to Policy.Epsilon·mean (the result is
//     then marked EarlyStopped; the prefix is value-independent, so the
//     estimate stays unbiased).
//
//   - Incumbent pruning (Policy.Prune, finite incumbent) watches the
//     running cost sum as results stream in and aborts the remainder of the
//     batch — through the transport's batch abort, which cancels only this
//     batch's in-flight tasks, never the transport — as soon as the lower
//     bound 2^d·(Σζ)/N exceeds the incumbent.  Later stages also tighten
//     each task's solver budget to the remaining allowance, the paper's
//     per-subproblem time limit turned into a certified pruning proxy: a
//     task truncated at the allowance already proves the candidate worse.
//
// With the zero policy the call degenerates to exactly one full batch and
// is bit-identical to the historical EvaluatePoint.  Cancellation semantics
// are unchanged: a cancelled evaluation returns the partial estimate
// (marked Interrupted) together with the context's error.
// The evaluation runs in the runner's default scope, whose seed is
// Config.Seed and whose evaluation counter is the runner's; see Scope for
// isolated per-search contexts on the same transport.
func (r *Runner) EvaluatePointBudgeted(ctx context.Context, p decomp.Point, pol eval.Policy, incumbent float64, observe func(Progress)) (*PointEstimate, error) {
	return r.def.EvaluatePointBudgeted(ctx, p, pol, incumbent, observe)
}

// Evaluate implements the optimizer objective: it returns the predictive
// function value F(χ) at the point.
func (r *Runner) Evaluate(ctx context.Context, p decomp.Point) (float64, error) {
	est, err := r.EvaluatePoint(ctx, p)
	if err != nil {
		return 0, err
	}
	return est.Estimate.Value, nil
}

// EvaluateBudgeted implements eval.Backend: one budget-aware evaluation
// under an explicit policy and incumbent, in the engine's result form.
func (r *Runner) EvaluateBudgeted(ctx context.Context, p decomp.Point, pol eval.Policy, incumbent float64) (*eval.Evaluation, error) {
	pe, err := r.EvaluatePointBudgeted(ctx, p, pol, incumbent, nil)
	if pe == nil {
		return nil, err
	}
	ev := pe.Evaluation()
	return &ev, err
}

// EvaluateF implements eval.Evaluator under the runner's configured policy,
// which lets the optimize searches thread their incumbent into evaluations
// on a bare Runner.  The Runner never memoizes — the cross-search F-cache
// is owned by the session layer (pdsat.Session).
func (r *Runner) EvaluateF(ctx context.Context, p decomp.Point, incumbent float64) (*eval.Evaluation, error) {
	return r.EvaluateBudgeted(ctx, p, r.cfg.Policy, incumbent)
}

// ReserveEvalSlots implements eval.SlotBackend on the runner's default
// scope: the neighborhood scheduler reserves one evaluation slot per
// submitted candidate upfront, keeping sibling samples independent of
// completion order.  See Scope.ReserveEvalSlots.
func (r *Runner) ReserveEvalSlots(n int) int { return r.def.ReserveEvalSlots(n) }

// EvaluateSlot implements eval.SlotBackend: EvaluateBudgeted against a
// pre-reserved evaluation slot.
func (r *Runner) EvaluateSlot(ctx context.Context, p decomp.Point, pol eval.Policy, incumbent float64, slot int) (*eval.Evaluation, error) {
	return r.def.EvaluateSlot(ctx, p, pol, incumbent, slot)
}

// EvaluateSlotObserved is EvaluateSlot with a sample-progress observer (the
// session layer's event streaming hooks in here).
func (r *Runner) EvaluateSlotObserved(ctx context.Context, p decomp.Point, pol eval.Policy, incumbent float64, slot int, observe func(Progress)) (*eval.Evaluation, error) {
	return r.def.EvaluateSlotObserved(ctx, p, pol, incumbent, slot, observe)
}

// ReserveSlots implements eval.SlotEvaluator (the evaluator-level view the
// frontier consumes when a search runs on a bare Runner).
func (r *Runner) ReserveSlots(n int) (int, bool) { return r.def.ReserveEvalSlots(n), true }

// EvaluateSlotF implements eval.SlotEvaluator under the runner's
// configured policy.
func (r *Runner) EvaluateSlotF(ctx context.Context, p decomp.Point, incumbent float64, slot int) (*eval.Evaluation, error) {
	return r.def.EvaluateSlot(ctx, p, r.cfg.Policy, incumbent, slot)
}

// absorbActivities adds the per-task conflict activities and statistics into
// the runner's cumulative tables.  Results arrive in completion order, which
// is fine here: the absorbed quantities are integer-valued counters, so the
// float sums are exact and order-insensitive.
func (r *Runner) absorbActivities(results []cluster.TaskResult) {
	r.mu.Lock()
	defer r.mu.Unlock()
	absorbResults(results, r.confAct, &r.aggStats, &r.subproblemsSolved, &r.subproblemsAborted)
}

// absorbResults is the single source of truth for classifying a batch's
// results into an accounting table — the runner's global roll-up and every
// scope's local counters use it, so the two can never drift.  Callers hold
// the lock guarding the destinations.
func absorbResults(results []cluster.TaskResult, confAct []float64, aggStats *solver.Stats, solved, aborted *int) {
	for _, res := range results {
		if !res.Started {
			// Cancelled before a solver saw it: nothing to absorb, and
			// counting it as solved would skew per-subproblem averages.
			*aborted++
			continue
		}
		for v := 1; v < len(res.ActVars) && v < len(confAct); v++ {
			confAct[v] += res.ActVars[v]
		}
		*aggStats = aggStats.Add(res.Stats)
		if res.Cancelled {
			// Truncated mid-solve by a batch abort or cancellation: the
			// effort was real (absorbed above) but the subproblem was not
			// solved to completion.
			*aborted++
		} else {
			*solved++
		}
	}
}

// runTasksObserved dispatches one batch through the transport.  Each
// transport worker owns one persistent solver; retain selects whether it
// keeps learned clauses across tasks (solving mode with Config.RetainLearned)
// or is restored to its pristine state before every task.  observe (when
// non-nil) receives a Progress notification per collected result; transports
// without in-flight observation support deliver all notifications after the
// batch completes, preserving order.
func (r *Runner) runTasksObserved(ctx context.Context, tasks []cluster.Task, stop cluster.StopMode, retain bool, observe func(Progress)) ([]cluster.TaskResult, error) {
	opts := cluster.BatchOptions{
		Stop:       stop,
		Retain:     retain,
		Budget:     r.cfg.SubproblemBudget,
		CostMetric: r.cfg.CostMetric,
		Steal:      r.cfg.Steal,
		// Speculation is restricted to pristine batches: with retained
		// learned clauses a duplicate copy solves on different solver state,
		// so which copy wins would change the recorded result content.
		Speculate: r.cfg.Speculate && !retain,
	}
	var observeResult func(cluster.TaskResult)
	if observe != nil {
		total := len(tasks)
		done := 0
		observeResult = func(res cluster.TaskResult) {
			done++
			observe(Progress{Done: done, Total: total, Result: res})
		}
	}
	results, ds, err := r.runBatch(ctx, tasks, opts, observeResult, nil)
	r.noteDispatch(ds)
	return results, err
}

// noteDispatch rolls one batch's dispatch statistics into the runner's
// cumulative counters.
func (r *Runner) noteDispatch(ds cluster.DispatchStats) {
	if ds == (cluster.DispatchStats{}) {
		return
	}
	r.mu.Lock()
	r.tasksStolen += ds.TasksStolen
	r.speculativeDuplicates += ds.SpeculativeDuplicates
	r.speculationWins += ds.SpeculationWins
	r.mu.Unlock()
}

// runBatch dispatches one batch through the transport, using the richest
// interface it offers: dispatch statistics (opts.Steal/Speculate) need a
// DispatchTransport, batch aborts (abort non-nil) an AbortableTransport,
// in-flight observation an ObservedTransport.  Transports without in-flight
// observation deliver all notifications after the batch completes,
// preserving order; transports without abort support simply run the batch
// to completion (the evaluation engine then prunes at stage boundaries
// only); transports without a dispatch layer ignore the adaptive options
// and report zero DispatchStats.
func (r *Runner) runBatch(ctx context.Context, tasks []cluster.Task, opts cluster.BatchOptions, observe func(cluster.TaskResult), abort <-chan struct{}) ([]cluster.TaskResult, cluster.DispatchStats, error) {
	if opts.Steal || opts.Speculate {
		if dt, ok := r.transport.(cluster.DispatchTransport); ok {
			return dt.RunDispatch(ctx, tasks, opts, observe, abort)
		}
	}
	if abort != nil {
		if at, ok := r.transport.(cluster.AbortableTransport); ok {
			results, err := at.RunAbortable(ctx, tasks, opts, observe, abort)
			return results, cluster.DispatchStats{}, err
		}
	}
	if observe != nil {
		if ot, ok := r.transport.(cluster.ObservedTransport); ok {
			results, err := ot.RunObserved(ctx, tasks, opts, observe)
			return results, cluster.DispatchStats{}, err
		}
	}
	results, err := r.transport.Run(ctx, tasks, opts)
	if observe != nil {
		for _, res := range results {
			observe(res)
		}
	}
	return results, cluster.DispatchStats{}, err
}

// SolveReport is the outcome of processing a whole decomposition family
// (solving mode).
type SolveReport struct {
	// Point is the decomposition set used.
	Point decomp.Point
	// Processed is the number of subproblems a solver worked on (including
	// solves truncated by a stop-on-SAT or cancellation).
	Processed int
	// SubproblemsAborted counts the subproblems of the run that produced no
	// complete solve: truncated mid-search by stop-on-SAT/cancellation, or
	// never handed to a solver at all.
	SubproblemsAborted int
	// TotalCost is the summed cost of all processed subproblems (1-core
	// sequential cost, comparable with the predictive function value).
	TotalCost float64
	// CostToFirstSat is the summed cost of subproblems processed up to and
	// including the first satisfiable one (in enumeration order); equal to
	// TotalCost if no subproblem is satisfiable or StopOnSat was false and
	// the family was processed completely.
	CostToFirstSat float64
	// FoundSat reports whether a satisfiable subproblem was found.
	FoundSat bool
	// Model is a model of the original formula if FoundSat.
	Model cnf.Assignment
	// SatIndex is the enumeration index of the first satisfiable
	// subproblem, -1 if none.
	SatIndex int64
	// WallTime is the elapsed wall-clock time.
	WallTime time.Duration
	// Interrupted reports whether the run was cancelled before completion.
	Interrupted bool
}

// SolveOptions configure the solving mode.
type SolveOptions struct {
	// StopOnSat stops processing as soon as one subproblem is satisfiable.
	// The paper's validation runs process the whole family to gather
	// statistics; key-recovery runs stop at the first hit.
	StopOnSat bool
	// MaxSubproblems bounds the number of processed subproblems (0 = all).
	// Enumeration order is by increasing assignment index.
	MaxSubproblems uint64
}

// Solve processes the decomposition family induced by the point: it
// enumerates assignments of the decomposition set, solves every subproblem
// and aggregates costs.  The decomposition set must be small enough to
// enumerate (d < 63).  With Config.RetainLearned set, each worker keeps its
// learned clauses across subproblems, which usually lowers the total effort
// at the price of scheduling-dependent per-subproblem costs.
func (r *Runner) Solve(ctx context.Context, p decomp.Point, opts SolveOptions) (*SolveReport, error) {
	return r.SolveObserved(ctx, p, opts, nil)
}

// SolveObserved behaves exactly like Solve but additionally streams a
// Progress notification for every collected subproblem result to observe
// (when non-nil), with the same single-goroutine, in-order contract as
// EvaluatePointObserved.
func (r *Runner) SolveObserved(ctx context.Context, p decomp.Point, opts SolveOptions, observe func(Progress)) (*SolveReport, error) {
	if r.cfgErr != nil {
		return nil, r.cfgErr
	}
	if p.Count() == 0 {
		return nil, errors.New("pdsat: empty decomposition set")
	}
	if p.Count() >= 63 {
		return nil, fmt.Errorf("pdsat: decomposition set of size %d cannot be enumerated", p.Count())
	}
	start := time.Now()
	fam := decomp.FamilyOf(r.formula, p)
	total := fam.SizeUint()
	if opts.MaxSubproblems > 0 && opts.MaxSubproblems < total {
		total = opts.MaxSubproblems
	}

	tasks := make([]cluster.Task, total)
	for idx := uint64(0); idx < total; idx++ {
		tasks[idx] = cluster.Task{Index: int(idx), Assumptions: fam.AssumptionsFor(idx)}
	}
	stop := cluster.StopNone
	if opts.StopOnSat {
		stop = cluster.StopOnSat
	}
	results, err := r.runTasksObserved(ctx, tasks, stop, r.cfg.RetainLearned, observe)
	interrupted := false
	if err != nil {
		if cluster.IsInterruption(err) {
			interrupted = true
		} else {
			return nil, err
		}
	}
	r.absorbActivities(results)

	report := &SolveReport{Point: p, SatIndex: -1}
	// Aggregate in enumeration order for deterministic cost-to-first-SAT.
	byIndex := make([]cluster.TaskResult, len(tasks))
	seen := make([]bool, len(tasks))
	for _, res := range results {
		byIndex[res.Index] = res
		seen[res.Index] = true
	}
	for idx := range byIndex {
		if !seen[idx] {
			continue
		}
		res := byIndex[idx]
		if !res.Started {
			// Cancelled before a solver saw it.
			report.SubproblemsAborted++
			continue
		}
		if res.Cancelled {
			report.SubproblemsAborted++
		}
		report.Processed++
		report.TotalCost += res.Cost
		if !report.FoundSat {
			report.CostToFirstSat += res.Cost
			if res.Status == solver.Sat {
				report.FoundSat = true
				report.Model = res.Model
				report.SatIndex = int64(idx)
			}
		}
	}
	report.WallTime = time.Since(start)
	report.Interrupted = interrupted
	return report, nil
}

// EstimateForCores converts a 1-core predictive value into the expected
// processing time on the given number of cores.
func EstimateForCores(value float64, cores int) float64 {
	return montecarlo.ExtrapolateCores(value, cores)
}
