// Package pdsat reproduces the leader/worker architecture of the MPI program
// PDSAT used in the paper's experiments, on top of goroutines.
//
// The Runner has two modes, mirroring the paper:
//
//   - Estimation mode (EvaluatePoint): for a decomposition set X̃ the leader
//     draws a random sample of N assignments of X̃, the workers solve the
//     induced subproblems C[X̃/α] with a fresh deterministic CDCL solver
//     each, and the observed costs are combined into the predictive-function
//     value F = 2^d · mean (montecarlo.Estimate).  Per-variable conflict
//     activity is accumulated across the sample; the tabu search uses it to
//     pick new neighbourhood centres.
//
//   - Solving mode (Solve): all 2^d assignments of X̃ are enumerated and the
//     corresponding subproblems are solved, optionally stopping at the first
//     satisfiable one.  Workers honour interruption, like the modified
//     MiniSat of the paper that stops on non-blocking messages from the
//     leader.
//
// The predictive value is always computed for one CPU core; extrapolation to
// k cores is a division (montecarlo.ExtrapolateCores), justified by the
// independence of the subproblems.
package pdsat

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/cnf"
	"repro/internal/decomp"
	"repro/internal/montecarlo"
	"repro/internal/solver"
)

// Config configures a Runner.
type Config struct {
	// SampleSize is N, the number of random subproblems per predictive
	// function evaluation.
	SampleSize int
	// Workers is the number of computing processes (goroutines).  Zero
	// means GOMAXPROCS.
	Workers int
	// Seed drives the random samples.
	Seed int64
	// CostMetric selects the cost unit ζ (conflicts by default; wall time
	// reproduces the paper's setup).
	CostMetric solver.CostMetric
	// SolverOptions configures the per-subproblem CDCL solver.
	SolverOptions solver.Options
	// SubproblemBudget bounds the effort spent on a single subproblem
	// (useful as a safety net during estimation of very bad points).
	SubproblemBudget solver.Budget
}

// DefaultConfig returns a configuration suitable for the scaled-down
// experiments: N=100 samples, conflicts as cost, all cores.
func DefaultConfig() Config {
	return Config{
		SampleSize:    100,
		Workers:       runtime.GOMAXPROCS(0),
		Seed:          1,
		CostMetric:    solver.CostConflicts,
		SolverOptions: solver.DefaultOptions(),
	}
}

// Runner evaluates predictive functions and processes decomposition families
// for one SAT instance.
type Runner struct {
	formula *cnf.Formula
	cfg     Config

	mu sync.Mutex
	// confAct accumulates per-variable conflict activity over every
	// subproblem solved by this runner (indexed by cnf.Var).
	confAct []float64
	// evaluations counts predictive-function evaluations.
	evaluations int
	// subproblemsSolved counts individual subproblem solves.
	subproblemsSolved int
}

// NewRunner creates a runner for the formula.
func NewRunner(f *cnf.Formula, cfg Config) *Runner {
	if cfg.SampleSize <= 0 {
		cfg.SampleSize = DefaultConfig().SampleSize
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.SolverOptions.VarDecay == 0 {
		cfg.SolverOptions = solver.DefaultOptions()
	}
	return &Runner{
		formula: f,
		cfg:     cfg,
		confAct: make([]float64, f.NumVars+1),
	}
}

// Formula returns the underlying formula.
func (r *Runner) Formula() *cnf.Formula { return r.formula }

// Config returns the runner configuration.
func (r *Runner) Config() Config { return r.cfg }

// Evaluations returns the number of predictive-function evaluations so far.
func (r *Runner) Evaluations() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evaluations
}

// SubproblemsSolved returns the number of subproblems solved so far.
func (r *Runner) SubproblemsSolved() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.subproblemsSolved
}

// VarActivity returns the cumulative conflict activity of a variable over
// all subproblems solved so far.  It implements the activity source used by
// the tabu search's getNewCenter heuristic.
func (r *Runner) VarActivity(v cnf.Var) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(v) <= 0 || int(v) >= len(r.confAct) {
		return 0
	}
	return r.confAct[v]
}

// PointEstimate is the result of one predictive-function evaluation.
type PointEstimate struct {
	// Point is the evaluated decomposition set.
	Point decomp.Point
	// Estimate is the Monte Carlo estimate (mean, F value, etc.).
	Estimate montecarlo.Estimate
	// Sample holds the raw observed costs.
	Sample *montecarlo.Sample
	// SatisfiableSamples counts how many sampled subproblems were SAT.
	SatisfiableSamples int
	// WallTime is the elapsed wall-clock time of the evaluation.
	WallTime time.Duration
}

// task is one subproblem to solve.
type task struct {
	index       int
	assumptions []cnf.Lit
}

// taskResult is the outcome of one subproblem solve.
type taskResult struct {
	index   int
	cost    float64
	status  solver.Status
	model   cnf.Assignment
	actVars []float64 // conflict activity contribution, indexed by cnf.Var
	stats   solver.Stats
}

// EvaluatePoint computes the predictive function F at the decomposition set
// given by the point, using the runner's sample size and worker pool.  The
// evaluation is deterministic for a fixed configuration when the cost metric
// is deterministic: the sample depends only on (Seed, evaluation counter) and
// each subproblem is solved by a fresh solver.
func (r *Runner) EvaluatePoint(ctx context.Context, p decomp.Point) (*PointEstimate, error) {
	if p.Count() == 0 {
		return nil, errors.New("pdsat: empty decomposition set")
	}
	start := time.Now()
	r.mu.Lock()
	evalIndex := r.evaluations
	r.evaluations++
	r.mu.Unlock()

	fam := decomp.FamilyOf(r.formula, p)
	// Derive a per-evaluation RNG so evaluation results do not depend on the
	// order in which the optimizer visits points.
	rng := rand.New(rand.NewSource(r.cfg.Seed ^ int64(evalIndex)*0x5851f42d4c957f2d))
	d := fam.Dimension()
	n := r.cfg.SampleSize

	tasks := make([]task, n)
	for i := 0; i < n; i++ {
		alpha := fam.RandomAssignment(rng)
		assumptions, err := fam.AssumptionsForBits(alpha)
		if err != nil {
			return nil, err
		}
		tasks[i] = task{index: i, assumptions: assumptions}
	}

	results, err := r.runTasks(ctx, tasks, false)
	if err != nil {
		return nil, err
	}

	costs := make([]float64, n)
	satCount := 0
	for _, res := range results {
		costs[res.index] = res.cost
		if res.status == solver.Sat {
			satCount++
		}
	}
	r.absorbActivities(results)

	sample := montecarlo.NewSample(costs)
	est := montecarlo.NewEstimate(d, sample)
	return &PointEstimate{
		Point:              p,
		Estimate:           est,
		Sample:             sample,
		SatisfiableSamples: satCount,
		WallTime:           time.Since(start),
	}, nil
}

// Evaluate implements the optimizer objective: it returns the predictive
// function value F(χ) at the point.
func (r *Runner) Evaluate(ctx context.Context, p decomp.Point) (float64, error) {
	est, err := r.EvaluatePoint(ctx, p)
	if err != nil {
		return 0, err
	}
	return est.Estimate.Value, nil
}

// absorbActivities adds the per-task conflict activities into the runner's
// cumulative table, in task order for determinism.
func (r *Runner) absorbActivities(results []taskResult) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, res := range results {
		for v := 1; v < len(res.actVars) && v < len(r.confAct); v++ {
			r.confAct[v] += res.actVars[v]
		}
		r.subproblemsSolved++
	}
}

// runTasks distributes tasks over the worker pool and collects results in
// task-index order.  If stopOnSat is true the remaining work is cancelled as
// soon as one subproblem is satisfiable.
func (r *Runner) runTasks(ctx context.Context, tasks []task, stopOnSat bool) ([]taskResult, error) {
	workers := r.cfg.Workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	taskCh := make(chan task)
	// Both the producer (for cancelled tasks) and the workers may emit a
	// result for the same index, so size the channel for the worst case to
	// keep every send non-blocking once the collector stops reading.
	resCh := make(chan taskResult, 2*len(tasks)+workers)
	innerCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range taskCh {
				if innerCtx.Err() != nil {
					resCh <- taskResult{index: t.index, status: solver.Unknown}
					continue
				}
				resCh <- r.solveTask(innerCtx, t)
			}
		}()
	}

	go func() {
		defer close(taskCh)
		for _, t := range tasks {
			select {
			case taskCh <- t:
			case <-innerCtx.Done():
				// Drain remaining tasks as cancelled results so indices stay
				// complete.
				resCh <- taskResult{index: t.index, status: solver.Unknown}
			}
		}
	}()

	results := make([]taskResult, 0, len(tasks))
	collected := make(map[int]bool, len(tasks))
	for len(results) < len(tasks) {
		res := <-resCh
		if collected[res.index] {
			continue
		}
		collected[res.index] = true
		results = append(results, res)
		if stopOnSat && res.status == solver.Sat {
			cancel()
		}
	}
	wg.Wait()
	close(resCh)
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// solveTask solves one subproblem with a fresh solver.  The reported cost is
// the solver's lifetime effort — construction-time (root-level) propagation
// plus the search under the assumptions — because each member of a
// decomposition family is conceptually solved from scratch, exactly as the
// paper's modified MiniSat re-reads C[X̃/α] for every subproblem.  Counting
// only the post-assumption search would report zero cost for subproblems
// already decided by root propagation.
func (r *Runner) solveTask(ctx context.Context, t task) taskResult {
	start := time.Now()
	s := solver.New(r.formula, r.cfg.SolverOptions)
	s.SetBudget(r.cfg.SubproblemBudget)
	done := make(chan struct{})
	var res solver.Result
	go func() {
		res = s.SolveWithAssumptions(t.assumptions)
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.Interrupt()
		<-done
	}
	lifetime := s.Stats()
	lifetime.SolveTime = time.Since(start)
	return taskResult{
		index:   t.index,
		cost:    solver.EffortCost(lifetime, r.cfg.CostMetric),
		status:  res.Status,
		model:   res.Model,
		actVars: s.ConflictActivities(),
		stats:   res.Stats,
	}
}

// SolveReport is the outcome of processing a whole decomposition family
// (solving mode).
type SolveReport struct {
	// Point is the decomposition set used.
	Point decomp.Point
	// Processed is the number of subproblems solved.
	Processed int
	// TotalCost is the summed cost of all processed subproblems (1-core
	// sequential cost, comparable with the predictive function value).
	TotalCost float64
	// CostToFirstSat is the summed cost of subproblems processed up to and
	// including the first satisfiable one (in enumeration order); equal to
	// TotalCost if no subproblem is satisfiable or StopOnSat was false and
	// the family was processed completely.
	CostToFirstSat float64
	// FoundSat reports whether a satisfiable subproblem was found.
	FoundSat bool
	// Model is a model of the original formula if FoundSat.
	Model cnf.Assignment
	// SatIndex is the enumeration index of the first satisfiable
	// subproblem, -1 if none.
	SatIndex int64
	// WallTime is the elapsed wall-clock time.
	WallTime time.Duration
	// Interrupted reports whether the run was cancelled before completion.
	Interrupted bool
}

// SolveOptions configure the solving mode.
type SolveOptions struct {
	// StopOnSat stops processing as soon as one subproblem is satisfiable.
	// The paper's validation runs process the whole family to gather
	// statistics; key-recovery runs stop at the first hit.
	StopOnSat bool
	// MaxSubproblems bounds the number of processed subproblems (0 = all).
	// Enumeration order is by increasing assignment index.
	MaxSubproblems uint64
}

// Solve processes the decomposition family induced by the point: it
// enumerates assignments of the decomposition set, solves every subproblem
// and aggregates costs.  The decomposition set must be small enough to
// enumerate (d < 63).
func (r *Runner) Solve(ctx context.Context, p decomp.Point, opts SolveOptions) (*SolveReport, error) {
	if p.Count() == 0 {
		return nil, errors.New("pdsat: empty decomposition set")
	}
	if p.Count() >= 63 {
		return nil, fmt.Errorf("pdsat: decomposition set of size %d cannot be enumerated", p.Count())
	}
	start := time.Now()
	fam := decomp.FamilyOf(r.formula, p)
	total := fam.SizeUint()
	if opts.MaxSubproblems > 0 && opts.MaxSubproblems < total {
		total = opts.MaxSubproblems
	}

	tasks := make([]task, total)
	for idx := uint64(0); idx < total; idx++ {
		tasks[idx] = task{index: int(idx), assumptions: fam.AssumptionsFor(idx)}
	}
	results, err := r.runTasks(ctx, tasks, opts.StopOnSat)
	interrupted := false
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			interrupted = true
		} else {
			return nil, err
		}
	}
	r.absorbActivities(results)

	report := &SolveReport{Point: p, SatIndex: -1}
	// Aggregate in enumeration order for deterministic cost-to-first-SAT.
	byIndex := make([]taskResult, len(tasks))
	seen := make([]bool, len(tasks))
	for _, res := range results {
		byIndex[res.index] = res
		seen[res.index] = true
	}
	for idx := range byIndex {
		if !seen[idx] {
			continue
		}
		res := byIndex[idx]
		if res.status == solver.Unknown && res.stats.SolveTime == 0 {
			// Cancelled before it started.
			continue
		}
		report.Processed++
		report.TotalCost += res.cost
		if !report.FoundSat {
			report.CostToFirstSat += res.cost
			if res.status == solver.Sat {
				report.FoundSat = true
				report.Model = res.model
				report.SatIndex = int64(idx)
			}
		}
	}
	report.WallTime = time.Since(start)
	report.Interrupted = interrupted
	return report, nil
}

// EstimateForCores converts a 1-core predictive value into the expected
// processing time on the given number of cores.
func EstimateForCores(value float64, cores int) float64 {
	return montecarlo.ExtrapolateCores(value, cores)
}
