package pdsat

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/internal/eval"
	"github.com/paper-repro/pdsat-go/internal/optimize"
)

// compareSearchResults asserts full bit-identity of two search results over
// this package's real runner: best point/value, counters, stop reason and
// every trace field.
func compareSearchResults(t *testing.T, got, want *optimize.Result) {
	t.Helper()
	if got.BestValue != want.BestValue {
		t.Fatalf("best F differs: %v vs %v", got.BestValue, want.BestValue)
	}
	if !got.BestPoint.Equal(want.BestPoint) {
		t.Fatalf("best point differs: %v vs %v", got.BestPoint.SortedVars(), want.BestPoint.SortedVars())
	}
	if got.Evaluations != want.Evaluations {
		t.Fatalf("evaluation counts differ: %d vs %d", got.Evaluations, want.Evaluations)
	}
	if got.Stop != want.Stop {
		t.Fatalf("stop reasons differ: %q vs %q", got.Stop, want.Stop)
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(got.Trace), len(want.Trace))
	}
	for i := range got.Trace {
		g, w := got.Trace[i], want.Trace[i]
		if g.Index != w.Index || g.Value != w.Value || !g.Point.Equal(w.Point) ||
			g.Accepted != w.Accepted || g.Improved != w.Improved || g.Pruned != w.Pruned {
			t.Fatalf("trace visit %d differs: %+v vs %+v", i, g, w)
		}
	}
}

// TestSchedulerWidthOneBitIdenticalTabuZeroPolicy is the satellite
// equivalence regression on the real pipeline: a fixed-seed Bivium tabu
// search with MaxConcurrentEvals = 1 runs entirely through the scheduler
// (pre-drawn visit order, slot-pinned samples, runWave) and must be bit-
// identical to the sequential anchor — same trace, same conflict
// activities, same subproblem counts.
func TestSchedulerWidthOneBitIdenticalTabuZeroPolicy(t *testing.T) {
	inst := weakBivium(t, 167, 60, 21)
	space := unknownSpace(inst)

	seqRunner := NewRunner(inst.CNF, evalTestConfig(eval.Policy{}))
	want, err := optimize.TabuSearch(context.Background(), seqRunner, space.FullPoint(),
		optimize.Options{Seed: 5, MaxEvaluations: 25})
	if err != nil {
		t.Fatal(err)
	}

	schedRunner := NewRunner(inst.CNF, evalTestConfig(eval.Policy{}))
	got, err := optimize.TabuSearch(context.Background(), schedRunner, space.FullPoint(),
		optimize.Options{Seed: 5, MaxEvaluations: 25, MaxConcurrentEvals: 1})
	if err != nil {
		t.Fatal(err)
	}

	compareSearchResults(t, got, want)
	for _, v := range inst.UnknownStartVars() {
		if a, b := seqRunner.VarActivity(v), schedRunner.VarActivity(v); a != b {
			t.Fatalf("conflict activity of %d differs: %v vs %v", v, a, b)
		}
	}
	if seqRunner.SubproblemsSolved() != schedRunner.SubproblemsSolved() {
		t.Fatalf("solved counts differ: %d vs %d",
			seqRunner.SubproblemsSolved(), schedRunner.SubproblemsSolved())
	}
}

// TestSchedulerWidthOneBitIdenticalTabuDefaultPolicy repeats the width-1
// anchor under the default policy (pruning + staging + F-cache): the
// scheduler's one-at-a-time path must thread the improving incumbent into
// every evaluation exactly like the sequential loop, so even the pruned
// lower bounds match bit for bit.
func TestSchedulerWidthOneBitIdenticalTabuDefaultPolicy(t *testing.T) {
	inst := weakBivium(t, 167, 60, 21)
	space := unknownSpace(inst)
	pol := eval.DefaultPolicy()

	seqRunner := NewRunner(inst.CNF, evalTestConfig(pol))
	want, err := optimize.TabuSearch(context.Background(), seqRunner, space.FullPoint(),
		optimize.Options{Seed: 5, MaxEvaluations: 25})
	if err != nil {
		t.Fatal(err)
	}

	schedRunner := NewRunner(inst.CNF, evalTestConfig(pol))
	got, err := optimize.TabuSearch(context.Background(), schedRunner, space.FullPoint(),
		optimize.Options{Seed: 5, MaxEvaluations: 25, MaxConcurrentEvals: 1})
	if err != nil {
		t.Fatal(err)
	}
	compareSearchResults(t, got, want)
	if seqRunner.PrunedEvaluations() != schedRunner.PrunedEvaluations() {
		t.Fatalf("pruned counts differ: %d vs %d",
			seqRunner.PrunedEvaluations(), schedRunner.PrunedEvaluations())
	}
}

// TestSchedulerWidthOneBitIdenticalSA is the width-1 anchor for the
// simulated annealing: single-candidate waves reproduce the sequential
// pick/evaluate/accept/cool interleaving — including the acceptance RNG
// draws — exactly.
func TestSchedulerWidthOneBitIdenticalSA(t *testing.T) {
	// 17 unknown variables and a budget of 14: even a run of all-accepted
	// downhill moves cannot shrink the decomposition set to empty, which
	// the annealing's neighbourhood generation does not tolerate.
	inst := weakBivium(t, 160, 200, 7)
	space := unknownSpace(inst)
	run := func(width int) *optimize.Result {
		r := NewRunner(inst.CNF, evalTestConfig(eval.Policy{}))
		res, err := optimize.SimulatedAnnealing(context.Background(), r, space.FullPoint(),
			optimize.Options{Seed: 5, MaxEvaluations: 14, InitialTemperature: 0.5, MaxConcurrentEvals: width})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	compareSearchResults(t, run(1), run(0))
}

// TestSchedulerWideZeroPolicyMatchesSequential: with pruning off and the
// evaluation budget inside the first neighbourhood, a width-4 tabu search
// must reproduce the sequential trace exactly — the pre-drawn visit order
// is the sequential pick order, and the slot reservation pins every
// candidate's Monte Carlo sample to the value the sequential path would
// have drawn, whatever order the four in-flight evaluations complete in.
func TestSchedulerWideZeroPolicyMatchesSequential(t *testing.T) {
	inst := weakBivium(t, 167, 60, 21)
	space := unknownSpace(inst)
	run := func(width int) *optimize.Result {
		r := NewRunner(inst.CNF, evalTestConfig(eval.Policy{}))
		res, err := optimize.TabuSearch(context.Background(), r, space.FullPoint(),
			optimize.Options{Seed: 5, MaxEvaluations: 20, MaxConcurrentEvals: width})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(0)
	if want.Stop != optimize.StopEvaluations {
		t.Fatalf("anchor run must stop on the evaluation budget, got %q", want.Stop)
	}
	compareSearchResults(t, run(4), want)
}

// TestSchedulerWideDeterministicRunToRun: the tentpole's determinism
// claim on the real pipeline — at width 4 with the default policy
// (pruning and sibling cancellation active), repeated fixed-seed runs
// select the same centres and the same best F even though completion
// order, pruned bounds and abort counts vary freely between runs.
func TestSchedulerWideDeterministicRunToRun(t *testing.T) {
	inst := weakBivium(t, 167, 60, 21)
	space := unknownSpace(inst)
	run := func() *optimize.Result {
		r := NewRunner(inst.CNF, evalTestConfig(eval.DefaultPolicy()))
		res, err := optimize.TabuSearch(context.Background(), r, space.FullPoint(),
			optimize.Options{Seed: 5, MaxEvaluations: 20, MaxConcurrentEvals: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.BestValue != b.BestValue {
		t.Fatalf("best F varies across runs: %v vs %v", a.BestValue, b.BestValue)
	}
	if !a.BestPoint.Equal(b.BestPoint) {
		t.Fatalf("best point varies across runs: %v vs %v",
			a.BestPoint.SortedVars(), b.BestPoint.SortedVars())
	}
	// The visited point sequence (= selected centres + visit order) is
	// deterministic; values of pruned visits are certified lower bounds and
	// may differ, full estimates may not.
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("trace lengths vary across runs: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		g, w := a.Trace[i], b.Trace[i]
		if !g.Point.Equal(w.Point) {
			t.Fatalf("visit %d point varies across runs", i)
		}
		if !g.Pruned && !w.Pruned && g.Value != w.Value {
			t.Fatalf("visit %d full estimate varies across runs: %v vs %v", i, g.Value, w.Value)
		}
	}
}

// TestSchedulerWideEqualBestF: at an equal budget inside the first
// neighbourhood, the wide scheduler under the default policy certifies
// the same best F and best point as the sequential default-policy search
// — concurrency buys wall-clock, never answer quality.
func TestSchedulerWideEqualBestF(t *testing.T) {
	inst := weakBivium(t, 167, 60, 21)
	space := unknownSpace(inst)
	run := func(width int) *optimize.Result {
		r := NewRunner(inst.CNF, evalTestConfig(eval.DefaultPolicy()))
		res, err := optimize.TabuSearch(context.Background(), r, space.FullPoint(),
			optimize.Options{Seed: 5, MaxEvaluations: 20, MaxConcurrentEvals: width})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, wide := run(0), run(4)
	if wide.BestValue != seq.BestValue {
		t.Fatalf("best F differs: wide %v vs sequential %v", wide.BestValue, seq.BestValue)
	}
	if !wide.BestPoint.Equal(seq.BestPoint) {
		t.Fatalf("best point differs: %v vs %v",
			wide.BestPoint.SortedVars(), seq.BestPoint.SortedVars())
	}
}

// TestSampleLedgerBalances: the accounting satellite.  Every evaluation
// commits its sample size to the planned ledger; each planned sample is
// then solved, aborted mid-solve, or skipped before dispatch — the three
// buckets must sum back exactly, including under concurrent evaluation
// with sibling cancellation and pruning.
func TestSampleLedgerBalances(t *testing.T) {
	inst := weakBivium(t, 167, 60, 21)
	for _, tc := range []struct {
		name  string
		pol   eval.Policy
		width int
	}{
		{"sequential zero policy", eval.Policy{}, 0},
		{"sequential default policy", eval.DefaultPolicy(), 0},
		{"wide default policy", eval.DefaultPolicy(), 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRunner(inst.CNF, evalTestConfig(tc.pol))
			space := unknownSpace(inst)
			_, err := optimize.TabuSearch(context.Background(), r, space.FullPoint(),
				optimize.Options{Seed: 5, MaxEvaluations: 15, MaxConcurrentEvals: tc.width})
			if err != nil {
				t.Fatal(err)
			}
			planned, solved := r.SamplesPlanned(), r.SubproblemsSolved()
			aborted, skipped := r.SubproblemsAborted(), r.SamplesSkipped()
			if planned == 0 {
				t.Fatal("no samples planned")
			}
			if planned != solved+aborted+skipped {
				t.Fatalf("ledger out of balance: planned %d != solved %d + aborted %d + skipped %d",
					planned, solved, aborted, skipped)
			}
			if tc.pol.Prune && aborted+skipped == 0 {
				t.Fatal("default policy saved no subproblems on this instance")
			}
		})
	}
}

// TestSchedulerScopeLedgerBalances checks the same invariant on an
// isolated scope (the fleet members' evaluation context) driven through
// the slot API directly.
func TestSchedulerScopeLedgerBalances(t *testing.T) {
	inst := weakBivium(t, 167, 60, 21)
	r := NewRunner(inst.CNF, evalTestConfig(eval.Policy{Prune: true}))
	sc := r.NewScope(99)
	space := unknownSpace(inst)
	p := space.FullPoint()

	base := sc.ReserveEvalSlots(3)
	if _, err := sc.EvaluateSlot(context.Background(), p, eval.Policy{}, math.Inf(1), base); err != nil {
		t.Fatal(err)
	}
	// A tight incumbent forces pruning: part of the sample is aborted or
	// skipped, and the ledger must still balance.
	if ev, err := sc.EvaluateSlot(context.Background(), p.Flip(0), eval.Policy{Prune: true}, 1, base+1); err != nil {
		t.Fatal(err)
	} else if !ev.Pruned {
		t.Fatalf("evaluation against incumbent 1 not pruned: %+v", ev)
	}
	planned, solved := sc.SamplesPlanned(), sc.SubproblemsSolved()
	aborted, skipped := sc.SubproblemsAborted(), sc.SamplesSkipped()
	if planned != solved+aborted+skipped {
		t.Fatalf("scope ledger out of balance: planned %d != solved %d + aborted %d + skipped %d",
			planned, solved, aborted, skipped)
	}
	if planned != 2*24 {
		t.Fatalf("planned %d samples, want 2 evaluations x 24", planned)
	}
	// Slot 3 was reserved but never used (a burned slot): reservation alone
	// must not plan samples.
	if r.SamplesPlanned() != planned {
		t.Fatalf("runner ledger %d diverged from its only scope %d", r.SamplesPlanned(), planned)
	}
}

// TestSchedulerCancellationMidNeighborhood: the -race stress satellite at
// this layer — cancel the context while a wide neighbourhood is in
// flight, on the real transport, and require a graceful StopContext with
// a balanced ledger.
func TestSchedulerCancellationMidNeighborhood(t *testing.T) {
	inst := weakBivium(t, 167, 60, 21)
	space := unknownSpace(inst)
	r := NewRunner(inst.CNF, evalTestConfig(eval.DefaultPolicy()))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	res, err := optimize.TabuSearch(ctx, r, space.FullPoint(),
		optimize.Options{Seed: 5, MaxConcurrentEvals: 4})
	cancel()
	if err != nil {
		t.Fatalf("cancelled search returned a hard error: %v", err)
	}
	if res.Stop != optimize.StopContext {
		t.Fatalf("stop reason %q, want %q", res.Stop, optimize.StopContext)
	}
	planned, solved := r.SamplesPlanned(), r.SubproblemsSolved()
	aborted, skipped := r.SubproblemsAborted(), r.SamplesSkipped()
	if planned != solved+aborted+skipped {
		t.Fatalf("ledger out of balance after cancellation: planned %d != solved %d + aborted %d + skipped %d",
			planned, solved, aborted, skipped)
	}
}
