package solver

import "sort"

// Learned-clause database management.  Two reducers share the trigger in
// search():
//
//   - reduceDB is the seed's policy (activity-sorted, binaries and reasons
//     kept, lowest half removed) with one fix: the sort is now a total
//     order — equal activities tie-break by cref, i.e. by the order the
//     clauses were learned — where the seed's sort.Slice left the choice of
//     which equal-activity clauses survive to the sort implementation.
//
//   - reduceTiered is the Glucose-style policy behind Options.ClauseTier:
//     clauses are tiered by the LBD recorded when they were learned (core
//     ≤ 3, mid ≤ 6, local above), the core tier, binaries and locked
//     clauses are protected outright, and the reduction removes the worst
//     half of the rest (highest LBD first, lowest activity within a tier,
//     cref as the final tie-break).  The database limit grows geometrically
//     after every reduction, and the arena reclaims the removed clauses'
//     words once they outweigh half of the learned region.

// LBD tier boundaries: a clause's tier is fixed at learn time and counted in
// Stats (LearnedCore/LearnedMid/LearnedLocal).  Core clauses (lbd ≤ 3, the
// "glue" clauses of the Glucose papers) are never removed by the tiered
// reducer.
const (
	coreLBD = 3
	midLBD  = 6
)

// learntGrowth is the geometric growth factor of the tiered reducer's
// database limit.
const learntGrowth = 1.1

// maybeReduce applies the configured learned-clause policy at the
// no-conflict checkpoint of the search loop.
func (s *Solver) maybeReduce() {
	if s.opts.MaxLearnedFactor <= 0 {
		return
	}
	if !s.opts.ClauseTier {
		if float64(len(s.learnts)) > s.opts.MaxLearnedFactor*float64(len(s.clauses)+100) {
			s.reduceDB()
		}
		return
	}
	if s.learntLimit == 0 {
		s.learntLimit = s.opts.MaxLearnedFactor * float64(len(s.clauses)+100)
	}
	if float64(len(s.learnts)) > s.learntLimit {
		s.reduceTiered()
		s.learntLimit *= learntGrowth
	}
}

// reduceDB removes roughly half of the learned clauses with the lowest
// activity (keeping binary clauses and clauses that are currently reasons).
func (s *Solver) reduceDB() {
	s.stats.ReduceDBs++
	sort.Slice(s.learnts, func(i, j int) bool {
		ci, cj := s.learnts[i], s.learnts[j]
		bi, bj := s.ar.size(ci) == 2, s.ar.size(cj) == 2
		if bi != bj {
			return bj // binaries last (kept)
		}
		ai, aj := s.clauseAct[s.ar.actIdx(ci)], s.clauseAct[s.ar.actIdx(cj)]
		if ai != aj {
			return ai < aj
		}
		// Total order: equal activities keep the older clause (learned
		// clauses are allocated in cref order), independent of the sort
		// algorithm.
		return ci < cj
	})
	limit := len(s.learnts) / 2
	kept := s.learnts[:0]
	for i, c := range s.learnts {
		locked := s.isReason(c)
		if i < limit && s.ar.size(c) > 2 && !locked {
			s.detach(c)
			s.stats.Removed++
			continue
		}
		kept = append(kept, c)
	}
	s.learnts = kept
}

// reduceTiered is the ClauseTier reduction pass.  Unlike reduceDB it leaves
// the surviving clauses in learn order (no behavioural contract ties it to
// the seed — ClauseTier is gated by benchmark, not bit-identity) and marks
// the removed clauses dead in the arena for compaction.
func (s *Solver) reduceTiered() {
	s.stats.ReduceDBs++
	// Candidates: everything not protected.  Binaries, core-tier clauses
	// and locked clauses (current reasons) always survive.
	cand := s.reduceBuf[:0]
	for _, c := range s.learnts {
		if s.ar.size(c) > 2 && s.ar.lbd(c) > coreLBD && !s.isReason(c) {
			cand = append(cand, c)
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		ci, cj := cand[i], cand[j]
		if li, lj := s.ar.lbd(ci), s.ar.lbd(cj); li != lj {
			return li > lj // highest LBD goes first (removed first)
		}
		ai, aj := s.clauseAct[s.ar.actIdx(ci)], s.clauseAct[s.ar.actIdx(cj)]
		if ai != aj {
			return ai < aj
		}
		return ci < cj
	})
	drop := len(cand) / 2
	for _, c := range cand[:drop] {
		s.detach(c)
		s.ar.markDead(c)
		s.garbageWords += int(hdrWords + s.ar.size(c))
		s.stats.Removed++
	}
	s.reduceBuf = cand[:0]
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if !s.ar.isDead(c) {
			kept = append(kept, c)
		}
	}
	s.learnts = kept
	// Compact once the dead words outweigh half of the learned region.
	if learnedWords := len(s.ar.data) - s.arenaBase; s.garbageWords*2 > learnedWords && s.garbageWords > 0 {
		s.compactLearned()
	}
}

func (s *Solver) isReason(c cref) bool {
	v := s.ar.lits(c)[0].ivar()
	return s.assigns[v] != lUndef && s.reason[v] == c
}
