package solver

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/cnfgen"
)

// The solver golden suite pins the exact search of the CDCL solver — every
// deterministic counter, the model bits and the conflict-activity table — to
// values recorded from the original pointer-based clause representation
// (recorded at the seed of PR 9, before the flat-arena rewrite).  The arena
// representation must reproduce them bit for bit with ClauseTier off; any
// drift here is a determinism regression, not a tuning change.
//
// Regenerate (only when a deliberate, documented behaviour change is made)
// with:
//
//	PDSAT_UPDATE_GOLDENS=1 go test -run TestSolverGoldens ./internal/solver
const goldenFile = "testdata/solver_goldens.json"

// goldenStats is the seed-era deterministic counter set (SolveTime is wall
// clock, ArenaBytes and the tier counters did not exist at the seed; all are
// excluded on purpose so the file stays comparable with the pointer
// implementation that recorded it).
type goldenStats struct {
	Decisions    uint64 `json:"decisions"`
	Propagations uint64 `json:"propagations"`
	Conflicts    uint64 `json:"conflicts"`
	Restarts     uint64 `json:"restarts"`
	Learned      uint64 `json:"learned"`
	Removed      uint64 `json:"removed"`
	MaxLevel     int    `json:"max_level"`
}

func toGoldenStats(s Stats) goldenStats {
	return goldenStats{
		Decisions:    s.Decisions,
		Propagations: s.Propagations,
		Conflicts:    s.Conflicts,
		Restarts:     s.Restarts,
		Learned:      s.Learned,
		Removed:      s.Removed,
		MaxLevel:     s.MaxLevel,
	}
}

// goldenRecord is the recorded outcome of one solve call of a scenario.
type goldenRecord struct {
	Status   string      `json:"status"`
	Stats    goldenStats `json:"stats"`
	Lifetime goldenStats `json:"lifetime"`
	ModelFNV uint64      `json:"model_fnv"`
	ActFNV   uint64      `json:"act_fnv"`
}

func hashModel(m cnf.Assignment) uint64 {
	h := fnv.New64a()
	for _, v := range m {
		h.Write([]byte{byte(v)})
	}
	return h.Sum64()
}

func hashFloats(fs []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, f := range fs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	return h.Sum64()
}

func record(res Result, s *Solver) goldenRecord {
	return goldenRecord{
		Status:   res.Status.String(),
		Stats:    toGoldenStats(res.Stats),
		Lifetime: toGoldenStats(s.Stats()),
		ModelFNV: hashModel(res.Model),
		ActFNV:   hashFloats(s.ConflictActivities()),
	}
}

// reduceHeavyOptions forces frequent learned-clause database reductions so
// the goldens pin the reduceDB ordering, not just the plain search.
func reduceHeavyOptions() Options {
	o := DefaultOptions()
	o.MaxLearnedFactor = 0.25
	return o
}

// goldenScenarios returns the named deterministic solve sequences the suite
// pins.  Every scenario returns the records of its calls in order.
func goldenScenarios() map[string]func() []goldenRecord {
	scenarios := map[string]func() []goldenRecord{}

	solveOnce := func(f *cnf.Formula, opts Options) []goldenRecord {
		s := New(f, opts)
		res := s.Solve()
		return []goldenRecord{record(res, s)}
	}

	scenarios["php_6_5"] = func() []goldenRecord {
		f, _ := cnfgen.Pigeonhole(6, 5)
		return solveOnce(f, DefaultOptions())
	}
	scenarios["php_4_4_sat"] = func() []goldenRecord {
		f, _ := cnfgen.Pigeonhole(4, 4)
		return solveOnce(f, DefaultOptions())
	}
	scenarios["php_8_7"] = func() []goldenRecord {
		f, _ := cnfgen.Pigeonhole(8, 7)
		return solveOnce(f, DefaultOptions())
	}
	scenarios["php_7_6_reduce_heavy"] = func() []goldenRecord {
		f, _ := cnfgen.Pigeonhole(7, 6)
		return solveOnce(f, reduceHeavyOptions())
	}
	scenarios["php_7_6_no_minimize_no_phase"] = func() []goldenRecord {
		f, _ := cnfgen.Pigeonhole(7, 6)
		o := DefaultOptions()
		o.MinimizeLearned = false
		o.PhaseSaving = false
		o.DefaultPhase = true
		o.RestartBase = 50
		return solveOnce(f, o)
	}
	scenarios["php_8_7_budget_50_conflicts"] = func() []goldenRecord {
		f, _ := cnfgen.Pigeonhole(8, 7)
		s := NewDefault(f)
		s.SetBudget(Budget{MaxConflicts: 50})
		res := s.Solve()
		return []goldenRecord{record(res, s)}
	}
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		scenarios[fmt.Sprintf("rand3sat_seed%d", seed)] = func() []goldenRecord {
			rng := rand.New(rand.NewSource(seed))
			f, _ := cnfgen.Random3SAT(rng, 60, 4.2)
			return solveOnce(f, DefaultOptions())
		}
		scenarios[fmt.Sprintf("rand3sat_seed%d_reduce_heavy", seed)] = func() []goldenRecord {
			rng := rand.New(rand.NewSource(seed))
			f, _ := cnfgen.Random3SAT(rng, 80, 4.26)
			return solveOnce(f, reduceHeavyOptions())
		}
	}
	scenarios["php_6_5_reset_assumption_session"] = func() []goldenRecord {
		// One pooled-session solver: Reset between queries, mixed
		// assumption vectors, exactly as the estimation workers drive it.
		f, _ := cnfgen.Pigeonhole(6, 5)
		rng := rand.New(rand.NewSource(11))
		s := NewDefault(f)
		out := make([]goldenRecord, 0, 8)
		for call := 0; call < 8; call++ {
			var assumptions []cnf.Lit
			if call > 0 {
				perm := rng.Perm(f.NumVars)
				for _, v := range perm[:1+rng.Intn(5)] {
					assumptions = append(assumptions, cnf.NewLit(cnf.Var(v+1), rng.Intn(2) == 1))
				}
			}
			s.Reset()
			out = append(out, record(s.SolveWithAssumptions(assumptions), s))
		}
		return out
	}
	scenarios["rand3sat_incremental_no_reset"] = func() []goldenRecord {
		// MiniSat-style incremental reuse: learned clauses and activities
		// carry across calls; pins the learned-clause retention behaviour.
		rng := rand.New(rand.NewSource(5))
		f, _ := cnfgen.Random3SAT(rng, 70, 4.0)
		s := NewDefault(f)
		out := make([]goldenRecord, 0, 4)
		out = append(out, record(s.Solve(), s))
		arng := rand.New(rand.NewSource(17))
		for call := 0; call < 3; call++ {
			var assumptions []cnf.Lit
			perm := arng.Perm(f.NumVars)
			for _, v := range perm[:2+arng.Intn(4)] {
				assumptions = append(assumptions, cnf.NewLit(cnf.Var(v+1), arng.Intn(2) == 1))
			}
			out = append(out, record(s.SolveWithAssumptions(assumptions), s))
		}
		return out
	}
	return scenarios
}

// TestSolverGoldens replays every golden scenario and compares each call
// against the recorded pointer-implementation outcome.
func TestSolverGoldens(t *testing.T) {
	scenarios := goldenScenarios()
	got := make(map[string][]goldenRecord, len(scenarios))
	for name, run := range scenarios {
		got[name] = run()
	}

	if os.Getenv("PDSAT_UPDATE_GOLDENS") != "" {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded %d golden scenarios to %s", len(got), goldenFile)
		return
	}

	buf, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("missing golden file (record with PDSAT_UPDATE_GOLDENS=1): %v", err)
	}
	var want map[string][]goldenRecord
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d scenarios, suite has %d (stale file?)", len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("scenario %q recorded but no longer in the suite", name)
			continue
		}
		if len(g) != len(w) {
			t.Errorf("%s: %d calls, recorded %d", name, len(g), len(w))
			continue
		}
		for i := range w {
			if g[i] != w[i] {
				t.Errorf("%s call %d diverges from the pointer implementation:\n got %+v\nwant %+v", name, i, g[i], w[i])
			}
		}
	}
}
