package solver

// This file preserves the seed's pointer-based clause representation
// (individually heap-allocated clauses behind pointer watch lists) exactly as
// it stood before the flat-arena rewrite of PR 9.  It exists for two
// purposes:
//
//   - Differential testing: TestArenaMatchesPointerReference and friends run
//     the arena solver and this reference side by side and require
//     bit-identical behaviour (statuses, stats, models, conflict
//     activities) with ClauseTier off.
//
//   - Benchmark baseline: BenchmarkSolverBivium measures the arena solver
//     against this implementation on the same machine, which is how the
//     ≥20% speedup bar is enforced without a machine-dependent recorded
//     number.
//
// It shares the literal encoding, options, budget, statistics and the
// variable-order heap with the production solver; only the clause storage
// and the algorithms that touch it are duplicated.  Do not "improve" this
// file: its value is that it does not change.

import (
	"sort"
	"sync/atomic"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cnf"
)

type refClause struct {
	lits     []ilit
	learned  bool
	activity float64
	lbd      int
}

type refWatcher struct {
	c       *refClause
	blocker ilit
}

type refSolver struct {
	opts Options

	numVars   int32
	clauses   []*refClause
	learnts   []*refClause
	watches   [][]refWatcher
	assigns   []lbool
	polarity  []bool
	reason    []*refClause
	level     []int32
	trail     []ilit
	trailLim  []int32
	qhead     int
	order     varOrder
	activity  []float64
	confAct   []float64
	varInc    float64
	clauseInc float64

	seen []bool

	okay bool

	stats     Stats
	budget    Budget
	interrupt atomic.Bool
	startTime time.Time
	deadline  time.Time

	base       *refSnapshot
	everSolved bool
}

type refSnapshot struct {
	numVars    int32
	numClauses int
	lits       []ilit
	watch      []refWatcher
	watchLen   []int32
	assigns    []lbool
	reason     []*refClause
	trail      []ilit
	stats      Stats
	okay       bool
}

func (s *refSolver) ensureBase() {
	if s.base == nil {
		s.capture()
	}
}

func (s *refSolver) capture() {
	b := &refSnapshot{
		numVars:    s.numVars,
		numClauses: len(s.clauses),
		stats:      s.stats,
		okay:       s.okay,
	}
	total := 0
	for _, c := range s.clauses {
		total += len(c.lits)
	}
	b.lits = make([]ilit, 0, total)
	for _, c := range s.clauses {
		b.lits = append(b.lits, c.lits...)
	}
	total = 0
	for _, ws := range s.watches {
		total += len(ws)
	}
	b.watch = make([]refWatcher, 0, total)
	b.watchLen = make([]int32, len(s.watches))
	for i, ws := range s.watches {
		b.watchLen[i] = int32(len(ws))
		b.watch = append(b.watch, ws...)
	}
	b.assigns = append([]lbool(nil), s.assigns...)
	b.reason = append([]*refClause(nil), s.reason...)
	b.trail = append([]ilit(nil), s.trail...)
	s.base = b
}

func (s *refSolver) Reset() {
	s.ensureBase()
	b := s.base
	s.interrupt.Store(false)
	if s.numVars > b.numVars {
		n := b.numVars
		s.watches = s.watches[:2*n]
		s.assigns = s.assigns[:n]
		s.polarity = s.polarity[:n]
		s.reason = s.reason[:n]
		s.level = s.level[:n]
		s.activity = s.activity[:n]
		s.confAct = s.confAct[:n]
		s.seen = s.seen[:n]
		s.numVars = n
	}
	s.clauses = s.clauses[:b.numClauses]
	off := 0
	for _, c := range s.clauses {
		copy(c.lits, b.lits[off:off+len(c.lits)])
		off += len(c.lits)
		c.activity = 0
	}
	s.learnts = s.learnts[:0]
	woff := 0
	for i := range s.watches {
		n := int(b.watchLen[i])
		if cap(s.watches[i]) < n {
			s.watches[i] = make([]refWatcher, n)
		} else {
			s.watches[i] = s.watches[i][:n]
		}
		copy(s.watches[i], b.watch[woff:woff+n])
		woff += n
	}
	copy(s.assigns, b.assigns)
	copy(s.reason, b.reason)
	for v := range s.level {
		s.level[v] = 0
	}
	for v := range s.polarity {
		s.polarity[v] = s.opts.DefaultPhase
	}
	for v := range s.activity {
		s.activity[v] = 0
	}
	for v := range s.confAct {
		s.confAct[v] = 0
	}
	for v := range s.seen {
		s.seen[v] = false
	}
	s.trail = append(s.trail[:0], b.trail...)
	s.trailLim = s.trailLim[:0]
	s.qhead = len(s.trail)
	s.order.rebuild(s.numVars)
	s.varInc, s.clauseInc = 1.0, 1.0
	s.stats = b.stats
	s.okay = b.okay
}

func (s *refSolver) BaseStats() Stats {
	s.ensureBase()
	return s.base.stats
}

func newRefSolver(f *cnf.Formula, opts Options) *refSolver {
	if opts.VarDecay == 0 {
		opts = DefaultOptions()
	}
	s := &refSolver{opts: opts, okay: true, varInc: 1.0, clauseInc: 1.0}
	s.ensureVars(int32(f.NumVars))
	for _, c := range f.Clauses {
		if !s.addClause(c) {
			s.okay = false
		}
	}
	return s
}

func (s *refSolver) SetBudget(b Budget) { s.budget = b }

func (s *refSolver) Interrupt() { s.interrupt.Store(true) }

func (s *refSolver) Stats() Stats { return s.stats }

func (s *refSolver) VarActivity(v cnf.Var) float64 {
	iv := int32(v - 1)
	if iv < 0 || iv >= s.numVars {
		return 0
	}
	return s.confAct[iv]
}

func (s *refSolver) ConflictActivities() []float64 {
	out := make([]float64, s.numVars+1)
	for v := int32(0); v < s.numVars; v++ {
		out[v+1] = s.confAct[v]
	}
	return out
}

func (s *refSolver) ensureVars(n int32) {
	for s.numVars < n {
		s.numVars++
		s.watches = append(s.watches, nil, nil)
		s.assigns = append(s.assigns, lUndef)
		s.polarity = append(s.polarity, s.opts.DefaultPhase)
		s.reason = append(s.reason, nil)
		s.level = append(s.level, 0)
		s.activity = append(s.activity, 0)
		s.confAct = append(s.confAct, 0)
		s.seen = append(s.seen, false)
		s.order.insert(s.numVars-1, &s.activity)
	}
}

func (s *refSolver) addClause(c cnf.Clause) bool {
	norm, taut := c.Normalize()
	if taut {
		return true
	}
	if len(norm) == 0 {
		return false
	}
	lits := make([]ilit, 0, len(norm))
	for _, l := range norm {
		s.ensureVars(int32(l.Var()))
		il := fromExternal(l)
		switch s.litValue(il) {
		case lTrue:
			return true
		case lFalse:
			continue
		}
		lits = append(lits, il)
	}
	switch len(lits) {
	case 0:
		return false
	case 1:
		if !s.enqueue(lits[0], nil) {
			return false
		}
		conf := s.propagate()
		return conf == nil
	default:
		cl := &refClause{lits: lits}
		s.clauses = append(s.clauses, cl)
		s.attach(cl)
		return true
	}
}

func (s *refSolver) AddClause(c cnf.Clause) bool {
	if !s.okay {
		return false
	}
	if s.decisionLevel() != 0 {
		s.cancelUntil(0)
	}
	if !s.addClause(c) {
		s.okay = false
	}
	if !s.everSolved {
		s.base = nil
	}
	return s.okay
}

func (s *refSolver) attach(c *refClause) {
	l0, l1 := c.lits[0], c.lits[1]
	s.watches[l0.neg()] = append(s.watches[l0.neg()], refWatcher{c: c, blocker: l1})
	s.watches[l1.neg()] = append(s.watches[l1.neg()], refWatcher{c: c, blocker: l0})
}

func (s *refSolver) detach(c *refClause) {
	s.removeWatch(c.lits[0].neg(), c)
	s.removeWatch(c.lits[1].neg(), c)
}

func (s *refSolver) removeWatch(l ilit, c *refClause) {
	ws := s.watches[l]
	for i := range ws {
		if ws[i].c == c {
			ws[i] = ws[len(ws)-1]
			s.watches[l] = ws[:len(ws)-1]
			return
		}
	}
}

func (s *refSolver) litValue(l ilit) lbool {
	v := s.assigns[l.ivar()]
	if v == lUndef {
		return lUndef
	}
	if l.sign() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

func (s *refSolver) decisionLevel() int { return len(s.trailLim) }

func (s *refSolver) enqueue(l ilit, from *refClause) bool {
	switch s.litValue(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.ivar()
	if l.sign() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

func (s *refSolver) propagate() *refClause {
	var confl *refClause
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		ws := s.watches[p]
		i, j := 0, 0
		for i < len(ws) {
			w := ws[i]
			if s.litValue(w.blocker) == lTrue {
				ws[j] = w
				i++
				j++
				continue
			}
			c := w.c
			falseLit := p.neg()
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.litValue(first) == lTrue {
				ws[j] = refWatcher{c: c, blocker: first}
				i++
				j++
				continue
			}
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].neg()] = append(s.watches[c.lits[1].neg()], refWatcher{c: c, blocker: first})
					found = true
					break
				}
			}
			if found {
				i++
				continue
			}
			ws[j] = refWatcher{c: c, blocker: first}
			i++
			j++
			if s.litValue(first) == lFalse {
				confl = c
				s.qhead = len(s.trail)
				for i < len(ws) {
					ws[j] = ws[i]
					i++
					j++
				}
			} else {
				s.enqueue(first, c)
			}
		}
		s.watches[p] = ws[:j]
		if confl != nil {
			return confl
		}
	}
	return nil
}

func (s *refSolver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= int(bound); i-- {
		l := s.trail[i]
		v := l.ivar()
		if s.opts.PhaseSaving {
			s.polarity[v] = !l.sign()
		}
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.order.insertIfAbsent(v, &s.activity)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *refSolver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, int32(len(s.trail)))
}

func (s *refSolver) pickBranchVar() int32 {
	for {
		v := s.order.removeMin(&s.activity)
		if v < 0 {
			return -1
		}
		if s.assigns[v] == lUndef {
			return v
		}
	}
}

func (s *refSolver) bumpVar(v int32) {
	s.activity[v] += s.varInc
	s.confAct[v]++
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.decrease(v, &s.activity)
}

func (s *refSolver) decayVarActivity()    { s.varInc /= s.opts.VarDecay }
func (s *refSolver) decayClauseActivity() { s.clauseInc /= s.opts.ClauseDecay }

func (s *refSolver) bumpClause(c *refClause) {
	c.activity += s.clauseInc
	if c.activity > 1e20 {
		for _, lc := range s.learnts {
			lc.activity *= 1e-20
		}
		s.clauseInc *= 1e-20
	}
}

func (s *refSolver) analyze(confl *refClause) ([]ilit, int) {
	learnt := []ilit{0}
	pathC := 0
	var p ilit = -1
	idx := len(s.trail) - 1
	var toClear []int32

	for {
		s.bumpClause(confl)
		for _, q := range confl.lits {
			if q == p {
				continue
			}
			v := q.ivar()
			if !s.seen[v] && s.level[v] > 0 {
				s.bumpVar(v)
				s.seen[v] = true
				toClear = append(toClear, v)
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for !s.seen[s.trail[idx].ivar()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		confl = s.reason[p.ivar()]
		s.seen[p.ivar()] = false
		pathC--
		if pathC <= 0 {
			break
		}
	}
	learnt[0] = p.neg()

	if s.opts.MinimizeLearned {
		learnt = s.minimizeLearned(learnt)
	}

	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].ivar()] > s.level[learnt[maxI].ivar()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].ivar()])
	}

	for _, v := range toClear {
		s.seen[v] = false
	}
	return learnt, btLevel
}

func (s *refSolver) minimizeLearned(learnt []ilit) []ilit {
	out := learnt[:1]
	for i := 1; i < len(learnt); i++ {
		l := learnt[i]
		r := s.reason[l.ivar()]
		if r == nil {
			out = append(out, l)
			continue
		}
		redundant := true
		for _, q := range r.lits {
			if q == l.neg() || q == l {
				continue
			}
			v := q.ivar()
			if !s.seen[v] && s.level[v] > 0 {
				redundant = false
				break
			}
		}
		if !redundant {
			out = append(out, l)
		}
	}
	return out
}

func (s *refSolver) computeLBD(lits []ilit) int {
	levels := make(map[int32]struct{}, len(lits))
	for _, l := range lits {
		levels[s.level[l.ivar()]] = struct{}{}
	}
	return len(levels)
}

func (s *refSolver) recordLearned(lits []ilit) {
	if len(lits) == 1 {
		s.enqueue(lits[0], nil)
		return
	}
	c := &refClause{lits: lits, learned: true, lbd: s.computeLBD(lits)}
	s.bumpClause(c)
	s.learnts = append(s.learnts, c)
	s.stats.Learned++
	s.attach(c)
	s.enqueue(lits[0], c)
}

// reduceDB is preserved with the seed's unstable sort.Slice on purpose: the
// differential tests prove that the production solver's deterministic
// tie-break never changes the outcome (learned activities are distinct in
// practice because clauseInc grows strictly between conflicts).
func (s *refSolver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool {
		ci, cj := s.learnts[i], s.learnts[j]
		if (len(ci.lits) == 2) != (len(cj.lits) == 2) {
			return len(cj.lits) == 2
		}
		return ci.activity < cj.activity
	})
	limit := len(s.learnts) / 2
	kept := s.learnts[:0]
	for i, c := range s.learnts {
		locked := s.isReason(c)
		if i < limit && len(c.lits) > 2 && !locked {
			s.detach(c)
			s.stats.Removed++
			continue
		}
		kept = append(kept, c)
	}
	s.learnts = kept
}

func (s *refSolver) isReason(c *refClause) bool {
	v := c.lits[0].ivar()
	return s.assigns[v] != lUndef && s.reason[v] == c
}

func (s *refSolver) outOfBudget() bool {
	if s.interrupt.Load() {
		return true
	}
	if s.budget.MaxConflicts > 0 && s.stats.Conflicts >= s.budget.MaxConflicts {
		return true
	}
	if s.budget.MaxPropagations > 0 && s.stats.Propagations >= s.budget.MaxPropagations {
		return true
	}
	if !s.deadline.IsZero() && s.stats.Conflicts%64 == 0 && time.Now().After(s.deadline) {
		return true
	}
	return false
}

func (s *refSolver) search(maxConflicts uint64, assumptions []ilit) (Status, bool) {
	conflictsAtStart := s.stats.Conflicts
	for {
		confl := s.propagate()
		if confl != nil {
			s.stats.Conflicts++
			if s.decisionLevel() == 0 {
				s.okay = false
				return Unsat, false
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			s.recordLearned(learnt)
			s.decayVarActivity()
			s.decayClauseActivity()
			if s.outOfBudget() {
				return Unknown, true
			}
			if maxConflicts > 0 && s.stats.Conflicts-conflictsAtStart >= maxConflicts {
				s.cancelUntil(0)
				return Unknown, false
			}
			continue
		}
		if s.opts.MaxLearnedFactor > 0 &&
			float64(len(s.learnts)) > s.opts.MaxLearnedFactor*float64(len(s.clauses)+100) {
			s.reduceDB()
		}
		if s.outOfBudget() {
			return Unknown, true
		}
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.litValue(a) {
			case lTrue:
				s.newDecisionLevel()
				continue
			case lFalse:
				return Unsat, false
			default:
				s.newDecisionLevel()
				s.enqueue(a, nil)
				continue
			}
		}
		v := s.pickBranchVar()
		if v < 0 {
			return Sat, false
		}
		s.stats.Decisions++
		s.newDecisionLevel()
		if dl := s.decisionLevel(); dl > s.stats.MaxLevel {
			s.stats.MaxLevel = dl
		}
		s.enqueue(mkLit(v, s.polarity[v]), nil)
	}
}

func (s *refSolver) Solve() Result { return s.SolveWithAssumptions(nil) }

func (s *refSolver) SolveWithAssumptions(assumptions []cnf.Lit) (res Result) {
	s.ensureBase()
	s.everSolved = true
	s.startTime = time.Now()
	if s.budget.MaxTime > 0 {
		s.deadline = s.startTime.Add(s.budget.MaxTime)
	} else {
		s.deadline = time.Time{}
	}
	startStats := s.stats
	res = Result{Status: Unknown}
	defer func() {
		res.Stats = diffStats(s.stats, startStats)
		res.Stats.SolveTime = time.Since(s.startTime)
	}()

	if !s.okay {
		res.Status = Unsat
		return res
	}
	s.cancelUntil(0)
	iassumps := make([]ilit, 0, len(assumptions))
	for _, a := range assumptions {
		s.ensureVars(int32(a.Var()))
		iassumps = append(iassumps, fromExternal(a))
	}

	var restarts uint64
	for {
		limit := s.opts.RestartBase * luby(restarts+1)
		st, stopped := s.search(limit, iassumps)
		if st == Sat {
			res.Status = Sat
			res.Model = s.extractModel()
			s.cancelUntil(0)
			return res
		}
		if st == Unsat {
			res.Status = Unsat
			s.cancelUntil(0)
			return res
		}
		if stopped {
			res.Interrupted = true
			s.cancelUntil(0)
			return res
		}
		restarts++
		s.stats.Restarts++
	}
}

func (s *refSolver) extractModel() cnf.Assignment {
	m := cnf.NewAssignment(int(s.numVars))
	for v := int32(0); v < s.numVars; v++ {
		switch s.assigns[v] {
		case lTrue:
			m[v+1] = cnf.True
		case lFalse:
			m[v+1] = cnf.False
		default:
			if s.polarity[v] {
				m[v+1] = cnf.True
			} else {
				m[v+1] = cnf.False
			}
		}
	}
	return m
}
