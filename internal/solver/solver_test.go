package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cnf"
)

func mustSolve(t *testing.T, f *cnf.Formula) Result {
	t.Helper()
	s := NewDefault(f)
	res := s.Solve()
	if res.Status == Sat && !f.IsSatisfiedBy(res.Model) {
		t.Fatalf("solver returned a non-model for %v", f)
	}
	return res
}

func TestEmptyFormulaIsSat(t *testing.T) {
	f := cnf.New(3)
	if res := mustSolve(t, f); res.Status != Sat {
		t.Fatalf("empty formula should be SAT, got %v", res.Status)
	}
}

func TestSingleUnit(t *testing.T) {
	f := cnf.New(1)
	f.AddClauseLits(1)
	res := mustSolve(t, f)
	if res.Status != Sat || res.Model.Value(1) != cnf.True {
		t.Fatalf("got %v model=%v", res.Status, res.Model)
	}
}

func TestContradiction(t *testing.T) {
	f := cnf.New(1)
	f.AddClauseLits(1)
	f.AddClauseLits(-1)
	if res := mustSolve(t, f); res.Status != Unsat {
		t.Fatalf("expected UNSAT, got %v", res.Status)
	}
}

func TestEmptyClauseIsUnsat(t *testing.T) {
	f := cnf.New(1)
	f.AddClause(cnf.Clause{})
	if res := mustSolve(t, f); res.Status != Unsat {
		t.Fatalf("expected UNSAT, got %v", res.Status)
	}
}

func TestSimpleSatInstance(t *testing.T) {
	f := cnf.New(3)
	f.AddClauseLits(1, 2, 3)
	f.AddClauseLits(-1, -2)
	f.AddClauseLits(-2, -3)
	f.AddClauseLits(-1, -3)
	res := mustSolve(t, f)
	if res.Status != Sat {
		t.Fatalf("expected SAT, got %v", res.Status)
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons into n holes is UNSAT.  Classic hard-ish
	// instance that exercises clause learning.
	for _, n := range []int{3, 4, 5} {
		f := pigeonhole(n+1, n)
		res := mustSolve(t, f)
		if res.Status != Unsat {
			t.Fatalf("PHP(%d,%d) should be UNSAT, got %v", n+1, n, res.Status)
		}
	}
	// n pigeons into n holes is SAT.
	f := pigeonhole(4, 4)
	if res := mustSolve(t, f); res.Status != Sat {
		t.Fatalf("PHP(4,4) should be SAT, got %v", res.Status)
	}
}

// pigeonhole builds the pigeonhole principle CNF with p pigeons and h holes.
// Variable x_{i,j} (pigeon i in hole j) is i*h + j + 1.
func pigeonhole(p, h int) *cnf.Formula {
	v := func(i, j int) cnf.Lit { return cnf.Lit(i*h + j + 1) }
	f := cnf.New(p * h)
	for i := 0; i < p; i++ {
		c := make(cnf.Clause, 0, h)
		for j := 0; j < h; j++ {
			c = append(c, v(i, j))
		}
		f.AddClause(c)
	}
	for j := 0; j < h; j++ {
		for i1 := 0; i1 < p; i1++ {
			for i2 := i1 + 1; i2 < p; i2++ {
				f.AddClauseLits(-v(i1, j), -v(i2, j))
			}
		}
	}
	return f
}

func TestAssumptions(t *testing.T) {
	f := cnf.New(3)
	f.AddClauseLits(1, 2)
	f.AddClauseLits(-2, 3)
	s := NewDefault(f)

	res := s.SolveWithAssumptions([]cnf.Lit{-1})
	if res.Status != Sat {
		t.Fatalf("expected SAT under -1, got %v", res.Status)
	}
	if res.Model.Value(1) != cnf.False || res.Model.Value(2) != cnf.True || res.Model.Value(3) != cnf.True {
		t.Fatalf("model does not respect assumption/implications: %v", res.Model)
	}

	// Conflicting assumptions.
	res = s.SolveWithAssumptions([]cnf.Lit{-1, -2})
	if res.Status != Unsat {
		t.Fatalf("expected UNSAT under {-1,-2}, got %v", res.Status)
	}

	// Solver remains reusable after assumption solving.
	res = s.Solve()
	if res.Status != Sat {
		t.Fatalf("expected SAT without assumptions, got %v", res.Status)
	}
}

func TestIncrementalAddClause(t *testing.T) {
	f := cnf.New(2)
	f.AddClauseLits(1, 2)
	s := NewDefault(f)
	if res := s.Solve(); res.Status != Sat {
		t.Fatal("base formula should be SAT")
	}
	if !s.AddClause(cnf.Clause{-1}) {
		t.Fatal("adding -1 should keep the solver consistent")
	}
	if res := s.Solve(); res.Status != Sat || res.Model.Value(2) != cnf.True {
		t.Fatalf("after adding -1 expected model with 2=true, got %v %v", res.Status, res.Model)
	}
	if !s.AddClause(cnf.Clause{-2}) {
		// Adding -2 creates a top-level conflict via propagation; AddClause
		// may report it immediately or at the next Solve.
		return
	}
	if res := s.Solve(); res.Status != Unsat {
		t.Fatalf("expected UNSAT after adding -1 and -2, got %v", res.Status)
	}
}

func TestTautologyAndDuplicateLiterals(t *testing.T) {
	f := cnf.New(2)
	f.AddClauseLits(1, -1)   // tautology, should be ignored
	f.AddClauseLits(2, 2, 2) // duplicates collapse to unit
	res := mustSolve(t, f)
	if res.Status != Sat || res.Model.Value(2) != cnf.True {
		t.Fatalf("got %v %v", res.Status, res.Model)
	}
}

func TestBudgetConflicts(t *testing.T) {
	f := pigeonhole(8, 7) // hard enough to exceed a tiny conflict budget
	s := NewDefault(f)
	s.SetBudget(Budget{MaxConflicts: 5})
	res := s.Solve()
	if res.Status != Unknown || !res.Interrupted {
		t.Fatalf("expected interrupted Unknown, got %v interrupted=%v (conflicts=%d)",
			res.Status, res.Interrupted, res.Stats.Conflicts)
	}
}

func TestBudgetTime(t *testing.T) {
	f := pigeonhole(10, 9)
	s := NewDefault(f)
	s.SetBudget(Budget{MaxTime: time.Millisecond})
	res := s.Solve()
	if res.Status == Unknown && !res.Interrupted {
		t.Fatal("unknown result must be marked interrupted")
	}
}

func TestInterrupt(t *testing.T) {
	f := pigeonhole(10, 9)
	s := NewDefault(f)
	done := make(chan Result, 1)
	go func() { done <- s.Solve() }()
	time.Sleep(10 * time.Millisecond)
	s.Interrupt()
	select {
	case res := <-done:
		if res.Status == Unknown && !res.Interrupted {
			t.Fatal("interrupted solve should be marked Interrupted")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("solver did not honour Interrupt")
	}
	// After clearing the interrupt the solver is usable again.
	s.ClearInterrupt()
	small := cnf.New(1)
	small.AddClauseLits(1)
	if res := NewDefault(small).Solve(); res.Status != Sat {
		t.Fatal("fresh solver should work after interrupt test")
	}
}

func TestStatsAccumulate(t *testing.T) {
	f := pigeonhole(5, 4)
	s := NewDefault(f)
	res := s.Solve()
	if res.Status != Unsat {
		t.Fatalf("expected UNSAT, got %v", res.Status)
	}
	if res.Stats.Conflicts == 0 || res.Stats.Decisions == 0 || res.Stats.Propagations == 0 {
		t.Fatalf("expected non-zero work: %+v", res.Stats)
	}
	if res.Stats.SolveTime <= 0 {
		t.Fatal("SolveTime should be positive")
	}
	if s.Stats().Conflicts != res.Stats.Conflicts {
		t.Fatal("lifetime stats should match single-call stats for a fresh solver")
	}
}

func TestConflictActivityExposed(t *testing.T) {
	f := pigeonhole(5, 4)
	s := NewDefault(f)
	s.Solve()
	total := 0.0
	for v := cnf.Var(1); int(v) <= f.NumVars; v++ {
		total += s.VarActivity(v)
	}
	if total == 0 {
		t.Fatal("conflict activity should be positive after an UNSAT run")
	}
	acts := s.ConflictActivities()
	if len(acts) != f.NumVars+1 {
		t.Fatalf("ConflictActivities length = %d, want %d", len(acts), f.NumVars+1)
	}
	sum := 0.0
	for _, a := range acts {
		sum += a
	}
	if sum != total {
		t.Fatalf("activity sum mismatch: %v vs %v", sum, total)
	}
	if s.VarActivity(0) != 0 || s.VarActivity(cnf.Var(f.NumVars+10)) != 0 {
		t.Fatal("out-of-range VarActivity should be 0")
	}
}

func TestDeterminism(t *testing.T) {
	f := randomFormula(rand.New(rand.NewSource(7)), 40, 170)
	r1 := NewDefault(f).Solve()
	r2 := NewDefault(f).Solve()
	if r1.Status != r2.Status || r1.Stats.Conflicts != r2.Stats.Conflicts ||
		r1.Stats.Decisions != r2.Stats.Decisions || r1.Stats.Propagations != r2.Stats.Propagations {
		t.Fatalf("solver is not deterministic: %+v vs %+v", r1.Stats, r2.Stats)
	}
}

func TestDPLLSimple(t *testing.T) {
	f := cnf.New(3)
	f.AddClauseLits(1, 2, 3)
	f.AddClauseLits(-1)
	f.AddClauseLits(-2)
	d := NewDPLL(f)
	res := d.Solve()
	if res.Status != Sat || res.Model.Value(3) != cnf.True {
		t.Fatalf("DPLL got %v %v", res.Status, res.Model)
	}
	f.AddClauseLits(-3)
	if res := NewDPLL(f).Solve(); res.Status != Unsat {
		t.Fatalf("DPLL expected UNSAT, got %v", res.Status)
	}
}

func TestDPLLNodeLimit(t *testing.T) {
	f := pigeonhole(7, 6)
	d := NewDPLL(f)
	d.MaxNodes = 10
	if res := d.Solve(); res.Status != Unknown {
		t.Fatalf("expected Unknown with tiny node limit, got %v", res.Status)
	}
}

// randomFormula builds a random 3-SAT-ish formula.
func randomFormula(rng *rand.Rand, numVars, numClauses int) *cnf.Formula {
	f := cnf.New(numVars)
	for i := 0; i < numClauses; i++ {
		width := 3
		c := make(cnf.Clause, 0, width)
		for j := 0; j < width; j++ {
			v := cnf.Var(rng.Intn(numVars) + 1)
			c = append(c, cnf.NewLit(v, rng.Intn(2) == 0))
		}
		f.AddClause(c)
	}
	return f
}

// TestCDCLAgreesWithDPLL cross-checks the CDCL solver against the reference
// DPLL solver on many small random formulas.
func TestCDCLAgreesWithDPLL(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		nv := 5 + rng.Intn(10)
		nc := 5 + rng.Intn(40)
		f := randomFormula(rng, nv, nc)
		cd := NewDefault(f).Solve()
		dp := NewDPLL(f).Solve()
		if cd.Status != dp.Status {
			t.Fatalf("disagreement on formula %d:\n%s\nCDCL=%v DPLL=%v",
				i, f.DIMACSString(), cd.Status, dp.Status)
		}
		if cd.Status == Sat && !f.IsSatisfiedBy(cd.Model) {
			t.Fatalf("CDCL model does not satisfy formula %d", i)
		}
	}
}

// Property-based version of the cross-check driven by testing/quick.
func TestCDCLAgreesWithDPLLProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := randomFormula(rng, 4+rng.Intn(8), 4+rng.Intn(30))
		cd := NewDefault(f).Solve()
		dp := NewDPLL(f).Solve()
		if cd.Status != dp.Status {
			return false
		}
		if cd.Status == Sat {
			return f.IsSatisfiedBy(cd.Model)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestLuby(t *testing.T) {
	want := []uint64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(uint64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestEffortCost(t *testing.T) {
	st := Stats{Conflicts: 10, Propagations: 100, Decisions: 20, SolveTime: 2 * time.Second}
	if EffortCost(st, CostConflicts) != 10 {
		t.Fatal("CostConflicts")
	}
	if EffortCost(st, CostPropagations) != 100 {
		t.Fatal("CostPropagations")
	}
	if EffortCost(st, CostDecisions) != 20 {
		t.Fatal("CostDecisions")
	}
	if EffortCost(st, CostWallTime) != 2 {
		t.Fatal("CostWallTime")
	}
	if EffortCost(st, CostMetric(99)) != 10 {
		t.Fatal("unknown metric should fall back to conflicts")
	}
}

func TestCostMetricString(t *testing.T) {
	names := map[CostMetric]string{
		CostConflicts:    "conflicts",
		CostPropagations: "propagations",
		CostDecisions:    "decisions",
		CostWallTime:     "seconds",
	}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("%v.String() = %q, want %q", int(m), m.String(), want)
		}
	}
	if CostMetric(42).String() == "" {
		t.Fatal("unknown metric should still produce a string")
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Fatal("Status.String misbehaves")
	}
}

func TestVerify(t *testing.T) {
	f := cnf.New(2)
	f.AddClauseLits(1, -2)
	good := cnf.NewAssignment(2)
	good.Set(1, cnf.True)
	good.Set(2, cnf.True)
	bad := cnf.NewAssignment(2)
	bad.Set(1, cnf.False)
	bad.Set(2, cnf.True)
	if !Verify(f, good) || Verify(f, bad) {
		t.Fatal("Verify misbehaves")
	}
}

func TestSolverDescribe(t *testing.T) {
	f := cnf.New(2)
	f.AddClauseLits(1, 2)
	s := NewDefault(f)
	if s.Describe() == "" {
		t.Fatal("Describe should not be empty")
	}
	if s.NumVars() != 2 {
		t.Fatalf("NumVars = %d", s.NumVars())
	}
}

func TestPhaseSavingOptionsVariants(t *testing.T) {
	f := pigeonhole(6, 5)
	for _, opts := range []Options{
		DefaultOptions(),
		{VarDecay: 0.99, ClauseDecay: 0.999, RestartBase: 50, MaxLearnedFactor: 2, PhaseSaving: false, DefaultPhase: true, MinimizeLearned: false},
	} {
		s := New(f, opts)
		if res := s.Solve(); res.Status != Unsat {
			t.Fatalf("PHP(6,5) should be UNSAT under opts %+v, got %v", opts, res.Status)
		}
	}
}

func TestZeroOptionsFallBackToDefaults(t *testing.T) {
	f := cnf.New(1)
	f.AddClauseLits(1)
	s := New(f, Options{})
	if res := s.Solve(); res.Status != Sat {
		t.Fatal("zero options should fall back to defaults and solve")
	}
}

// TestBudgetForCost checks the pruning-proxy budget construction: the
// budget must guarantee that a truncated solve's cost strictly exceeds the
// allowance, and metrics without a deterministic counter must stay
// unlimited.
func TestBudgetForCost(t *testing.T) {
	if b := BudgetForCost(CostConflicts, 100); b.MaxConflicts != 101 || b.MaxPropagations != 0 {
		t.Fatalf("conflicts budget: %+v", b)
	}
	if b := BudgetForCost(CostConflicts, 99.2); b.MaxConflicts != 101 {
		t.Fatalf("fractional allowance must round up: %+v", b)
	}
	if b := BudgetForCost(CostPropagations, 7); b.MaxPropagations != 8 || b.MaxConflicts != 0 {
		t.Fatalf("propagations budget: %+v", b)
	}
	for _, m := range []CostMetric{CostDecisions, CostWallTime} {
		if b := BudgetForCost(m, 100); b != (Budget{}) {
			t.Fatalf("metric %v must yield an unlimited budget: %+v", m, b)
		}
	}
	if b := BudgetForCost(CostConflicts, 0); b != (Budget{}) {
		t.Fatalf("zero allowance: %+v", b)
	}
	if b := BudgetForCost(CostConflicts, -5); b != (Budget{}) {
		t.Fatalf("negative allowance: %+v", b)
	}
	if b := BudgetForCost(CostConflicts, math.Inf(1)); b != (Budget{}) {
		t.Fatalf("infinite allowance: %+v", b)
	}
}

// TestBudgetTightenedBy checks the element-wise combination with zero
// meaning unlimited.
func TestBudgetTightenedBy(t *testing.T) {
	a := Budget{MaxConflicts: 100, MaxTime: time.Second}
	b := Budget{MaxConflicts: 50, MaxPropagations: 10}
	got := a.TightenedBy(b)
	want := Budget{MaxConflicts: 50, MaxPropagations: 10, MaxTime: time.Second}
	if got != want {
		t.Fatalf("TightenedBy = %+v, want %+v", got, want)
	}
	if got := (Budget{}).TightenedBy(Budget{}); got != (Budget{}) {
		t.Fatalf("zero budgets: %+v", got)
	}
	if got := b.TightenedBy(a); got != want {
		t.Fatalf("TightenedBy must be symmetric here: %+v", got)
	}
}
