package solver

import "fmt"

// The clause arena is the flat storage behind the CDCL solver: every clause
// lives in one packed []ilit slice, addressed by its offset (a cref), with a
// three-word header followed by the literals.  Compared with the seed's
// individually heap-allocated clauses this removes a pointer dereference
// (and a likely cache miss) from every watch-list visit, lets snapshots and
// Reset restore the whole clause database with two flat copies, and makes
// clause garbage collection an explicit arena operation instead of tracing
// GC work.
//
// Layout of one clause at offset c:
//
//	word c+0: size<<2 | learned bit (0x1) | dead bit (0x2)
//	word c+1: LBD (literal block distance, 0 for original clauses)
//	word c+2: index of the clause's activity in Solver.clauseAct
//	word c+3 ... c+3+size-1: the literals
//
// Clause activities are float64 and live out-of-line in Solver.clauseAct
// (indexed by the header's activity word) so the arena stays a plain int32
// slice and activity rescaling does not touch clause memory.
//
// The dead bit is only ever set by the tiered reducer (Options.ClauseTier):
// it marks a removed clause's words as garbage until the next compaction.
// The legacy reducer detaches clauses but leaves their words in place, just
// as the pointer implementation left them to the GC; Reset truncates the
// arena back to the original clauses, which is where that garbage is
// reclaimed.

// cref addresses a clause: the arena offset of its header word.  The
// allocation order of clauses is exactly their cref order, which is what the
// deterministic reduceDB tie-break sorts by.
type cref int32

// nullRef is the absent clause (a nil reason).
const nullRef cref = -1

const (
	hdrWords   = 3
	learnedBit = 1
	deadBit    = 2
	flagBits   = 2
	// maxArenaWords bounds the arena so crefs (and the watch-list binary
	// tag, which uses the sign bit) always fit in an int32.
	maxArenaWords = 1<<31 - 1
)

// arena is the packed clause store.
type arena struct {
	data []ilit
}

// alloc appends a clause and returns its cref.
func (a *arena) alloc(lits []ilit, learned bool, actIdx int32) cref {
	if len(a.data)+hdrWords+len(lits) > maxArenaWords {
		panic(fmt.Sprintf("solver: clause arena overflow (%d words)", len(a.data)))
	}
	cr := cref(len(a.data))
	hdr := ilit(int32(len(lits)) << flagBits)
	if learned {
		hdr |= learnedBit
	}
	a.data = append(a.data, hdr, 0, ilit(actIdx))
	a.data = append(a.data, lits...)
	return cr
}

func (a *arena) size(c cref) int32      { return int32(a.data[c]) >> flagBits }
func (a *arena) isLearned(c cref) bool  { return a.data[c]&learnedBit != 0 }
func (a *arena) isDead(c cref) bool     { return a.data[c]&deadBit != 0 }
func (a *arena) markDead(c cref)        { a.data[c] |= deadBit }
func (a *arena) lbd(c cref) int32       { return int32(a.data[c+1]) }
func (a *arena) setLBD(c cref, v int32) { a.data[c+1] = ilit(v) }
func (a *arena) actIdx(c cref) int32    { return int32(a.data[c+2]) }

// lits returns the literal words of the clause as a subslice of the arena
// (no copy; the caller must not retain it across allocations).
func (a *arena) lits(c cref) []ilit {
	off := int32(c) + hdrWords
	return a.data[off : off+a.size(c)]
}

// bytes reports the arena's current size in bytes (the ArenaBytes gauge).
func (a *arena) bytes() uint64 { return uint64(len(a.data)) * 4 }

// newClause allocates a clause in the arena with a fresh activity slot and
// keeps the ArenaBytes gauge current.
func (s *Solver) newClause(lits []ilit, learned bool) cref {
	actIdx := int32(len(s.clauseAct))
	s.clauseAct = append(s.clauseAct, 0)
	cr := s.ar.alloc(lits, learned, actIdx)
	s.stats.ArenaBytes = s.ar.bytes()
	return cr
}

// bumpClause raises a clause's activity, replicating the pointer
// implementation's rescale exactly: the 1e20 trigger tests the bumped clause
// (which may be an original), but only the learned clauses and clauseInc are
// scaled down — a just-learned clause is bumped before it joins s.learnts
// and therefore escapes its own rescale, as it always has.
func (s *Solver) bumpClause(c cref) {
	ai := s.ar.actIdx(c)
	s.clauseAct[ai] += s.clauseInc
	if s.clauseAct[ai] > 1e20 {
		for _, lc := range s.learnts {
			s.clauseAct[s.ar.actIdx(lc)] *= 1e-20
		}
		s.clauseInc *= 1e-20
	}
}

// compactLearned slides the live learned clauses over the dead ones and
// remaps every cref that may reference the moved region (learned list,
// reasons, watch lists).  Original clauses sit below arenaBase and never
// move.  Only the tiered reducer creates dead clauses, so this never runs —
// and never perturbs crefs — in the bit-identical ClauseTier-off mode.
func (s *Solver) compactLearned() {
	base := int32(s.arenaBase)
	data := s.ar.data
	remap := make(map[cref]cref, len(s.learnts))
	w := base
	for r := base; r < int32(len(data)); {
		sz := int32(data[r]) >> flagBits
		next := r + hdrWords + sz
		if data[r]&deadBit == 0 {
			remap[cref(r)] = cref(w)
			if w != r {
				copy(data[w:w+hdrWords+sz], data[r:next])
			}
			w += hdrWords + sz
		}
		r = next
	}
	s.ar.data = data[:w]
	s.garbageWords = 0
	s.stats.ArenaBytes = s.ar.bytes()
	for i, lc := range s.learnts {
		s.learnts[i] = remap[lc]
	}
	// Originals added after the first solve live above arenaBase too.
	for i, oc := range s.clauses {
		if oc >= cref(base) {
			s.clauses[i] = remap[oc]
		}
	}
	for v, r := range s.reason {
		if r != nullRef && r >= cref(base) {
			s.reason[v] = remap[r]
		}
	}
	for l := range s.watches {
		ws := s.watches[l]
		for i := range ws {
			if c := ws[i].clause(); c >= cref(base) {
				ws[i].ref = remap[c] | (ws[i].ref & binaryFlag)
			}
		}
	}
}
