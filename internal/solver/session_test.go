package solver

import (
	"math/rand"
	"testing"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/cnfgen"
)

// randomAssumptions draws k distinct-variable assumption literals.
func randomAssumptions(rng *rand.Rand, numVars, k int) []cnf.Lit {
	perm := rng.Perm(numVars)
	out := make([]cnf.Lit, 0, k)
	for _, v := range perm[:k] {
		out = append(out, cnf.NewLit(cnf.Var(v+1), rng.Intn(2) == 1))
	}
	return out
}

// statsEqual compares every deterministic counter (SolveTime is wall clock
// and excluded).
func statsEqual(a, b Stats) bool {
	return a.Decisions == b.Decisions &&
		a.Propagations == b.Propagations &&
		a.Conflicts == b.Conflicts &&
		a.Restarts == b.Restarts &&
		a.Learned == b.Learned &&
		a.Removed == b.Removed &&
		a.MaxLevel == b.MaxLevel
}

func modelsEqual(a, b cnf.Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestResetEquivalentToFresh is the load-bearing regression test of the
// session API: a solver reused via Reset must return exactly the same
// result — status, model, per-call statistics, lifetime statistics and
// conflict activities — as a freshly constructed solver, for every query of
// a long mixed SAT/UNSAT sequence.  The Monte Carlo estimation relies on
// this equivalence: per-worker solver reuse in the pdsat runner must not
// change the observed subproblem costs.
func TestResetEquivalentToFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	php, err := cnfgen.Pigeonhole(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := cnfgen.Random3SAT(rng, 80, 4.1)
	if err != nil {
		t.Fatal(err)
	}
	formulas := map[string]*cnf.Formula{"php(6,5)": php, "rand3sat": r3}

	for name, f := range formulas {
		reused := NewDefault(f)
		for call := 0; call < 12; call++ {
			var assumptions []cnf.Lit
			if call > 0 { // first call: no assumptions
				assumptions = randomAssumptions(rng, f.NumVars, 1+rng.Intn(6))
			}
			fresh := NewDefault(f)
			want := fresh.SolveWithAssumptions(assumptions)

			reused.Reset()
			got := reused.SolveWithAssumptions(assumptions)

			if got.Status != want.Status {
				t.Fatalf("%s call %d: status %v, fresh solver got %v", name, call, got.Status, want.Status)
			}
			if !statsEqual(got.Stats, want.Stats) {
				t.Fatalf("%s call %d: per-call stats diverge:\nreused: %+v\nfresh:  %+v",
					name, call, got.Stats, want.Stats)
			}
			if !statsEqual(reused.Stats(), fresh.Stats()) {
				t.Fatalf("%s call %d: lifetime stats diverge:\nreused: %+v\nfresh:  %+v",
					name, call, reused.Stats(), fresh.Stats())
			}
			if !modelsEqual(got.Model, want.Model) {
				t.Fatalf("%s call %d: models diverge", name, call)
			}
			if got.Status == Sat && !Verify(f, got.Model) {
				t.Fatalf("%s call %d: model does not satisfy the formula", name, call)
			}
			ga, wa := reused.ConflictActivities(), fresh.ConflictActivities()
			for v := range ga {
				if ga[v] != wa[v] {
					t.Fatalf("%s call %d: conflict activity diverges at var %d: %v vs %v",
						name, call, v, ga[v], wa[v])
				}
			}
		}
	}
}

// TestResetRestoresBudgetBehaviour checks that an effort budget applies per
// query when the solver is Reset between queries (the statistics are rebased
// to the construction baseline).
func TestResetRestoresBudgetBehaviour(t *testing.T) {
	f, err := cnfgen.Pigeonhole(7, 6)
	if err != nil {
		t.Fatal(err)
	}
	s := NewDefault(f)
	s.SetBudget(Budget{MaxConflicts: 50})
	first := s.Solve()
	if !first.Interrupted {
		t.Skip("PHP(7,6) solved within 50 conflicts; budget test not meaningful")
	}
	s.Reset()
	second := s.Solve()
	if !second.Interrupted {
		t.Fatal("budget should also interrupt the second (reset) query")
	}
	if first.Stats.Conflicts != second.Stats.Conflicts {
		t.Fatalf("budgeted queries diverge: %d vs %d conflicts",
			first.Stats.Conflicts, second.Stats.Conflicts)
	}
}

// TestIncrementalRetainsLearnedClauses checks MiniSat-style reuse: without a
// Reset, learned clauses and activities persist across calls, and repeated
// identical UNSAT queries get cheaper (the second proof reuses the first
// proof's learned clauses).
func TestIncrementalRetainsLearnedClauses(t *testing.T) {
	f, err := cnfgen.Pigeonhole(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := NewDefault(f)
	first := s.Solve()
	if first.Status != Unsat {
		t.Fatalf("PHP(6,5) must be UNSAT, got %v", first.Status)
	}
	if first.Stats.Conflicts == 0 {
		t.Fatal("expected a non-trivial proof")
	}
	second := s.Solve()
	if second.Status != Unsat {
		t.Fatalf("second call: got %v", second.Status)
	}
	if second.Stats.Conflicts >= first.Stats.Conflicts {
		t.Fatalf("retained learned clauses should shorten the second proof: %d vs %d conflicts",
			second.Stats.Conflicts, first.Stats.Conflicts)
	}
}

// TestBaseStats checks that the construction effort is exposed and restored
// by Reset.
func TestBaseStats(t *testing.T) {
	f := cnf.New(3)
	f.AddClauseLits(1)
	f.AddClauseLits(-1, 2)
	f.AddClauseLits(-2, 3)
	s := NewDefault(f)
	base := s.BaseStats()
	if base.Propagations == 0 {
		t.Fatal("unit chain must be propagated at construction")
	}
	if s.Stats() != base {
		t.Fatalf("pristine stats %+v != base stats %+v", s.Stats(), base)
	}
	res := s.Solve()
	if res.Status != Sat {
		t.Fatalf("got %v", res.Status)
	}
	s.Reset()
	if s.Stats() != base {
		t.Fatalf("reset stats %+v != base stats %+v", s.Stats(), base)
	}
}

// TestResetAfterInterrupt checks that Reset clears a pending interrupt.
func TestResetAfterInterrupt(t *testing.T) {
	f, err := cnfgen.Pigeonhole(7, 6)
	if err != nil {
		t.Fatal(err)
	}
	s := NewDefault(f)
	s.Interrupt()
	res := s.Solve()
	if !res.Interrupted {
		t.Fatal("expected interrupted result")
	}
	s.Reset()
	s.SetBudget(Budget{})
	res = s.Solve()
	if res.Status != Unsat {
		t.Fatalf("after Reset the solver must work again, got %v (interrupted=%v)",
			res.Status, res.Interrupted)
	}
}

// TestResetDropsPhantomVariables checks that variables created by
// assumptions over fresh variables do not survive a Reset: a later query
// must see exactly the variables a freshly constructed solver would.
func TestResetDropsPhantomVariables(t *testing.T) {
	f := cnf.New(3)
	f.AddClauseLits(1, 2)
	f.AddClauseLits(-2, 3)
	reused := NewDefault(f)
	// Assume a literal over variable 5, which the formula does not contain.
	phantom := []cnf.Lit{cnf.NewLit(5, false)}
	if res := reused.SolveWithAssumptions(phantom); res.Status != Sat {
		t.Fatalf("got %v", res.Status)
	}
	if reused.NumVars() != 5 {
		t.Fatalf("assumption should have grown the solver to 5 vars, got %d", reused.NumVars())
	}
	reused.Reset()
	if reused.NumVars() != 3 {
		t.Fatalf("Reset should drop phantom variables, got %d vars", reused.NumVars())
	}
	fresh := NewDefault(f)
	want, got := fresh.Solve(), reused.Solve()
	if got.Status != want.Status || !statsEqual(got.Stats, want.Stats) || !modelsEqual(got.Model, want.Model) {
		t.Fatalf("post-reset query diverges from fresh solver:\nreused: %+v model %v\nfresh:  %+v model %v",
			got.Stats, got.Model, want.Stats, want.Model)
	}
}

// TestAddClauseBeforeSolveJoinsBaseline checks that clauses added before the
// first query survive a Reset.
func TestAddClauseBeforeSolveJoinsBaseline(t *testing.T) {
	f := cnf.New(2)
	f.AddClauseLits(1, 2)
	s := NewDefault(f)
	if !s.AddClause(cnf.Clause{cnf.NewLit(1, false)}) { // force x1=false
		t.Fatal("AddClause failed")
	}
	res := s.Solve()
	if res.Status != Sat || res.Model.Value(1) != cnf.False {
		t.Fatalf("unexpected result %v", res.Status)
	}
	s.Reset()
	res = s.Solve()
	if res.Status != Sat || res.Model.Value(1) != cnf.False {
		t.Fatal("clause added before the first solve must survive Reset")
	}
}
