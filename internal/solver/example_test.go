package solver_test

import (
	"fmt"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// ExampleSolver_Reset shows the pristine session mode: one solver answers a
// sequence of assumption queries, each solved exactly as a freshly built
// solver would solve it, without rebuilding the clause database in between.
func ExampleSolver_Reset() {
	f := cnf.New(3)
	f.AddClauseLits(1, 2)  //  x1 ∨ x2
	f.AddClauseLits(-1, 3) // ¬x1 ∨ x3
	f.AddClauseLits(-2, 3) // ¬x2 ∨ x3

	s := solver.NewDefault(f)
	queries := [][]cnf.Lit{
		nil,                    // plain satisfiability
		{cnf.NewLit(3, false)}, // assume ¬x3: forces a conflict
		{cnf.NewLit(1, true)},  // assume x1
		{cnf.NewLit(2, false), cnf.NewLit(1, false)}, // assume ¬x2, ¬x1
	}
	for _, assumptions := range queries {
		s.Reset()
		res := s.SolveWithAssumptions(assumptions)
		fmt.Println(res.Status)
	}
	// Output:
	// SAT
	// UNSAT
	// SAT
	// UNSAT
}
