// Package solver implements a complete CDCL (conflict-driven clause
// learning) SAT solver in the MiniSat tradition, plus a small reference DPLL
// solver used for cross-checking.
//
// The solver is deterministic: given the same formula, the same assumptions
// and the same options it always performs the same search, which is a
// requirement of the Monte Carlo estimation method of Semenov & Zaikin (the
// observed per-subproblem costs must be samples of a single well-defined
// random variable).  All tie-breaking is by variable index; no randomized
// decisions are made.
//
// Besides the usual machinery (two-watched-literal propagation, first-UIP
// clause learning with minimization, VSIDS variable activities, phase
// saving, Luby restarts, learned-clause database reduction, assumption
// solving) the solver exposes per-variable conflict activity via
// VarActivity, which the tabu-search heuristic of the paper uses to pick new
// neighbourhood centres.
//
// # Clause storage
//
// Clauses live in a flat arena (see arena.go): one packed []int32 slice
// holding, per clause, a small header followed by the literals, addressed by
// offset (cref).  Watch lists hold 8-byte {cref, blocker} entries with
// binary clauses specialized in place (watch.go).  The layout is a pure
// representation change: with Options.ClauseTier off, the search — every
// decision, conflict, learned clause, restart and statistic — is bit-for-bit
// identical to the original pointer-based implementation, which is pinned by
// golden and differential tests.  ClauseTier switches the learned-clause
// management to LBD-tiered reduction (reduce.go); it changes the search and
// is gated by benchmarks, not bit-identity.
//
// # Sessions: reusing one solver for many subproblems
//
// A solver may be used as a long-lived session instead of being rebuilt for
// every query.  Two reuse modes are supported:
//
//   - Incremental (MiniSat-style): simply call SolveWithAssumptions
//     repeatedly.  Assumptions are applied as pseudo-decisions, never as
//     clauses, so every learned clause is implied by the formula alone and
//     remains valid for later calls under different assumptions.  Learned
//     clauses, variable activities and saved phases all carry over, which
//     typically makes later related queries cheaper — at the price that the
//     cost of a query now depends on the query history.
//
//   - Pristine (Reset): call Reset between queries.  Reset restores the
//     exact state the solver had right after construction — clause literal
//     order, watch lists, root-level trail, activities, phases and
//     statistics — so the next SolveWithAssumptions call performs literally
//     the same search a freshly constructed solver would, while skipping
//     the allocation and root-level propagation work of New.  This is what
//     the Monte Carlo estimation of the paper needs: the observed cost of a
//     subproblem must be a sample of a well-defined random variable,
//     independent of which subproblems happened to be solved before it on
//     the same worker.
//
// The pristine snapshot is captured lazily at the first Solve/Reset call;
// it costs one O(formula) copy and roughly doubles the memory held per
// solver, which is negligible next to the construction cost it saves in
// session use and acceptable for one-shot solves.  With the arena layout the
// snapshot and its restoration are flat slice copies; restoring also
// truncates the arena back to the original clauses, which reclaims all
// learned-clause memory in one step.
package solver

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cnf"
)

// Status is the outcome of a solving attempt.
type Status int

// Possible solver outcomes.
const (
	// Unknown means the solver stopped before reaching a conclusion
	// (budget exhausted or interrupted).
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula was proved unsatisfiable.
	Unsat
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// Stats holds counters accumulated during solving.
type Stats struct {
	Decisions    uint64 `json:"decisions"`
	Propagations uint64 `json:"propagations"`
	Conflicts    uint64 `json:"conflicts"`
	Restarts     uint64 `json:"restarts"`
	Learned      uint64 `json:"learned"`
	Removed      uint64 `json:"removed"`
	// ReduceDBs counts learned-clause database reductions (either policy).
	ReduceDBs uint64 `json:"reduce_dbs"`
	// LearnedCore, LearnedMid and LearnedLocal count learned clauses by the
	// LBD tier assigned at learn time (core ≤ 3, mid ≤ 6, local above).
	// The classification is purely observational and identical whether or
	// not Options.ClauseTier is enabled.
	LearnedCore  uint64 `json:"learned_core"`
	LearnedMid   uint64 `json:"learned_mid"`
	LearnedLocal uint64 `json:"learned_local"`
	// ArenaBytes is a gauge, not a counter: the current size of the clause
	// arena in bytes.  In a per-call Result it is the size at the end of
	// the call; Add keeps the maximum, reporting the peak across sessions.
	ArenaBytes uint64 `json:"arena_bytes"`
	MaxLevel   int    `json:"max_level"`
	// SolveTime is the wall-clock duration of the last Solve call.
	SolveTime time.Duration `json:"solve_time_ns"`
}

// Options configure the solver.  The zero value is usable; DefaultOptions
// fills in the standard parameters.
type Options struct {
	// VarDecay is the multiplicative decay of VSIDS activities (0,1).
	VarDecay float64
	// ClauseDecay is the multiplicative decay of clause activities (0,1).
	ClauseDecay float64
	// RestartBase is the Luby restart unit, in conflicts.
	RestartBase uint64
	// MaxLearnedFactor bounds the learned-clause database to
	// MaxLearnedFactor * number of original clauses before reduction.
	MaxLearnedFactor float64
	// PhaseSaving enables progress saving of variable polarities.
	PhaseSaving bool
	// DefaultPhase is the polarity used for a variable that has never been
	// assigned (false mimics MiniSat's default).
	DefaultPhase bool
	// MinimizeLearned enables self-subsumption minimization of learned
	// clauses.
	MinimizeLearned bool
	// ClauseTier switches learned-clause management to Glucose-style
	// LBD-tiered reduction: core clauses (LBD ≤ 3) and binaries are never
	// removed, reduction drops the worst half of the rest (highest LBD,
	// then lowest activity), the database limit grows geometrically, and
	// the arena compacts removed clauses.  Off (the default) keeps the
	// activity-based policy, whose search is bit-for-bit identical to the
	// seed implementation.
	ClauseTier bool
}

// DefaultOptions returns the standard solver configuration.
func DefaultOptions() Options {
	return Options{
		VarDecay:         0.95,
		ClauseDecay:      0.999,
		RestartBase:      100,
		MaxLearnedFactor: 3.0,
		PhaseSaving:      true,
		DefaultPhase:     false,
		MinimizeLearned:  true,
	}
}

// Budget limits the effort of a single Solve call.  A zero field means
// "unlimited".
type Budget struct {
	// MaxConflicts stops the search after this many conflicts.
	MaxConflicts uint64
	// MaxPropagations stops the search after this many propagations.
	MaxPropagations uint64
	// MaxTime stops the search after this wall-clock duration.
	MaxTime time.Duration
}

// TightenedBy returns the element-wise tighter of the two budgets, treating
// a zero field as unlimited.  The evaluation engine uses it to combine the
// configured per-subproblem safety budget with the per-stage allowance
// derived from the pruning incumbent.
func (b Budget) TightenedBy(o Budget) Budget {
	out := b
	if o.MaxConflicts > 0 && (out.MaxConflicts == 0 || o.MaxConflicts < out.MaxConflicts) {
		out.MaxConflicts = o.MaxConflicts
	}
	if o.MaxPropagations > 0 && (out.MaxPropagations == 0 || o.MaxPropagations < out.MaxPropagations) {
		out.MaxPropagations = o.MaxPropagations
	}
	if o.MaxTime > 0 && (out.MaxTime == 0 || o.MaxTime < out.MaxTime) {
		out.MaxTime = o.MaxTime
	}
	return out
}

// BudgetForCost returns a Budget that stops a solve once its cost in the
// given metric strictly exceeds the allowance, by budgeting the matching
// counter at ⌈allowance⌉+1.  A solve truncated by this budget therefore has
// cost > allowance — which is what makes it a usable pruning proxy: the
// truncated cost alone already pushes a partial sum over the incumbent
// bound the allowance was derived from.  Metrics without a deterministic
// budget counter (decisions, wall time) and non-positive allowances return
// the zero (unlimited) Budget; wall time is excluded because a timing-based
// truncation would make the observed costs scheduling-dependent.
func BudgetForCost(metric CostMetric, allowance float64) Budget {
	if allowance <= 0 || math.IsInf(allowance, 1) || math.IsNaN(allowance) {
		return Budget{}
	}
	limit := uint64(math.Ceil(allowance)) + 1
	switch metric {
	case CostConflicts:
		return Budget{MaxConflicts: limit}
	case CostPropagations:
		return Budget{MaxPropagations: limit}
	default:
		return Budget{}
	}
}

// Result is the outcome of a Solve call.
type Result struct {
	Status Status
	// Model is a satisfying assignment (indexed by cnf.Var) when Status==Sat.
	Model cnf.Assignment
	// Stats are the statistics accumulated during this call.
	Stats Stats
	// Interrupted reports whether the call ended because Interrupt was
	// called or the budget was exhausted.
	Interrupted bool
}

// internal literal encoding: variable v (0-based) has literals 2v (positive)
// and 2v+1 (negative).
type ilit int32

func mkLit(v int32, positive bool) ilit {
	if positive {
		return ilit(v << 1)
	}
	return ilit(v<<1 | 1)
}

func (l ilit) ivar() int32 { return int32(l) >> 1 }
func (l ilit) sign() bool  { return l&1 == 1 } // true => negative literal
func (l ilit) neg() ilit   { return l ^ 1 }
func (l ilit) external() cnf.Lit {
	v := cnf.Var(l.ivar() + 1)
	return cnf.NewLit(v, !l.sign())
}

func fromExternal(l cnf.Lit) ilit {
	return mkLit(int32(l.Var()-1), l.Positive())
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

type varOrder struct {
	heap     []int32 // binary heap of variable indices
	indices  []int32 // position of variable in heap, -1 if absent
	activity *[]float64
}

// Solver is a CDCL SAT solver.  It is not safe for concurrent use; create
// one solver per goroutine.
type Solver struct {
	opts Options

	numVars   int32
	ar        arena     // packed clause storage (arena.go)
	clauses   []cref    // original clauses
	learnts   []cref    // learned clauses
	clauseAct []float64 // clause activities, indexed by the arena's actIdx
	watches   [][]watch
	assigns   []lbool
	polarity  []bool // saved phases
	reason    []cref
	level     []int32
	trail     []ilit
	trailLim  []int32
	qhead     int
	order     varOrder
	activity  []float64 // VSIDS activity, indexed by internal variable
	confAct   []float64 // cumulative conflict activity (never decayed), per variable
	varInc    float64
	clauseInc float64

	seen []bool

	// arenaBase is the arena length right after construction: everything
	// below it is original clauses (never moved or removed), everything at
	// or above it is the learned region.
	arenaBase int
	// garbageWords counts dead words in the learned region (ClauseTier
	// reductions only); compactLearned reclaims them.
	garbageWords int
	// learntLimit is the tiered reducer's geometric database limit (0 =
	// not yet initialized).
	learntLimit float64

	// Reused scratch buffers (their contents never survive a call).
	learntBuf []ilit  // analyze's learned-clause assembly
	clearBuf  []int32 // analyze's seen-flag clear list
	reduceBuf []cref  // reduceTiered's candidate list
	lbdSeen   []uint64
	lbdStamp  uint64

	okay bool // false once a top-level conflict has been found

	stats     Stats
	budget    Budget
	interrupt atomic.Bool
	startTime time.Time
	deadline  time.Time

	// base is the pristine post-construction snapshot restored by Reset.
	base *snapshot
	// everSolved is set by the first SolveWithAssumptions call; AddClause
	// refreshes the snapshot only while the solver is still pristine.
	everSolved bool
}

// snapshot captures the complete search-relevant state of a solver right
// after construction, so Reset can restore it with plain copies instead of
// re-running New (allocation, clause normalization and root propagation).
// With the flat arena every piece of clause state is a slice of plain
// values, so capture and restore are memcpys.
type snapshot struct {
	numVars    int32
	numClauses int
	numActs    int
	arena      []ilit  // the arena at capture time (original clauses only)
	watch      []watch // flat concatenation of every watch list
	watchLen   []int32 // watch-list length per literal
	assigns    []lbool
	reason     []cref
	trail      []ilit
	stats      Stats
	okay       bool
}

// ensureBase captures the pristine snapshot if it has not been taken yet.
// Capture is lazy — it happens at the first Solve, Reset or BaseStats call —
// so that incremental formula construction via AddClause stays linear
// instead of re-snapshotting after every clause.
func (s *Solver) ensureBase() {
	if s.base == nil {
		s.capture()
	}
}

// capture records the current state as the pristine baseline for Reset.  It
// must only be called while the solver is at decision level 0 and has no
// learned clauses (i.e. before any search).
func (s *Solver) capture() {
	b := &snapshot{
		numVars:    s.numVars,
		numClauses: len(s.clauses),
		numActs:    len(s.clauseAct),
		arena:      append([]ilit(nil), s.ar.data...),
		stats:      s.stats,
		okay:       s.okay,
	}
	total := 0
	for _, ws := range s.watches {
		total += len(ws)
	}
	b.watch = make([]watch, 0, total)
	b.watchLen = make([]int32, len(s.watches))
	for i, ws := range s.watches {
		b.watchLen[i] = int32(len(ws))
		b.watch = append(b.watch, ws...)
	}
	b.assigns = append([]lbool(nil), s.assigns...)
	b.reason = append([]cref(nil), s.reason...)
	b.trail = append([]ilit(nil), s.trail...)
	s.arenaBase = len(b.arena)
	s.base = b
}

// Reset restores the solver to its pristine post-construction state: learned
// clauses are dropped, clause literal order, watch lists, the root-level
// trail, activities, saved phases and statistics are all restored to the
// values they had when New returned.  The next SolveWithAssumptions call
// therefore performs exactly the same search as a freshly constructed
// solver, but without reallocating the clause database or redoing the
// root-level propagation (whose effort stays accounted in the restored
// Stats).
//
// Restoring truncates the arena back to the original clauses — all
// learned-clause memory is reclaimed in one step, which is the session
// analogue of the tiered reducer's compaction.
//
// Clauses added with AddClause after the first Solve call are discarded by
// Reset; add all clauses before solving when the solver is to be reused as a
// pristine session.
//
// The effort budget set by SetBudget is configuration, not search state: it
// survives Reset and applies afresh to each query (the statistics it is
// checked against are rebased to the construction baseline).  Call SetBudget
// with a zero Budget to remove it.
func (s *Solver) Reset() {
	// A nil base here means the solver has never solved (capture happens at
	// the first Solve, and AddClause only invalidates pre-solve), so the
	// state is still pristine and can be captured now.
	s.ensureBase()
	b := s.base
	s.interrupt.Store(false)
	// Drop variables created after construction (by assumptions over fresh
	// variables): a fresh solver would not know them, and leaving them in
	// the decision heap would add phantom decisions and model entries.
	if s.numVars > b.numVars {
		n := b.numVars
		s.watches = s.watches[:2*n]
		s.assigns = s.assigns[:n]
		s.polarity = s.polarity[:n]
		s.reason = s.reason[:n]
		s.level = s.level[:n]
		s.activity = s.activity[:n]
		s.confAct = s.confAct[:n]
		s.seen = s.seen[:n]
		s.numVars = n
	}
	// Restore the arena: truncating to the captured length drops every
	// learned clause (and any post-solve original) in one step, and the
	// copy restores the original literal order (search only permutes
	// literals inside a clause, it never grows or shrinks original
	// clauses).
	s.ar.data = s.ar.data[:len(b.arena)]
	copy(s.ar.data, b.arena)
	s.arenaBase = len(b.arena)
	s.garbageWords = 0
	s.learntLimit = 0
	s.clauses = s.clauses[:b.numClauses]
	s.learnts = s.learnts[:0]
	// A fresh solver starts every clause activity at zero, so restore that
	// (the value only feeds the 1e20 rescale trigger, but a divergent
	// rescale would break the fresh-replay guarantee on very long
	// searches).
	s.clauseAct = s.clauseAct[:b.numActs]
	for i := range s.clauseAct {
		s.clauseAct[i] = 0
	}
	// Restore watch lists.
	woff := 0
	for i := range s.watches {
		n := int(b.watchLen[i])
		if cap(s.watches[i]) < n {
			s.watches[i] = make([]watch, n)
		} else {
			s.watches[i] = s.watches[i][:n]
		}
		copy(s.watches[i], b.watch[woff:woff+n])
		woff += n
	}
	// Restore per-variable state.
	copy(s.assigns, b.assigns)
	copy(s.reason, b.reason)
	for v := range s.level {
		s.level[v] = 0
	}
	for v := range s.polarity {
		s.polarity[v] = s.opts.DefaultPhase
	}
	for v := range s.activity {
		s.activity[v] = 0
	}
	for v := range s.confAct {
		s.confAct[v] = 0
	}
	for v := range s.seen {
		s.seen[v] = false
	}
	s.trail = append(s.trail[:0], b.trail...)
	s.trailLim = s.trailLim[:0]
	s.qhead = len(s.trail)
	s.order.rebuild(s.numVars)
	s.varInc, s.clauseInc = 1.0, 1.0
	s.stats = b.stats
	s.okay = b.okay
}

// BaseStats returns the statistics attributable to construction alone (the
// root-level propagation performed while the clauses were added).  After a
// Reset, Stats() starts from these values, so Stats() minus BaseStats() is
// the effort of the queries since the last Reset.
func (s *Solver) BaseStats() Stats {
	s.ensureBase()
	return s.base.stats
}

// New creates a solver for the given formula.  The formula is copied into
// the solver's internal representation; it is not modified and may be reused
// to create further solvers.
func New(f *cnf.Formula, opts Options) *Solver {
	if opts.VarDecay == 0 {
		opts = DefaultOptions()
	}
	s := &Solver{opts: opts, okay: true, varInc: 1.0, clauseInc: 1.0}
	s.ensureVars(int32(f.NumVars))
	for _, c := range f.Clauses {
		if !s.addClause(c) {
			s.okay = false
		}
	}
	return s
}

// NewDefault creates a solver with DefaultOptions.
func NewDefault(f *cnf.Formula) *Solver { return New(f, DefaultOptions()) }

// NumVars returns the number of variables known to the solver.
func (s *Solver) NumVars() int { return int(s.numVars) }

// SetBudget sets the effort budget for subsequent Solve calls.
func (s *Solver) SetBudget(b Budget) { s.budget = b }

// Interrupt asks the solver to stop as soon as possible.  It is safe to call
// from another goroutine; the current or next Solve call returns a Result
// with Status Unknown and Interrupted set.
func (s *Solver) Interrupt() { s.interrupt.Store(true) }

// ClearInterrupt resets the interrupt flag so the solver can be reused.
func (s *Solver) ClearInterrupt() { s.interrupt.Store(false) }

// Stats returns the statistics accumulated over the lifetime of the solver.
func (s *Solver) Stats() Stats { return s.stats }

// VarActivity returns the cumulative conflict activity of variable v: the
// number of times (weighted by the VSIDS bump at that moment, normalised for
// rescaling) the variable appeared in conflict analysis.  This is the
// "conflict activity" used by the tabu-search getNewCenter heuristic.
func (s *Solver) VarActivity(v cnf.Var) float64 {
	iv := int32(v - 1)
	if iv < 0 || iv >= s.numVars {
		return 0
	}
	return s.confAct[iv]
}

// ConflictActivities returns a copy of the cumulative conflict activities of
// all variables, indexed by cnf.Var (index 0 unused).
func (s *Solver) ConflictActivities() []float64 {
	out := make([]float64, s.numVars+1)
	for v := int32(0); v < s.numVars; v++ {
		out[v+1] = s.confAct[v]
	}
	return out
}

func (s *Solver) ensureVars(n int32) {
	for s.numVars < n {
		s.numVars++
		s.watches = append(s.watches, nil, nil)
		s.assigns = append(s.assigns, lUndef)
		s.polarity = append(s.polarity, s.opts.DefaultPhase)
		s.reason = append(s.reason, nullRef)
		s.level = append(s.level, 0)
		s.activity = append(s.activity, 0)
		s.confAct = append(s.confAct, 0)
		s.seen = append(s.seen, false)
		s.order.insert(s.numVars-1, &s.activity)
	}
}

// addClause adds an original clause; returns false if the solver became
// trivially unsatisfiable.
func (s *Solver) addClause(c cnf.Clause) bool {
	norm, taut := c.Normalize()
	if taut {
		return true
	}
	if len(norm) == 0 {
		return false
	}
	lits := make([]ilit, 0, len(norm))
	for _, l := range norm {
		s.ensureVars(int32(l.Var()))
		il := fromExternal(l)
		switch s.litValue(il) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue // drop false literal (level 0)
		}
		lits = append(lits, il)
	}
	switch len(lits) {
	case 0:
		return false
	case 1:
		if !s.enqueue(lits[0], nullRef) {
			return false
		}
		conf := s.propagate()
		return conf == nullRef
	default:
		cr := s.newClause(lits, false)
		s.clauses = append(s.clauses, cr)
		s.attach(cr)
		return true
	}
}

// AddClause adds a clause to an existing solver (incremental interface).  It
// returns false if the solver is now known to be unsatisfiable at level 0.
//
// Clauses added before the first Solve call become part of the pristine
// baseline restored by Reset; clauses added later remain in effect for
// incremental solving but are discarded by Reset.
func (s *Solver) AddClause(c cnf.Clause) bool {
	if !s.okay {
		return false
	}
	if s.decisionLevel() != 0 {
		s.cancelUntil(0)
	}
	if !s.addClause(c) {
		s.okay = false
	}
	if !s.everSolved {
		// Invalidate the snapshot while still pristine; it is re-captured
		// lazily at the first Solve/Reset/BaseStats call.
		s.base = nil
	}
	return s.okay
}

func (s *Solver) litValue(l ilit) lbool {
	v := s.assigns[l.ivar()]
	if v == lUndef {
		return lUndef
	}
	if l.sign() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) enqueue(l ilit, from cref) bool {
	switch s.litValue(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.ivar()
	if l.sign() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= int(bound); i-- {
		l := s.trail[i]
		v := l.ivar()
		if s.opts.PhaseSaving {
			s.polarity[v] = !l.sign()
		}
		s.assigns[v] = lUndef
		s.reason[v] = nullRef
		s.order.insertIfAbsent(v, &s.activity)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, int32(len(s.trail)))
}

func (s *Solver) pickBranchVar() int32 {
	for {
		v := s.order.removeMin(&s.activity)
		if v < 0 {
			return -1
		}
		if s.assigns[v] == lUndef {
			return v
		}
	}
}

// bump the VSIDS activity of a variable and its cumulative conflict activity.
func (s *Solver) bumpVar(v int32) {
	s.activity[v] += s.varInc
	s.confAct[v]++
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.decrease(v, &s.activity)
}

func (s *Solver) decayVarActivity()    { s.varInc /= s.opts.VarDecay }
func (s *Solver) decayClauseActivity() { s.clauseInc /= s.opts.ClauseDecay }

// analyze performs first-UIP conflict analysis.  It returns the learned
// clause (with the asserting literal first) and the backtrack level.  The
// returned slice is a reused scratch buffer, valid until the next analyze
// call; recordLearned copies it into the arena.
func (s *Solver) analyze(confl cref) ([]ilit, int) {
	learnt := append(s.learntBuf[:0], 0) // placeholder for the asserting literal
	toClear := s.clearBuf[:0]            // every variable whose seen flag we set
	pathC := 0
	var p ilit = -1
	idx := len(s.trail) - 1

	for {
		s.bumpClause(confl)
		for _, q := range s.ar.lits(confl) {
			if q == p {
				// When expanding the reason of p, skip p itself.
				continue
			}
			v := q.ivar()
			if !s.seen[v] && s.level[v] > 0 {
				s.bumpVar(v)
				s.seen[v] = true
				toClear = append(toClear, v)
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Select next literal to look at.
		for !s.seen[s.trail[idx].ivar()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		confl = s.reason[p.ivar()]
		s.seen[p.ivar()] = false
		pathC--
		if pathC <= 0 {
			break
		}
	}
	learnt[0] = p.neg()

	// Clause minimization by self-subsumption with reasons.  It relies on the
	// seen flags still being set for the (non-asserting) learned literals.
	if s.opts.MinimizeLearned {
		learnt = s.minimizeLearned(learnt)
	}

	// Find backtrack level.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].ivar()] > s.level[learnt[maxI].ivar()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].ivar()])
	}

	// Clear every seen flag we set, including those of literals removed by
	// minimization; leaving them set would corrupt later analyses.
	for _, v := range toClear {
		s.seen[v] = false
	}
	s.learntBuf = learnt[:0]
	s.clearBuf = toClear[:0]
	return learnt, btLevel
}

// minimizeLearned removes literals of the learned clause that are implied by
// the remaining ones through their reason clauses (local minimization).
func (s *Solver) minimizeLearned(learnt []ilit) []ilit {
	out := learnt[:1]
	for i := 1; i < len(learnt); i++ {
		l := learnt[i]
		r := s.reason[l.ivar()]
		if r == nullRef {
			out = append(out, l)
			continue
		}
		redundant := true
		for _, q := range s.ar.lits(r) {
			if q == l.neg() || q == l {
				continue
			}
			v := q.ivar()
			if !s.seen[v] && s.level[v] > 0 {
				redundant = false
				break
			}
		}
		if !redundant {
			out = append(out, l)
		}
	}
	return out
}

// computeLBD counts the distinct decision levels among the literals (the
// literal block distance of Glucose).  A stamp array replaces the seed's
// per-call map; the count is identical, without the allocation.
func (s *Solver) computeLBD(lits []ilit) int {
	if len(s.lbdSeen) < int(s.numVars)+1 {
		s.lbdSeen = make([]uint64, s.numVars+1)
		s.lbdStamp = 0
	}
	s.lbdStamp++
	n := 0
	for _, l := range lits {
		lvl := s.level[l.ivar()]
		if s.lbdSeen[lvl] != s.lbdStamp {
			s.lbdSeen[lvl] = s.lbdStamp
			n++
		}
	}
	return n
}

func (s *Solver) recordLearned(lits []ilit) {
	if len(lits) == 1 {
		s.enqueue(lits[0], nullRef)
		return
	}
	lbd := s.computeLBD(lits)
	cr := s.newClause(lits, true)
	s.ar.setLBD(cr, int32(lbd))
	s.bumpClause(cr)
	s.learnts = append(s.learnts, cr)
	s.stats.Learned++
	switch {
	case lbd <= coreLBD:
		s.stats.LearnedCore++
	case lbd <= midLBD:
		s.stats.LearnedMid++
	default:
		s.stats.LearnedLocal++
	}
	s.attach(cr)
	s.enqueue(lits[0], cr)
}

// luby returns the Luby sequence value for index i (1-based) with unit base:
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
func luby(i uint64) uint64 {
	x := i - 1 // 0-based index, as in MiniSat
	size, seq := uint64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return 1 << seq
}

func (s *Solver) outOfBudget() bool {
	if s.interrupt.Load() {
		return true
	}
	if s.budget.MaxConflicts > 0 && s.stats.Conflicts >= s.budget.MaxConflicts {
		return true
	}
	if s.budget.MaxPropagations > 0 && s.stats.Propagations >= s.budget.MaxPropagations {
		return true
	}
	//pdsat:nondeterministic Budget.MaxTime is an explicitly wall-clock limit; deterministic truncation uses the conflict/propagation budgets
	if !s.deadline.IsZero() && s.stats.Conflicts%64 == 0 && time.Now().After(s.deadline) {
		return true
	}
	return false
}

// search runs the CDCL loop until a conclusion, a restart, or budget
// exhaustion.  maxConflicts is the restart threshold (0 = no restart).
func (s *Solver) search(maxConflicts uint64, assumptions []ilit) (Status, bool) {
	conflictsAtStart := s.stats.Conflicts
	for {
		confl := s.propagate()
		if confl != nullRef {
			s.stats.Conflicts++
			if s.decisionLevel() == 0 {
				s.okay = false
				return Unsat, false
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			s.recordLearned(learnt)
			s.decayVarActivity()
			s.decayClauseActivity()
			if s.outOfBudget() {
				return Unknown, true
			}
			if maxConflicts > 0 && s.stats.Conflicts-conflictsAtStart >= maxConflicts {
				// Restart: back to level 0; assumptions are re-applied as
				// pseudo-decisions on the next descent.
				s.cancelUntil(0)
				return Unknown, false
			}
			continue
		}
		// No conflict.
		s.maybeReduce()
		if s.outOfBudget() {
			return Unknown, true
		}
		// Apply assumptions as pseudo-decisions.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.litValue(a) {
			case lTrue:
				s.newDecisionLevel()
				continue
			case lFalse:
				// Assumptions conflict with the formula.
				return Unsat, false
			default:
				s.newDecisionLevel()
				s.enqueue(a, nullRef)
				continue
			}
		}
		v := s.pickBranchVar()
		if v < 0 {
			return Sat, false
		}
		s.stats.Decisions++
		s.newDecisionLevel()
		if dl := s.decisionLevel(); dl > s.stats.MaxLevel {
			s.stats.MaxLevel = dl
		}
		s.enqueue(mkLit(v, s.polarity[v]), nullRef)
	}
}

// Solve runs the solver to completion (or until the budget/interrupt stops
// it) with no assumptions.
func (s *Solver) Solve() Result { return s.SolveWithAssumptions(nil) }

// SolveWithAssumptions solves the formula under the given assumption
// literals.  Assumptions are not added as clauses: a subsequent call without
// them sees the original formula (plus learned clauses, which remain valid).
func (s *Solver) SolveWithAssumptions(assumptions []cnf.Lit) (res Result) {
	s.ensureBase()
	s.everSolved = true
	//pdsat:nondeterministic start time only anchors the MaxTime deadline and SolveTime reporting
	s.startTime = time.Now()
	if s.budget.MaxTime > 0 {
		s.deadline = s.startTime.Add(s.budget.MaxTime)
	} else {
		s.deadline = time.Time{}
	}
	startStats := s.stats
	res = Result{Status: Unknown}
	defer func() {
		res.Stats = diffStats(s.stats, startStats)
		//pdsat:nondeterministic SolveTime is reporting-only; cost metrics used for F default to solver counters
		res.Stats.SolveTime = time.Since(s.startTime)
	}()

	if !s.okay {
		res.Status = Unsat
		return res
	}
	s.cancelUntil(0)
	iassumps := make([]ilit, 0, len(assumptions))
	for _, a := range assumptions {
		s.ensureVars(int32(a.Var()))
		iassumps = append(iassumps, fromExternal(a))
	}

	var restarts uint64
	for {
		limit := s.opts.RestartBase * luby(restarts+1)
		st, stopped := s.search(limit, iassumps)
		if st == Sat {
			res.Status = Sat
			res.Model = s.extractModel()
			s.cancelUntil(0)
			return res
		}
		if st == Unsat {
			res.Status = Unsat
			s.cancelUntil(0)
			return res
		}
		if stopped {
			res.Interrupted = true
			s.cancelUntil(0)
			return res
		}
		restarts++
		s.stats.Restarts++
	}
}

// Add returns the field-wise sum of two Stats values (MaxLevel and the
// ArenaBytes gauge take the maximum, not the sum).  It lives next to
// diffStats so the field list stays in one place when Stats grows.
func (s Stats) Add(o Stats) Stats {
	s.Decisions += o.Decisions
	s.Propagations += o.Propagations
	s.Conflicts += o.Conflicts
	s.Restarts += o.Restarts
	s.Learned += o.Learned
	s.Removed += o.Removed
	s.ReduceDBs += o.ReduceDBs
	s.LearnedCore += o.LearnedCore
	s.LearnedMid += o.LearnedMid
	s.LearnedLocal += o.LearnedLocal
	if o.ArenaBytes > s.ArenaBytes {
		s.ArenaBytes = o.ArenaBytes
	}
	if o.MaxLevel > s.MaxLevel {
		s.MaxLevel = o.MaxLevel
	}
	s.SolveTime += o.SolveTime
	return s
}

func diffStats(now, before Stats) Stats {
	return Stats{
		Decisions:    now.Decisions - before.Decisions,
		Propagations: now.Propagations - before.Propagations,
		Conflicts:    now.Conflicts - before.Conflicts,
		Restarts:     now.Restarts - before.Restarts,
		Learned:      now.Learned - before.Learned,
		Removed:      now.Removed - before.Removed,
		ReduceDBs:    now.ReduceDBs - before.ReduceDBs,
		LearnedCore:  now.LearnedCore - before.LearnedCore,
		LearnedMid:   now.LearnedMid - before.LearnedMid,
		LearnedLocal: now.LearnedLocal - before.LearnedLocal,
		ArenaBytes:   now.ArenaBytes, // gauge: current, not a difference
		MaxLevel:     now.MaxLevel,
	}
}

func (s *Solver) extractModel() cnf.Assignment {
	m := cnf.NewAssignment(int(s.numVars))
	for v := int32(0); v < s.numVars; v++ {
		switch s.assigns[v] {
		case lTrue:
			m[v+1] = cnf.True
		case lFalse:
			m[v+1] = cnf.False
		default:
			// Unconstrained variable: give it the saved phase so the model
			// is total.
			if s.polarity[v] {
				m[v+1] = cnf.True
			} else {
				m[v+1] = cnf.False
			}
		}
	}
	return m
}

// --- variable order heap -------------------------------------------------

func (o *varOrder) less(i, j int32, act *[]float64) bool {
	ai, aj := (*act)[i], (*act)[j]
	if ai != aj {
		return ai > aj
	}
	return i < j
}

func (o *varOrder) insert(v int32, act *[]float64) {
	for int(v) >= len(o.indices) {
		o.indices = append(o.indices, -1)
	}
	if o.indices[v] >= 0 {
		return
	}
	o.heap = append(o.heap, v)
	o.indices[v] = int32(len(o.heap) - 1)
	o.percolateUp(int32(len(o.heap)-1), act)
}

func (o *varOrder) insertIfAbsent(v int32, act *[]float64) { o.insert(v, act) }

// rebuild resets the heap to contain every variable 0..n-1 in index order.
// With all activities equal (as after a Reset) the identity array is a valid
// heap and matches exactly the heap a fresh solver builds by inserting the
// variables in order.
func (o *varOrder) rebuild(n int32) {
	o.heap = o.heap[:0]
	if cap(o.indices) < int(n) {
		o.indices = make([]int32, n)
	}
	o.indices = o.indices[:n]
	for v := int32(0); v < n; v++ {
		o.heap = append(o.heap, v)
		o.indices[v] = v
	}
}

func (o *varOrder) decrease(v int32, act *[]float64) {
	if int(v) < len(o.indices) && o.indices[v] >= 0 {
		o.percolateUp(o.indices[v], act)
	}
}

func (o *varOrder) removeMin(act *[]float64) int32 {
	if len(o.heap) == 0 {
		return -1
	}
	v := o.heap[0]
	last := o.heap[len(o.heap)-1]
	o.heap = o.heap[:len(o.heap)-1]
	o.indices[v] = -1
	if len(o.heap) > 0 {
		o.heap[0] = last
		o.indices[last] = 0
		o.percolateDown(0, act)
	}
	return v
}

func (o *varOrder) percolateUp(i int32, act *[]float64) {
	v := o.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !o.less(v, o.heap[parent], act) {
			break
		}
		o.heap[i] = o.heap[parent]
		o.indices[o.heap[i]] = i
		i = parent
	}
	o.heap[i] = v
	o.indices[v] = i
}

func (o *varOrder) percolateDown(i int32, act *[]float64) {
	v := o.heap[i]
	n := int32(len(o.heap))
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && o.less(o.heap[right], o.heap[left], act) {
			child = right
		}
		if !o.less(o.heap[child], v, act) {
			break
		}
		o.heap[i] = o.heap[child]
		o.indices[o.heap[i]] = i
		i = child
	}
	o.heap[i] = v
	o.indices[v] = i
}

// Describe returns a short human-readable summary of the solver state.
func (s *Solver) Describe() string {
	return fmt.Sprintf("solver{vars=%d clauses=%d learnts=%d conflicts=%d}",
		s.numVars, len(s.clauses), len(s.learnts), s.stats.Conflicts)
}

// EffortCost converts solver statistics into a scalar cost according to the
// requested metric; see the montecarlo package for the available metrics.
func EffortCost(st Stats, metric CostMetric) float64 {
	switch metric {
	case CostConflicts:
		return float64(st.Conflicts)
	case CostPropagations:
		return float64(st.Propagations)
	case CostDecisions:
		return float64(st.Decisions)
	case CostWallTime:
		return st.SolveTime.Seconds()
	default:
		return float64(st.Conflicts)
	}
}

// CostMetric selects which solver statistic is used as the per-subproblem
// cost ζ in the Monte Carlo estimation.
type CostMetric int

// Available cost metrics.
const (
	// CostConflicts counts CDCL conflicts; deterministic and the default in
	// tests and benchmarks.
	CostConflicts CostMetric = iota
	// CostPropagations counts unit propagations.
	CostPropagations
	// CostDecisions counts decisions.
	CostDecisions
	// CostWallTime measures wall-clock seconds, like the paper.
	CostWallTime
)

// String implements fmt.Stringer.
func (m CostMetric) String() string {
	switch m {
	case CostConflicts:
		return "conflicts"
	case CostPropagations:
		return "propagations"
	case CostDecisions:
		return "decisions"
	case CostWallTime:
		return "seconds"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// Verify checks that the model satisfies the formula; it is a convenience
// used by tests and by the runner's paranoid mode.
func Verify(f *cnf.Formula, model cnf.Assignment) bool {
	return f.IsSatisfiedBy(model)
}
