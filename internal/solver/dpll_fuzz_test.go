package solver

import (
	"testing"

	"github.com/paper-repro/pdsat-go/internal/cnf"
)

// FuzzSolverVsDPLL differentially fuzzes the arena CDCL solver against the
// reference DPLL solver on small random CNFs decoded from the fuzz input.
// Both ClauseTier modes must agree with the oracle on satisfiability, and
// every SAT model must actually satisfy the formula.
//
// Input encoding: numVars = 3 + data[0]%8 (3..10 variables); each following
// byte contributes one literal (variable = b%numVars, sign = bit 7), with
// the zero byte acting as a clause terminator.  Any byte slice decodes to a
// well-formed formula, so the fuzzer's mutations always reach the solver.
func FuzzSolverVsDPLL(f *testing.F) {
	f.Add([]byte{2, 1, 130, 0, 2, 131, 0, 3, 1, 0})
	f.Add([]byte{0, 1, 0, 129, 0})                       // unit clauses x1, ¬x1: UNSAT
	f.Add([]byte{7, 1, 2, 3, 0, 131, 132, 133, 0, 4, 5}) // mixed widths
	f.Add([]byte{5})                                     // empty formula
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		numVars := 3 + int(data[0])%8
		formula := &cnf.Formula{NumVars: numVars}
		var clause cnf.Clause
		for _, b := range data[1:] {
			if b == 0 {
				if len(clause) > 0 {
					formula.Clauses = append(formula.Clauses, clause)
					clause = nil
				}
				continue
			}
			v := cnf.Var(int(b&0x7f)%numVars + 1)
			clause = append(clause, cnf.NewLit(v, b&0x80 == 0))
		}
		if len(clause) > 0 {
			formula.Clauses = append(formula.Clauses, clause)
		}
		if len(formula.Clauses) > 64 {
			formula.Clauses = formula.Clauses[:64]
		}

		d := NewDPLL(formula)
		d.MaxNodes = 1 << 20
		want := d.Solve()
		if want.Status == Unknown {
			t.Skip("DPLL node budget exceeded")
		}

		for _, tier := range []bool{false, true} {
			opts := DefaultOptions()
			opts.ClauseTier = tier
			got := New(formula, opts).Solve()
			if got.Status != want.Status {
				t.Fatalf("ClauseTier=%v: CDCL=%v, DPLL oracle=%v\nformula: %+v", tier, got.Status, want.Status, formula)
			}
			if got.Status == Sat && !Verify(formula, got.Model) {
				t.Fatalf("ClauseTier=%v: CDCL model does not satisfy the formula %+v", tier, formula)
			}
		}
	})
}
