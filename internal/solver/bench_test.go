package solver

import (
	"math/rand"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/encoder"
)

// Solver-core micro-benchmarks.  BenchmarkSolverBivium doubles as the
// arena acceptance gate: it times the flat-arena solver against the
// preserved pointer implementation (refsolver_test.go) on the same Bivium
// session workload in the same process and fails outright if the arena is
// not at least 20% faster, so the regression bar travels with the code
// instead of a machine-specific recorded baseline.

// chainFormula builds an implication ladder: binary clauses x_i → x_{i+1}
// and ternary clauses (¬x_i ∨ ¬x_{i+1} ∨ x_{i+2}), so asserting x_1
// propagates the whole chain through both the binary fast path and the
// general watched-literal path.
func chainFormula(n int) *cnf.Formula {
	f := &cnf.Formula{NumVars: n}
	for i := 1; i < n; i++ {
		f.Clauses = append(f.Clauses, cnf.Clause{cnf.NewLit(cnf.Var(i), false), cnf.NewLit(cnf.Var(i+1), true)})
	}
	for i := 1; i+2 <= n; i++ {
		f.Clauses = append(f.Clauses, cnf.Clause{
			cnf.NewLit(cnf.Var(i), false), cnf.NewLit(cnf.Var(i+1), false), cnf.NewLit(cnf.Var(i+2), true),
		})
	}
	return f
}

// biviumBatch builds the weakened Bivium instance of the estimator tests
// (167 known start bits, 60 keystream bits) and 256 assumption vectors over
// its 10 unknown start variables — the exact per-subproblem workload of the
// Monte Carlo estimation: Reset, assume a cell of the decomposition, solve.
func biviumBatch(tb testing.TB) (*cnf.Formula, [][]cnf.Lit) {
	tb.Helper()
	inst, err := encoder.NewInstance(encoder.Bivium(), encoder.Config{
		KeystreamLen: 60, KnownSuffix: 167, Seed: 21,
	})
	if err != nil {
		tb.Fatal(err)
	}
	vars := inst.UnknownStartVars()
	rng := rand.New(rand.NewSource(7))
	batch := make([][]cnf.Lit, 256)
	for i := range batch {
		a := make([]cnf.Lit, 0, len(vars))
		for _, v := range vars {
			a = append(a, cnf.NewLit(v, rng.Intn(2) == 0))
		}
		batch[i] = a
	}
	return inst.CNF, batch
}

// BenchmarkSolverPropagation measures one decide → propagate → backtrack
// round over a 4000-variable implication chain.  The propagation path must
// not allocate: the watch-list rewrites happen in place and the arena is
// never grown outside clause learning (TestPropagateZeroAllocs enforces the
// 0 allocs/op that the ns/op here implies).
func BenchmarkSolverPropagation(b *testing.B) {
	s := NewDefault(chainFormula(4000))
	// Warm up: one full round leaves trail/watch capacity in steady state.
	s.newDecisionLevel()
	s.enqueue(mkLit(0, true), nullRef)
	s.propagate()
	s.cancelUntil(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.newDecisionLevel()
		s.enqueue(mkLit(0, true), nullRef)
		if confl := s.propagate(); confl != nullRef {
			b.Fatal("chain formula cannot conflict")
		}
		s.cancelUntil(0)
	}
	b.ReportMetric(float64(s.stats.Propagations)/float64(b.N), "props/op")
}

// TestPropagateZeroAllocs pins the acceptance bar behind
// BenchmarkSolverPropagation deterministically: steady-state propagation
// performs zero heap allocations per round.
func TestPropagateZeroAllocs(t *testing.T) {
	s := NewDefault(chainFormula(4000))
	round := func() {
		s.newDecisionLevel()
		s.enqueue(mkLit(0, true), nullRef)
		s.propagate()
		s.cancelUntil(0)
	}
	round() // reach steady-state capacities
	if allocs := testing.AllocsPerRun(100, round); allocs != 0 {
		t.Fatalf("propagation allocated %.1f times per round, want 0", allocs)
	}
}

// BenchmarkSolverBivium measures the Monte Carlo subproblem loop (Reset +
// assume + solve, 256 subproblems per op) on the arena solver, and enforces
// the arena acceptance bar: ≥20% faster than the pointer implementation on
// the same batch.  Both solvers run in this process on identical work, so
// the bar is machine-independent.
func BenchmarkSolverBivium(b *testing.B) {
	f, batch := biviumBatch(b)
	s := NewDefault(f)
	r := newRefSolver(f, DefaultOptions())
	runArena := func() {
		for _, a := range batch {
			s.Reset()
			s.SolveWithAssumptions(a)
		}
	}
	runRef := func() {
		for _, a := range batch {
			r.Reset()
			r.SolveWithAssumptions(a)
		}
	}
	// Warm up both so allocation effects don't bias the first timing.
	runArena()
	runRef()
	// Best-of-three per side: the bar compares steady-state throughput, not
	// scheduling noise.
	arenaNs, refNs := time.Duration(1<<62), time.Duration(1<<62)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			runArena()
			if d := time.Since(start); d < arenaNs {
				arenaNs = d
			}
			start = time.Now()
			runRef()
			if d := time.Since(start); d < refNs {
				refNs = d
			}
		}
	}
	b.StopTimer()
	perSolveArena := float64(arenaNs.Nanoseconds()) / float64(len(batch))
	perSolveRef := float64(refNs.Nanoseconds()) / float64(len(batch))
	speedup := 100 * (1 - perSolveArena/perSolveRef)
	b.ReportMetric(perSolveArena, "arena-ns/solve")
	b.ReportMetric(perSolveRef, "pointer-ns/solve")
	b.ReportMetric(speedup, "speedup-%")
	if speedup < 20 {
		b.Fatalf("arena solver only %.1f%% faster than the pointer baseline on the Bivium session batch (acceptance bar: 20%%): %.0f vs %.0f ns/solve",
			speedup, perSolveArena, perSolveRef)
	}
}
