package solver

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/paper-repro/pdsat-go/internal/cnf"
)

// TestAssumptionsEquivalentToUnits checks the property the whole
// decomposition machinery relies on: solving C under assumption literals is
// equisatisfiable with solving C extended by the corresponding unit clauses.
func TestAssumptionsEquivalentToUnits(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := randomFormula(rng, 6+rng.Intn(10), 10+rng.Intn(40))

		// Draw a random assumption set over distinct variables.
		numAssumps := 1 + rng.Intn(4)
		seen := map[cnf.Var]bool{}
		var assumptions []cnf.Lit
		units := f.Clone()
		for len(assumptions) < numAssumps {
			v := cnf.Var(rng.Intn(f.NumVars) + 1)
			if seen[v] {
				continue
			}
			seen[v] = true
			l := cnf.NewLit(v, rng.Intn(2) == 0)
			assumptions = append(assumptions, l)
			units.AddClause(cnf.Clause{l})
		}

		withAssumps := NewDefault(f).SolveWithAssumptions(assumptions)
		withUnits := NewDefault(units).Solve()
		if withAssumps.Status != withUnits.Status {
			return false
		}
		if withAssumps.Status == Sat {
			// The model must satisfy both the formula and the assumptions.
			if !f.IsSatisfiedBy(withAssumps.Model) {
				return false
			}
			for _, a := range assumptions {
				if withAssumps.Model.LitValue(a) != cnf.True {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRepeatedAssumptionSolvesAreConsistent re-solves the same formula under
// many different assumption sets with a single solver instance (the
// incremental pattern) and cross-checks each answer against a fresh solver.
func TestRepeatedAssumptionSolvesAreConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := randomFormula(rng, 25, 95)
	shared := NewDefault(f)
	for i := 0; i < 50; i++ {
		var assumptions []cnf.Lit
		for j := 0; j < 3; j++ {
			v := cnf.Var(rng.Intn(f.NumVars) + 1)
			assumptions = append(assumptions, cnf.NewLit(v, rng.Intn(2) == 0))
		}
		got := shared.SolveWithAssumptions(assumptions)
		want := NewDefault(f).SolveWithAssumptions(assumptions)
		if got.Status != want.Status {
			t.Fatalf("iteration %d: shared solver says %v, fresh solver says %v (assumptions %v)",
				i, got.Status, want.Status, assumptions)
		}
	}
}

// TestSolveAfterUnsatAssumptions verifies the solver recovers after an
// assumption-driven UNSAT answer (no stale state corrupts later calls).
func TestSolveAfterUnsatAssumptions(t *testing.T) {
	f := cnf.New(4)
	f.AddClauseLits(1, 2)
	f.AddClauseLits(3, 4)
	s := NewDefault(f)
	if res := s.SolveWithAssumptions([]cnf.Lit{-1, -2}); res.Status != Unsat {
		t.Fatalf("expected UNSAT, got %v", res.Status)
	}
	if res := s.SolveWithAssumptions([]cnf.Lit{-3, -4}); res.Status != Unsat {
		t.Fatalf("expected UNSAT, got %v", res.Status)
	}
	if res := s.Solve(); res.Status != Sat {
		t.Fatalf("expected SAT with no assumptions, got %v", res.Status)
	}
	if res := s.SolveWithAssumptions([]cnf.Lit{1, 3}); res.Status != Sat {
		t.Fatalf("expected SAT under consistent assumptions, got %v", res.Status)
	}
}

// TestAssumptionOnNewVariable checks that assuming a variable the formula
// never mentions grows the solver and behaves like a free choice.
func TestAssumptionOnNewVariable(t *testing.T) {
	f := cnf.New(2)
	f.AddClauseLits(1, 2)
	s := NewDefault(f)
	res := s.SolveWithAssumptions([]cnf.Lit{cnf.NewLit(7, true)})
	if res.Status != Sat {
		t.Fatalf("expected SAT, got %v", res.Status)
	}
	if res.Model.Value(7) != cnf.True {
		t.Fatal("assumed fresh variable should be true in the model")
	}
	if s.NumVars() < 7 {
		t.Fatalf("solver should have grown to 7 variables, has %d", s.NumVars())
	}
}
