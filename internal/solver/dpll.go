package solver

import (
	"github.com/paper-repro/pdsat-go/internal/cnf"
)

// DPLL is a tiny reference solver (plain Davis–Putnam–Logemann–Loveland with
// unit propagation and no learning).  It is exponentially slower than the
// CDCL solver and exists only to cross-check results on small formulas in
// tests and property-based checks.
type DPLL struct {
	formula *cnf.Formula
	// MaxNodes bounds the number of search nodes (0 = unlimited).
	MaxNodes uint64
	nodes    uint64
}

// NewDPLL creates a reference solver for f.
func NewDPLL(f *cnf.Formula) *DPLL { return &DPLL{formula: f} }

// Solve runs the reference search.  It returns Sat with a model, Unsat, or
// Unknown if MaxNodes was exceeded.
func (d *DPLL) Solve() Result {
	d.nodes = 0
	a := cnf.NewAssignment(d.formula.NumVars)
	st, model := d.search(a)
	res := Result{Status: st, Model: model}
	res.Stats.Decisions = d.nodes
	return res
}

func (d *DPLL) search(a cnf.Assignment) (Status, cnf.Assignment) {
	d.nodes++
	if d.MaxNodes > 0 && d.nodes > d.MaxNodes {
		return Unknown, nil
	}
	prop, ok := d.formula.UnitPropagate(a)
	if !ok {
		return Unsat, nil
	}
	switch d.formula.Evaluate(prop) {
	case cnf.True:
		return Sat, completeModel(d.formula, prop)
	case cnf.False:
		return Unsat, nil
	}
	v := pickUnassigned(d.formula, prop)
	if v == 0 {
		// All clause variables assigned but formula not decided: cannot
		// happen after propagation, but guard anyway.
		return Unsat, nil
	}
	for _, val := range []cnf.Value{cnf.True, cnf.False} {
		next := prop.Clone()
		next.Set(v, val)
		st, model := d.search(next)
		switch st {
		case Sat:
			return Sat, model
		case Unknown:
			return Unknown, nil
		}
	}
	return Unsat, nil
}

func pickUnassigned(f *cnf.Formula, a cnf.Assignment) cnf.Var {
	for _, c := range f.Clauses {
		satisfied := false
		for _, l := range c {
			if a.LitValue(l) == cnf.True {
				satisfied = true
				break
			}
		}
		if satisfied {
			continue
		}
		for _, l := range c {
			if a.LitValue(l) == cnf.Unassigned {
				return l.Var()
			}
		}
	}
	return 0
}

func completeModel(f *cnf.Formula, a cnf.Assignment) cnf.Assignment {
	m := a.Clone()
	for len(m) <= f.NumVars {
		m = append(m, cnf.Unassigned)
	}
	for v := cnf.Var(1); int(v) <= f.NumVars; v++ {
		if m.Value(v) == cnf.Unassigned {
			m.Set(v, cnf.False)
		}
	}
	return m
}
