package solver

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/cnfgen"
)

// Differential tests: the arena solver (ClauseTier off) must reproduce the
// preserved pointer implementation (refsolver_test.go) bit for bit — same
// statuses, same models, same statistics, same conflict activities — across
// one-shot solves, budgeted solves, assumption sessions with Reset and
// incremental solving.  Together with the goldens this pins the refactor's
// bit-identity contract from two directions: goldens against the recorded
// past, the refSolver against a live replay.

// seedStats projects a Stats value onto the fields the pointer implementation
// maintains.  The arena solver's new counters (ReduceDBs, tier counts,
// ArenaBytes) have no refSolver counterpart and are asserted separately.
func seedStats(st Stats) Stats {
	return Stats{
		Decisions:    st.Decisions,
		Propagations: st.Propagations,
		Conflicts:    st.Conflicts,
		Restarts:     st.Restarts,
		Learned:      st.Learned,
		Removed:      st.Removed,
		MaxLevel:     st.MaxLevel,
	}
}

func sameResult(t *testing.T, tag string, got, want Result) {
	t.Helper()
	if got.Status != want.Status {
		t.Fatalf("%s: status mismatch: arena=%v ref=%v", tag, got.Status, want.Status)
	}
	if got.Interrupted != want.Interrupted {
		t.Fatalf("%s: interrupted mismatch: arena=%v ref=%v", tag, got.Interrupted, want.Interrupted)
	}
	if g, w := seedStats(got.Stats), seedStats(want.Stats); g != w {
		t.Fatalf("%s: stats mismatch:\narena %+v\nref   %+v", tag, g, w)
	}
	if len(got.Model) != len(want.Model) {
		t.Fatalf("%s: model length mismatch: arena=%d ref=%d", tag, len(got.Model), len(want.Model))
	}
	for i := range got.Model {
		if got.Model[i] != want.Model[i] {
			t.Fatalf("%s: model differs at var %d: arena=%v ref=%v", tag, i, got.Model[i], want.Model[i])
		}
	}
}

func sameActivities(t *testing.T, tag string, s *Solver, r *refSolver) {
	t.Helper()
	ga, wa := s.ConflictActivities(), r.ConflictActivities()
	if len(ga) != len(wa) {
		t.Fatalf("%s: activity length mismatch: arena=%d ref=%d", tag, len(ga), len(wa))
	}
	for i := range ga {
		if ga[i] != wa[i] {
			t.Fatalf("%s: conflict activity differs at var %d: arena=%v ref=%v", tag, i, ga[i], wa[i])
		}
	}
}

func mustPigeonhole(t *testing.T, pigeons, holes int) *cnf.Formula {
	t.Helper()
	f, err := cnfgen.Pigeonhole(pigeons, holes)
	if err != nil {
		t.Fatalf("Pigeonhole(%d,%d): %v", pigeons, holes, err)
	}
	return f
}

func mustRandom3SAT(t *testing.T, seed int64, vars int, ratio float64) *cnf.Formula {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	f, err := cnfgen.Random3SAT(rng, vars, ratio)
	if err != nil {
		t.Fatalf("Random3SAT(seed=%d): %v", seed, err)
	}
	return f
}

func diffFormulas(t *testing.T) map[string]*cnf.Formula {
	t.Helper()
	fs := map[string]*cnf.Formula{
		"php_6_5": mustPigeonhole(t, 6, 5),
		"php_4_4": mustPigeonhole(t, 4, 4),
		"php_7_6": mustPigeonhole(t, 7, 6),
	}
	for seed := int64(1); seed <= 4; seed++ {
		fs[fmt.Sprintf("rand3sat_%d", seed)] = mustRandom3SAT(t, seed, 60, 4.2)
	}
	return fs
}

func TestArenaMatchesRefSolverOneShot(t *testing.T) {
	optVariants := map[string]Options{
		"default": DefaultOptions(),
		"reduce_heavy": func() Options {
			o := DefaultOptions()
			o.MaxLearnedFactor = 0.25
			return o
		}(),
		"no_minimize_no_phase": func() Options {
			o := DefaultOptions()
			o.MinimizeLearned = false
			o.PhaseSaving = false
			o.DefaultPhase = true
			o.RestartBase = 50
			return o
		}(),
	}
	for fname, f := range diffFormulas(t) {
		for oname, opts := range optVariants {
			tag := fname + "/" + oname
			s := New(f, opts)
			r := newRefSolver(f, opts)
			sameResult(t, tag, s.Solve(), r.Solve())
			sameActivities(t, tag, s, r)
		}
	}
}

func TestArenaMatchesRefSolverBudgeted(t *testing.T) {
	f := mustPigeonhole(t, 8, 7)
	for _, b := range []Budget{
		{MaxConflicts: 50},
		{MaxConflicts: 500},
		{MaxPropagations: 2000},
	} {
		tag := fmt.Sprintf("budget_%+v", b)
		s := New(f, DefaultOptions())
		s.SetBudget(b)
		r := newRefSolver(f, DefaultOptions())
		r.SetBudget(b)
		sameResult(t, tag, s.Solve(), r.Solve())
		sameActivities(t, tag, s, r)
	}
}

func TestArenaMatchesRefSolverResetSession(t *testing.T) {
	f := mustPigeonhole(t, 6, 5)
	s := New(f, DefaultOptions())
	r := newRefSolver(f, DefaultOptions())
	if bs, br := seedStats(s.BaseStats()), seedStats(r.BaseStats()); bs != br {
		t.Fatalf("base stats mismatch:\narena %+v\nref   %+v", bs, br)
	}
	rng := rand.New(rand.NewSource(11))
	n := f.NumVars
	for call := 0; call < 8; call++ {
		s.Reset()
		r.Reset()
		perm := rng.Perm(n)
		assumps := make([]cnf.Lit, 0, 3)
		for i := 0; i < 3 && i < len(perm); i++ {
			assumps = append(assumps, cnf.NewLit(cnf.Var(perm[i]+1), i%2 == 0))
		}
		tag := fmt.Sprintf("reset_call_%d", call)
		sameResult(t, tag, s.SolveWithAssumptions(assumps), r.SolveWithAssumptions(assumps))
		sameActivities(t, tag, s, r)
		if gs, ws := seedStats(s.Stats()), seedStats(r.Stats()); gs != ws {
			t.Fatalf("%s: lifetime stats mismatch:\narena %+v\nref   %+v", tag, gs, ws)
		}
	}
}

func TestArenaMatchesRefSolverIncremental(t *testing.T) {
	f := mustRandom3SAT(t, 5, 70, 4.0)
	s := New(f, DefaultOptions())
	r := newRefSolver(f, DefaultOptions())
	arng := rand.New(rand.NewSource(17))
	for call := 0; call < 3; call++ {
		perm := arng.Perm(f.NumVars)
		assumps := make([]cnf.Lit, 0, 4)
		for i := 0; i < 4; i++ {
			assumps = append(assumps, cnf.NewLit(cnf.Var(perm[i]+1), i%2 == 1))
		}
		tag := fmt.Sprintf("incremental_call_%d", call)
		sameResult(t, tag, s.SolveWithAssumptions(assumps), r.SolveWithAssumptions(assumps))
		sameActivities(t, tag, s, r)
	}
	// Clauses added mid-session must behave identically too.
	extra := cnf.Clause{cnf.NewLit(1, true), cnf.NewLit(2, true), cnf.NewLit(3, false)}
	if ok, rok := s.AddClause(extra), r.AddClause(extra); ok != rok {
		t.Fatalf("AddClause disagreement: arena=%v ref=%v", ok, rok)
	}
	sameResult(t, "post_addclause", s.Solve(), r.Solve())
	sameActivities(t, "post_addclause", s, r)
}
