package solver

import (
	"testing"
)

// Tests for the LBD-tiered clause management behind Options.ClauseTier.
// Unlike the ClauseTier-off mode, which is pinned bit-for-bit to the seed
// search, the tiered policy changes the search; these tests check the things
// that must hold regardless: answers stay correct, protected tiers survive
// reduction, the database limit grows geometrically, compaction keeps the
// clause database consistent mid-run, and Reset reclaims the arena.

func tierOptions() Options {
	o := DefaultOptions()
	o.ClauseTier = true
	// Reduce aggressively so small test formulas exercise reduction and
	// compaction many times.
	o.MaxLearnedFactor = 0.25
	return o
}

func TestClauseTierAnswersMatchLegacy(t *testing.T) {
	for fname, f := range diffFormulas(t) {
		base := New(f, DefaultOptions()).Solve()
		tier := New(f, tierOptions()).Solve()
		if base.Status != tier.Status {
			t.Fatalf("%s: status diverged: legacy=%v tiered=%v", fname, base.Status, tier.Status)
		}
		if tier.Status == Sat && !Verify(f, tier.Model) {
			t.Fatalf("%s: tiered model does not satisfy the formula", fname)
		}
	}
}

func TestClauseTierReducesAndCompacts(t *testing.T) {
	f := mustPigeonhole(t, 8, 7)
	s := New(f, tierOptions())
	res := s.Solve()
	if res.Status != Unsat {
		t.Fatalf("php(8,7) should be UNSAT, got %v", res.Status)
	}
	st := s.Stats()
	if st.ReduceDBs == 0 {
		t.Fatal("tiered reduction never fired")
	}
	if st.Removed == 0 {
		t.Fatal("tiered reduction removed no clauses")
	}
	if st.LearnedCore+st.LearnedMid+st.LearnedLocal != st.Learned {
		t.Fatalf("tier counters do not partition Learned: core=%d mid=%d local=%d learned=%d",
			st.LearnedCore, st.LearnedMid, st.LearnedLocal, st.Learned)
	}
	if st.ArenaBytes == 0 {
		t.Fatal("ArenaBytes gauge never set")
	}
	// The aggressive reduce factor plus php(8,7)'s thousands of conflicts
	// guarantees the dead words crossed the compaction threshold at least
	// once; a solver that never compacted would still pass the checks above,
	// so assert it explicitly via the internal counter: after a compaction
	// garbageWords restarts from zero and can only hold words from reductions
	// since, which the threshold keeps below half the learned region.
	learnedWords := len(s.ar.data) - s.arenaBase
	if s.garbageWords*2 > learnedWords+2*int(hdrWords) {
		t.Fatalf("compaction threshold violated at rest: garbage=%d learned region=%d", s.garbageWords, learnedWords)
	}
}

func TestClauseTierProtectsCoreAndBinaries(t *testing.T) {
	f := mustPigeonhole(t, 7, 6)
	s := New(f, tierOptions())
	if res := s.Solve(); res.Status != Unsat {
		t.Fatalf("php(7,6) should be UNSAT, got %v", res.Status)
	}
	// Every surviving learned clause list entry must be alive and attached;
	// every binary or core-tier clause learned must still be present (they
	// are never removal candidates).
	var core, binaries int
	for _, c := range s.learnts {
		if s.ar.isDead(c) {
			t.Fatalf("dead clause %d left in learnts", c)
		}
		if s.ar.size(c) == 2 {
			binaries++
		}
		if s.ar.lbd(c) <= coreLBD {
			core++
		}
	}
	removedProtected := false
	if uint64(core) < s.stats.LearnedCore {
		// Core clauses can only leave learnts via Reset, never reduction.
		removedProtected = true
	}
	if removedProtected {
		t.Fatalf("protected tier shrank: %d core clauses live, %d learned", core, s.stats.LearnedCore)
	}
	if binaries == 0 && core == 0 {
		t.Skip("formula produced no protected clauses; nothing to check")
	}
}

func TestClauseTierLimitGrowsGeometrically(t *testing.T) {
	f := mustPigeonhole(t, 8, 7)
	s := New(f, tierOptions())
	s.Solve()
	if s.stats.ReduceDBs < 2 {
		t.Skipf("need ≥2 reductions to observe growth, got %d", s.stats.ReduceDBs)
	}
	initial := s.opts.MaxLearnedFactor * float64(len(s.clauses)+100)
	want := initial
	for i := uint64(0); i < s.stats.ReduceDBs; i++ {
		want *= learntGrowth
	}
	if diff := s.learntLimit - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("learntLimit=%v, want %v (initial %v grown %d times)", s.learntLimit, want, initial, s.stats.ReduceDBs)
	}
}

func TestClauseTierResetReclaimsArena(t *testing.T) {
	f := mustPigeonhole(t, 7, 6)
	s := New(f, tierOptions())
	baseBytes := s.ar.bytes()
	for call := 0; call < 3; call++ {
		s.Reset()
		if got := s.ar.bytes(); got != baseBytes {
			t.Fatalf("call %d: arena not truncated by Reset: %d bytes, want %d", call, got, baseBytes)
		}
		if s.stats.ArenaBytes != baseBytes {
			t.Fatalf("call %d: ArenaBytes gauge stale after Reset: %d, want %d", call, s.stats.ArenaBytes, baseBytes)
		}
		res := s.Solve()
		if res.Status != Unsat {
			t.Fatalf("call %d: got %v, want UNSAT", call, res.Status)
		}
		if s.ar.bytes() <= baseBytes {
			t.Fatalf("call %d: no learned clauses in arena after solve", call)
		}
	}
}

func TestClauseTierSessionDeterministic(t *testing.T) {
	// The tiered policy is not bit-identical to the seed, but it must still
	// be deterministic: two identical solvers perform identical searches.
	f := mustRandom3SAT(t, 3, 80, 4.26)
	run := func() []Stats {
		s := New(f, tierOptions())
		var out []Stats
		for call := 0; call < 4; call++ {
			s.Reset()
			res := s.Solve()
			st := res.Stats
			st.SolveTime = 0
			out = append(out, st)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: tiered search not deterministic:\nrun1 %+v\nrun2 %+v", i, a[i], b[i])
		}
	}
}
