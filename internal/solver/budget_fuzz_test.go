package solver

import (
	"math"
	"testing"
	"time"
)

// effectiveConflicts maps a budget counter to its effective limit, treating
// the zero value as unlimited.
func effectiveCounter(v uint64) uint64 {
	if v == 0 {
		return math.MaxUint64
	}
	return v
}

func effectiveTime(d time.Duration) time.Duration {
	if d <= 0 {
		return time.Duration(math.MaxInt64)
	}
	return d
}

// FuzzBudgetForCost checks the budget algebra the evaluation engine's
// incumbent pruning is built on: BudgetForCost rejects unusable allowances
// with the unlimited budget, a budgeted counter always strictly exceeds its
// allowance (so a truncated solve certifies cost > allowance), and
// TightenedBy never loosens any limit and is symmetric.
func FuzzBudgetForCost(f *testing.F) {
	f.Add(int8(0), 100.0, uint64(50), uint64(0), uint64(0))
	f.Add(int8(1), 0.5, uint64(0), uint64(200), uint64(1000))
	f.Add(int8(0), 0.0, uint64(1), uint64(1), uint64(1))
	f.Add(int8(0), -3.0, uint64(0), uint64(0), uint64(0))
	f.Add(int8(2), 42.0, uint64(7), uint64(7), uint64(7))
	f.Add(int8(3), math.MaxFloat64, uint64(0), uint64(9), uint64(0))
	f.Fuzz(func(t *testing.T, metricRaw int8, allowance float64, conf, prop, tm uint64) {
		metric := CostMetric(int(metricRaw & 3)) // CostConflicts..CostWallTime
		b := BudgetForCost(metric, allowance)

		unusable := allowance <= 0 || math.IsInf(allowance, 1) || math.IsNaN(allowance)
		budgetable := metric == CostConflicts || metric == CostPropagations
		if unusable || !budgetable {
			if b != (Budget{}) {
				t.Fatalf("BudgetForCost(%v, %v) = %+v, want zero budget", metric, allowance, b)
			}
			return
		}
		if b.MaxTime != 0 {
			t.Fatalf("BudgetForCost(%v, %v) set MaxTime %v; timing-based truncation is excluded", metric, allowance, b.MaxTime)
		}
		limit := b.MaxConflicts
		other := b.MaxPropagations
		if metric == CostPropagations {
			limit, other = other, limit
		}
		if other != 0 {
			t.Fatalf("BudgetForCost(%v, %v) budgeted the wrong counter: %+v", metric, allowance, b)
		}
		if limit == 0 {
			t.Fatalf("BudgetForCost(%v, %v) returned no limit for a positive finite allowance", metric, allowance)
		}
		// The budgeted counter must strictly exceed the allowance, so a
		// solve stopped by it has certified cost > allowance.  (Allowances
		// beyond 2^64 overflow the counter; uint64(Ceil) saturates there and
		// the +1 keeps the limit non-zero, so only check in-range values.)
		if allowance < math.MaxUint64/2 && float64(limit) <= allowance {
			t.Fatalf("BudgetForCost(%v, %v) limit %d does not exceed the allowance", metric, allowance, limit)
		}

		// Tightening an arbitrary base budget by b must never loosen a
		// limit, must yield exactly the element-wise minimum, and must not
		// depend on operand order.
		base := Budget{MaxConflicts: conf, MaxPropagations: prop, MaxTime: time.Duration(tm % uint64(math.MaxInt64))}
		tight := base.TightenedBy(b)
		if effectiveCounter(tight.MaxConflicts) > effectiveCounter(base.MaxConflicts) ||
			effectiveCounter(tight.MaxPropagations) > effectiveCounter(base.MaxPropagations) ||
			effectiveTime(tight.MaxTime) > effectiveTime(base.MaxTime) {
			t.Fatalf("TightenedBy loosened a limit: base %+v, by %+v, got %+v", base, b, tight)
		}
		if got, want := effectiveCounter(tight.MaxConflicts), min(effectiveCounter(base.MaxConflicts), effectiveCounter(b.MaxConflicts)); got != want {
			t.Fatalf("TightenedBy MaxConflicts = %d, want min %d (base %+v, by %+v)", got, want, base, b)
		}
		if got, want := effectiveCounter(tight.MaxPropagations), min(effectiveCounter(base.MaxPropagations), effectiveCounter(b.MaxPropagations)); got != want {
			t.Fatalf("TightenedBy MaxPropagations = %d, want min %d (base %+v, by %+v)", got, want, base, b)
		}
		if sym := b.TightenedBy(base); sym != tight {
			t.Fatalf("TightenedBy is not symmetric: %+v vs %+v", tight, sym)
		}
	})
}
