package solver

// Watch lists over the clause arena.  Each assigned literal p owns a slab of
// watch entries; an entry carries the clause's cref and a blocker literal
// (some other literal of the clause — if the blocker is already true the
// clause is satisfied and the arena is not touched at all).
//
// Binary clauses are specialized in place: their entries carry the binary
// tag (the sign bit of the cref word), and for a binary clause the blocker
// is by construction always the clause's other literal, so the propagation
// fast path resolves the implication entirely from the 8-byte watch entry —
// the only arena access left is the literal swap that keeps the clause's
// stored order identical to the pointer implementation (conflict analysis
// bumps variables in literal order, so the order is behaviour-relevant).
// Keeping binaries in the same slab, in the same positions, preserves the
// seed's exact watch traversal order — a dedicated binary list would change
// trail order and break bit-identity.

// watch is one watch-list entry: 8 bytes against the pointer
// implementation's 16.
type watch struct {
	// ref is the clause's cref; the sign bit tags binary clauses.
	ref cref
	// blocker is a literal of the clause whose truth proves the clause
	// satisfied without touching the arena.  For binary clauses it is
	// always the other literal.
	blocker ilit
}

// binaryFlag tags watch entries of binary clauses in the cref's sign bit.
const binaryFlag = cref(-1) << 31

func (w watch) isBinary() bool { return w.ref < 0 }
func (w watch) clause() cref   { return w.ref &^ binaryFlag }

// attach registers the clause's first two literals in the watch lists.
func (s *Solver) attach(c cref) {
	lits := s.ar.lits(c)
	l0, l1 := lits[0], lits[1]
	r := c
	if len(lits) == 2 {
		r |= binaryFlag
	}
	s.watches[l0.neg()] = append(s.watches[l0.neg()], watch{ref: r, blocker: l1})
	s.watches[l1.neg()] = append(s.watches[l1.neg()], watch{ref: r, blocker: l0})
}

func (s *Solver) detach(c cref) {
	lits := s.ar.lits(c)
	s.removeWatch(lits[0].neg(), c)
	s.removeWatch(lits[1].neg(), c)
}

func (s *Solver) removeWatch(l ilit, c cref) {
	ws := s.watches[l]
	for i := range ws {
		if ws[i].clause() == c {
			ws[i] = ws[len(ws)-1]
			s.watches[l] = ws[:len(ws)-1]
			return
		}
	}
}

// propagate performs unit propagation over the watched literals.  It returns
// the conflicting clause, or nullRef.
//
// The control flow mirrors the pointer implementation statement for
// statement — blocker check, false-literal swap, first-literal check, new
// watch search, unit/conflict with the same watcher rewrites — because the
// traversal order decides the trail order, and through it every reason,
// learned clause and decision of the search.  The binary branch is the only
// structural addition, and it takes exactly the path the general code would
// (for a binary clause the first literal always equals the blocker and the
// new-watch search has no literals to scan), just without reading the
// clause's size or scanning its literals.
func (s *Solver) propagate() cref {
	confl := nullRef
	ar := s.ar.data
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		ws := s.watches[p]
		falseLit := p.neg()
		i, j := 0, 0
		for i < len(ws) {
			w := ws[i]
			// Blocker check: if the blocker literal is already true the
			// clause is satisfied and nothing needs to move.
			if s.litValue(w.blocker) == lTrue {
				ws[j] = w
				i++
				j++
				continue
			}
			if w.isBinary() {
				// The other literal is the blocker; it is not true, so the
				// clause is unit or conflicting.  Keep the stored literal
				// order identical to the pointer implementation's swap.
				base := int32(w.clause()) + hdrWords
				if ar[base] == falseLit {
					ar[base], ar[base+1] = ar[base+1], ar[base]
				}
				first := w.blocker
				ws[j] = w
				i++
				j++
				if s.litValue(first) == lFalse {
					confl = w.clause()
					s.qhead = len(s.trail)
					for i < len(ws) {
						ws[j] = ws[i]
						i++
						j++
					}
				} else {
					s.enqueue(first, w.clause())
				}
				continue
			}
			c := w.clause()
			base := int32(c) + hdrWords
			// Make sure the false literal is lits[1].
			if ar[base] == falseLit {
				ar[base], ar[base+1] = ar[base+1], ar[base]
			}
			first := ar[base]
			if first != w.blocker && s.litValue(first) == lTrue {
				ws[j] = watch{ref: w.ref, blocker: first}
				i++
				j++
				continue
			}
			// Look for a new literal to watch.
			found := false
			end := base + int32(ar[base-hdrWords])>>flagBits
			for k := base + 2; k < end; k++ {
				if s.litValue(ar[k]) != lFalse {
					ar[base+1], ar[k] = ar[k], ar[base+1]
					nl := ar[base+1].neg()
					s.watches[nl] = append(s.watches[nl], watch{ref: w.ref, blocker: first})
					found = true
					break
				}
			}
			if found {
				i++
				continue
			}
			// Clause is unit or conflicting.
			ws[j] = watch{ref: w.ref, blocker: first}
			i++
			j++
			if s.litValue(first) == lFalse {
				// Conflict: copy remaining watchers and stop.
				confl = c
				s.qhead = len(s.trail)
				for i < len(ws) {
					ws[j] = ws[i]
					i++
					j++
				}
			} else {
				s.enqueue(first, c)
			}
		}
		s.watches[p] = ws[:j]
		if confl != nullRef {
			return confl
		}
	}
	return nullRef
}
