// Package optimize implements the two metaheuristic minimizers of the
// predictive function described in Section 3 of the paper: simulated
// annealing (Algorithm 1) and tabu search (Algorithm 2).
//
// Both algorithms move between points χ of a finite search space (subsets of
// the starting decomposition set, see package decomp), evaluating the
// predictive function F(χ) through an Objective.  Because a single
// evaluation is expensive (it solves a random sample of subproblems), both
// algorithms cache values of already-visited points; the tabu search
// additionally maintains the two tabu lists L1 (points with fully checked
// neighbourhoods) and L2 (checked points with unchecked neighbourhoods) and
// uses the accumulated conflict activity of variables to choose a new
// neighbourhood centre when the current one is exhausted.
package optimize

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/decomp"
	"github.com/paper-repro/pdsat-go/internal/eval"
)

// Objective computes the predictive function value at a point of the search
// space.  Implementations are typically backed by a pdsat.Runner.
//
// Objectives that additionally implement eval.Evaluator get the searches'
// incumbent — the best F value certified so far — threaded into every
// evaluation, enabling the evaluation engine's incumbent pruning: a pruned
// evaluation returns a certified lower bound above the incumbent instead of
// paying for the full sample, and the searches treat such points as "worse
// than best" (recorded with Visit.Pruned set).  Objectives without the
// interface are evaluated exactly as before.
type Objective interface {
	Evaluate(ctx context.Context, p decomp.Point) (float64, error)
}

// ObjectiveFunc adapts a function to the Objective interface.
type ObjectiveFunc func(ctx context.Context, p decomp.Point) (float64, error)

// Evaluate implements Objective.
func (f ObjectiveFunc) Evaluate(ctx context.Context, p decomp.Point) (float64, error) {
	return f(ctx, p)
}

// ActivitySource exposes per-variable conflict activity.  When the objective
// also implements this interface, the tabu search uses it for the
// getNewCenter heuristic of the paper ("the point for which the total
// conflict activity of Boolean variables contained in the corresponding
// decomposition set is the largest").
type ActivitySource interface {
	VarActivity(v cnf.Var) float64
}

// Options configure both minimizers; the zero value is completed with
// DefaultOptions values.
type Options struct {
	// Radius is the neighbourhood radius ρ (1 in all the paper's
	// experiments).
	Radius int
	// MaxRadius bounds the radius growth of simulated annealing when a
	// neighbourhood is exhausted without an accepted point.
	MaxRadius int
	// MaxEvaluations bounds the number of objective evaluations (cache hits
	// do not count).  Zero means unlimited.
	MaxEvaluations int
	// MaxTime bounds the wall-clock duration of the search (the
	// timeExceeded() predicate of the pseudocode).  Zero means unlimited.
	MaxTime time.Duration
	// Seed drives point selection and the stochastic acceptance rule.
	Seed int64

	// InitialTemperature is T0 of the simulated annealing.
	InitialTemperature float64
	// CoolingFactor is Q: T_i = Q·T_{i-1}, Q ∈ (0,1).
	CoolingFactor float64
	// MinTemperature is T_inf; the annealing stops when the temperature
	// drops below it.
	MinTemperature float64

	// Observer, when non-nil, is called for every recorded Visit as the
	// search makes it, from the search's goroutine, in trace order.  It
	// must not block for long and must not call back into the search.
	// Observation never changes the search itself: the visits are the
	// same ones that end up in Result.Trace.
	Observer func(Visit)

	// TargetValue, when positive, ends the search as soon as its best value
	// reaches the target or below (StopTarget).  Fleet races use it for the
	// fleet-wide early stop; zero disables the check and leaves every other
	// code path untouched.
	TargetValue float64

	// Shared couples the search into a fleet of concurrent searches racing
	// over the same space: Best() tightens the incumbent threaded into
	// every evaluation (enabling cross-search incumbent pruning), and the
	// search Offers each update of its own best value.  For a fleet of one
	// the shared incumbent always equals the search's own best, so the run
	// is bit-identical to an uncoupled search.  Nil means uncoupled.
	//
	// With a foreign (lower) incumbent in play, a pruned evaluation's lower
	// bound may undercut the search's own best value; pruned visits are
	// therefore never counted as improvements — the bound proves the point
	// worse than the fleet's best, which is all a minimizer needs to know.
	Shared SharedIncumbent

	// MaxConcurrentEvals routes the neighbourhood loops through the
	// asynchronous evaluation scheduler (eval.Frontier): up to this many
	// candidate evaluations are kept in flight on the transport at once,
	// with the live best value threaded into every one so siblings prune
	// each other, and the in-flight rest cancelled once a neighbourhood's
	// outcome is decided.  0 keeps the plain sequential loops (the
	// deterministic regression anchor); 1 drives the scheduler one
	// candidate at a time, bit-identical to 0 for the tabu search and the
	// simulated annealing alike; values above 1 pipeline evaluations and
	// require the objective to be safe for concurrent use.  See
	// doc comments in scheduler.go for the determinism rule.
	MaxConcurrentEvals int

	// NeighborhoodObserver, when non-nil, is called after every
	// neighbourhood pass the scheduler completes (tabu neighbourhoods and
	// simulated-annealing waves), from the search's goroutine.  It is only
	// called when MaxConcurrentEvals ≥ 1; the sequential loops predate the
	// neighbourhood notion and emit nothing.
	NeighborhoodObserver func(Neighborhood)
}

// SharedIncumbent is the coupling point of a search fleet: a global,
// monotonically decreasing bound on the best certified F value any coupled
// search has found.  Implementations must be safe for concurrent use; see
// Incumbent.
type SharedIncumbent interface {
	// Best returns the lowest certified F value offered so far (+Inf if
	// none).
	Best() float64
	// Offer publishes a full-estimate best value found by this search,
	// returning true if it improved the shared incumbent.
	Offer(p decomp.Point, v float64) bool
}

// Validate reports whether the options are usable.  Zero values are fine —
// they select the DefaultOptions value or mean "unlimited" — but negative
// budgets, a radius below 1 (when set), or a cooling factor outside (0,1)
// are configuration mistakes and are rejected with a clear error rather
// than silently coerced.  Both search entry points validate eagerly.
func (o Options) Validate() error {
	if o.Radius < 0 {
		return fmt.Errorf("optimize: negative neighbourhood radius %d (use 0 for the default of %d)",
			o.Radius, DefaultOptions().Radius)
	}
	if o.MaxRadius < 0 {
		return fmt.Errorf("optimize: negative maximum radius %d", o.MaxRadius)
	}
	if o.MaxRadius > 0 && o.Radius > 0 && o.MaxRadius < o.Radius {
		return fmt.Errorf("optimize: maximum radius %d below radius %d", o.MaxRadius, o.Radius)
	}
	if o.MaxEvaluations < 0 {
		return fmt.Errorf("optimize: negative evaluation budget %d (use 0 for unlimited)", o.MaxEvaluations)
	}
	if o.MaxTime < 0 {
		return fmt.Errorf("optimize: negative time budget %v (use 0 for unlimited)", o.MaxTime)
	}
	if o.InitialTemperature < 0 {
		return fmt.Errorf("optimize: negative initial temperature %v", o.InitialTemperature)
	}
	if o.MinTemperature < 0 {
		return fmt.Errorf("optimize: negative minimum temperature %v", o.MinTemperature)
	}
	if o.CoolingFactor < 0 || o.CoolingFactor >= 1 {
		return fmt.Errorf("optimize: cooling factor %v outside (0,1) (use 0 for the default of %v)",
			o.CoolingFactor, DefaultOptions().CoolingFactor)
	}
	if o.TargetValue < 0 || math.IsNaN(o.TargetValue) {
		return fmt.Errorf("optimize: invalid target value %v (use 0 to disable the target stop)", o.TargetValue)
	}
	if o.MaxConcurrentEvals < 0 {
		return fmt.Errorf("optimize: negative evaluation concurrency %d (use 0 for the sequential loops)",
			o.MaxConcurrentEvals)
	}
	return nil
}

// DefaultOptions returns the options used when fields are left zero.
func DefaultOptions() Options {
	return Options{
		Radius:             1,
		MaxRadius:          3,
		MaxEvaluations:     0,
		MaxTime:            0,
		Seed:               1,
		InitialTemperature: 0, // 0 = derive from the start value
		CoolingFactor:      0.98,
		MinTemperature:     1e-6,
	}
}

func (o Options) withDefaults() Options {
	def := DefaultOptions()
	if o.Radius <= 0 {
		o.Radius = def.Radius
	}
	if o.MaxRadius < o.Radius {
		o.MaxRadius = o.Radius + 2
	}
	if o.CoolingFactor <= 0 || o.CoolingFactor >= 1 {
		o.CoolingFactor = def.CoolingFactor
	}
	if o.MinTemperature <= 0 {
		o.MinTemperature = def.MinTemperature
	}
	if o.Seed == 0 {
		o.Seed = def.Seed
	}
	return o
}

// StopReason describes why a search terminated.
type StopReason string

// Possible stop reasons.
const (
	StopTime         StopReason = "time limit"
	StopEvaluations  StopReason = "evaluation budget"
	StopTemperature  StopReason = "temperature limit"
	StopExhausted    StopReason = "search space exhausted"
	StopContext      StopReason = "context cancelled"
	StopNoImprovment StopReason = "no unchecked points"
	StopTarget       StopReason = "target value reached"
)

// Visit records one objective evaluation.
type Visit struct {
	// Index is the evaluation number (0-based, cache hits excluded).
	Index int
	// Point is the evaluated point.
	Point decomp.Point
	// Value is F(point), or a certified lower bound on it when Pruned.
	Value float64
	// Accepted reports whether the point became the new centre.
	Accepted bool
	// Improved reports whether the point improved the best known value.
	Improved bool
	// Pruned reports that the evaluation was aborted by incumbent pruning:
	// Value is a lower bound proving the point worse than the best value
	// at evaluation time, not a full Monte Carlo estimate.
	Pruned bool
}

// Result is the outcome of a minimization run.
type Result struct {
	// BestPoint is the best decomposition set found.
	BestPoint decomp.Point
	// BestValue is F(BestPoint).
	BestValue float64
	// Evaluations is the number of objective evaluations performed.
	Evaluations int
	// Trace records every evaluation in order.
	Trace []Visit
	// Stop is the reason the search ended.
	Stop StopReason
	// WallTime is the elapsed time of the search.
	WallTime time.Duration
}

// String summarizes the result.
func (r *Result) String() string {
	return fmt.Sprintf("best F=%.6g with d=%d after %d evaluations (%s)",
		r.BestValue, r.BestPoint.Count(), r.Evaluations, r.Stop)
}

// search bundles state shared by both algorithms.
type search struct {
	obj Objective
	// ev is the budget-aware view of the objective, set when obj implements
	// eval.Evaluator; the searches then thread their incumbent into every
	// evaluation.
	ev     eval.Evaluator
	opts   Options
	rng    *rand.Rand
	start  time.Time
	values map[string]float64
	// prunedPts marks points whose cached value is a pruned lower bound
	// rather than a full estimate.
	prunedPts map[string]bool
	points    map[string]decomp.Point
	evals     int
	trace     []Visit
	stopped   StopReason
}

func newSearch(obj Objective, opts Options) *search {
	s := &search{
		obj:  obj,
		opts: opts,
		rng:  rand.New(rand.NewSource(opts.Seed)),
		//pdsat:nondeterministic anchors the MaxTime budget and WallTime reporting; never feeds F values
		start:     time.Now(),
		values:    make(map[string]float64),
		prunedPts: make(map[string]bool),
		points:    make(map[string]decomp.Point),
	}
	if ev, ok := obj.(eval.Evaluator); ok {
		s.ev = ev
	}
	return s
}

var errStop = errors.New("optimize: stop")

// evaluate returns F(p), consulting the search's value cache first.  fresh
// reports whether an objective evaluation was actually performed; pruned
// that the value is a certified lower bound from an incumbent-pruned
// evaluation (only possible when the objective implements eval.Evaluator
// and the incumbent is finite).  A pruned value exceeds the incumbent it
// was pruned against, and incumbents (best values) only decrease during a
// search, so a cached pruned bound keeps proving its point worse for the
// rest of the run.
func (s *search) evaluate(ctx context.Context, p decomp.Point, incumbent float64) (float64, bool, bool, error) {
	key := p.Key()
	if v, ok := s.values[key]; ok {
		return v, false, s.prunedPts[key], nil
	}
	if err := s.checkBudgets(ctx); err != nil {
		return 0, false, false, err
	}
	if s.opts.Shared != nil && !math.IsInf(incumbent, 1) {
		// A coupled search prunes against the whole fleet's best, not just
		// its own; the fleet incumbent is never above this search's (the
		// search offers every update of its own best value).  The start
		// evaluation (incumbent +Inf) stays uncoupled on purpose: pruning
		// it against a foreign incumbent would leave the search without a
		// certified best value of its own.
		if g := s.opts.Shared.Best(); g < incumbent {
			incumbent = g
		}
	}
	var v float64
	var pruned bool
	var err error
	if s.ev != nil {
		var evn *eval.Evaluation
		evn, err = s.ev.EvaluateF(ctx, p, incumbent)
		if err == nil {
			v, pruned = evn.Value, evn.Pruned
		}
	} else {
		v, err = s.obj.Evaluate(ctx, p)
	}
	if err != nil {
		if ctx.Err() != nil {
			// The objective was interrupted by a cancellation that raced
			// past the checkBudgets call above; end the search gracefully
			// (best-so-far result, StopContext) instead of failing it.
			s.stopped = StopContext
			return 0, false, false, errStop
		}
		return 0, false, false, err
	}
	s.values[key] = v
	if pruned {
		s.prunedPts[key] = true
	}
	s.points[key] = p
	s.evals++
	return v, true, pruned, nil
}

// checkBudgets returns errStop (after recording the reason) if a budget is
// exhausted.
func (s *search) checkBudgets(ctx context.Context) error {
	if ctx.Err() != nil {
		s.stopped = StopContext
		return errStop
	}
	if s.opts.MaxEvaluations > 0 && s.evals >= s.opts.MaxEvaluations {
		s.stopped = StopEvaluations
		return errStop
	}
	//pdsat:nondeterministic MaxTime is an explicitly wall-clock stop; callers wanting reproducible runs use MaxEvaluations
	if s.opts.MaxTime > 0 && time.Since(s.start) >= s.opts.MaxTime {
		s.stopped = StopTime
		return errStop
	}
	return nil
}

// offerBest publishes an update of the search's own best value to the
// fleet's shared incumbent (a no-op for uncoupled searches).  Only full
// estimates reach it: best values never hold pruned lower bounds.
func (s *search) offerBest(p decomp.Point, v float64) {
	if s.opts.Shared != nil {
		s.opts.Shared.Offer(p, v)
	}
}

// targetReached records StopTarget when the best value is at or below a
// configured positive target.
func (s *search) targetReached(bestValue float64) bool {
	if s.opts.TargetValue > 0 && bestValue <= s.opts.TargetValue {
		s.stopped = StopTarget
		return true
	}
	return false
}

func (s *search) record(p decomp.Point, value float64, accepted, improved, pruned bool) {
	v := Visit{
		Index:    len(s.trace),
		Point:    p,
		Value:    value,
		Accepted: accepted,
		Improved: improved,
		Pruned:   pruned,
	}
	s.trace = append(s.trace, v)
	if s.opts.Observer != nil {
		s.opts.Observer(v)
	}
}

func (s *search) result(best decomp.Point, bestValue float64) *Result {
	if s.stopped == "" {
		s.stopped = StopExhausted
	}
	return &Result{
		BestPoint:   best,
		BestValue:   bestValue,
		Evaluations: s.evals,
		Trace:       s.trace,
		Stop:        s.stopped,
		//pdsat:nondeterministic WallTime is reporting-only; it never influences the search
		WallTime: time.Since(s.start),
	}
}

// pickUnchecked returns a pseudo-random element of candidates whose key is
// not in the checked set, or false if none remain.
func (s *search) pickUnchecked(candidates []decomp.Point, checked map[string]bool) (decomp.Point, bool) {
	unchecked := make([]decomp.Point, 0, len(candidates))
	for _, c := range candidates {
		if !checked[c.Key()] {
			unchecked = append(unchecked, c)
		}
	}
	if len(unchecked) == 0 {
		return decomp.Point{}, false
	}
	return unchecked[s.rng.Intn(len(unchecked))], true
}

// SimulatedAnnealing minimizes the objective starting from the given point,
// following Algorithm 1 of the paper.  The returned result always reports
// the best point seen over the whole run (the pseudocode's χ_best tracks the
// accepted centre; we additionally remember the global minimum, which is
// what a user of the partitioning actually wants).
func SimulatedAnnealing(ctx context.Context, obj Objective, start decomp.Point, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	s := newSearch(obj, opts)

	centerValue, _, _, err := s.evaluate(ctx, start, math.Inf(1))
	if err != nil {
		if errors.Is(err, errStop) {
			return s.result(start, math.Inf(1)), nil
		}
		return nil, err
	}
	s.record(start, centerValue, true, true, false)
	center, best, bestValue := start, start, centerValue
	s.offerBest(best, bestValue)
	if s.targetReached(bestValue) {
		return s.result(best, bestValue), nil
	}

	temperature := opts.InitialTemperature
	if temperature <= 0 {
		// A temperature of the order of the start value accepts moderate
		// degradations early on, which matches the usual SA practice when no
		// scale is given.
		temperature = math.Max(centerValue*0.1, 1)
	}

	if s.frontierWidth() > 0 {
		return s.annealScheduled(ctx, center, centerValue, best, bestValue, temperature)
	}

	for {
		if err := s.checkBudgets(ctx); err != nil {
			return s.result(best, bestValue), nil
		}
		if temperature < opts.MinTemperature {
			s.stopped = StopTemperature
			return s.result(best, bestValue), nil
		}

		bestValueUpdated := false
		radius := opts.Radius
		checked := map[string]bool{center.Key(): true}
		for !bestValueUpdated {
			neighborhood := center.Neighbors(radius)
			chi, ok := s.pickUnchecked(neighborhood, checked)
			if !ok {
				// Neighbourhood exhausted at this radius.
				if radius < opts.MaxRadius {
					radius++
					continue
				}
				s.stopped = StopNoImprovment
				return s.result(best, bestValue), nil
			}
			// The incumbent is the global best: a point pruned against it
			// can never improve the run's result.  The returned lower bound
			// feeds the acceptance rule below; since the bound understates
			// F, a pruned point is — if anything — accepted slightly more
			// often than its true value would be, preserving the
			// hill-escaping of the annealing.
			value, _, prunedEval, err := s.evaluate(ctx, chi, bestValue)
			if err != nil {
				if errors.Is(err, errStop) {
					return s.result(best, bestValue), nil
				}
				return nil, err
			}
			checked[chi.Key()] = true

			accepted := s.pointAccepted(value, centerValue, temperature)
			// A pruned value is a lower bound proving the point worse than
			// the fleet incumbent, never a new best (without a fleet the
			// bound exceeds bestValue anyway, so the guard changes nothing).
			improved := value < bestValue && !prunedEval
			s.record(chi, value, accepted, improved, prunedEval)
			if accepted {
				center, centerValue = chi, value
				if improved {
					best, bestValue = chi, value
					s.offerBest(best, bestValue)
					if s.targetReached(bestValue) {
						return s.result(best, bestValue), nil
					}
				}
				bestValueUpdated = true
			}
			if allChecked(neighborhood, checked) && !bestValueUpdated {
				radius++
				if radius > opts.MaxRadius {
					s.stopped = StopNoImprovment
					return s.result(best, bestValue), nil
				}
			}
			temperature *= opts.CoolingFactor
			if temperature < opts.MinTemperature {
				s.stopped = StopTemperature
				return s.result(best, bestValue), nil
			}
			if err := s.checkBudgets(ctx); err != nil {
				return s.result(best, bestValue), nil
			}
		}
	}
}

// pointAccepted implements the acceptance rule of Algorithm 1.
func (s *search) pointAccepted(candidate, current, temperature float64) bool {
	if candidate < current {
		return true
	}
	if temperature <= 0 {
		return false
	}
	p := math.Exp(-(candidate - current) / temperature)
	return s.rng.Float64() < p
}

func allChecked(points []decomp.Point, checked map[string]bool) bool {
	for _, p := range points {
		if !checked[p.Key()] {
			return false
		}
	}
	return true
}

// TabuSearch minimizes the objective starting from the given point,
// following Algorithm 2 of the paper.  L1 holds points whose whole
// neighbourhood has been checked, L2 holds checked points with unchecked
// neighbourhoods; when the current neighbourhood yields no improvement the
// next centre is the L2 point with the largest total conflict activity of
// its decomposition set (falling back to the best F value when the
// objective provides no activity information).
func TabuSearch(ctx context.Context, obj Objective, start decomp.Point, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	s := newSearch(obj, opts)

	startValue, _, _, err := s.evaluate(ctx, start, math.Inf(1))
	if err != nil {
		if errors.Is(err, errStop) {
			return s.result(start, math.Inf(1)), nil
		}
		return nil, err
	}
	s.record(start, startValue, true, true, false)

	tl := newTabuLists(opts.Radius)
	tl.addChecked(start, startValue, s.values)

	center, best, bestValue := start, start, startValue
	s.offerBest(best, bestValue)
	if s.targetReached(bestValue) {
		return s.result(best, bestValue), nil
	}

	for {
		if err := s.checkBudgets(ctx); err != nil {
			return s.result(best, bestValue), nil
		}
		if s.frontierWidth() > 0 {
			updated, err := s.tabuNeighborhoodScheduled(ctx, tl, center, &best, &bestValue)
			if err != nil {
				if errors.Is(err, errStop) {
					return s.result(best, bestValue), nil
				}
				return nil, err
			}
			if updated {
				center = best
				continue
			}
			next, ok := tl.getNewCenter(s.obj)
			if !ok {
				s.stopped = StopExhausted
				return s.result(best, bestValue), nil
			}
			center = next
			continue
		}
		bestValueUpdated := false
		neighborhood := center.Neighbors(opts.Radius)
		for {
			chi, ok := s.pickUncheckedTabu(neighborhood)
			if !ok {
				break // neighbourhood of the centre fully checked
			}
			// The incumbent is the best value so far: a pruned point's lower
			// bound exceeds it, so `improved` below is false for every
			// pruned evaluation — exactly the information the tabu search
			// needs from a worse point, at a fraction of the solving.
			value, fresh, prunedEval, err := s.evaluate(ctx, chi, bestValue)
			if err != nil {
				if errors.Is(err, errStop) {
					return s.result(best, bestValue), nil
				}
				return nil, err
			}
			if fresh {
				tl.addChecked(chi, value, s.values)
			}
			// Pruned lower bounds never become the best value (see the SA
			// loop for the fleet rationale; uncoupled runs are unaffected).
			improved := value < bestValue && !prunedEval
			s.record(chi, value, improved, improved, prunedEval)
			if improved {
				best, bestValue = chi, value
				s.offerBest(best, bestValue)
				if s.targetReached(bestValue) {
					return s.result(best, bestValue), nil
				}
				bestValueUpdated = true
			}
			if err := s.checkBudgets(ctx); err != nil {
				return s.result(best, bestValue), nil
			}
		}
		if bestValueUpdated {
			center = best
			continue
		}
		next, ok := tl.getNewCenter(s.obj)
		if !ok {
			s.stopped = StopExhausted
			return s.result(best, bestValue), nil
		}
		center = next
	}
}

// pickUncheckedTabu returns a pseudo-random neighbourhood point that has not
// been evaluated yet (the tabu lists make "checked anywhere" equivalent to
// "has a cached value").
func (s *search) pickUncheckedTabu(candidates []decomp.Point) (decomp.Point, bool) {
	unchecked := make([]decomp.Point, 0, len(candidates))
	for _, c := range candidates {
		if _, seen := s.values[c.Key()]; !seen {
			unchecked = append(unchecked, c)
		}
	}
	if len(unchecked) == 0 {
		return decomp.Point{}, false
	}
	return unchecked[s.rng.Intn(len(unchecked))], true
}

// tabuLists implements the L1/L2 bookkeeping of Algorithm 2.
type tabuLists struct {
	radius int
	// l2 maps point keys to entries with unchecked neighbourhoods.
	l2 map[string]*tabuEntry
	// l1 maps point keys to entries whose neighbourhood is fully checked.
	l1 map[string]*tabuEntry
}

type tabuEntry struct {
	point     decomp.Point
	value     float64
	unchecked int // number of neighbours not yet evaluated
}

func newTabuLists(radius int) *tabuLists {
	return &tabuLists{
		radius: radius,
		l2:     make(map[string]*tabuEntry),
		l1:     make(map[string]*tabuEntry),
	}
}

// addChecked registers a newly evaluated point: it joins L2 (or directly L1
// if its neighbourhood happens to be fully evaluated already) and the
// unchecked counters of all neighbouring L2 entries are decreased, moving
// entries whose neighbourhood became fully checked into L1.  values is the
// global cache of evaluated points (keyed like Point.Key).
func (t *tabuLists) addChecked(p decomp.Point, value float64, values map[string]float64) {
	neighbors := p.Neighbors(t.radius)
	unchecked := 0
	for _, n := range neighbors {
		if _, ok := values[n.Key()]; !ok {
			unchecked++
		}
	}
	e := &tabuEntry{point: p, value: value, unchecked: unchecked}
	if unchecked == 0 {
		t.l1[p.Key()] = e
	} else {
		t.l2[p.Key()] = e
	}
	// The new point is now checked: update neighbours that live in L2.
	for _, n := range neighbors {
		key := n.Key()
		if other, ok := t.l2[key]; ok {
			other.unchecked--
			if other.unchecked <= 0 {
				delete(t.l2, key)
				t.l1[key] = other
			}
		}
	}
}

// getNewCenter implements the heuristic of the paper: among L2 points pick
// the one whose decomposition set has the largest total conflict activity;
// objectives without activity information fall back to the smallest F value.
func (t *tabuLists) getNewCenter(obj Objective) (decomp.Point, bool) {
	if len(t.l2) == 0 {
		return decomp.Point{}, false
	}
	src, hasActivity := obj.(ActivitySource)
	keys := make([]string, 0, len(t.l2))
	for key := range t.l2 {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var bestKey string
	var bestScore float64
	first := true
	for _, key := range keys {
		e := t.l2[key]
		var score float64
		if hasActivity {
			for _, v := range e.point.Vars() {
				score += src.VarActivity(v)
			}
		} else {
			score = -e.value // smaller F = larger score
		}
		if first || score > bestScore {
			bestKey, bestScore, first = key, score, false
		}
	}
	return t.l2[bestKey].point, true
}

// L1Size and L2Size expose the tabu list sizes (used in tests).
func (t *tabuLists) L1Size() int { return len(t.l1) }

// L2Size returns the number of checked points with unchecked neighbourhoods.
func (t *tabuLists) L2Size() int { return len(t.l2) }
