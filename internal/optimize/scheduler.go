package optimize

// Neighborhood-parallel search: the scheduler-driven variants of the two
// metaheuristics' inner loops, active when Options.MaxConcurrentEvals ≥ 1.
//
// The tabu search pre-draws the visit order of a whole neighbourhood —
// consuming the search RNG exactly as the sequential one-pick-at-a-time
// loop would, which is what makes width 1 bit-identical to the sequential
// path — and submits it to an eval.Frontier: up to `width` candidate
// evaluations run concurrently on the transport, the live best value is
// threaded into every one (siblings prune each other as results stream
// back), and results are processed strictly in visit order.  The simulated
// annealing speculates in waves of `width` pre-drawn candidates; an
// acceptance decides the wave, and the in-flight rest is cancelled and
// discarded whole.
//
// Determinism rule.  Pre-reserved evaluation slots make every candidate's
// Monte Carlo sample a pure function of (scope seed, slot), so full
// estimates are scheduling-independent, and the minimum-F candidate of a
// neighbourhood can never be pruned by the live bound (its partial lower
// bound cannot exceed its own full estimate, the smallest value any
// sibling can install; pruning requires strictly exceeding the bound).
// Selected centres and the reported best F are therefore independent of
// completion order.  What remains scheduling-dependent under an active
// policy is which non-winning candidates get pruned (and the lower-bound
// values they report), subproblem solved/aborted counts, conflict
// activity absorbed from truncated solves — and, for the annealing, which
// discarded wave members completed early enough to land in the F-cache.
// For strict run-to-run reproducibility of full traces, switch Prune and
// Cache off, exactly as with fleet races.

import (
	"context"
	"errors"

	"github.com/paper-repro/pdsat-go/internal/decomp"
	"github.com/paper-repro/pdsat-go/internal/eval"
)

// Neighborhood summarizes one completed neighbourhood pass of a
// scheduler-driven search: a whole tabu neighbourhood, or one speculative
// wave of the simulated annealing.
type Neighborhood struct {
	// Center is the pass's neighbourhood centre; Radius its radius.
	Center decomp.Point
	Radius int
	// Candidates is the number of candidates submitted to the scheduler;
	// Evaluated how many were freshly evaluated (value-cache hits within
	// the search are excluded), Pruned how many of those the incumbent
	// bound cut short, and Cancelled how many were discarded unprocessed
	// when the pass's outcome was decided early.
	Candidates int
	Evaluated  int
	Pruned     int
	Cancelled  int
	// Improved reports whether the pass improved the search's best value,
	// which BestValue reports as of the end of the pass.
	Improved  bool
	BestValue float64
	// Width is the scheduler's in-flight evaluation cap.
	Width int
}

// frontierWidth returns the scheduler width, 0 meaning the plain
// sequential loops.
func (s *search) frontierWidth() int {
	if s.opts.MaxConcurrentEvals <= 0 {
		return 0
	}
	return s.opts.MaxConcurrentEvals
}

// observeNeighborhood reports a completed pass to the configured observer.
func (s *search) observeNeighborhood(nb Neighborhood) {
	if s.opts.NeighborhoodObserver != nil {
		s.opts.NeighborhoodObserver(nb)
	}
}

// frontierEvaluator is the evaluator the scheduler submits to: the
// objective's budget-aware view when it has one, otherwise a plain
// adapter (no pruning, the estimate is the value).
func (s *search) frontierEvaluator() eval.Evaluator {
	if s.ev != nil {
		return s.ev
	}
	return objectiveEvaluator{obj: s.obj}
}

type objectiveEvaluator struct{ obj Objective }

func (o objectiveEvaluator) EvaluateF(ctx context.Context, p decomp.Point, incumbent float64) (*eval.Evaluation, error) {
	v, err := o.obj.Evaluate(ctx, p)
	if err != nil {
		return nil, err
	}
	return &eval.Evaluation{Value: v}, nil
}

// frontierBound seeds a wave's live incumbent bound from the search's best
// value, tightened by the fleet's shared incumbent when coupled.
func (s *search) frontierBound(bestValue float64) *eval.Bound {
	b := eval.NewBound(bestValue)
	if s.opts.Shared != nil {
		b.Lower(s.opts.Shared.Best())
	}
	return b
}

// drawTabuOrder pre-draws the complete visit order of one tabu
// neighbourhood.  It consumes the search RNG exactly as the sequential
// loop's repeated pickUncheckedTabu calls would (same filtered slice, same
// Intn argument at every step), because an evaluation never touches the
// RNG and the tabu search always exhausts a neighbourhood it enters — the
// only early exits end the whole search, after which the RNG is never
// read again.
func (s *search) drawTabuOrder(candidates []decomp.Point) []decomp.Point {
	taken := make(map[string]bool, len(candidates))
	order := make([]decomp.Point, 0, len(candidates))
	for {
		unchecked := make([]decomp.Point, 0, len(candidates))
		for _, c := range candidates {
			key := c.Key()
			if taken[key] {
				continue
			}
			if _, seen := s.values[key]; seen {
				continue
			}
			unchecked = append(unchecked, c)
		}
		if len(unchecked) == 0 {
			return order
		}
		pick := unchecked[s.rng.Intn(len(unchecked))]
		taken[pick.Key()] = true
		order = append(order, pick)
	}
}

// drawWave pre-draws up to k distinct candidates the way the annealing's
// sequential pickUnchecked would draw them one by one (the checked set,
// unlike the tabu filter, resets per centre and admits re-visits of
// points valued in earlier neighbourhoods — those are served from the
// search's value cache without an evaluation, in either mode).
func (s *search) drawWave(candidates []decomp.Point, checked map[string]bool, k int) []decomp.Point {
	wave := make([]decomp.Point, 0, k)
	taken := make(map[string]bool, k)
	for len(wave) < k {
		unchecked := make([]decomp.Point, 0, len(candidates))
		for _, c := range candidates {
			key := c.Key()
			if checked[key] || taken[key] {
				continue
			}
			unchecked = append(unchecked, c)
		}
		if len(unchecked) == 0 {
			break
		}
		pick := unchecked[s.rng.Intn(len(unchecked))]
		taken[pick.Key()] = true
		wave = append(wave, pick)
	}
	return wave
}

// waveHandler processes one wave member, in visit order, on the search's
// goroutine.  fresh reports a real evaluation (false for value-cache
// hits).  It returns stop=true to end the wave (the scheduler cancels and
// discards the in-flight rest); a non-nil error — errStop for recorded
// graceful stops — ends the whole search.
type waveHandler func(chi decomp.Point, value float64, prunedEval, fresh bool) (stop bool, err error)

// frontierValue unwraps a frontier result the way s.evaluate unwraps an
// evaluator call: cancellations racing past the budget checks become a
// graceful StopContext, everything else is a hard error.
func (s *search) frontierValue(ctx context.Context, r eval.FrontierResult) (float64, bool, error) {
	if r.Err != nil {
		if ctx.Err() != nil || errors.Is(r.Err, context.Canceled) {
			s.stopped = StopContext
			return 0, false, errStop
		}
		return 0, false, r.Err
	}
	return r.Eval.Value, r.Eval.Pruned, nil
}

// runWave drives one pre-drawn candidate sequence through the scheduler
// and the handler.  incumbent is re-read per candidate (the handler may
// improve the best value mid-wave), exactly like the sequential loops
// pass their live best value into every evaluation.  Results reach the
// handler strictly in wave order; the returned count is how many members
// the handler processed (the rest were cancelled or never submitted).  At
// width 1 the wave is evaluated sequentially through s.evaluate,
// reproducing the sequential loops' per-candidate budget checks and
// value-cache behaviour bit for bit.
func (s *search) runWave(ctx context.Context, wave []decomp.Point, incumbent func() float64, handle waveHandler) (int, error) {
	width := s.frontierWidth()
	processed := 0
	if width <= 1 {
		for _, chi := range wave {
			value, fresh, prunedEval, err := s.evaluate(ctx, chi, incumbent())
			if err != nil {
				return processed, err
			}
			processed++
			stop, err := handle(chi, value, prunedEval, fresh)
			if err != nil {
				return processed, err
			}
			if stop {
				return processed, nil
			}
		}
		return processed, nil
	}

	// Wave members the search has already valued are served from its value
	// cache in place; only the rest is submitted to the frontier.  The
	// frontier delivers in submission order, so interleaving the cached
	// members back in by wave position preserves the visit order exactly.
	var need []int
	for i, chi := range wave {
		if _, ok := s.values[chi.Key()]; !ok {
			need = append(need, i)
		}
	}
	var (
		pos     int // next wave position to process
		stopErr error
		done    bool
	)
	// processCached handles cached members at wave positions below limit.
	processCached := func(limit int) bool {
		for pos < limit {
			chi := wave[pos]
			key := chi.Key()
			v, ok := s.values[key]
			if !ok {
				break
			}
			pos++
			processed++
			stop, err := handle(chi, v, s.prunedPts[key], false)
			if err != nil {
				stopErr = err
				return true
			}
			if stop {
				return true
			}
		}
		return false
	}
	if len(need) == 0 {
		processCached(len(wave))
		return processed, stopErr
	}
	pts := make([]decomp.Point, len(need))
	for j, i := range need {
		pts[j] = wave[i]
	}
	bound := s.frontierBound(incumbent())
	fr := eval.NewFrontier(s.frontierEvaluator(), width)
	fr.Run(ctx, pts, bound, func(r eval.FrontierResult) bool {
		if processCached(need[r.Index]) {
			done = true
			return true
		}
		if err := s.checkBudgets(ctx); err != nil {
			stopErr, done = err, true
			return true
		}
		value, prunedEval, err := s.frontierValue(ctx, r)
		if err != nil {
			stopErr, done = err, true
			return true
		}
		key := r.Point.Key()
		s.values[key] = value
		if prunedEval {
			s.prunedPts[key] = true
		}
		s.points[key] = r.Point
		s.evals++
		pos++
		processed++
		stop, err := handle(r.Point, value, prunedEval, true)
		if err != nil {
			stopErr, done = err, true
			return true
		}
		if stop {
			done = true
			return true
		}
		if s.opts.Shared != nil {
			// Foreign fleet improvements tighten the in-flight siblings too.
			bound.Lower(s.opts.Shared.Best())
		}
		return false
	})
	if !done {
		processCached(len(wave))
	}
	return processed, stopErr
}

// tabuNeighborhoodScheduled runs one whole tabu neighbourhood through the
// scheduler and reports whether it improved the best value.  A returned
// errStop ends the search gracefully (the stop reason is already
// recorded); other errors are hard failures.
func (s *search) tabuNeighborhoodScheduled(ctx context.Context, tl *tabuLists, center decomp.Point, best *decomp.Point, bestValue *float64) (bool, error) {
	order := s.drawTabuOrder(center.Neighbors(s.opts.Radius))
	if len(order) == 0 {
		return false, nil
	}
	stats := Neighborhood{
		Center:     center,
		Radius:     s.opts.Radius,
		Candidates: len(order),
		Width:      s.frontierWidth(),
	}
	updated := false
	handle := func(chi decomp.Point, value float64, prunedEval, fresh bool) (bool, error) {
		if fresh {
			tl.addChecked(chi, value, s.values)
			stats.Evaluated++
		}
		if prunedEval {
			stats.Pruned++
		}
		improved := value < *bestValue && !prunedEval
		s.record(chi, value, improved, improved, prunedEval)
		if improved {
			*best, *bestValue = chi, value
			updated = true
			stats.Improved = true
			s.offerBest(*best, *bestValue)
			if s.targetReached(*bestValue) {
				return true, errStop
			}
		}
		if err := s.checkBudgets(ctx); err != nil {
			return true, err
		}
		return false, nil
	}
	processed, err := s.runWave(ctx, order, func() float64 { return *bestValue }, handle)
	stats.Cancelled = len(order) - processed
	stats.BestValue = *bestValue
	s.observeNeighborhood(stats)
	return updated, err
}

// annealScheduled is the simulated annealing's main loop in scheduler
// mode: speculative waves of up to `width` pre-drawn candidates, an
// acceptance decides the wave and discards its unprocessed rest whole
// (never recorded, not even in the search's value cache, so the decision
// sequence matches what a sequential run would do from the same
// acceptance).  At width 1 every wave holds one candidate and the walk is
// bit-identical to the sequential loop.
func (s *search) annealScheduled(ctx context.Context, center decomp.Point, centerValue float64, best decomp.Point, bestValue, temperature float64) (*Result, error) {
	opts := s.opts
	width := s.frontierWidth()
	for {
		if err := s.checkBudgets(ctx); err != nil {
			return s.result(best, bestValue), nil
		}
		if temperature < opts.MinTemperature {
			s.stopped = StopTemperature
			return s.result(best, bestValue), nil
		}

		bestValueUpdated := false
		radius := opts.Radius
		checked := map[string]bool{center.Key(): true}
		for !bestValueUpdated {
			neighborhood := center.Neighbors(radius)
			wave := s.drawWave(neighborhood, checked, width)
			if len(wave) == 0 {
				if radius < opts.MaxRadius {
					radius++
					continue
				}
				s.stopped = StopNoImprovment
				return s.result(best, bestValue), nil
			}
			stats := Neighborhood{
				Center:     center,
				Radius:     radius,
				Candidates: len(wave),
				Width:      width,
			}
			handle := func(chi decomp.Point, value float64, prunedEval, fresh bool) (bool, error) {
				checked[chi.Key()] = true
				if fresh {
					stats.Evaluated++
				}
				if prunedEval {
					stats.Pruned++
				}
				accepted := s.pointAccepted(value, centerValue, temperature)
				improved := value < bestValue && !prunedEval
				s.record(chi, value, accepted, improved, prunedEval)
				if accepted {
					center, centerValue = chi, value
					if improved {
						best, bestValue = chi, value
						stats.Improved = true
						s.offerBest(best, bestValue)
						if s.targetReached(bestValue) {
							return true, errStop
						}
					}
					bestValueUpdated = true
				}
				if allChecked(neighborhood, checked) && !bestValueUpdated {
					radius++
					if radius > opts.MaxRadius {
						s.stopped = StopNoImprovment
						return true, errStop
					}
				}
				temperature *= opts.CoolingFactor
				if temperature < opts.MinTemperature {
					s.stopped = StopTemperature
					return true, errStop
				}
				if err := s.checkBudgets(ctx); err != nil {
					return true, err
				}
				return accepted, nil
			}
			processed, err := s.runWave(ctx, wave, func() float64 { return bestValue }, handle)
			stats.Cancelled = len(wave) - processed
			stats.BestValue = bestValue
			s.observeNeighborhood(stats)
			if err != nil {
				if errors.Is(err, errStop) {
					return s.result(best, bestValue), nil
				}
				return nil, err
			}
		}
	}
}
