// Fleet orchestration: race several metaheuristic searches — mixed
// strategies, multi-restart start points, per-member sub-seeds — over one
// objective space concurrently, coupled through a single shared incumbent.
//
// The paper runs Algorithm 1 (simulated annealing) and Algorithm 2 (tabu
// search) as separate PDSAT invocations and compares the decomposition sets
// they find (§3–4).  With the budget-aware evaluation engine, racing them is
// strictly better than running them one after another: every member's best F
// tightens the incumbent that prunes every other member's evaluations, and
// (at the session layer) warms the shared F-cache.
package optimize

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/paper-repro/pdsat-go/internal/decomp"
)

// Fleet method names (the pdsat package normalizes its richer spellings to
// these before building members).
const (
	MethodSA   = "sa"
	MethodTabu = "tabu"
)

// SubSeed derives the deterministic sub-seed of stream i from a root seed
// (a splitmix64 step, so neighbouring roots and streams decorrelate).  Fleet
// members use three streams each — by convention stream 3i seeds member i's
// evaluation sampling, 3i+1 its search walk and 3i+2 its start-point jitter
// — so a member can be reproduced standalone from (root, i) alone.  The rule
// is part of the public contract: it is documented in the README and
// re-exported by the pdsat package.
func SubSeed(root int64, i int) int64 {
	z := uint64(root) + (uint64(i)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Incumbent is the global atomic incumbent of a search fleet: the lowest
// certified F value any member has found, plus the point and member that
// found it.  Best is a lock-free load (it sits on every evaluation's path);
// offers take a mutex, which is fine because improvements are rare.  It
// implements the coupling half of SharedIncumbent via MemberView.
type Incumbent struct {
	bits atomic.Uint64 // Float64bits of the current best value

	mu     sync.Mutex
	point  decomp.Point // guarded by mu
	member int          // guarded by mu

	// OnImproved, when non-nil, is called (under the incumbent's lock, so
	// notifications arrive in improvement order) for every accepted offer.
	// It must not block and must not call back into the incumbent.  Set it
	// before the fleet starts.
	OnImproved func(member int, p decomp.Point, v float64)
}

// NewIncumbent returns an incumbent holding +Inf (no value yet).
func NewIncumbent() *Incumbent {
	in := &Incumbent{}
	in.bits.Store(math.Float64bits(math.Inf(1)))
	return in
}

// Best returns the current best value (+Inf if none).
func (in *Incumbent) Best() float64 { return math.Float64frombits(in.bits.Load()) }

// Snapshot returns the current best value with the point and member that
// produced it (member is -1 while the incumbent still holds +Inf).
func (in *Incumbent) Snapshot() (p decomp.Point, v float64, member int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	v = in.Best()
	if math.IsInf(v, 1) {
		return decomp.Point{}, v, -1
	}
	return in.point, v, in.member
}

// offer lowers the incumbent to v if it improves it.
func (in *Incumbent) offer(member int, p decomp.Point, v float64) bool {
	if math.IsNaN(v) {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if v >= in.Best() {
		return false
	}
	in.bits.Store(math.Float64bits(v))
	in.point, in.member = p, member
	if in.OnImproved != nil {
		in.OnImproved(member, p, v)
	}
	return true
}

// MemberView returns the member-tagged SharedIncumbent handed to one
// search's Options.Shared.
func (in *Incumbent) MemberView(member int) SharedIncumbent {
	return memberView{in: in, member: member}
}

type memberView struct {
	in     *Incumbent
	member int
}

func (m memberView) Best() float64 { return m.in.Best() }

func (m memberView) Offer(p decomp.Point, v float64) bool { return m.in.offer(m.member, p, v) }

// FleetMember describes one search of a fleet: a method, a fully resolved
// objective (typically backed by its own evaluation scope, so its sampling
// is independent of the other members' scheduling), a start point and
// per-member options whose Seed has already been derived via SubSeed.
type FleetMember struct {
	// Method is MethodSA or MethodTabu.
	Method string
	// Objective evaluates F for this member.  Members may share one
	// objective, but per-member objectives with isolated sampling state are
	// what makes a fixed-seed fleet's results independent of interleaving.
	Objective Objective
	// Start is the member's starting decomposition set.
	Start decomp.Point
	// Opts are the member's search options; RunFleet injects the shared
	// incumbent into Opts.Shared when it is nil.
	Opts Options
}

// FleetOptions configure a fleet run.
type FleetOptions struct {
	// Shared is the fleet's global incumbent; nil means a fresh one.
	Shared *Incumbent
	// OnMemberDone, when non-nil, is called from the finishing member's
	// goroutine as each member completes (before the fleet-wide early-stop
	// decision).  It must not block for long.
	OnMemberDone func(member int, method string, res *Result)
	// KeepRacing disables the fleet-wide early stop: by default the whole
	// fleet is cancelled as soon as one member exhausts its reachable space
	// or reaches its target value, since the remaining members are then
	// burning budget on a race that is already decided.
	KeepRacing bool
}

// MemberResult is one member's outcome within a fleet.
type MemberResult struct {
	// Member is the member's index in the fleet.
	Member int
	// Method is the member's search method.
	Method string
	// Result is the member's search result (members cancelled by the
	// fleet-wide early stop report StopContext with their best so far).
	Result *Result
	// Err is the member's hard error, nil for every normal termination.
	Err error
}

// FleetResult is the outcome of a fleet run.
type FleetResult struct {
	// Members holds every member's outcome, indexed by member.
	Members []MemberResult
	// Best is the index of the winning member (lowest best value, ties to
	// the lowest index), or -1 if no member produced a finite best value.
	Best int
	// BestPoint and BestValue are the winning member's best point and F.
	BestPoint decomp.Point
	BestValue float64
	// WallTime is the elapsed time of the whole fleet.
	WallTime time.Duration
}

// RunFleet races the members concurrently, coupled through one shared
// incumbent, and waits for all of them.  Members run their searches with
// their own options and objectives; a member that hits its target value or
// exhausts its space ends the race for everyone (unless KeepRacing), and a
// member's hard error cancels the fleet and is returned alongside the
// partial result.  A fleet of one is bit-identical to calling its search
// function directly with the same objective, start and options.
func RunFleet(ctx context.Context, members []FleetMember, opts FleetOptions) (*FleetResult, error) {
	if len(members) == 0 {
		return nil, errors.New("optimize: empty fleet")
	}
	for i, m := range members {
		if m.Objective == nil {
			return nil, fmt.Errorf("optimize: fleet member %d has no objective", i)
		}
		switch m.Method {
		case MethodSA, MethodTabu:
		default:
			return nil, fmt.Errorf("optimize: fleet member %d has unknown method %q (want %q or %q)",
				i, m.Method, MethodSA, MethodTabu)
		}
		if err := m.Opts.Validate(); err != nil {
			return nil, fmt.Errorf("optimize: fleet member %d: %w", i, err)
		}
	}
	shared := opts.Shared
	if shared == nil {
		shared = NewIncumbent()
	}
	//pdsat:nondeterministic WallTime reporting only; member results stay seed-deterministic
	start := time.Now()
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]MemberResult, len(members))
	var wg sync.WaitGroup
	for i := range members {
		m := members[i]
		o := m.Opts
		if o.Shared == nil {
			o.Shared = shared.MemberView(i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var res *Result
			var err error
			switch m.Method {
			case MethodSA:
				res, err = SimulatedAnnealing(fctx, m.Objective, m.Start, o)
			default:
				res, err = TabuSearch(fctx, m.Objective, m.Start, o)
			}
			results[i] = MemberResult{Member: i, Method: m.Method, Result: res, Err: err}
			if err != nil {
				cancel()
				return
			}
			if opts.OnMemberDone != nil {
				opts.OnMemberDone(i, m.Method, res)
			}
			if !opts.KeepRacing && (res.Stop == StopTarget || res.Stop == StopExhausted) {
				// The race is decided: this member either reached the target
				// or proved there is nothing left to explore from its start.
				cancel()
			}
		}()
	}
	wg.Wait()

	fr := &FleetResult{
		Members:   results,
		Best:      -1,
		BestValue: math.Inf(1),
		//pdsat:nondeterministic WallTime reporting only
		WallTime: time.Since(start),
	}
	var firstErr error
	for i, mr := range results {
		if mr.Err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("optimize: fleet member %d (%s): %w", i, mr.Method, mr.Err)
			}
			continue
		}
		if mr.Result == nil || math.IsInf(mr.Result.BestValue, 1) {
			continue
		}
		if mr.Result.BestValue < fr.BestValue {
			fr.Best = i
			fr.BestPoint = mr.Result.BestPoint
			fr.BestValue = mr.Result.BestValue
		}
	}
	return fr, firstErr
}
