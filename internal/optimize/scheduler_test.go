package optimize

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/decomp"
)

// safeObjective wraps countingObjective for concurrent evaluation (the
// scheduler's width > 1 contract requires a concurrency-safe objective).
type safeObjective struct {
	mu    sync.Mutex
	inner *countingObjective
	delay time.Duration
}

func (o *safeObjective) Evaluate(ctx context.Context, p decomp.Point) (float64, error) {
	if o.delay > 0 {
		select {
		case <-time.After(o.delay):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inner.Evaluate(ctx, p)
}

func (o *safeObjective) VarActivity(v cnf.Var) float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inner.VarActivity(v)
}

// tracesEqual compares two search traces field by field.
func tracesEqual(t *testing.T, got, want []Visit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trace length %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Index != w.Index || g.Point.Key() != w.Point.Key() || g.Value != w.Value ||
			g.Accepted != w.Accepted || g.Improved != w.Improved || g.Pruned != w.Pruned {
			t.Fatalf("trace[%d] = %+v, want %+v", i, g, w)
		}
	}
}

// resultsEqual compares two full search results including the trace.
func resultsEqual(t *testing.T, got, want *Result) {
	t.Helper()
	if got.BestValue != want.BestValue {
		t.Fatalf("best value %v, want %v", got.BestValue, want.BestValue)
	}
	if got.BestPoint.Key() != want.BestPoint.Key() {
		t.Fatalf("best point %v, want %v", got.BestPoint.SortedVars(), want.BestPoint.SortedVars())
	}
	if got.Evaluations != want.Evaluations {
		t.Fatalf("evaluations %d, want %d", got.Evaluations, want.Evaluations)
	}
	if got.Stop != want.Stop {
		t.Fatalf("stop reason %q, want %q", got.Stop, want.Stop)
	}
	tracesEqual(t, got.Trace, want.Trace)
}

// TestTabuScheduledWidthOneBitIdentical pins the scheduler's central
// regression anchor at this layer: MaxConcurrentEvals == 1 drives the
// whole search through the scheduler (pre-drawn visit order, runWave,
// handle chain) yet must reproduce the sequential tabu loop bit for bit —
// same RNG stream, same visits, same stop.
func TestTabuScheduledWidthOneBitIdentical(t *testing.T) {
	s := makeSpace(7)
	target := []cnf.Var{2, 5}
	run := func(width int) *Result {
		obj := newCountingObjective(target)
		res, err := TabuSearch(context.Background(), obj, s.FullPoint(), Options{
			Seed:               11,
			MaxEvaluations:     400,
			MaxConcurrentEvals: width,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	resultsEqual(t, run(1), run(0))
}

// TestSAScheduledWidthOneBitIdentical is the same anchor for the
// simulated annealing: every wave holds exactly one candidate, so the
// pick/evaluate/accept/cool interleaving — including the acceptance RNG
// draws — matches the sequential loop exactly.
func TestSAScheduledWidthOneBitIdentical(t *testing.T) {
	s := makeSpace(7)
	target := []cnf.Var{1, 4, 6}
	run := func(width int) *Result {
		obj := newCountingObjective(target)
		res, err := SimulatedAnnealing(context.Background(), obj, s.FullPoint(), Options{
			Seed:               13,
			MaxEvaluations:     600,
			InitialTemperature: 0.5,
			CoolingFactor:      0.97,
			MaxConcurrentEvals: width,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	resultsEqual(t, run(1), run(0))
}

// TestTabuScheduledWideTraceMatchesSequential: without pruning, a wide
// tabu neighbourhood pass evaluates exactly the pre-drawn visit order the
// sequential loop would walk, delivers results in that order, and the
// pass always runs to exhaustion — so even at width 4 the full trace is
// identical to the sequential search, not just the selected centres.
func TestTabuScheduledWideTraceMatchesSequential(t *testing.T) {
	s := makeSpace(6)
	target := []cnf.Var{3, 4}
	run := func(width int) *Result {
		obj := &safeObjective{inner: newCountingObjective(target)}
		res, err := TabuSearch(context.Background(), obj, s.FullPoint(), Options{
			Seed:               7,
			MaxConcurrentEvals: width,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(0)
	if seq.Stop != StopExhausted {
		t.Fatalf("sequential run stopped with %q, want exhaustion of the tiny space", seq.Stop)
	}
	resultsEqual(t, run(4), seq)
}

// TestTabuScheduledWideDeterministic: run-to-run determinism of the wide
// scheduler — completion order varies freely across runs (jittered
// objective latencies), selected centres, best F and the full trace must
// not.
func TestTabuScheduledWideDeterministic(t *testing.T) {
	s := makeSpace(6)
	target := []cnf.Var{1, 6}
	run := func(delay time.Duration) *Result {
		obj := &safeObjective{inner: newCountingObjective(target), delay: delay}
		res, err := TabuSearch(context.Background(), obj, s.FullPoint(), Options{
			Seed:               21,
			MaxConcurrentEvals: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	resultsEqual(t, run(200*time.Microsecond), run(0))
}

// TestSAScheduledWideDeterministic: the annealing's speculative waves
// discard unprocessed members whole, so its walk is deterministic for a
// fixed seed regardless of how completions interleave.
func TestSAScheduledWideDeterministic(t *testing.T) {
	s := makeSpace(6)
	target := []cnf.Var{2, 3, 5}
	run := func(delay time.Duration) *Result {
		obj := &safeObjective{inner: newCountingObjective(target), delay: delay}
		res, err := SimulatedAnnealing(context.Background(), obj, s.FullPoint(), Options{
			Seed:               31,
			MaxEvaluations:     300,
			InitialTemperature: 0.4,
			CoolingFactor:      0.96,
			MaxConcurrentEvals: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(150*time.Microsecond), run(0)
	resultsEqual(t, a, b)
	if a.BestValue != 1 {
		t.Fatalf("wide SA missed the optimum: best=%v", a.BestValue)
	}
}

// TestScheduledNeighborhoodObserver: every scheduler pass reports one
// Neighborhood whose counters are internally consistent and account for
// the whole trace.
func TestScheduledNeighborhoodObserver(t *testing.T) {
	s := makeSpace(6)
	obj := &safeObjective{inner: newCountingObjective([]cnf.Var{2, 4})}
	var passes []Neighborhood
	res, err := TabuSearch(context.Background(), obj, s.FullPoint(), Options{
		Seed:                 9,
		MaxConcurrentEvals:   2,
		NeighborhoodObserver: func(nb Neighborhood) { passes = append(passes, nb) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) == 0 {
		t.Fatal("no neighbourhood passes observed")
	}
	evaluated := 0
	for i, nb := range passes {
		if nb.Width != 2 {
			t.Fatalf("pass %d width %d, want 2", i, nb.Width)
		}
		if nb.Candidates <= 0 || nb.Evaluated < 0 || nb.Pruned < 0 || nb.Cancelled < 0 {
			t.Fatalf("pass %d has inconsistent counters: %+v", i, nb)
		}
		if nb.Evaluated+nb.Cancelled > nb.Candidates {
			t.Fatalf("pass %d: evaluated %d + cancelled %d exceed candidates %d",
				i, nb.Evaluated, nb.Cancelled, nb.Candidates)
		}
		if nb.Radius <= 0 {
			t.Fatalf("pass %d radius %d", i, nb.Radius)
		}
		evaluated += nb.Evaluated
	}
	// Every trace entry after the start evaluation belongs to some pass.
	if want := len(res.Trace) - 1; evaluated != want {
		t.Fatalf("passes account for %d evaluations, trace has %d", evaluated, want)
	}
	if last := passes[len(passes)-1]; last.BestValue != res.BestValue {
		t.Fatalf("final pass best %v, result best %v", last.BestValue, res.BestValue)
	}
}

// TestScheduledSearchCancellation: cancelling mid-neighbourhood unwinds
// the frontier and ends both searches gracefully with StopContext.
func TestScheduledSearchCancellation(t *testing.T) {
	s := makeSpace(10)
	for _, method := range []string{"tabu", "sa"} {
		obj := &safeObjective{inner: newCountingObjective([]cnf.Var{5}), delay: time.Millisecond}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(5 * time.Millisecond)
			cancel()
		}()
		opts := Options{Seed: 17, MaxConcurrentEvals: 4, InitialTemperature: 0.5}
		var res *Result
		var err error
		if method == "tabu" {
			res, err = TabuSearch(ctx, obj, s.FullPoint(), opts)
		} else {
			res, err = SimulatedAnnealing(ctx, obj, s.FullPoint(), opts)
		}
		cancel()
		if err != nil {
			t.Fatalf("%s: cancelled search returned error %v, want graceful result", method, err)
		}
		if res.Stop != StopContext {
			t.Fatalf("%s: stop reason %q, want %q", method, res.Stop, StopContext)
		}
	}
}

// TestFleetScheduledSharedIncumbent couples two scheduler-driven tabu
// members through a fleet's shared incumbent: each member's frontier
// waves seed their live bound from the global best, and the race still
// finds the optimum deterministically.
func TestFleetScheduledSharedIncumbent(t *testing.T) {
	s := makeSpace(6)
	target := []cnf.Var{2, 4}
	run := func(delay time.Duration) *FleetResult {
		members := make([]FleetMember, 2)
		for i := range members {
			members[i] = FleetMember{
				Method:    MethodTabu,
				Objective: &safeObjective{inner: newCountingObjective(target), delay: delay},
				Start:     s.FullPoint(),
				Opts: Options{
					Seed:               SubSeed(43, i),
					MaxEvaluations:     120,
					MaxConcurrentEvals: 2,
				},
			}
		}
		fr, err := RunFleet(context.Background(), members, FleetOptions{KeepRacing: true})
		if err != nil {
			t.Fatal(err)
		}
		return fr
	}
	a, b := run(100*time.Microsecond), run(0)
	if a.Best < 0 || a.BestValue != 1 {
		t.Fatalf("scheduled fleet missed the optimum: %+v", a)
	}
	if a.BestValue != b.BestValue || a.BestPoint.Key() != b.BestPoint.Key() {
		t.Fatalf("scheduled fleet best diverges run to run: %v/%v vs %v/%v",
			a.BestValue, a.BestPoint.SortedVars(), b.BestValue, b.BestPoint.SortedVars())
	}
	for i := range a.Members {
		resultsEqual(t, a.Members[i].Result, b.Members[i].Result)
	}
}

// TestValidateRejectsNegativeConcurrency covers the new option's guard.
func TestValidateRejectsNegativeConcurrency(t *testing.T) {
	if err := (Options{MaxConcurrentEvals: -1}).Validate(); err == nil {
		t.Fatal("negative MaxConcurrentEvals accepted")
	}
	if err := (Options{MaxConcurrentEvals: 8}).Validate(); err != nil {
		t.Fatalf("valid concurrency rejected: %v", err)
	}
}
