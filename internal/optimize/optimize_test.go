package optimize

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/decomp"
)

// makeSpace builds a search space over n variables 1..n.
func makeSpace(n int) *decomp.Space {
	vars := make([]cnf.Var, n)
	for i := range vars {
		vars[i] = cnf.Var(i + 1)
	}
	return decomp.NewSpace(vars)
}

// countingObjective is a synthetic objective with a known optimum: the
// target set of variables.  F(χ) = 1 + |χ Δ target| (symmetric difference),
// so the unique global minimum (value 1) is reached exactly at the target.
type countingObjective struct {
	target      map[cnf.Var]bool
	evaluations int
	activity    map[cnf.Var]float64
}

func newCountingObjective(target []cnf.Var) *countingObjective {
	m := make(map[cnf.Var]bool, len(target))
	for _, v := range target {
		m[v] = true
	}
	return &countingObjective{target: m, activity: map[cnf.Var]float64{}}
}

func (o *countingObjective) Evaluate(_ context.Context, p decomp.Point) (float64, error) {
	o.evaluations++
	diff := 0
	selected := make(map[cnf.Var]bool)
	for _, v := range p.Vars() {
		selected[v] = true
		if !o.target[v] {
			diff++
		}
	}
	for v := range o.target {
		if !selected[v] {
			diff++
		}
	}
	return 1 + float64(diff), nil
}

func (o *countingObjective) VarActivity(v cnf.Var) float64 { return o.activity[v] }

func TestObjectiveFuncAdapter(t *testing.T) {
	called := false
	f := ObjectiveFunc(func(_ context.Context, p decomp.Point) (float64, error) {
		called = true
		return float64(p.Count()), nil
	})
	s := makeSpace(3)
	v, err := f.Evaluate(context.Background(), s.FullPoint())
	if err != nil || v != 3 || !called {
		t.Fatal("ObjectiveFunc adapter misbehaves")
	}
}

func TestSimulatedAnnealingFindsTarget(t *testing.T) {
	s := makeSpace(8)
	target := []cnf.Var{2, 3, 5}
	obj := newCountingObjective(target)
	start := s.FullPoint()
	res, err := SimulatedAnnealing(context.Background(), obj, start, Options{
		Seed:               3,
		MaxEvaluations:     2000,
		InitialTemperature: 0.5,
		CoolingFactor:      0.97,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue != 1 {
		t.Fatalf("SA did not find the optimum: best=%v point=%v", res.BestValue, res.BestPoint.SortedVars())
	}
	got := res.BestPoint.SortedVars()
	if len(got) != len(target) {
		t.Fatalf("best point = %v, want %v", got, target)
	}
	for i := range target {
		if got[i] != target[i] {
			t.Fatalf("best point = %v, want %v", got, target)
		}
	}
	if res.Evaluations == 0 || len(res.Trace) == 0 {
		t.Fatal("SA should record evaluations and a trace")
	}
	if res.WallTime < 0 {
		t.Fatal("negative wall time")
	}
	if !strings.Contains(res.String(), "best F") {
		t.Fatal("Result.String misbehaves")
	}
}

func TestTabuSearchFindsTarget(t *testing.T) {
	s := makeSpace(8)
	target := []cnf.Var{1, 4, 7, 8}
	obj := newCountingObjective(target)
	start := s.FullPoint()
	res, err := TabuSearch(context.Background(), obj, start, Options{Seed: 5, MaxEvaluations: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue != 1 {
		t.Fatalf("tabu search did not find the optimum: best=%v point=%v", res.BestValue, res.BestPoint.SortedVars())
	}
	got := res.BestPoint.SortedVars()
	for i := range target {
		if got[i] != target[i] {
			t.Fatalf("best point = %v, want %v", got, target)
		}
	}
}

func TestTabuSearchVisitsMorePointsThanSA(t *testing.T) {
	// The paper notes that tabu search traverses more points of the search
	// space per time unit because it never re-evaluates a point.  With an
	// equal evaluation budget both must stay within the budget; tabu must
	// never evaluate the same point twice.
	s := makeSpace(10)
	target := []cnf.Var{1, 2, 3}
	objSA := newCountingObjective(target)
	objTabu := newCountingObjective(target)
	budget := 120
	start := s.FullPoint()
	_, err := SimulatedAnnealing(context.Background(), objSA, start, Options{Seed: 7, MaxEvaluations: budget})
	if err != nil {
		t.Fatal(err)
	}
	resTabu, err := TabuSearch(context.Background(), objTabu, start, Options{Seed: 7, MaxEvaluations: budget})
	if err != nil {
		t.Fatal(err)
	}
	if objSA.evaluations > budget || objTabu.evaluations > budget {
		t.Fatalf("budgets exceeded: SA=%d tabu=%d", objSA.evaluations, objTabu.evaluations)
	}
	seen := map[string]int{}
	for _, v := range resTabu.Trace {
		seen[v.Point.Key()]++
	}
	for k, c := range seen {
		if c > 1 {
			t.Fatalf("tabu search evaluated point %s %d times", k, c)
		}
	}
}

func TestEvaluationBudgetStopsSearch(t *testing.T) {
	s := makeSpace(12)
	obj := newCountingObjective([]cnf.Var{6})
	res, err := TabuSearch(context.Background(), obj, s.FullPoint(), Options{Seed: 1, MaxEvaluations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations > 5 {
		t.Fatalf("evaluations = %d, want <= 5", res.Evaluations)
	}
	if res.Stop != StopEvaluations {
		t.Fatalf("stop reason = %v", res.Stop)
	}
	res, err = SimulatedAnnealing(context.Background(), obj, s.FullPoint(), Options{Seed: 1, MaxEvaluations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations > 5 || res.Stop != StopEvaluations {
		t.Fatalf("SA evaluations=%d stop=%v", res.Evaluations, res.Stop)
	}
}

func TestTimeBudgetStopsSearch(t *testing.T) {
	s := makeSpace(10)
	slow := ObjectiveFunc(func(_ context.Context, p decomp.Point) (float64, error) {
		time.Sleep(2 * time.Millisecond)
		return float64(p.Count()), nil
	})
	res, err := TabuSearch(context.Background(), slow, s.FullPoint(), Options{Seed: 1, MaxTime: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != StopTime {
		t.Fatalf("stop reason = %v", res.Stop)
	}
}

func TestContextCancellationStopsSearch(t *testing.T) {
	s := makeSpace(10)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	obj := ObjectiveFunc(func(_ context.Context, p decomp.Point) (float64, error) {
		n++
		if n == 3 {
			cancel()
		}
		return float64(p.Count()), nil
	})
	res, err := TabuSearch(ctx, obj, s.FullPoint(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != StopContext {
		t.Fatalf("stop reason = %v", res.Stop)
	}
}

func TestObjectiveErrorPropagates(t *testing.T) {
	s := makeSpace(6)
	boom := errors.New("boom")
	n := 0
	obj := ObjectiveFunc(func(_ context.Context, p decomp.Point) (float64, error) {
		n++
		if n > 2 {
			return 0, boom
		}
		return float64(p.Count()), nil
	})
	if _, err := TabuSearch(context.Background(), obj, s.FullPoint(), Options{Seed: 1}); !errors.Is(err, boom) {
		t.Fatalf("expected objective error, got %v", err)
	}
	n = 0
	if _, err := SimulatedAnnealing(context.Background(), obj, s.FullPoint(), Options{Seed: 1}); !errors.Is(err, boom) {
		t.Fatalf("expected objective error, got %v", err)
	}
}

func TestSimulatedAnnealingTemperatureLimit(t *testing.T) {
	s := makeSpace(6)
	obj := newCountingObjective([]cnf.Var{999}) // unreachable target: constant-ish landscape
	res, err := SimulatedAnnealing(context.Background(), obj, s.EmptyPoint().Flip(0), Options{
		Seed:               2,
		InitialTemperature: 0.01,
		CoolingFactor:      0.5,
		MinTemperature:     0.005,
		MaxEvaluations:     10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != StopTemperature && res.Stop != StopNoImprovment {
		t.Fatalf("stop reason = %v", res.Stop)
	}
}

func TestTabuSearchExhaustsTinySpace(t *testing.T) {
	// With 3 candidate variables the space has 8 points; an unlimited tabu
	// search must terminate by exhausting L2 after visiting every point
	// reachable by radius-1 moves.
	s := makeSpace(3)
	obj := newCountingObjective([]cnf.Var{1})
	res, err := TabuSearch(context.Background(), obj, s.FullPoint(), Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != StopExhausted {
		t.Fatalf("stop reason = %v, want exhausted", res.Stop)
	}
	if res.BestValue != 1 {
		t.Fatalf("best value = %v", res.BestValue)
	}
	// All 2^3 = 8 points are reachable and should have been evaluated.
	if res.Evaluations != 8 {
		t.Fatalf("evaluations = %d, want 8", res.Evaluations)
	}
}

func TestGetNewCenterUsesActivity(t *testing.T) {
	// Construct a tabu list with two entries and verify the activity-based
	// choice prefers the set with higher total activity.
	s := makeSpace(4)
	obj := newCountingObjective([]cnf.Var{1, 2})
	obj.activity[3] = 100 // make variable 3 very active
	tl := newTabuLists(1)
	values := map[string]float64{}
	pA, _ := s.PointFromVars([]cnf.Var{1})
	pB, _ := s.PointFromVars([]cnf.Var{3})
	values[pA.Key()] = 1
	values[pB.Key()] = 50
	tl.addChecked(pA, 1, values)
	tl.addChecked(pB, 50, values)
	center, ok := tl.getNewCenter(obj)
	if !ok {
		t.Fatal("expected a centre")
	}
	if !center.Has(3) {
		t.Fatalf("activity heuristic should pick the set containing variable 3, got %v", center.SortedVars())
	}
	// Without activity information the fall-back picks the better F value.
	plain := ObjectiveFunc(func(_ context.Context, p decomp.Point) (float64, error) { return 0, nil })
	center, ok = tl.getNewCenter(plain)
	if !ok {
		t.Fatal("expected a centre")
	}
	if !center.Has(1) {
		t.Fatalf("value fall-back should pick the point with smaller F, got %v", center.SortedVars())
	}
}

func TestTabuListsBookkeeping(t *testing.T) {
	s := makeSpace(2) // 4 points, radius-1 neighbourhoods of size 2
	tl := newTabuLists(1)
	values := map[string]float64{}
	p00 := s.EmptyPoint()
	p01 := p00.Flip(0)
	p10 := p00.Flip(1)
	values[p00.Key()] = 1
	tl.addChecked(p00, 1, values)
	if tl.L2Size() != 1 || tl.L1Size() != 0 {
		t.Fatalf("after first point: L1=%d L2=%d", tl.L1Size(), tl.L2Size())
	}
	values[p01.Key()] = 2
	tl.addChecked(p01, 2, values)
	values[p10.Key()] = 3
	tl.addChecked(p10, 3, values)
	// p00's neighbourhood {p01,p10} is now fully checked -> moved to L1.
	if tl.L1Size() != 1 || tl.L2Size() != 2 {
		t.Fatalf("after three points: L1=%d L2=%d", tl.L1Size(), tl.L2Size())
	}
}

func TestOptionsWithDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Radius != 1 || o.CoolingFactor <= 0 || o.CoolingFactor >= 1 || o.MinTemperature <= 0 || o.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
	o2 := Options{Radius: 2, MaxRadius: 1}.withDefaults()
	if o2.MaxRadius < o2.Radius {
		t.Fatal("MaxRadius should be at least Radius")
	}
}

func TestPointAcceptedRule(t *testing.T) {
	s := newSearch(ObjectiveFunc(func(context.Context, decomp.Point) (float64, error) { return 0, nil }),
		Options{Seed: 1}.withDefaults())
	if !s.pointAccepted(1, 2, 0.5) {
		t.Fatal("improving point must always be accepted")
	}
	if s.pointAccepted(2, 1, 0) {
		t.Fatal("worse point at zero temperature must be rejected")
	}
	// At very high temperature a slightly worse point is almost always
	// accepted; at very low temperature almost never.
	acceptHot, acceptCold := 0, 0
	for i := 0; i < 200; i++ {
		if s.pointAccepted(1.01, 1, 1e6) {
			acceptHot++
		}
		if s.pointAccepted(2, 1, 1e-9) {
			acceptCold++
		}
	}
	if acceptHot < 190 {
		t.Fatalf("hot acceptance too low: %d/200", acceptHot)
	}
	if acceptCold > 5 {
		t.Fatalf("cold acceptance too high: %d/200", acceptCold)
	}
}

func TestSearchIsDeterministicForFixedSeed(t *testing.T) {
	s := makeSpace(9)
	target := []cnf.Var{2, 5, 8}
	run := func() *Result {
		obj := newCountingObjective(target)
		res, err := TabuSearch(context.Background(), obj, s.FullPoint(), Options{Seed: 11, MaxEvaluations: 200})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.Evaluations != r2.Evaluations || r1.BestValue != r2.BestValue ||
		!r1.BestPoint.Equal(r2.BestPoint) || len(r1.Trace) != len(r2.Trace) {
		t.Fatal("tabu search is not deterministic for a fixed seed")
	}
	if math.IsNaN(r1.BestValue) {
		t.Fatal("NaN best value")
	}
}

func TestStopReasonsAreNonEmptyStrings(t *testing.T) {
	for _, r := range []StopReason{StopTime, StopEvaluations, StopTemperature, StopExhausted, StopContext, StopNoImprovment} {
		if string(r) == "" {
			t.Fatal("empty stop reason")
		}
	}
}
