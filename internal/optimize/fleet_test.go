package optimize

import (
	"context"
	"math"
	"reflect"
	"testing"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/decomp"
)

func TestSubSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 64; i++ {
		s := SubSeed(7, i)
		if s != SubSeed(7, i) {
			t.Fatalf("SubSeed(7,%d) is not deterministic", i)
		}
		if seen[s] {
			t.Fatalf("SubSeed(7,%d)=%d collides with an earlier stream", i, s)
		}
		seen[s] = true
	}
	if SubSeed(7, 0) == SubSeed(8, 0) {
		t.Fatal("sub-seeds of neighbouring roots collide")
	}
}

// visitsEqual compares two traces by point key, value and flags.
func visitsEqual(a, b []Visit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Point.Key() != b[i].Point.Key() || a[i].Value != b[i].Value ||
			a[i].Accepted != b[i].Accepted || a[i].Improved != b[i].Improved ||
			a[i].Pruned != b[i].Pruned {
			return false
		}
	}
	return true
}

// TestFleetOfOneBitIdentical pins the fleet regression guarantee at the
// optimizer level: a fleet of one member reproduces the direct search call
// exactly — best point, best value, evaluation count, the whole trace and
// the stop reason — for both metaheuristics.
func TestFleetOfOneBitIdentical(t *testing.T) {
	space := makeSpace(8)
	target := []cnf.Var{2, 3, 5}
	for _, method := range []string{MethodTabu, MethodSA} {
		opts := Options{Seed: 11, MaxEvaluations: 40}
		var direct *Result
		var err error
		if method == MethodSA {
			direct, err = SimulatedAnnealing(context.Background(), newCountingObjective(target), space.FullPoint(), opts)
		} else {
			direct, err = TabuSearch(context.Background(), newCountingObjective(target), space.FullPoint(), opts)
		}
		if err != nil {
			t.Fatal(err)
		}
		fr, err := RunFleet(context.Background(), []FleetMember{{
			Method:    method,
			Objective: newCountingObjective(target),
			Start:     space.FullPoint(),
			Opts:      opts,
		}}, FleetOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got := fr.Members[0].Result
		if got.BestPoint.Key() != direct.BestPoint.Key() || got.BestValue != direct.BestValue {
			t.Fatalf("%s fleet of one best differs: %v/%v vs %v/%v", method,
				got.BestPoint.Key(), got.BestValue, direct.BestPoint.Key(), direct.BestValue)
		}
		if got.Evaluations != direct.Evaluations || got.Stop != direct.Stop {
			t.Fatalf("%s fleet of one run shape differs: %d/%s vs %d/%s", method,
				got.Evaluations, got.Stop, direct.Evaluations, direct.Stop)
		}
		if !visitsEqual(got.Trace, direct.Trace) {
			t.Fatalf("%s fleet of one trace differs", method)
		}
		if fr.Best != 0 || fr.BestValue != direct.BestValue {
			t.Fatalf("%s fleet result does not report member 0 as winner", method)
		}
	}
}

// TestFleetDeterministicAcrossRuns races a mixed fleet with fixed sub-seeds
// twice and checks every member reproduces its best point and value exactly
// — the interleaving of goroutines must not leak into member decisions when
// the objective has no cross-member coupling.
func TestFleetDeterministicAcrossRuns(t *testing.T) {
	space := makeSpace(10)
	target := []cnf.Var{1, 4, 6, 9}
	run := func() *FleetResult {
		members := make([]FleetMember, 4)
		for i := range members {
			method := MethodTabu
			if i >= 2 {
				method = MethodSA
			}
			members[i] = FleetMember{
				Method:    method,
				Objective: newCountingObjective(target),
				Start:     space.FullPoint(),
				Opts:      Options{Seed: SubSeed(5, 3*i+1), MaxEvaluations: 25},
			}
		}
		fr, err := RunFleet(context.Background(), members, FleetOptions{KeepRacing: true})
		if err != nil {
			t.Fatal(err)
		}
		return fr
	}
	a, b := run(), run()
	for i := range a.Members {
		ra, rb := a.Members[i].Result, b.Members[i].Result
		if ra.BestPoint.Key() != rb.BestPoint.Key() || ra.BestValue != rb.BestValue ||
			ra.Evaluations != rb.Evaluations {
			t.Fatalf("member %d differs across runs: %v/%v/%d vs %v/%v/%d", i,
				ra.BestPoint.Key(), ra.BestValue, ra.Evaluations,
				rb.BestPoint.Key(), rb.BestValue, rb.Evaluations)
		}
		if !visitsEqual(ra.Trace, rb.Trace) {
			t.Fatalf("member %d trace differs across runs", i)
		}
	}
	if a.Best != b.Best || a.BestValue != b.BestValue {
		t.Fatalf("winner differs across runs: %d/%v vs %d/%v", a.Best, a.BestValue, b.Best, b.BestValue)
	}
}

// TestFleetSharedIncumbent checks the coupling: the incumbent ends at the
// minimum over member bests, improvements arrive in strictly decreasing
// order, and Snapshot names a member that offered the final value.
func TestFleetSharedIncumbent(t *testing.T) {
	space := makeSpace(8)
	target := []cnf.Var{1, 2}
	inc := NewIncumbent()
	var improvements []float64
	inc.OnImproved = func(member int, p decomp.Point, v float64) {
		improvements = append(improvements, v)
	}
	members := []FleetMember{
		{Method: MethodTabu, Objective: newCountingObjective(target), Start: space.FullPoint(),
			Opts: Options{Seed: 3, MaxEvaluations: 60}},
		{Method: MethodSA, Objective: newCountingObjective(target), Start: space.FullPoint(),
			Opts: Options{Seed: 4, MaxEvaluations: 60}},
	}
	fr, err := RunFleet(context.Background(), members, FleetOptions{Shared: inc, KeepRacing: true})
	if err != nil {
		t.Fatal(err)
	}
	min := math.Inf(1)
	for _, m := range fr.Members {
		if m.Result.BestValue < min {
			min = m.Result.BestValue
		}
	}
	if got := inc.Best(); got != min {
		t.Fatalf("incumbent ended at %v, want the fleet minimum %v", got, min)
	}
	if len(improvements) == 0 {
		t.Fatal("no incumbent improvements were reported")
	}
	for i := 1; i < len(improvements); i++ {
		if improvements[i] >= improvements[i-1] {
			t.Fatalf("improvements not strictly decreasing: %v", improvements)
		}
	}
	p, v, member := inc.Snapshot()
	if v != min || member < 0 || member >= len(members) {
		t.Fatalf("snapshot (%v, member %d) does not match the fleet minimum %v", v, member, min)
	}
	if p.Key() != fr.BestPoint.Key() {
		t.Fatalf("snapshot point %v differs from fleet best %v", p.Key(), fr.BestPoint.Key())
	}
}

// TestFleetTargetStop checks the fleet-wide early stop: a reachable target
// ends the race with the hitting member reporting StopTarget, and the fleet
// best at or below the target.
func TestFleetTargetStop(t *testing.T) {
	space := makeSpace(8)
	target := []cnf.Var{2, 3, 5}
	members := make([]FleetMember, 2)
	for i := range members {
		members[i] = FleetMember{
			Method:    MethodTabu,
			Objective: newCountingObjective(target),
			Start:     space.FullPoint(),
			// F = 1 + |χ Δ target|; the full start point of an 8-var space
			// scores 1+5=6, so a target of 5 is hit on the first improvement.
			Opts: Options{Seed: int64(i + 1), TargetValue: 5},
		}
	}
	fr, err := RunFleet(context.Background(), members, FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fr.BestValue > 5 {
		t.Fatalf("fleet best %v above the target", fr.BestValue)
	}
	hit := false
	for _, m := range fr.Members {
		if m.Result.Stop == StopTarget {
			hit = true
		}
	}
	if !hit {
		t.Fatal("no member reported StopTarget")
	}
}

// TestFleetValidation covers the orchestration error paths.
func TestFleetValidation(t *testing.T) {
	space := makeSpace(4)
	obj := newCountingObjective([]cnf.Var{1})
	if _, err := RunFleet(context.Background(), nil, FleetOptions{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := RunFleet(context.Background(), []FleetMember{
		{Method: "genetic", Objective: obj, Start: space.FullPoint()},
	}, FleetOptions{}); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := RunFleet(context.Background(), []FleetMember{
		{Method: MethodTabu, Start: space.FullPoint()},
	}, FleetOptions{}); err == nil {
		t.Fatal("nil objective accepted")
	}
	if _, err := RunFleet(context.Background(), []FleetMember{
		{Method: MethodTabu, Objective: obj, Start: space.FullPoint(), Opts: Options{Radius: -1}},
	}, FleetOptions{}); err == nil {
		t.Fatal("invalid member options accepted")
	}
	if _, err := RunFleet(context.Background(), []FleetMember{
		{Method: MethodTabu, Objective: obj, Start: space.FullPoint(), Opts: Options{TargetValue: -1}},
	}, FleetOptions{}); err == nil {
		t.Fatal("negative target accepted")
	}
}

// TestIncumbentOfferSemantics pins the monotone CAS-min contract.
func TestIncumbentOfferSemantics(t *testing.T) {
	space := makeSpace(3)
	p := space.FullPoint()
	in := NewIncumbent()
	if !math.IsInf(in.Best(), 1) {
		t.Fatal("fresh incumbent is not +Inf")
	}
	view := in.MemberView(1)
	if !view.Offer(p, 10) || view.Offer(p, 10) || view.Offer(p, 11) {
		t.Fatal("offer accepted a non-improvement")
	}
	if view.Offer(p, math.NaN()) {
		t.Fatal("offer accepted NaN")
	}
	if !view.Offer(p, 3) || in.Best() != 3 {
		t.Fatalf("incumbent did not descend to 3 (got %v)", in.Best())
	}
	_, v, member := in.Snapshot()
	if v != 3 || member != 1 {
		t.Fatalf("snapshot (%v, %d) after member-1 offers", v, member)
	}
	if !reflect.DeepEqual(in.MemberView(2).Best(), 3.0) {
		t.Fatal("member views disagree on Best")
	}
}
