package optimize

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/decomp"
)

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero options must validate: %v", err)
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("default options must validate: %v", err)
	}
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"negative radius", Options{Radius: -1}, "radius"},
		{"negative max radius", Options{MaxRadius: -2}, "radius"},
		{"max radius below radius", Options{Radius: 3, MaxRadius: 2}, "radius"},
		{"negative evaluations", Options{MaxEvaluations: -5}, "evaluation budget"},
		{"negative time", Options{MaxTime: -time.Second}, "time budget"},
		{"negative initial temperature", Options{InitialTemperature: -1}, "temperature"},
		{"negative min temperature", Options{MinTemperature: -1e-9}, "temperature"},
		{"negative cooling", Options{CoolingFactor: -0.5}, "cooling factor"},
		{"cooling at one", Options{CoolingFactor: 1}, "cooling factor"},
	}
	for _, tc := range cases {
		err := tc.opts.Validate()
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestSearchEntryPointsValidate checks that both minimizers reject bad
// options eagerly instead of silently coercing them.
func TestSearchEntryPointsValidate(t *testing.T) {
	space := makeSpace(3)
	obj := ObjectiveFunc(func(ctx context.Context, p decomp.Point) (float64, error) {
		return float64(p.Count()), nil
	})
	bad := Options{MaxEvaluations: -1}
	if _, err := TabuSearch(context.Background(), obj, space.FullPoint(), bad); err == nil {
		t.Fatal("TabuSearch accepted a negative evaluation budget")
	}
	if _, err := SimulatedAnnealing(context.Background(), obj, space.FullPoint(), bad); err == nil {
		t.Fatal("SimulatedAnnealing accepted a negative evaluation budget")
	}
}

// TestObserverSeesTrace checks the observer hook: it receives exactly the
// visits recorded in the result trace, in order, without altering the
// search.
func TestObserverSeesTrace(t *testing.T) {
	space := makeSpace(4)
	obj := ObjectiveFunc(func(ctx context.Context, p decomp.Point) (float64, error) {
		return float64(p.Count()), nil
	})
	var seen []Visit
	opts := Options{Seed: 3, MaxEvaluations: 10, Observer: func(v Visit) { seen = append(seen, v) }}
	res, err := TabuSearch(context.Background(), obj, space.FullPoint(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Trace) {
		t.Fatalf("observer saw %d visits, trace has %d", len(seen), len(res.Trace))
	}
	for i := range seen {
		if seen[i].Index != res.Trace[i].Index || seen[i].Value != res.Trace[i].Value ||
			seen[i].Accepted != res.Trace[i].Accepted || seen[i].Improved != res.Trace[i].Improved {
			t.Fatalf("visit %d diverges: %+v vs %+v", i, seen[i], res.Trace[i])
		}
	}

	// The same search without an observer behaves identically.
	opts.Observer = nil
	again, err := TabuSearch(context.Background(), obj, space.FullPoint(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.BestValue != res.BestValue || again.Evaluations != res.Evaluations {
		t.Fatalf("observer changed the search: %+v vs %+v", again, res)
	}
}

// TestTabuListsAccounting walks the L1/L2 bookkeeping over a tiny space:
// checked points with unchecked neighbourhoods sit in L2, move to L1 as
// their neighbourhoods fill up, and getNewCenter reads L2 without mutating
// either list.
func TestTabuListsAccounting(t *testing.T) {
	space := makeSpace(2)
	full := space.FullPoint()                  // {1,2}
	p1, _ := space.PointFromVars([]cnf.Var{1}) // {1}
	p2, _ := space.PointFromVars([]cnf.Var{2}) // {2}
	empty := space.EmptyPoint()                // {}

	values := map[string]float64{}
	tl := newTabuLists(1)

	// The start point has both radius-1 neighbours unchecked: L2.
	values[full.Key()] = 40
	tl.addChecked(full, 40, values)
	if tl.L1Size() != 0 || tl.L2Size() != 1 {
		t.Fatalf("after start: L1=%d L2=%d, want 0/1", tl.L1Size(), tl.L2Size())
	}

	// {1} joins L2 (its neighbour {} is unchecked) and leaves full's
	// neighbourhood one short of complete.
	values[p1.Key()] = 10
	tl.addChecked(p1, 10, values)
	if tl.L1Size() != 0 || tl.L2Size() != 2 {
		t.Fatalf("after {1}: L1=%d L2=%d, want 0/2", tl.L1Size(), tl.L2Size())
	}

	// {2} completes full's neighbourhood: full moves to L1.
	values[p2.Key()] = 20
	tl.addChecked(p2, 20, values)
	if tl.L1Size() != 1 || tl.L2Size() != 2 {
		t.Fatalf("after {2}: L1=%d L2=%d, want 1/2", tl.L1Size(), tl.L2Size())
	}

	// getNewCenter without activity information picks the L2 point with the
	// best (smallest) F — {1} — and mutates nothing.
	obj := ObjectiveFunc(func(ctx context.Context, p decomp.Point) (float64, error) { return 0, nil })
	next, ok := tl.getNewCenter(obj)
	if !ok || next.Key() != p1.Key() {
		t.Fatalf("getNewCenter = %v, %v; want {1}", next, ok)
	}
	if tl.L1Size() != 1 || tl.L2Size() != 2 {
		t.Fatalf("getNewCenter mutated the lists: L1=%d L2=%d", tl.L1Size(), tl.L2Size())
	}

	// Checking {} empties both neighbourhoods: everything ends in L1 and
	// there is no centre left to move to.
	values[empty.Key()] = 30
	tl.addChecked(empty, 30, values)
	if tl.L1Size() != 4 || tl.L2Size() != 0 {
		t.Fatalf("after {}: L1=%d L2=%d, want 4/0", tl.L1Size(), tl.L2Size())
	}
	if _, ok := tl.getNewCenter(obj); ok {
		t.Fatal("getNewCenter found a centre in an empty L2")
	}
}
