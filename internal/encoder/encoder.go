// Package encoder builds SAT instances encoding the cryptanalysis problems
// studied in the paper: given an observed keystream fragment produced by a
// keystream generator, find a register state that produces it.
//
// An Instance bundles the CNF with the metadata the partitioning machinery
// needs: the list of "starting variables" (the circuit inputs, which form a
// Strong Unit-Propagation Backdoor Set and are used as the initial
// decomposition set X̃_start), the keystream, and — because every instance
// is generated from a known random secret — the secret itself, which enables
// the BiviumK/GrainK weakenings of Section 4.4 and end-to-end validation of
// recovered keys.
package encoder

import (
	"fmt"
	"math/rand"

	"github.com/paper-repro/pdsat-go/internal/circuit"
	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/crypto"
)

// Instance is a cryptanalysis SAT instance.
type Instance struct {
	// Name identifies the instance (e.g. "bivium-l60-seed7-k150").
	Name string
	// CNF is the encoded formula, including the keystream constraints and
	// any weakening unit clauses.
	CNF *cnf.Formula
	// StartVars are the CNF variables of the circuit inputs (the unknown
	// register state), in cipher order.  They form the initial
	// decomposition set of the paper's search.
	StartVars []cnf.Var
	// OutputVars are the CNF variables of the keystream bits.
	OutputVars []cnf.Var
	// Secret is the state used to generate the keystream (StartVars order).
	Secret []bool
	// Keystream is the observed keystream fragment.
	Keystream []bool
	// KnownSuffix is the number of trailing start variables fixed by
	// weakening (the K of BiviumK / GrainK).
	KnownSuffix int
	// KnownPrefix is the number of leading start variables fixed by
	// weakening.  The paper only uses suffix weakenings; the prefix variant
	// exists so scaled-down Grain instances can keep part of the LFSR (the
	// second register) unknown, which is where the paper's best
	// decomposition sets live.
	KnownPrefix int
	// Generator names the underlying cipher ("a5/1", "bivium", "grain").
	Generator string
}

// Config controls instance generation.
type Config struct {
	// KeystreamLen is the number of observed keystream bits.  Zero selects
	// the paper's default for the generator (114 for A5/1, 200 for Bivium,
	// 160 for Grain).
	KeystreamLen int
	// KnownSuffix fixes that many trailing state variables to their secret
	// values with unit clauses (the BiviumK/GrainK weakening).  Zero means
	// no weakening.
	KnownSuffix int
	// KnownPrefix fixes that many leading state variables to their secret
	// values.  It may be combined with KnownSuffix; together they must not
	// cover the whole state.
	KnownPrefix int
	// Seed drives the random secret state.
	Seed int64
}

// Generator builds cryptanalysis instances for one cipher.
type Generator struct {
	// Name is the cipher name.
	Name string
	// StateBits is the number of unknown state bits.
	StateBits int
	// DefaultKeystreamLen is the keystream length used in the paper.
	DefaultKeystreamLen int
	// Build constructs the circuit for the given keystream length.
	Build func(keystreamLen int) *circuit.Circuit
	// Keystream runs the reference implementation.
	Keystream func(state []bool, n int) ([]bool, error)
	// RandomState draws a uniformly random state.
	RandomState func(rng *rand.Rand) []bool
}

// A51 returns the generator description for the A5/1 cipher.
func A51() Generator {
	return Generator{
		Name:                "a5/1",
		StateBits:           crypto.A51StateBits,
		DefaultKeystreamLen: crypto.A51KeystreamLen,
		Build:               crypto.BuildA51Circuit,
		Keystream:           crypto.A51Keystream,
		RandomState:         crypto.RandomA51State,
	}
}

// Bivium returns the generator description for the Bivium cipher.
func Bivium() Generator {
	return Generator{
		Name:                "bivium",
		StateBits:           crypto.BiviumStateBits,
		DefaultKeystreamLen: crypto.BiviumKeystreamLen,
		Build:               crypto.BuildBiviumCircuit,
		Keystream:           crypto.BiviumKeystream,
		RandomState:         crypto.RandomBiviumState,
	}
}

// Grain returns the generator description for the Grain cipher.
func Grain() Generator {
	return Generator{
		Name:                "grain",
		StateBits:           crypto.GrainStateBits,
		DefaultKeystreamLen: crypto.GrainKeystreamLen,
		Build:               crypto.BuildGrainCircuit,
		Keystream:           crypto.GrainKeystream,
		RandomState:         crypto.RandomGrainState,
	}
}

// ByName returns the generator with the given name.
func ByName(name string) (Generator, error) {
	switch name {
	case "a5/1", "a51":
		return A51(), nil
	case "bivium":
		return Bivium(), nil
	case "grain":
		return Grain(), nil
	default:
		return Generator{}, fmt.Errorf("encoder: unknown generator %q", name)
	}
}

// NewInstance builds a cryptanalysis instance for the generator: a random
// secret state is drawn from cfg.Seed, the reference implementation produces
// the keystream, the circuit is Tseitin-encoded and the keystream is added
// as unit constraints.  If cfg.KnownSuffix > 0 the last KnownSuffix start
// variables are additionally fixed to their secret values (the weakened
// problems of Section 4.4).
func NewInstance(gen Generator, cfg Config) (*Instance, error) {
	ksLen := cfg.KeystreamLen
	if ksLen <= 0 {
		ksLen = gen.DefaultKeystreamLen
	}
	if cfg.KnownSuffix < 0 || cfg.KnownSuffix > gen.StateBits {
		return nil, fmt.Errorf("encoder: KnownSuffix %d out of range [0,%d]", cfg.KnownSuffix, gen.StateBits)
	}
	if cfg.KnownPrefix < 0 || cfg.KnownPrefix+cfg.KnownSuffix >= gen.StateBits {
		return nil, fmt.Errorf("encoder: KnownPrefix %d and KnownSuffix %d leave no unknown state bits (state has %d)",
			cfg.KnownPrefix, cfg.KnownSuffix, gen.StateBits)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	secret := gen.RandomState(rng)
	keystream, err := gen.Keystream(secret, ksLen)
	if err != nil {
		return nil, fmt.Errorf("encoder: keystream generation: %w", err)
	}
	circ := gen.Build(ksLen)
	enc, err := circ.Encode()
	if err != nil {
		return nil, fmt.Errorf("encoder: Tseitin encoding: %w", err)
	}
	if err := enc.ConstrainOutputs(keystream); err != nil {
		return nil, fmt.Errorf("encoder: output constraints: %w", err)
	}
	name := fmt.Sprintf("%s-l%d-seed%d-k%d", gen.Name, ksLen, cfg.Seed, cfg.KnownSuffix)
	if cfg.KnownPrefix > 0 {
		name += fmt.Sprintf("-p%d", cfg.KnownPrefix)
	}
	inst := &Instance{
		Name:        name,
		CNF:         enc.CNF,
		StartVars:   enc.InputVars,
		OutputVars:  enc.OutputVars,
		Secret:      secret,
		Keystream:   keystream,
		KnownSuffix: cfg.KnownSuffix,
		Generator:   gen.Name,
	}
	inst.CNF.Comments = append(inst.CNF.Comments,
		fmt.Sprintf("cryptanalysis instance %s", inst.Name),
		fmt.Sprintf("start variables: 1..%d", len(inst.StartVars)),
	)
	if cfg.KnownSuffix > 0 {
		applyKnownSuffix(inst, cfg.KnownSuffix)
	}
	if cfg.KnownPrefix > 0 {
		applyKnownPrefix(inst, cfg.KnownPrefix)
	}
	return inst, nil
}

// applyKnownPrefix adds unit clauses fixing the first p start variables to
// their secret values.
func applyKnownPrefix(inst *Instance, p int) {
	for i := 0; i < p; i++ {
		v := inst.StartVars[i]
		inst.CNF.AddClause(cnf.Clause{cnf.NewLit(v, inst.Secret[i])})
	}
	inst.KnownPrefix = p
}

// applyKnownSuffix adds unit clauses fixing the last k start variables to
// their secret values.
func applyKnownSuffix(inst *Instance, k int) {
	n := len(inst.StartVars)
	for i := n - k; i < n; i++ {
		v := inst.StartVars[i]
		inst.CNF.AddClause(cnf.Clause{cnf.NewLit(v, inst.Secret[i])})
	}
	inst.KnownSuffix = k
}

// Weaken returns a copy of the instance with the last k start variables
// fixed to their secret values (in addition to any existing weakening).
func (in *Instance) Weaken(k int) (*Instance, error) {
	if k < 0 || k > len(in.StartVars) {
		return nil, fmt.Errorf("encoder: weakening %d out of range [0,%d]", k, len(in.StartVars))
	}
	out := &Instance{
		Name:        fmt.Sprintf("%s-weak%d", in.Name, k),
		CNF:         in.CNF.Clone(),
		StartVars:   append([]cnf.Var(nil), in.StartVars...),
		OutputVars:  append([]cnf.Var(nil), in.OutputVars...),
		Secret:      append([]bool(nil), in.Secret...),
		Keystream:   append([]bool(nil), in.Keystream...),
		KnownSuffix: in.KnownSuffix,
		KnownPrefix: in.KnownPrefix,
		Generator:   in.Generator,
	}
	applyKnownSuffix(out, k)
	return out, nil
}

// UnknownStartVars returns the start variables that are not fixed by the
// weakening, i.e. the candidates for decomposition-set search.
func (in *Instance) UnknownStartVars() []cnf.Var {
	lo := in.KnownPrefix
	hi := len(in.StartVars) - in.KnownSuffix
	if lo > hi {
		lo = hi
	}
	return append([]cnf.Var(nil), in.StartVars[lo:hi]...)
}

// SecretAssignment returns the secret state as an assignment of the start
// variables (useful for validation and for constructing satisfiable
// subproblems in tests).
func (in *Instance) SecretAssignment() cnf.Assignment {
	a := cnf.NewAssignment(in.CNF.NumVars)
	for i, v := range in.StartVars {
		if in.Secret[i] {
			a.Set(v, cnf.True)
		} else {
			a.Set(v, cnf.False)
		}
	}
	return a
}

// CheckRecoveredState verifies that a model of the CNF reproduces the
// observed keystream: it extracts the start-variable values from the model,
// runs the reference implementation and compares.  This is the end-to-end
// "did we actually recover a valid key" check.
func (in *Instance) CheckRecoveredState(gen Generator, model cnf.Assignment) (bool, error) {
	state := make([]bool, len(in.StartVars))
	for i, v := range in.StartVars {
		switch model.Value(v) {
		case cnf.True:
			state[i] = true
		case cnf.False:
			state[i] = false
		default:
			return false, fmt.Errorf("encoder: model leaves start variable %d unassigned", v)
		}
	}
	ks, err := gen.Keystream(state, len(in.Keystream))
	if err != nil {
		return false, err
	}
	for i := range ks {
		if ks[i] != in.Keystream[i] {
			return false, nil
		}
	}
	return true, nil
}

// String returns a short description of the instance.
func (in *Instance) String() string {
	return fmt.Sprintf("%s{vars=%d clauses=%d start=%d known=%d}",
		in.Name, in.CNF.NumVars, in.CNF.NumClauses(), len(in.StartVars), in.KnownSuffix+in.KnownPrefix)
}
