package encoder

import (
	"testing"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

func TestKnownPrefixWeakening(t *testing.T) {
	inst, err := NewInstance(Grain(), Config{
		KeystreamLen: 40,
		KnownPrefix:  75,
		KnownSuffix:  70,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if inst.KnownPrefix != 75 || inst.KnownSuffix != 70 {
		t.Fatalf("weakening metadata: %+v", inst)
	}
	unknown := inst.UnknownStartVars()
	if len(unknown) != 160-75-70 {
		t.Fatalf("unknown vars = %d, want %d", len(unknown), 160-75-70)
	}
	// The unknown variables are exactly StartVars[75:90].
	for i, v := range unknown {
		if v != inst.StartVars[75+i] {
			t.Fatalf("unknown var %d = %d, want %d", i, v, inst.StartVars[75+i])
		}
	}
	// The instance remains satisfiable and solves to a state reproducing the
	// keystream.
	res := solver.NewDefault(inst.CNF).Solve()
	if res.Status != solver.Sat {
		t.Fatalf("prefix+suffix weakened Grain should be SAT, got %v", res.Status)
	}
	ok, err := inst.CheckRecoveredState(Grain(), res.Model)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("recovered state does not reproduce the keystream")
	}
	// The fixed prefix variables must take their secret values in any model.
	for i := 0; i < 75; i++ {
		want := cnf.False
		if inst.Secret[i] {
			want = cnf.True
		}
		if res.Model.Value(inst.StartVars[i]) != want {
			t.Fatalf("prefix variable %d not fixed to its secret value", i)
		}
	}
	if inst.Name == "" || inst.String() == "" {
		t.Fatal("naming")
	}
}

func TestKnownPrefixValidation(t *testing.T) {
	if _, err := NewInstance(A51(), Config{KnownPrefix: -1}); err == nil {
		t.Fatal("expected error for negative prefix")
	}
	if _, err := NewInstance(A51(), Config{KnownPrefix: 40, KnownSuffix: 30}); err == nil {
		t.Fatal("expected error when prefix+suffix cover the whole state")
	}
	// Exactly one unknown bit is still allowed.
	inst, err := NewInstance(A51(), Config{KeystreamLen: 10, KnownPrefix: 40, KnownSuffix: 23, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.UnknownStartVars()) != 1 {
		t.Fatalf("unknown vars = %d, want 1", len(inst.UnknownStartVars()))
	}
}

func TestWeakenPreservesPrefix(t *testing.T) {
	inst, err := NewInstance(Grain(), Config{KeystreamLen: 20, KnownPrefix: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	weak, err := inst.Weaken(30)
	if err != nil {
		t.Fatal(err)
	}
	if weak.KnownPrefix != 10 || weak.KnownSuffix != 30 {
		t.Fatalf("weakening metadata lost: %+v", weak)
	}
	if len(weak.UnknownStartVars()) != 160-10-30 {
		t.Fatalf("unknown vars = %d", len(weak.UnknownStartVars()))
	}
}
