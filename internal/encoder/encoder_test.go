package encoder

import (
	"strings"
	"testing"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"a5/1", "a51", "bivium", "grain"} {
		gen, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if gen.StateBits == 0 || gen.Build == nil || gen.Keystream == nil || gen.RandomState == nil {
			t.Fatalf("ByName(%q) returned incomplete generator", name)
		}
	}
	if _, err := ByName("des"); err == nil {
		t.Fatal("expected error for unknown generator")
	}
}

func TestGeneratorDescriptors(t *testing.T) {
	if A51().StateBits != 64 || A51().DefaultKeystreamLen != 114 {
		t.Fatal("A5/1 descriptor wrong")
	}
	if Bivium().StateBits != 177 || Bivium().DefaultKeystreamLen != 200 {
		t.Fatal("Bivium descriptor wrong")
	}
	if Grain().StateBits != 160 || Grain().DefaultKeystreamLen != 160 {
		t.Fatal("Grain descriptor wrong")
	}
}

// secretSatisfies checks that fixing the start variables to the secret makes
// the instance satisfiable (via unit clauses + CDCL).
func secretSatisfies(t *testing.T, inst *Instance) {
	t.Helper()
	f := inst.CNF.Clone()
	for i, v := range inst.StartVars {
		f.AddClause(cnf.Clause{cnf.NewLit(v, inst.Secret[i])})
	}
	res := solver.NewDefault(f).Solve()
	if res.Status != solver.Sat {
		t.Fatalf("instance %s with secret fixed should be SAT, got %v", inst.Name, res.Status)
	}
}

func TestNewInstanceSecretConsistency(t *testing.T) {
	cases := []struct {
		gen Generator
		cfg Config
	}{
		{A51(), Config{KeystreamLen: 24, Seed: 1}},
		{Bivium(), Config{KeystreamLen: 30, Seed: 2}},
		{Grain(), Config{KeystreamLen: 16, Seed: 3}},
	}
	for _, tc := range cases {
		inst, err := NewInstance(tc.gen, tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.gen.Name, err)
		}
		if len(inst.StartVars) != tc.gen.StateBits {
			t.Fatalf("%s: %d start vars, want %d", tc.gen.Name, len(inst.StartVars), tc.gen.StateBits)
		}
		if len(inst.Keystream) != tc.cfg.KeystreamLen {
			t.Fatalf("%s: keystream length %d", tc.gen.Name, len(inst.Keystream))
		}
		if inst.CNF.NumClauses() == 0 {
			t.Fatalf("%s: empty CNF", tc.gen.Name)
		}
		secretSatisfies(t, inst)
	}
}

func TestDefaultKeystreamLength(t *testing.T) {
	inst, err := NewInstance(A51(), Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Keystream) != 114 {
		t.Fatalf("default keystream length = %d, want 114", len(inst.Keystream))
	}
}

func TestWeakenedInstanceSolvesToSecretKeystream(t *testing.T) {
	// Heavily weakened Bivium: only a handful of unknown state bits remain,
	// so the CDCL solver finds a state quickly.  The recovered state must
	// reproduce the observed keystream.
	gen := Bivium()
	inst, err := NewInstance(gen, Config{KeystreamLen: 60, Seed: 7, KnownSuffix: 165})
	if err != nil {
		t.Fatal(err)
	}
	if inst.KnownSuffix != 165 {
		t.Fatalf("KnownSuffix = %d", inst.KnownSuffix)
	}
	if got := len(inst.UnknownStartVars()); got != 177-165 {
		t.Fatalf("UnknownStartVars = %d, want %d", got, 177-165)
	}
	res := solver.NewDefault(inst.CNF).Solve()
	if res.Status != solver.Sat {
		t.Fatalf("weakened instance should be SAT, got %v", res.Status)
	}
	ok, err := inst.CheckRecoveredState(gen, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("recovered state does not reproduce the keystream")
	}
}

func TestWeakenMethod(t *testing.T) {
	gen := Grain()
	inst, err := NewInstance(gen, Config{KeystreamLen: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	weak, err := inst.Weaken(150)
	if err != nil {
		t.Fatal(err)
	}
	if weak.KnownSuffix != 150 {
		t.Fatalf("KnownSuffix = %d", weak.KnownSuffix)
	}
	// The original instance is untouched.
	if inst.KnownSuffix != 0 {
		t.Fatal("Weaken must not modify the original")
	}
	if weak.CNF.NumClauses() != inst.CNF.NumClauses()+150 {
		t.Fatalf("weakened clause count %d vs %d", weak.CNF.NumClauses(), inst.CNF.NumClauses())
	}
	res := solver.NewDefault(weak.CNF).Solve()
	if res.Status != solver.Sat {
		t.Fatalf("weakened Grain should be SAT, got %v", res.Status)
	}
	ok, err := weak.CheckRecoveredState(gen, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("recovered Grain state does not reproduce the keystream")
	}
	if _, err := inst.Weaken(-1); err == nil {
		t.Fatal("expected error for negative weakening")
	}
	if _, err := inst.Weaken(1000); err == nil {
		t.Fatal("expected error for oversized weakening")
	}
}

func TestKnownSuffixValidation(t *testing.T) {
	if _, err := NewInstance(A51(), Config{KnownSuffix: -1}); err == nil {
		t.Fatal("expected error for negative KnownSuffix")
	}
	if _, err := NewInstance(A51(), Config{KnownSuffix: 100}); err == nil {
		t.Fatal("expected error for too-large KnownSuffix")
	}
}

func TestSecretAssignment(t *testing.T) {
	inst, err := NewInstance(A51(), Config{KeystreamLen: 10, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	a := inst.SecretAssignment()
	for i, v := range inst.StartVars {
		want := cnf.False
		if inst.Secret[i] {
			want = cnf.True
		}
		if a.Value(v) != want {
			t.Fatalf("secret assignment mismatch at start var %d", i)
		}
	}
}

func TestCheckRecoveredStateErrors(t *testing.T) {
	gen := A51()
	inst, err := NewInstance(gen, Config{KeystreamLen: 8, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	// Model leaving a start variable unassigned must be rejected.
	empty := cnf.NewAssignment(inst.CNF.NumVars)
	if _, err := inst.CheckRecoveredState(gen, empty); err == nil {
		t.Fatal("expected error for incomplete model")
	}
	// A wrong (but complete) state should simply return false.
	wrong := inst.SecretAssignment()
	wrong.Set(inst.StartVars[0], wrong.Value(inst.StartVars[0]).Not())
	ok, err := inst.CheckRecoveredState(gen, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		// Flipping one state bit of A5/1 changes the keystream with
		// overwhelming probability for 8 bits; tolerate the rare collision
		// by checking with a longer keystream only if this fails.
		t.Log("flipped state reproduced the short keystream (rare but possible)")
	}
	// The true secret always passes.
	ok, err = inst.CheckRecoveredState(gen, inst.SecretAssignment())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("secret assignment must reproduce the keystream")
	}
}

func TestInstanceStringAndComments(t *testing.T) {
	inst, err := NewInstance(Bivium(), Config{KeystreamLen: 12, Seed: 19, KnownSuffix: 170})
	if err != nil {
		t.Fatal(err)
	}
	s := inst.String()
	if !strings.Contains(s, "bivium") {
		t.Fatalf("String = %q", s)
	}
	if len(inst.CNF.Comments) == 0 {
		t.Fatal("instance CNF should carry comments")
	}
	if !strings.Contains(inst.Name, "k170") {
		t.Fatalf("Name = %q", inst.Name)
	}
}
