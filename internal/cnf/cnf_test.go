package cnf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLitBasics(t *testing.T) {
	l := NewLit(5, true)
	if l.Var() != 5 || !l.Positive() {
		t.Fatalf("NewLit(5,true) = %v", l)
	}
	n := l.Neg()
	if n.Var() != 5 || n.Positive() {
		t.Fatalf("Neg() = %v", n)
	}
	if n.Neg() != l {
		t.Fatalf("double negation changed literal: %v", n.Neg())
	}
	if got := NewLit(3, false); got != Lit(-3) {
		t.Fatalf("NewLit(3,false) = %v", got)
	}
}

func TestNewLitPanicsOnInvalidVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for variable 0")
		}
	}()
	NewLit(0, true)
}

func TestValueNot(t *testing.T) {
	if True.Not() != False || False.Not() != True || Unassigned.Not() != Unassigned {
		t.Fatal("Value.Not misbehaves")
	}
	if True.String() != "true" || False.String() != "false" || Unassigned.String() != "unassigned" {
		t.Fatal("Value.String misbehaves")
	}
}

func TestClauseNormalize(t *testing.T) {
	c := Clause{3, -1, 3, 2}
	norm, taut := c.Normalize()
	if taut {
		t.Fatal("unexpected tautology")
	}
	want := Clause{-1, 2, 3}
	if len(norm) != len(want) {
		t.Fatalf("normalize = %v, want %v", norm, want)
	}
	for i := range want {
		if norm[i] != want[i] {
			t.Fatalf("normalize = %v, want %v", norm, want)
		}
	}
	_, taut = Clause{1, -1, 2}.Normalize()
	if !taut {
		t.Fatal("expected tautology for {1,-1,2}")
	}
}

func TestClauseHelpers(t *testing.T) {
	c := Clause{1, -4, 3}
	if !c.Contains(-4) || c.Contains(4) {
		t.Fatal("Contains misbehaves")
	}
	if c.MaxVar() != 4 {
		t.Fatalf("MaxVar = %d, want 4", c.MaxVar())
	}
	clone := c.Clone()
	clone[0] = 9
	if c[0] != 1 {
		t.Fatal("Clone did not copy")
	}
}

func TestAssignment(t *testing.T) {
	a := NewAssignment(3)
	if a.Assigned(1) {
		t.Fatal("fresh assignment should be unassigned")
	}
	a.Set(2, True)
	if a.Value(2) != True || a.LitValue(Lit(2)) != True || a.LitValue(Lit(-2)) != False {
		t.Fatal("Set/Value/LitValue misbehave")
	}
	a.SetLit(Lit(-3))
	if a.Value(3) != False {
		t.Fatal("SetLit(-3) should make var 3 false")
	}
	// growth
	a.Set(10, True)
	if a.Value(10) != True {
		t.Fatal("Set should grow the assignment")
	}
	if a.Value(100) != Unassigned || a.Value(0) != Unassigned {
		t.Fatal("out-of-range Value should be Unassigned")
	}
	if got := a.NumAssigned(); got != 3 {
		t.Fatalf("NumAssigned = %d, want 3", got)
	}
	b := a.Clone()
	b.Set(2, False)
	if a.Value(2) != True {
		t.Fatal("Clone should not alias")
	}
}

func TestFormulaEvaluate(t *testing.T) {
	f := New(3)
	f.AddClauseLits(1, 2)
	f.AddClauseLits(-1, 3)
	a := NewAssignment(3)
	if f.Evaluate(a) != Unassigned {
		t.Fatal("empty assignment should leave formula undecided")
	}
	a.Set(1, True)
	a.Set(3, True)
	if f.Evaluate(a) != True {
		t.Fatal("formula should be satisfied")
	}
	a.Set(3, False)
	if f.Evaluate(a) != False {
		t.Fatal("formula should be falsified")
	}
	if f.IsSatisfiedBy(a) {
		t.Fatal("IsSatisfiedBy should be false")
	}
}

func TestFormulaAddClauseGrowsVars(t *testing.T) {
	f := New(2)
	f.AddClauseLits(5, -6)
	if f.NumVars != 6 {
		t.Fatalf("NumVars = %d, want 6", f.NumVars)
	}
	if f.NumClauses() != 1 {
		t.Fatalf("NumClauses = %d, want 1", f.NumClauses())
	}
}

func TestFormulaVars(t *testing.T) {
	f := New(0)
	f.AddClauseLits(3, -1)
	f.AddClauseLits(-3, 7)
	vars := f.Vars()
	want := []Var{1, 3, 7}
	if len(vars) != len(want) {
		t.Fatalf("Vars = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", vars, want)
		}
	}
}

func TestSimplify(t *testing.T) {
	f := New(3)
	f.AddClauseLits(1, 2)
	f.AddClauseLits(-1, 3)
	f.AddClauseLits(-2, -3)
	a := NewAssignment(3)
	a.Set(1, True)
	simp, ok := f.Simplify(a)
	if !ok {
		t.Fatal("simplification should not produce the empty clause")
	}
	// Clause (1,2) satisfied and removed; (-1,3) loses -1; (-2,-3) untouched.
	if len(simp.Clauses) != 2 {
		t.Fatalf("got %d clauses, want 2: %v", len(simp.Clauses), simp.Clauses)
	}
	// Now force a conflict: 1=true, 3=false makes (-1,3) empty.
	a.Set(3, False)
	_, ok = f.Simplify(a)
	if ok {
		t.Fatal("expected empty clause")
	}
}

func TestWithUnits(t *testing.T) {
	f := New(3)
	f.AddClauseLits(1, 2, 3)
	a := NewAssignment(3)
	a.Set(2, False)
	a.Set(3, True)
	g := f.WithUnits(a)
	if g.NumClauses() != 3 {
		t.Fatalf("expected 3 clauses, got %d", g.NumClauses())
	}
	// Original formula untouched.
	if f.NumClauses() != 1 {
		t.Fatal("WithUnits must not modify the receiver")
	}
}

func TestUnitPropagate(t *testing.T) {
	f := New(4)
	f.AddClauseLits(1)
	f.AddClauseLits(-1, 2)
	f.AddClauseLits(-2, 3)
	a, ok := f.UnitPropagate(NewAssignment(4))
	if !ok {
		t.Fatal("unexpected conflict")
	}
	if a.Value(1) != True || a.Value(2) != True || a.Value(3) != True {
		t.Fatalf("propagation incomplete: %v", a)
	}
	if a.Value(4) != Unassigned {
		t.Fatal("variable 4 should stay unassigned")
	}
	// Conflict case.
	f.AddClauseLits(-3)
	_, ok = f.UnitPropagate(NewAssignment(4))
	if ok {
		t.Fatal("expected conflict")
	}
}

func TestStatistics(t *testing.T) {
	f := New(3)
	f.AddClauseLits(1)
	f.AddClauseLits(1, 2)
	f.AddClauseLits(1, 2, 3)
	s := f.Statistics()
	if s.NumUnits != 1 || s.NumBinary != 1 || s.NumTernary != 1 {
		t.Fatalf("bad stats: %+v", s)
	}
	if s.MinClauseLen != 1 || s.MaxClauseLen != 3 || s.NumLiterals != 6 {
		t.Fatalf("bad stats: %+v", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := New(2)
	f.AddClauseLits(1, -2)
	f.Comments = []string{"original"}
	g := f.Clone()
	g.Clauses[0][0] = 2
	g.Comments[0] = "copy"
	if f.Clauses[0][0] != 1 || f.Comments[0] != "original" {
		t.Fatal("Clone should deep-copy")
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	f := New(4)
	f.Comments = []string{"round trip test"}
	f.AddClauseLits(1, -2, 3)
	f.AddClauseLits(-4)
	f.AddClauseLits(2, 4)
	text := f.DIMACSString()
	g, err := ParseDIMACSString(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if g.NumVars != f.NumVars || g.NumClauses() != f.NumClauses() {
		t.Fatalf("round trip mismatch: %v vs %v", g, f)
	}
	for i := range f.Clauses {
		if len(f.Clauses[i]) != len(g.Clauses[i]) {
			t.Fatalf("clause %d mismatch", i)
		}
		for j := range f.Clauses[i] {
			if f.Clauses[i][j] != g.Clauses[i][j] {
				t.Fatalf("clause %d mismatch", i)
			}
		}
	}
	if len(g.Comments) != 1 || g.Comments[0] != "round trip test" {
		t.Fatalf("comments not preserved: %v", g.Comments)
	}
}

func TestParseDIMACSVariants(t *testing.T) {
	// Multi-line clause, missing problem line, trailing clause without 0.
	text := "c hello\n1 2\n-3 0\n2 -1"
	f, err := ParseDIMACSString(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if f.NumClauses() != 2 {
		t.Fatalf("got %d clauses, want 2: %v", f.NumClauses(), f.Clauses)
	}
	if f.NumVars != 3 {
		t.Fatalf("NumVars = %d, want 3", f.NumVars)
	}
	// Declared var count larger than used.
	f2, err := ParseDIMACSString("p cnf 10 1\n1 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if f2.NumVars != 10 {
		t.Fatalf("NumVars = %d, want 10", f2.NumVars)
	}
	// Percent terminator used by some benchmark suites.
	f3, err := ParseDIMACSString("p cnf 2 1\n1 -2 0\n%\n0\n")
	if err != nil {
		t.Fatal(err)
	}
	if f3.NumClauses() != 1 {
		t.Fatalf("clauses = %d, want 1", f3.NumClauses())
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []string{
		"p cnf x 3\n1 0\n",
		"p dnf 2 1\n1 0\n",
		"1 a 0\n",
	}
	for _, c := range cases {
		if _, err := ParseDIMACSString(c); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestParseDIMACSFileAndWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/test.cnf"
	f := New(2)
	f.AddClauseLits(1, 2)
	if err := f.WriteDIMACSFile(path); err != nil {
		t.Fatal(err)
	}
	g, err := ParseDIMACSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumClauses() != 1 {
		t.Fatal("file round trip failed")
	}
	if _, err := ParseDIMACSFile(dir + "/missing.cnf"); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestEvaluateClauseAllFalse(t *testing.T) {
	f := New(2)
	f.AddClauseLits(1, 2)
	a := NewAssignment(2)
	a.Set(1, False)
	a.Set(2, False)
	if f.Evaluate(a) != False {
		t.Fatal("all-false clause should falsify formula")
	}
}

// Property: simplifying under a partial assignment preserves satisfiability
// by the same total assignment.
func TestSimplifyPreservesSatisfactionProperty(t *testing.T) {
	prop := func(seed int64) bool {
		f, total := randomFormulaAndAssignment(seed, 8, 20)
		partial := NewAssignment(f.NumVars)
		// Take the first half of the total assignment as the partial one.
		for v := Var(1); int(v) <= f.NumVars/2; v++ {
			partial.Set(v, total.Value(v))
		}
		want := f.Evaluate(total)
		simp, ok := f.Simplify(partial)
		if !ok {
			// Simplification found an empty clause: the partial assignment
			// already falsifies the formula, so the total one must too.
			return want == False
		}
		return simp.Evaluate(total) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: DIMACS round trip is the identity on clause content.
func TestDIMACSRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		f, _ := randomFormulaAndAssignment(seed, 6, 12)
		g, err := ParseDIMACSString(f.DIMACSString())
		if err != nil {
			return false
		}
		if g.NumClauses() != f.NumClauses() {
			return false
		}
		for i := range f.Clauses {
			if len(f.Clauses[i]) != len(g.Clauses[i]) {
				return false
			}
			for j := range f.Clauses[i] {
				if f.Clauses[i][j] != g.Clauses[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// randomFormulaAndAssignment builds a small pseudo-random formula and a total
// assignment from a seed, using a simple LCG so the cnf package tests do not
// need math/rand determinism guarantees.
func randomFormulaAndAssignment(seed int64, numVars, numClauses int) (*Formula, Assignment) {
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 11
	}
	f := New(numVars)
	for i := 0; i < numClauses; i++ {
		width := int(next()%3) + 1
		c := make(Clause, 0, width)
		for j := 0; j < width; j++ {
			v := Var(next()%uint64(numVars)) + 1
			pos := next()%2 == 0
			c = append(c, NewLit(v, pos))
		}
		f.AddClause(c)
	}
	a := NewAssignment(numVars)
	for v := Var(1); int(v) <= numVars; v++ {
		if next()%2 == 0 {
			a.Set(v, True)
		} else {
			a.Set(v, False)
		}
	}
	return f, a
}

func TestFormulaString(t *testing.T) {
	f := New(2)
	f.AddClauseLits(1, 2)
	if !strings.Contains(f.String(), "vars=2") {
		t.Fatalf("String = %q", f.String())
	}
}
