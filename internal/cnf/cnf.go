// Package cnf provides the propositional-logic substrate used throughout the
// repository: literals, clauses, CNF formulas, partial assignments, DIMACS
// input/output and formula simplification.
//
// Variables are numbered starting from 1, as in the DIMACS convention.  A
// literal is a signed variable index: +v is the positive literal of variable
// v, -v its negation.  Literal 0 is invalid and never appears inside a
// clause.
package cnf

import (
	"fmt"
	"sort"
)

// Var is a propositional variable, numbered from 1.
type Var int

// Lit is a literal: +v for the positive literal of variable v, -v for the
// negative literal.  The zero value is not a valid literal.
type Lit int

// NewLit returns the literal of v with the given sign (true = positive).
func NewLit(v Var, positive bool) Lit {
	if v <= 0 {
		panic(fmt.Sprintf("cnf: invalid variable %d", v))
	}
	if positive {
		return Lit(v)
	}
	return Lit(-v)
}

// Var returns the variable of the literal.
func (l Lit) Var() Var {
	if l < 0 {
		return Var(-l)
	}
	return Var(l)
}

// Positive reports whether l is a positive literal.
func (l Lit) Positive() bool { return l > 0 }

// Neg returns the negation of the literal.
func (l Lit) Neg() Lit { return -l }

// String implements fmt.Stringer.
func (l Lit) String() string { return fmt.Sprintf("%d", int(l)) }

// Value is the truth value of a variable under a (partial) assignment.
type Value int8

// Truth values of a variable under a partial assignment.
const (
	Unassigned Value = iota
	True
	False
)

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "unassigned"
	}
}

// Not returns the negation of a truth value; Unassigned is its own negation.
func (v Value) Not() Value {
	switch v {
	case True:
		return False
	case False:
		return True
	default:
		return Unassigned
	}
}

// Clause is a disjunction of literals.
type Clause []Lit

// Clone returns a deep copy of the clause.
func (c Clause) Clone() Clause {
	out := make(Clause, len(c))
	copy(out, c)
	return out
}

// Contains reports whether the clause contains the literal l.
func (c Clause) Contains(l Lit) bool {
	for _, x := range c {
		if x == l {
			return true
		}
	}
	return false
}

// MaxVar returns the largest variable index mentioned in the clause, or 0 if
// the clause is empty.
func (c Clause) MaxVar() Var {
	var m Var
	for _, l := range c {
		if v := l.Var(); v > m {
			m = v
		}
	}
	return m
}

// Normalize sorts the clause, removes duplicate literals and reports whether
// the clause is a tautology (contains both l and ¬l).  The returned clause
// shares no memory with the receiver.
func (c Clause) Normalize() (Clause, bool) {
	out := c.Clone()
	sort.Slice(out, func(i, j int) bool {
		vi, vj := out[i].Var(), out[j].Var()
		if vi != vj {
			return vi < vj
		}
		return out[i] < out[j]
	})
	dedup := out[:0]
	for i, l := range out {
		if i > 0 && l == out[i-1] {
			continue
		}
		if i > 0 && l == -out[i-1] {
			return nil, true
		}
		dedup = append(dedup, l)
	}
	return dedup, false
}

// Assignment maps variables to truth values.  Index 0 is unused.
type Assignment []Value

// NewAssignment returns an all-unassigned assignment able to hold variables
// 1..numVars.
func NewAssignment(numVars int) Assignment {
	return make(Assignment, numVars+1)
}

// Value returns the truth value of v, or Unassigned if v is out of range.
func (a Assignment) Value(v Var) Value {
	if int(v) <= 0 || int(v) >= len(a) {
		return Unassigned
	}
	return a[v]
}

// LitValue returns the truth value of a literal under the assignment.
func (a Assignment) LitValue(l Lit) Value {
	v := a.Value(l.Var())
	if v == Unassigned {
		return Unassigned
	}
	if l.Positive() {
		return v
	}
	return v.Not()
}

// Set assigns variable v.  It grows the assignment if needed.
func (a *Assignment) Set(v Var, val Value) {
	for int(v) >= len(*a) {
		*a = append(*a, Unassigned)
	}
	(*a)[v] = val
}

// SetLit makes literal l true under the assignment.
func (a *Assignment) SetLit(l Lit) {
	if l.Positive() {
		a.Set(l.Var(), True)
	} else {
		a.Set(l.Var(), False)
	}
}

// Assigned reports whether v has a value.
func (a Assignment) Assigned(v Var) bool { return a.Value(v) != Unassigned }

// Clone returns a deep copy.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	copy(out, a)
	return out
}

// NumAssigned returns the number of assigned variables.
func (a Assignment) NumAssigned() int {
	n := 0
	for v := 1; v < len(a); v++ {
		if a[v] != Unassigned {
			n++
		}
	}
	return n
}

// Formula is a CNF formula: a conjunction of clauses over variables
// 1..NumVars.
type Formula struct {
	// NumVars is the number of variables; variables are 1..NumVars.  It may
	// exceed the largest variable actually mentioned in the clauses.
	NumVars int
	// Clauses are the clauses of the formula.
	Clauses []Clause
	// Comments holds free-form comment lines (without the leading "c ")
	// preserved from or destined for DIMACS files.
	Comments []string
}

// New returns an empty formula over numVars variables.
func New(numVars int) *Formula {
	return &Formula{NumVars: numVars}
}

// AddClause appends a clause, growing NumVars if the clause mentions a larger
// variable.  The clause is stored as given (no copy); callers must not modify
// it afterwards.
func (f *Formula) AddClause(c Clause) {
	if m := int(c.MaxVar()); m > f.NumVars {
		f.NumVars = m
	}
	f.Clauses = append(f.Clauses, c)
}

// AddClauseLits is a convenience wrapper around AddClause.
func (f *Formula) AddClauseLits(lits ...Lit) {
	f.AddClause(Clause(lits))
}

// NumClauses returns the number of clauses.
func (f *Formula) NumClauses() int { return len(f.Clauses) }

// Clone returns a deep copy of the formula.
func (f *Formula) Clone() *Formula {
	out := &Formula{NumVars: f.NumVars}
	out.Clauses = make([]Clause, len(f.Clauses))
	for i, c := range f.Clauses {
		out.Clauses[i] = c.Clone()
	}
	out.Comments = append([]string(nil), f.Comments...)
	return out
}

// Vars returns the sorted list of variables actually occurring in clauses.
func (f *Formula) Vars() []Var {
	seen := make(map[Var]bool)
	for _, c := range f.Clauses {
		for _, l := range c {
			seen[l.Var()] = true
		}
	}
	out := make([]Var, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Evaluate returns the truth value of the formula under a complete or partial
// assignment: True if every clause has a true literal, False if some clause
// has all literals false, Unassigned otherwise.
func (f *Formula) Evaluate(a Assignment) Value {
	result := True
	for _, c := range f.Clauses {
		cv := evalClause(c, a)
		switch cv {
		case False:
			return False
		case Unassigned:
			result = Unassigned
		}
	}
	return result
}

func evalClause(c Clause, a Assignment) Value {
	allFalse := true
	for _, l := range c {
		switch a.LitValue(l) {
		case True:
			return True
		case Unassigned:
			allFalse = false
		}
	}
	if allFalse {
		return False
	}
	return Unassigned
}

// IsSatisfiedBy reports whether the assignment satisfies every clause.
func (f *Formula) IsSatisfiedBy(a Assignment) bool { return f.Evaluate(a) == True }

// Simplify returns a new formula obtained by substituting the given partial
// assignment into f: satisfied clauses are removed, false literals are
// deleted from the remaining clauses.  The variable numbering is preserved.
// The second result is false if substitution produced an empty clause (the
// simplified formula is trivially unsatisfiable); the returned formula then
// contains the empty clause.
func (f *Formula) Simplify(a Assignment) (*Formula, bool) {
	out := &Formula{NumVars: f.NumVars}
	ok := true
	for _, c := range f.Clauses {
		newC := make(Clause, 0, len(c))
		satisfied := false
		for _, l := range c {
			switch a.LitValue(l) {
			case True:
				satisfied = true
			case False:
				// drop literal
			default:
				newC = append(newC, l)
			}
			if satisfied {
				break
			}
		}
		if satisfied {
			continue
		}
		if len(newC) == 0 {
			ok = false
		}
		out.Clauses = append(out.Clauses, newC)
	}
	return out, ok
}

// WithUnits returns a copy of f with one unit clause appended for every
// assigned variable in a.  This is the standard way of constructing the
// sub-problem C[X̃/α] without renumbering variables.
func (f *Formula) WithUnits(a Assignment) *Formula {
	out := &Formula{NumVars: f.NumVars, Comments: append([]string(nil), f.Comments...)}
	out.Clauses = make([]Clause, len(f.Clauses), len(f.Clauses)+a.NumAssigned())
	copy(out.Clauses, f.Clauses)
	for v := Var(1); int(v) < len(a); v++ {
		switch a[v] {
		case True:
			out.AddClause(Clause{NewLit(v, true)})
		case False:
			out.AddClause(Clause{NewLit(v, false)})
		}
	}
	return out
}

// UnitPropagate performs unit propagation on f starting from the partial
// assignment a (which is not modified).  It returns the extended assignment
// and false if a conflict (empty clause) was derived.
//
// This is a simple quadratic implementation intended for analysis and tests;
// the CDCL solver has its own watched-literal propagation.
func (f *Formula) UnitPropagate(a Assignment) (Assignment, bool) {
	cur := a.Clone()
	for len(cur) <= f.NumVars {
		cur = append(cur, Unassigned)
	}
	for {
		progress := false
		for _, c := range f.Clauses {
			var unassigned []Lit
			satisfied := false
			for _, l := range c {
				switch cur.LitValue(l) {
				case True:
					satisfied = true
				case Unassigned:
					unassigned = append(unassigned, l)
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			switch len(unassigned) {
			case 0:
				return cur, false
			case 1:
				cur.SetLit(unassigned[0])
				progress = true
			}
		}
		if !progress {
			return cur, true
		}
	}
}

// Stats summarises structural properties of a formula.
type Stats struct {
	NumVars      int
	NumClauses   int
	NumLiterals  int
	MinClauseLen int
	MaxClauseLen int
	NumUnits     int
	NumBinary    int
	NumTernary   int
}

// Statistics computes structural statistics of the formula.
func (f *Formula) Statistics() Stats {
	s := Stats{NumVars: f.NumVars, NumClauses: len(f.Clauses)}
	for i, c := range f.Clauses {
		n := len(c)
		s.NumLiterals += n
		if i == 0 || n < s.MinClauseLen {
			s.MinClauseLen = n
		}
		if n > s.MaxClauseLen {
			s.MaxClauseLen = n
		}
		switch n {
		case 1:
			s.NumUnits++
		case 2:
			s.NumBinary++
		case 3:
			s.NumTernary++
		}
	}
	return s
}

// String returns a compact human-readable description of the formula.
func (f *Formula) String() string {
	return fmt.Sprintf("cnf{vars=%d clauses=%d}", f.NumVars, len(f.Clauses))
}
