package cnf

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// minInt is the most negative int, the one literal value whose negation
// overflows (see ParseDIMACS).
const minInt = -1 << (strconv.IntSize - 1)

// ParseDIMACS reads a CNF formula in DIMACS format from r.
//
// The parser is tolerant: the problem line ("p cnf <vars> <clauses>") is
// optional, comment lines ("c ...") are preserved in Comments, clauses may
// span multiple lines and are terminated by 0.  A trailing clause without a
// terminating 0 is accepted at end of input.
func ParseDIMACS(r io.Reader) (*Formula, error) {
	f := &Formula{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var current Clause
	declaredVars := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch line[0] {
		case 'c':
			f.Comments = append(f.Comments, strings.TrimPrefix(strings.TrimPrefix(line, "c"), " "))
			continue
		case 'p':
			fields := strings.Fields(line)
			if len(fields) < 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("cnf: line %d: malformed problem line %q", lineNo, line)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("cnf: line %d: bad variable count %q", lineNo, fields[2])
			}
			if c, err := strconv.Atoi(fields[3]); err != nil || c < 0 {
				return nil, fmt.Errorf("cnf: line %d: bad clause count %q", lineNo, fields[3])
			}
			declaredVars = v
			continue
		case '%':
			// Some benchmark files end with "%\n0"; stop parsing.
			goto done
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("cnf: line %d: bad literal %q: %v", lineNo, tok, err)
			}
			if n == 0 {
				f.AddClause(current)
				current = nil
				continue
			}
			// The most negative int has no positive counterpart: Lit(n).Var()
			// would overflow to a negative variable, breaking the "variables
			// are numbered from 1" invariant every consumer relies on.
			if n == minInt {
				return nil, fmt.Errorf("cnf: line %d: literal %q out of range", lineNo, tok)
			}
			current = append(current, Lit(n))
		}
	}
done:
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cnf: read: %w", err)
	}
	if len(current) > 0 {
		f.AddClause(current)
	}
	if declaredVars > f.NumVars {
		f.NumVars = declaredVars
	}
	return f, nil
}

// ParseDIMACSString parses a DIMACS formula from a string.
func ParseDIMACSString(s string) (*Formula, error) {
	return ParseDIMACS(strings.NewReader(s))
}

// ParseDIMACSFile parses a DIMACS formula from a file.
func ParseDIMACSFile(path string) (*Formula, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	return ParseDIMACS(fd)
}

// WriteDIMACS writes the formula in DIMACS format to w.
func (f *Formula) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, c := range f.Comments {
		if _, err := fmt.Fprintf(bw, "c %s\n", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		for _, l := range c {
			if _, err := fmt.Fprintf(bw, "%d ", int(l)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DIMACSString renders the formula as a DIMACS string.
func (f *Formula) DIMACSString() string {
	var sb strings.Builder
	_ = f.WriteDIMACS(&sb)
	return sb.String()
}

// WriteDIMACSFile writes the formula to a file, creating or truncating it.
func (f *Formula) WriteDIMACSFile(path string) error {
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WriteDIMACS(fd); err != nil {
		fd.Close()
		return err
	}
	return fd.Close()
}
