package cnf

import (
	"strings"
	"testing"
)

// FuzzParseDIMACS throws arbitrary bytes at the tolerant DIMACS parser and
// checks its invariants: no panic, every accepted literal names a variable
// ≥ 1 within NumVars, and an accepted formula survives a DIMACS round trip
// with identical shape.
func FuzzParseDIMACS(f *testing.F) {
	for _, seed := range []string{
		"p cnf 3 2\n1 -2 0\n2 3 0\n",
		"c a comment\np cnf 2 1\n1 2 0\n",
		"1 -2 3 0\n-1 0",                 // no problem line, trailing clause without 0
		"p cnf 5 1\n1\n2\n-3 0\n",        // clause spanning lines
		"p cnf 2 1\n1 2 0\n%\n0\n",       // benchmark-style % terminator
		"p cnf -3 1\n1 0\n",              // malformed header: negative count
		"p cnf 3 x\n1 0\n",               // malformed header: non-numeric count
		"p cnf 3\n",                      // truncated problem line
		"1 2 9999999999999999999999 0\n", // literal overflowing int
		"1 -9223372036854775808 0\n",     // literal whose negation overflows
		"c only a comment\n",
		"",
		"p cnf 0 0\n",
		"  1   -1  0  \n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		formula, err := ParseDIMACSString(input)
		if err != nil {
			return // rejected inputs just must not panic
		}
		if formula.NumVars < 0 {
			t.Fatalf("accepted formula with negative NumVars %d", formula.NumVars)
		}
		for ci, c := range formula.Clauses {
			for _, l := range c {
				if l == 0 {
					t.Fatalf("clause %d contains the invalid literal 0", ci)
				}
				if v := l.Var(); v < 1 || int(v) > formula.NumVars {
					t.Fatalf("clause %d literal %d names variable %d outside 1..%d",
						ci, int(l), v, formula.NumVars)
				}
			}
		}
		// Round trip: writing and reparsing must preserve the shape.  Guard
		// against absurd declared headers blowing the rendering up.
		if formula.NumVars > 1<<20 || formula.NumClauses() > 1<<16 {
			return
		}
		again, err := ParseDIMACSString(formula.DIMACSString())
		if err != nil {
			t.Fatalf("round trip failed to reparse: %v", err)
		}
		if again.NumVars != formula.NumVars || again.NumClauses() != formula.NumClauses() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d vars/clauses",
				again.NumVars, again.NumClauses(), formula.NumVars, formula.NumClauses())
		}
		for ci := range formula.Clauses {
			if len(again.Clauses[ci]) != len(formula.Clauses[ci]) {
				t.Fatalf("round trip changed clause %d length", ci)
			}
			for li := range formula.Clauses[ci] {
				if again.Clauses[ci][li] != formula.Clauses[ci][li] {
					t.Fatalf("round trip changed clause %d literal %d", ci, li)
				}
			}
		}
	})
}

// TestParseDIMACSRejectsOverflowLiteral pins the fuzz-hardening fixes as
// plain regressions: the most negative literal and negative header counts
// are rejected instead of smuggling invalid variables into the formula.
func TestParseDIMACSRejectsOverflowLiteral(t *testing.T) {
	if _, err := ParseDIMACSString("1 -9223372036854775808 0\n"); err == nil {
		t.Fatal("literal -2^63 accepted")
	}
	if _, err := ParseDIMACSString("p cnf -3 1\n1 0\n"); err == nil {
		t.Fatal("negative declared variable count accepted")
	}
	if _, err := ParseDIMACSString("p cnf 3 -1\n1 0\n"); err == nil {
		t.Fatal("negative declared clause count accepted")
	}
	if !strings.Contains(func() string {
		_, err := ParseDIMACSString("1 -9223372036854775808 0\n")
		return err.Error()
	}(), "out of range") {
		t.Fatal("overflow literal error message does not explain the rejection")
	}
}
