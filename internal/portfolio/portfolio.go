// Package portfolio implements the portfolio approach to parallel SAT
// solving that the paper's introduction contrasts with the partitioning
// approach: several differently-configured copies of the sequential solver
// attack the *same* instance concurrently and the first one to finish wins.
//
// It exists as a baseline: the experiments can compare "one instance, many
// solver configurations" (portfolio) against "many subproblems, one solver
// configuration" (partitioning, package pdsat) on the same weakened
// cryptanalysis instances.  Unlike the partitioning approach, the portfolio
// cannot use more workers than it has distinct configurations and gives no
// way to predict its runtime in advance — which is exactly the paper's
// motivation for partitionings with predictive functions.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cluster"
	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// Member is one portfolio entry: a named solver configuration.
type Member struct {
	// Name identifies the configuration in reports.
	Name string
	// Options configures the CDCL solver.
	Options solver.Options
	// Assumptions optionally restricts this member to a sub-space (a
	// guiding-path-style split); usually empty.
	Assumptions []cnf.Lit
}

// DefaultMembers returns a diverse set of solver configurations in the
// spirit of portfolio solvers: different decay rates, restart strategies and
// default polarities.
func DefaultMembers() []Member {
	base := solver.DefaultOptions()

	fastDecay := base
	fastDecay.VarDecay = 0.85

	slowDecay := base
	slowDecay.VarDecay = 0.99

	rareRestarts := base
	rareRestarts.RestartBase = 1000

	positivePhase := base
	positivePhase.DefaultPhase = true

	noMinimize := base
	noMinimize.MinimizeLearned = false

	return []Member{
		{Name: "default", Options: base},
		{Name: "fast-decay", Options: fastDecay},
		{Name: "slow-decay", Options: slowDecay},
		{Name: "rare-restarts", Options: rareRestarts},
		{Name: "positive-phase", Options: positivePhase},
		{Name: "no-minimization", Options: noMinimize},
	}
}

// Result is the outcome of a portfolio run.
type Result struct {
	// Status is the overall outcome (the winner's status, or Unknown if no
	// member finished).
	Status solver.Status
	// Winner is the name of the member that finished first with a
	// conclusive answer ("" if none).
	Winner string
	// Model is the winner's model when Status == Sat.
	Model cnf.Assignment
	// WallTime is the elapsed time until the first conclusive answer (or
	// until every member gave up).
	WallTime time.Duration
	// TotalCost is the summed effort of all members until they were
	// stopped, in the given cost metric; it measures how much work the
	// portfolio burned in total, the quantity to compare against a
	// partitioning's family cost.
	TotalCost float64
	// MemberStats records the per-member effort.
	MemberStats map[string]solver.Stats
}

// Options configure a portfolio run.
type Options struct {
	// Members are the solver configurations to run; DefaultMembers() if nil.
	Members []Member
	// Workers bounds how many members run concurrently (0 = all).  Ignored
	// when Transport is set (the transport decides the capacity).
	Workers int
	// CostMetric selects the effort unit for TotalCost.
	CostMetric solver.CostMetric
	// MemberBudget bounds each member's effort (0 fields = unlimited).
	MemberBudget solver.Budget
	// Transport optionally dispatches the members as cluster tasks — one
	// task per member, each carrying its own solver configuration — e.g.
	// through a cluster.Leader onto remote machines.  The transport must
	// have been created for the same formula.  The batch stops as soon as
	// one member is conclusive (SAT or UNSAT), like the local run.  Member
	// solvers are then built per run on the serving worker instead of
	// being kept across Solve calls.
	Transport cluster.Transport
}

// Portfolio is a reusable portfolio session: the per-member solvers are
// built once and restored to their pristine state (solver.Reset) for every
// Solve call, so repeated runs — e.g. one per guiding-path split, or the
// experiment harness comparing budgets — skip the clause-database
// construction entirely.
type Portfolio struct {
	formula *cnf.Formula
	members []Member
	opts    Options
	solvers []*solver.Solver
	mu      sync.Mutex // serializes Solve calls (the solvers are stateful)
}

// New validates the options and creates a reusable portfolio for the
// formula.  Member solvers are constructed lazily on the first Solve call.
func New(f *cnf.Formula, opts Options) (*Portfolio, error) {
	if f == nil {
		return nil, errors.New("portfolio: nil formula")
	}
	members := opts.Members
	if len(members) == 0 {
		members = DefaultMembers()
	}
	names := make(map[string]bool, len(members))
	for _, m := range members {
		if names[m.Name] {
			return nil, fmt.Errorf("portfolio: duplicate member name %q", m.Name)
		}
		names[m.Name] = true
	}
	return &Portfolio{formula: f, members: members, opts: opts}, nil
}

// Solve runs the portfolio on the formula and returns as soon as one member
// reports SAT or UNSAT (the remaining members are interrupted), or when all
// members stop without a conclusion.  It is a convenience wrapper around
// Portfolio.Solve for one-shot runs.
func Solve(ctx context.Context, f *cnf.Formula, opts Options) (*Result, error) {
	p, err := New(f, opts)
	if err != nil {
		return nil, err
	}
	return p.Solve(ctx)
}

// Solve runs the portfolio once, reusing the member solvers of previous
// calls (or dispatching the members through Options.Transport when set).
func (p *Portfolio) Solve(ctx context.Context) (*Result, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.opts.Transport != nil {
		return p.solveOnTransport(ctx)
	}
	members := p.members
	workers := p.opts.Workers
	if workers <= 0 || workers > len(members) {
		workers = len(members)
	}

	start := time.Now()
	type memberResult struct {
		name string
		res  solver.Result
	}
	resCh := make(chan memberResult, len(members))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	innerCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	if p.solvers == nil {
		p.solvers = make([]*solver.Solver, len(members))
		for i, m := range members {
			p.solvers[i] = solver.New(p.formula, m.Options)
		}
	}
	for i, m := range members {
		s := p.solvers[i]
		s.Reset()
		s.SetBudget(p.opts.MemberBudget)
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-innerCtx.Done():
				resCh <- memberResult{name: m.Name, res: solver.Result{Status: solver.Unknown, Interrupted: true}}
				return
			}
			done := make(chan solver.Result, 1)
			go func() { done <- s.SolveWithAssumptions(m.Assumptions) }()
			select {
			case r := <-done:
				resCh <- memberResult{name: m.Name, res: r}
			case <-innerCtx.Done():
				s.Interrupt()
				resCh <- memberResult{name: m.Name, res: <-done}
			}
		}()
	}

	result := &Result{Status: solver.Unknown, MemberStats: make(map[string]solver.Stats, len(members))}
	for i := 0; i < len(members); i++ {
		mr := <-resCh
		result.MemberStats[mr.name] = mr.res.Stats
		if result.Winner == "" && (mr.res.Status == solver.Sat || mr.res.Status == solver.Unsat) {
			result.Status = mr.res.Status
			result.Winner = mr.name
			result.Model = mr.res.Model
			result.WallTime = time.Since(start)
			cancel() // stop the others
		}
	}
	wg.Wait()
	if result.Winner == "" {
		result.WallTime = time.Since(start)
	}
	// Sum in member order, not map order: float addition is not
	// associative, so ranging over the map would make TotalCost depend on
	// iteration order.
	for _, m := range members {
		if st, ok := result.MemberStats[m.Name]; ok {
			result.TotalCost += solver.EffortCost(st, p.opts.CostMetric)
		}
	}
	if err := ctx.Err(); err != nil && result.Winner == "" {
		return result, err
	}
	return result, nil
}

// solveOnTransport runs the members as one cluster batch: each member is a
// task carrying its own solver configuration, the batch is cancelled as
// soon as one member reports SAT or UNSAT, and the first conclusive result
// in completion order wins — the distributed counterpart of the local
// goroutine race.
func (p *Portfolio) solveOnTransport(ctx context.Context) (*Result, error) {
	members := p.members
	start := time.Now()
	tasks := make([]cluster.Task, len(members))
	for i, m := range members {
		o := m.Options
		tasks[i] = cluster.Task{Index: i, Assumptions: m.Assumptions, Options: &o}
	}
	results, err := p.opts.Transport.Run(ctx, tasks, cluster.BatchOptions{
		Stop:       cluster.StopOnDecided,
		Budget:     p.opts.MemberBudget,
		CostMetric: p.opts.CostMetric,
	})
	if err != nil && !cluster.IsInterruption(err) {
		return nil, err
	}
	result := &Result{Status: solver.Unknown, MemberStats: make(map[string]solver.Stats, len(members))}
	for _, res := range results {
		if res.Index < 0 || res.Index >= len(members) {
			continue
		}
		name := members[res.Index].Name
		result.MemberStats[name] = res.Stats
		result.TotalCost += res.Cost
		if result.Winner == "" && (res.Status == solver.Sat || res.Status == solver.Unsat) {
			result.Status = res.Status
			result.Winner = name
			result.Model = res.Model
		}
	}
	result.WallTime = time.Since(start)
	if err != nil && result.Winner == "" {
		return result, err
	}
	return result, nil
}
