package portfolio

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/cnfgen"
	"github.com/paper-repro/pdsat-go/internal/encoder"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

func TestDefaultMembersAreDistinct(t *testing.T) {
	members := DefaultMembers()
	if len(members) < 4 {
		t.Fatalf("expected several members, got %d", len(members))
	}
	seen := map[string]bool{}
	for _, m := range members {
		if m.Name == "" {
			t.Fatal("member without a name")
		}
		if seen[m.Name] {
			t.Fatalf("duplicate member %q", m.Name)
		}
		seen[m.Name] = true
	}
}

func TestSolveSatInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f, err := cnfgen.Random3SAT(rng, 60, 3.0) // under-constrained: SAT
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), f, Options{CostMetric: solver.CostPropagations})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.Sat {
		t.Fatalf("expected SAT, got %v", res.Status)
	}
	if res.Winner == "" || res.Model == nil {
		t.Fatal("winner and model must be set")
	}
	if !f.IsSatisfiedBy(res.Model) {
		t.Fatal("winner's model does not satisfy the formula")
	}
	if res.TotalCost <= 0 || res.WallTime <= 0 {
		t.Fatalf("degenerate accounting: %+v", res)
	}
	if len(res.MemberStats) != len(DefaultMembers()) {
		t.Fatalf("expected stats for all members, got %d", len(res.MemberStats))
	}
}

func TestSolveUnsatInstance(t *testing.T) {
	f, err := cnfgen.Pigeonhole(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), f, Options{Workers: 2, CostMetric: solver.CostConflicts})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.Unsat {
		t.Fatalf("expected UNSAT, got %v", res.Status)
	}
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(context.Background(), nil, Options{}); err == nil {
		t.Fatal("expected error for nil formula")
	}
	f := cnf.New(1)
	f.AddClauseLits(1)
	dup := Options{Members: []Member{{Name: "a"}, {Name: "a"}}}
	if _, err := Solve(context.Background(), f, dup); err == nil {
		t.Fatal("expected error for duplicate member names")
	}
}

func TestSolveWithCustomMembersAndAssumptions(t *testing.T) {
	f := cnf.New(3)
	f.AddClauseLits(1, 2)
	f.AddClauseLits(-1, 3)
	members := []Member{
		{Name: "assume-neg1", Options: solver.DefaultOptions(), Assumptions: []cnf.Lit{-1}},
		{Name: "assume-pos1", Options: solver.DefaultOptions(), Assumptions: []cnf.Lit{1}},
	}
	res, err := Solve(context.Background(), f, Options{Members: members})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.Sat {
		t.Fatalf("expected SAT, got %v", res.Status)
	}
}

func TestSolveBudgetExhaustion(t *testing.T) {
	f, err := cnfgen.Pigeonhole(9, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), f, Options{
		MemberBudget: solver.Budget{MaxConflicts: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.Unknown || res.Winner != "" {
		t.Fatalf("expected no winner under a tiny budget, got %v by %q", res.Status, res.Winner)
	}
}

func TestSolveContextCancellation(t *testing.T) {
	f, err := cnfgen.Pigeonhole(10, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	res, err := Solve(ctx, f, Options{})
	if err == nil && res.Status != solver.Unknown {
		// Finishing that fast is acceptable, just unlikely.
		return
	}
	if res == nil {
		t.Fatal("result should be returned even on cancellation")
	}
}

func TestPortfolioOnCryptanalysisInstance(t *testing.T) {
	// A weakened A5/1 instance is satisfiable (the secret exists); the
	// portfolio should find a model that reproduces the keystream.
	inst, err := encoder.NewInstance(encoder.A51(), encoder.Config{
		KeystreamLen: 40, KnownSuffix: 50, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), inst.CNF, Options{Workers: 2, CostMetric: solver.CostPropagations})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.Sat {
		t.Fatalf("expected SAT, got %v", res.Status)
	}
	ok, err := inst.CheckRecoveredState(encoder.A51(), res.Model)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("portfolio model does not reproduce the keystream")
	}
}
