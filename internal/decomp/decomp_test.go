package decomp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

func space(n int) *Space {
	vars := make([]cnf.Var, n)
	for i := range vars {
		vars[i] = cnf.Var(i + 1)
	}
	return NewSpace(vars)
}

func TestSpaceBasics(t *testing.T) {
	s := NewSpace([]cnf.Var{3, 1, 7, 3})
	if s.Size() != 3 {
		t.Fatalf("Size = %d, want 3 (duplicates removed)", s.Size())
	}
	if s.VarAt(0) != 3 || s.VarAt(1) != 1 || s.VarAt(2) != 7 {
		t.Fatalf("order not preserved: %v", s.Vars())
	}
	if s.IndexOf(7) != 2 || s.IndexOf(99) != -1 {
		t.Fatal("IndexOf misbehaves")
	}
	if !s.Contains(1) || s.Contains(2) {
		t.Fatal("Contains misbehaves")
	}
}

func TestPointConstruction(t *testing.T) {
	s := space(5)
	full := s.FullPoint()
	if full.Count() != 5 || len(full.Vars()) != 5 {
		t.Fatal("FullPoint should select everything")
	}
	empty := s.EmptyPoint()
	if empty.Count() != 0 || len(empty.Vars()) != 0 {
		t.Fatal("EmptyPoint should select nothing")
	}
	p, err := s.PointFromVars([]cnf.Var{2, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.Count() != 2 || !p.Has(2) || !p.Has(4) || p.Has(3) {
		t.Fatalf("PointFromVars = %v", p.Vars())
	}
	if _, err := s.PointFromVars([]cnf.Var{77}); err == nil {
		t.Fatal("expected error for out-of-space variable")
	}
}

func TestPointFlipCloneEqual(t *testing.T) {
	s := space(4)
	p := s.EmptyPoint()
	q := p.Flip(2)
	if p.Count() != 0 {
		t.Fatal("Flip must not modify the receiver")
	}
	if q.Count() != 1 || !q.Bit(2) {
		t.Fatal("Flip failed to set the bit")
	}
	r := q.Flip(2)
	if r.Count() != 0 {
		t.Fatal("Flip failed to clear the bit")
	}
	if !p.Equal(r) || p.Equal(q) {
		t.Fatal("Equal misbehaves")
	}
	c := q.Clone()
	if !c.Equal(q) {
		t.Fatal("Clone should be equal")
	}
	if p.Key() == q.Key() || q.Key() != c.Key() {
		t.Fatal("Key misbehaves")
	}
	if q.String() == "" || p.Size() != 4 {
		t.Fatal("String/Size misbehave")
	}
}

func TestHammingDistanceAndNeighbors(t *testing.T) {
	s := space(6)
	p := s.EmptyPoint().Flip(0).Flip(3)
	q := p.Flip(1)
	if p.HammingDistance(q) != 1 || p.HammingDistance(p) != 0 {
		t.Fatal("HammingDistance misbehaves")
	}
	n1 := p.Neighbors(1)
	if len(n1) != 6 {
		t.Fatalf("radius-1 neighbourhood size = %d, want 6", len(n1))
	}
	for _, n := range n1 {
		if p.HammingDistance(n) != 1 {
			t.Fatal("radius-1 neighbour at wrong distance")
		}
	}
	n2 := p.Neighbors(2)
	want2 := 6 + 6*5/2
	if len(n2) != want2 {
		t.Fatalf("radius-2 neighbourhood size = %d, want %d", len(n2), want2)
	}
	if len(p.Neighbors(0)) != 0 {
		t.Fatal("radius-0 neighbourhood should be empty")
	}
}

func TestSortedVars(t *testing.T) {
	s := NewSpace([]cnf.Var{9, 2, 5})
	p := s.FullPoint()
	sorted := p.SortedVars()
	if sorted[0] != 2 || sorted[1] != 5 || sorted[2] != 9 {
		t.Fatalf("SortedVars = %v", sorted)
	}
}

func TestRandomPoint(t *testing.T) {
	s := space(50)
	rng := rand.New(rand.NewSource(1))
	p := s.RandomPoint(rng, 0.5)
	if p.Count() == 0 || p.Count() == 50 {
		t.Fatalf("suspicious random point with %d bits", p.Count())
	}
	if s.RandomPoint(rng, 0).Count() != 0 {
		t.Fatal("probability 0 should select nothing")
	}
	if s.RandomPoint(rng, 1).Count() != 50 {
		t.Fatal("probability 1 should select everything")
	}
}

func TestFamilyBasics(t *testing.T) {
	f := cnf.New(4)
	f.AddClauseLits(1, 2)
	f.AddClauseLits(-3, 4)
	fam := NewFamily(f, []cnf.Var{1, 3})
	if fam.Dimension() != 2 {
		t.Fatal("Dimension")
	}
	if fam.SizeUint() != 4 {
		t.Fatal("SizeUint")
	}
	if fam.Size() != 4 {
		t.Fatal("Size")
	}
	if len(fam.Vars()) != 2 || fam.Formula() != f {
		t.Fatal("Vars/Formula")
	}
	// Index 0b10: var 1 -> false, var 3 -> true.
	as := fam.AssumptionsFor(2)
	if as[0] != cnf.Lit(-1) || as[1] != cnf.Lit(3) {
		t.Fatalf("AssumptionsFor(2) = %v", as)
	}
	asb, err := fam.AssumptionsForBits([]bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if asb[0] != cnf.Lit(1) || asb[1] != cnf.Lit(-3) {
		t.Fatalf("AssumptionsForBits = %v", asb)
	}
	if _, err := fam.AssumptionsForBits([]bool{true}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestFamilySubproblem(t *testing.T) {
	f := cnf.New(3)
	f.AddClauseLits(1, 2, 3)
	fam := NewFamily(f, []cnf.Var{1, 2})
	sub, err := fam.Subproblem([]bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	// Original clause plus two units.
	if sub.NumClauses() != 3 {
		t.Fatalf("subproblem clauses = %d", sub.NumClauses())
	}
	res := solver.NewDefault(sub).Solve()
	if res.Status != solver.Sat || res.Model.Value(3) != cnf.True {
		t.Fatalf("subproblem should force var 3 true, got %v %v", res.Status, res.Model)
	}
	if _, err := fam.Subproblem([]bool{true}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	// The original formula must not change.
	if f.NumClauses() != 1 {
		t.Fatal("Subproblem must not modify the formula")
	}
}

func TestFamilyRandomAssignment(t *testing.T) {
	f := cnf.New(8)
	fam := NewFamily(f, []cnf.Var{1, 2, 3, 4, 5, 6, 7, 8})
	rng := rand.New(rand.NewSource(3))
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		alpha := fam.RandomAssignment(rng)
		if len(alpha) != 8 {
			t.Fatal("wrong assignment length")
		}
		key := ""
		for _, b := range alpha {
			if b {
				key += "1"
			} else {
				key += "0"
			}
		}
		seen[key] = true
	}
	if len(seen) < 10 {
		t.Fatalf("random assignments look degenerate: %d distinct of 50", len(seen))
	}
}

func TestFamilyOfPoint(t *testing.T) {
	f := cnf.New(5)
	s := space(5)
	p, _ := s.PointFromVars([]cnf.Var{2, 5})
	fam := FamilyOf(f, p)
	if fam.Dimension() != 2 {
		t.Fatal("FamilyOf dimension")
	}
	vars := fam.Vars()
	if vars[0] != 2 || vars[1] != 5 {
		t.Fatalf("FamilyOf vars = %v", vars)
	}
}

func solveWithCDCL(f *cnf.Formula) (bool, cnf.Assignment, error) {
	res := solver.NewDefault(f).Solve()
	return res.Status == solver.Sat, res.Model, nil
}

func TestCheckPartitioningSatisfiable(t *testing.T) {
	f := cnf.New(4)
	f.AddClauseLits(1, 2, 3)
	f.AddClauseLits(-1, 4)
	f.AddClauseLits(-2, -4)
	fam := NewFamily(f, []cnf.Var{1, 2})
	if err := fam.CheckPartitioning(solveWithCDCL); err != nil {
		t.Fatalf("partitioning check failed: %v", err)
	}
}

func TestCheckPartitioningUnsatisfiable(t *testing.T) {
	f := cnf.New(3)
	f.AddClauseLits(1)
	f.AddClauseLits(-1)
	fam := NewFamily(f, []cnf.Var{2, 3})
	if err := fam.CheckPartitioning(solveWithCDCL); err != nil {
		t.Fatalf("partitioning check failed on UNSAT formula: %v", err)
	}
}

func TestCheckPartitioningRejectsHugeFamilies(t *testing.T) {
	f := cnf.New(20)
	vars := make([]cnf.Var, 20)
	for i := range vars {
		vars[i] = cnf.Var(i + 1)
	}
	fam := NewFamily(f, vars)
	if err := fam.CheckPartitioning(solveWithCDCL); err == nil {
		t.Fatal("expected refusal to enumerate 2^20 subproblems")
	}
}

func TestFamilySizeLarge(t *testing.T) {
	f := cnf.New(100)
	vars := make([]cnf.Var, 80)
	for i := range vars {
		vars[i] = cnf.Var(i + 1)
	}
	fam := NewFamily(f, vars)
	if fam.Size() != math.Exp2(80) {
		t.Fatal("Size should handle d=80")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SizeUint should panic for d>=63")
		}
	}()
	fam.SizeUint()
}

// Property: the partitioning property holds for random small formulas and
// random decomposition sets (the defining property of Section 2).
func TestPartitioningProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 4 + rng.Intn(5)
		f := cnf.New(nv)
		for i := 0; i < 3+rng.Intn(10); i++ {
			width := 1 + rng.Intn(3)
			c := make(cnf.Clause, 0, width)
			for j := 0; j < width; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(nv)+1), rng.Intn(2) == 0))
			}
			f.AddClause(c)
		}
		d := 1 + rng.Intn(3)
		vars := make([]cnf.Var, 0, d)
		for len(vars) < d {
			v := cnf.Var(rng.Intn(nv) + 1)
			dup := false
			for _, w := range vars {
				if w == v {
					dup = true
				}
			}
			if !dup {
				vars = append(vars, v)
			}
		}
		fam := NewFamily(f, vars)
		return fam.CheckPartitioning(solveWithCDCL) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Flip is an involution and Neighbors(1) has exactly Size entries
// each at distance one.
func TestPointFlipProperty(t *testing.T) {
	s := space(12)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := s.RandomPoint(rng, 0.5)
		i := rng.Intn(s.Size())
		if !p.Flip(i).Flip(i).Equal(p) {
			return false
		}
		n := p.Neighbors(1)
		if len(n) != s.Size() {
			return false
		}
		for _, q := range n {
			if p.HammingDistance(q) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
