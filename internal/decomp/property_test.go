package decomp

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/paper-repro/pdsat-go/internal/cnf"
)

// propertySpaces are the table of space shapes the point-algebra properties
// are checked over; each is combined with several RNG seeds.
var propertySpaces = []struct {
	name string
	vars []cnf.Var
}{
	{"small-dense", []cnf.Var{1, 2, 3, 4, 5}},
	{"sparse", []cnf.Var{3, 17, 4, 99, 12, 7, 41}},
	{"duplicates", []cnf.Var{5, 5, 2, 9, 2, 9, 1}},
	{"wide", func() []cnf.Var {
		vars := make([]cnf.Var, 40)
		for i := range vars {
			vars[i] = cnf.Var(2*i + 1)
		}
		return vars
	}()},
}

// randomPoints draws a deterministic mix of random, empty and full points.
func randomPoints(s *Space, seed int64, n int) []Point {
	rng := rand.New(rand.NewSource(seed))
	points := []Point{s.EmptyPoint(), s.FullPoint()}
	for len(points) < n {
		points = append(points, s.RandomPoint(rng, rng.Float64()))
	}
	return points
}

// TestFlipIsInvolution checks Flip's algebra at random points: flipping the
// same bit twice restores the point exactly (bits, count and key), and one
// flip moves the point to Hamming distance 1 with the count changing by ±1.
func TestFlipIsInvolution(t *testing.T) {
	for _, tc := range propertySpaces {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSpace(tc.vars)
			for seed := int64(1); seed <= 5; seed++ {
				rng := rand.New(rand.NewSource(seed))
				for _, p := range randomPoints(s, seed, 8) {
					i := rng.Intn(s.Size())
					q := p.Flip(i)
					if q.HammingDistance(p) != 1 {
						t.Fatalf("seed %d: Flip(%d) moved Hamming distance %d", seed, i, q.HammingDistance(p))
					}
					if d := q.Count() - p.Count(); d != 1 && d != -1 {
						t.Fatalf("seed %d: Flip(%d) changed count by %d", seed, i, d)
					}
					r := q.Flip(i)
					if !r.Equal(p) || r.Key() != p.Key() || r.Count() != p.Count() {
						t.Fatalf("seed %d: Flip(%d) is not an involution at %s", seed, i, p.Key())
					}
					// The original point is untouched (points are immutable).
					if q.Equal(p) {
						t.Fatalf("seed %d: Flip(%d) returned an equal point", seed, i)
					}
				}
			}
		})
	}
}

// TestSortedVarsSortedAndDeduped checks SortedVars at random points: the
// result is strictly increasing (hence duplicate-free), matches Count, and
// contains exactly the selected variables.
func TestSortedVarsSortedAndDeduped(t *testing.T) {
	for _, tc := range propertySpaces {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSpace(tc.vars)
			for seed := int64(1); seed <= 5; seed++ {
				for _, p := range randomPoints(s, seed, 8) {
					vars := p.SortedVars()
					if len(vars) != p.Count() {
						t.Fatalf("seed %d: %d sorted vars for count %d", seed, len(vars), p.Count())
					}
					if !sort.SliceIsSorted(vars, func(i, j int) bool { return vars[i] < vars[j] }) {
						t.Fatalf("seed %d: SortedVars not sorted: %v", seed, vars)
					}
					for i := 1; i < len(vars); i++ {
						if vars[i] == vars[i-1] {
							t.Fatalf("seed %d: duplicate variable %d in %v", seed, vars[i], vars)
						}
					}
					for _, v := range vars {
						if !p.Has(v) {
							t.Fatalf("seed %d: SortedVars lists unselected variable %d", seed, v)
						}
					}
				}
			}
		})
	}
}

// TestRadiusOneNeighborhoodSize checks the paper's ρ=1 neighbourhood at
// random points: it has exactly |X̃_start| members (one per candidate
// variable — the space's size, not the point's), all pairwise distinct and
// at Hamming distance exactly 1.
func TestRadiusOneNeighborhoodSize(t *testing.T) {
	for _, tc := range propertySpaces {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSpace(tc.vars)
			for seed := int64(1); seed <= 5; seed++ {
				for _, p := range randomPoints(s, seed, 8) {
					neighbors := p.Neighbors(1)
					if len(neighbors) != s.Size() {
						t.Fatalf("seed %d: radius-1 neighbourhood of %s has %d members, want %d",
							seed, p.Key(), len(neighbors), s.Size())
					}
					seen := map[string]bool{}
					for _, q := range neighbors {
						if q.HammingDistance(p) != 1 {
							t.Fatalf("seed %d: neighbour at distance %d", seed, q.HammingDistance(p))
						}
						if seen[q.Key()] {
							t.Fatalf("seed %d: duplicate neighbour %s", seed, q.Key())
						}
						seen[q.Key()] = true
					}
				}
			}
		})
	}
}
