// Package decomp implements decomposition sets and decomposition families as
// defined in Section 2 of the paper.
//
// A decomposition set X̃ ⊆ X of the variables of a CNF C induces the
// decomposition family Δ_C(X̃): the 2^|X̃| formulas C[X̃/α] obtained by
// substituting every truth assignment α of X̃ into C.  The family is a
// partitioning of the SAT instance C: the subproblems are pairwise
// inconsistent and their disjunction is equivalent to C.
//
// Points of the optimizer's search space are represented by the indicator
// vector χ of the decomposition set over a fixed, ordered universe of
// candidate variables (the "search space" ℜ of the paper, in our experiments
// always the set of circuit-input / starting variables).
package decomp

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"github.com/paper-repro/pdsat-go/internal/cnf"
)

// Space is the ordered universe of candidate variables over which
// decomposition sets are formed (the paper's X̃_start; the search space is
// its power set).
type Space struct {
	vars  []cnf.Var
	index map[cnf.Var]int
}

// NewSpace creates a search space over the given variables.  Duplicates are
// removed; the order of first appearance is preserved.
func NewSpace(vars []cnf.Var) *Space {
	s := &Space{index: make(map[cnf.Var]int, len(vars))}
	for _, v := range vars {
		if _, dup := s.index[v]; dup {
			continue
		}
		s.index[v] = len(s.vars)
		s.vars = append(s.vars, v)
	}
	return s
}

// Size returns the number of candidate variables.
func (s *Space) Size() int { return len(s.vars) }

// Vars returns a copy of the candidate variables in order.
func (s *Space) Vars() []cnf.Var { return append([]cnf.Var(nil), s.vars...) }

// VarAt returns the i-th candidate variable.
func (s *Space) VarAt(i int) cnf.Var { return s.vars[i] }

// IndexOf returns the position of v in the space, or -1.
func (s *Space) IndexOf(v cnf.Var) int {
	if i, ok := s.index[v]; ok {
		return i
	}
	return -1
}

// Contains reports whether v belongs to the space.
func (s *Space) Contains(v cnf.Var) bool { return s.IndexOf(v) >= 0 }

// Point is the indicator vector χ of a decomposition set over a Space.  A
// Point is immutable from the caller's perspective; mutating helpers return
// new Points.
type Point struct {
	space *Space
	bits  []bool
	count int
}

// FullPoint returns the point selecting every variable of the space (the
// usual starting point X̃_start of the search).
func (s *Space) FullPoint() Point {
	bits := make([]bool, s.Size())
	for i := range bits {
		bits[i] = true
	}
	return Point{space: s, bits: bits, count: s.Size()}
}

// EmptyPoint returns the point selecting no variables.
func (s *Space) EmptyPoint() Point {
	return Point{space: s, bits: make([]bool, s.Size())}
}

// PointFromVars returns the point selecting exactly the given variables.
// Variables not in the space are reported as an error.
func (s *Space) PointFromVars(vars []cnf.Var) (Point, error) {
	p := s.EmptyPoint()
	for _, v := range vars {
		i := s.IndexOf(v)
		if i < 0 {
			return Point{}, fmt.Errorf("decomp: variable %d is not in the search space", v)
		}
		if !p.bits[i] {
			p.bits[i] = true
			p.count++
		}
	}
	return p, nil
}

// RandomPoint returns a point whose bits are set independently with the
// given probability.
func (s *Space) RandomPoint(rng *rand.Rand, prob float64) Point {
	p := s.EmptyPoint()
	for i := range p.bits {
		if rng.Float64() < prob {
			p.bits[i] = true
			p.count++
		}
	}
	return p
}

// Space returns the space the point belongs to.
func (p Point) Space() *Space { return p.space }

// Size returns the dimension of the underlying space.
func (p Point) Size() int { return len(p.bits) }

// Count returns |X̃|: the number of selected variables.
func (p Point) Count() int { return p.count }

// Bit reports whether the i-th candidate variable is selected.
func (p Point) Bit(i int) bool { return p.bits[i] }

// Has reports whether variable v is selected.
func (p Point) Has(v cnf.Var) bool {
	i := p.space.IndexOf(v)
	return i >= 0 && p.bits[i]
}

// Vars returns the selected variables in space order (the decomposition set
// X̃).
func (p Point) Vars() []cnf.Var {
	out := make([]cnf.Var, 0, p.count)
	for i, b := range p.bits {
		if b {
			out = append(out, p.space.vars[i])
		}
	}
	return out
}

// Clone returns an independent copy of the point.
func (p Point) Clone() Point {
	bits := make([]bool, len(p.bits))
	copy(bits, p.bits)
	return Point{space: p.space, bits: bits, count: p.count}
}

// Flip returns a new point with the i-th bit flipped.
func (p Point) Flip(i int) Point {
	q := p.Clone()
	if q.bits[i] {
		q.bits[i] = false
		q.count--
	} else {
		q.bits[i] = true
		q.count++
	}
	return q
}

// Equal reports whether two points select the same variables.
func (p Point) Equal(q Point) bool {
	if len(p.bits) != len(q.bits) {
		return false
	}
	for i := range p.bits {
		if p.bits[i] != q.bits[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for use in maps (tabu lists).
func (p Point) Key() string {
	var sb strings.Builder
	sb.Grow(len(p.bits))
	for _, b := range p.bits {
		if b {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// HammingDistance returns the number of positions in which two points
// differ.
func (p Point) HammingDistance(q Point) int {
	d := 0
	for i := range p.bits {
		if p.bits[i] != q.bits[i] {
			d++
		}
	}
	return d
}

// Neighbors returns the neighbourhood N_ρ(p) of radius ρ: every point at
// Hamming distance between 1 and ρ from p, in deterministic order.  For
// ρ = 1 (the setting used by PDSAT) this is simply the Size() single-bit
// flips.
func (p Point) Neighbors(radius int) []Point {
	if radius <= 0 {
		return nil
	}
	var out []Point
	// Breadth-first generation by distance keeps the order deterministic and
	// the common radius-1 case cheap.
	current := []Point{p}
	seen := map[string]bool{p.Key(): true}
	for d := 1; d <= radius; d++ {
		var next []Point
		for _, q := range current {
			for i := 0; i < q.Size(); i++ {
				r := q.Flip(i)
				k := r.Key()
				if seen[k] {
					continue
				}
				seen[k] = true
				next = append(next, r)
				out = append(out, r)
			}
		}
		current = next
	}
	return out
}

// String returns a compact description of the point.
func (p Point) String() string {
	return fmt.Sprintf("point{d=%d of %d}", p.count, len(p.bits))
}

// SortedVars returns the selected variables sorted by variable index.
func (p Point) SortedVars() []cnf.Var {
	vars := p.Vars()
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	return vars
}

// Family is the decomposition family Δ_C(X̃) induced by a decomposition set
// over a CNF formula.  Subproblems are constructed lazily as assumption
// lists or unit-augmented formulas; the family itself never materialises all
// 2^d members.
type Family struct {
	formula *cnf.Formula
	vars    []cnf.Var
}

// NewFamily creates the decomposition family of the formula for the given
// decomposition set (order of vars determines the meaning of assignment
// indices).
func NewFamily(f *cnf.Formula, vars []cnf.Var) *Family {
	return &Family{formula: f, vars: append([]cnf.Var(nil), vars...)}
}

// FamilyOf is a convenience constructing the family from a point.
func FamilyOf(f *cnf.Formula, p Point) *Family { return NewFamily(f, p.Vars()) }

// Dimension returns d = |X̃|.
func (fam *Family) Dimension() int { return len(fam.vars) }

// Size returns 2^d as a float64 (d can exceed 63 for the full cipher
// instances, so the exact integer may not be representable).
func (fam *Family) Size() float64 { return math.Exp2(float64(len(fam.vars))) }

// SizeUint returns 2^d as an integer; it panics if d >= 63, callers must
// check Dimension first (enumeration is only meaningful for small d).
func (fam *Family) SizeUint() uint64 {
	if len(fam.vars) >= 63 {
		panic("decomp: family too large to enumerate")
	}
	return uint64(1) << uint(len(fam.vars))
}

// Vars returns the decomposition set variables in family order.
func (fam *Family) Vars() []cnf.Var { return append([]cnf.Var(nil), fam.vars...) }

// Formula returns the underlying formula C.
func (fam *Family) Formula() *cnf.Formula { return fam.formula }

// AssumptionsFor converts an index into the corresponding truth assignment α
// of the decomposition set, expressed as assumption literals (bit i of index
// gives the value of vars[i]; bit=1 means true).
func (fam *Family) AssumptionsFor(index uint64) []cnf.Lit {
	out := make([]cnf.Lit, len(fam.vars))
	for i, v := range fam.vars {
		out[i] = cnf.NewLit(v, index&(1<<uint(i)) != 0)
	}
	return out
}

// AssumptionsForBits converts an explicit assignment α (one bool per
// decomposition variable) into assumption literals.
func (fam *Family) AssumptionsForBits(alpha []bool) ([]cnf.Lit, error) {
	if len(alpha) != len(fam.vars) {
		return nil, fmt.Errorf("decomp: assignment has %d bits, want %d", len(alpha), len(fam.vars))
	}
	out := make([]cnf.Lit, len(fam.vars))
	for i, v := range fam.vars {
		out[i] = cnf.NewLit(v, alpha[i])
	}
	return out, nil
}

// RandomAssignment draws a uniformly random truth assignment of the
// decomposition set, as required by the Monte Carlo estimation.
func (fam *Family) RandomAssignment(rng *rand.Rand) []bool {
	alpha := make([]bool, len(fam.vars))
	for i := range alpha {
		alpha[i] = rng.Intn(2) == 1
	}
	return alpha
}

// Subproblem returns the formula C[X̃/α] as a copy of C extended with unit
// clauses (variable numbering preserved).
func (fam *Family) Subproblem(alpha []bool) (*cnf.Formula, error) {
	if len(alpha) != len(fam.vars) {
		return nil, fmt.Errorf("decomp: assignment has %d bits, want %d", len(alpha), len(fam.vars))
	}
	a := cnf.NewAssignment(fam.formula.NumVars)
	for i, v := range fam.vars {
		if alpha[i] {
			a.Set(v, cnf.True)
		} else {
			a.Set(v, cnf.False)
		}
	}
	return fam.formula.WithUnits(a), nil
}

// CheckPartitioning verifies, by exhaustive enumeration (only feasible for
// small d and small formulas), the two defining properties of a
// partitioning:
//
//  1. pairwise inconsistency: for i ≠ j, C ∧ G_i ∧ G_j is unsatisfiable —
//     immediate here because distinct minterms over X̃ conflict, so the
//     check validates that subproblem constructions don't overlap, and
//  2. cover: C is equivalent to the disjunction of the subproblems, i.e.
//     every model of C extends exactly one member of the family and every
//     satisfiable member yields a model of C.
//
// The function returns an error describing the first violated property.  The
// satisfiability checks are delegated to the provided solve callback so this
// package does not depend on the solver.
func (fam *Family) CheckPartitioning(solve func(*cnf.Formula) (bool, cnf.Assignment, error)) error {
	d := fam.Dimension()
	if d > 16 {
		return fmt.Errorf("decomp: refusing to enumerate 2^%d subproblems", d)
	}
	n := fam.SizeUint()
	originalSat, model, err := solve(fam.formula)
	if err != nil {
		return err
	}
	anySat := false
	for idx := uint64(0); idx < n; idx++ {
		alpha := make([]bool, d)
		for i := 0; i < d; i++ {
			alpha[i] = idx&(1<<uint(i)) != 0
		}
		sub, err := fam.Subproblem(alpha)
		if err != nil {
			return err
		}
		sat, subModel, err := solve(sub)
		if err != nil {
			return err
		}
		if sat {
			anySat = true
			// A model of the subproblem must be a model of C (the subproblem
			// only adds constraints).
			if !fam.formula.IsSatisfiedBy(subModel) {
				return fmt.Errorf("decomp: subproblem %d produced a non-model of C", idx)
			}
			// ... and must agree with the minterm α (pairwise inconsistency).
			for i, v := range fam.vars {
				want := cnf.False
				if alpha[i] {
					want = cnf.True
				}
				if subModel.Value(v) != want {
					return fmt.Errorf("decomp: subproblem %d model violates its minterm at %d", idx, v)
				}
			}
		}
	}
	if originalSat && !anySat {
		return fmt.Errorf("decomp: C is satisfiable but no family member is (cover violated)")
	}
	if !originalSat && anySat {
		return fmt.Errorf("decomp: C is unsatisfiable but some family member is satisfiable")
	}
	_ = model
	return nil
}
