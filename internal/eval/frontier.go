package eval

// The neighborhood-parallel evaluation scheduler (conf_pact_SemenovZ15
// §3–4): the paper's PDSAT leader keeps every spare core busy by evaluating
// many candidate decomposition points concurrently.  A Frontier lets a
// search submit a whole neighborhood (or a speculative wave of likely-next
// candidates) as one set of concurrent evaluations over the shared
// transport, while preserving the search's sequential semantics:
//
//   - Submission order is the search's visit order, and results are
//     delivered to the caller strictly in that order, whatever order the
//     evaluations complete in.
//
//   - A live Bound — the best F certified so far, lowered the moment any
//     sibling's full estimate completes — is threaded into every in-flight
//     evaluation via its context, so sibling candidates prune each other
//     as results stream back (the backend re-reads the bound at its
//     pruning checkpoints, see LiveBoundFrom).
//
//   - When the caller decides the neighborhood's winner (its process
//     callback returns stop), the remaining siblings' per-candidate
//     contexts are cancelled: their in-flight subproblems receive the
//     solver interrupt and their results are drained and discarded.
//
// Determinism rule.  Which value each candidate's full estimate takes is
// scheduling-independent: evaluation slots are reserved for the whole
// submission upfront, so candidate j's Monte Carlo sample depends only on
// the backend's (seed, slot) derivation, never on completion order.  The
// neighborhood's winner is scheduling-independent too, because the
// minimum-F candidate can never be pruned by the live bound: its partial
// lower bound never exceeds its own full estimate, which is the smallest
// value any sibling can install as the bound, and pruning requires the
// bound to be strictly exceeded.  What IS scheduling-dependent under an
// active pruning policy is the set of non-winning candidates that get
// pruned (and the lower-bound values they report), the subproblem
// solved/aborted counts, and the conflict activity absorbed from truncated
// solves — exactly the work the coupling saves.

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"github.com/paper-repro/pdsat-go/internal/decomp"
)

// Bound is a live, monotonically decreasing incumbent shared by the
// concurrent evaluations of one frontier: the best certified F so far.
// Lowering and reading are lock-free and safe from any goroutine.
type Bound struct {
	bits atomic.Uint64
}

// NewBound creates a bound at the given initial value (+Inf for "no
// incumbent yet").
func NewBound(v float64) *Bound {
	b := &Bound{}
	b.bits.Store(math.Float64bits(v))
	return b
}

// Get returns the current bound.
func (b *Bound) Get() float64 { return math.Float64frombits(b.bits.Load()) }

// Lower moves the bound down to v if v is smaller, and reports whether it
// did.  Raising is impossible by construction; NaN is ignored.
func (b *Bound) Lower(v float64) bool {
	for {
		old := b.bits.Load()
		if !(v < math.Float64frombits(old)) {
			return false
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return true
		}
	}
}

type liveBoundKey struct{}

// WithLiveBound attaches a live incumbent bound to the context of an
// evaluation.  Backends consult it (LiveBoundFrom) at their pruning
// checkpoints, so an evaluation started against a stale incumbent still
// benefits from every sibling result that completes while it runs.
func WithLiveBound(ctx context.Context, b *Bound) context.Context {
	if b == nil {
		return ctx
	}
	return context.WithValue(ctx, liveBoundKey{}, b)
}

// LiveBoundFrom returns the live incumbent bound attached to the context,
// or nil when the evaluation runs outside a frontier.
func LiveBoundFrom(ctx context.Context) *Bound {
	b, _ := ctx.Value(liveBoundKey{}).(*Bound)
	return b
}

// SlotBackend is implemented by backends whose evaluations draw their
// Monte Carlo sample from a deterministic per-evaluation slot (the pdsat
// Scope: sample = f(scope seed, slot)).  A frontier reserves one slot per
// submitted candidate upfront, in submission order, so each candidate's
// sample is independent of scheduling; slots of candidates that end up
// cancelled or cache-served are deliberately burned to keep the assignment
// deterministic.
type SlotBackend interface {
	Backend
	// ReserveEvalSlots reserves n consecutive evaluation slots and returns
	// the first.
	ReserveEvalSlots(n int) int
	// EvaluateSlot is EvaluateBudgeted with the sample drawn from the given
	// pre-reserved slot instead of a freshly reserved one.
	EvaluateSlot(ctx context.Context, p decomp.Point, pol Policy, incumbent float64, slot int) (*Evaluation, error)
}

// SlotEvaluator is the evaluator-level view of SlotBackend, implemented by
// Engine (delegating to a SlotBackend backend) and by evaluator adapters
// that wrap one.  A Frontier uses it when available and falls back to plain
// EvaluateF otherwise.
type SlotEvaluator interface {
	Evaluator
	// ReserveSlots reserves n consecutive evaluation slots and returns the
	// first, or ok=false when the underlying backend does not support slots.
	ReserveSlots(n int) (first int, ok bool)
	// EvaluateSlotF is EvaluateF against a pre-reserved slot.
	EvaluateSlotF(ctx context.Context, p decomp.Point, incumbent float64, slot int) (*Evaluation, error)
}

// ReserveSlots implements SlotEvaluator: it forwards to the engine's
// backend when that backend supports deterministic evaluation slots.
func (e *Engine) ReserveSlots(n int) (int, bool) {
	sb, ok := e.backend.(SlotBackend)
	if !ok {
		return 0, false
	}
	return sb.ReserveEvalSlots(n), true
}

// EvaluateSlotF implements SlotEvaluator: EvaluateF — cache lookup, policy
// evaluation, memoization, hooks — with the sample pinned to a
// pre-reserved slot.  A cache hit leaves the slot unused (deliberately:
// the reservation, not the use, is what keeps sibling samples
// scheduling-independent).
func (e *Engine) EvaluateSlotF(ctx context.Context, p decomp.Point, incumbent float64, slot int) (*Evaluation, error) {
	key, variant := p.Key(), e.policy.variant()
	if ev, ok := e.cache.Lookup(key, variant, incumbent); ok {
		ev.CacheHit = true
		if e.OnCacheHit != nil {
			e.OnCacheHit(p, ev)
		}
		return &ev, nil
	}
	sb, ok := e.backend.(SlotBackend)
	if !ok {
		return e.settle(p, key, variant, incumbent)(e.backend.EvaluateBudgeted(ctx, p, e.policy, incumbent))
	}
	return e.settle(p, key, variant, incumbent)(sb.EvaluateSlot(ctx, p, e.policy, incumbent, slot))
}

// settle returns the shared post-processing of a backend evaluation:
// incumbent stamping and the OnPruned hook for pruned results, cache
// insertion for reusable ones.
func (e *Engine) settle(p decomp.Point, key, variant string, incumbent float64) func(*Evaluation, error) (*Evaluation, error) {
	return func(ev *Evaluation, err error) (*Evaluation, error) {
		if ev == nil || err != nil {
			// Interrupted or failed evaluations are not cached: their partial
			// estimates are completion-censored, not reusable facts.
			return ev, err
		}
		if ev.Pruned {
			ev.Incumbent = incumbent
			if e.OnPruned != nil {
				e.OnPruned(p, *ev)
			}
		}
		e.cache.Store(key, variant, *ev)
		return ev, nil
	}
}

// FrontierResult is one candidate's outcome, delivered to the process
// callback in submission order.
type FrontierResult struct {
	// Index is the candidate's position in the submitted slice.
	Index int
	// Point is the candidate itself.
	Point decomp.Point
	// Eval and Err are the evaluation's outcome; Eval may be a partial
	// (Interrupted) evaluation alongside a context error, and is nil when
	// the evaluation failed outright.
	Eval *Evaluation
	Err  error
}

// Frontier schedules the concurrent evaluation of candidate sequences over
// one evaluator.  The zero width (and width 1) degenerates to a sequential
// loop; see the package comment at the top of this file for the
// concurrency and determinism contract.
type Frontier struct {
	ev    Evaluator
	width int
}

// NewFrontier creates a scheduler of the given width (the maximum number
// of in-flight evaluations) over the evaluator.
func NewFrontier(ev Evaluator, width int) *Frontier {
	if width < 1 {
		width = 1
	}
	return &Frontier{ev: ev, width: width}
}

// Width returns the scheduler's in-flight evaluation cap.
func (f *Frontier) Width() int { return f.width }

// Run evaluates the candidates and delivers their results to process in
// submission order.  bound is the live incumbent every evaluation starts
// from and prunes against (nil for none); Run lowers it whenever a
// candidate completes a full estimate, whatever order completions happen
// in, so siblings prune each other as early as possible.  process
// returning true stops the frontier: in-flight siblings are cancelled,
// unsubmitted ones skipped, and no further results are delivered.  Budget
// overshoot past a stop is bounded by the candidates already speculatively
// dispatched.
func (f *Frontier) Run(ctx context.Context, candidates []decomp.Point, bound *Bound, process func(FrontierResult) bool) {
	n := len(candidates)
	if n == 0 {
		return
	}
	if bound == nil {
		bound = NewBound(math.Inf(1))
	}
	lctx := WithLiveBound(ctx, bound)
	if f.width <= 1 || n == 1 {
		for i, p := range candidates {
			ev, err := f.ev.EvaluateF(lctx, p, bound.Get())
			lowerOnFull(bound, ev, err)
			if process(FrontierResult{Index: i, Point: p, Eval: ev, Err: err}) {
				return
			}
		}
		return
	}

	// Reserve every candidate's evaluation slot upfront, in submission
	// order: the sample each candidate draws is then a pure function of the
	// backend seed and its slot, independent of which worker evaluates it
	// when (and of how many candidates a stop later discards).
	se, slotted := f.ev.(SlotEvaluator)
	slotBase := 0
	if slotted {
		slotBase, slotted = se.ReserveSlots(n)
	}

	width := f.width
	if width > n {
		width = n
	}
	var (
		stop    atomic.Bool
		next    atomic.Int64
		results = make(chan FrontierResult, n)
		cancels = make([]context.CancelFunc, n)
		cmu     sync.Mutex
		wg      sync.WaitGroup
	)
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() {
					return
				}
				cctx, cancel := context.WithCancel(lctx)
				cmu.Lock()
				cancels[i] = cancel
				cmu.Unlock()
				var ev *Evaluation
				var err error
				if slotted {
					ev, err = se.EvaluateSlotF(cctx, candidates[i], bound.Get(), slotBase+i)
				} else {
					ev, err = f.ev.EvaluateF(cctx, candidates[i], bound.Get())
				}
				cancel()
				lowerOnFull(bound, ev, err)
				results <- FrontierResult{Index: i, Point: candidates[i], Eval: ev, Err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reorder completions into submission order and feed the caller.
	pending := make(map[int]FrontierResult, width)
	nextIdx := 0
	stopped := false
	for r := range results {
		if stopped {
			continue // drain
		}
		pending[r.Index] = r
		for {
			rr, ok := pending[nextIdx]
			if !ok {
				break
			}
			delete(pending, nextIdx)
			nextIdx++
			if process(rr) {
				stopped = true
				stop.Store(true)
				cmu.Lock()
				for _, cancel := range cancels {
					if cancel != nil {
						cancel()
					}
				}
				cmu.Unlock()
				break
			}
		}
	}
}

// lowerOnFull installs a completed full estimate as the new live bound.
// Pruned results carry lower bounds (not estimates) and interrupted ones
// are completion-censored; neither may tighten the bound.
func lowerOnFull(b *Bound, ev *Evaluation, err error) {
	if ev == nil || err != nil || ev.Pruned || ev.Interrupted {
		return
	}
	b.Lower(ev.Value)
}
