package eval

import (
	"math"
	"sync"
)

// CostModel is the per-session online model of the observed subproblem
// costs ζ, kept separately per sample stage (the geometric prefixes of
// StagePlan solve systematically different mixes of points, so their cost
// distributions differ).  Each stage tracks the running mean and streaming
// quantile estimates of the median and the 90th percentile via the P²
// algorithm — O(1) memory, no stored samples, no randomness.
//
// The model exists to size cluster dispatch: the heavier the ζ tail, the
// shallower each worker's queue should be (work queued behind a straggler
// is exactly what stealing has to undo), and the more the distribution
// concentrates, the deeper batches can be shipped to amortize latency —
// the eq. 3 variance machinery of the paper turned into a dispatch hint.
//
// Observations arrive in completion order, which varies run to run; the
// model therefore influences only *scheduling* (queue depths), never which
// samples are drawn or what a subproblem costs, so fixed-seed estimates
// stay bit-identical no matter what the model has seen.
type CostModel struct {
	mu     sync.Mutex
	stages []*costSketch // guarded by mu
}

// costSketch summarizes one stage's observed costs.
type costSketch struct {
	count int
	sum   float64
	p50   p2Quantile
	p90   p2Quantile
}

// NewCostModel creates an empty cost model.
func NewCostModel() *CostModel { return &CostModel{} }

// Observe feeds one completed subproblem's cost for the given stage index
// (negative stages and non-finite or negative costs are ignored).
func (m *CostModel) Observe(stage int, cost float64) {
	if stage < 0 || math.IsNaN(cost) || math.IsInf(cost, 0) || cost < 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.stages) <= stage {
		m.stages = append(m.stages, newCostSketch())
	}
	s := m.stages[stage]
	s.count++
	s.sum += cost
	s.p50.observe(cost)
	s.p90.observe(cost)
}

// Observations returns how many costs the stage has absorbed.
func (m *CostModel) Observations(stage int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if stage < 0 || stage >= len(m.stages) {
		return 0
	}
	return m.stages[stage].count
}

// Quantiles returns the stage's current mean and streaming estimates of the
// median and the 90th percentile (zeros before any observation).
func (m *CostModel) Quantiles(stage int) (mean, p50, p90 float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if stage < 0 || stage >= len(m.stages) {
		return 0, 0, 0
	}
	s := m.stages[stage]
	if s.count == 0 {
		return 0, 0, 0
	}
	return s.sum / float64(s.count), s.p50.value(), s.p90.value()
}

// costModelMinObservations is the sample floor below which QueueFactor
// offers no hint: quantile estimates over a handful of costs are noise.
const costModelMinObservations = 16

// queueFactorBalancedRatio is the dispersion ratio p90/p50 at which the
// default queue depth (factor 2) is kept: an exponential distribution —
// the memoryless reference case for solver effort — has
// p90/p50 = ln 10 / ln 2 ≈ 3.32.  The ratio of two quantiles, not a
// quantile over the mean: a heavy tail inflates the mean faster than any
// fixed quantile, so p90/mean perversely *shrinks* as tails grow, while
// p90/p50 stays monotone in tail weight.
const queueFactorBalancedRatio = 3.321928094887362

// QueueFactor returns the dispatch queue-depth hint for the stage, as a
// multiple of each worker's capacity in [1, 3]: 0 when the stage has too
// few observations to judge, 2 at the balanced dispersion ratio,
// approaching 1 as the observed ζ distribution grows heavier-tailed and 3
// as it concentrates.  The mapping is 2·sqrt(r₀/r) clamped to [1, 3], with
// r = p90/p50 and r₀ the balanced ratio — smooth, monotone in the tail
// weight, and free of tuning cliffs.
func (m *CostModel) QueueFactor(stage int) float64 {
	_, p50, p90 := m.Quantiles(stage)
	if m.Observations(stage) < costModelMinObservations {
		return 0
	}
	if p90 <= 0 {
		// At least 90% of subproblems cost nothing.  If everything did,
		// there is no tail to fear and deep batches amortize latency; a
		// positive mean over a zero p90 instead means the top decile
		// carries all the cost — the heaviest possible tail.
		if mean, _, _ := m.Quantiles(stage); mean > 0 {
			return 1
		}
		return 3
	}
	if p50 <= 0 {
		// The free majority hides a costly minority: heavy dispersion.
		return 1
	}
	r := p90 / p50
	f := 2 * math.Sqrt(queueFactorBalancedRatio/r)
	return math.Min(3, math.Max(1, f))
}

func newCostSketch() *costSketch {
	s := &costSketch{}
	s.p50.init(0.5)
	s.p90.init(0.9)
	return s
}

// p2Quantile is the P² streaming quantile estimator of Jain & Chlamtac
// (CACM 1985): five markers track the running minimum, maximum, the target
// quantile and its two flanking mid-quantiles, adjusting marker heights by
// a piecewise-parabolic prediction as observations stream in.  Exact for
// the first five observations, O(1) per observation afterwards.
type p2Quantile struct {
	p    float64    // target quantile
	n    int        // observations so far
	q    [5]float64 // marker heights
	pos  [5]float64 // actual marker positions (1-based)
	want [5]float64 // desired marker positions
	inc  [5]float64 // desired-position increments per observation
}

func (e *p2Quantile) init(p float64) {
	e.p = p
	e.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	e.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
}

// observe absorbs one value.
func (e *p2Quantile) observe(x float64) {
	if e.n < 5 {
		e.q[e.n] = x
		e.n++
		if e.n == 5 {
			// Initial markers are the first five observations in order.
			for i := 1; i < 5; i++ {
				for j := i; j > 0 && e.q[j-1] > e.q[j]; j-- {
					e.q[j-1], e.q[j] = e.q[j], e.q[j-1]
				}
			}
			e.pos = [5]float64{1, 2, 3, 4, 5}
		}
		return
	}
	e.n++
	// Locate the cell containing x, extending the extremes if needed.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		k = 3
		for i := 1; i < 4; i++ {
			if x < e.q[i] {
				k = i - 1
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.want[i] += e.inc[i]
	}
	// Nudge the three interior markers toward their desired positions.
	for i := 1; i < 4; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			q := e.parabolic(i, sign)
			if e.q[i-1] < q && q < e.q[i+1] {
				e.q[i] = q
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i by sign (±1).
func (e *p2Quantile) parabolic(i int, sign float64) float64 {
	return e.q[i] + sign/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+sign)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-sign)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback height prediction when the parabola would leave
// the neighbouring markers' bracket.
func (e *p2Quantile) linear(i int, sign float64) float64 {
	j := i + int(sign)
	return e.q[i] + sign*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// value returns the current quantile estimate (exact order statistic while
// fewer than five observations have arrived).
func (e *p2Quantile) value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		sorted := make([]float64, e.n)
		copy(sorted, e.q[:e.n])
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
				sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
			}
		}
		idx := int(math.Ceil(e.p*float64(e.n))) - 1
		if idx < 0 {
			idx = 0
		}
		return sorted[idx]
	}
	return e.q[2]
}
