package eval

import (
	"math"
	"sort"
	"testing"
)

// testLCG is a minimal deterministic generator for test inputs; the
// production package must stay free of math/rand (determinism lint), and
// the tests follow suit so fixtures never drift.
type testLCG struct{ state uint64 }

func (g *testLCG) next() float64 {
	g.state = g.state*6364136223846793005 + 1442695040888963407
	return float64(g.state>>11) / float64(1<<53)
}

func TestP2QuantileTracksExactQuantiles(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    float64
		gen  func(u float64) float64
	}{
		{"uniform-p50", 0.5, func(u float64) float64 { return u }},
		{"uniform-p90", 0.9, func(u float64) float64 { return u }},
		{"exponential-p90", 0.9, func(u float64) float64 { return -math.Log(1 - u) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := &testLCG{state: 42}
			var e p2Quantile
			e.init(tc.p)
			values := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				x := tc.gen(g.next())
				values = append(values, x)
				e.observe(x)
			}
			sort.Float64s(values)
			exact := values[int(tc.p*float64(len(values)))]
			got := e.value()
			if relErr := math.Abs(got-exact) / exact; relErr > 0.05 {
				t.Fatalf("P² estimate for p=%.2f: got %.4f, exact %.4f (rel err %.3f)",
					tc.p, got, exact, relErr)
			}
		})
	}
}

func TestP2QuantileSmallSamplesAreExactOrderStatistics(t *testing.T) {
	var e p2Quantile
	e.init(0.5)
	for _, x := range []float64{5, 1, 3} {
		e.observe(x)
	}
	if got := e.value(); got != 3 {
		t.Fatalf("median of {5,1,3} = %v, want 3", got)
	}
}

func TestCostModelQueueFactor(t *testing.T) {
	t.Run("no hint below observation floor", func(t *testing.T) {
		m := NewCostModel()
		for i := 0; i < costModelMinObservations-1; i++ {
			m.Observe(0, float64(i))
		}
		if f := m.QueueFactor(0); f != 0 {
			t.Fatalf("QueueFactor with %d observations = %v, want 0", costModelMinObservations-1, f)
		}
		if f := m.QueueFactor(7); f != 0 {
			t.Fatalf("QueueFactor of untouched stage = %v, want 0", f)
		}
	})

	t.Run("exponential costs keep the default depth", func(t *testing.T) {
		m := NewCostModel()
		g := &testLCG{state: 7}
		for i := 0; i < 5000; i++ {
			m.Observe(0, -math.Log(1-g.next()))
		}
		f := m.QueueFactor(0)
		if f < 1.7 || f > 2.3 {
			t.Fatalf("QueueFactor for exponential ζ = %v, want ≈ 2", f)
		}
	})

	t.Run("heavy tail shrinks the queue", func(t *testing.T) {
		m := NewCostModel()
		g := &testLCG{state: 7}
		for i := 0; i < 5000; i++ {
			// Pareto(α=1.1): infinite-variance territory, the regime the
			// paper's ζ distributions live in on hard instances.
			u := g.next()
			m.Observe(0, math.Pow(1-u, -1/1.1))
		}
		f := m.QueueFactor(0)
		exp := NewCostModel()
		g2 := &testLCG{state: 7}
		for i := 0; i < 5000; i++ {
			exp.Observe(0, -math.Log(1-g2.next()))
		}
		if f >= exp.QueueFactor(0) {
			t.Fatalf("heavy-tail factor %v not below exponential factor %v", f, exp.QueueFactor(0))
		}
		if f < 1 {
			t.Fatalf("QueueFactor %v below the clamp floor 1", f)
		}
	})

	t.Run("concentrated costs deepen the queue", func(t *testing.T) {
		m := NewCostModel()
		g := &testLCG{state: 11}
		for i := 0; i < 5000; i++ {
			m.Observe(0, 100+g.next()) // near-constant ζ
		}
		if f := m.QueueFactor(0); f != 3 {
			t.Fatalf("QueueFactor for near-constant ζ = %v, want the clamp ceiling 3", f)
		}
	})

	t.Run("all-zero costs deepen the queue", func(t *testing.T) {
		m := NewCostModel()
		for i := 0; i < 100; i++ {
			m.Observe(0, 0)
		}
		if f := m.QueueFactor(0); f != 3 {
			t.Fatalf("QueueFactor for all-zero ζ = %v, want 3", f)
		}
	})

	t.Run("stages are independent", func(t *testing.T) {
		m := NewCostModel()
		for i := 0; i < 100; i++ {
			m.Observe(0, 0)
			m.Observe(2, float64(i*i*i))
		}
		if n := m.Observations(1); n != 0 {
			t.Fatalf("stage 1 absorbed %d observations, want 0", n)
		}
		if f0, f2 := m.QueueFactor(0), m.QueueFactor(2); f0 == f2 {
			t.Fatalf("independent stages returned identical factors %v", f0)
		}
	})

	t.Run("rejects junk", func(t *testing.T) {
		m := NewCostModel()
		m.Observe(-1, 1)
		m.Observe(0, math.NaN())
		m.Observe(0, math.Inf(1))
		m.Observe(0, -5)
		if n := m.Observations(0); n != 0 {
			t.Fatalf("junk observations were absorbed: %d", n)
		}
	})
}
