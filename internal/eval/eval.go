// Package eval is the budget-aware evaluation engine: it decides how much
// solving one predictive-function evaluation F(X̃) is allowed to cost.
//
// The paper's whole premise (conf_pact_SemenovZ15 §3) is that one evaluation
// of F is expensive — N subproblem solves — so the metaheuristics must
// squeeze maximum information from minimum solving.  The paper itself prunes
// with per-subproblem time limits and sizes its samples via the CLT
// confidence interval (eq. 3).  This package generalizes both ideas into a
// Policy with three mechanisms, each independently switchable:
//
//   - Incumbent pruning (Policy.Prune): while a candidate's sample is being
//     solved, the partial sum Σζ of the observed costs yields the lower
//     bound 2^d·(Σζ)/N ≤ F.  As soon as that bound exceeds the best F the
//     search has seen, the remainder of the sample proves nothing — the
//     candidate is already worse — and the evaluation is aborted (the
//     cluster leader cancels only that batch's in-flight tasks on the
//     workers, not the transport).
//
//   - Staged adaptive sampling (Policy.Stages): the sample is solved in
//     geometrically growing stages (e.g. N/4, N/2, N).  After each stage the
//     eq.-3 confidence half-width δ_γ·σ/√n of the mean is compared against
//     ε·mean; once the estimate is tight enough, the remaining stages are
//     skipped, so easy points cost a fraction of N.
//
//   - F-memoization (Policy.Cache): a point-keyed Cache of finished
//     evaluations shared across searches and jobs on the same
//     problem/configuration, so re-visited decomposition sets cost nothing.
//     Pruned evaluations are cached as lower bounds and are served only when
//     they still prove the point worse than the caller's incumbent.
//
// The Engine composes the three: it wraps a Backend (the pdsat Runner) with
// the cache and the pruning/staging policy, and implements Evaluator — the
// interface the optimize package's searches consume instead of a bare
// objective, threading their incumbent (best F so far) into every
// evaluation.
//
// The zero Policy disables all three mechanisms and reproduces the
// always-full-sample behaviour bit for bit; this is asserted by regression
// tests in internal/pdsat.
package eval

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/paper-repro/pdsat-go/internal/decomp"
	"github.com/paper-repro/pdsat-go/internal/montecarlo"
)

// Policy configures the budget-aware evaluation of the predictive function.
// The zero value disables every mechanism: full-sample evaluations, no
// memoization — bit-identical to the pre-engine pipeline.
type Policy struct {
	// Prune aborts an evaluation as soon as its partial lower bound
	// 2^d·(Σζ)/N exceeds the incumbent (the best F the search has seen).
	// The evaluation then reports the lower bound instead of an unbiased
	// estimate; searches treat such points as "worse than best" without
	// paying for the full sample.
	Prune bool `json:"prune,omitempty"`
	// Stages splits the sample into this many geometrically growing stages
	// (3 stages of N=100: 25, 50, 100) with an early-stop check between
	// them.  Values ≤ 1 disable staging.
	Stages int `json:"stages,omitempty"`
	// Epsilon is the relative precision target of the staged early stop:
	// once the eq.-3 confidence half-width of the mean falls to
	// ε·mean or below, the remaining stages are skipped.  Zero means no
	// early stop (stages then only add pruning checkpoints).
	Epsilon float64 `json:"epsilon,omitempty"`
	// Gamma is the confidence level γ of the eq.-3 half-width used by the
	// early stop (0 means DefaultGamma).
	Gamma float64 `json:"gamma,omitempty"`
	// Cache memoizes finished evaluations by decomposition set, shared
	// across searches and jobs on the same problem and configuration.
	// Cache hits still count against a search's evaluation budget (they
	// are real visits), but solve no subproblems.
	Cache bool `json:"cache,omitempty"`
	// MaxConcurrentEvals is the width of the neighborhood-parallel
	// evaluation scheduler: how many candidate evaluations a search may keep
	// in flight on the transport at once (see Frontier).  0 keeps the
	// sequential evaluation loop (the deterministic regression anchor); 1
	// drives the scheduler one candidate at a time, which is bit-identical
	// to the sequential loop; values above 1 pipeline whole neighborhoods.
	MaxConcurrentEvals int `json:"max_concurrent_evals,omitempty"`
}

// DefaultGamma is the confidence level used when Policy.Gamma is zero.
const DefaultGamma = 0.95

// DefaultPolicy returns the recommended policy: pruning on, three sample
// stages with a 10% relative-precision early stop at γ=0.95, and the
// F-cache enabled.
func DefaultPolicy() Policy {
	return Policy{Prune: true, Stages: 3, Epsilon: 0.1, Gamma: DefaultGamma, Cache: true}
}

// Enabled reports whether any mechanism of the policy is switched on.
func (p Policy) Enabled() bool {
	return p.Prune || p.Stages > 1 || p.Cache || p.MaxConcurrentEvals > 1
}

// Validate reports whether the policy is usable.  Zero values are fine
// (they disable the mechanism or select a documented default); negative
// stage counts or precision targets, and confidence levels outside [0,1),
// are configuration mistakes and are rejected with a clear error.
func (p Policy) Validate() error {
	if p.Stages < 0 {
		return fmt.Errorf("eval: negative stage count %d (use 0 or 1 for unstaged evaluation)", p.Stages)
	}
	if p.Epsilon < 0 {
		return fmt.Errorf("eval: negative early-stop precision %v (use 0 to disable the early stop)", p.Epsilon)
	}
	if p.Gamma < 0 || p.Gamma >= 1 {
		return fmt.Errorf("eval: confidence level %v outside [0,1) (use 0 for the default of %v)",
			p.Gamma, DefaultGamma)
	}
	if p.MaxConcurrentEvals < 0 {
		return fmt.Errorf("eval: negative evaluation concurrency %d (use 0 for the sequential path)",
			p.MaxConcurrentEvals)
	}
	return nil
}

// EffectiveGamma returns the confidence level with the default applied.
func (p Policy) EffectiveGamma() float64 {
	if p.Gamma == 0 {
		return DefaultGamma
	}
	return p.Gamma
}

// FullPrecision is the estimate variant of policies whose evaluations
// always solve the full sample (no early stop).  Full-precision estimates
// satisfy a cache lookup under any variant, since no policy asks for more.
const FullPrecision = "full"

// variant fingerprints the precision of the estimates a policy produces,
// for the cache: two policies share estimates only if their staged
// early-stop settings agree (pruned lower bounds are certified facts and
// are shared unconditionally).  Pruning itself never changes a completed
// estimate, so it is not part of the fingerprint.
func (p Policy) variant() string {
	if p.Epsilon <= 0 || p.Stages <= 1 {
		// No early stop: every estimate covers the full sample.
		return FullPrecision
	}
	return fmt.Sprintf("s%d,e%g,g%g", p.Stages, p.Epsilon, p.EffectiveGamma())
}

// StagePlan returns the cumulative stage boundaries for a sample of size n:
// a strictly increasing slice ending at n, one entry per stage.  Stages grow
// geometrically toward n (stages=3, n=100 → [25 50 100]).  A stage count of
// one or less, or a sample too small to split, yields the single boundary
// [n].
func StagePlan(n, stages int) []int {
	if n <= 0 {
		return nil
	}
	if stages <= 1 {
		return []int{n}
	}
	plan := make([]int, 0, stages)
	prev := 0
	for i := 0; i < stages; i++ {
		end := n >> uint(stages-1-i)
		if end <= prev {
			continue // sample too small for this many distinct stages
		}
		plan = append(plan, end)
		prev = end
	}
	if len(plan) == 0 || plan[len(plan)-1] != n {
		plan = append(plan, n)
	}
	return plan
}

// Confident reports whether a sample with the given mean, standard
// deviation and size satisfies the staged early-stop criterion: the eq.-3
// confidence half-width δ_γ·σ/√n is at or below ε·mean.  Samples of fewer
// than two observations carry no variance information and are never
// confident; a zero ε disables the early stop.
func Confident(mean, stddev float64, n int, gamma, epsilon float64) bool {
	if epsilon <= 0 || n < 2 {
		return false
	}
	half := montecarlo.ConfidenceHalfWidth(stddev, n, gamma)
	return half <= epsilon*mean
}

// Evaluation is the outcome of one budget-aware F evaluation.
type Evaluation struct {
	// Value is the evaluation's headline number: the Monte Carlo estimate
	// of F for complete and early-stopped evaluations, or LowerBound for
	// pruned ones (then provably an underestimate that still exceeds the
	// incumbent the evaluation was pruned against).
	Value float64 `json:"value"`
	// Estimate is the Monte Carlo estimate over the fully solved samples.
	Estimate montecarlo.Estimate `json:"estimate"`
	// LowerBound is 2^d·(Σζ)/N over every observed cost, including solves
	// truncated by the abort — a certified lower bound on F.
	LowerBound float64 `json:"lower_bound"`
	// Pruned reports that the evaluation was aborted because LowerBound
	// exceeded the incumbent.
	Pruned bool `json:"pruned,omitempty"`
	// Incumbent records the bound a pruned evaluation was compared against
	// (left zero for unpruned evaluations — the incumbent may be +Inf
	// there, which JSON cannot represent).
	Incumbent float64 `json:"incumbent,omitempty"`
	// EarlyStopped reports that staged sampling stopped before the full
	// sample because the confidence half-width met the ε target.
	EarlyStopped bool `json:"early_stopped,omitempty"`
	// CacheHit reports that the evaluation was served from the F-cache
	// without solving anything.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Interrupted reports a context cancellation mid-evaluation; the
	// estimate is then partial in the completion-censored sense (see
	// pdsat.PointEstimate.Interrupted), unlike a pruned or early-stopped
	// one, whose sample prefix is value-independent.
	Interrupted bool `json:"interrupted,omitempty"`
	// SamplesPlanned is N; SamplesSolved counts subproblems solved to
	// completion (full Monte Carlo samples); SamplesAborted counts
	// dispatched subproblems cut short by the abort (truncated mid-solve
	// or drained as placeholders).  Samples of stages that were never
	// dispatched — skipped by an early stop or a stage-boundary prune —
	// appear in no counter: SamplesPlanned − SamplesSolved −
	// SamplesAborted is the work the policy avoided entirely.
	SamplesPlanned int `json:"samples_planned"`
	SamplesSolved  int `json:"samples_solved"`
	SamplesAborted int `json:"samples_aborted"`
	// StagesRun counts the sample stages actually dispatched.
	StagesRun int `json:"stages_run"`
	// SatisfiableSamples counts satisfiable subproblems among the solved.
	SatisfiableSamples int `json:"satisfiable_samples"`
	// WallTime is the elapsed time of the evaluation (the original
	// evaluation's for cache hits).
	WallTime time.Duration `json:"wall_time_ns"`
}

// Evaluator evaluates the predictive function at a point under an incumbent
// bound: the best F value the caller has already certified.  Evaluations may
// exploit the incumbent by pruning (returning early with a lower bound above
// it); callers that have no incumbent pass +Inf.  The optimize package's
// searches consume this interface instead of a bare objective.
type Evaluator interface {
	EvaluateF(ctx context.Context, p decomp.Point, incumbent float64) (*Evaluation, error)
}

// Backend performs the actual solving of an evaluation's sample under a
// policy.  It is implemented by the pdsat Runner (and by the session layer,
// which adds event streaming).  A backend may return a partial Evaluation
// together with a context error.
type Backend interface {
	EvaluateBudgeted(ctx context.Context, p decomp.Point, pol Policy, incumbent float64) (*Evaluation, error)
}

// BackendFunc adapts a function to the Backend interface.
type BackendFunc func(ctx context.Context, p decomp.Point, pol Policy, incumbent float64) (*Evaluation, error)

// EvaluateBudgeted implements Backend.
func (f BackendFunc) EvaluateBudgeted(ctx context.Context, p decomp.Point, pol Policy, incumbent float64) (*Evaluation, error) {
	return f(ctx, p, pol, incumbent)
}

// Engine composes the three mechanisms over a Backend: cache lookup first,
// then a policy-driven backend evaluation, then cache insertion.  It
// implements Evaluator.  An Engine is safe for concurrent use if its backend
// is.
type Engine struct {
	backend Backend
	policy  Policy
	cache   *Cache

	// OnPruned, when non-nil, is called after every pruned evaluation (for
	// event streams); OnCacheHit after every evaluation served from the
	// cache.  Both run on the evaluating goroutine and must not block.
	OnPruned   func(p decomp.Point, ev Evaluation)
	OnCacheHit func(p decomp.Point, ev Evaluation)
}

// NewEngine creates an engine over the backend.  cache may be nil (or the
// policy's Cache flag off) to disable memoization; a shared *Cache makes
// several engines (e.g. one per job) hit each other's results.
func NewEngine(backend Backend, pol Policy, cache *Cache) *Engine {
	if !pol.Cache {
		cache = nil
	}
	return &Engine{backend: backend, policy: pol, cache: cache}
}

// Policy returns the engine's policy.
func (e *Engine) Policy() Policy { return e.policy }

// EvaluateF implements Evaluator.
func (e *Engine) EvaluateF(ctx context.Context, p decomp.Point, incumbent float64) (*Evaluation, error) {
	key, variant := p.Key(), e.policy.variant()
	if ev, ok := e.cache.Lookup(key, variant, incumbent); ok {
		ev.CacheHit = true
		if e.OnCacheHit != nil {
			e.OnCacheHit(p, ev)
		}
		return &ev, nil
	}
	return e.settle(p, key, variant, incumbent)(e.backend.EvaluateBudgeted(ctx, p, e.policy, incumbent))
}

// CacheStats returns the shared cache's counters (zero if disabled).
func (e *Engine) CacheStats() CacheStats { return e.cache.Stats() }

// CacheStats are the F-cache's lifetime counters.
type CacheStats struct {
	// Hits and Misses count Lookup outcomes; Size is the number of points
	// currently memoized.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Size   int    `json:"size"`
}

// Cache is the point-keyed F-memoization store.  Complete and early-stopped
// evaluations are cached as estimates under the precision variant of the
// policy that produced them (Policy.variant), so a coarse early-stopped
// estimate is never served to a caller whose policy asked for full-sample
// precision; a FullPrecision estimate, being the most precise possible,
// satisfies any variant.  Pruned evaluations are cached as lower bounds,
// independent of variant (they are certified facts): a bound hits only when
// it exceeds the caller's incumbent — i.e. when it still proves the point
// worse than the best the caller already has — because for a worse (higher)
// incumbent the bound proves nothing and the point must be re-evaluated.
// The zero *Cache (nil) is a valid disabled cache.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry // guarded by mu
	hits    uint64                 // guarded by mu
	misses  uint64                 // guarded by mu
}

type cacheEntry struct {
	// estimates maps a policy precision variant to the estimate it
	// produced; bound is the strongest certified lower bound seen.
	estimates map[string]Evaluation
	bound     *Evaluation
}

// NewCache creates an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// Lookup returns the cached evaluation for the key if one is usable at the
// requested precision variant and against the incumbent.  A nil cache never
// hits (and counts nothing).
func (c *Cache) Lookup(key, variant string, incumbent float64) (Evaluation, bool) {
	if c == nil {
		return Evaluation{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		if ev, ok := e.estimates[variant]; ok {
			c.hits++
			return ev, true
		}
		if ev, ok := e.estimates[FullPrecision]; ok {
			// A full-sample estimate is at least as precise as whatever the
			// caller's policy would produce.
			c.hits++
			return ev, true
		}
		if e.bound != nil && e.bound.Value > incumbent {
			c.hits++
			return *e.bound, true
		}
	}
	c.misses++
	return Evaluation{}, false
}

// Store memoizes a finished evaluation under the producing policy's
// precision variant.  Estimates overwrite same-variant estimates; pruned
// evaluations update the point's lower bound, which only ever strengthens
// (a weaker bound is ignored) and coexists with estimates.  A nil cache
// ignores the call.
func (c *Cache) Store(key, variant string, ev Evaluation) {
	if c == nil {
		return
	}
	ev.CacheHit = false
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	if ev.Pruned {
		if e.bound == nil || ev.Value > e.bound.Value {
			e.bound = &ev
		}
		return
	}
	if e.estimates == nil {
		e.estimates = make(map[string]Evaluation, 1)
	}
	e.estimates[variant] = ev
}

// Len returns the number of memoized points.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the cache counters (zero for a nil cache).
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Size: len(c.entries)}
}
