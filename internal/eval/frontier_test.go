package eval

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/decomp"
)

func TestBoundLowerMonotonic(t *testing.T) {
	b := NewBound(math.Inf(1))
	if got := b.Get(); !math.IsInf(got, 1) {
		t.Fatalf("fresh bound = %v, want +Inf", got)
	}
	if !b.Lower(10) || b.Get() != 10 {
		t.Fatalf("lowering to 10 failed, bound = %v", b.Get())
	}
	if b.Lower(12) {
		t.Fatal("raising the bound succeeded")
	}
	if b.Lower(math.NaN()) {
		t.Fatal("NaN lowered the bound")
	}
	if !b.Lower(3) || b.Get() != 3 {
		t.Fatalf("lowering to 3 failed, bound = %v", b.Get())
	}
}

func TestBoundConcurrentLowering(t *testing.T) {
	b := NewBound(math.Inf(1))
	var wg sync.WaitGroup
	for i := 1; i <= 64; i++ {
		wg.Add(1)
		go func(v float64) {
			defer wg.Done()
			b.Lower(v)
		}(float64(i))
	}
	wg.Wait()
	if b.Get() != 1 {
		t.Fatalf("bound after concurrent lowering = %v, want 1", b.Get())
	}
}

func TestLiveBoundContext(t *testing.T) {
	if LiveBoundFrom(context.Background()) != nil {
		t.Fatal("bound found in a bare context")
	}
	b := NewBound(5)
	ctx := WithLiveBound(context.Background(), b)
	if LiveBoundFrom(ctx) != b {
		t.Fatal("attached bound not recovered")
	}
	if WithLiveBound(context.Background(), nil) != context.Background() {
		t.Fatal("nil bound changed the context")
	}
}

// frontierPoints builds n distinct candidate points.
func frontierPoints(t testing.TB, n int) []decomp.Point {
	t.Helper()
	vars := make([]cnf.Var, n+2)
	for i := range vars {
		vars[i] = cnf.Var(i + 1)
	}
	full := decomp.NewSpace(vars).FullPoint()
	pts := make([]decomp.Point, n)
	for i := range pts {
		pts[i] = full.Flip(i)
	}
	return pts
}

// gateEvaluator is a SlotEvaluator whose evaluations block until a
// controller releases them, so tests dictate the completion order exactly.
// With prune set, a released evaluation whose scripted cost exceeds the
// live bound returns a pruned lower-bound result, mimicking the real
// backend's incumbent pruning.
type gateEvaluator struct {
	costs map[string]float64
	prune bool

	mu       sync.Mutex
	nextSlot int
	slots    map[string]int           // point key -> slot the evaluation ran with
	waiting  map[string]chan struct{} // registered, unreleased evaluations
	events   []string                 // release order actually observed
}

func newGateEvaluator(pts []decomp.Point, costs []float64, prune bool) *gateEvaluator {
	g := &gateEvaluator{
		costs:   make(map[string]float64, len(pts)),
		prune:   prune,
		slots:   make(map[string]int),
		waiting: make(map[string]chan struct{}),
	}
	for i, p := range pts {
		g.costs[p.Key()] = costs[i]
	}
	return g
}

func (g *gateEvaluator) ReserveSlots(n int) (int, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	first := g.nextSlot
	g.nextSlot += n
	return first, true
}

func (g *gateEvaluator) EvaluateF(ctx context.Context, p decomp.Point, incumbent float64) (*Evaluation, error) {
	return g.EvaluateSlotF(ctx, p, incumbent, -1)
}

func (g *gateEvaluator) EvaluateSlotF(ctx context.Context, p decomp.Point, incumbent float64, slot int) (*Evaluation, error) {
	key := p.Key()
	ch := make(chan struct{})
	g.mu.Lock()
	g.slots[key] = slot
	g.waiting[key] = ch
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		delete(g.waiting, key)
		g.mu.Unlock()
	}()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-ch:
	}
	g.mu.Lock()
	g.events = append(g.events, key)
	g.mu.Unlock()
	cost := g.costs[key]
	if g.prune {
		bound := incumbent
		if b := LiveBoundFrom(ctx); b != nil {
			if v := b.Get(); v < bound {
				bound = v
			}
		}
		if cost > bound {
			return &Evaluation{Value: bound, LowerBound: bound, Pruned: true}, nil
		}
	}
	return &Evaluation{Value: cost}, nil
}

// control releases registered evaluations following the given preference
// order (earliest-preference registered candidate first), until stop is
// closed.  With a frontier narrower than the candidate count, a preferred
// candidate may not be in flight yet; the controller then releases the
// most-preferred one that is, which is exactly the adversarial scheduling
// the determinism tests need.
func (g *gateEvaluator) control(stop <-chan struct{}, prefer []string) {
	rank := make(map[string]int, len(prefer))
	for i, k := range prefer {
		rank[k] = i
	}
	for {
		select {
		case <-stop:
			return
		default:
		}
		g.mu.Lock()
		bestKey, bestRank := "", len(prefer)+1
		for k := range g.waiting {
			r, ok := rank[k]
			if !ok {
				r = len(prefer)
			}
			if r < bestRank {
				bestKey, bestRank = k, r
			}
		}
		if bestKey != "" {
			close(g.waiting[bestKey])
			delete(g.waiting, bestKey)
		}
		g.mu.Unlock()
		if bestKey == "" {
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// reversed returns the keys of pts in reverse submission order — the most
// adversarial completion schedule for an in-order delivery contract.
func reversed(pts []decomp.Point) []string {
	keys := make([]string, len(pts))
	for i, p := range pts {
		keys[len(pts)-1-i] = p.Key()
	}
	return keys
}

func TestFrontierDeliversInSubmissionOrder(t *testing.T) {
	pts := frontierPoints(t, 6)
	costs := []float64{9, 7, 3, 8, 5, 6}
	g := newGateEvaluator(pts, costs, false)
	stop := make(chan struct{})
	defer close(stop)
	go g.control(stop, reversed(pts))

	bound := NewBound(math.Inf(1))
	var gotIdx []int
	var gotVal []float64
	NewFrontier(g, 3).Run(context.Background(), pts, bound, func(r FrontierResult) bool {
		if r.Err != nil {
			t.Errorf("candidate %d failed: %v", r.Index, r.Err)
			return true
		}
		gotIdx = append(gotIdx, r.Index)
		gotVal = append(gotVal, r.Eval.Value)
		return false
	})
	if len(gotIdx) != len(pts) {
		t.Fatalf("delivered %d results, want %d", len(gotIdx), len(pts))
	}
	for i := range gotIdx {
		if gotIdx[i] != i {
			t.Fatalf("delivery order %v, want submission order", gotIdx)
		}
		if gotVal[i] != costs[i] {
			t.Fatalf("candidate %d value %v, want %v", i, gotVal[i], costs[i])
		}
	}
	if bound.Get() != 3 {
		t.Fatalf("final bound %v, want the minimum cost 3", bound.Get())
	}
}

func TestFrontierStopCancelsInFlightSiblings(t *testing.T) {
	pts := frontierPoints(t, 8)
	costs := []float64{5, 1, 9, 9, 9, 9, 9, 9}
	g := newGateEvaluator(pts, costs, false)
	stop := make(chan struct{})
	defer close(stop)
	// Release in submission order so the stop decision lands while later
	// candidates are still in flight.
	keys := make([]string, len(pts))
	for i, p := range pts {
		keys[i] = p.Key()
	}
	go g.control(stop, keys)

	delivered := 0
	NewFrontier(g, 4).Run(context.Background(), pts, nil, func(r FrontierResult) bool {
		delivered++
		return r.Err == nil && r.Eval.Value == 1 // stop on the winner at index 1
	})
	if delivered != 2 {
		t.Fatalf("delivered %d results, want 2 (stop decided at index 1)", delivered)
	}
	// All released evaluations completed or were cancelled; nothing leaks.
	g.mu.Lock()
	waiting := len(g.waiting)
	g.mu.Unlock()
	if waiting != 0 {
		t.Fatalf("%d evaluations still waiting after Run returned", waiting)
	}
}

func TestFrontierReservesSlotsInSubmissionOrder(t *testing.T) {
	pts := frontierPoints(t, 5)
	costs := []float64{4, 4, 4, 4, 4}
	g := newGateEvaluator(pts, costs, false)
	stop := make(chan struct{})
	defer close(stop)
	go g.control(stop, reversed(pts))

	NewFrontier(g, 3).Run(context.Background(), pts, nil, func(r FrontierResult) bool { return false })
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, p := range pts {
		if got := g.slots[p.Key()]; got != i {
			t.Fatalf("candidate %d evaluated with slot %d, want %d (slots are reserved upfront in submission order)", i, got, i)
		}
	}
}

func TestFrontierWidthOneUsesSequentialPath(t *testing.T) {
	pts := frontierPoints(t, 4)
	costs := []float64{4, 3, 2, 1}
	g := newGateEvaluator(pts, costs, false)
	// No controller: the sequential path must not block on the gate —
	// release synchronously as registrations appear.
	stop := make(chan struct{})
	defer close(stop)
	keys := make([]string, len(pts))
	for i, p := range pts {
		keys[i] = p.Key()
	}
	go g.control(stop, keys)

	// Width is clamped to at least 1.
	if w := NewFrontier(g, 0).Width(); w != 1 {
		t.Fatalf("width 0 normalized to %d, want 1", w)
	}

	var order []int
	NewFrontier(g, 1).Run(context.Background(), pts, nil, func(r FrontierResult) bool {
		order = append(order, r.Index)
		return false
	})
	if len(order) != 4 {
		t.Fatalf("delivered %d results, want 4", len(order))
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, p := range pts {
		if g.slots[p.Key()] != -1 {
			t.Fatal("width-1 path reserved slots; it must run the plain sequential evaluations")
		}
	}
}

// winner returns the index and value of the first non-pruned minimum among
// in-order frontier results — the selection rule both search loops use.
func winner(results []FrontierResult) (int, float64) {
	bestIdx, bestVal := -1, math.Inf(1)
	for _, r := range results {
		if r.Err != nil || r.Eval == nil || r.Eval.Pruned {
			continue
		}
		if r.Eval.Value < bestVal {
			bestIdx, bestVal = r.Index, r.Eval.Value
		}
	}
	return bestIdx, bestVal
}

func TestFrontierWinnerIndependentOfCompletionOrder(t *testing.T) {
	pts := frontierPoints(t, 6)
	costs := []float64{9, 4, 7, 2, 8, 6}
	wantIdx, wantVal := 3, 2.0

	schedules := [][]string{
		reversed(pts),
		{pts[3].Key(), pts[0].Key(), pts[5].Key(), pts[1].Key(), pts[4].Key(), pts[2].Key()},
		{pts[4].Key(), pts[2].Key(), pts[0].Key(), pts[1].Key(), pts[5].Key(), pts[3].Key()},
	}
	for si, prefer := range schedules {
		g := newGateEvaluator(pts, costs, true) // pruning on: the adversarial case
		stop := make(chan struct{})
		go g.control(stop, prefer)

		var results []FrontierResult
		NewFrontier(g, 3).Run(context.Background(), pts, NewBound(math.Inf(1)), func(r FrontierResult) bool {
			results = append(results, r)
			return false
		})
		close(stop)

		gotIdx, gotVal := winner(results)
		if gotIdx != wantIdx || gotVal != wantVal {
			t.Fatalf("schedule %d: winner (%d, %v), want (%d, %v)", si, gotIdx, gotVal, wantIdx, wantVal)
		}
		// The minimum candidate must never be pruned, whatever completes
		// first — that is the heart of the determinism argument.
		for _, r := range results {
			if r.Index == wantIdx && (r.Eval == nil || r.Eval.Pruned) {
				t.Fatalf("schedule %d: the minimum-F candidate was pruned", si)
			}
		}
	}
}

func TestFrontierParentCancellation(t *testing.T) {
	pts := frontierPoints(t, 6)
	costs := []float64{5, 5, 5, 5, 5, 5}
	g := newGateEvaluator(pts, costs, false)
	// No controller at all: every evaluation blocks until the context dies.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	var errs int
	done := make(chan struct{})
	go func() {
		defer close(done)
		NewFrontier(g, 3).Run(ctx, pts, nil, func(r FrontierResult) bool {
			if r.Err != nil {
				errs++
				return true // a search stops on its first context error
			}
			return false
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("frontier did not unwind after parent cancellation")
	}
	if errs != 1 {
		t.Fatalf("process saw %d errors, want exactly 1 (stop on first)", errs)
	}
}

// fakeSlotBackend scripts per-slot results and records the slots used.
type fakeSlotBackend struct {
	fakeBackend
	mu       sync.Mutex
	nextSlot int
	used     []int
}

func (b *fakeSlotBackend) ReserveEvalSlots(n int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	first := b.nextSlot
	b.nextSlot += n
	return first
}

func (b *fakeSlotBackend) EvaluateSlot(ctx context.Context, p decomp.Point, pol Policy, incumbent float64, slot int) (*Evaluation, error) {
	b.mu.Lock()
	b.used = append(b.used, slot)
	b.mu.Unlock()
	return b.EvaluateBudgeted(ctx, p, pol, incumbent)
}

func TestEngineEvaluateSlotF(t *testing.T) {
	p := testPoint(t)
	backend := &fakeSlotBackend{fakeBackend: fakeBackend{result: Evaluation{Value: 7}}}
	eng := NewEngine(backend, Policy{Cache: true}, NewCache())

	first, ok := eng.ReserveSlots(3)
	if !ok || first != 0 {
		t.Fatalf("ReserveSlots = (%d, %v), want (0, true)", first, ok)
	}
	ev, err := eng.EvaluateSlotF(context.Background(), p, math.Inf(1), first+2)
	if err != nil || ev.Value != 7 || ev.CacheHit {
		t.Fatalf("slot evaluation: %+v, %v", ev, err)
	}
	backend.mu.Lock()
	used := append([]int(nil), backend.used...)
	backend.mu.Unlock()
	if len(used) != 1 || used[0] != 2 {
		t.Fatalf("backend slots used = %v, want [2]", used)
	}
	// A second call is a cache hit: the backend is not consulted and the
	// slot is deliberately burned.
	ev, err = eng.EvaluateSlotF(context.Background(), p, math.Inf(1), first+1)
	if err != nil || !ev.CacheHit {
		t.Fatalf("second slot evaluation not served from cache: %+v, %v", ev, err)
	}
	if backend.calls != 1 {
		t.Fatalf("backend called %d times, want 1", backend.calls)
	}
}

func TestEngineReserveSlotsWithoutSlotBackend(t *testing.T) {
	eng := NewEngine(&fakeBackend{result: Evaluation{Value: 1}}, Policy{}, nil)
	if _, ok := eng.ReserveSlots(4); ok {
		t.Fatal("slot reservation succeeded on a backend without slots")
	}
	// EvaluateSlotF still works, falling back to the plain budgeted path.
	if ev, err := eng.EvaluateSlotF(context.Background(), testPoint(t), math.Inf(1), 9); err != nil || ev.Value != 1 {
		t.Fatalf("fallback slot evaluation: %+v, %v", ev, err)
	}
}

// FuzzFrontierScheduling drives the frontier with fuzzer-chosen candidate
// costs, width and an adversarial completion schedule, and checks the
// determinism contract against the trivial sequential oracle: results
// arrive in submission order, non-pruned values equal the scripted costs,
// and the selected winner is the argmin of the cost vector no matter what
// completes when.
func FuzzFrontierScheduling(f *testing.F) {
	f.Add([]byte{6, 2, 9, 4, 7, 2, 8, 6, 0, 3, 1, 5, 2, 4})
	f.Add([]byte{3, 3, 1, 1, 1, 2, 1, 0})
	f.Add([]byte{8, 1, 200, 100, 50, 25, 12, 6, 3, 1, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		n := 2 + int(data[0])%7     // 2..8 candidates
		width := 1 + int(data[1])%4 // 1..4 in flight
		prune := data[2]%2 == 1
		rest := data[3:]
		costs := make([]float64, n)
		for i := range costs {
			b := byte(i)
			if i < len(rest) {
				b = rest[i]
			}
			costs[i] = float64(b%32) + 1
		}
		// Completion preference: a byte-derived priority per candidate.
		pts := frontierPoints(t, n)
		prefer := make([]string, n)
		type ranked struct {
			key  string
			rank int
		}
		byRank := make([]ranked, n)
		for i, p := range pts {
			r := i
			if n+i < len(rest) {
				r = int(rest[n+i])
			}
			byRank[i] = ranked{key: p.Key(), rank: r}
		}
		for i := 0; i < n; i++ {
			best := i
			for j := i + 1; j < n; j++ {
				if byRank[j].rank < byRank[best].rank {
					best = j
				}
			}
			byRank[i], byRank[best] = byRank[best], byRank[i]
			prefer[i] = byRank[i].key
		}

		// Sequential oracle: first index of the minimum cost.
		wantIdx, wantVal := 0, costs[0]
		for i, c := range costs {
			if c < wantVal {
				wantIdx, wantVal = i, c
			}
		}

		g := newGateEvaluator(pts, costs, prune)
		stop := make(chan struct{})
		go g.control(stop, prefer)
		var results []FrontierResult
		NewFrontier(g, width).Run(context.Background(), pts, NewBound(math.Inf(1)), func(r FrontierResult) bool {
			results = append(results, r)
			return false
		})
		close(stop)

		if len(results) != n {
			t.Fatalf("delivered %d results, want %d", len(results), n)
		}
		for i, r := range results {
			if r.Index != i {
				t.Fatalf("result %d has index %d: delivery must follow submission order", i, r.Index)
			}
			if r.Err != nil || r.Eval == nil {
				t.Fatalf("candidate %d failed: %v", i, r.Err)
			}
			if !r.Eval.Pruned && r.Eval.Value != costs[i] {
				t.Fatalf("candidate %d value %v, want %v", i, r.Eval.Value, costs[i])
			}
			if r.Eval.Pruned && !prune {
				t.Fatalf("candidate %d pruned with pruning off", i)
			}
		}
		gotIdx, gotVal := winner(results)
		if gotIdx != wantIdx || gotVal != wantVal {
			t.Fatalf("winner (%d, %v), want the sequential oracle's (%d, %v); costs=%v width=%d prune=%v",
				gotIdx, gotVal, wantIdx, wantVal, costs, width, prune)
		}
	})
}
