package eval

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/decomp"
)

func TestPolicyValidate(t *testing.T) {
	valid := []Policy{
		{},
		DefaultPolicy(),
		{Prune: true},
		{Stages: 8, Epsilon: 0.5, Gamma: 0.99},
	}
	for _, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", p, err)
		}
	}
	invalid := []Policy{
		{Stages: -1},
		{Epsilon: -0.1},
		{Gamma: -0.5},
		{Gamma: 1},
		{Gamma: 1.5},
	}
	for _, p := range invalid {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
	if !DefaultPolicy().Enabled() {
		t.Error("default policy must be enabled")
	}
	if (Policy{}).Enabled() {
		t.Error("zero policy must be disabled")
	}
	if g := (Policy{}).EffectiveGamma(); g != DefaultGamma {
		t.Errorf("EffectiveGamma of zero policy = %v, want %v", g, DefaultGamma)
	}
}

func TestStagePlan(t *testing.T) {
	cases := []struct {
		n, stages int
		want      []int
	}{
		{100, 3, []int{25, 50, 100}},
		{100, 1, []int{100}},
		{100, 0, []int{100}},
		{24, 3, []int{6, 12, 24}},
		{8, 4, []int{1, 2, 4, 8}},
		{3, 3, []int{1, 3}}, // 3>>1 == 1 == 3>>2: degenerate stages collapse
		{1, 4, []int{1}},
		{2, 2, []int{1, 2}},
		{0, 3, nil},
	}
	for _, c := range cases {
		got := StagePlan(c.n, c.stages)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("StagePlan(%d, %d) = %v, want %v", c.n, c.stages, got, c.want)
		}
	}
	// Invariants: strictly increasing, ends at n.
	for n := 1; n <= 40; n++ {
		for stages := 0; stages <= 6; stages++ {
			plan := StagePlan(n, stages)
			if plan[len(plan)-1] != n {
				t.Fatalf("StagePlan(%d, %d) does not end at n: %v", n, stages, plan)
			}
			for i := 1; i < len(plan); i++ {
				if plan[i] <= plan[i-1] {
					t.Fatalf("StagePlan(%d, %d) is not strictly increasing: %v", n, stages, plan)
				}
			}
		}
	}
}

func TestConfident(t *testing.T) {
	// σ=0: the half-width is zero, so any positive ε target is met.
	if !Confident(5, 0, 10, 0.95, 0.01) {
		t.Error("zero-variance sample must be confident")
	}
	// n=1 carries no variance information and must never stop early.
	if Confident(5, 0, 1, 0.95, 10) {
		t.Error("single-observation sample must not be confident")
	}
	// ε=0 disables the early stop.
	if Confident(5, 0, 10, 0.95, 0) {
		t.Error("epsilon=0 must disable the early stop")
	}
	// A tight sample passes, a loose one does not: half-width at γ=0.95 is
	// 1.96·σ/√n.
	if !Confident(100, 1, 100, 0.95, 0.01) { // half ≈ 0.196 ≤ 1
		t.Error("tight sample must be confident")
	}
	if Confident(100, 50, 100, 0.95, 0.01) { // half ≈ 9.8 > 1
		t.Error("loose sample must not be confident")
	}
}

func TestCacheEstimateRoundTrip(t *testing.T) {
	c := NewCache()
	if _, ok := c.Lookup("a", FullPrecision, math.Inf(1)); ok {
		t.Fatal("empty cache hit")
	}
	est := Evaluation{Value: 42, SamplesPlanned: 10, SamplesSolved: 10}
	c.Store("a", FullPrecision, est)
	got, ok := c.Lookup("a", FullPrecision, math.Inf(1))
	if !ok || got.Value != 42 {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}
	// Estimates hit regardless of the incumbent.
	if _, ok := c.Lookup("a", FullPrecision, 1); !ok {
		t.Fatal("estimate must hit under any incumbent")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheVariantIsolation(t *testing.T) {
	c := NewCache()
	// A coarse early-stopped estimate must not serve a caller that asked
	// for a different (more precise) variant...
	c.Store("a", "s3,e0.5,g0.95", Evaluation{Value: 40, EarlyStopped: true})
	if _, ok := c.Lookup("a", FullPrecision, math.Inf(1)); ok {
		t.Fatal("coarse estimate served to a full-precision caller")
	}
	if _, ok := c.Lookup("a", "s3,e0.1,g0.95", math.Inf(1)); ok {
		t.Fatal("coarse estimate served to a tighter-ε caller")
	}
	if got, ok := c.Lookup("a", "s3,e0.5,g0.95", math.Inf(1)); !ok || got.Value != 40 {
		t.Fatalf("same-variant lookup: %+v, %v", got, ok)
	}
	// ...while a full-precision estimate satisfies every variant.
	c.Store("b", FullPrecision, Evaluation{Value: 41})
	if got, ok := c.Lookup("b", "s3,e0.5,g0.95", math.Inf(1)); !ok || got.Value != 41 {
		t.Fatalf("full-precision estimate must satisfy any variant: %+v, %v", got, ok)
	}
}

func TestPolicyVariant(t *testing.T) {
	// No early stop (ε=0 or a single stage) always solves the full sample,
	// whatever the stage count.
	for _, p := range []Policy{{}, {Stages: 4}, {Stages: 1, Epsilon: 0.1}, {Prune: true, Cache: true}} {
		if v := p.variant(); v != FullPrecision {
			t.Errorf("variant(%+v) = %q, want %q", p, v, FullPrecision)
		}
	}
	a := Policy{Stages: 3, Epsilon: 0.1}
	b := Policy{Stages: 3, Epsilon: 0.5}
	if a.variant() == b.variant() {
		t.Error("different ε must fingerprint differently")
	}
	// Pruning and caching do not change estimate precision.
	withPrune := Policy{Stages: 3, Epsilon: 0.1, Prune: true, Cache: true}
	if a.variant() != withPrune.variant() {
		t.Error("prune/cache flags must not change the variant")
	}
	// An explicit γ equal to the default fingerprints like the default.
	if (Policy{Stages: 3, Epsilon: 0.1, Gamma: DefaultGamma}).variant() != a.variant() {
		t.Error("default γ must fingerprint like γ=0")
	}
}

func TestCacheBoundSemantics(t *testing.T) {
	c := NewCache()
	bound := Evaluation{Value: 100, Pruned: true}
	c.Store("p", FullPrecision, bound)
	// The bound proves the point worse than incumbents below it —
	// regardless of the caller's variant...
	if got, ok := c.Lookup("p", "s3,e0.1,g0.95", 50); !ok || !got.Pruned || got.Value != 100 {
		t.Fatalf("bound should hit for incumbent 50: %+v, %v", got, ok)
	}
	// ...but proves nothing for incumbents at or above it.
	if _, ok := c.Lookup("p", FullPrecision, 100); ok {
		t.Fatal("bound must not hit for an incumbent equal to it")
	}
	if _, ok := c.Lookup("p", FullPrecision, 200); ok {
		t.Fatal("bound must not hit for a larger incumbent")
	}
	// A stronger bound replaces a weaker one; a weaker one is ignored.
	c.Store("p", FullPrecision, Evaluation{Value: 150, Pruned: true})
	if got, _ := c.Lookup("p", FullPrecision, 120); got.Value != 150 {
		t.Fatalf("stronger bound not stored: %+v", got)
	}
	c.Store("p", FullPrecision, Evaluation{Value: 120, Pruned: true})
	if got, _ := c.Lookup("p", FullPrecision, 120); got.Value != 150 {
		t.Fatalf("weaker bound overwrote a stronger one: %+v", got)
	}
	// An estimate coexists with the bound and takes precedence; storing a
	// later bound never hides the estimate.
	c.Store("p", FullPrecision, Evaluation{Value: 130})
	if got, ok := c.Lookup("p", FullPrecision, math.Inf(1)); !ok || got.Value != 130 || got.Pruned {
		t.Fatalf("estimate not preferred over the bound: %+v, %v", got, ok)
	}
	c.Store("p", FullPrecision, Evaluation{Value: 500, Pruned: true})
	if got, _ := c.Lookup("p", FullPrecision, math.Inf(1)); got.Value != 130 || got.Pruned {
		t.Fatalf("bound hid an estimate: %+v", got)
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	c.Store("a", FullPrecision, Evaluation{Value: 1})
	if _, ok := c.Lookup("a", FullPrecision, math.Inf(1)); ok {
		t.Fatal("nil cache hit")
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
	if c.Len() != 0 {
		t.Fatal("nil cache length")
	}
}

// fakeBackend counts evaluations and returns scripted results.
type fakeBackend struct {
	calls  int
	result Evaluation
	err    error
}

func (b *fakeBackend) EvaluateBudgeted(ctx context.Context, p decomp.Point, pol Policy, incumbent float64) (*Evaluation, error) {
	b.calls++
	if b.err != nil {
		return nil, b.err
	}
	ev := b.result
	return &ev, nil
}

func testPoint(t *testing.T) decomp.Point {
	t.Helper()
	return decomp.NewSpace([]cnf.Var{1, 2, 3}).FullPoint()
}

func TestEngineCachesAndNotifies(t *testing.T) {
	p := testPoint(t)
	backend := &fakeBackend{result: Evaluation{Value: 7}}
	eng := NewEngine(backend, Policy{Cache: true}, NewCache())
	var hits int
	eng.OnCacheHit = func(_ decomp.Point, ev Evaluation) { hits++ }

	ev, err := eng.EvaluateF(context.Background(), p, math.Inf(1))
	if err != nil || ev.Value != 7 || ev.CacheHit {
		t.Fatalf("first evaluation: %+v, %v", ev, err)
	}
	ev, err = eng.EvaluateF(context.Background(), p, math.Inf(1))
	if err != nil || !ev.CacheHit || ev.Value != 7 {
		t.Fatalf("second evaluation not served from cache: %+v, %v", ev, err)
	}
	if backend.calls != 1 {
		t.Fatalf("backend called %d times, want 1", backend.calls)
	}
	if hits != 1 {
		t.Fatalf("OnCacheHit fired %d times, want 1", hits)
	}
	if st := eng.CacheStats(); st.Hits != 1 || st.Size != 1 {
		t.Fatalf("cache stats = %+v", st)
	}
}

func TestEngineCacheDisabledByPolicy(t *testing.T) {
	p := testPoint(t)
	backend := &fakeBackend{result: Evaluation{Value: 7}}
	// A shared cache is handed in, but the policy has Cache off.
	eng := NewEngine(backend, Policy{}, NewCache())
	for i := 0; i < 3; i++ {
		if _, err := eng.EvaluateF(context.Background(), p, math.Inf(1)); err != nil {
			t.Fatal(err)
		}
	}
	if backend.calls != 3 {
		t.Fatalf("backend called %d times, want 3 (cache must be off)", backend.calls)
	}
}

func TestEnginePrunedNotificationAndIncumbent(t *testing.T) {
	p := testPoint(t)
	backend := &fakeBackend{result: Evaluation{Value: 90, LowerBound: 90, Pruned: true}}
	eng := NewEngine(backend, Policy{Prune: true, Cache: true}, NewCache())
	var prunes []Evaluation
	eng.OnPruned = func(_ decomp.Point, ev Evaluation) { prunes = append(prunes, ev) }

	ev, err := eng.EvaluateF(context.Background(), p, 50)
	if err != nil || !ev.Pruned {
		t.Fatalf("pruned evaluation: %+v, %v", ev, err)
	}
	if len(prunes) != 1 || prunes[0].Incumbent != 50 {
		t.Fatalf("OnPruned notifications: %+v", prunes)
	}
	// The pruned bound (90) serves lower incumbents from the cache...
	if ev, err := eng.EvaluateF(context.Background(), p, 40); err != nil || !ev.CacheHit {
		t.Fatalf("bound not served for lower incumbent: %+v, %v", ev, err)
	}
	// ...but a higher incumbent needs a fresh evaluation.
	if _, err := eng.EvaluateF(context.Background(), p, 95); err != nil {
		t.Fatal(err)
	}
	if backend.calls != 2 {
		t.Fatalf("backend called %d times, want 2", backend.calls)
	}
}

func TestEngineDoesNotCacheErrors(t *testing.T) {
	p := testPoint(t)
	backend := &fakeBackend{err: errors.New("boom")}
	eng := NewEngine(backend, Policy{Cache: true}, NewCache())
	if _, err := eng.EvaluateF(context.Background(), p, math.Inf(1)); err == nil {
		t.Fatal("error not propagated")
	}
	backend.err = nil
	backend.result = Evaluation{Value: 3}
	ev, err := eng.EvaluateF(context.Background(), p, math.Inf(1))
	if err != nil || ev.CacheHit || ev.Value != 3 {
		t.Fatalf("retry after error: %+v, %v", ev, err)
	}
	if backend.calls != 2 {
		t.Fatalf("backend called %d times, want 2", backend.calls)
	}
}
