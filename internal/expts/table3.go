package expts

import (
	"context"
	"fmt"

	"github.com/paper-repro/pdsat-go/internal/cluster"
	"github.com/paper-repro/pdsat-go/internal/encoder"
	"github.com/paper-repro/pdsat-go/internal/montecarlo"
	"github.com/paper-repro/pdsat-go/internal/pdsat"
	api "github.com/paper-repro/pdsat-go/pdsat"
)

// WeakenedProblem identifies one weakened cryptanalysis problem of Table 3
// (the analogue of Bivium16/Bivium14/... and Grain44/Grain42/...).
type WeakenedProblem struct {
	// Name is the paper-style label, e.g. "Bivium165" (165 known state bits).
	Name string
	// Generator is "bivium" or "grain".
	Generator string
	// Known is the number of known (fixed) state bits.
	Known int
	// Unknown is the number of remaining unknown state bits.
	Unknown int
}

// WeakenedRow is one row of the Table 3 analogue: one weakened problem,
// solved on Table3Instances instances with the decomposition set estimated
// on the first instance.
type WeakenedRow struct {
	Problem WeakenedProblem
	// SetSize is |X̃best| used for all instances of this problem.
	SetSize int
	// Predicted1Core is F for instance 1 on one core.
	Predicted1Core float64
	// PredictedKCores is the extrapolation to Scale.Cores cores.
	PredictedKCores float64
	// TotalCosts holds the measured cost of processing the whole
	// decomposition family, one entry per instance.
	TotalCosts []float64
	// FirstSatCosts holds the measured cost up to the first satisfiable
	// subproblem, one entry per instance.
	FirstSatCosts []float64
	// FoundSat reports whether each instance's key was found.
	FoundSat []bool
	// KeysValid reports whether each recovered key reproduces its keystream.
	KeysValid []bool
	// Deviation is the average relative deviation between the prediction
	// and the measured totals.
	Deviation float64
}

// Table3Result is the full Table 3 analogue.
type Table3Result struct {
	Scale Scale
	Rows  []WeakenedRow
	// MeanDeviation is the average of per-row deviations (the paper reports
	// about 8% for its six weakened problems).
	MeanDeviation float64
}

// Table3Problems derives the list of weakened problems from the scale.
func Table3Problems(scale Scale) []WeakenedProblem {
	var out []WeakenedProblem
	for _, unknown := range scale.Table3Unknowns {
		known := encoder.Bivium().StateBits - unknown
		out = append(out, WeakenedProblem{
			Name:      fmt.Sprintf("Bivium%d", known),
			Generator: "bivium",
			Known:     known,
			Unknown:   unknown,
		})
	}
	for _, unknown := range scale.Table3Unknowns {
		known := encoder.Grain().StateBits - unknown
		out = append(out, WeakenedProblem{
			Name:      fmt.Sprintf("Grain%d", known),
			Generator: "grain",
			Known:     known,
			Unknown:   unknown,
		})
	}
	return out
}

// RunTable3 reproduces the protocol of Section 4.4: for every weakened
// problem, the predictive function is computed for the first instance, the
// resulting decomposition set (here: the full set of unknown starting
// variables) is used for all instances of the series, every decomposition
// family is processed completely, and the measured costs are compared with
// the prediction.
func RunTable3(ctx context.Context, scale Scale) (*Table3Result, error) {
	res := &Table3Result{Scale: scale}
	problems := Table3Problems(scale)
	var devSum float64
	var devCount int
	for _, prob := range problems {
		row, err := runWeakenedProblem(ctx, scale, prob)
		if err != nil {
			if cluster.IsInterruption(err) {
				// Interrupted (Ctrl-C or -timeout): keep the rows finished
				// so far and report them as a partial table.
				if devCount > 0 {
					res.MeanDeviation = devSum / float64(devCount)
				}
				return res, err
			}
			return nil, fmt.Errorf("expts: %s: %w", prob.Name, err)
		}
		res.Rows = append(res.Rows, *row)
		devSum += row.Deviation
		devCount++
	}
	if devCount > 0 {
		res.MeanDeviation = devSum / float64(devCount)
	}
	return res, nil
}

func runWeakenedProblem(ctx context.Context, scale Scale, prob WeakenedProblem) (*WeakenedRow, error) {
	gen, err := encoder.ByName(prob.Generator)
	if err != nil {
		return nil, err
	}
	ksLen := scale.BiviumKeystream
	if prob.Generator == "grain" {
		ksLen = scale.GrainKeystream
	}
	row := &WeakenedRow{Problem: prob}
	var deviations []float64
	for i := 0; i < scale.Table3Instances; i++ {
		inst, err := encoder.NewInstance(gen, encoder.Config{
			KeystreamLen: ksLen,
			KnownSuffix:  prob.Known,
			Seed:         scale.Seed + int64(100*i) + int64(prob.Known),
		})
		if err != nil {
			return nil, err
		}
		eng, err := api.NewSession(api.FromInstance(inst), api.Config{
			Runner: scale.runnerConfig(scale.Table3Samples),
			Search: scale.searchOptions(),
			Cores:  scale.Cores,
		})
		if err != nil {
			return nil, err
		}
		vars := inst.UnknownStartVars()
		if i == 0 {
			// The estimation is computed for the first instance of the
			// series, exactly as in the paper.
			est, estErr := eng.EstimateSet(ctx, vars)
			if estErr != nil {
				return nil, estErr
			}
			row.SetSize = len(est.Vars)
			row.Predicted1Core = est.Estimate.Value
			row.PredictedKCores = est.PerCores
		}
		report, err := eng.SolveWithSet(ctx, vars, pdsat.SolveOptions{})
		if err != nil {
			return nil, err
		}
		if report.Interrupted {
			// Runner.Solve reports cancellation in the report rather than
			// as an error; a truncated family measurement would corrupt
			// this row (undercounted costs, bogus deviation), so discard
			// the unfinished row and surface the interruption — RunTable3
			// keeps the rows completed before it.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, context.Canceled
		}
		row.TotalCosts = append(row.TotalCosts, report.TotalCost)
		row.FirstSatCosts = append(row.FirstSatCosts, report.CostToFirstSat)
		row.FoundSat = append(row.FoundSat, report.FoundSat)
		valid := false
		if report.FoundSat {
			ok, err := inst.CheckRecoveredState(gen, report.Model)
			valid = ok && err == nil
		}
		row.KeysValid = append(row.KeysValid, valid)
		deviations = append(deviations, montecarlo.RelativeDeviation(row.Predicted1Core, report.TotalCost))
	}
	var sum float64
	for _, d := range deviations {
		sum += d
	}
	if len(deviations) > 0 {
		row.Deviation = sum / float64(len(deviations))
	}
	return row, nil
}

// Table3 renders the analogue of the paper's Table 3.
func (r *Table3Result) Table3() *Table {
	unit := r.Scale.CostUnit()
	header := []string{"Problem", "|set|", "F 1 core [" + unit + "]", fmt.Sprintf("F %d cores", r.Scale.Cores)}
	for i := 0; i < r.Scale.Table3Instances; i++ {
		header = append(header, fmt.Sprintf("family inst.%d", i+1))
	}
	for i := 0; i < r.Scale.Table3Instances; i++ {
		header = append(header, fmt.Sprintf("first SAT inst.%d", i+1))
	}
	t := &Table{
		Title:  "Table 3 — solving weakened cryptanalysis problems (prediction vs. measurement)",
		Header: header,
		Notes: []string{
			fmt.Sprintf("mean relative deviation of measured family cost from prediction: %.1f%% (the paper reports about 8%%)", 100*r.MeanDeviation),
			fmt.Sprintf("costs in %s; BiviumK/GrainK = K known state bits, as in the paper's notation", unit),
			fmt.Sprintf("scale %q: sample N=%d, %d instances per problem", r.Scale.Name, r.Scale.Table3Samples, r.Scale.Table3Instances),
		},
	}
	for _, row := range r.Rows {
		cells := []string{
			row.Problem.Name,
			fmt.Sprintf("%d", row.SetSize),
			fmtF(row.Predicted1Core),
			fmtF(row.PredictedKCores),
		}
		for _, c := range row.TotalCosts {
			cells = append(cells, fmtCost(c))
		}
		for i, c := range row.FirstSatCosts {
			mark := ""
			if i < len(row.FoundSat) && !row.FoundSat[i] {
				mark = " (no SAT)"
			}
			cells = append(cells, fmtCost(c)+mark)
		}
		t.Rows = append(t.Rows, cells)
	}
	return t
}
