package expts

import (
	"context"
	"fmt"
	"strings"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/crypto"
	"github.com/paper-repro/pdsat-go/internal/encoder"
	api "github.com/paper-repro/pdsat-go/pdsat"
)

// GrainResult bundles the Grain experiment of Figure 4: the decomposition
// set found by tabu search and the split of its variables between the NFSR
// and the LFSR (the paper's notable observation is that the found set lies
// entirely in the LFSR).
type GrainResult struct {
	Scale    Scale
	Instance *encoder.Instance
	// Searched is the set found by tabu search with its estimate.
	Searched SetReport
	// StartF is the predictive value of the full start set, for reference.
	StartF float64
	// NFSRCount and LFSRCount split the found set between the registers.
	NFSRCount int
	LFSRCount int
	// TabuEvaluations counts the points visited by the search.
	TabuEvaluations int
}

// GrainInstance builds the scaled Grain cryptanalysis instance.
func GrainInstance(scale Scale, seed int64) (*encoder.Instance, error) {
	return encoder.NewInstance(encoder.Grain(), encoder.Config{
		KeystreamLen: scale.GrainKeystream,
		KnownSuffix:  scale.GrainKnown,
		KnownPrefix:  scale.GrainKnownPrefix,
		Seed:         seed,
	})
}

// RunGrain performs the Grain study (Figure 4).
func RunGrain(ctx context.Context, scale Scale) (*GrainResult, error) {
	inst, err := GrainInstance(scale, scale.Seed)
	if err != nil {
		return nil, err
	}
	res := &GrainResult{Scale: scale, Instance: inst}

	searchEngine, err := api.NewSession(api.FromInstance(inst), api.Config{
		Runner: scale.runnerConfig(scale.SearchSamples),
		Search: scale.searchOptions(),
		Cores:  scale.Cores,
	})
	if err != nil {
		return nil, err
	}
	startEst, err := searchEngine.EstimateStartSet(ctx)
	if err != nil {
		return nil, err
	}
	res.StartF = startEst.Estimate.Value

	tabu, err := searchEngine.SearchTabu(ctx)
	if err != nil {
		return nil, err
	}
	res.TabuEvaluations = tabu.Result.Evaluations

	estEngine, err := api.NewSession(api.FromInstance(inst), api.Config{
		Runner: scale.runnerConfig(scale.EstimateSamples),
		Cores:  scale.Cores,
	})
	if err != nil {
		return nil, err
	}
	best, err := estEngine.EstimatePoint(ctx, tabu.Result.BestPoint)
	if err != nil {
		return nil, err
	}
	res.Searched = SetReport{Name: "Found by PDSAT (tabu search)", Vars: best.Vars, Power: len(best.Vars), F: best.Estimate.Value}

	for _, v := range best.Vars {
		if grainVarIsLFSR(inst, v) {
			res.LFSRCount++
		} else {
			res.NFSRCount++
		}
	}
	return res, nil
}

// grainVarIsLFSR reports whether a start variable belongs to the LFSR
// (the second register in the state layout).
func grainVarIsLFSR(inst *encoder.Instance, v cnf.Var) bool {
	for i := crypto.GrainNFSRLen; i < crypto.GrainStateBits; i++ {
		if inst.StartVars[i] == v {
			return true
		}
	}
	return false
}

// Figure4 renders the analogue of Figure 4: the Grain decomposition set laid
// out over NFSR and LFSR, plus the register split.
func (r *GrainResult) Figure4() *Table {
	selected := make(map[cnf.Var]bool, len(r.Searched.Vars))
	for _, v := range r.Searched.Vars {
		selected[v] = true
	}
	known := knownStartVars(r.Instance)
	regs := []struct {
		name   string
		offset int
		length int
	}{
		{"NFSR (b0..b79)", 0, crypto.GrainNFSRLen},
		{"LFSR (s0..s79)", crypto.GrainNFSRLen, crypto.GrainLFSRLen},
	}
	t := &Table{
		Title:  "Figure 4 — Grain decomposition set found by PDSAT (tabu search)",
		Header: []string{"Register", "Cells (X = in set, k = known, . = free)", "Selected"},
		Notes: []string{
			fmt.Sprintf("|set| = %d (NFSR %d, LFSR %d); F = %s %s; start-set F = %s",
				r.Searched.Power, r.NFSRCount, r.LFSRCount, fmtF(r.Searched.F), r.Scale.CostUnit(), fmtF(r.StartF)),
			"the paper's 69-variable set lies entirely in the LFSR",
			fmt.Sprintf("instance %s, scale %q, %d points visited by the search", r.Instance.Name, r.Scale.Name, r.TabuEvaluations),
		},
	}
	for _, reg := range regs {
		var sb strings.Builder
		count := 0
		for i := 0; i < reg.length; i++ {
			v := r.Instance.StartVars[reg.offset+i]
			switch {
			case selected[v]:
				sb.WriteByte('X')
				count++
			case known[v]:
				sb.WriteByte('k')
			default:
				sb.WriteByte('.')
			}
		}
		t.Rows = append(t.Rows, []string{reg.name, sb.String(), fmt.Sprintf("%d", count)})
	}
	return t
}
