package expts

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/crypto"
	"github.com/paper-repro/pdsat-go/internal/encoder"
	api "github.com/paper-repro/pdsat-go/pdsat"
)

// BiviumResult bundles the Bivium experiments: the three time estimations of
// Table 2 (a fixed "strategy" set in the spirit of Eibach et al. [5], a
// solver-activity-guided set standing in for the CryptoMiniSat-based
// estimations of Soos et al. [18,19], and the set found by PDSAT-style tabu
// search), plus the decomposition set of Figure 3.
type BiviumResult struct {
	Scale    Scale
	Instance *encoder.Instance
	// Fixed is the Eibach-style fixed strategy: the last cells of the
	// second shift register, estimated with a small sample (N=10^2 in [5]).
	Fixed SetReport
	// FixedSamples is the sample size used for Fixed.
	FixedSamples int
	// ActivityGuided is the stand-in for [18,19]: the decomposition set
	// formed by the most conflict-active variables, estimated with a medium
	// sample (N=10^3 in those papers).
	ActivityGuided SetReport
	// ActivitySamples is the sample size used for ActivityGuided.
	ActivitySamples int
	// Searched is the set found by tabu search and estimated with the
	// largest sample (N=10^5 in the paper).
	Searched SetReport
	// SearchedSamples is the sample size used for Searched.
	SearchedSamples int
	// TabuEvaluations counts the points visited by the search.
	TabuEvaluations int
}

// BiviumInstance builds the scaled Bivium cryptanalysis instance.
func BiviumInstance(scale Scale, seed int64) (*encoder.Instance, error) {
	return encoder.NewInstance(encoder.Bivium(), encoder.Config{
		KeystreamLen: scale.BiviumKeystream,
		KnownSuffix:  scale.BiviumKnown,
		Seed:         seed,
	})
}

// EibachBiviumSet returns the fixed decomposition set used as the best
// strategy in [5]: the last `size` cells of the second shift register,
// restricted to unknown variables.  In the paper size is 45.
func EibachBiviumSet(inst *encoder.Instance, size int) []cnf.Var {
	unknown := make(map[cnf.Var]bool)
	for _, v := range inst.UnknownStartVars() {
		unknown[v] = true
	}
	var out []cnf.Var
	for i := crypto.BiviumStateBits - 1; i >= crypto.BiviumReg1Len && len(out) < size; i-- {
		v := inst.StartVars[i]
		if unknown[v] {
			out = append(out, v)
		}
	}
	// If the weakening has consumed the whole second register, extend with
	// the last unknown cells of the first register so the set keeps the
	// intended size.
	for i := crypto.BiviumReg1Len - 1; i >= 0 && len(out) < size; i-- {
		v := inst.StartVars[i]
		if unknown[v] {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ActivityGuidedSet returns the `size` unknown start variables with the
// largest accumulated conflict activity according to the provided ranking
// runner.  It stands in for the CryptoMiniSat-internal variable choices of
// [18,19]: variables the solver fights over the most.
func ActivityGuidedSet(ctx context.Context, scale Scale, inst *encoder.Instance, size int) ([]cnf.Var, error) {
	eng, err := api.NewSession(api.FromInstance(inst), api.Config{
		Runner: scale.runnerConfig(scale.SearchSamples),
		Search: scale.searchOptions(),
		Cores:  scale.Cores,
	})
	if err != nil {
		return nil, err
	}
	// One evaluation of the full start set accumulates conflict activity
	// over the sampled subproblems.
	if _, err := eng.EstimateStartSet(ctx); err != nil {
		return nil, err
	}
	unknown := inst.UnknownStartVars()
	sort.Slice(unknown, func(i, j int) bool {
		ai, aj := eng.Runner().VarActivity(unknown[i]), eng.Runner().VarActivity(unknown[j])
		if ai != aj {
			return ai > aj
		}
		return unknown[i] < unknown[j]
	})
	if size > len(unknown) {
		size = len(unknown)
	}
	out := append([]cnf.Var(nil), unknown[:size]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// RunBivium performs the Bivium estimation study (Table 2, Figure 3).
func RunBivium(ctx context.Context, scale Scale) (*BiviumResult, error) {
	inst, err := BiviumInstance(scale, scale.Seed)
	if err != nil {
		return nil, err
	}
	res := &BiviumResult{Scale: scale, Instance: inst}

	// Sample sizes keep the paper's ordering 10^2 < 10^3 < 10^5, scaled.
	res.FixedSamples = maxInt(scale.EstimateSamples/10, 10)
	res.ActivitySamples = maxInt(scale.EstimateSamples/2, 20)
	res.SearchedSamples = scale.EstimateSamples

	setSize := 45
	if unknown := len(inst.UnknownStartVars()); setSize > unknown {
		setSize = unknown
	}

	// Row 1: Eibach-style fixed strategy, small sample.
	fixedVars := EibachBiviumSet(inst, setSize)
	fixedEngine, err := api.NewSession(api.FromInstance(inst), api.Config{
		Runner: scale.runnerConfig(res.FixedSamples),
		Cores:  scale.Cores,
	})
	if err != nil {
		return nil, err
	}
	fixedEst, err := fixedEngine.EstimateSet(ctx, fixedVars)
	if err != nil {
		return nil, err
	}
	res.Fixed = SetReport{Name: "Fixed strategy (as in [5])", Vars: fixedEst.Vars, Power: len(fixedEst.Vars), F: fixedEst.Estimate.Value}

	// Row 2: activity-guided set, medium sample.
	actVars, err := ActivityGuidedSet(ctx, scale, inst, setSize)
	if err != nil {
		return nil, err
	}
	actEngine, err := api.NewSession(api.FromInstance(inst), api.Config{
		Runner: scale.runnerConfig(res.ActivitySamples),
		Cores:  scale.Cores,
	})
	if err != nil {
		return nil, err
	}
	actEst, err := actEngine.EstimateSet(ctx, actVars)
	if err != nil {
		return nil, err
	}
	res.ActivityGuided = SetReport{Name: "Solver-activity set (as in [18,19])", Vars: actEst.Vars, Power: len(actEst.Vars), F: actEst.Estimate.Value}

	// Row 3: PDSAT-style tabu search from the start set, large sample.
	searchEngine, err := api.NewSession(api.FromInstance(inst), api.Config{
		Runner: scale.runnerConfig(scale.SearchSamples),
		Search: scale.searchOptions(),
		Cores:  scale.Cores,
	})
	if err != nil {
		return nil, err
	}
	tabu, err := searchEngine.SearchTabu(ctx)
	if err != nil {
		return nil, err
	}
	res.TabuEvaluations = tabu.Result.Evaluations
	finalEngine, err := api.NewSession(api.FromInstance(inst), api.Config{
		Runner: scale.runnerConfig(res.SearchedSamples),
		Cores:  scale.Cores,
	})
	if err != nil {
		return nil, err
	}
	bestEst, err := finalEngine.EstimatePoint(ctx, tabu.Result.BestPoint)
	if err != nil {
		return nil, err
	}
	res.Searched = SetReport{Name: "Found by PDSAT (tabu search)", Vars: bestEst.Vars, Power: len(bestEst.Vars), F: bestEst.Estimate.Value}
	return res, nil
}

// Table2 renders the analogue of the paper's Table 2: three time estimations
// for the Bivium cryptanalysis problem obtained with different methods and
// sample sizes.
func (r *BiviumResult) Table2() *Table {
	t := &Table{
		Title:  "Table 2 — time estimations for the Bivium cryptanalysis problem",
		Header: []string{"Source", "N", "|set|", "Time estimation [" + r.Scale.CostUnit() + "]"},
		Notes: []string{
			fmt.Sprintf("instance %s (%d unknown state bits), scale %q", r.Instance.Name, len(r.Instance.UnknownStartVars()), r.Scale.Name),
			"the paper compares 1.637e13 [5] (N=10^2), 9.718e10 [18,19] (N=10^3) and 3.769e10 (PDSAT, N=10^5) seconds",
		},
	}
	t.Rows = append(t.Rows,
		[]string{r.Fixed.Name, fmt.Sprintf("%d", r.FixedSamples), fmt.Sprintf("%d", r.Fixed.Power), fmtF(r.Fixed.F)},
		[]string{r.ActivityGuided.Name, fmt.Sprintf("%d", r.ActivitySamples), fmt.Sprintf("%d", r.ActivityGuided.Power), fmtF(r.ActivityGuided.F)},
		[]string{r.Searched.Name, fmt.Sprintf("%d", r.SearchedSamples), fmt.Sprintf("%d", r.Searched.Power), fmtF(r.Searched.F)},
	)
	return t
}

// Figure3 renders the analogue of Figure 3: the decomposition set found by
// the search laid out over the two Bivium registers.
func (r *BiviumResult) Figure3() *Table {
	return biviumSetFigure("Figure 3 — Bivium decomposition set found by PDSAT (tabu search)", r.Instance, r.Searched.Vars, r.Scale)
}

func biviumSetFigure(title string, inst *encoder.Instance, vars []cnf.Var, scale Scale) *Table {
	selected := make(map[cnf.Var]bool, len(vars))
	for _, v := range vars {
		selected[v] = true
	}
	known := knownStartVars(inst)
	regs := []struct {
		name   string
		offset int
		length int
	}{
		{"Register 1 (s1..s93)", 0, crypto.BiviumReg1Len},
		{"Register 2 (s94..s177)", crypto.BiviumReg1Len, crypto.BiviumReg2Len},
	}
	t := &Table{
		Title:  title,
		Header: []string{"Register", "Cells (X = in set, k = known, . = free)", "Selected"},
		Notes: []string{
			fmt.Sprintf("|set| = %d of %d unknown state bits (scale %q); the paper's set has 50 variables", len(vars), len(inst.UnknownStartVars()), scale.Name),
		},
	}
	for _, reg := range regs {
		var sb strings.Builder
		count := 0
		for i := 0; i < reg.length; i++ {
			v := inst.StartVars[reg.offset+i]
			switch {
			case selected[v]:
				sb.WriteByte('X')
				count++
			case known[v]:
				sb.WriteByte('k')
			default:
				sb.WriteByte('.')
			}
		}
		t.Rows = append(t.Rows, []string{reg.name, sb.String(), fmt.Sprintf("%d", count)})
	}
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
