package expts

import (
	"context"
	"fmt"
	"strings"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/crypto"
	"github.com/paper-repro/pdsat-go/internal/encoder"
	api "github.com/paper-repro/pdsat-go/pdsat"
)

// A51Result bundles the outcomes of the A5/1 experiments (Table 1 and
// Figures 1, 2a, 2b of the paper): the manually constructed decomposition
// set S1 and the sets S2/S3 found by simulated annealing and tabu search,
// with their predictive-function values.
type A51Result struct {
	// Scale echoes the experiment scale.
	Scale Scale
	// Instance is the (possibly weakened) cryptanalysis instance used.
	Instance *encoder.Instance
	// S1 is the manual set (register cells controlling the clocking), the
	// analogue of the paper's hand-built S1 from [17].
	S1 SetReport
	// S2 is the set found by simulated annealing (Figure 2a).
	S2 SetReport
	// S3 is the set found by tabu search (Figure 2b).
	S3 SetReport
	// SAEvaluations and TabuEvaluations count the predictive-function
	// evaluations spent by each search.
	SAEvaluations   int
	TabuEvaluations int
}

// SetReport describes one decomposition set and its estimate.
type SetReport struct {
	// Name labels the set (S1, S2, S3, ...).
	Name string
	// Vars is the decomposition set.
	Vars []cnf.Var
	// Power is |X̃|.
	Power int
	// F is the predictive-function value (1 CPU core, Scale.CostMetric units).
	F float64
}

// A51Instance builds the scaled A5/1 cryptanalysis instance.
func A51Instance(scale Scale, seed int64) (*encoder.Instance, error) {
	return encoder.NewInstance(encoder.A51(), encoder.Config{
		KeystreamLen: scale.A51Keystream,
		KnownSuffix:  scale.A51Known,
		Seed:         seed,
	})
}

// knownStartVars returns the set of start variables fixed by the instance's
// weakening (prefix and suffix).
func knownStartVars(inst *encoder.Instance) map[cnf.Var]bool {
	known := make(map[cnf.Var]bool)
	n := len(inst.StartVars)
	for i := 0; i < inst.KnownPrefix && i < n; i++ {
		known[inst.StartVars[i]] = true
	}
	for i := n - inst.KnownSuffix; i < n; i++ {
		if i >= 0 {
			known[inst.StartVars[i]] = true
		}
	}
	return known
}

// ManualA51Set returns the analogue of the paper's hand-built S1 set: the
// register cells that control the irregular clocking (cells 0..8 of R1 and
// 0..10 of R2 and R3), restricted to the variables that are unknown at the
// given weakening.  On the full problem this set has exactly 31 variables,
// the size reported in the paper.
func ManualA51Set(inst *encoder.Instance) []cnf.Var {
	unknown := make(map[cnf.Var]bool)
	for _, v := range inst.UnknownStartVars() {
		unknown[v] = true
	}
	var out []cnf.Var
	add := func(v cnf.Var) {
		if unknown[v] {
			out = append(out, v)
		}
	}
	// Start variables are laid out R1[0..18], R2[0..21], R3[0..22] in order.
	for i := 0; i <= 8; i++ { // R1 clocking prefix
		add(inst.StartVars[i])
	}
	for i := 0; i <= 10; i++ { // R2 clocking prefix
		add(inst.StartVars[crypto.A51R1Len+i])
	}
	for i := 0; i <= 10; i++ { // R3 clocking prefix
		add(inst.StartVars[crypto.A51R1Len+crypto.A51R2Len+i])
	}
	return out
}

// RunA51 performs the A5/1 study: estimate the manual set and search for
// sets with both metaheuristics.
func RunA51(ctx context.Context, scale Scale) (*A51Result, error) {
	inst, err := A51Instance(scale, scale.Seed)
	if err != nil {
		return nil, err
	}
	res := &A51Result{Scale: scale, Instance: inst}

	// Estimation engine with the larger sample.
	estEngine, err := api.NewSession(api.FromInstance(inst), api.Config{
		Runner: scale.runnerConfig(scale.EstimateSamples),
		Search: scale.searchOptions(),
		Cores:  scale.Cores,
	})
	if err != nil {
		return nil, err
	}
	manual := ManualA51Set(inst)
	manualEst, err := estEngine.EstimateSet(ctx, manual)
	if err != nil {
		return nil, err
	}
	res.S1 = SetReport{Name: "S1 (manual)", Vars: manualEst.Vars, Power: len(manualEst.Vars), F: manualEst.Estimate.Value}

	// Search engine with the smaller per-point sample (the search visits
	// many points).
	searchEngine, err := api.NewSession(api.FromInstance(inst), api.Config{
		Runner: scale.runnerConfig(scale.SearchSamples),
		Search: scale.searchOptions(),
		Cores:  scale.Cores,
	})
	if err != nil {
		return nil, err
	}
	sa, err := searchEngine.SearchSimulatedAnnealing(ctx)
	if err != nil {
		return nil, err
	}
	res.SAEvaluations = sa.Result.Evaluations
	saEst, err := estEngine.EstimatePoint(ctx, sa.Result.BestPoint)
	if err != nil {
		return nil, err
	}
	res.S2 = SetReport{Name: "S2 (simulated annealing)", Vars: saEst.Vars, Power: len(saEst.Vars), F: saEst.Estimate.Value}

	tabu, err := searchEngine.SearchTabu(ctx)
	if err != nil {
		return nil, err
	}
	res.TabuEvaluations = tabu.Result.Evaluations
	tabuEst, err := estEngine.EstimatePoint(ctx, tabu.Result.BestPoint)
	if err != nil {
		return nil, err
	}
	res.S3 = SetReport{Name: "S3 (tabu search)", Vars: tabuEst.Vars, Power: len(tabuEst.Vars), F: tabuEst.Estimate.Value}
	return res, nil
}

// Table1 renders the analogue of the paper's Table 1: the three A5/1
// decomposition sets and their predictive-function values.
func (r *A51Result) Table1() *Table {
	t := &Table{
		Title:  "Table 1 — decomposition sets for logical cryptanalysis of A5/1 and values of the predictive function",
		Header: []string{"Set", "Power of set", "F(.) [" + r.Scale.CostUnit() + "]"},
		Notes: []string{
			fmt.Sprintf("instance %s (%d unknown state bits), sample N=%d, scale %q",
				r.Instance.Name, len(r.Instance.UnknownStartVars()), r.Scale.EstimateSamples, r.Scale.Name),
			"the paper reports F in seconds on one core of the Matrosov cluster; here F counts deterministic solver effort",
		},
	}
	for _, s := range []SetReport{r.S1, r.S2, r.S3} {
		t.Rows = append(t.Rows, []string{s.Name, fmt.Sprintf("%d", s.Power), fmtF(s.F)})
	}
	return t
}

// Figure1 renders the analogue of Figure 1: the manual decomposition set S1
// laid out over the three registers.
func (r *A51Result) Figure1() *Table {
	return a51SetFigure("Figure 1 — decomposition set S1 (manual, clocking-control cells)", r.Instance, r.S1.Vars, r.Scale)
}

// Figure2 renders the analogue of Figures 2a/2b: the decomposition sets
// found by simulated annealing and tabu search.
func (r *A51Result) Figure2() *Table {
	t := a51SetFigure("Figure 2a — decomposition set S2 found by simulated annealing", r.Instance, r.S2.Vars, r.Scale)
	t2 := a51SetFigure("Figure 2b — decomposition set S3 found by tabu search", r.Instance, r.S3.Vars, r.Scale)
	t.Rows = append(t.Rows, []string{"", "", ""})
	t.Rows = append(t.Rows, [][]string{{t2.Title, "", ""}}...)
	t.Rows = append(t.Rows, t2.Rows...)
	t.Notes = append(t.Notes,
		fmt.Sprintf("simulated annealing evaluated %d points, tabu search %d points", r.SAEvaluations, r.TabuEvaluations))
	return t
}

// a51SetFigure renders one decomposition set register by register, marking
// selected cells (the textual equivalent of the paper's register diagrams).
func a51SetFigure(title string, inst *encoder.Instance, vars []cnf.Var, scale Scale) *Table {
	selected := make(map[cnf.Var]bool, len(vars))
	for _, v := range vars {
		selected[v] = true
	}
	known := knownStartVars(inst)
	regs := []struct {
		name   string
		offset int
		length int
	}{
		{"R1 (19 cells)", 0, crypto.A51R1Len},
		{"R2 (22 cells)", crypto.A51R1Len, crypto.A51R2Len},
		{"R3 (23 cells)", crypto.A51R1Len + crypto.A51R2Len, crypto.A51R3Len},
	}
	t := &Table{
		Title:  title,
		Header: []string{"Register", "Cells (X = in set, k = known, . = free)", "Selected"},
		Notes: []string{
			fmt.Sprintf("|set| = %d of %d unknown state bits (scale %q)", len(vars), len(inst.UnknownStartVars()), scale.Name),
		},
	}
	for _, reg := range regs {
		var sb strings.Builder
		count := 0
		for i := 0; i < reg.length; i++ {
			v := inst.StartVars[reg.offset+i]
			switch {
			case selected[v]:
				sb.WriteByte('X')
				count++
			case known[v]:
				sb.WriteByte('k')
			default:
				sb.WriteByte('.')
			}
		}
		t.Rows = append(t.Rows, []string{reg.name, sb.String(), fmt.Sprintf("%d", count)})
	}
	return t
}
