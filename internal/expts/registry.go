package expts

import (
	"context"
	"fmt"
	"sort"
)

// Experiment is a runnable experiment of the paper's evaluation section.
type Experiment struct {
	// ID is the short identifier used on the command line
	// ("table1", "fig3", ...).
	ID string
	// Paper names the table or figure of the paper being reproduced.
	Paper string
	// Description summarizes what is measured.
	Description string
	// Run executes the experiment and returns the rendered tables.
	Run func(ctx context.Context, scale Scale) ([]*Table, error)
}

// Experiments returns the registry of all experiments, sorted by ID.
func Experiments() []Experiment {
	exps := []Experiment{
		{
			ID:          "table1",
			Paper:       "Table 1",
			Description: "A5/1: predictive-function values of the manual set S1 and the sets found by simulated annealing (S2) and tabu search (S3)",
			Run: func(ctx context.Context, scale Scale) ([]*Table, error) {
				r, err := RunA51(ctx, scale)
				if err != nil {
					return nil, err
				}
				return []*Table{r.Table1()}, nil
			},
		},
		{
			ID:          "fig1",
			Paper:       "Figure 1",
			Description: "A5/1: the manual decomposition set S1 laid out over the three registers",
			Run: func(ctx context.Context, scale Scale) ([]*Table, error) {
				inst, err := A51Instance(scale, scale.Seed)
				if err != nil {
					return nil, err
				}
				vars := ManualA51Set(inst)
				return []*Table{a51SetFigure("Figure 1 — decomposition set S1 (manual, clocking-control cells)", inst, vars, scale)}, nil
			},
		},
		{
			ID:          "fig2",
			Paper:       "Figures 2a/2b",
			Description: "A5/1: decomposition sets found by simulated annealing and tabu search",
			Run: func(ctx context.Context, scale Scale) ([]*Table, error) {
				r, err := RunA51(ctx, scale)
				if err != nil {
					return nil, err
				}
				return []*Table{r.Figure2()}, nil
			},
		},
		{
			ID:          "table2",
			Paper:       "Table 2",
			Description: "Bivium: time estimations from a fixed strategy, a solver-activity set and the PDSAT tabu search",
			Run: func(ctx context.Context, scale Scale) ([]*Table, error) {
				r, err := RunBivium(ctx, scale)
				if err != nil {
					return nil, err
				}
				return []*Table{r.Table2()}, nil
			},
		},
		{
			ID:          "fig3",
			Paper:       "Figure 3",
			Description: "Bivium: decomposition set found by the tabu search, laid out over the two registers",
			Run: func(ctx context.Context, scale Scale) ([]*Table, error) {
				r, err := RunBivium(ctx, scale)
				if err != nil {
					return nil, err
				}
				return []*Table{r.Figure3()}, nil
			},
		},
		{
			ID:          "fig4",
			Paper:       "Figure 4",
			Description: "Grain: decomposition set found by the tabu search and its NFSR/LFSR split",
			Run: func(ctx context.Context, scale Scale) ([]*Table, error) {
				r, err := RunGrain(ctx, scale)
				if err != nil {
					return nil, err
				}
				return []*Table{r.Figure4()}, nil
			},
		},
		{
			ID:          "table3",
			Paper:       "Table 3",
			Description: "Weakened BiviumK/GrainK problems: predicted vs. measured cost of processing whole decomposition families",
			Run: func(ctx context.Context, scale Scale) ([]*Table, error) {
				r, err := RunTable3(ctx, scale)
				if r == nil {
					return nil, err
				}
				// On interruption r holds the rows finished so far; return
				// them alongside the context error so the command can still
				// print a partial table.
				return []*Table{r.Table3()}, err
			},
		},
		{
			ID:          "mc-convergence",
			Paper:       "Section 2 (eq. 2/3)",
			Description: "Monte Carlo estimate vs. exhaustive family cost for growing sample sizes",
			Run: func(ctx context.Context, scale Scale) ([]*Table, error) {
				r, err := RunConvergence(ctx, scale)
				if err != nil {
					return nil, err
				}
				return []*Table{r.TableConvergence()}, nil
			},
		},
		{
			ID:          "sa-vs-tabu",
			Paper:       "Section 4.3 (remark)",
			Description: "Simulated annealing vs. tabu search under an equal evaluation budget",
			Run: func(ctx context.Context, scale Scale) ([]*Table, error) {
				r, err := RunSAvsTabu(ctx, scale)
				if err != nil {
					return nil, err
				}
				return []*Table{r.TableSAvsTabu()}, nil
			},
		},
		{
			ID:          "portfolio-vs-partitioning",
			Paper:       "Section 1 (context)",
			Description: "Portfolio approach vs. partitioning approach on the same weakened A5/1 instance",
			Run: func(ctx context.Context, scale Scale) ([]*Table, error) {
				r, err := RunPortfolioVsPartitioning(ctx, scale)
				if err != nil {
					return nil, err
				}
				return []*Table{r.TablePortfolio()}, nil
			},
		},
		{
			ID:          "solver-ablation",
			Paper:       "supporting (design choices)",
			Description: "CDCL configuration ablation on sampled subproblems",
			Run: func(ctx context.Context, scale Scale) ([]*Table, error) {
				r, err := RunSolverAblation(ctx, scale)
				if err != nil {
					return nil, err
				}
				return []*Table{r.TableAblation()}, nil
			},
		},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// FindExperiment returns the experiment with the given ID.
func FindExperiment(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("expts: unknown experiment %q", id)
}
