package expts

import (
	"context"
	"fmt"

	"github.com/paper-repro/pdsat-go/internal/decomp"
	"github.com/paper-repro/pdsat-go/internal/encoder"
	"github.com/paper-repro/pdsat-go/internal/pdsat"
	"github.com/paper-repro/pdsat-go/internal/portfolio"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// PortfolioVsPartitioningResult compares the two parallel-SAT approaches the
// paper's introduction discusses, on the same weakened A5/1 instance: a
// portfolio of differently-configured solvers attacking the whole instance
// versus processing the decomposition family of the unknown state variables
// (with stop-on-SAT, i.e. both approaches stop once a key is found).
type PortfolioVsPartitioningResult struct {
	Scale Scale
	// InstanceName identifies the instance.
	InstanceName string
	// PortfolioCost is the total effort burned by the portfolio until its
	// first conclusive answer.
	PortfolioCost float64
	// PortfolioWinner names the winning configuration.
	PortfolioWinner string
	// PartitioningCost is the effort spent by the partitioning runner until
	// the first satisfiable subproblem (stop-on-SAT).
	PartitioningCost float64
	// PartitioningPredicted is the predictive-function value for the same
	// decomposition set — the quantity the portfolio approach cannot offer.
	PartitioningPredicted float64
	// BothFoundKey reports whether both approaches recovered a valid key.
	BothFoundKey bool
}

// RunPortfolioVsPartitioning runs the comparison.
func RunPortfolioVsPartitioning(ctx context.Context, scale Scale) (*PortfolioVsPartitioningResult, error) {
	inst, err := A51Instance(scale, scale.Seed+31)
	if err != nil {
		return nil, err
	}
	res := &PortfolioVsPartitioningResult{Scale: scale, InstanceName: inst.Name}

	// Portfolio on the whole instance.
	pres, err := portfolio.Solve(ctx, inst.CNF, portfolio.Options{
		Workers:    scale.Workers,
		CostMetric: scale.CostMetric,
	})
	if err != nil {
		return nil, err
	}
	res.PortfolioCost = pres.TotalCost
	res.PortfolioWinner = pres.Winner
	gen, err := encoder.ByName(inst.Generator)
	if err != nil {
		return nil, err
	}
	portfolioOK := false
	if pres.Status == solver.Sat {
		ok, checkErr := inst.CheckRecoveredState(gen, pres.Model)
		portfolioOK = ok && checkErr == nil
	}

	// Partitioning of the unknown start variables with stop-on-SAT.
	space := decomp.NewSpace(inst.UnknownStartVars())
	runner := pdsat.NewRunner(inst.CNF, scale.runnerConfig(scale.SearchSamples))
	est, err := runner.EvaluatePoint(ctx, space.FullPoint())
	if err != nil {
		return nil, err
	}
	res.PartitioningPredicted = est.Estimate.Value
	report, err := runner.Solve(ctx, space.FullPoint(), pdsat.SolveOptions{StopOnSat: true})
	if err != nil {
		return nil, err
	}
	res.PartitioningCost = report.CostToFirstSat
	partitioningOK := false
	if report.FoundSat {
		ok, err := inst.CheckRecoveredState(gen, report.Model)
		partitioningOK = ok && err == nil
	}
	res.BothFoundKey = portfolioOK && partitioningOK
	return res, nil
}

// TablePortfolio renders the comparison.
func (r *PortfolioVsPartitioningResult) TablePortfolio() *Table {
	unit := r.Scale.CostUnit()
	t := &Table{
		Title:  "Portfolio vs. partitioning on the same weakened A5/1 instance",
		Header: []string{"Approach", "Effort to key [" + unit + "]", "Predictable in advance?"},
		Notes: []string{
			fmt.Sprintf("instance %s; both approaches recovered a valid key: %v", r.InstanceName, r.BothFoundKey),
			"the partitioning approach additionally yields the predictive value shown in parentheses — the paper's core argument for it",
		},
	}
	t.Rows = append(t.Rows,
		[]string{fmt.Sprintf("portfolio (winner: %s)", r.PortfolioWinner), fmtCost(r.PortfolioCost), "no"},
		[]string{"partitioning (stop on SAT)", fmtCost(r.PartitioningCost),
			fmt.Sprintf("yes (F = %s)", fmtF(r.PartitioningPredicted))},
	)
	return t
}
