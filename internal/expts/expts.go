// Package expts is the experiment harness: one function per table and
// figure of the paper's evaluation section, each producing the same rows or
// series the paper reports, on instances scaled down to laptop size.
//
// The scaling substitutions are documented in README.md: the cryptanalysis
// instances are weakened (a suffix of the register state is fixed to its
// true value) so that one predictive-function evaluation takes milliseconds
// to seconds and whole decomposition families remain enumerable, while the
// code path — encoder → Monte Carlo estimator → metaheuristic search →
// leader/worker processing — is exactly the one the paper describes.  The
// absolute numbers therefore differ from the paper's cluster-scale values;
// the reproduced quantities are the relationships (which decomposition set
// wins, how prediction compares with measurement, where the methods differ).
package expts

import (
	"fmt"
	"io"
	"strings"

	"github.com/paper-repro/pdsat-go/internal/optimize"
	"github.com/paper-repro/pdsat-go/internal/pdsat"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// Scale collects the knobs that adapt the paper's experiments to the
// machine at hand.  DefaultScale is sized for a laptop-class CI run;
// PaperScale describes (but does not make feasible) the original settings
// and exists for documentation and for users with a cluster at their
// disposal.
type Scale struct {
	// Name labels the scale in reports.
	Name string

	// A51Known, BiviumKnown, GrainKnown are the number of state bits fixed
	// to their secret values in the scaled instances (0 = the paper's full
	// problem).  The known bits are a suffix of the state, matching the
	// BiviumK/GrainK weakening of the paper.
	A51Known    int
	BiviumKnown int
	GrainKnown  int
	// GrainKnownPrefix additionally fixes that many leading Grain state
	// bits (NFSR cells).  Without it a heavy suffix weakening would remove
	// every LFSR variable from the search space and the Figure 4 question —
	// does the search prefer LFSR variables? — could not be asked.
	GrainKnownPrefix int

	// A51Keystream, BiviumKeystream, GrainKeystream are the observed
	// keystream lengths.
	A51Keystream    int
	BiviumKeystream int
	GrainKeystream  int

	// EstimateSamples is N for plain predictive-function evaluations
	// (the paper used 10^4 for A5/1 and 10^5 for Bivium/Grain).
	EstimateSamples int
	// SearchSamples is N used inside the metaheuristic search, where many
	// points are evaluated.
	SearchSamples int
	// SearchEvaluations bounds the number of points visited by a search.
	SearchEvaluations int
	// Table3Samples is N for the weakened-instance predictions of Table 3.
	Table3Samples int
	// Table3Instances is the number of instances per weakened problem
	// (3 in the paper).
	Table3Instances int
	// Table3Unknowns lists the numbers of unknown state bits of the
	// weakened BiviumK/GrainK-style problems of Table 3 (the paper's
	// Bivium16/14/12 and Grain44/42/40 keep 161..165 and 116..120 unknowns;
	// here the whole decomposition family must stay enumerable, so the
	// unknown counts are small).
	Table3Unknowns []int
	// Workers is the number of computing processes.
	Workers int
	// Cores is the extrapolation target (480 in the paper's Table 3).
	Cores int
	// CostMetric selects the cost unit of the predictive function.
	CostMetric solver.CostMetric
	// SubproblemBudget caps the effort of a single sampled subproblem
	// during estimation, as a safety net against pathological samples.
	SubproblemBudget solver.Budget
	// Seed drives all pseudo-random choices.
	Seed int64
}

// DefaultScale returns the laptop-scale configuration used by the benchmarks
// and the cmd/experiments tool.
func DefaultScale() Scale {
	return Scale{
		Name:              "laptop",
		A51Known:          34,
		BiviumKnown:       57,
		GrainKnown:        30,
		GrainKnownPrefix:  70,
		A51Keystream:      96,
		BiviumKeystream:   200,
		GrainKeystream:    120,
		EstimateSamples:   200,
		SearchSamples:     30,
		SearchEvaluations: 120,
		Table3Samples:     400,
		Table3Instances:   3,
		Table3Unknowns:    []int{12, 11, 10},
		Workers:           0, // GOMAXPROCS
		Cores:             480,
		CostMetric:        solver.CostPropagations,
		SubproblemBudget:  solver.Budget{MaxConflicts: 200000},
		Seed:              1,
	}
}

// QuickScale returns a much smaller configuration used by unit tests of the
// harness itself and by -short benchmark runs.
func QuickScale() Scale {
	s := DefaultScale()
	s.Name = "quick"
	s.A51Known = 46
	s.GrainKnown = 50
	s.GrainKnownPrefix = 75
	s.A51Keystream = 48
	s.GrainKeystream = 80
	s.EstimateSamples = 30
	s.SearchSamples = 10
	s.SearchEvaluations = 45
	s.Table3Samples = 100
	s.Table3Instances = 2
	s.Table3Unknowns = []int{9, 8}
	return s
}

// PaperScale documents the original experiment sizes of the paper.  Running
// it requires cluster-scale resources; it is provided so the mapping between
// the scaled and original settings is explicit and machine-readable.
func PaperScale() Scale {
	return Scale{
		Name:              "paper",
		A51Known:          0,
		BiviumKnown:       0,
		GrainKnown:        0,
		GrainKnownPrefix:  0,
		A51Keystream:      114,
		BiviumKeystream:   200,
		GrainKeystream:    160,
		EstimateSamples:   10000,
		SearchSamples:     10000,
		SearchEvaluations: 0, // 1 day on 64-160 cores
		Table3Samples:     100000,
		Table3Instances:   3,
		Table3Unknowns:    []int{165, 163, 161}, // Bivium12/14/16 in the paper's notation
		Workers:           0,
		Cores:             480,
		CostMetric:        solver.CostWallTime,
		Seed:              1,
	}
}

// runnerConfig builds the pdsat configuration for a given sample size.
func (s Scale) runnerConfig(samples int) pdsat.Config {
	return pdsat.Config{
		SampleSize:       samples,
		Workers:          s.Workers,
		Seed:             s.Seed,
		CostMetric:       s.CostMetric,
		SolverOptions:    solver.DefaultOptions(),
		SubproblemBudget: s.SubproblemBudget,
	}
}

// searchOptions builds optimizer options from the scale.
func (s Scale) searchOptions() optimize.Options {
	o := optimize.DefaultOptions()
	o.Seed = s.Seed
	o.MaxEvaluations = s.SearchEvaluations
	return o
}

// CostUnit returns the human-readable unit of reported costs.
func (s Scale) CostUnit() string { return s.CostMetric.String() }

// Table is a generic named table with a header and rows of strings, used by
// the cmd/experiments tool to render every experiment uniformly.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Write renders the table as aligned text.
func (t *Table) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title))); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Write(&sb)
	return sb.String()
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// fmtF formats a predictive-function value the way the paper's tables do
// (scientific notation with a few significant digits).
func fmtF(v float64) string { return fmt.Sprintf("%.3e", v) }

// fmtDur formats a float cost with unit-appropriate precision.
func fmtCost(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6 || v < 1e-3:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
