package expts

import (
	"context"
	"fmt"

	"github.com/paper-repro/pdsat-go/internal/decomp"
	"github.com/paper-repro/pdsat-go/internal/montecarlo"
	"github.com/paper-repro/pdsat-go/internal/optimize"
	"github.com/paper-repro/pdsat-go/internal/pdsat"
	"github.com/paper-repro/pdsat-go/internal/solver"
	api "github.com/paper-repro/pdsat-go/pdsat"
)

// ConvergencePoint is one sample-size step of the Monte Carlo convergence
// experiment.
type ConvergencePoint struct {
	// N is the sample size.
	N int
	// Estimate is the predictive-function value at that sample size.
	Estimate float64
	// Deviation is the relative deviation from the exhaustively computed
	// total cost.
	Deviation float64
	// IntervalContainsExact reports whether the 95% CLT interval of eq. (3)
	// contains the exhaustive value.
	IntervalContainsExact bool
}

// ConvergenceResult validates eq. (2)/(3): for a decomposition set small
// enough to enumerate, the exact total cost t_{C,A}(X̃) is computed by
// processing the whole family, and Monte Carlo estimates with growing sample
// sizes are compared against it.
type ConvergenceResult struct {
	Scale Scale
	// Dimension is d of the enumerated decomposition set.
	Dimension int
	// Exact is the exhaustive total cost (eq. 2).
	Exact  float64
	Points []ConvergencePoint
}

// RunConvergence runs the Monte Carlo convergence experiment on a weakened
// A5/1 instance.
func RunConvergence(ctx context.Context, scale Scale) (*ConvergenceResult, error) {
	inst, err := A51Instance(scale, scale.Seed+7)
	if err != nil {
		return nil, err
	}
	space := decomp.NewSpace(inst.UnknownStartVars())
	// Use an enumerable subset of the start set.
	d := 10
	if space.Size() < d {
		d = space.Size()
	}
	point, err := space.PointFromVars(space.Vars()[:d])
	if err != nil {
		return nil, err
	}

	exactRunner := pdsat.NewRunner(inst.CNF, scale.runnerConfig(scale.EstimateSamples))
	report, err := exactRunner.Solve(ctx, point, pdsat.SolveOptions{})
	if err != nil {
		return nil, err
	}
	res := &ConvergenceResult{Scale: scale, Dimension: d, Exact: report.TotalCost}

	for _, n := range []int{10, 30, 100, 300, 1000} {
		if n > scale.EstimateSamples*5 {
			break
		}
		runner := pdsat.NewRunner(inst.CNF, scale.runnerConfig(n))
		pe, err := runner.EvaluatePoint(ctx, point)
		if err != nil {
			return nil, err
		}
		iv, err := pe.Estimate.ConfidenceInterval(0.95)
		contains := err == nil && iv.Contains(res.Exact)
		res.Points = append(res.Points, ConvergencePoint{
			N:                     n,
			Estimate:              pe.Estimate.Value,
			Deviation:             montecarlo.RelativeDeviation(res.Exact, pe.Estimate.Value),
			IntervalContainsExact: contains,
		})
	}
	return res, nil
}

// TableConvergence renders the convergence experiment.
func (r *ConvergenceResult) TableConvergence() *Table {
	t := &Table{
		Title:  "Monte Carlo convergence — predictive function vs. exhaustive family cost (eq. 2/3)",
		Header: []string{"N", "F estimate", "relative deviation", "95% interval contains exact"},
		Notes: []string{
			fmt.Sprintf("exact total cost of the 2^%d family: %s %s", r.Dimension, fmtF(r.Exact), r.Scale.CostUnit()),
		},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.N),
			fmtF(p.Estimate),
			fmt.Sprintf("%.1f%%", 100*p.Deviation),
			fmt.Sprintf("%v", p.IntervalContainsExact),
		})
	}
	return t
}

// SAvsTabuResult compares the two metaheuristics under an equal evaluation
// budget (the paper's Section 4.3 remark that tabu search traverses more
// points per time unit motivated using it for Bivium and Grain).
type SAvsTabuResult struct {
	Scale Scale
	// Budget is the number of objective evaluations given to each method.
	Budget int
	// SABest / TabuBest are the best predictive values found.
	SABest   float64
	TabuBest float64
	// SAPoints / TabuPoints are the numbers of distinct points evaluated.
	SAPoints   int
	TabuPoints int
	// SASeconds / TabuSeconds are the wall-clock durations.
	SASeconds   float64
	TabuSeconds float64
}

// RunSAvsTabu runs both metaheuristics on the same weakened A5/1 instance
// with the same evaluation budget.
func RunSAvsTabu(ctx context.Context, scale Scale) (*SAvsTabuResult, error) {
	inst, err := A51Instance(scale, scale.Seed+13)
	if err != nil {
		return nil, err
	}
	res := &SAvsTabuResult{Scale: scale, Budget: scale.SearchEvaluations}

	run := func(method string) (*api.SearchOutcome, error) {
		eng, serr := api.NewSession(api.FromInstance(inst), api.Config{
			Runner: scale.runnerConfig(scale.SearchSamples),
			Search: scale.searchOptions(),
			Cores:  scale.Cores,
		})
		if serr != nil {
			return nil, serr
		}
		return eng.SearchFrom(ctx, method, eng.Space().FullPoint())
	}
	sa, err := run("sa")
	if err != nil {
		return nil, err
	}
	tabu, err := run("tabu")
	if err != nil {
		return nil, err
	}
	res.SABest = sa.Result.BestValue
	res.TabuBest = tabu.Result.BestValue
	res.SAPoints = distinctPoints(sa.Result)
	res.TabuPoints = distinctPoints(tabu.Result)
	res.SASeconds = sa.Result.WallTime.Seconds()
	res.TabuSeconds = tabu.Result.WallTime.Seconds()
	return res, nil
}

func distinctPoints(r *optimize.Result) int {
	seen := map[string]bool{}
	for _, v := range r.Trace {
		seen[v.Point.Key()] = true
	}
	return len(seen)
}

// TableSAvsTabu renders the comparison.
func (r *SAvsTabuResult) TableSAvsTabu() *Table {
	t := &Table{
		Title:  "Simulated annealing vs. tabu search under an equal evaluation budget",
		Header: []string{"Method", "distinct points", "best F [" + r.Scale.CostUnit() + "]", "wall time [s]"},
		Notes: []string{
			fmt.Sprintf("budget: %d predictive-function evaluations, N=%d per evaluation", r.Budget, r.Scale.SearchSamples),
			"the paper chose tabu search for Bivium/Grain because it traverses more points per time unit",
		},
	}
	t.Rows = append(t.Rows,
		[]string{"simulated annealing", fmt.Sprintf("%d", r.SAPoints), fmtF(r.SABest), fmt.Sprintf("%.2f", r.SASeconds)},
		[]string{"tabu search", fmt.Sprintf("%d", r.TabuPoints), fmtF(r.TabuBest), fmt.Sprintf("%.2f", r.TabuSeconds)},
	)
	return t
}

// AblationResult compares solver configurations on the same sampled
// subproblems, supporting the CDCL design-choice discussion (restarts and
// phase saving on/off).
type AblationResult struct {
	Scale Scale
	Rows  []AblationRow
}

// AblationRow is one solver configuration's aggregate cost.
type AblationRow struct {
	Name     string
	MeanCost float64
}

// RunSolverAblation evaluates the same decomposition set under different
// solver options.
func RunSolverAblation(ctx context.Context, scale Scale) (*AblationResult, error) {
	inst, err := A51Instance(scale, scale.Seed+23)
	if err != nil {
		return nil, err
	}
	space := decomp.NewSpace(inst.UnknownStartVars())
	d := 12
	if space.Size() < d {
		d = space.Size()
	}
	point, err := space.PointFromVars(space.Vars()[:d])
	if err != nil {
		return nil, err
	}

	configs := []struct {
		name string
		opts solver.Options
	}{
		{"default (restarts + phase saving + minimization)", solver.DefaultOptions()},
		{"no phase saving", func() solver.Options { o := solver.DefaultOptions(); o.PhaseSaving = false; return o }()},
		{"no learned-clause minimization", func() solver.Options { o := solver.DefaultOptions(); o.MinimizeLearned = false; return o }()},
		{"rare restarts (base 10000)", func() solver.Options { o := solver.DefaultOptions(); o.RestartBase = 10000; return o }()},
	}
	res := &AblationResult{Scale: scale}
	for _, cfgCase := range configs {
		cfg := scale.runnerConfig(scale.SearchSamples)
		cfg.SolverOptions = cfgCase.opts
		runner := pdsat.NewRunner(inst.CNF, cfg)
		pe, err := runner.EvaluatePoint(ctx, point)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{Name: cfgCase.name, MeanCost: pe.Estimate.Mean})
	}
	return res, nil
}

// TableAblation renders the solver ablation.
func (r *AblationResult) TableAblation() *Table {
	t := &Table{
		Title:  "Solver ablation — mean subproblem cost under different CDCL configurations",
		Header: []string{"Configuration", "mean subproblem cost [" + r.Scale.CostUnit() + "]"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Name, fmtCost(row.MeanCost)})
	}
	return t
}
