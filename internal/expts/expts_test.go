package expts

import (
	"context"
	"strings"
	"testing"

	"github.com/paper-repro/pdsat-go/internal/crypto"
)

func TestScales(t *testing.T) {
	for _, s := range []Scale{DefaultScale(), QuickScale(), PaperScale()} {
		if s.Name == "" || s.EstimateSamples <= 0 || s.Table3Instances <= 0 {
			t.Fatalf("incomplete scale: %+v", s)
		}
		if s.CostUnit() == "" {
			t.Fatal("empty cost unit")
		}
	}
	if QuickScale().EstimateSamples >= DefaultScale().EstimateSamples {
		t.Fatal("quick scale should be smaller than the default scale")
	}
	if PaperScale().A51Known != 0 || PaperScale().BiviumKnown != 0 {
		t.Fatal("paper scale should use the full (unweakened) problems")
	}
}

func TestRunnerAndSearchConfigDerivation(t *testing.T) {
	s := QuickScale()
	rc := s.runnerConfig(42)
	if rc.SampleSize != 42 || rc.CostMetric != s.CostMetric || rc.Seed != s.Seed {
		t.Fatalf("runnerConfig: %+v", rc)
	}
	so := s.searchOptions()
	if so.MaxEvaluations != s.SearchEvaluations || so.Seed != s.Seed {
		t.Fatalf("searchOptions: %+v", so)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:  "Demo",
		Header: []string{"a", "bbb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	out := tab.String()
	for _, want := range []string{"Demo", "a", "bbb", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if fmtF(12345.678) != "1.235e+04" {
		t.Fatalf("fmtF = %q", fmtF(12345.678))
	}
	if fmtCost(0) != "0" {
		t.Fatal("fmtCost(0)")
	}
	if !strings.Contains(fmtCost(2e7), "e+07") {
		t.Fatalf("fmtCost(2e7) = %q", fmtCost(2e7))
	}
	if fmtCost(12.3456) != "12.346" {
		t.Fatalf("fmtCost(12.3456) = %q", fmtCost(12.3456))
	}
	if pad("ab", 4) != "ab  " || pad("abcd", 2) != "abcd" {
		t.Fatal("pad misbehaves")
	}
	if maxInt(3, 5) != 5 || maxInt(7, 2) != 7 {
		t.Fatal("maxInt misbehaves")
	}
}

func TestManualA51SetOnFullProblem(t *testing.T) {
	scale := DefaultScale()
	scale.A51Known = 0 // full problem: the manual set must have 31 variables
	inst, err := A51Instance(scale, 1)
	if err != nil {
		t.Fatal(err)
	}
	set := ManualA51Set(inst)
	if len(set) != 31 {
		t.Fatalf("manual S1 on the full problem has %d variables, want 31", len(set))
	}
}

func TestEibachBiviumSet(t *testing.T) {
	scale := DefaultScale()
	scale.BiviumKnown = 0
	inst, err := BiviumInstance(scale, 1)
	if err != nil {
		t.Fatal(err)
	}
	set := EibachBiviumSet(inst, 45)
	if len(set) != 45 {
		t.Fatalf("Eibach set has %d variables, want 45", len(set))
	}
	// All variables must be cells of the second register (s94..s177), i.e.
	// start variables with index >= 93.
	reg2 := map[int]bool{}
	for i := crypto.BiviumReg1Len; i < crypto.BiviumStateBits; i++ {
		reg2[int(inst.StartVars[i])] = true
	}
	for _, v := range set {
		if !reg2[int(v)] {
			t.Fatalf("variable %d of the Eibach set is not in the second register", v)
		}
	}
	// With a heavy weakening the set falls back to first-register cells but
	// keeps its size when possible.
	weakScale := DefaultScale()
	weakScale.BiviumKnown = 120
	weakInst, err := BiviumInstance(weakScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	weakSet := EibachBiviumSet(weakInst, 45)
	if len(weakSet) != 45 {
		t.Fatalf("weakened Eibach set has %d variables, want 45", len(weakSet))
	}
}

func TestTable3Problems(t *testing.T) {
	scale := QuickScale()
	probs := Table3Problems(scale)
	if len(probs) != 2*len(scale.Table3Unknowns) {
		t.Fatalf("got %d problems", len(probs))
	}
	for _, p := range probs {
		if p.Known+p.Unknown != 177 && p.Known+p.Unknown != 160 {
			t.Fatalf("inconsistent problem %+v", p)
		}
		if !strings.HasPrefix(p.Name, "Bivium") && !strings.HasPrefix(p.Name, "Grain") {
			t.Fatalf("unexpected problem name %q", p.Name)
		}
	}
}

func TestRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 9 {
		t.Fatalf("registry has only %d experiments", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Paper == "" || e.Description == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "table2", "table3", "fig1", "fig2", "fig3", "fig4", "mc-convergence", "sa-vs-tabu"} {
		if !ids[want] {
			t.Fatalf("experiment %q missing from the registry", want)
		}
	}
	if _, err := FindExperiment("table1"); err != nil {
		t.Fatal(err)
	}
	if _, err := FindExperiment("nope"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

// TestQuickExperimentsEndToEnd runs the cheapest experiments end to end at
// the quick scale; the expensive ones (full searches, Table 3) are covered
// by the benchmark harness.
func TestQuickExperimentsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping end-to-end experiment smoke test in -short mode")
	}
	scale := QuickScale()
	ctx := context.Background()

	fig1, err := FindExperiment("fig1")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := fig1.Run(ctx, scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || !strings.Contains(tables[0].String(), "R1") {
		t.Fatalf("fig1 output unexpected: %v", tables)
	}

	conv, err := RunConvergence(ctx, scale)
	if err != nil {
		t.Fatal(err)
	}
	if conv.Exact <= 0 || len(conv.Points) == 0 {
		t.Fatalf("degenerate convergence result: %+v", conv)
	}
	// The largest-sample estimate should deviate less than (or as much as)
	// the smallest-sample one in the typical case; we only require that all
	// deviations are finite and the rendering works.
	out := conv.TableConvergence().String()
	if !strings.Contains(out, "exact total cost") {
		t.Fatalf("convergence table: %s", out)
	}

	abl, err := RunSolverAblation(ctx, scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(abl.Rows) != 4 {
		t.Fatalf("ablation rows: %d", len(abl.Rows))
	}
	if !strings.Contains(abl.TableAblation().String(), "default") {
		t.Fatal("ablation table rendering")
	}
}

func TestRunA51QuickProducesAllSets(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode")
	}
	scale := QuickScale()
	r, err := RunA51(context.Background(), scale)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []SetReport{r.S1, r.S2, r.S3} {
		if s.Power == 0 || s.F <= 0 {
			t.Fatalf("degenerate set report %+v", s)
		}
	}
	t1 := r.Table1().String()
	if !strings.Contains(t1, "S1") || !strings.Contains(t1, "S3") {
		t.Fatalf("table1 rendering:\n%s", t1)
	}
	f1 := r.Figure1().String()
	f2 := r.Figure2().String()
	if !strings.Contains(f1, "R1") || !strings.Contains(f2, "tabu") {
		t.Fatal("figure rendering")
	}
	if r.SAEvaluations == 0 || r.TabuEvaluations == 0 {
		t.Fatal("searches did no work")
	}
}
