package core

import (
	"context"
	"testing"

	"repro/internal/cnf"
	"repro/internal/encoder"
	"repro/internal/optimize"
	"repro/internal/pdsat"
	"repro/internal/solver"
)

// testInstance builds a weakened A5/1 instance small enough for fast tests
// but hard enough that subproblems need real search.
func testInstance(t testing.TB, known, ksLen int, seed int64) *encoder.Instance {
	t.Helper()
	inst, err := encoder.NewInstance(encoder.A51(), encoder.Config{
		KeystreamLen: ksLen,
		KnownSuffix:  known,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func testConfig(sample int) Config {
	return Config{
		Runner: pdsat.Config{
			SampleSize: sample,
			Workers:    2,
			Seed:       1,
			CostMetric: solver.CostPropagations,
		},
		Search: optimize.Options{Seed: 1, MaxEvaluations: 30},
		Cores:  480,
	}
}

func TestFromInstanceAndFromFormula(t *testing.T) {
	inst := testInstance(t, 52, 30, 1)
	p := FromInstance(inst)
	if p.Name == "" || p.Formula == nil || len(p.StartSet) != 12 || p.Instance != inst {
		t.Fatalf("FromInstance: %+v", p)
	}
	if p.Space().Size() != 12 {
		t.Fatal("Space size")
	}

	f := cnf.New(3)
	f.AddClauseLits(1, 2, 3)
	q := FromFormula("tiny", f, []cnf.Var{1, 2})
	if q.Name != "tiny" || len(q.StartSet) != 2 || q.Instance != nil {
		t.Fatalf("FromFormula: %+v", q)
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, DefaultConfig()); err == nil {
		t.Fatal("expected error for nil problem")
	}
	f := cnf.New(2)
	f.AddClauseLits(1, 2)
	if _, err := NewEngine(&Problem{Name: "x", Formula: f}, DefaultConfig()); err == nil {
		t.Fatal("expected error for empty start set")
	}
	p := FromFormula("x", f, []cnf.Var{1, 2})
	e, err := NewEngine(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.Cores != 480 {
		t.Fatal("zero Cores should default to 480")
	}
	if e.Problem() != p || e.Space() == nil || e.Runner() == nil {
		t.Fatal("accessors misbehave")
	}
}

func TestEstimateStartSetAndSet(t *testing.T) {
	inst := testInstance(t, 48, 40, 3)
	eng, err := NewEngine(FromInstance(inst), testConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	est, err := eng.EstimateStartSet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if est.Estimate.Dimension != 16 || est.Estimate.SampleSize != 12 {
		t.Fatalf("estimate metadata: %+v", est.Estimate)
	}
	if est.Estimate.Value <= 0 {
		t.Fatalf("estimate value should be positive with the propagation cost metric, got %v", est.Estimate.Value)
	}
	if est.PerCores >= est.Estimate.Value || est.Cores != 480 {
		t.Fatalf("extrapolation wrong: %v vs %v", est.PerCores, est.Estimate.Value)
	}
	if len(est.Vars) != 16 {
		t.Fatalf("Vars = %v", est.Vars)
	}
	if est.WallTime <= 0 {
		t.Fatal("wall time")
	}

	// Estimate a strict subset.
	sub, err := eng.EstimateSet(ctx, inst.UnknownStartVars()[:10])
	if err != nil {
		t.Fatal(err)
	}
	if sub.Estimate.Dimension != 10 {
		t.Fatalf("subset dimension = %d", sub.Estimate.Dimension)
	}
	// Variables outside the start set are rejected.
	if _, err := eng.EstimateSet(ctx, []cnf.Var{cnf.Var(inst.CNF.NumVars)}); err == nil {
		t.Fatal("expected error for variable outside the search space")
	}
}

func TestSearchTabuAndSA(t *testing.T) {
	inst := testInstance(t, 50, 40, 5)
	eng, err := NewEngine(FromInstance(inst), testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	tabu, err := eng.SearchTabu(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tabu.Method != "tabu search" || tabu.Result == nil {
		t.Fatalf("outcome: %+v", tabu)
	}
	if tabu.Result.Evaluations == 0 || tabu.Result.BestPoint.Count() == 0 {
		t.Fatal("tabu search did no work")
	}
	if tabu.Best == nil || tabu.Best.Estimate.Value <= 0 {
		t.Fatal("best estimate missing")
	}

	sa, err := eng.SearchSimulatedAnnealing(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Method != "simulated annealing" || sa.Result.Evaluations == 0 {
		t.Fatalf("outcome: %+v", sa)
	}

	// SearchFrom with an explicit method and start point.
	out, err := eng.SearchFrom(ctx, "tabu", eng.Space().FullPoint())
	if err != nil {
		t.Fatal(err)
	}
	if out.Method != "tabu search" {
		t.Fatal("method name")
	}
	if _, err := eng.SearchFrom(ctx, "genetic", eng.Space().FullPoint()); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestPredictAndSolveAgreement(t *testing.T) {
	// Weakened A5/1 with 11 unknown state bits: the full family (2048
	// subproblems) is processed and compared against the prediction.
	inst := testInstance(t, 53, 48, 7)
	eng, err := NewEngine(FromInstance(inst), testConfig(160))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cmp, err := eng.PredictAndSolve(ctx, inst.UnknownStartVars())
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.FoundSat {
		t.Fatal("processing the whole family must find the secret key")
	}
	if !cmp.KeyValid {
		t.Fatal("the recovered key must reproduce the keystream")
	}
	if cmp.SetSize != 11 || cmp.Cores != 480 {
		t.Fatalf("metadata: %+v", cmp)
	}
	if cmp.Predicted1Core <= 0 || cmp.MeasuredTotal <= 0 {
		t.Fatalf("degenerate costs: %+v", cmp)
	}
	if cmp.PredictedKCores >= cmp.Predicted1Core {
		t.Fatal("k-core prediction should be smaller than 1-core prediction")
	}
	if cmp.MeasuredToFirstSat > cmp.MeasuredTotal {
		t.Fatal("cost to first SAT cannot exceed the total cost")
	}
	// The headline claim of the paper: prediction and measurement agree
	// (Table 3 reports ~8% average deviation; we allow a broad margin since
	// the sample here is small).
	if cmp.Deviation > 0.6 {
		t.Fatalf("prediction %v deviates from measurement %v by %.0f%%",
			cmp.Predicted1Core, cmp.MeasuredTotal, cmp.Deviation*100)
	}
	if cmp.WallTime <= 0 {
		t.Fatal("wall time")
	}
}

func TestSolveWithSet(t *testing.T) {
	inst := testInstance(t, 54, 40, 9)
	eng, err := NewEngine(FromInstance(inst), testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	report, err := eng.SolveWithSet(context.Background(), inst.UnknownStartVars(), pdsat.SolveOptions{StopOnSat: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.FoundSat {
		t.Fatal("expected to find the key")
	}
	if _, err := eng.SolveWithSet(context.Background(), []cnf.Var{9999}, pdsat.SolveOptions{}); err == nil {
		t.Fatal("expected error for out-of-space variable")
	}
}

func TestPredictAndSolveErrors(t *testing.T) {
	inst := testInstance(t, 54, 30, 11)
	eng, err := NewEngine(FromInstance(inst), testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.PredictAndSolve(context.Background(), []cnf.Var{9999}); err == nil {
		t.Fatal("expected error for out-of-space variable")
	}
	// A cancelled context surfaces as an error from the estimation phase.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.PredictAndSolve(ctx, inst.UnknownStartVars()); err == nil {
		t.Fatal("expected error for cancelled context")
	}
}
