// Package core is the public façade of the library: it ties the SAT
// substrate (cnf, solver), the cryptanalysis encodings (encoder), the
// decomposition machinery (decomp), the Monte Carlo estimator (montecarlo),
// the metaheuristic minimizers (optimize) and the parallel runner (pdsat)
// into the workflow of the paper:
//
//  1. build a SAT instance together with its starting decomposition set
//     (Problem),
//  2. estimate the effectiveness of a given partitioning via the predictive
//     function (Engine.EstimateSet),
//  3. search for a good partitioning with simulated annealing or tabu
//     search (Engine.SearchSimulatedAnnealing / Engine.SearchTabu), and
//  4. solve the instance by processing the decomposition family, comparing
//     the measured cost with the prediction (Engine.SolveWithSet,
//     Engine.PredictAndSolve).
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/cnf"
	"repro/internal/decomp"
	"repro/internal/encoder"
	"repro/internal/montecarlo"
	"repro/internal/optimize"
	"repro/internal/pdsat"
)

// Problem is a SAT instance plus the starting decomposition set from which
// partitionings are searched.
type Problem struct {
	// Name identifies the problem in reports.
	Name string
	// Formula is the CNF to be partitioned.
	Formula *cnf.Formula
	// StartSet is X̃_start, the initial decomposition set (for cryptanalysis
	// instances: the unknown circuit-input variables, a Strong
	// Unit-Propagation Backdoor Set).
	StartSet []cnf.Var
	// Instance optionally carries the cryptanalysis metadata (secret,
	// keystream) enabling end-to-end key checks.
	Instance *encoder.Instance
}

// FromInstance wraps a cryptanalysis instance as a Problem; the start set is
// the instance's unknown start variables.
func FromInstance(inst *encoder.Instance) *Problem {
	return &Problem{
		Name:     inst.Name,
		Formula:  inst.CNF,
		StartSet: inst.UnknownStartVars(),
		Instance: inst,
	}
}

// FromFormula wraps an arbitrary CNF and starting set as a Problem.
func FromFormula(name string, f *cnf.Formula, start []cnf.Var) *Problem {
	return &Problem{Name: name, Formula: f, StartSet: append([]cnf.Var(nil), start...)}
}

// Space returns the search space over the problem's start set.
func (p *Problem) Space() *decomp.Space { return decomp.NewSpace(p.StartSet) }

// Config configures an Engine.
type Config struct {
	// Runner configures the PDSAT-style leader/worker runner (sample size,
	// workers, cost metric, solver options).
	Runner pdsat.Config
	// Search configures the metaheuristic minimizers.
	Search optimize.Options
	// Cores is the number of cores used when extrapolating 1-core
	// predictions in reports (480 in the paper's Table 3).
	Cores int
}

// DefaultConfig returns a configuration suitable for the scaled-down
// experiments.
func DefaultConfig() Config {
	return Config{
		Runner: pdsat.DefaultConfig(),
		Search: optimize.DefaultOptions(),
		Cores:  480,
	}
}

// Engine runs estimations, searches and partitioned solving for one Problem.
type Engine struct {
	problem *Problem
	runner  *pdsat.Runner
	cfg     Config
	space   *decomp.Space
}

// NewEngine creates an engine for the problem.
func NewEngine(p *Problem, cfg Config) (*Engine, error) {
	if p == nil || p.Formula == nil {
		return nil, errors.New("core: nil problem")
	}
	if len(p.StartSet) == 0 {
		return nil, errors.New("core: empty starting decomposition set")
	}
	if err := cfg.Runner.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cores <= 0 {
		cfg.Cores = DefaultConfig().Cores
	}
	return &Engine{
		problem: p,
		runner:  pdsat.NewRunner(p.Formula, cfg.Runner),
		cfg:     cfg,
		space:   decomp.NewSpace(p.StartSet),
	}, nil
}

// Problem returns the engine's problem.
func (e *Engine) Problem() *Problem { return e.problem }

// Space returns the engine's search space.
func (e *Engine) Space() *decomp.Space { return e.space }

// Runner exposes the underlying PDSAT runner (e.g. for its statistics).
func (e *Engine) Runner() *pdsat.Runner { return e.runner }

// SetEstimate describes the predicted cost of processing the partitioning
// induced by one decomposition set.
type SetEstimate struct {
	// Vars is the decomposition set (sorted by variable index).
	Vars []cnf.Var
	// Estimate is the Monte Carlo estimate; Estimate.Value is the 1-core
	// predictive function value F.
	Estimate montecarlo.Estimate
	// PerCores is the extrapolation of the prediction to Cores cores.
	PerCores float64
	// Cores echoes the core count used for PerCores.
	Cores int
	// SatisfiableSamples counts satisfiable subproblems in the sample.
	SatisfiableSamples int
	// WallTime is the time spent computing the estimate.
	WallTime time.Duration
	// Interrupted reports whether the estimation was cancelled before the
	// full sample was processed; the estimate is then partial (computed
	// from the subproblems that did complete).
	Interrupted bool
}

// EstimatePoint evaluates the predictive function at a point of the search
// space.  Like Runner.EvaluatePoint, a cancelled estimation returns the
// partial estimate (marked Interrupted) together with the context's error,
// so Ctrl-C still yields a report.
func (e *Engine) EstimatePoint(ctx context.Context, p decomp.Point) (*SetEstimate, error) {
	pe, err := e.runner.EvaluatePoint(ctx, p)
	if pe == nil {
		return nil, err
	}
	return &SetEstimate{
		Vars:               p.SortedVars(),
		Estimate:           pe.Estimate,
		PerCores:           montecarlo.ExtrapolateCores(pe.Estimate.Value, e.cfg.Cores),
		Cores:              e.cfg.Cores,
		SatisfiableSamples: pe.SatisfiableSamples,
		WallTime:           pe.WallTime,
		Interrupted:        pe.Interrupted,
	}, err
}

// EstimateSet evaluates the predictive function for an explicit
// decomposition set (which must be a subset of the start set).
func (e *Engine) EstimateSet(ctx context.Context, vars []cnf.Var) (*SetEstimate, error) {
	p, err := e.space.PointFromVars(vars)
	if err != nil {
		return nil, err
	}
	return e.EstimatePoint(ctx, p)
}

// EstimateStartSet evaluates the predictive function at X̃_start itself.
func (e *Engine) EstimateStartSet(ctx context.Context) (*SetEstimate, error) {
	return e.EstimatePoint(ctx, e.space.FullPoint())
}

// SearchOutcome is the result of a decomposition-set search.
type SearchOutcome struct {
	// Method names the metaheuristic ("simulated annealing" or "tabu search").
	Method string
	// Result is the raw optimizer result (best point, trace, stop reason).
	Result *optimize.Result
	// Best is the estimate of the best point found.
	Best *SetEstimate
}

// SearchSimulatedAnnealing searches for a good decomposition set with
// Algorithm 1, starting from the full start set (as in the paper).
func (e *Engine) SearchSimulatedAnnealing(ctx context.Context) (*SearchOutcome, error) {
	return e.searchFrom(ctx, "simulated annealing", e.space.FullPoint())
}

// SearchTabu searches for a good decomposition set with Algorithm 2,
// starting from the full start set.
func (e *Engine) SearchTabu(ctx context.Context) (*SearchOutcome, error) {
	return e.searchFrom(ctx, "tabu search", e.space.FullPoint())
}

// SearchFrom runs the chosen method ("sa" or "tabu") from an explicit start
// point.
func (e *Engine) SearchFrom(ctx context.Context, method string, start decomp.Point) (*SearchOutcome, error) {
	switch method {
	case "sa", "annealing", "simulated annealing":
		return e.searchFrom(ctx, "simulated annealing", start)
	case "tabu", "tabu search":
		return e.searchFrom(ctx, "tabu search", start)
	default:
		return nil, fmt.Errorf("core: unknown search method %q", method)
	}
}

func (e *Engine) searchFrom(ctx context.Context, method string, start decomp.Point) (*SearchOutcome, error) {
	var (
		res *optimize.Result
		err error
	)
	switch method {
	case "simulated annealing":
		res, err = optimize.SimulatedAnnealing(ctx, e.runner, start, e.cfg.Search)
	default:
		res, err = optimize.TabuSearch(ctx, e.runner, start, e.cfg.Search)
	}
	if err != nil {
		return nil, err
	}
	best, err := e.EstimatePoint(ctx, res.BestPoint)
	if best == nil && err != nil {
		// The search itself succeeded; return its result even if the final
		// re-estimation was interrupted before producing anything.
		return &SearchOutcome{Method: method, Result: res}, nil
	}
	return &SearchOutcome{Method: method, Result: res, Best: best}, nil
}

// Comparison relates a prediction with the measured cost of actually
// processing the decomposition family (one row of Table 3).
type Comparison struct {
	// Problem names the instance.
	Problem string
	// SetSize is |X̃_best|.
	SetSize int
	// Predicted1Core is the predictive function value F (1 CPU core).
	Predicted1Core float64
	// PredictedKCores is F divided by Cores.
	PredictedKCores float64
	// Cores is the extrapolation core count.
	Cores int
	// MeasuredTotal is the measured cost of processing the whole family
	// (1-core sequential units, same metric as the prediction).
	MeasuredTotal float64
	// MeasuredToFirstSat is the measured cost until the first satisfiable
	// subproblem.
	MeasuredToFirstSat float64
	// FoundSat reports whether a satisfiable subproblem (a key) was found.
	FoundSat bool
	// KeyValid reports whether the recovered state reproduces the observed
	// keystream (only meaningful when the problem carries an Instance).
	KeyValid bool
	// Deviation is |MeasuredTotal-Predicted1Core| / Predicted1Core.
	Deviation float64
	// WallTime is the wall-clock time of the solving run.
	WallTime time.Duration
}

// SolveWithSet processes the decomposition family induced by the given set
// and returns the solve report (no prediction).
func (e *Engine) SolveWithSet(ctx context.Context, vars []cnf.Var, opts pdsat.SolveOptions) (*pdsat.SolveReport, error) {
	p, err := e.space.PointFromVars(vars)
	if err != nil {
		return nil, err
	}
	return e.runner.Solve(ctx, p, opts)
}

// PredictAndSolve estimates the partitioning induced by the decomposition
// set and then actually processes the whole family, returning the
// prediction-versus-measurement comparison of Table 3.
func (e *Engine) PredictAndSolve(ctx context.Context, vars []cnf.Var) (*Comparison, error) {
	p, err := e.space.PointFromVars(vars)
	if err != nil {
		return nil, err
	}
	est, err := e.EstimatePoint(ctx, p)
	if err != nil {
		return nil, err
	}
	report, err := e.runner.Solve(ctx, p, pdsat.SolveOptions{})
	if err != nil {
		return nil, err
	}
	cmp := &Comparison{
		Problem:            e.problem.Name,
		SetSize:            p.Count(),
		Predicted1Core:     est.Estimate.Value,
		PredictedKCores:    est.PerCores,
		Cores:              est.Cores,
		MeasuredTotal:      report.TotalCost,
		MeasuredToFirstSat: report.CostToFirstSat,
		FoundSat:           report.FoundSat,
		Deviation:          montecarlo.RelativeDeviation(est.Estimate.Value, report.TotalCost),
		WallTime:           report.WallTime,
	}
	if report.FoundSat && e.problem.Instance != nil {
		gen, err := encoder.ByName(e.problem.Instance.Generator)
		if err == nil {
			ok, checkErr := e.problem.Instance.CheckRecoveredState(gen, report.Model)
			cmp.KeyValid = ok && checkErr == nil
		}
	}
	return cmp, nil
}
