// Package montecarlo implements the statistical core of the paper: the
// Monte Carlo estimation of the expected subproblem cost E[ξ_{C,A}(X̃)] and
// the predictive function
//
//	F_{C,A}(X̃) = 2^d · (1/N) · Σ_{j=1..N} ζ_j            (eq. 5)
//
// together with the Central-Limit-Theorem confidence interval of eq. (3),
//
//	Pr( | (1/N)Σζ_j − E[ξ] | < δ_γ·σ/√N ) = γ,  γ = Φ(δ_γ).
//
// The package is agnostic to what the cost ζ measures (wall-clock seconds as
// in the paper, or deterministic solver effort such as conflicts).
package montecarlo

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Sample holds observed costs ζ_1..ζ_N of randomly chosen subproblems.
type Sample struct {
	values []float64
}

// NewSample creates a sample from observed values (the slice is copied).
func NewSample(values []float64) *Sample {
	return &Sample{values: append([]float64(nil), values...)}
}

// Add appends an observation.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// Len returns the number of observations N.
func (s *Sample) Len() int { return len(s.values) }

// Values returns a copy of the observations.
func (s *Sample) Values() []float64 { return append([]float64(nil), s.values...) }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Variance returns the unbiased sample variance (0 if fewer than two
// observations).
func (s *Sample) Variance() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.values {
		d := v - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// StdDev returns the sample standard deviation σ.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns σ/√N, the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(len(s.values)))
}

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	m := 0.0
	for i, v := range s.values {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 {
	m := 0.0
	for i, v := range s.values {
		if i == 0 || v < m {
			m = v
		}
	}
	return m
}

// Estimate is the result of evaluating the predictive function at one
// decomposition set.
type Estimate struct {
	// Dimension is d = |X̃|.
	Dimension int `json:"dimension"`
	// SampleSize is N, the number of random subproblems solved.
	SampleSize int `json:"sample_size"`
	// Mean is the sample mean of the observed costs (an estimate of E[ξ]).
	Mean float64 `json:"mean"`
	// StdDev is the sample standard deviation of the observed costs.
	StdDev float64 `json:"stddev"`
	// Value is the predictive function F = 2^d · Mean, in the same cost
	// units as the observations (seconds in the paper).
	Value float64 `json:"value"`
}

// NewEstimate computes the predictive function value from a sample.
func NewEstimate(dimension int, s *Sample) Estimate {
	return Estimate{
		Dimension:  dimension,
		SampleSize: s.Len(),
		Mean:       s.Mean(),
		StdDev:     s.StdDev(),
		Value:      math.Exp2(float64(dimension)) * s.Mean(),
	}
}

// ConfidenceInterval returns the γ-confidence interval [Lo, Hi] for the
// *total* cost t_{C,A}(X̃) = 2^d·E[ξ], obtained by scaling the CLT interval
// of eq. (3) for E[ξ] by 2^d.  gamma must lie in (0,1).
func (e Estimate) ConfidenceInterval(gamma float64) (Interval, error) {
	if e.SampleSize == 0 {
		return Interval{}, errors.New("montecarlo: empty sample")
	}
	if gamma <= 0 || gamma >= 1 {
		return Interval{}, fmt.Errorf("montecarlo: confidence level %v outside (0,1)", gamma)
	}
	// eq. (3): the half-width for the mean is δ_γ·σ/√N with γ = Φ(δ_γ).
	half := ConfidenceHalfWidth(e.StdDev, e.SampleSize, gamma)
	scale := math.Exp2(float64(e.Dimension))
	return Interval{
		Lo: scale * (e.Mean - half),
		Hi: scale * (e.Mean + half),
	}, nil
}

// ConfidenceHalfWidth returns δ_γ·σ/√n, the half-width of the eq.-3 CLT
// confidence interval for the sample mean at two-sided confidence level
// gamma (γ = Φ(δ_γ), so the two-sided quantile is Φ⁻¹((1+γ)/2)).  It is the
// quantity the staged-sampling early stop of the evaluation engine compares
// against ε·mean.  Degenerate inputs follow the statistics: a zero standard
// deviation yields a zero half-width (the sample carries no spread), a
// sample of fewer than one observation carries no information and yields
// +Inf, and a confidence level outside (0,1) yields NaN.
func ConfidenceHalfWidth(stddev float64, n int, gamma float64) float64 {
	if gamma <= 0 || gamma >= 1 {
		return math.NaN()
	}
	if n < 1 {
		return math.Inf(1)
	}
	return NormalQuantile((1+gamma)/2) * stddev / math.Sqrt(float64(n))
}

// Interval is a closed real interval.
type Interval struct{ Lo, Hi float64 }

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Width returns Hi-Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// ExtrapolateCores divides a 1-core predictive value by the number of
// cores.  Because the subproblems of a partitioning are independent, the
// paper extrapolates the sequential estimate to an arbitrary parallel or
// distributed system this way (Section 4, Table 3).
func ExtrapolateCores(value float64, cores int) float64 {
	if cores <= 1 {
		return value
	}
	return value / float64(cores)
}

// RelativeDeviation returns |actual-predicted|/predicted, the measure used
// in Section 4.4 ("on average the real solving time deviates from the
// estimation by about 8%").
func RelativeDeviation(predicted, actual float64) float64 {
	if predicted == 0 {
		if actual == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(actual-predicted) / math.Abs(predicted)
}

// NormalQuantile returns Φ⁻¹(p), the standard normal quantile, using the
// Acklam rational approximation (relative error below 1.15e-9), which is
// ample for confidence-interval construction.
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p == 0.5 {
			return 0
		}
		return math.NaN()
	}
	// Coefficients of the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	const pHigh = 1 - pLow
	var q, r, x float64
	switch {
	case p < pLow:
		q = math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q = p - 0.5
		r = q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q = math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	return x
}

// NormalCDF returns Φ(x), the standard normal cumulative distribution
// function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// SampleIndices draws n independent uniformly random d-bit assignments using
// the provided RNG; each assignment is returned as a []bool of length d.
// This is the "random sample" (4) of the paper.
func SampleIndices(rng *rand.Rand, n, d int) [][]bool {
	out := make([][]bool, n)
	for i := range out {
		alpha := make([]bool, d)
		for j := range alpha {
			alpha[j] = rng.Intn(2) == 1
		}
		out[i] = alpha
	}
	return out
}

// ExhaustiveTotal computes the exact total cost t_{C,A}(X̃) = Σ over all 2^d
// assignments of cost(α), by full enumeration.  Only usable for small d; it
// exists to validate the Monte Carlo estimate in tests and in the
// convergence experiment.
func ExhaustiveTotal(d int, cost func(alpha []bool) float64) (float64, error) {
	if d < 0 || d > 24 {
		return 0, fmt.Errorf("montecarlo: refusing to enumerate 2^%d assignments", d)
	}
	total := 0.0
	n := uint64(1) << uint(d)
	alpha := make([]bool, d)
	for idx := uint64(0); idx < n; idx++ {
		for j := 0; j < d; j++ {
			alpha[j] = idx&(1<<uint(j)) != 0
		}
		total += cost(alpha)
	}
	return total, nil
}
