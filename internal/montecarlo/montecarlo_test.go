package montecarlo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSampleStatistics(t *testing.T) {
	s := NewSample([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Unbiased variance of this classic data set is 32/7.
	if got := s.Variance(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := s.StdDev(); math.Abs(got-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("StdDev = %v", got)
	}
	if s.Len() != 8 || s.Min() != 2 || s.Max() != 9 {
		t.Fatal("Len/Min/Max misbehave")
	}
	if se := s.StdErr(); math.Abs(se-s.StdDev()/math.Sqrt(8)) > 1e-12 {
		t.Fatalf("StdErr = %v", se)
	}
	vals := s.Values()
	vals[0] = 100
	if s.Values()[0] == 100 {
		t.Fatal("Values should return a copy")
	}
}

func TestEmptyAndSingletonSamples(t *testing.T) {
	e := NewSample(nil)
	if e.Mean() != 0 || e.Variance() != 0 || e.StdErr() != 0 || e.Min() != 0 || e.Max() != 0 {
		t.Fatal("empty sample statistics should be zero")
	}
	s := NewSample([]float64{3})
	if s.Mean() != 3 || s.Variance() != 0 {
		t.Fatal("singleton sample statistics")
	}
	s.Add(5)
	if s.Len() != 2 || s.Mean() != 4 {
		t.Fatal("Add misbehaves")
	}
}

func TestNewEstimate(t *testing.T) {
	s := NewSample([]float64{1, 2, 3})
	e := NewEstimate(10, s)
	if e.Dimension != 10 || e.SampleSize != 3 {
		t.Fatal("estimate metadata")
	}
	if math.Abs(e.Mean-2) > 1e-12 {
		t.Fatal("estimate mean")
	}
	want := math.Exp2(10) * 2
	if math.Abs(e.Value-want) > 1e-9 {
		t.Fatalf("F = %v, want %v", e.Value, want)
	}
}

func TestEstimateMatchesEquationTwoExactly(t *testing.T) {
	// For the *full* population the estimate must equal the exact total
	// t = 2^d · E[ξ] (eq. 2): sample the whole space once each.
	d := 6
	cost := func(alpha []bool) float64 {
		// Arbitrary deterministic cost: 1 + number of true bits squared.
		n := 0.0
		for _, b := range alpha {
			if b {
				n++
			}
		}
		return 1 + n*n
	}
	exact, err := ExhaustiveTotal(d, cost)
	if err != nil {
		t.Fatal(err)
	}
	var values []float64
	n := 1 << d
	for idx := 0; idx < n; idx++ {
		alpha := make([]bool, d)
		for j := 0; j < d; j++ {
			alpha[j] = idx&(1<<j) != 0
		}
		values = append(values, cost(alpha))
	}
	est := NewEstimate(d, NewSample(values))
	if math.Abs(est.Value-exact) > 1e-9 {
		t.Fatalf("full-population estimate %v != exact %v", est.Value, exact)
	}
}

func TestMonteCarloConvergesToExhaustive(t *testing.T) {
	// The Monte Carlo estimate with a large sample should land close to the
	// exhaustive total (this is the eq. 2/3 validation experiment in
	// miniature).
	d := 10
	cost := func(alpha []bool) float64 {
		v := 1.0
		for i, b := range alpha {
			if b {
				v += float64(i)
			}
		}
		return v
	}
	exact, err := ExhaustiveTotal(d, cost)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var values []float64
	for _, alpha := range SampleIndices(rng, 4000, d) {
		values = append(values, cost(alpha))
	}
	est := NewEstimate(d, NewSample(values))
	if RelativeDeviation(exact, est.Value) > 0.05 {
		t.Fatalf("Monte Carlo estimate %v deviates more than 5%% from exact %v", est.Value, exact)
	}
	iv, err := est.ConfidenceInterval(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(exact) {
		t.Fatalf("99%% confidence interval %v does not contain the exact value %v", iv, exact)
	}
	if iv.Width() <= 0 {
		t.Fatal("interval width should be positive")
	}
}

func TestConfidenceIntervalErrors(t *testing.T) {
	est := NewEstimate(4, NewSample(nil))
	if _, err := est.ConfidenceInterval(0.95); err == nil {
		t.Fatal("expected error for empty sample")
	}
	est = NewEstimate(4, NewSample([]float64{1, 2}))
	for _, g := range []float64{0, 1, -0.5, 1.5} {
		if _, err := est.ConfidenceInterval(g); err == nil {
			t.Fatalf("expected error for gamma=%v", g)
		}
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{Lo: 1, Hi: 3}
	if !iv.Contains(1) || !iv.Contains(3) || !iv.Contains(2) || iv.Contains(0) || iv.Contains(4) {
		t.Fatal("Contains misbehaves")
	}
	if iv.Width() != 2 {
		t.Fatal("Width misbehaves")
	}
}

func TestExtrapolateCores(t *testing.T) {
	if ExtrapolateCores(1000, 1) != 1000 || ExtrapolateCores(1000, 0) != 1000 {
		t.Fatal("1-core extrapolation should be the identity")
	}
	if ExtrapolateCores(1000, 480) != 1000.0/480 {
		t.Fatal("480-core extrapolation")
	}
	// Nonsensical core counts are treated as "no parallelism", never as a
	// sign flip or a division by a negative count.
	if ExtrapolateCores(1000, -4) != 1000 {
		t.Fatal("negative core counts must behave like 1 core")
	}
	// A zero estimate (e.g. a degenerate cost metric) stays zero for every
	// core count instead of producing NaN or negative zero surprises.
	for _, cores := range []int{-1, 0, 1, 480} {
		if got := ExtrapolateCores(0, cores); got != 0 {
			t.Fatalf("ExtrapolateCores(0, %d) = %v, want 0", cores, got)
		}
	}
}

func TestRelativeDeviation(t *testing.T) {
	if RelativeDeviation(100, 108) != 0.08 {
		t.Fatalf("got %v", RelativeDeviation(100, 108))
	}
	if RelativeDeviation(100, 92) != 0.08 {
		t.Fatalf("got %v", RelativeDeviation(100, 92))
	}
	if RelativeDeviation(0, 0) != 0 {
		t.Fatal("0/0 deviation should be 0")
	}
	if !math.IsInf(RelativeDeviation(0, 5), 1) {
		t.Fatal("deviation from a zero prediction should be +Inf")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := map[float64]float64{
		0.5:     0,
		0.975:   1.959964,
		0.995:   2.575829,
		0.84134: 1.0,
		0.02275: -2.0,
	}
	for p, want := range cases {
		got := NormalQuantile(p)
		if math.Abs(got-want) > 2e-4 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", p, got, want)
		}
	}
	if !math.IsNaN(NormalQuantile(0)) || !math.IsNaN(NormalQuantile(1)) {
		t.Fatal("quantile outside (0,1) should be NaN")
	}
}

func TestNormalCDFAndQuantileAreInverses(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 0.001 + 0.998*rng.Float64()
		x := NormalQuantile(p)
		return math.Abs(NormalCDF(x)-p) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSampleIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sample := SampleIndices(rng, 20, 7)
	if len(sample) != 20 {
		t.Fatal("sample size")
	}
	for _, alpha := range sample {
		if len(alpha) != 7 {
			t.Fatal("assignment width")
		}
	}
	// Deterministic for a fixed seed.
	rng2 := rand.New(rand.NewSource(9))
	sample2 := SampleIndices(rng2, 20, 7)
	for i := range sample {
		for j := range sample[i] {
			if sample[i][j] != sample2[i][j] {
				t.Fatal("sampling is not deterministic for a fixed seed")
			}
		}
	}
}

func TestExhaustiveTotalBounds(t *testing.T) {
	if _, err := ExhaustiveTotal(30, func([]bool) float64 { return 1 }); err == nil {
		t.Fatal("expected refusal for d=30")
	}
	if _, err := ExhaustiveTotal(-1, func([]bool) float64 { return 1 }); err == nil {
		t.Fatal("expected refusal for d=-1")
	}
	total, err := ExhaustiveTotal(0, func([]bool) float64 { return 7 })
	if err != nil || total != 7 {
		t.Fatalf("d=0 total = %v, %v", total, err)
	}
	total, err = ExhaustiveTotal(3, func([]bool) float64 { return 1 })
	if err != nil || total != 8 {
		t.Fatalf("d=3 constant total = %v", total)
	}
}

// Property: the CLT interval at higher confidence is wider.
func TestConfidenceMonotonicityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		values := make([]float64, 30)
		for i := range values {
			values[i] = rng.Float64() * 100
		}
		est := NewEstimate(5, NewSample(values))
		iv90, err1 := est.ConfidenceInterval(0.90)
		iv99, err2 := est.ConfidenceInterval(0.99)
		if err1 != nil || err2 != nil {
			return false
		}
		return iv99.Width() >= iv90.Width()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the predictive function is linear in the cost scale — scaling
// every observation by c scales F by c (this is why conflicts vs. seconds
// only changes units, not the ordering of decomposition sets).
func TestEstimateScaleInvarianceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		scale := 0.5 + rng.Float64()*10
		values := make([]float64, 20)
		scaled := make([]float64, 20)
		for i := range values {
			values[i] = rng.Float64() * 50
			scaled[i] = values[i] * scale
		}
		e1 := NewEstimate(8, NewSample(values))
		e2 := NewEstimate(8, NewSample(scaled))
		return math.Abs(e2.Value-scale*e1.Value) < 1e-6*math.Max(1, e1.Value)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestConfidenceHalfWidth pins the eq.-3 half-width δ_γ·σ/√N at the two
// confidence levels the paper's tables use.  At γ=0.95 the two-sided
// quantile is Φ⁻¹(0.975) ≈ 1.959964, at γ=0.99 it is Φ⁻¹(0.995) ≈ 2.575829.
func TestConfidenceHalfWidth(t *testing.T) {
	cases := []struct {
		stddev float64
		n      int
		gamma  float64
		want   float64
	}{
		{1, 1, 0.95, 1.9599640},
		{1, 100, 0.95, 0.19599640},
		{2, 25, 0.95, 0.78398559},
		{1, 1, 0.99, 2.5758293},
		{1, 100, 0.99, 0.25758293},
		{3, 9, 0.99, 2.5758293},
	}
	for _, c := range cases {
		got := ConfidenceHalfWidth(c.stddev, c.n, c.gamma)
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("ConfidenceHalfWidth(%v, %d, %v) = %v, want %v",
				c.stddev, c.n, c.gamma, got, c.want)
		}
	}
}

// TestConfidenceHalfWidthMatchesInterval cross-checks the helper against
// Estimate.ConfidenceInterval: the interval's width is 2·2^d·halfwidth.
func TestConfidenceHalfWidthMatchesInterval(t *testing.T) {
	s := NewSample([]float64{3, 7, 4, 9, 1, 6, 2, 8})
	e := NewEstimate(5, s)
	for _, gamma := range []float64{0.95, 0.99} {
		iv, err := e.ConfidenceInterval(gamma)
		if err != nil {
			t.Fatal(err)
		}
		want := 2 * math.Exp2(5) * ConfidenceHalfWidth(e.StdDev, e.SampleSize, gamma)
		if math.Abs(iv.Width()-want) > 1e-9*want {
			t.Errorf("γ=%v: interval width %v, want %v", gamma, iv.Width(), want)
		}
	}
}

// TestConfidenceHalfWidthDegenerate covers the degenerate inputs the staged
// early stop must handle: σ=0 (constant sample) has zero width at any level
// and size, N=1 has no variance information (σ computed as 0 upstream, but
// the helper itself still scales an explicit σ by √1), N≤0 carries no
// information, and confidence levels outside (0,1) are undefined.
func TestConfidenceHalfWidthDegenerate(t *testing.T) {
	if got := ConfidenceHalfWidth(0, 50, 0.95); got != 0 {
		t.Errorf("σ=0: half-width %v, want 0", got)
	}
	if got := ConfidenceHalfWidth(0, 1, 0.99); got != 0 {
		t.Errorf("σ=0, N=1: half-width %v, want 0", got)
	}
	// N=1 with a nonzero σ: the half-width equals the full quantile·σ.
	if got, want := ConfidenceHalfWidth(2, 1, 0.95), 2*NormalQuantile(0.975); math.Abs(got-want) > 1e-9 {
		t.Errorf("N=1: half-width %v, want %v", got, want)
	}
	if got := ConfidenceHalfWidth(1, 0, 0.95); !math.IsInf(got, 1) {
		t.Errorf("N=0: half-width %v, want +Inf", got)
	}
	if got := ConfidenceHalfWidth(1, -3, 0.95); !math.IsInf(got, 1) {
		t.Errorf("N<0: half-width %v, want +Inf", got)
	}
	for _, gamma := range []float64{0, 1, -0.5, 1.5} {
		if got := ConfidenceHalfWidth(1, 10, gamma); !math.IsNaN(got) {
			t.Errorf("γ=%v: half-width %v, want NaN", gamma, got)
		}
	}
	// A singleton Sample reports σ=0 (variance needs two observations), so
	// the end-to-end early-stop quantity is 0 — which is why the engine
	// additionally requires n ≥ 2 before trusting the criterion.
	single := NewSample([]float64{7})
	if got := ConfidenceHalfWidth(single.StdDev(), single.Len(), 0.95); got != 0 {
		t.Errorf("singleton sample: half-width %v, want 0", got)
	}
}
