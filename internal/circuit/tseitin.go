package circuit

import (
	"fmt"

	"github.com/paper-repro/pdsat-go/internal/cnf"
)

// Encoding is the result of the Tseitin transformation of a circuit.
type Encoding struct {
	// CNF is the transformed formula.  Satisfying assignments restricted to
	// InputVars are exactly the circuit inputs; the values of OutputVars
	// equal the circuit outputs on those inputs.
	CNF *cnf.Formula
	// GateVars maps each gate ID to its CNF variable.
	GateVars []cnf.Var
	// InputVars are the variables of the primary inputs, in input order.
	// They always occupy variables 1..NumInputs, which makes them directly
	// usable as the Strong Unit-Propagation Backdoor Set (the X̃_start of
	// the paper).
	InputVars []cnf.Var
	// OutputVars are the variables of the outputs, in output order.
	OutputVars []cnf.Var
}

// Encode performs the Tseitin transformation of the circuit.  Input gates
// are assigned variables 1..NumInputs in input order; every other
// non-trivial gate gets a fresh variable.
func (c *Circuit) Encode() (*Encoding, error) {
	enc := &Encoding{
		CNF:      cnf.New(0),
		GateVars: make([]cnf.Var, len(c.gates)),
	}
	next := cnf.Var(1)
	newVar := func() cnf.Var {
		v := next
		next++
		return v
	}
	// Inputs first so they occupy 1..NumInputs.
	for _, id := range c.inputs {
		v := newVar()
		enc.GateVars[id] = v
		enc.InputVars = append(enc.InputVars, v)
	}
	// trueVar is lazily created when a constant gate needs a variable.
	var trueVar cnf.Var
	getTrueVar := func() cnf.Var {
		if trueVar == 0 {
			trueVar = newVar()
			enc.CNF.AddClause(cnf.Clause{cnf.NewLit(trueVar, true)})
		}
		return trueVar
	}

	lit := func(id GateID) cnf.Lit { return cnf.NewLit(enc.GateVars[id], true) }

	for id := range c.gates {
		g := &c.gates[id]
		switch g.Type {
		case GateInput:
			// already assigned
		case GateConst:
			tv := getTrueVar()
			if g.Const {
				enc.GateVars[id] = tv
			} else {
				// Represent false as a variable forced to false.
				v := newVar()
				enc.GateVars[id] = v
				enc.CNF.AddClause(cnf.Clause{cnf.NewLit(v, false)})
			}
		case GateNot:
			// Reuse the operand variable with opposite polarity is not
			// possible in this representation (GateVars holds variables, not
			// literals), so introduce y ↔ ¬a.
			y := newVar()
			enc.GateVars[id] = y
			a := lit(g.In[0])
			enc.CNF.AddClause(cnf.Clause{cnf.NewLit(y, false), a.Neg()})
			enc.CNF.AddClause(cnf.Clause{cnf.NewLit(y, true), a})
		case GateAnd:
			y := newVar()
			enc.GateVars[id] = y
			yl := cnf.NewLit(y, true)
			long := make(cnf.Clause, 0, len(g.In)+1)
			long = append(long, yl)
			for _, in := range g.In {
				a := lit(in)
				enc.CNF.AddClause(cnf.Clause{yl.Neg(), a})
				long = append(long, a.Neg())
			}
			enc.CNF.AddClause(long)
		case GateOr:
			y := newVar()
			enc.GateVars[id] = y
			yl := cnf.NewLit(y, true)
			long := make(cnf.Clause, 0, len(g.In)+1)
			long = append(long, yl.Neg())
			for _, in := range g.In {
				a := lit(in)
				enc.CNF.AddClause(cnf.Clause{yl, a.Neg()})
				long = append(long, a)
			}
			enc.CNF.AddClause(long)
		case GateXor:
			// Encode n-ary XOR as a chain of binary XORs.
			if len(g.In) == 0 {
				return nil, fmt.Errorf("circuit: empty xor gate %d", id)
			}
			cur := enc.GateVars[g.In[0]]
			for k := 1; k < len(g.In); k++ {
				b := enc.GateVars[g.In[k]]
				y := newVar()
				addXor2(enc.CNF, y, cur, b)
				cur = y
			}
			enc.GateVars[id] = cur
		case GateMaj:
			y := newVar()
			enc.GateVars[id] = y
			a, b, d := lit(g.In[0]), lit(g.In[1]), lit(g.In[2])
			yl := cnf.NewLit(y, true)
			// y ↔ at-least-two-of(a,b,d)
			enc.CNF.AddClause(cnf.Clause{yl.Neg(), a, b})
			enc.CNF.AddClause(cnf.Clause{yl.Neg(), a, d})
			enc.CNF.AddClause(cnf.Clause{yl.Neg(), b, d})
			enc.CNF.AddClause(cnf.Clause{yl, a.Neg(), b.Neg()})
			enc.CNF.AddClause(cnf.Clause{yl, a.Neg(), d.Neg()})
			enc.CNF.AddClause(cnf.Clause{yl, b.Neg(), d.Neg()})
		case GateMux:
			y := newVar()
			enc.GateVars[id] = y
			s, a, b := lit(g.In[0]), lit(g.In[1]), lit(g.In[2])
			yl := cnf.NewLit(y, true)
			// y ↔ (s ? a : b)
			enc.CNF.AddClause(cnf.Clause{s.Neg(), a.Neg(), yl})
			enc.CNF.AddClause(cnf.Clause{s.Neg(), a, yl.Neg()})
			enc.CNF.AddClause(cnf.Clause{s, b.Neg(), yl})
			enc.CNF.AddClause(cnf.Clause{s, b, yl.Neg()})
			// Redundant but propagation-helpful: if a and b agree, y agrees.
			enc.CNF.AddClause(cnf.Clause{a.Neg(), b.Neg(), yl})
			enc.CNF.AddClause(cnf.Clause{a, b, yl.Neg()})
		default:
			return nil, fmt.Errorf("circuit: cannot encode gate type %v", g.Type)
		}
	}
	if enc.CNF.NumVars < int(next-1) {
		enc.CNF.NumVars = int(next - 1)
	}
	for _, id := range c.outputs {
		enc.OutputVars = append(enc.OutputVars, enc.GateVars[id])
	}
	return enc, nil
}

// addXor2 adds clauses for y ↔ a ⊕ b.
func addXor2(f *cnf.Formula, y, a, b cnf.Var) {
	yl := cnf.NewLit(y, true)
	al := cnf.NewLit(a, true)
	bl := cnf.NewLit(b, true)
	f.AddClause(cnf.Clause{yl.Neg(), al, bl})
	f.AddClause(cnf.Clause{yl.Neg(), al.Neg(), bl.Neg()})
	f.AddClause(cnf.Clause{yl, al.Neg(), bl})
	f.AddClause(cnf.Clause{yl, al, bl.Neg()})
}

// ConstrainOutputs appends unit clauses to the encoding's CNF forcing the
// circuit outputs to the given values.  This is how an observed keystream is
// injected into a cryptanalysis instance.
func (e *Encoding) ConstrainOutputs(values []bool) error {
	if len(values) != len(e.OutputVars) {
		return fmt.Errorf("circuit: got %d output values, want %d", len(values), len(e.OutputVars))
	}
	for i, v := range e.OutputVars {
		e.CNF.AddClause(cnf.Clause{cnf.NewLit(v, values[i])})
	}
	return nil
}

// InputAssignment converts input values into a cnf.Assignment over the
// encoding's input variables (useful in tests to check a known secret
// satisfies the instance).
func (e *Encoding) InputAssignment(inputs []bool) (cnf.Assignment, error) {
	if len(inputs) != len(e.InputVars) {
		return nil, fmt.Errorf("circuit: got %d inputs, want %d", len(inputs), len(e.InputVars))
	}
	a := cnf.NewAssignment(e.CNF.NumVars)
	for i, v := range e.InputVars {
		if inputs[i] {
			a.Set(v, cnf.True)
		} else {
			a.Set(v, cnf.False)
		}
	}
	return a, nil
}
