// Package circuit provides a Boolean-circuit representation (a DAG of
// gates) together with evaluation and the Tseitin transformation into CNF.
//
// It plays the role of the Transalg tool used in the paper: the cryptanalysis
// problems of the A5/1, Bivium and Grain keystream generators are described
// as circuits whose inputs are the unknown register states and whose outputs
// are the produced keystream bits; the Tseitin encoding then yields the CNF
// on which partitionings are searched.
package circuit

import (
	"fmt"
)

// GateType enumerates the supported gate kinds.
type GateType int

// Supported gate kinds.
const (
	// GateInput is a primary input of the circuit.
	GateInput GateType = iota
	// GateConst is a Boolean constant.
	GateConst
	// GateNot is negation (one operand).
	GateNot
	// GateAnd is an n-ary conjunction (n >= 1).
	GateAnd
	// GateOr is an n-ary disjunction (n >= 1).
	GateOr
	// GateXor is an n-ary exclusive or (n >= 1).
	GateXor
	// GateMaj is the majority of exactly three operands.
	GateMaj
	// GateMux is if-then-else: Mux(s, a, b) = s ? a : b (three operands).
	GateMux
)

// String implements fmt.Stringer.
func (t GateType) String() string {
	switch t {
	case GateInput:
		return "input"
	case GateConst:
		return "const"
	case GateNot:
		return "not"
	case GateAnd:
		return "and"
	case GateOr:
		return "or"
	case GateXor:
		return "xor"
	case GateMaj:
		return "maj"
	case GateMux:
		return "mux"
	default:
		return fmt.Sprintf("gate(%d)", int(t))
	}
}

// GateID identifies a gate within its circuit.
type GateID int

// Gate is a single node of the circuit DAG.
type Gate struct {
	Type GateType
	// In are the operand gate IDs (empty for inputs and constants).
	In []GateID
	// Const is the value of a GateConst.
	Const bool
	// Name is an optional label (used for inputs and outputs).
	Name string
}

// Circuit is a combinational Boolean circuit.
type Circuit struct {
	gates   []Gate
	inputs  []GateID
	outputs []GateID
	// structural-hashing table: key -> existing gate
	hash map[gateKey]GateID
}

type gateKey struct {
	typ        GateType
	a, b, c    GateID
	constValue bool
	arity      int
}

// New creates an empty circuit.
func New() *Circuit {
	return &Circuit{hash: make(map[gateKey]GateID)}
}

// NumGates returns the number of gates in the circuit.
func (c *Circuit) NumGates() int { return len(c.gates) }

// NumInputs returns the number of primary inputs.
func (c *Circuit) NumInputs() int { return len(c.inputs) }

// NumOutputs returns the number of outputs.
func (c *Circuit) NumOutputs() int { return len(c.outputs) }

// Inputs returns the primary input gate IDs in creation order.
func (c *Circuit) Inputs() []GateID { return append([]GateID(nil), c.inputs...) }

// Outputs returns the output gate IDs in the order they were marked.
func (c *Circuit) Outputs() []GateID { return append([]GateID(nil), c.outputs...) }

// Gate returns the gate with the given ID.
func (c *Circuit) Gate(id GateID) Gate { return c.gates[id] }

// InputName returns the name of the i-th input.
func (c *Circuit) InputName(i int) string { return c.gates[c.inputs[i]].Name }

func (c *Circuit) add(g Gate) GateID {
	id := GateID(len(c.gates))
	c.gates = append(c.gates, g)
	return id
}

// Input creates a new primary input gate.
func (c *Circuit) Input(name string) GateID {
	id := c.add(Gate{Type: GateInput, Name: name})
	c.inputs = append(c.inputs, id)
	return id
}

// Const creates (or reuses) a constant gate.
func (c *Circuit) Const(v bool) GateID {
	key := gateKey{typ: GateConst, constValue: v}
	if id, ok := c.hash[key]; ok {
		return id
	}
	id := c.add(Gate{Type: GateConst, Const: v})
	c.hash[key] = id
	return id
}

func (c *Circuit) hashed2(typ GateType, a, b GateID) (GateID, bool) {
	if b < a && (typ == GateAnd || typ == GateOr || typ == GateXor) {
		a, b = b, a
	}
	key := gateKey{typ: typ, a: a, b: b, arity: 2}
	id, ok := c.hash[key]
	return id, ok
}

func (c *Circuit) store2(typ GateType, a, b, id GateID) {
	if b < a && (typ == GateAnd || typ == GateOr || typ == GateXor) {
		a, b = b, a
	}
	c.hash[gateKey{typ: typ, a: a, b: b, arity: 2}] = id
}

// Not returns the negation of a, with structural hashing and constant
// folding.
func (c *Circuit) Not(a GateID) GateID {
	if g := c.gates[a]; g.Type == GateConst {
		return c.Const(!g.Const)
	}
	if g := c.gates[a]; g.Type == GateNot {
		return g.In[0] // double negation
	}
	key := gateKey{typ: GateNot, a: a, arity: 1}
	if id, ok := c.hash[key]; ok {
		return id
	}
	id := c.add(Gate{Type: GateNot, In: []GateID{a}})
	c.hash[key] = id
	return id
}

// And2 returns the conjunction of two gates.
func (c *Circuit) And2(a, b GateID) GateID {
	ga, gb := c.gates[a], c.gates[b]
	switch {
	case ga.Type == GateConst && !ga.Const:
		return c.Const(false)
	case gb.Type == GateConst && !gb.Const:
		return c.Const(false)
	case ga.Type == GateConst && ga.Const:
		return b
	case gb.Type == GateConst && gb.Const:
		return a
	case a == b:
		return a
	}
	if id, ok := c.hashed2(GateAnd, a, b); ok {
		return id
	}
	id := c.add(Gate{Type: GateAnd, In: []GateID{a, b}})
	c.store2(GateAnd, a, b, id)
	return id
}

// Or2 returns the disjunction of two gates.
func (c *Circuit) Or2(a, b GateID) GateID {
	ga, gb := c.gates[a], c.gates[b]
	switch {
	case ga.Type == GateConst && ga.Const:
		return c.Const(true)
	case gb.Type == GateConst && gb.Const:
		return c.Const(true)
	case ga.Type == GateConst && !ga.Const:
		return b
	case gb.Type == GateConst && !gb.Const:
		return a
	case a == b:
		return a
	}
	if id, ok := c.hashed2(GateOr, a, b); ok {
		return id
	}
	id := c.add(Gate{Type: GateOr, In: []GateID{a, b}})
	c.store2(GateOr, a, b, id)
	return id
}

// Xor2 returns the exclusive or of two gates.
func (c *Circuit) Xor2(a, b GateID) GateID {
	ga, gb := c.gates[a], c.gates[b]
	switch {
	case ga.Type == GateConst && gb.Type == GateConst:
		return c.Const(ga.Const != gb.Const)
	case ga.Type == GateConst && !ga.Const:
		return b
	case gb.Type == GateConst && !gb.Const:
		return a
	case ga.Type == GateConst && ga.Const:
		return c.Not(b)
	case gb.Type == GateConst && gb.Const:
		return c.Not(a)
	case a == b:
		return c.Const(false)
	}
	if id, ok := c.hashed2(GateXor, a, b); ok {
		return id
	}
	id := c.add(Gate{Type: GateXor, In: []GateID{a, b}})
	c.store2(GateXor, a, b, id)
	return id
}

// And returns the conjunction of one or more gates.
func (c *Circuit) And(xs ...GateID) GateID {
	return c.fold(xs, c.And2, true)
}

// Or returns the disjunction of one or more gates.
func (c *Circuit) Or(xs ...GateID) GateID {
	return c.fold(xs, c.Or2, false)
}

// Xor returns the exclusive or of one or more gates.
func (c *Circuit) Xor(xs ...GateID) GateID {
	return c.fold(xs, c.Xor2, false)
}

func (c *Circuit) fold(xs []GateID, f func(a, b GateID) GateID, emptyVal bool) GateID {
	if len(xs) == 0 {
		return c.Const(emptyVal)
	}
	acc := xs[0]
	for _, x := range xs[1:] {
		acc = f(acc, x)
	}
	return acc
}

// Maj returns the majority of three gates.
func (c *Circuit) Maj(a, b, d GateID) GateID {
	key := gateKey{typ: GateMaj, a: a, b: b, c: d, arity: 3}
	if id, ok := c.hash[key]; ok {
		return id
	}
	id := c.add(Gate{Type: GateMaj, In: []GateID{a, b, d}})
	c.hash[key] = id
	return id
}

// Mux returns s ? a : b.
func (c *Circuit) Mux(s, a, b GateID) GateID {
	if a == b {
		return a
	}
	if g := c.gates[s]; g.Type == GateConst {
		if g.Const {
			return a
		}
		return b
	}
	key := gateKey{typ: GateMux, a: s, b: a, c: b, arity: 3}
	if id, ok := c.hash[key]; ok {
		return id
	}
	id := c.add(Gate{Type: GateMux, In: []GateID{s, a, b}})
	c.hash[key] = id
	return id
}

// MarkOutput appends the gate to the circuit's output list and returns its
// output index.
func (c *Circuit) MarkOutput(id GateID, name string) int {
	if name != "" && c.gates[id].Name == "" {
		c.gates[id].Name = name
	}
	c.outputs = append(c.outputs, id)
	return len(c.outputs) - 1
}

// Evaluate computes the output values for the given input values (one per
// primary input, in creation order).
func (c *Circuit) Evaluate(inputs []bool) ([]bool, error) {
	if len(inputs) != len(c.inputs) {
		return nil, fmt.Errorf("circuit: got %d inputs, want %d", len(inputs), len(c.inputs))
	}
	values := make([]bool, len(c.gates))
	inputIdx := make(map[GateID]int, len(c.inputs))
	for i, id := range c.inputs {
		inputIdx[id] = i
	}
	for id := range c.gates {
		g := &c.gates[id]
		switch g.Type {
		case GateInput:
			values[id] = inputs[inputIdx[GateID(id)]]
		case GateConst:
			values[id] = g.Const
		case GateNot:
			values[id] = !values[g.In[0]]
		case GateAnd:
			v := true
			for _, in := range g.In {
				v = v && values[in]
			}
			values[id] = v
		case GateOr:
			v := false
			for _, in := range g.In {
				v = v || values[in]
			}
			values[id] = v
		case GateXor:
			v := false
			for _, in := range g.In {
				v = v != values[in]
			}
			values[id] = v
		case GateMaj:
			a, b, d := values[g.In[0]], values[g.In[1]], values[g.In[2]]
			values[id] = (a && b) || (a && d) || (b && d)
		case GateMux:
			if values[g.In[0]] {
				values[id] = values[g.In[1]]
			} else {
				values[id] = values[g.In[2]]
			}
		default:
			return nil, fmt.Errorf("circuit: unknown gate type %v", g.Type)
		}
	}
	out := make([]bool, len(c.outputs))
	for i, id := range c.outputs {
		out[i] = values[id]
	}
	return out, nil
}

// String returns a short human-readable summary.
func (c *Circuit) String() string {
	return fmt.Sprintf("circuit{gates=%d inputs=%d outputs=%d}", len(c.gates), len(c.inputs), len(c.outputs))
}
