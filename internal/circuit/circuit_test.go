package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

func TestGateConstruction(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	x := c.And2(a, b)
	y := c.Or2(a, b)
	z := c.Xor2(a, b)
	n := c.Not(a)
	m := c.Maj(a, b, x)
	mx := c.Mux(a, b, x)
	for _, id := range []GateID{x, y, z, n, m, mx} {
		if int(id) >= c.NumGates() {
			t.Fatalf("gate id %d out of range", id)
		}
	}
	if c.NumInputs() != 2 {
		t.Fatalf("NumInputs = %d", c.NumInputs())
	}
	if c.InputName(0) != "a" || c.InputName(1) != "b" {
		t.Fatal("input names lost")
	}
	c.MarkOutput(z, "z")
	if c.NumOutputs() != 1 {
		t.Fatal("MarkOutput failed")
	}
	if c.Gate(z).Type != GateXor {
		t.Fatalf("gate type = %v", c.Gate(z).Type)
	}
}

func TestStructuralHashing(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	x1 := c.And2(a, b)
	x2 := c.And2(b, a) // commutative: should be the same gate
	if x1 != x2 {
		t.Fatal("And2 should be structurally hashed")
	}
	if c.Xor2(a, b) != c.Xor2(a, b) {
		t.Fatal("Xor2 should be structurally hashed")
	}
	if c.Not(c.Not(a)) != a {
		t.Fatal("double negation should simplify")
	}
}

func TestConstantFolding(t *testing.T) {
	c := New()
	a := c.Input("a")
	tru := c.Const(true)
	fls := c.Const(false)
	if c.And2(a, fls) != fls {
		t.Fatal("a AND false should fold to false")
	}
	if c.And2(a, tru) != a {
		t.Fatal("a AND true should fold to a")
	}
	if c.Or2(a, tru) != tru {
		t.Fatal("a OR true should fold to true")
	}
	if c.Or2(a, fls) != a {
		t.Fatal("a OR false should fold to a")
	}
	if c.Xor2(a, fls) != a {
		t.Fatal("a XOR false should fold to a")
	}
	if c.Xor2(a, a) != fls {
		t.Fatal("a XOR a should fold to false")
	}
	if c.Xor2(a, tru) != c.Not(a) {
		t.Fatal("a XOR true should fold to NOT a")
	}
	if c.Mux(tru, a, fls) != a || c.Mux(fls, a, fls) != fls {
		t.Fatal("Mux with constant selector should fold")
	}
	if c.Mux(a, tru, tru) != tru {
		t.Fatal("Mux with equal branches should fold")
	}
	if c.Const(true) != tru {
		t.Fatal("Const should be hashed")
	}
}

func TestEvaluateTruthTables(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	d := c.Input("d")
	c.MarkOutput(c.And2(a, b), "and")
	c.MarkOutput(c.Or2(a, b), "or")
	c.MarkOutput(c.Xor2(a, b), "xor")
	c.MarkOutput(c.Not(a), "not")
	c.MarkOutput(c.Maj(a, b, d), "maj")
	c.MarkOutput(c.Mux(a, b, d), "mux")

	for mask := 0; mask < 8; mask++ {
		av, bv, dv := mask&1 == 1, mask&2 == 2, mask&4 == 4
		out, err := c.Evaluate([]bool{av, bv, dv})
		if err != nil {
			t.Fatal(err)
		}
		maj := (av && bv) || (av && dv) || (bv && dv)
		mux := dv
		if av {
			mux = bv
		}
		want := []bool{av && bv, av || bv, av != bv, !av, maj, mux}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("inputs a=%v b=%v d=%v: output %d = %v, want %v", av, bv, dv, i, out[i], want[i])
			}
		}
	}
}

func TestEvaluateInputMismatch(t *testing.T) {
	c := New()
	c.Input("a")
	if _, err := c.Evaluate([]bool{}); err == nil {
		t.Fatal("expected error for wrong input count")
	}
}

func TestNaryGates(t *testing.T) {
	c := New()
	ins := make([]GateID, 5)
	for i := range ins {
		ins[i] = c.Input("x")
	}
	c.MarkOutput(c.And(ins...), "and")
	c.MarkOutput(c.Or(ins...), "or")
	c.MarkOutput(c.Xor(ins...), "xor")
	for mask := 0; mask < 32; mask++ {
		vals := make([]bool, 5)
		allTrue, anyTrue, parity := true, false, false
		for i := range vals {
			vals[i] = mask&(1<<i) != 0
			allTrue = allTrue && vals[i]
			anyTrue = anyTrue || vals[i]
			parity = parity != vals[i]
		}
		out, err := c.Evaluate(vals)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != allTrue || out[1] != anyTrue || out[2] != parity {
			t.Fatalf("mask %d: got %v", mask, out)
		}
	}
	// Empty n-ary gates fold to their neutral element.
	if c.Gate(c.And()).Type != GateConst || !c.Gate(c.And()).Const {
		t.Fatal("empty And should be the constant true")
	}
	if g := c.Gate(c.Xor()); g.Type != GateConst || g.Const {
		t.Fatal("empty Xor should be the constant false")
	}
}

func TestGateTypeString(t *testing.T) {
	types := []GateType{GateInput, GateConst, GateNot, GateAnd, GateOr, GateXor, GateMaj, GateMux, GateType(99)}
	for _, typ := range types {
		if typ.String() == "" {
			t.Fatalf("empty string for %d", int(typ))
		}
	}
}

func TestCircuitString(t *testing.T) {
	c := New()
	c.Input("a")
	if c.String() == "" {
		t.Fatal("String should not be empty")
	}
}

// randomCircuit builds a random circuit over n inputs with depth layers.
func randomCircuit(rng *rand.Rand, n, extraGates int) *Circuit {
	c := New()
	pool := make([]GateID, 0, n+extraGates)
	for i := 0; i < n; i++ {
		pool = append(pool, c.Input("in"))
	}
	pick := func() GateID { return pool[rng.Intn(len(pool))] }
	for i := 0; i < extraGates; i++ {
		var g GateID
		switch rng.Intn(6) {
		case 0:
			g = c.And2(pick(), pick())
		case 1:
			g = c.Or2(pick(), pick())
		case 2:
			g = c.Xor2(pick(), pick())
		case 3:
			g = c.Not(pick())
		case 4:
			g = c.Maj(pick(), pick(), pick())
		default:
			g = c.Mux(pick(), pick(), pick())
		}
		pool = append(pool, g)
	}
	// Mark a handful of outputs.
	for i := 0; i < 3; i++ {
		c.MarkOutput(pick(), "")
	}
	return c
}

// TestTseitinAgreesWithEvaluation checks, for random circuits and random
// inputs, that the Tseitin encoding constrained to the circuit outputs is
// satisfied exactly when the inputs produce those outputs.
func TestTseitinAgreesWithEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 50; iter++ {
		numIn := 3 + rng.Intn(5)
		c := randomCircuit(rng, numIn, 10+rng.Intn(30))
		enc, err := c.Encode()
		if err != nil {
			t.Fatal(err)
		}
		inputs := make([]bool, numIn)
		for i := range inputs {
			inputs[i] = rng.Intn(2) == 1
		}
		outputs, err := c.Evaluate(inputs)
		if err != nil {
			t.Fatal(err)
		}
		// Constrain the encoding to the computed outputs and fix the inputs:
		// the formula must be satisfiable.
		f := enc.CNF.Clone()
		for i, v := range enc.OutputVars {
			f.AddClause(cnf.Clause{cnf.NewLit(v, outputs[i])})
		}
		for i, v := range enc.InputVars {
			f.AddClause(cnf.Clause{cnf.NewLit(v, inputs[i])})
		}
		res := solver.NewDefault(f).Solve()
		if res.Status != solver.Sat {
			t.Fatalf("iter %d: encoding with correct outputs should be SAT, got %v", iter, res.Status)
		}
		// Flip one output: with the same fixed inputs the formula must be
		// unsatisfiable.
		g := enc.CNF.Clone()
		flipped := append([]bool(nil), outputs...)
		flipped[0] = !flipped[0]
		for i, v := range enc.OutputVars {
			g.AddClause(cnf.Clause{cnf.NewLit(v, flipped[i])})
		}
		for i, v := range enc.InputVars {
			g.AddClause(cnf.Clause{cnf.NewLit(v, inputs[i])})
		}
		res = solver.NewDefault(g).Solve()
		if res.Status != solver.Unsat {
			t.Fatalf("iter %d: encoding with flipped output should be UNSAT, got %v", iter, res.Status)
		}
	}
}

// Property: for a fixed small circuit, the set of satisfying assignments of
// the Tseitin encoding projected to inputs+outputs is exactly the graph of
// the circuit function.
func TestTseitinFunctionalProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 4, 12)
		enc, err := c.Encode()
		if err != nil {
			return false
		}
		inputs := make([]bool, 4)
		for i := range inputs {
			inputs[i] = rng.Intn(2) == 1
		}
		want, err := c.Evaluate(inputs)
		if err != nil {
			return false
		}
		f := enc.CNF.Clone()
		for i, v := range enc.InputVars {
			f.AddClause(cnf.Clause{cnf.NewLit(v, inputs[i])})
		}
		res := solver.NewDefault(f).Solve()
		if res.Status != solver.Sat {
			return false
		}
		// With inputs fixed, unit propagation through the Tseitin clauses
		// must force the outputs to the evaluated values.
		for i, v := range enc.OutputVars {
			got := res.Model.Value(v) == cnf.True
			if got != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEncodeInputVarsAreFirst(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	c.MarkOutput(c.And2(a, b), "out")
	enc, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.InputVars) != 2 || enc.InputVars[0] != 1 || enc.InputVars[1] != 2 {
		t.Fatalf("input variables should be 1..n, got %v", enc.InputVars)
	}
	if len(enc.OutputVars) != 1 {
		t.Fatalf("OutputVars = %v", enc.OutputVars)
	}
	if len(enc.GateVars) != c.NumGates() {
		t.Fatal("GateVars should cover all gates")
	}
}

func TestConstrainOutputs(t *testing.T) {
	c := New()
	a := c.Input("a")
	c.MarkOutput(c.Not(a), "na")
	enc, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.ConstrainOutputs([]bool{true}); err != nil {
		t.Fatal(err)
	}
	res := solver.NewDefault(enc.CNF).Solve()
	if res.Status != solver.Sat {
		t.Fatalf("expected SAT, got %v", res.Status)
	}
	if res.Model.Value(enc.InputVars[0]) != cnf.False {
		t.Fatal("output=true should force input a=false")
	}
	if err := enc.ConstrainOutputs([]bool{true, false}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestInputAssignment(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	c.MarkOutput(c.Xor2(a, b), "x")
	enc, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	asg, err := enc.InputAssignment([]bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if asg.Value(enc.InputVars[0]) != cnf.True || asg.Value(enc.InputVars[1]) != cnf.False {
		t.Fatal("InputAssignment misbehaves")
	}
	if _, err := enc.InputAssignment([]bool{true}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestEncodeConstGates(t *testing.T) {
	c := New()
	a := c.Input("a")
	tr := c.Const(true)
	fl := c.Const(false)
	// Maj with constants cannot fold (Maj has no folding), so the encoder
	// must handle constant operands through their CNF variables.
	c.MarkOutput(c.Maj(a, tr, fl), "m")
	enc, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.ConstrainOutputs([]bool{true}); err != nil {
		t.Fatal(err)
	}
	res := solver.NewDefault(enc.CNF).Solve()
	if res.Status != solver.Sat {
		t.Fatalf("expected SAT, got %v", res.Status)
	}
	if res.Model.Value(enc.InputVars[0]) != cnf.True {
		t.Fatal("Maj(a,1,0)=1 should force a=true")
	}
}
