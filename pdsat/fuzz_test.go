package pdsat

import (
	"encoding/json"
	"sync"
	"testing"

	"github.com/paper-repro/pdsat-go/internal/cnf"
)

// fuzzSession lazily builds one tiny session shared by all fuzz iterations
// (spec validation never solves anything, so the formula can be trivial).
var fuzzSession = sync.OnceValues(func() (*Session, error) {
	f := cnf.New(4)
	f.AddClauseLits(cnf.Lit(1), cnf.Lit(2))
	f.AddClauseLits(cnf.Lit(-1), cnf.Lit(3))
	f.AddClauseLits(cnf.Lit(-2), cnf.Lit(4))
	return NewSession(FromFormula("fuzz", f, []cnf.Var{1, 2, 3}), Config{
		Runner: RunnerConfig{SampleSize: 4, Workers: 1},
	})
})

// FuzzServerJobSpec throws arbitrary JSON at the HTTP job-submission
// decoding path — submitRequest → spec() → validate — which must reject
// garbage with errors, never panic or accept a spec whose run would blow up
// (oversized fleets, out-of-range jitter, negative budgets).
func FuzzServerJobSpec(f *testing.F) {
	for _, seed := range []string{
		`{"kind":"estimate"}`,
		`{"kind":"estimate","vars":[1,2],"policy":{"prune":true,"stages":3,"epsilon":0.1,"cache":true}}`,
		`{"kind":"search","method":"sa","start":[1,2,3]}`,
		`{"kind":"solve","stop_on_sat":true,"max_subproblems":16}`,
		`{"kind":"fleet","members":[{"method":"tabu","count":4},{"method":"sa","count":4}],"seed":7}`,
		`{"kind":"fleet","members":[{"method":"tabu","count":2000000000}]}`,
		`{"kind":"fleet","members":[{"method":"tabu"}],"jitter":-5,"target_f":-1}`,
		`{"kind":"fleet","members":[],"max_evaluations":-3}`,
		`{"kind":"search","method":"genetic"}`,
		`{"kind":"estimate","vars":[0,-7,99999999]}`,
		`{"kind":"solve","policy":{"stages":2}}`,
		`{"kind":""}`,
		`{}`,
		`{"kind":"fleet","members":[{"method":"tabu","start":[4]}],"seed":-9223372036854775808}`,
		`not json at all`,
		`{"kind":"estimate","vars":"nope"}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := fuzzSession()
		if err != nil {
			t.Fatal(err)
		}
		var req submitRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		spec, err := req.spec()
		if err != nil {
			return
		}
		if err := spec.validate(s); err != nil {
			return
		}
		// An accepted fleet spec must have expanded within bounds; re-expand
		// to check the invariant the runner relies on.
		if fj, ok := spec.(FleetJob); ok {
			members, err := fj.expand(s)
			if err != nil {
				t.Fatalf("validated fleet spec fails to expand: %v", err)
			}
			if len(members) == 0 || len(members) > MaxFleetMembers {
				t.Fatalf("validated fleet spec expands to %d members", len(members))
			}
		}
	})
}
