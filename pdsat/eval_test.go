package pdsat_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/paper-repro/pdsat-go/pdsat"
)

// policyConfig is testConfig with an evaluation policy on the session.
func policyConfig(sample int, pol pdsat.EvalPolicy) pdsat.Config {
	cfg := testConfig(sample)
	cfg.Runner.Policy = pol
	return cfg
}

// TestEstimateJobCacheAcrossJobs checks the tentpole's cross-search
// F-cache: two estimate jobs on the same decomposition set share one
// evaluation — the second is served from the session cache, emits a
// CacheHit event and reproduces the first job's estimate exactly.
func TestEstimateJobCacheAcrossJobs(t *testing.T) {
	inst := testInstance(t, 52, 30, 1)
	s, err := pdsat.NewSession(pdsat.FromInstance(inst),
		policyConfig(12, pdsat.EvalPolicy{Cache: true}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()

	first, err := s.EstimateStartSet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first estimate cannot be a cache hit")
	}

	j, err := s.EstimateJob(ctx, pdsat.EstimateJob{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	second := res.Estimate
	if !second.CacheHit {
		t.Fatalf("second estimate was not served from the cache: %+v", second)
	}
	if second.Estimate != first.Estimate {
		t.Fatalf("cached estimate differs: %+v vs %+v", second.Estimate, first.Estimate)
	}

	var hits int
	for e := range j.Events() {
		switch ev := e.(type) {
		case pdsat.CacheHit:
			hits++
			if ev.Job != j.ID() || ev.Value != first.Estimate.Value {
				t.Fatalf("bad CacheHit event: %+v", ev)
			}
		case pdsat.SampleProgress:
			t.Fatalf("cache-served job must not report sample progress: %+v", ev)
		}
	}
	if hits != 1 {
		t.Fatalf("got %d CacheHit events, want 1", hits)
	}

	stats := s.Stats()
	if stats.Cache.Hits != 1 || stats.Cache.Size == 0 {
		t.Fatalf("session cache stats: %+v", stats.Cache)
	}
	// One real evaluation total: the cache hit solved nothing.
	if stats.Evaluations != 1 {
		t.Fatalf("runner evaluations = %d, want 1", stats.Evaluations)
	}
}

// TestCacheDisabledIsIsolated checks that without the policy the session
// cache stays untouched and every job pays for its own evaluation.
func TestCacheDisabledIsIsolated(t *testing.T) {
	inst := testInstance(t, 52, 30, 1)
	s := newTestSession(t, inst, 12)
	ctx := t.Context()
	if _, err := s.EstimateStartSet(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EstimateStartSet(ctx); err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	if stats.Cache.Hits != 0 || stats.Cache.Misses != 0 || stats.Cache.Size != 0 {
		t.Fatalf("disabled cache was used: %+v", stats.Cache)
	}
	if stats.Evaluations != 2 {
		t.Fatalf("evaluations = %d, want 2", stats.Evaluations)
	}
}

// TestSearchJobPolicyOverride checks the per-job policy override end to
// end: a search with the default policy solves far fewer subproblems than
// the session's (policy-off) default would, emits engine events, and the
// session counters record the savings.
func TestSearchJobPolicyOverride(t *testing.T) {
	inst := testInstance(t, 50, 36, 3)

	// Baseline: policy off.
	base := newTestSession(t, inst, 16)
	ctx := t.Context()
	baseOutcome, err := base.SearchTabu(ctx)
	if err != nil {
		t.Fatal(err)
	}
	baseStats := base.Stats()

	// Same search, default policy via the job spec (session default off).
	s := newTestSession(t, inst, 16)
	pol := pdsat.DefaultEvalPolicy()
	j, err := s.SearchJob(ctx, pdsat.SearchJob{Policy: &pol})
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	if stats.SubproblemsSolved >= baseStats.SubproblemsSolved {
		t.Fatalf("policy saved nothing: %d vs %d subproblems",
			stats.SubproblemsSolved, baseStats.SubproblemsSolved)
	}
	// Staged estimates may steer the search onto a different trajectory
	// (the bit-identity guarantee only covers the disabled policy), but the
	// cheap search must stay competitive: no worse than twice the
	// exhaustive baseline's best F on this fixed seed (here it actually
	// finds a better set).
	if res.Search.Result.BestValue <= 0 || res.Search.Result.Evaluations == 0 {
		t.Fatalf("degenerate search outcome under policy: %+v", res.Search.Result)
	}
	if res.Search.Result.BestValue > 2*baseOutcome.Result.BestValue {
		t.Fatalf("policy search best F %v much worse than baseline %v",
			res.Search.Result.BestValue, baseOutcome.Result.BestValue)
	}
	// The final best-point re-estimation runs through the same engine and
	// must be a free cache hit on the search's own evaluation.
	if res.Search.Best == nil || !res.Search.Best.CacheHit {
		t.Fatalf("best-point estimate was not served from the cache: %+v", res.Search.Best)
	}
}

// TestServerStatsAndPolicySubmission drives the evaluation policy through
// the HTTP layer: submit an estimate job with a policy override, then read
// the engine counters from GET /v1/stats.
func TestServerStatsAndPolicySubmission(t *testing.T) {
	inst := testInstance(t, 52, 30, 1)
	s, err := pdsat.NewSession(pdsat.FromInstance(inst), testConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(pdsat.NewServer(s))
	defer ts.Close()

	submit := func(body string) map[string]any {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit status %d", resp.StatusCode)
		}
		var st map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	// Two estimations of the same set with the cache enabled per job: the
	// second must hit.
	for i := 0; i < 2; i++ {
		st := submit(`{"kind":"estimate","policy":{"cache":true,"stages":2,"epsilon":0.2}}`)
		id := st["id"].(string)
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %q not found", id)
		}
		<-j.Done()
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Evaluations        int `json:"evaluations"`
		PrunedEvaluations  int `json:"pruned_evaluations"`
		SubproblemsSolved  int `json:"subproblems_solved"`
		SubproblemsAborted int `json:"subproblems_aborted"`
		Cache              struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
			Size   int    `json:"size"`
		} `json:"cache"`
		Solver struct {
			Conflicts    uint64 `json:"conflicts"`
			Propagations uint64 `json:"propagations"`
			Learned      uint64 `json:"learned"`
			LearnedCore  uint64 `json:"learned_core"`
			LearnedMid   uint64 `json:"learned_mid"`
			LearnedLocal uint64 `json:"learned_local"`
			ReduceDBs    uint64 `json:"reduce_dbs"`
			ArenaBytes   uint64 `json:"arena_bytes"`
		} `json:"solver"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Evaluations != 1 || stats.Cache.Hits != 1 || stats.Cache.Size != 1 {
		t.Fatalf("stats after cached re-estimation: %+v", stats)
	}
	if stats.SubproblemsSolved == 0 {
		t.Fatal("no subproblem accounted")
	}
	// The aggregated solver-core counters ride along: any real solving
	// propagates, keeps an arena, and partitions its learned clauses into
	// the three LBD tiers.
	if stats.Solver.Propagations == 0 {
		t.Fatalf("no solver propagations surfaced in /v1/stats: %+v", stats.Solver)
	}
	if stats.Solver.ArenaBytes == 0 {
		t.Fatalf("arena gauge missing from /v1/stats: %+v", stats.Solver)
	}
	if got := stats.Solver.LearnedCore + stats.Solver.LearnedMid + stats.Solver.LearnedLocal; got != stats.Solver.Learned {
		t.Fatalf("tier counters do not partition learned clauses: %+v", stats.Solver)
	}

	// An invalid policy must be rejected at submission.
	resp2, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"estimate","policy":{"stages":-2}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid policy accepted: status %d", resp2.StatusCode)
	}
}

// TestEvalPolicyValidateAtSubmit checks eager spec validation of policies.
func TestEvalPolicyValidateAtSubmit(t *testing.T) {
	inst := testInstance(t, 52, 30, 1)
	s := newTestSession(t, inst, 8)
	bad := pdsat.EvalPolicy{Gamma: 2}
	if _, err := s.EstimateJob(t.Context(), pdsat.EstimateJob{Policy: &bad}); err == nil {
		t.Fatal("invalid estimate policy accepted")
	}
	if _, err := s.SearchJob(t.Context(), pdsat.SearchJob{Policy: &bad}); err == nil {
		t.Fatal("invalid search policy accepted")
	}
}
