package pdsat

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Server exposes a Session's job-oriented API over HTTP/JSON (standard
// library only).  Endpoints:
//
//	POST /v1/jobs              submit a job ({"kind":"estimate"|"search"|
//	                           "solve"|"fleet", ...}; fleet jobs carry
//	                           {"members":[{"method":"tabu","count":4},...]}
//	                           plus seed/jitter/target_f/max_evaluations)
//	GET  /v1/jobs              list all jobs
//	GET  /v1/jobs/{id}         one job's status and (when finished) result
//	GET  /v1/jobs/{id}/events  stream the job's events as NDJSON
//	                           (or SSE with Accept: text/event-stream);
//	                           ?member=N narrows a fleet job's stream to
//	                           member N's events (plus the terminal "done")
//	POST /v1/jobs/{id}/cancel  cancel a job
//	DELETE /v1/jobs/{id}       evict a finished job (free its history)
//	GET  /v1/problem           the served problem's metadata
//	GET  /v1/stats             evaluation-engine counters (pruned
//	                           evaluations, aborted subproblems, F-cache
//	                           hits/misses)
//
// Jobs submitted over HTTP are bound to the session, not to the submitting
// request: they keep running after the request returns and are cancelled
// only via the cancel endpoint or Server/Session shutdown.  The event
// stream replays from the job's start, so clients may attach at any time —
// including after completion — and still observe the full ordered stream
// terminated by the single "done" event.  Replay means jobs and their event
// histories are retained until deleted: a long-lived server should DELETE
// finished jobs it no longer needs, or its memory grows with every job.
type Server struct {
	session *Session
	mux     *http.ServeMux
}

// NewServer creates an HTTP handler serving the session's job API.
func NewServer(s *Session) *Server {
	srv := &Server{session: s, mux: http.NewServeMux()}
	srv.mux.HandleFunc("POST /v1/jobs", srv.handleSubmit)
	srv.mux.HandleFunc("GET /v1/jobs", srv.handleList)
	srv.mux.HandleFunc("GET /v1/jobs/{id}", srv.handleStatus)
	srv.mux.HandleFunc("GET /v1/jobs/{id}/events", srv.handleEvents)
	srv.mux.HandleFunc("POST /v1/jobs/{id}/cancel", srv.handleCancel)
	srv.mux.HandleFunc("DELETE /v1/jobs/{id}", srv.handleDelete)
	srv.mux.HandleFunc("GET /v1/problem", srv.handleProblem)
	srv.mux.HandleFunc("GET /v1/stats", srv.handleStats)
	return srv
}

// ServeHTTP implements http.Handler.
func (srv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { srv.mux.ServeHTTP(w, r) }

// submitRequest is the JSON body of POST /v1/jobs.
type submitRequest struct {
	Kind           JobKind `json:"kind"`
	Vars           []Var   `json:"vars"`
	Method         string  `json:"method"`
	Start          []Var   `json:"start"`
	StopOnSat      bool    `json:"stop_on_sat"`
	MaxSubproblems uint64  `json:"max_subproblems"`
	// Fleet-job fields (kind "fleet"): the member groups plus the root
	// seed, start-point jitter, target F, fleet-total evaluation budget and
	// the early-stop opt-out; see FleetJob.
	Members        []FleetMemberSpec `json:"members"`
	Seed           int64             `json:"seed"`
	Jitter         int               `json:"jitter"`
	TargetF        float64           `json:"target_f"`
	MaxEvaluations int               `json:"max_evaluations"`
	KeepRacing     bool              `json:"keep_racing"`
	// Policy optionally overrides the session's evaluation policy for
	// estimate, search and fleet jobs, e.g.
	// {"prune":true,"stages":3,"epsilon":0.1,"cache":true}.
	Policy *EvalPolicy `json:"policy"`
}

// spec converts the request into the matching JobSpec.
func (req submitRequest) spec() (JobSpec, error) {
	switch req.Kind {
	case JobEstimate:
		return EstimateJob{Vars: req.Vars, Policy: req.Policy}, nil
	case JobSearch:
		return SearchJob{Method: req.Method, Start: req.Start, Policy: req.Policy}, nil
	case JobFleet:
		return FleetJob{
			Members:        req.Members,
			Seed:           req.Seed,
			Start:          req.Start,
			Jitter:         req.Jitter,
			TargetF:        req.TargetF,
			MaxEvaluations: req.MaxEvaluations,
			KeepRacing:     req.KeepRacing,
			Policy:         req.Policy,
		}, nil
	case JobSolve:
		if req.Policy != nil {
			// Solving mode enumerates the whole family; the evaluation
			// policy has nothing to apply to it.  Rejecting beats silently
			// ignoring a knob the client clearly meant to set.
			return nil, fmt.Errorf("solve jobs accept no evaluation policy (it applies to estimate and search jobs)")
		}
		return SolveJob{Vars: req.Vars, StopOnSat: req.StopOnSat, MaxSubproblems: req.MaxSubproblems}, nil
	default:
		return nil, fmt.Errorf("unknown job kind %q (want estimate, search, solve or fleet)", req.Kind)
	}
}

func (srv *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	spec, err := req.spec()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// The job belongs to the session, not to this request: it must keep
	// running after the submitting connection closes.
	j, err := srv.session.Submit(context.WithoutCancel(r.Context()), spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, jobStatus(j))
}

func (srv *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := srv.session.Jobs()
	out := make([]jobStatusJSON, len(jobs))
	for i, j := range jobs {
		out[i] = jobStatus(j)
	}
	writeJSON(w, http.StatusOK, out)
}

func (srv *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := srv.session.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
	}
	return j, ok
}

func (srv *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := srv.job(w, r); ok {
		writeJSON(w, http.StatusOK, jobStatus(j))
	}
}

func (srv *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if j, ok := srv.job(w, r); ok {
		j.Cancel()
		writeJSON(w, http.StatusOK, jobStatus(j))
	}
}

// handleDelete evicts a finished job, releasing its retained event history
// and result; long-lived servers use it to bound memory.
func (srv *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	j, ok := srv.job(w, r)
	if !ok {
		return
	}
	if err := srv.session.Remove(j.ID()); err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": j.ID()})
}

func (srv *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := srv.job(w, r)
	if !ok {
		return
	}
	// ?member=N narrows a fleet job's stream to one member's events; the
	// terminal "done" (which carries no member) always passes the filter.
	member := -1
	if q := r.URL.Query().Get("member"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad member filter %q", q))
			return
		}
		member = n
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	events := j.Subscribe(r.Context())
	// SSE streams emit a comment line whenever no event has been written
	// for a keep-alive interval, so intermediaries with idle timeouts do
	// not sever a subscriber waiting on a long solve.  NDJSON streams get
	// none (a bare comment is not a valid NDJSON record).
	var tick <-chan time.Time
	var keepAlive *time.Ticker
	if sse {
		keepAlive = time.NewTicker(sseKeepAliveInterval)
		defer keepAlive.Stop()
		tick = keepAlive.C
	}
	for {
		var werr error
		select {
		case e, ok := <-events:
			if !ok {
				return
			}
			if member >= 0 {
				if me, ok := e.(MemberEvent); ok && me.EventMember() != member {
					continue
				}
			}
			payload, err := json.Marshal(e)
			if err != nil {
				return
			}
			if sse {
				_, werr = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.EventKind(), payload)
			} else {
				_, werr = fmt.Fprintf(w, "{\"event\":%q,\"data\":%s}\n", e.EventKind(), payload)
			}
			if keepAlive != nil {
				keepAlive.Reset(sseKeepAliveInterval)
			}
		case <-tick:
			_, werr = fmt.Fprint(w, ": keep-alive\n\n")
		}
		if werr != nil {
			// The client is gone (connection reset or closed); keep-alives
			// and further events would all fail the same way, so stop
			// streaming instead of spinning through the rest of the log.
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// sseKeepAliveInterval is the idle span after which an SSE event stream
// emits a `: keep-alive` comment.  A variable only so tests can shorten it.
var sseKeepAliveInterval = 30 * time.Second

// handleStats reports the session's evaluation-engine counters — total and
// pruned evaluations, solved and aborted subproblems, the F-cache's hit/miss
// statistics — and the aggregated solver-core counters (conflicts, learned
// clauses by LBD tier, database reductions, peak arena bytes).
func (srv *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, srv.session.Stats())
}

func (srv *Server) handleProblem(w http.ResponseWriter, r *http.Request) {
	p := srv.session.Problem()
	writeJSON(w, http.StatusOK, map[string]any{
		"name":       p.Name,
		"variables":  p.Formula.NumVars,
		"clauses":    p.Formula.NumClauses(),
		"start_set":  p.StartSet,
		"cores":      srv.session.Config().Cores,
		"generators": p.Instance != nil,
	})
}

// jobStatusJSON is the wire form of a job's status.
type jobStatusJSON struct {
	ID    string  `json:"id"`
	Kind  JobKind `json:"kind"`
	State string  `json:"state"`
	Error string  `json:"error,omitempty"`
	// Result is present once the job finished with a result (possibly a
	// partial one next to a non-empty Error, for cancelled estimations).
	Result *resultJSON `json:"result,omitempty"`
}

// resultJSON is the wire form of a JobResult.
type resultJSON struct {
	Estimate *SetEstimate `json:"estimate,omitempty"`
	Search   *searchJSON  `json:"search,omitempty"`
	Solve    *solveJSON   `json:"solve,omitempty"`
	Fleet    *fleetJSON   `json:"fleet,omitempty"`
}

// searchJSON flattens a SearchOutcome for the wire (the raw optimizer
// result holds unexported search-space state).
type searchJSON struct {
	Method      string        `json:"method"`
	BestVars    []Var         `json:"best_vars"`
	BestValue   float64       `json:"best_value"`
	Evaluations int           `json:"evaluations"`
	Stop        string        `json:"stop"`
	WallTime    time.Duration `json:"wall_time_ns"`
	Best        *SetEstimate  `json:"best_estimate,omitempty"`
}

// fleetJSON flattens a FleetOutcome for the wire (the raw optimizer results
// hold unexported search-space state, so each member is rendered like a
// searchJSON row).
type fleetJSON struct {
	Seed       int64             `json:"seed"`
	Members    []fleetMemberJSON `json:"members"`
	BestMember int               `json:"best_member"`
	BestVars   []Var             `json:"best_vars,omitempty"`
	BestValue  float64           `json:"best_value,omitempty"`
	Best       *SetEstimate      `json:"best_estimate,omitempty"`
	WallTime   time.Duration     `json:"wall_time_ns"`
}

// fleetMemberJSON is one member's row of a fleet result.
type fleetMemberJSON struct {
	Member      int          `json:"member"`
	Method      string       `json:"method"`
	EvalSeed    int64        `json:"eval_seed"`
	SearchSeed  int64        `json:"search_seed"`
	StartVars   []Var        `json:"start_vars"`
	BestVars    []Var        `json:"best_vars,omitempty"`
	BestValue   float64      `json:"best_value,omitempty"`
	Evaluations int          `json:"evaluations"`
	Stop        string       `json:"stop,omitempty"`
	Best        *SetEstimate `json:"best_estimate,omitempty"`
	Error       string       `json:"error,omitempty"`
}

// fleetStatus renders a fleet outcome for the wire.
func fleetStatus(f *FleetOutcome) *fleetJSON {
	out := &fleetJSON{
		Seed:       f.Seed,
		Members:    make([]fleetMemberJSON, len(f.Members)),
		BestMember: f.BestMember,
		BestVars:   f.BestVars,
		BestValue:  f.BestValue,
		Best:       f.Best,
		WallTime:   f.WallTime,
	}
	for i, m := range f.Members {
		row := fleetMemberJSON{
			Member:     m.Member,
			Method:     m.Method,
			EvalSeed:   m.EvalSeed,
			SearchSeed: m.SearchSeed,
			StartVars:  m.StartVars,
			Best:       m.Best,
			Error:      m.Err,
		}
		if m.Result != nil {
			row.BestVars = m.Result.BestPoint.SortedVars()
			row.BestValue = m.Result.BestValue
			row.Evaluations = m.Result.Evaluations
			row.Stop = string(m.Result.Stop)
		}
		out.Members[i] = row
	}
	return out
}

// solveJSON flattens a SolveReport for the wire.
type solveJSON struct {
	Vars               []Var         `json:"vars"`
	Processed          int           `json:"processed"`
	SubproblemsAborted int           `json:"subproblems_aborted"`
	TotalCost          float64       `json:"total_cost"`
	CostToFirstSat     float64       `json:"cost_to_first_sat"`
	FoundSat           bool          `json:"found_sat"`
	SatIndex           int64         `json:"sat_index"`
	WallTime           time.Duration `json:"wall_time_ns"`
	Interrupted        bool          `json:"interrupted"`
}

// jobStatus renders a job's current state.
func jobStatus(j *Job) jobStatusJSON {
	st := jobStatusJSON{ID: j.ID(), Kind: j.Kind(), State: "running"}
	if !j.Finished() {
		return st
	}
	result, err := j.finishedResult()
	switch {
	case err == nil:
		st.State = "done"
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		st.State = "cancelled"
		st.Error = err.Error()
	default:
		st.State = "failed"
		st.Error = err.Error()
	}
	if result != nil {
		st.Result = &resultJSON{Estimate: result.Estimate}
		if result.Search != nil {
			sj := &searchJSON{
				Method:      result.Search.Method,
				BestVars:    result.Search.Result.BestPoint.SortedVars(),
				BestValue:   result.Search.Result.BestValue,
				Evaluations: result.Search.Result.Evaluations,
				Stop:        string(result.Search.Result.Stop),
				WallTime:    result.Search.Result.WallTime,
				Best:        result.Search.Best,
			}
			st.Result.Search = sj
		}
		if result.Fleet != nil {
			st.Result.Fleet = fleetStatus(result.Fleet)
		}
		if result.Solve != nil {
			st.Result.Solve = &solveJSON{
				Vars:               result.Solve.Point.SortedVars(),
				Processed:          result.Solve.Processed,
				SubproblemsAborted: result.Solve.SubproblemsAborted,
				TotalCost:          result.Solve.TotalCost,
				CostToFirstSat:     result.Solve.CostToFirstSat,
				FoundSat:           result.Solve.FoundSat,
				SatIndex:           result.Solve.SatIndex,
				WallTime:           result.Solve.WallTime,
				Interrupted:        result.Solve.Interrupted,
			}
		}
	}
	return st
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
