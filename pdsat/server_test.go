package pdsat_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/internal/decomp"
	runner "github.com/paper-repro/pdsat-go/internal/pdsat"
	"github.com/paper-repro/pdsat-go/internal/solver"
	"github.com/paper-repro/pdsat-go/pdsat"
)

func postJSON(t *testing.T, url string, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode >= 400 {
		t.Fatalf("POST %s: status %d, body %v", url, resp.StatusCode, out)
	}
	return out
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

// TestServerEstimateRoundTrip is the acceptance test of the HTTP surface:
// submit an estimate job over -serve's API, stream its events as NDJSON,
// fetch the result, and check it is bit-identical to the bare runner path.
func TestServerEstimateRoundTrip(t *testing.T) {
	inst := testInstance(t, 48, 40, 3)

	// Reference: the bare runner path with the same fixed seed.
	r := runner.NewRunner(inst.CNF, runner.Config{
		SampleSize: 24, Workers: 2, Seed: 1, CostMetric: solver.CostPropagations,
	})
	want, err := r.EvaluatePoint(context.Background(), decomp.NewSpace(inst.UnknownStartVars()).FullPoint())
	if err != nil {
		t.Fatal(err)
	}

	s := newTestSession(t, inst, 24)
	ts := httptest.NewServer(pdsat.NewServer(s))
	defer ts.Close()

	// Problem metadata.
	var problem map[string]any
	getJSON(t, ts.URL+"/v1/problem", &problem)
	if int(problem["variables"].(float64)) != inst.CNF.NumVars {
		t.Fatalf("problem metadata: %v", problem)
	}

	// Submit.
	created := postJSON(t, ts.URL+"/v1/jobs", `{"kind":"estimate"}`)
	id, _ := created["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", created)
	}

	// Stream events (NDJSON): ordered sample progress, one terminal done.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type %q", ct)
	}
	type line struct {
		Event string `json:"event"`
		Data  struct {
			Job   string `json:"job"`
			Done  int    `json:"done"`
			Total int    `json:"total"`
		} `json:"data"`
	}
	var lines []line
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 25 {
		t.Fatalf("got %d event lines, want 24 sample_progress + 1 done", len(lines))
	}
	dones := 0
	for i, l := range lines {
		if l.Data.Job != id {
			t.Fatalf("line %d for job %q, want %q", i, l.Data.Job, id)
		}
		switch l.Event {
		case "sample_progress":
			if l.Data.Done != i+1 || l.Data.Total != 24 {
				t.Fatalf("line %d out of order: %+v", i, l)
			}
		case "done":
			dones++
		default:
			t.Fatalf("unexpected event %q", l.Event)
		}
	}
	if dones != 1 || lines[len(lines)-1].Event != "done" {
		t.Fatalf("stream must end with exactly one done event (got %d)", dones)
	}

	// Fetch the result and compare against the reference, bit for bit.
	var status struct {
		State  string `json:"state"`
		Result *struct {
			Estimate *pdsat.SetEstimate `json:"estimate"`
		} `json:"result"`
	}
	getJSON(t, ts.URL+"/v1/jobs/"+id, &status)
	if status.State != "done" || status.Result == nil || status.Result.Estimate == nil {
		t.Fatalf("status: %+v", status)
	}
	if status.Result.Estimate.Estimate != want.Estimate {
		t.Fatalf("HTTP estimate diverges:\n got  %+v\n want %+v",
			status.Result.Estimate.Estimate, want.Estimate)
	}

	// The job list shows the finished job.
	var list []map[string]any
	getJSON(t, ts.URL+"/v1/jobs", &list)
	if len(list) != 1 || list[0]["id"] != id {
		t.Fatalf("job list: %v", list)
	}
}

func TestServerCancelAndErrors(t *testing.T) {
	inst := testInstance(t, 48, 40, 3)
	s := newTestSession(t, inst, 5000)
	ts := httptest.NewServer(pdsat.NewServer(s))
	defer ts.Close()

	created := postJSON(t, ts.URL+"/v1/jobs", `{"kind":"estimate"}`)
	id := created["id"].(string)

	// Cancel it mid-flight; the event stream still terminates with one done.
	postJSON(t, ts.URL+"/v1/jobs/"+id+"/cancel", "")
	deadline := time.Now().Add(60 * time.Second)
	var status struct {
		State string `json:"state"`
	}
	for {
		getJSON(t, ts.URL+"/v1/jobs/"+id, &status)
		if status.State != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not stop after cancel")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if status.State != "cancelled" {
		t.Fatalf("state after cancel: %q", status.State)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	body, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(body, []byte(`"event":"done"`)); got != 1 {
		t.Fatalf("cancelled job stream has %d done events, want 1:\n%s", got, body)
	}

	// SSE framing.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+id+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	sseResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sseBody, err := readAll(sseResp)
	if err != nil {
		t.Fatal(err)
	}
	if sseResp.Header.Get("Content-Type") != "text/event-stream" ||
		!bytes.Contains(sseBody, []byte("event: done\ndata: ")) {
		t.Fatalf("bad SSE stream:\n%s", sseBody)
	}

	// Error paths.
	for _, tc := range []struct {
		method, path, body string
		wantStatus         int
	}{
		{"POST", "/v1/jobs", `{"kind":"alchemy"}`, http.StatusBadRequest},
		{"POST", "/v1/jobs", `not json`, http.StatusBadRequest},
		{"POST", "/v1/jobs", `{"kind":"estimate","vars":[99999]}`, http.StatusBadRequest},
		{"GET", "/v1/jobs/job-77", "", http.StatusNotFound},
		{"POST", "/v1/jobs/job-77/cancel", "", http.StatusNotFound},
		{"DELETE", "/v1/jobs", "", http.StatusMethodNotAllowed},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
	}
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// TestServerSolveJob drives a solve job over HTTP end to end.
func TestServerSolveJob(t *testing.T) {
	inst := testInstance(t, 54, 40, 9)
	s := newTestSession(t, inst, 8)
	ts := httptest.NewServer(pdsat.NewServer(s))
	defer ts.Close()

	created := postJSON(t, ts.URL+"/v1/jobs", `{"kind":"solve","stop_on_sat":true}`)
	id := created["id"].(string)
	// Draining the event stream waits for completion.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := readAll(resp); err != nil {
		t.Fatal(err)
	}
	var status struct {
		State  string `json:"state"`
		Result *struct {
			Solve *struct {
				FoundSat  bool    `json:"found_sat"`
				SatIndex  int64   `json:"sat_index"`
				TotalCost float64 `json:"total_cost"`
			} `json:"solve"`
		} `json:"result"`
	}
	getJSON(t, ts.URL+"/v1/jobs/"+id, &status)
	if status.State != "done" || status.Result == nil || status.Result.Solve == nil {
		t.Fatalf("status: %+v", status)
	}
	if !status.Result.Solve.FoundSat || status.Result.Solve.SatIndex < 0 {
		t.Fatalf("solve result: %+v", status.Result.Solve)
	}

	// Evict the finished job: it disappears from the API.
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+id, nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", delResp.StatusCode)
	}
	gone, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	gone.Body.Close()
	if gone.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted job still served: status %d", gone.StatusCode)
	}
}
