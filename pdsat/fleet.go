package pdsat

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"github.com/paper-repro/pdsat-go/internal/eval"
	"github.com/paper-repro/pdsat-go/internal/optimize"
	runner "github.com/paper-repro/pdsat-go/internal/pdsat"
)

// MaxFleetMembers bounds the size of one fleet job; larger fleets are a
// configuration mistake (the session's transport capacity, not the member
// count, limits useful parallelism) and are rejected at submit time.
const MaxFleetMembers = 128

// SubSeed is the deterministic sub-seed derivation rule of fleet jobs,
// re-exported so a single fleet member can be reproduced standalone: member
// i of a fleet with root seed r samples its evaluations with SubSeed(r, 3i),
// walks its search with SubSeed(r, 3i+1) and jitters its start point with
// SubSeed(r, 3i+2).  A direct SearchJob on a session configured with
// RunnerConfig.Seed = SubSeed(r, 3i) and SearchOptions.Seed = SubSeed(r,
// 3i+1) is bit-identical to that member.
func SubSeed(root int64, i int) int64 { return optimize.SubSeed(root, i) }

// FleetMemberSpec describes one homogeneous group of fleet members.
type FleetMemberSpec struct {
	// Method selects the group's metaheuristic, with the same spellings as
	// SearchJob.Method ("sa"/"tabu", default tabu).
	Method string `json:"method,omitempty"`
	// Count is the number of members in the group (0 means 1).
	Count int `json:"count,omitempty"`
	// Start optionally overrides the fleet-level start set for this group.
	Start []Var `json:"start,omitempty"`
}

// FleetJob races K concurrent searches — mixed strategies, multi-restart
// start points, deterministic per-member sub-seeds — against the session's
// single runner/cluster.  All members share the session F-cache and one
// global atomic incumbent: every member's best F immediately tightens the
// incumbent-pruning bound of every other member's evaluations, which makes
// the race strictly cheaper than running the same searches sequentially
// with isolated incumbents.
//
// Determinism contract: member i's evaluation sampling, search walk and
// start jitter depend only on (Seed, i) — see SubSeed — so a fleet of one
// is bit-identical to the direct SearchJob path under matching seeds, and a
// fixed-seed fleet yields deterministic per-member results regardless of
// interleaving as long as the effective evaluation policy has the
// cross-member couplings (Prune, Cache) off.  With pruning or the shared
// cache enabled, every member's best value remains a certified full
// estimate, but which evaluations get pruned or served from the cache
// depends on timing, so per-member traces may vary run to run — that
// variability is exactly the work the coupling saves.
//
// The job emits member-tagged SearchVisit/SampleProgress/EvalPruned/
// CacheHit events, a FleetMemberDone per finished member, an
// IncumbentImproved per global improvement, and produces JobResult.Fleet.
type FleetJob struct {
	// Members is the fleet composition, e.g.
	// {{Method:"tabu",Count:4},{Method:"sa",Count:4}}; see ParseFleet for
	// the CLI string form.
	Members []FleetMemberSpec `json:"members"`
	// Seed is the root seed all per-member sub-seeds derive from; 0 means
	// the session's search seed (or 1).
	Seed int64 `json:"seed,omitempty"`
	// Start is the fleet-level starting decomposition set; empty means the
	// full start set, as in the paper.
	Start []Var `json:"start,omitempty"`
	// Jitter flips this many deterministically chosen bits of the start
	// point per member (member 0 keeps the canonical start), giving the
	// fleet multi-restart diversity.  It must stay below the search-space
	// size.
	Jitter int `json:"jitter,omitempty"`
	// TargetF, when positive, ends the whole race as soon as one member
	// certifies a best F at or below it.
	TargetF float64 `json:"target_f,omitempty"`
	// MaxEvaluations, when positive, is the fleet-total evaluation budget,
	// split fairly across the members (earlier members get the remainder).
	// Zero leaves every member on the session's per-search budget.
	MaxEvaluations int `json:"max_evaluations,omitempty"`
	// KeepRacing disables the fleet-wide early stop that normally cancels
	// the remaining members once one member exhausts its reachable space or
	// reaches TargetF.
	KeepRacing bool `json:"keep_racing,omitempty"`
	// Policy optionally overrides the session's evaluation policy for every
	// member of this job.  Nil means the session default.
	Policy *EvalPolicy `json:"policy,omitempty"`
}

// Kind implements JobSpec.
func (FleetJob) Kind() JobKind { return JobFleet }

// ParseFleet parses the CLI fleet notation "tabu:4,sa:4" (method or
// method:count, comma-separated) into member specs.
func ParseFleet(s string) ([]FleetMemberSpec, error) {
	var specs []FleetMemberSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		spec := FleetMemberSpec{Count: 1}
		if at := strings.IndexByte(part, ':'); at >= 0 {
			n, err := strconv.Atoi(strings.TrimSpace(part[at+1:]))
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("pdsat: bad fleet member count in %q", part)
			}
			spec.Method, spec.Count = strings.TrimSpace(part[:at]), n
		} else {
			spec.Method = part
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("pdsat: empty fleet spec")
	}
	return specs, nil
}

// expandedMember is one fully resolved fleet member.
type expandedMember struct {
	method string // normalized long name (MethodTabu / MethodSimulatedAnnealing)
	short  string // optimize fleet method name
	start  Point
}

// expand resolves the member groups into individual members with validated
// methods and start points.
func (spec FleetJob) expand(s *Session) ([]expandedMember, error) {
	if len(spec.Members) == 0 {
		return nil, fmt.Errorf("pdsat: fleet job needs at least one member")
	}
	base, err := s.pointFromVars(spec.Start)
	if err != nil {
		return nil, err
	}
	var members []expandedMember
	for gi, g := range spec.Members {
		if g.Count < 0 {
			return nil, fmt.Errorf("pdsat: fleet member group %d has negative count %d", gi, g.Count)
		}
		method, err := (SearchJob{Method: g.Method}).methodName()
		if err != nil {
			return nil, err
		}
		short := optimize.MethodTabu
		if method == MethodSimulatedAnnealing {
			short = optimize.MethodSA
		}
		start := base
		if len(g.Start) > 0 {
			start, err = s.pointFromVars(g.Start)
			if err != nil {
				return nil, err
			}
		}
		count := g.Count
		if count == 0 {
			count = 1
		}
		for k := 0; k < count; k++ {
			members = append(members, expandedMember{method: method, short: short, start: start})
			if len(members) > MaxFleetMembers {
				return nil, fmt.Errorf("pdsat: fleet of more than %d members", MaxFleetMembers)
			}
		}
	}
	return members, nil
}

func (spec FleetJob) validate(s *Session) error {
	members, err := spec.expand(s)
	if err != nil {
		return err
	}
	if spec.MaxEvaluations > 0 && spec.MaxEvaluations < len(members) {
		// fairSplit would hand some members a zero budget, which the search
		// options mean as "unlimited" — the exact opposite of a tight total.
		return fmt.Errorf("pdsat: fleet evaluation budget %d below the member count %d (every member needs at least one evaluation)",
			spec.MaxEvaluations, len(members))
	}
	if spec.Jitter < 0 || spec.Jitter >= s.space.Size() {
		return fmt.Errorf("pdsat: fleet jitter %d outside [0,%d)", spec.Jitter, s.space.Size())
	}
	if spec.TargetF < 0 || math.IsNaN(spec.TargetF) {
		return fmt.Errorf("pdsat: invalid fleet target F %v (use 0 to disable)", spec.TargetF)
	}
	if spec.MaxEvaluations < 0 {
		return fmt.Errorf("pdsat: negative fleet evaluation budget %d (use 0 for the per-search default)",
			spec.MaxEvaluations)
	}
	if spec.Policy != nil {
		if err := spec.Policy.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// rootSeed resolves the fleet's root seed against the session defaults.
func (spec FleetJob) rootSeed(s *Session) int64 {
	if spec.Seed != 0 {
		return spec.Seed
	}
	if s.cfg.Search.Seed != 0 {
		return s.cfg.Search.Seed
	}
	return 1
}

// jitterStart flips jitter distinct bits of the base start point, chosen by
// the member's start-seed stream SubSeed(root, 3·member+2).  Member 0 keeps
// the canonical start, so every fleet contains one run of the paper's
// from-X̃_start search.  A flip that would empty the decomposition set is
// re-rolled (an empty set cannot be evaluated), which always terminates:
// jitter < space size, so an eligible bit remains whenever flips are owed.
func jitterStart(base Point, jitter int, root int64, member int) Point {
	if jitter <= 0 || member == 0 {
		return base
	}
	rng := rand.New(rand.NewSource(optimize.SubSeed(root, 3*member+2)))
	p := base
	flipped := make(map[int]bool, jitter)
	for n := 0; n < jitter; {
		i := rng.Intn(p.Size())
		if flipped[i] || (p.Count() == 1 && p.Bit(i)) {
			continue
		}
		flipped[i] = true
		p = p.Flip(i)
		n++
	}
	return p
}

// fairSplit divides a total evaluation budget across k members: every
// member gets total/k, the first total%k members one more.
func fairSplit(total, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = total / k
		if i < total%k {
			out[i]++
		}
	}
	return out
}

// FleetMemberResult is one member's slice of a fleet job's result.
type FleetMemberResult struct {
	// Member is the member's 0-based index; Method its metaheuristic.
	Member int    `json:"member"`
	Method string `json:"method"`
	// EvalSeed and SearchSeed are the member's derived sub-seeds (SubSeed
	// streams 3i and 3i+1), recorded so the member can be reproduced
	// standalone.
	EvalSeed   int64 `json:"eval_seed"`
	SearchSeed int64 `json:"search_seed"`
	// StartVars is the member's actual (possibly jittered) start set.
	StartVars []Var `json:"start_vars"`
	// Result is the member's raw search result; nil if the member failed
	// before producing one.
	Result *SearchResult `json:"-"`
	// Best is the estimate of the member's best point, re-evaluated through
	// the member's engine (a free cache hit when the F-cache is enabled).
	Best *SetEstimate `json:"best_estimate,omitempty"`
	// Err is the member's hard error, empty for normal termination.
	Err string `json:"error,omitempty"`
}

// FleetOutcome is the result of a fleet job.
type FleetOutcome struct {
	// Seed is the resolved root seed the sub-seeds derive from.
	Seed int64 `json:"seed"`
	// Members holds every member's outcome, indexed by member.
	Members []FleetMemberResult `json:"members"`
	// BestMember is the winning member's index (-1 if no member produced a
	// finite best value); BestVars/BestValue its best set and F, and Best
	// the member's estimate of that set.
	BestMember int          `json:"best_member"`
	BestVars   []Var        `json:"best_vars,omitempty"`
	BestValue  float64      `json:"best_value,omitempty"`
	Best       *SetEstimate `json:"best_estimate,omitempty"`
	// WallTime is the elapsed time of the whole race.
	WallTime time.Duration `json:"wall_time_ns"`
}

func (spec FleetJob) run(ctx context.Context, j *Job) (*JobResult, error) {
	s := j.session
	members, err := spec.expand(s)
	if err != nil {
		return nil, err
	}
	root := spec.rootSeed(s)
	pol := s.policyFor(spec.Policy)
	var budgets []int
	if spec.MaxEvaluations > 0 {
		budgets = fairSplit(spec.MaxEvaluations, len(members))
	}

	// The global atomic incumbent coupling the members; improvements stream
	// into the job's events in improvement order.
	shared := optimize.NewIncumbent()
	shared.OnImproved = func(member int, p Point, v float64) {
		j.emit(IncumbentImproved{Job: j.id, Member: member, Vars: p.SortedVars(), Value: v})
	}

	fleet := make([]optimize.FleetMember, len(members))
	engines := make([]*eval.Engine, len(members))
	for i, m := range members {
		// Each member evaluates through its own scope (isolated sampling
		// state over the shared transport) and its own engine over the
		// session's shared F-cache.
		scope := s.runner.NewScope(optimize.SubSeed(root, 3*i))
		engine := s.engineWith(scopeBackend{s: s, j: j, scope: scope, member: i}, j, pol, i)
		engines[i] = engine

		opts := s.cfg.Search
		opts.Seed = optimize.SubSeed(root, 3*i+1)
		opts.TargetValue = spec.TargetF
		if budgets != nil {
			opts.MaxEvaluations = budgets[i]
		}
		// The policy's evaluation concurrency selects the neighbourhood-
		// parallel scheduler for every member, unless the search options
		// already pin a width.
		if opts.MaxConcurrentEvals == 0 {
			opts.MaxConcurrentEvals = pol.MaxConcurrentEvals
		}
		member := i
		userNeighborhood := opts.NeighborhoodObserver
		opts.NeighborhoodObserver = func(nb optimize.Neighborhood) {
			if userNeighborhood != nil {
				userNeighborhood(nb)
			}
			j.emit(neighborhoodDoneEvent(j.id, member, nb))
		}
		userObserver := opts.Observer
		opts.Observer = func(v optimize.Visit) {
			if userObserver != nil {
				userObserver(v)
			}
			j.emit(SearchVisit{
				Job:      j.id,
				Member:   member,
				Index:    v.Index,
				Vars:     v.Point.SortedVars(),
				Value:    v.Value,
				Accepted: v.Accepted,
				Improved: v.Improved,
				Pruned:   v.Pruned,
			})
		}
		fleet[i] = optimize.FleetMember{
			Method:    m.short,
			Objective: &fleetObjective{scope: scope, engine: engine},
			Start:     jitterStart(m.start, spec.Jitter, root, i),
			Opts:      opts,
		}
	}

	fr, ferr := optimize.RunFleet(ctx, fleet, optimize.FleetOptions{
		Shared:     shared,
		KeepRacing: spec.KeepRacing,
		OnMemberDone: func(member int, method string, res *optimize.Result) {
			j.emit(FleetMemberDone{
				Job:         j.id,
				Member:      member,
				Method:      members[member].method,
				BestVars:    res.BestPoint.SortedVars(),
				BestValue:   res.BestValue,
				Evaluations: res.Evaluations,
				Stop:        string(res.Stop),
			})
		},
	})
	if fr == nil {
		return nil, ferr
	}

	outcome := &FleetOutcome{
		Seed:       root,
		Members:    make([]FleetMemberResult, len(fr.Members)),
		BestMember: fr.Best,
		WallTime:   fr.WallTime,
	}
	for i, mr := range fr.Members {
		m := FleetMemberResult{
			Member:     i,
			Method:     members[i].method,
			EvalSeed:   optimize.SubSeed(root, 3*i),
			SearchSeed: optimize.SubSeed(root, 3*i+1),
			StartVars:  fleet[i].Start.SortedVars(),
			Result:     mr.Result,
		}
		if mr.Err != nil {
			m.Err = mr.Err.Error()
		} else if mr.Result != nil && !math.IsInf(mr.Result.BestValue, 1) {
			// Re-estimate the member's best point through its own engine: a
			// free cache hit with the F-cache on, the exact direct-path
			// behaviour with it off.  The member result stands even if the
			// re-estimation is cut short by a cancellation.
			if ev, _ := engines[i].EvaluateF(ctx, mr.Result.BestPoint, math.Inf(1)); ev != nil {
				m.Best = s.setEstimateFrom(mr.Result.BestPoint, ev)
			}
		}
		outcome.Members[i] = m
	}
	if fr.Best >= 0 {
		outcome.BestVars = fr.BestPoint.SortedVars()
		outcome.BestValue = fr.BestValue
		outcome.Best = outcome.Members[fr.Best].Best
	}
	return &JobResult{Fleet: outcome}, ferr
}

// fleetObjective adapts one member's scope and engine as its optimizer
// objective: evaluations run budget-aware through the engine (threading the
// member's incumbent), and the tabu getNewCenter heuristic consumes the
// scope-local conflict activity, so the member's decisions never depend on
// what concurrent members happened to solve.
type fleetObjective struct {
	scope  *runner.Scope
	engine *eval.Engine
}

// Evaluate implements optimize.Objective (the searches prefer EvaluateF).
func (o *fleetObjective) Evaluate(ctx context.Context, p Point) (float64, error) {
	ev, err := o.EvaluateF(ctx, p, math.Inf(1))
	if err != nil {
		return 0, err
	}
	return ev.Value, nil
}

// EvaluateF implements eval.Evaluator.
func (o *fleetObjective) EvaluateF(ctx context.Context, p Point, incumbent float64) (*eval.Evaluation, error) {
	return o.engine.EvaluateF(ctx, p, incumbent)
}

// ReserveSlots implements eval.SlotEvaluator: the neighbourhood-parallel
// scheduler reserves the member's evaluation slots upfront, keeping sample
// seeds independent of completion order.
func (o *fleetObjective) ReserveSlots(n int) (int, bool) { return o.engine.ReserveSlots(n) }

// EvaluateSlotF implements eval.SlotEvaluator.
func (o *fleetObjective) EvaluateSlotF(ctx context.Context, p Point, incumbent float64, slot int) (*eval.Evaluation, error) {
	return o.engine.EvaluateSlotF(ctx, p, incumbent, slot)
}

// VarActivity implements optimize.ActivitySource with the member's
// scope-local conflict activity.
func (o *fleetObjective) VarActivity(v Var) float64 { return o.scope.VarActivity(v) }

// scopeBackend adapts one member's evaluation scope as an eval.Backend
// while streaming member-tagged sample progress into the job's event
// stream.
type scopeBackend struct {
	s      *Session
	j      *Job
	scope  *runner.Scope
	member int
}

// EvaluateBudgeted implements eval.Backend.
func (b scopeBackend) EvaluateBudgeted(ctx context.Context, p Point, pol EvalPolicy, incumbent float64) (*eval.Evaluation, error) {
	pe, err := b.scope.EvaluatePointBudgeted(ctx, p, pol, incumbent, memberSampleObserver(b.j, b.member))
	if pe == nil {
		return nil, err
	}
	ev := pe.Evaluation()
	return &ev, err
}

// ReserveEvalSlots implements eval.SlotBackend on the member's scope.
func (b scopeBackend) ReserveEvalSlots(n int) int { return b.scope.ReserveEvalSlots(n) }

// EvaluateSlot implements eval.SlotBackend.
func (b scopeBackend) EvaluateSlot(ctx context.Context, p Point, pol EvalPolicy, incumbent float64, slot int) (*eval.Evaluation, error) {
	return b.scope.EvaluateSlotObserved(ctx, p, pol, incumbent, slot, memberSampleObserver(b.j, b.member))
}

// FleetJob submits a fleet job: Submit with a typed spec.
func (s *Session) FleetJob(ctx context.Context, spec FleetJob) (*Job, error) {
	return s.Submit(ctx, spec)
}

// SearchFleet races the fleet synchronously and returns its outcome (the
// synchronous wrapper of FleetJob).
func (s *Session) SearchFleet(ctx context.Context, spec FleetJob) (*FleetOutcome, error) {
	res, err := s.runToCompletion(ctx, spec)
	if res == nil {
		return nil, err
	}
	return res.Fleet, err
}
