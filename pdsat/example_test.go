package pdsat_test

import (
	"context"
	"fmt"
	"log"

	"github.com/paper-repro/pdsat-go/pdsat"
)

// ExampleSession_EstimateJob submits an asynchronous estimation job and
// consumes its typed progress-event stream: one SampleProgress per solved
// subproblem of the Monte Carlo sample, then the single terminal Done.
func ExampleSession_EstimateJob() {
	// A weakened A5/1 key-recovery instance: 12 unknown state bits.
	problem, err := pdsat.FromGenerator("a5/1", pdsat.GeneratorConfig{
		KeystreamLen: 30,
		KnownSuffix:  52,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	session, err := pdsat.NewSession(problem, pdsat.Config{
		Runner: pdsat.RunnerConfig{
			SampleSize: 16,
			Workers:    2,
			Seed:       1,
			CostMetric: pdsat.CostPropagations,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Submit the job; an empty Vars list estimates the full start set.
	job, err := session.EstimateJob(context.Background(), pdsat.EstimateJob{})
	if err != nil {
		log.Fatal(err)
	}

	// Watch it progress.  The stream is ordered and ends with exactly one
	// Done event, after which the channel closes.
	samples := 0
	for ev := range job.Events() {
		switch e := ev.(type) {
		case pdsat.SampleProgress:
			samples++
		case pdsat.Done:
			fmt.Printf("done (err=%q)\n", e.Err)
		}
	}

	// Collect the result.
	res, err := job.Result(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	est := res.Estimate
	fmt.Printf("samples solved: %d\n", samples)
	fmt.Printf("dimension d=%d over a sample of N=%d\n", est.Estimate.Dimension, est.Estimate.SampleSize)
	fmt.Printf("predictive function F is positive: %v\n", est.Estimate.Value > 0)
	// Output:
	// done (err="")
	// samples solved: 16
	// dimension d=12 over a sample of N=16
	// predictive function F is positive: true
}
