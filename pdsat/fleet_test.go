package pdsat_test

import (
	"context"
	"math"
	"testing"

	"github.com/paper-repro/pdsat-go/pdsat"
)

// fleetTestConfig is the fixed-seed configuration of the fleet regression
// tests; pol == nil means the zero policy (full-sample evaluations).
func fleetTestConfig(sample int, pol *pdsat.EvalPolicy) pdsat.Config {
	cfg := pdsat.Config{
		Runner: pdsat.RunnerConfig{
			SampleSize: sample,
			Workers:    2,
			Seed:       1,
			CostMetric: pdsat.CostPropagations,
		},
		Search: pdsat.SearchOptions{Seed: 1, MaxEvaluations: 10},
		Cores:  480,
	}
	if pol != nil {
		cfg.Runner.Policy = *pol
	}
	return cfg
}

// sameSearchResult compares two search results bit for bit: best point and
// value, evaluation count, stop reason and the full visit trace.
//
// Pruned visits are compared by point, flags and order but not by Value:
// an incumbent-pruned evaluation reports the lower bound 2^d·(Σζ)/N over
// every observed cost *including solves truncated by the abort*, and how far
// an in-flight solve got before the abort interrupt landed is scheduling
// noise.  The direct SearchJob path has exactly the same run-to-run
// variability (it is inherent to the PR-4 batch abort, not to fleets); what
// the searches consume from a pruned visit — "worse than the incumbent" —
// is deterministic, so walks, best values and full-estimate visit values
// must still match exactly.
func sameSearchResult(t *testing.T, label string, got, want *pdsat.SearchResult) {
	t.Helper()
	if got.BestValue != want.BestValue {
		t.Fatalf("%s: best F %v != %v", label, got.BestValue, want.BestValue)
	}
	gv, wv := got.BestPoint.SortedVars(), want.BestPoint.SortedVars()
	if len(gv) != len(wv) {
		t.Fatalf("%s: best set size %d != %d", label, len(gv), len(wv))
	}
	for i := range gv {
		if gv[i] != wv[i] {
			t.Fatalf("%s: best sets differ at %d: %v vs %v", label, i, gv, wv)
		}
	}
	if got.Evaluations != want.Evaluations || got.Stop != want.Stop {
		t.Fatalf("%s: run shape differs: %d/%s vs %d/%s", label,
			got.Evaluations, got.Stop, want.Evaluations, want.Stop)
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("%s: trace length %d != %d", label, len(got.Trace), len(want.Trace))
	}
	for i := range got.Trace {
		g, w := got.Trace[i], want.Trace[i]
		if g.Point.Key() != w.Point.Key() ||
			g.Accepted != w.Accepted || g.Improved != w.Improved || g.Pruned != w.Pruned {
			t.Fatalf("%s: trace visit %d differs: %+v vs %+v", label, i, g, w)
		}
		if !g.Pruned && g.Value != w.Value {
			t.Fatalf("%s: trace visit %d value differs: %v vs %v", label, i, g.Value, w.Value)
		}
	}
}

// TestFleetOfOneBitIdenticalToDirectSearch is the PR's central regression
// gate: a fleet of one tabu member with root seed r must be bit-identical —
// best F, full trace, and the best-set estimate's sample statistics — to the
// direct SearchJob path on a session configured with the member's derived
// sub-seeds (RunnerConfig.Seed = SubSeed(r,0), SearchOptions.Seed =
// SubSeed(r,1)).  Checked with the zero policy and with the default policy
// (pruning + staging + F-cache).
func TestFleetOfOneBitIdenticalToDirectSearch(t *testing.T) {
	inst := testInstance(t, 46, 40, 3)
	def := pdsat.DefaultEvalPolicy()
	for _, tc := range []struct {
		name string
		pol  *pdsat.EvalPolicy
	}{
		{"zero-policy", nil},
		{"default-policy", &def},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const root = int64(9)
			fleetSession, err := pdsat.NewSession(pdsat.FromInstance(inst), fleetTestConfig(12, tc.pol))
			if err != nil {
				t.Fatal(err)
			}
			outcome, err := fleetSession.SearchFleet(context.Background(), pdsat.FleetJob{
				Members: []pdsat.FleetMemberSpec{{Method: "tabu"}},
				Seed:    root,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(outcome.Members) != 1 || outcome.BestMember != 0 {
				t.Fatalf("fleet of one reported %d members, winner %d", len(outcome.Members), outcome.BestMember)
			}
			member := outcome.Members[0]
			if member.EvalSeed != pdsat.SubSeed(root, 0) || member.SearchSeed != pdsat.SubSeed(root, 1) {
				t.Fatalf("member seeds %d/%d do not follow the SubSeed rule", member.EvalSeed, member.SearchSeed)
			}

			directCfg := fleetTestConfig(12, tc.pol)
			directCfg.Runner.Seed = pdsat.SubSeed(root, 0)
			directCfg.Search.Seed = pdsat.SubSeed(root, 1)
			directSession, err := pdsat.NewSession(pdsat.FromInstance(inst), directCfg)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := directSession.SearchTabu(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			sameSearchResult(t, tc.name, member.Result, direct.Result)
			if member.Best == nil || direct.Best == nil {
				t.Fatal("missing best-set estimate")
			}
			if member.Best.Estimate.Value != direct.Best.Estimate.Value ||
				member.Best.Estimate.SampleSize != direct.Best.Estimate.SampleSize ||
				member.Best.SatisfiableSamples != direct.Best.SatisfiableSamples ||
				member.Best.CacheHit != direct.Best.CacheHit {
				t.Fatalf("best-set estimates differ: %+v vs %+v", member.Best, direct.Best)
			}
		})
	}
}

// TestMixedFleetDeterministicPerMember races a tabu:2,sa:2 fleet (with
// start-point jitter) twice under the zero policy and checks every member
// reproduces its start set, best point, best value and evaluation count
// exactly: goroutine interleaving must not leak into per-member results.
func TestMixedFleetDeterministicPerMember(t *testing.T) {
	inst := testInstance(t, 46, 40, 3)
	run := func() *pdsat.FleetOutcome {
		s, err := pdsat.NewSession(pdsat.FromInstance(inst), fleetTestConfig(8, nil))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		outcome, err := s.SearchFleet(context.Background(), pdsat.FleetJob{
			Members: []pdsat.FleetMemberSpec{
				{Method: "tabu", Count: 2},
				{Method: "sa", Count: 2},
			},
			Seed:           11,
			Jitter:         2,
			MaxEvaluations: 24,
			KeepRacing:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return outcome
	}
	a, b := run(), run()
	if len(a.Members) != 4 || len(b.Members) != 4 {
		t.Fatalf("expected 4 members, got %d and %d", len(a.Members), len(b.Members))
	}
	for i := range a.Members {
		ma, mb := a.Members[i], b.Members[i]
		if ma.Method != mb.Method || ma.EvalSeed != mb.EvalSeed || ma.SearchSeed != mb.SearchSeed {
			t.Fatalf("member %d identity differs across runs", i)
		}
		if len(ma.StartVars) != len(mb.StartVars) {
			t.Fatalf("member %d start sets differ across runs", i)
		}
		for k := range ma.StartVars {
			if ma.StartVars[k] != mb.StartVars[k] {
				t.Fatalf("member %d start sets differ across runs: %v vs %v", i, ma.StartVars, mb.StartVars)
			}
		}
		sameSearchResult(t, "member", ma.Result, mb.Result)
	}
	if a.BestMember != b.BestMember || a.BestValue != b.BestValue {
		t.Fatalf("winner differs across runs: %d/%v vs %d/%v", a.BestMember, a.BestValue, b.BestMember, b.BestValue)
	}
	// Member 0 keeps the canonical start; jittered members must differ from
	// it (2 flips of a full start set remove exactly 2 variables).
	full := len(inst.UnknownStartVars())
	if len(a.Members[0].StartVars) != full {
		t.Fatalf("member 0 start set was jittered: %d of %d vars", len(a.Members[0].StartVars), full)
	}
	for i := 1; i < len(a.Members); i++ {
		if len(a.Members[i].StartVars) != full-2 {
			t.Fatalf("member %d start set has %d vars, want %d after 2 jitter flips",
				i, len(a.Members[i].StartVars), full-2)
		}
	}
}

// TestFleetJobEvents checks the fleet job's event stream: member-tagged
// visits, exactly one FleetMemberDone per member, strictly decreasing
// IncumbentImproved values, and the single terminal Done.
func TestFleetJobEvents(t *testing.T) {
	inst := testInstance(t, 46, 40, 3)
	def := pdsat.DefaultEvalPolicy()
	s, err := pdsat.NewSession(pdsat.FromInstance(inst), fleetTestConfig(8, &def))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j, err := s.FleetJob(context.Background(), pdsat.FleetJob{
		Members:        []pdsat.FleetMemberSpec{{Method: "tabu"}, {Method: "sa"}},
		Seed:           5,
		MaxEvaluations: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()

	memberDone := map[int]int{}
	var improvements []float64
	visits := 0
	var last pdsat.Event
	for e := range j.Events() {
		last = e
		switch ev := e.(type) {
		case pdsat.FleetMemberDone:
			memberDone[ev.Member]++
			if ev.Method == "" || ev.Stop == "" {
				t.Fatalf("FleetMemberDone missing method/stop: %+v", ev)
			}
		case pdsat.IncumbentImproved:
			improvements = append(improvements, ev.Value)
			if ev.Member < 0 || ev.Member > 1 {
				t.Fatalf("IncumbentImproved from out-of-range member %d", ev.Member)
			}
		case pdsat.SearchVisit:
			visits++
			if ev.Member < 0 || ev.Member > 1 {
				t.Fatalf("SearchVisit from out-of-range member %d", ev.Member)
			}
		}
	}
	if _, ok := last.(pdsat.Done); !ok {
		t.Fatalf("stream did not end with Done but %T", last)
	}
	if memberDone[0] != 1 || memberDone[1] != 1 {
		t.Fatalf("expected exactly one FleetMemberDone per member, got %v", memberDone)
	}
	if visits == 0 {
		t.Fatal("no member-tagged search visits")
	}
	if len(improvements) == 0 {
		t.Fatal("no incumbent improvements reported")
	}
	for i := 1; i < len(improvements); i++ {
		if improvements[i] >= improvements[i-1] {
			t.Fatalf("incumbent improvements not strictly decreasing: %v", improvements)
		}
	}

	res, err := j.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Fleet == nil || len(res.Fleet.Members) != 2 {
		t.Fatalf("fleet job result malformed: %+v", res)
	}
	if res.Fleet.BestMember < 0 || math.IsInf(res.Fleet.BestValue, 1) {
		t.Fatalf("fleet found no winner: %+v", res.Fleet)
	}
	if res.Fleet.Best == nil {
		t.Fatal("missing winner estimate")
	}
}

// TestFleetTargetFStopsRace submits an easily reachable target and checks
// the race ends with at least one member on the target stop.
func TestFleetTargetFStopsRace(t *testing.T) {
	inst := testInstance(t, 46, 40, 3)
	s, err := pdsat.NewSession(pdsat.FromInstance(inst), fleetTestConfig(8, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	outcome, err := s.SearchFleet(context.Background(), pdsat.FleetJob{
		Members: []pdsat.FleetMemberSpec{{Method: "tabu", Count: 2}},
		Seed:    5,
		TargetF: math.MaxFloat64 / 2, // any certified estimate hits it
	})
	if err != nil {
		t.Fatal(err)
	}
	hit := false
	for _, m := range outcome.Members {
		if m.Result != nil && m.Result.Stop == pdsat.StopTarget {
			hit = true
		}
	}
	if !hit {
		t.Fatal("no member stopped on the target")
	}
	if outcome.BestMember < 0 {
		t.Fatal("target-stopped fleet reported no winner")
	}
}

// TestFleetJobValidation covers the submit-time error paths.
func TestFleetJobValidation(t *testing.T) {
	inst := testInstance(t, 46, 40, 3)
	s, err := pdsat.NewSession(pdsat.FromInstance(inst), fleetTestConfig(8, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	bad := []pdsat.FleetJob{
		{},
		{Members: []pdsat.FleetMemberSpec{{Method: "genetic"}}},
		{Members: []pdsat.FleetMemberSpec{{Method: "tabu", Count: -1}}},
		{Members: []pdsat.FleetMemberSpec{{Method: "tabu", Count: pdsat.MaxFleetMembers + 1}}},
		{Members: []pdsat.FleetMemberSpec{{Method: "tabu"}}, Jitter: -1},
		{Members: []pdsat.FleetMemberSpec{{Method: "tabu"}}, Jitter: 10000},
		{Members: []pdsat.FleetMemberSpec{{Method: "tabu"}}, TargetF: -1},
		{Members: []pdsat.FleetMemberSpec{{Method: "tabu"}}, MaxEvaluations: -1},
		// A fleet-total budget below the member count would hand some
		// members a zero (= unlimited) budget.
		{Members: []pdsat.FleetMemberSpec{{Method: "tabu", Count: 4}}, MaxEvaluations: 3},
		{Members: []pdsat.FleetMemberSpec{{Method: "tabu", Start: []pdsat.Var{999999}}}},
		{Members: []pdsat.FleetMemberSpec{{Method: "tabu"}}, Policy: &pdsat.EvalPolicy{Stages: -1}},
	}
	for i, spec := range bad {
		if _, err := s.Submit(context.Background(), spec); err == nil {
			t.Fatalf("bad fleet spec %d accepted", i)
		}
	}
}

// TestFleetJitterNeverEmptiesStart pins the jitter guard: with a tiny
// two-variable start set and one jitter flip per member, every member's
// start must stay non-empty and every member must still produce a result.
func TestFleetJitterNeverEmptiesStart(t *testing.T) {
	inst := testInstance(t, 46, 40, 3)
	s, err := pdsat.NewSession(pdsat.FromInstance(inst), fleetTestConfig(6, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	start := inst.UnknownStartVars()[:2]
	outcome, err := s.SearchFleet(context.Background(), pdsat.FleetJob{
		Members:        []pdsat.FleetMemberSpec{{Method: "tabu", Count: 4}},
		Start:          start,
		Seed:           13,
		Jitter:         1,
		MaxEvaluations: 8,
		KeepRacing:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range outcome.Members {
		if len(m.StartVars) == 0 {
			t.Fatalf("member %d was jittered to an empty start set", i)
		}
		if m.Err != "" || m.Result == nil {
			t.Fatalf("member %d failed: %q", i, m.Err)
		}
	}
}

// TestParseFleet covers the CLI fleet notation.
func TestParseFleet(t *testing.T) {
	specs, err := pdsat.ParseFleet("tabu:4, sa:2, annealing")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 || specs[0].Count != 4 || specs[1].Count != 2 || specs[2].Count != 1 {
		t.Fatalf("unexpected parse: %+v", specs)
	}
	for _, bad := range []string{"", "tabu:0", "tabu:-2", "tabu:x", ",,"} {
		if _, err := pdsat.ParseFleet(bad); err == nil {
			t.Fatalf("bad fleet string %q accepted", bad)
		}
	}
}
