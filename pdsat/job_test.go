package pdsat_test

import (
	"context"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/pdsat"
)

// collect drains a job's event stream into a slice.
func collect(t *testing.T, events <-chan pdsat.Event) []pdsat.Event {
	t.Helper()
	var out []pdsat.Event
	timeout := time.After(60 * time.Second)
	for {
		select {
		case e, ok := <-events:
			if !ok {
				return out
			}
			out = append(out, e)
		case <-timeout:
			t.Fatalf("event stream did not terminate (got %d events)", len(out))
		}
	}
}

// checkTerminated asserts the ordering contract: exactly one Done event,
// and it is the last one.
func checkTerminated(t *testing.T, events []pdsat.Event) pdsat.Done {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	dones := 0
	for _, e := range events {
		if _, ok := e.(pdsat.Done); ok {
			dones++
		}
	}
	if dones != 1 {
		t.Fatalf("stream carries %d Done events, want exactly 1", dones)
	}
	done, ok := events[len(events)-1].(pdsat.Done)
	if !ok {
		t.Fatalf("last event is %T, want Done", events[len(events)-1])
	}
	return done
}

func TestEstimateJobEventStream(t *testing.T) {
	inst := testInstance(t, 52, 30, 1)
	s := newTestSession(t, inst, 16)
	job, err := s.Submit(context.Background(), pdsat.EstimateJob{})
	if err != nil {
		t.Fatal(err)
	}
	if job.ID() == "" || job.Kind() != pdsat.JobEstimate {
		t.Fatalf("job handle: id=%q kind=%q", job.ID(), job.Kind())
	}
	events := collect(t, job.Events())
	done := checkTerminated(t, events)
	if done.Err != "" || done.Cancelled {
		t.Fatalf("unexpected terminal event: %+v", done)
	}

	// 16 SampleProgress events with contiguous counters, in order.
	var progress []pdsat.SampleProgress
	for _, e := range events {
		if sp, ok := e.(pdsat.SampleProgress); ok {
			progress = append(progress, sp)
		}
	}
	if len(progress) != 16 {
		t.Fatalf("got %d SampleProgress events, want 16", len(progress))
	}
	for i, sp := range progress {
		if sp.Done != i+1 || sp.Total != 16 {
			t.Fatalf("progress %d: %+v", i, sp)
		}
		if sp.Job != job.ID() || !sp.Solved {
			t.Fatalf("progress %d: %+v", i, sp)
		}
	}

	// A late subscriber replays the identical stream.
	replay := collect(t, job.Events())
	if len(replay) != len(events) {
		t.Fatalf("replay has %d events, original %d", len(replay), len(events))
	}
	for i := range replay {
		if replay[i] != events[i] {
			// Events with slices (SearchVisit) are not comparable this way,
			// but an estimate stream has only comparable events.
			t.Fatalf("replay diverges at %d: %+v vs %+v", i, replay[i], events[i])
		}
	}
}

func TestSearchJobEmitsVisits(t *testing.T) {
	inst := testInstance(t, 52, 30, 1)
	s := newTestSession(t, inst, 4)
	job, err := s.Submit(context.Background(), pdsat.SearchJob{Method: "tabu"})
	if err != nil {
		t.Fatal(err)
	}
	events := collect(t, job.Events())
	checkTerminated(t, events)

	res, err := job.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Search == nil || res.Search.Result == nil {
		t.Fatal("search job without search result")
	}
	var visits []pdsat.SearchVisit
	samples := 0
	for _, e := range events {
		switch v := e.(type) {
		case pdsat.SearchVisit:
			visits = append(visits, v)
		case pdsat.SampleProgress:
			samples++
		}
	}
	if len(visits) != len(res.Search.Result.Trace) {
		t.Fatalf("got %d SearchVisit events, want %d (one per trace entry)",
			len(visits), len(res.Search.Result.Trace))
	}
	for i, v := range visits {
		want := res.Search.Result.Trace[i]
		if v.Index != want.Index || v.Value != want.Value ||
			v.Accepted != want.Accepted || v.Improved != want.Improved {
			t.Fatalf("visit %d diverges from trace: %+v vs %+v", i, v, want)
		}
	}
	if samples == 0 {
		t.Fatal("search job emitted no sample progress from its evaluations")
	}
}

func TestCancelledJobSingleDone(t *testing.T) {
	inst := testInstance(t, 48, 40, 3)
	s := newTestSession(t, inst, 4)
	// A full family of 2^16 subproblems: plenty of time to cancel.
	job, err := s.Submit(context.Background(), pdsat.SolveJob{})
	if err != nil {
		t.Fatal(err)
	}
	events := job.Events()
	// Wait for the job to make some progress, then cancel it.
	select {
	case <-events:
	case <-time.After(60 * time.Second):
		t.Fatal("no progress before cancel")
	}
	job.Cancel()
	all := collect(t, events)
	done := checkTerminated(t, all)
	if !done.Cancelled {
		t.Fatalf("terminal event not marked cancelled: %+v", done)
	}
	if !job.Finished() {
		t.Fatal("job not finished after stream termination")
	}
	// Cancelling again is a no-op and produces no further events.
	job.Cancel()
	res, _ := job.Result(context.Background())
	if res == nil || res.Solve == nil || !res.Solve.Interrupted {
		t.Fatalf("cancelled solve should return a partial interrupted report, got %+v", res)
	}
}

func TestWorkerEventsBroadcast(t *testing.T) {
	inst := testInstance(t, 52, 30, 1)
	s := newTestSession(t, inst, 2000)
	job, err := s.Submit(context.Background(), pdsat.EstimateJob{})
	if err != nil {
		t.Fatal(err)
	}
	s.PublishWorkerJoined("w1", 4)
	s.PublishWorkerLost("w1", 3)
	job.Cancel()
	events := collect(t, job.Events())
	checkTerminated(t, events)
	joined, lost := 0, 0
	for _, e := range events {
		switch v := e.(type) {
		case pdsat.WorkerJoined:
			if v.Worker != "w1" || v.Slots != 4 || v.Job != job.ID() {
				t.Fatalf("WorkerJoined: %+v", v)
			}
			joined++
		case pdsat.WorkerLost:
			if v.Worker != "w1" || v.Requeued != 3 {
				t.Fatalf("WorkerLost: %+v", v)
			}
			lost++
		}
	}
	if joined != 1 || lost != 1 {
		t.Fatalf("worker events: joined=%d lost=%d, want 1/1", joined, lost)
	}
	// Events published after completion reach no stream.
	s.PublishWorkerJoined("w2", 1)
	if tail := collect(t, job.Events()); len(tail) != len(events) {
		t.Fatal("event published after Done leaked into the stream")
	}
}

// TestSampleProgressDecimation pins the memory bound of retained event
// histories: a batch larger than the per-batch event budget is reported as
// evenly spaced notifications whose counters stay strictly increasing and
// end exactly at Total.
func TestSampleProgressDecimation(t *testing.T) {
	defer pdsat.SetMaxSampleEventsForTest(16)()
	inst := testInstance(t, 53, 48, 7) // 11 unknowns: a family of 2048
	s := newTestSession(t, inst, 4)
	job, err := s.Submit(context.Background(), pdsat.SolveJob{})
	if err != nil {
		t.Fatal(err)
	}
	events := collect(t, job.Events())
	checkTerminated(t, events)
	var progress []pdsat.SampleProgress
	for _, e := range events {
		if sp, ok := e.(pdsat.SampleProgress); ok {
			progress = append(progress, sp)
		}
	}
	// 2048/16 = stride 128: 16 evenly spaced reports plus the
	// always-reported satisfiable results — far fewer than the family.
	if len(progress) == 0 || len(progress) > 64 {
		t.Fatalf("got %d SampleProgress events for a 2048 family, want a decimated stream", len(progress))
	}
	last, sats := 0, 0
	for _, sp := range progress {
		if sp.Done <= last || sp.Total != 2048 {
			t.Fatalf("counters not strictly increasing toward total: %+v after %d", sp, last)
		}
		last = sp.Done
		if sp.Satisfiable {
			sats++
		}
	}
	if last != 2048 {
		t.Fatalf("final progress event reports %d, want Total", last)
	}
	if sats == 0 {
		t.Fatal("the family's satisfiable subproblem must always be reported")
	}
}

func TestRemoveJob(t *testing.T) {
	inst := testInstance(t, 52, 30, 1)
	s := newTestSession(t, inst, 2000)
	job, err := s.Submit(context.Background(), pdsat.EstimateJob{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(job.ID()); err == nil {
		t.Fatal("removing a running job must fail")
	}
	job.Cancel()
	<-job.Done()
	if err := s.Remove(job.ID()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Job(job.ID()); ok || len(s.Jobs()) != 0 {
		t.Fatal("job still registered after Remove")
	}
	if err := s.Remove(job.ID()); err == nil {
		t.Fatal("removing an unknown job must fail")
	}
}

func TestSubmitValidation(t *testing.T) {
	inst := testInstance(t, 52, 30, 1)
	s := newTestSession(t, inst, 4)
	if _, err := s.Submit(context.Background(), nil); err == nil {
		t.Fatal("expected error for nil spec")
	}
	if _, err := s.Submit(context.Background(), pdsat.EstimateJob{Vars: []pdsat.Var{99999}}); err == nil {
		t.Fatal("expected error for out-of-space vars")
	}
	if _, err := s.Submit(context.Background(), pdsat.SearchJob{Method: "genetic"}); err == nil {
		t.Fatal("expected error for unknown method")
	}
	if len(s.Jobs()) != 0 {
		t.Fatal("failed submissions must not register jobs")
	}
	job, err := s.Submit(context.Background(), pdsat.EstimateJob{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Job(job.ID()); !ok || got != job {
		t.Fatal("job lookup")
	}
	if _, err := job.Result(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), pdsat.EstimateJob{}); err == nil {
		t.Fatal("expected error after Close")
	}
}
