package pdsat_test

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/internal/cluster"
	"github.com/paper-repro/pdsat-go/pdsat"
)

// TestFleetSurvivesWorkerLoss kills a TCP worker in the middle of a running
// fleet and checks the race still terminates with consistent accounting:
// every member produces a result, the leader requeues the lost worker's
// in-flight subproblems (so nothing is lost and nothing double-counted —
// solved+aborted exactly matches evaluations × sample size), the WorkerLost
// event reaches the fleet job's stream, and the per-member best values are
// bit-identical to the same fixed-seed fleet run entirely in-process.
func TestFleetSurvivesWorkerLoss(t *testing.T) {
	inst := testInstance(t, 46, 40, 3)
	const sample = 10
	spec := pdsat.FleetJob{
		Members: []pdsat.FleetMemberSpec{
			{Method: "tabu", Count: 2},
			{Method: "sa"},
		},
		Seed:           7,
		MaxEvaluations: 12,
		KeepRacing:     true,
	}

	// Reference run: the same fixed-seed fleet on the in-process transport.
	refSession, err := pdsat.NewSession(pdsat.FromInstance(inst), fleetTestConfig(sample, nil))
	if err != nil {
		t.Fatal(err)
	}
	want, err := refSession.SearchFleet(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	refSession.Close()

	// Cluster run: a leader with two remote workers, one of which dies
	// mid-fleet.  Worker churn is forwarded into the session's job streams
	// once the session exists, like cmd/pdsat -listen does.
	var sessionRef atomic.Pointer[pdsat.Session]
	leader, err := cluster.Listen("127.0.0.1:0", inst.CNF, cluster.LeaderOptions{
		Heartbeat: 100 * time.Millisecond,
		Logf:      t.Logf,
		OnWorkerLost: func(name string, requeued int) {
			if s := sessionRef.Load(); s != nil {
				s.PublishWorkerLost(name, requeued)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	addr := leader.Addr().String()

	doomedCtx, killDoomed := context.WithCancel(context.Background())
	defer killDoomed()
	go func() {
		_ = cluster.Serve(doomedCtx, addr, cluster.WorkerOptions{Capacity: 2, Name: "doomed", Logf: t.Logf})
	}()
	survivorCtx, stopSurvivor := context.WithCancel(context.Background())
	defer stopSurvivor()
	go func() {
		_ = cluster.Serve(survivorCtx, addr, cluster.WorkerOptions{Capacity: 2, Name: "survivor", Logf: t.Logf})
	}()
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer waitCancel()
	if err := leader.WaitForWorkers(waitCtx, 2); err != nil {
		t.Fatal(err)
	}

	cfg := fleetTestConfig(sample, nil)
	cfg.Runner.Transport = leader
	session, err := pdsat.NewSession(pdsat.FromInstance(inst), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()
	sessionRef.Store(session)

	j, err := session.FleetJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the doomed worker once the fleet has real work in flight.
	sawLost := make(chan pdsat.WorkerLost, 1)
	go func() {
		progressed := 0
		for e := range j.Subscribe(context.Background()) {
			switch ev := e.(type) {
			case pdsat.SampleProgress:
				progressed++
				if progressed == 2*sample {
					killDoomed()
				}
			case pdsat.WorkerLost:
				select {
				case sawLost <- ev:
				default:
				}
			}
		}
	}()

	select {
	case <-j.Done():
	case <-time.After(180 * time.Second):
		t.Fatal("fleet did not terminate after the worker loss")
	}
	res, err := j.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := res.Fleet
	if got == nil || len(got.Members) != len(want.Members) {
		t.Fatalf("fleet result malformed after worker loss: %+v", got)
	}
	for i, m := range got.Members {
		if m.Err != "" {
			t.Fatalf("member %d failed after worker loss: %s", i, m.Err)
		}
		if m.Result == nil {
			t.Fatalf("member %d has no result after worker loss", i)
		}
		// Pristine per-subproblem resets make costs worker-independent, so
		// the requeued run must reproduce the in-process fleet exactly.
		sameSearchResult(t, "member-after-loss", m.Result, want.Members[i].Result)
	}
	if got.BestMember != want.BestMember || got.BestValue != want.BestValue {
		t.Fatalf("winner differs after worker loss: %d/%v vs %d/%v",
			got.BestMember, got.BestValue, want.BestMember, want.BestValue)
	}

	select {
	case lost := <-sawLost:
		if lost.Worker != "doomed" {
			t.Fatalf("lost worker %q, want doomed", lost.Worker)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("WorkerLost event never reached the fleet job's stream")
	}

	// Accounting: with the zero policy every evaluation solves its full
	// sample exactly once — requeued, not lost, not duplicated.
	stats := session.Stats()
	if stats.SubproblemsSolved != stats.Evaluations*sample {
		t.Fatalf("accounting skew after worker loss: %d solved for %d evaluations × %d samples",
			stats.SubproblemsSolved, stats.Evaluations, sample)
	}
	if stats.SubproblemsAborted != 0 {
		t.Fatalf("%d subproblems aborted in an uncancelled zero-policy fleet", stats.SubproblemsAborted)
	}
}
