package pdsat_test

import (
	"context"
	"testing"

	"github.com/paper-repro/pdsat-go/internal/cnf"
	"github.com/paper-repro/pdsat-go/internal/decomp"
	"github.com/paper-repro/pdsat-go/internal/encoder"
	runner "github.com/paper-repro/pdsat-go/internal/pdsat"
	"github.com/paper-repro/pdsat-go/internal/solver"
	"github.com/paper-repro/pdsat-go/pdsat"
)

// testInstance builds a weakened A5/1 instance small enough for fast tests
// but hard enough that subproblems need real search.
func testInstance(t testing.TB, known, ksLen int, seed int64) *encoder.Instance {
	t.Helper()
	inst, err := encoder.NewInstance(encoder.A51(), encoder.Config{
		KeystreamLen: ksLen,
		KnownSuffix:  known,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func testConfig(sample int) pdsat.Config {
	return pdsat.Config{
		Runner: pdsat.RunnerConfig{
			SampleSize: sample,
			Workers:    2,
			Seed:       1,
			CostMetric: pdsat.CostPropagations,
		},
		Search: pdsat.SearchOptions{Seed: 1, MaxEvaluations: 30},
		Cores:  480,
	}
}

func newTestSession(t testing.TB, inst *encoder.Instance, sample int) *pdsat.Session {
	t.Helper()
	s, err := pdsat.NewSession(pdsat.FromInstance(inst), testConfig(sample))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFromInstanceAndFromFormula(t *testing.T) {
	inst := testInstance(t, 52, 30, 1)
	p := pdsat.FromInstance(inst)
	if p.Name == "" || p.Formula == nil || len(p.StartSet) != 12 || p.Instance != inst {
		t.Fatalf("FromInstance: %+v", p)
	}
	if p.Space().Size() != 12 {
		t.Fatal("Space size")
	}

	f := cnf.New(3)
	f.AddClauseLits(1, 2, 3)
	q := pdsat.FromFormula("tiny", f, []pdsat.Var{1, 2})
	if q.Name != "tiny" || len(q.StartSet) != 2 || q.Instance != nil {
		t.Fatalf("FromFormula: %+v", q)
	}
}

func TestFromGenerator(t *testing.T) {
	p, err := pdsat.FromGenerator("bivium", pdsat.GeneratorConfig{KeystreamLen: 40, KnownSuffix: 170, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.Formula == nil || len(p.StartSet) == 0 || p.Instance == nil {
		t.Fatalf("FromGenerator: %+v", p)
	}
	if _, err := pdsat.FromGenerator("enigma", pdsat.GeneratorConfig{}); err == nil {
		t.Fatal("expected error for unknown generator")
	}
}

func TestNewSessionValidation(t *testing.T) {
	if _, err := pdsat.NewSession(nil, pdsat.DefaultConfig()); err == nil {
		t.Fatal("expected error for nil problem")
	}
	f := cnf.New(2)
	f.AddClauseLits(1, 2)
	if _, err := pdsat.NewSession(&pdsat.Problem{Name: "x", Formula: f}, pdsat.DefaultConfig()); err == nil {
		t.Fatal("expected error for empty start set")
	}
	p := pdsat.FromFormula("x", f, []pdsat.Var{1, 2})
	cfg := pdsat.Config{}
	cfg.Runner.SampleSize = -1
	if _, err := pdsat.NewSession(p, cfg); err == nil {
		t.Fatal("expected error for negative sample size")
	}
	cfg = pdsat.Config{}
	cfg.Search.MaxEvaluations = -1
	if _, err := pdsat.NewSession(p, cfg); err == nil {
		t.Fatal("expected error for negative search budget")
	}
	s, err := pdsat.NewSession(p, pdsat.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Config().Cores != 480 {
		t.Fatal("zero Cores should default to 480")
	}
	if s.Problem() != p || s.Space() == nil || s.Runner() == nil {
		t.Fatal("accessors misbehave")
	}
}

// TestEstimateJobBitIdentical is the regression for the facade redesign: a
// fixed-seed estimate through the new Session/EstimateJob API must be
// bit-identical — F value, sample statistics, conflict activities — to the
// bare runner path the old core.Engine.EstimatePoint facade used.
func TestEstimateJobBitIdentical(t *testing.T) {
	inst := testInstance(t, 48, 40, 3)

	// Old path: a bare runner, exactly as core.Engine drove it.
	r := runner.NewRunner(inst.CNF, runner.Config{
		SampleSize: 24,
		Workers:    2,
		Seed:       1,
		CostMetric: solver.CostPropagations,
	})
	space := decomp.NewSpace(inst.UnknownStartVars())
	want, err := r.EvaluatePoint(context.Background(), space.FullPoint())
	if err != nil {
		t.Fatal(err)
	}

	// New path: a session job.
	s := newTestSession(t, inst, 24)
	job, err := s.Submit(context.Background(), pdsat.EstimateJob{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := res.Estimate
	if got == nil {
		t.Fatal("estimate job returned no estimate")
	}
	if got.Estimate != want.Estimate {
		t.Fatalf("estimate mismatch:\n got  %+v\n want %+v", got.Estimate, want.Estimate)
	}
	if got.SatisfiableSamples != want.SatisfiableSamples {
		t.Fatalf("SAT samples: got %d, want %d", got.SatisfiableSamples, want.SatisfiableSamples)
	}
	for v := cnf.Var(1); int(v) <= inst.CNF.NumVars; v++ {
		if s.Runner().VarActivity(v) != r.VarActivity(v) {
			t.Fatalf("conflict activity of %d diverged: %v vs %v",
				v, s.Runner().VarActivity(v), r.VarActivity(v))
		}
	}
	if s.Runner().SubproblemsSolved() != r.SubproblemsSolved() {
		t.Fatal("subproblem accounting diverged")
	}
	gotStats, wantStats := s.Runner().AggregateStats(), r.AggregateStats()
	// SolveTime is wall clock and necessarily differs between the runs.
	gotStats.SolveTime, wantStats.SolveTime = 0, 0
	if gotStats != wantStats {
		t.Fatalf("aggregate statistics diverged:\n got  %+v\n want %+v", gotStats, wantStats)
	}
}

// TestSyncWrappersMatchOldEngine ports the old core façade tests: the
// synchronous wrappers run through jobs but behave like the old Engine.
func TestEstimateStartSetAndSet(t *testing.T) {
	inst := testInstance(t, 48, 40, 3)
	s := newTestSession(t, inst, 12)
	ctx := context.Background()
	est, err := s.EstimateStartSet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if est.Estimate.Dimension != 16 || est.Estimate.SampleSize != 12 {
		t.Fatalf("estimate metadata: %+v", est.Estimate)
	}
	if est.Estimate.Value <= 0 {
		t.Fatalf("estimate value should be positive with the propagation cost metric, got %v", est.Estimate.Value)
	}
	if est.PerCores >= est.Estimate.Value || est.Cores != 480 {
		t.Fatalf("extrapolation wrong: %v vs %v", est.PerCores, est.Estimate.Value)
	}
	if len(est.Vars) != 16 {
		t.Fatalf("Vars = %v", est.Vars)
	}
	if est.WallTime <= 0 {
		t.Fatal("wall time")
	}

	// Estimate a strict subset.
	sub, err := s.EstimateSet(ctx, inst.UnknownStartVars()[:10])
	if err != nil {
		t.Fatal(err)
	}
	if sub.Estimate.Dimension != 10 {
		t.Fatalf("subset dimension = %d", sub.Estimate.Dimension)
	}
	// Variables outside the start set are rejected.
	if _, err := s.EstimateSet(ctx, []pdsat.Var{pdsat.Var(inst.CNF.NumVars)}); err == nil {
		t.Fatal("expected error for variable outside the search space")
	}
	// The empty set is rejected.
	if _, err := s.EstimatePoint(ctx, s.Space().EmptyPoint()); err == nil {
		t.Fatal("expected error for the empty decomposition set")
	}
}

func TestSearchTabuAndSA(t *testing.T) {
	inst := testInstance(t, 50, 40, 5)
	s := newTestSession(t, inst, 8)
	ctx := context.Background()

	tabu, err := s.SearchTabu(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tabu.Method != pdsat.MethodTabu || tabu.Result == nil {
		t.Fatalf("outcome: %+v", tabu)
	}
	if tabu.Result.Evaluations == 0 || tabu.Result.BestPoint.Count() == 0 {
		t.Fatal("tabu search did no work")
	}
	if tabu.Best == nil || tabu.Best.Estimate.Value <= 0 {
		t.Fatal("best estimate missing")
	}

	sa, err := s.SearchSimulatedAnnealing(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Method != pdsat.MethodSimulatedAnnealing || sa.Result.Evaluations == 0 {
		t.Fatalf("outcome: %+v", sa)
	}

	// SearchFrom with an explicit method and start point.
	out, err := s.SearchFrom(ctx, "tabu", s.Space().FullPoint())
	if err != nil {
		t.Fatal(err)
	}
	if out.Method != pdsat.MethodTabu {
		t.Fatal("method name")
	}
	if _, err := s.SearchFrom(ctx, "genetic", s.Space().FullPoint()); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestPredictAndSolveAgreement(t *testing.T) {
	// Weakened A5/1 with 11 unknown state bits: the full family (2048
	// subproblems) is processed and compared against the prediction.
	inst := testInstance(t, 53, 48, 7)
	s := newTestSession(t, inst, 160)
	ctx := context.Background()
	cmp, err := s.PredictAndSolve(ctx, inst.UnknownStartVars())
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.FoundSat {
		t.Fatal("processing the whole family must find the secret key")
	}
	if !cmp.KeyValid {
		t.Fatal("the recovered key must reproduce the keystream")
	}
	if cmp.SetSize != 11 || cmp.Cores != 480 {
		t.Fatalf("metadata: %+v", cmp)
	}
	if cmp.Predicted1Core <= 0 || cmp.MeasuredTotal <= 0 {
		t.Fatalf("degenerate costs: %+v", cmp)
	}
	if cmp.PredictedKCores >= cmp.Predicted1Core {
		t.Fatal("k-core prediction should be smaller than 1-core prediction")
	}
	if cmp.MeasuredToFirstSat > cmp.MeasuredTotal {
		t.Fatal("cost to first SAT cannot exceed the total cost")
	}
	// The headline claim of the paper: prediction and measurement agree
	// (Table 3 reports ~8% average deviation; we allow a broad margin since
	// the sample here is small).
	if cmp.Deviation > 0.6 {
		t.Fatalf("prediction %v deviates from measurement %v by %.0f%%",
			cmp.Predicted1Core, cmp.MeasuredTotal, cmp.Deviation*100)
	}
	if cmp.WallTime <= 0 {
		t.Fatal("wall time")
	}
}

func TestSolveWithSet(t *testing.T) {
	inst := testInstance(t, 54, 40, 9)
	s := newTestSession(t, inst, 8)
	report, err := s.SolveWithSet(context.Background(), inst.UnknownStartVars(), pdsat.SolveOptions{StopOnSat: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.FoundSat {
		t.Fatal("expected to find the key")
	}
	if _, err := s.SolveWithSet(context.Background(), []pdsat.Var{9999}, pdsat.SolveOptions{}); err == nil {
		t.Fatal("expected error for out-of-space variable")
	}
}

func TestPredictAndSolveErrors(t *testing.T) {
	inst := testInstance(t, 54, 30, 11)
	s := newTestSession(t, inst, 4)
	if _, err := s.PredictAndSolve(context.Background(), []pdsat.Var{9999}); err == nil {
		t.Fatal("expected error for out-of-space variable")
	}
	// A cancelled context surfaces as an error from the estimation phase.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.PredictAndSolve(ctx, inst.UnknownStartVars()); err == nil {
		t.Fatal("expected error for cancelled context")
	}
}
