package pdsat_test

import (
	"bufio"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/pdsat"
)

// TestEventsSSEKeepAlive subscribes to a long-running job's event stream as
// SSE with a member filter that matches nothing, so the stream sits idle
// while the job works — and must carry `: keep-alive` comments at the
// (shortened) idle interval so intermediaries with idle timeouts do not
// sever it.  Once the first keep-alive arrives the job is cancelled; the
// terminal done event still passes the filter and ends the stream.
func TestEventsSSEKeepAlive(t *testing.T) {
	restore := pdsat.SetSSEKeepAliveIntervalForTest(5 * time.Millisecond)
	defer restore()

	inst := testInstance(t, 48, 40, 3)
	// A 5000-sample estimate runs for seconds — far longer than the
	// shortened keep-alive interval — so the idle tick always fires first.
	s := newTestSession(t, inst, 5000)
	ts := httptest.NewServer(pdsat.NewServer(s))
	defer ts.Close()

	created := postJSON(t, ts.URL+"/v1/jobs", `{"kind":"estimate"}`)
	id, _ := created["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", created)
	}

	// Member 99 exists in no estimate job: every SampleProgress is filtered
	// out and only the terminal done passes, so the stream is idle while
	// the job works.
	req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+id+"/events?member=99", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}

	keepAlives, doneEvents := 0, 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, ": keep-alive") {
			keepAlives++
			if keepAlives == 1 {
				// The stream proved it stays alive while idle; stop the
				// job so the test does not wait out all 5000 samples.
				postJSON(t, ts.URL+"/v1/jobs/"+id+"/cancel", "")
			}
		}
		if line == "event: done" {
			doneEvents++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if keepAlives == 0 {
		t.Fatal("idle SSE stream carried no keep-alive comment")
	}
	if doneEvents != 1 {
		t.Fatalf("got %d done events, want exactly 1", doneEvents)
	}
}

// failAfterWriter is a ResponseWriter whose body writes start failing after
// the first one, emulating a client that disconnected mid-stream behind a
// buffering proxy (the write error is the only signal the handler gets).
type failAfterWriter struct {
	header http.Header
	writes int
}

func (w *failAfterWriter) Header() http.Header { return w.header }
func (w *failAfterWriter) WriteHeader(int)     {}
func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > 1 {
		return 0, errors.New("client went away")
	}
	return len(p), nil
}

// TestEventsStopStreamingOnWriteError replays a finished job's event log —
// dozens of records — into a writer that fails after the first record.  The
// handler must stop on the first failed write instead of spinning through
// the remaining history against a dead connection (the seed ignored every
// Fprintf error here).
func TestEventsStopStreamingOnWriteError(t *testing.T) {
	inst := testInstance(t, 48, 40, 3)
	s := newTestSession(t, inst, 24)
	srv := pdsat.NewServer(s)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	created := postJSON(t, ts.URL+"/v1/jobs", `{"kind":"estimate"}`)
	id, _ := created["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", created)
	}
	// Drain a healthy stream first: it ends only when the job is done, so
	// afterwards the full event history (24 sample_progress + done) replays
	// to any new subscriber.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	w := &failAfterWriter{header: make(http.Header)}
	req := httptest.NewRequest("GET", "/v1/jobs/"+id+"/events", nil)
	srv.ServeHTTP(w, req) // must return promptly instead of replaying it all
	if w.writes > 2 {
		t.Fatalf("handler attempted %d writes after the connection died, want it to stop at the first failure", w.writes)
	}
}
