package pdsat

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/paper-repro/pdsat-go/internal/decomp"
	"github.com/paper-repro/pdsat-go/internal/encoder"
	"github.com/paper-repro/pdsat-go/internal/eval"
	"github.com/paper-repro/pdsat-go/internal/montecarlo"
	runner "github.com/paper-repro/pdsat-go/internal/pdsat"
	"github.com/paper-repro/pdsat-go/internal/solver"
)

// Config configures a Session.
type Config struct {
	// Runner configures the PDSAT-style leader/worker runner (sample size,
	// workers, cost metric, solver options, optional cluster transport).
	Runner RunnerConfig
	// Search configures the metaheuristic minimizers of search jobs.
	Search SearchOptions
	// Cores is the number of cores used when extrapolating 1-core
	// predictions in reports (480 in the paper's Table 3).
	Cores int
}

// DefaultConfig returns a configuration suitable for the scaled-down
// experiments.
func DefaultConfig() Config {
	return Config{
		Runner: runner.DefaultConfig(),
		Search: SearchOptions{},
		Cores:  480,
	}
}

// Session runs estimation, search and solving jobs for one Problem on one
// shared leader/worker runner.  Jobs are submitted with Submit (or the
// synchronous convenience wrappers, which submit a job and wait for it) and
// report progress through typed event streams; see Job.
//
// A Session is safe for concurrent use.  Concurrent jobs share the runner's
// cumulative conflict-activity statistics and its evaluation counter, so
// sample determinism across sessions requires submitting jobs in the same
// order.
type Session struct {
	problem *Problem
	runner  *runner.Runner
	cfg     Config
	space   *decomp.Space
	// fcache is the cross-search F-memoization cache: one per session, so
	// every search and job on the same Problem+Config hits the others'
	// finished evaluations.  Engines attach it only when their effective
	// policy has Cache enabled; it always exists so a per-job policy
	// override can opt in even when the session default has it off.
	fcache *eval.Cache

	mu     sync.Mutex
	jobs   []*Job          // guarded by mu
	byID   map[string]*Job // guarded by mu
	nextID int             // guarded by mu
	closed bool            // guarded by mu
}

// NewSession creates a session for the problem.
func NewSession(p *Problem, cfg Config) (*Session, error) {
	if p == nil || p.Formula == nil {
		return nil, errors.New("pdsat: nil problem")
	}
	if len(p.StartSet) == 0 {
		return nil, errors.New("pdsat: empty starting decomposition set")
	}
	if err := cfg.Runner.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Search.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cores <= 0 {
		cfg.Cores = DefaultConfig().Cores
	}
	return &Session{
		problem: p,
		runner:  runner.NewRunner(p.Formula, cfg.Runner),
		cfg:     cfg,
		space:   decomp.NewSpace(p.StartSet),
		fcache:  eval.NewCache(),
		byID:    make(map[string]*Job),
	}, nil
}

// Problem returns the session's problem.
func (s *Session) Problem() *Problem { return s.problem }

// Space returns the session's search space.
func (s *Session) Space() *Space { return s.space }

// Runner exposes the underlying PDSAT runner (e.g. for its statistics).
func (s *Session) Runner() *runner.Runner { return s.runner }

// Config returns the session configuration.
func (s *Session) Config() Config { return s.cfg }

// Jobs returns every job submitted to the session, in submission order.
func (s *Session) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.jobs...)
}

// Job returns the job with the given ID, if any.
func (s *Session) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	return j, ok
}

// Remove evicts a finished job from the session, releasing its retained
// event history and result.  Jobs are otherwise kept for the session's
// lifetime so late subscribers can replay their streams — a long-lived
// server must Remove (or DELETE over HTTP) jobs it no longer needs, or its
// memory grows with every job.  Removing a running job is an error: cancel
// it and wait for its Done first.
func (s *Session) Remove(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("pdsat: no job %q", id)
	}
	if !j.Finished() {
		return fmt.Errorf("pdsat: job %q is still running (cancel it first)", id)
	}
	delete(s.byID, id)
	for i, other := range s.jobs {
		if other == j {
			s.jobs = append(s.jobs[:i], s.jobs[i+1:]...)
			break
		}
	}
	return nil
}

// Close cancels every running job and waits for them to finish.  Further
// Submit calls fail.  Close does not close a caller-provided transport (its
// creator owns its lifetime).
func (s *Session) Close() error {
	s.mu.Lock()
	s.closed = true
	jobs := append([]*Job(nil), s.jobs...)
	s.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
	for _, j := range jobs {
		<-j.Done()
	}
	return nil
}

// PublishWorkerJoined broadcasts a WorkerJoined event to every running
// job's stream.  Wire it to the cluster leader's OnWorkerJoined hook when
// the session dispatches to a network transport (cmd/pdsat does).
func (s *Session) PublishWorkerJoined(worker string, slots int) {
	for _, j := range s.runningJobs() {
		j.emit(WorkerJoined{Job: j.id, Worker: worker, Slots: slots})
	}
}

// PublishWorkerLost broadcasts a WorkerLost event to every running job's
// stream; requeued is the number of in-flight subproblems the leader moved
// onto the remaining workers.
func (s *Session) PublishWorkerLost(worker string, requeued int) {
	for _, j := range s.runningJobs() {
		j.emit(WorkerLost{Job: j.id, Worker: worker, Requeued: requeued})
	}
}

// PublishTaskStolen broadcasts a TaskStolen event to every running job's
// stream; worker is the backlogged worker the tasks were revoked from.
// Wire it to the cluster leader's OnTaskStolen hook (cmd/pdsat does when
// -steal is on).
func (s *Session) PublishTaskStolen(worker string, tasks int) {
	for _, j := range s.runningJobs() {
		j.emit(TaskStolen{Job: j.id, Worker: worker, Tasks: tasks})
	}
}

// PublishSpeculationWon broadcasts a SpeculationWon event to every running
// job's stream; worker is the worker whose duplicate copy won.  Wire it to
// the cluster leader's OnSpeculationWon hook (cmd/pdsat does when
// -speculate is on).
func (s *Session) PublishSpeculationWon(worker string, tasks int) {
	for _, j := range s.runningJobs() {
		j.emit(SpeculationWon{Job: j.id, Worker: worker, Tasks: tasks})
	}
}

func (s *Session) runningJobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var running []*Job
	for _, j := range s.jobs {
		select {
		case <-j.Done():
		default:
			running = append(running, j)
		}
	}
	return running
}

// pointFromVars resolves a job spec's variable list: nil or empty means the
// full start set.
func (s *Session) pointFromVars(vars []Var) (Point, error) {
	if len(vars) == 0 {
		return s.space.FullPoint(), nil
	}
	return s.space.PointFromVars(vars)
}

// SetEstimate describes the predicted cost of processing the partitioning
// induced by one decomposition set.
type SetEstimate struct {
	// Vars is the decomposition set (sorted by variable index).
	Vars []Var `json:"vars"`
	// Estimate is the Monte Carlo estimate; Estimate.Value is the 1-core
	// predictive function value F.
	Estimate Estimate `json:"estimate"`
	// PerCores is the extrapolation of the prediction to Cores cores.
	PerCores float64 `json:"per_cores"`
	// Cores echoes the core count used for PerCores.
	Cores int `json:"cores"`
	// SatisfiableSamples counts satisfiable subproblems in the sample.
	SatisfiableSamples int `json:"satisfiable_samples"`
	// WallTime is the time spent computing the estimate.
	WallTime time.Duration `json:"wall_time_ns"`
	// Interrupted reports whether the estimation was cancelled before the
	// full sample was processed; the estimate is then partial (computed
	// from the subproblems that did complete).
	Interrupted bool `json:"interrupted"`
	// EarlyStopped reports that the evaluation policy's staged sampling
	// stopped before the full sample because the eq.-3 confidence
	// half-width met the ε target; the estimate remains unbiased, just
	// over fewer samples.
	EarlyStopped bool `json:"early_stopped,omitempty"`
	// CacheHit reports that the estimate was served from the session's
	// cross-search F-cache without solving anything (WallTime is then the
	// original evaluation's).
	CacheHit bool `json:"cache_hit,omitempty"`
	// SamplesPlanned is the configured sample size N; Estimate.SampleSize
	// is the number actually solved; SamplesAborted counts subproblems cut
	// short by a batch abort or cancellation.
	SamplesPlanned int `json:"samples_planned,omitempty"`
	SamplesAborted int `json:"samples_aborted,omitempty"`
}

// policyFor resolves a job spec's optional policy override against the
// session default (the runner configuration's policy).
func (s *Session) policyFor(override *EvalPolicy) EvalPolicy {
	if override != nil {
		return *override
	}
	return s.cfg.Runner.Policy
}

// sessionBackend adapts the runner as an eval.Backend while streaming each
// evaluation's sample progress into a job's event stream.
type sessionBackend struct {
	s *Session
	j *Job
}

// EvaluateBudgeted implements eval.Backend.
func (b sessionBackend) EvaluateBudgeted(ctx context.Context, p Point, pol EvalPolicy, incumbent float64) (*eval.Evaluation, error) {
	pe, err := b.s.runner.EvaluatePointBudgeted(ctx, p, pol, incumbent, sampleObserver(b.j))
	if pe == nil {
		return nil, err
	}
	ev := pe.Evaluation()
	return &ev, err
}

// ReserveEvalSlots implements eval.SlotBackend: the neighbourhood-parallel
// scheduler reserves the evaluation indexes of a whole submission upfront,
// keeping every candidate's derived sample seeds independent of the
// completion order.
func (b sessionBackend) ReserveEvalSlots(n int) int { return b.s.runner.ReserveEvalSlots(n) }

// EvaluateSlot implements eval.SlotBackend.
func (b sessionBackend) EvaluateSlot(ctx context.Context, p Point, pol EvalPolicy, incumbent float64, slot int) (*eval.Evaluation, error) {
	return b.s.runner.EvaluateSlotObserved(ctx, p, pol, incumbent, slot, sampleObserver(b.j))
}

// engineFor builds the budget-aware evaluation engine for one job: the
// session's runner as backend, the session's shared F-cache (when the
// policy enables it), and pruning/cache-hit notifications wired into the
// job's event stream.
func (s *Session) engineFor(j *Job, pol EvalPolicy) *eval.Engine {
	return s.engineWith(sessionBackend{s: s, j: j}, j, pol, 0)
}

// engineWith is engineFor over an explicit backend with member-tagged event
// emission: fleet jobs build one engine per member, all sharing the
// session's F-cache.
func (s *Session) engineWith(backend eval.Backend, j *Job, pol EvalPolicy, member int) *eval.Engine {
	eng := eval.NewEngine(backend, pol, s.fcache)
	if j != nil {
		eng.OnPruned = func(p Point, ev eval.Evaluation) {
			j.emit(EvalPruned{
				Job:            j.id,
				Member:         member,
				Vars:           p.SortedVars(),
				LowerBound:     ev.LowerBound,
				Incumbent:      ev.Incumbent,
				SamplesSolved:  ev.SamplesSolved,
				SamplesPlanned: ev.SamplesPlanned,
			})
		}
		eng.OnCacheHit = func(p Point, ev eval.Evaluation) {
			j.emit(CacheHit{Job: j.id, Member: member, Vars: p.SortedVars(), Value: ev.Value, Pruned: ev.Pruned})
		}
	}
	return eng
}

// setEstimateFrom renders an engine evaluation as a SetEstimate.
func (s *Session) setEstimateFrom(p Point, ev *eval.Evaluation) *SetEstimate {
	return &SetEstimate{
		Vars:               p.SortedVars(),
		Estimate:           ev.Estimate,
		PerCores:           montecarlo.ExtrapolateCores(ev.Estimate.Value, s.cfg.Cores),
		Cores:              s.cfg.Cores,
		SatisfiableSamples: ev.SatisfiableSamples,
		WallTime:           ev.WallTime,
		Interrupted:        ev.Interrupted,
		EarlyStopped:       ev.EarlyStopped,
		CacheHit:           ev.CacheHit,
		SamplesPlanned:     ev.SamplesPlanned,
		SamplesAborted:     ev.SamplesAborted,
	}
}

// estimateObserved runs one observed predictive-function evaluation for a
// job (j may be nil for unobserved internal use) under the given policy.
// Estimations have no incumbent, so staging and the cache apply but pruning
// never triggers.
func (s *Session) estimateObserved(ctx context.Context, p Point, j *Job, pol EvalPolicy) (*SetEstimate, error) {
	ev, err := s.engineFor(j, pol).EvaluateF(ctx, p, math.Inf(1))
	if ev == nil {
		return nil, err
	}
	return s.setEstimateFrom(p, ev), err
}

// SessionStats aggregates the session's evaluation-engine counters: how
// much solving the predictive-function evaluations cost so far and how much
// the policy mechanisms saved.
type SessionStats struct {
	// Evaluations counts predictive-function evaluations (full, pruned and
	// partial alike); PrunedEvaluations the subset aborted by incumbent
	// pruning.
	Evaluations       int `json:"evaluations"`
	PrunedEvaluations int `json:"pruned_evaluations"`
	// SubproblemsSolved counts subproblems solved to completion across all
	// jobs; SubproblemsAborted those cut short by batch aborts or
	// cancellations.
	SubproblemsSolved  int `json:"subproblems_solved"`
	SubproblemsAborted int `json:"subproblems_aborted"`
	// SamplesPlanned counts the Monte Carlo samples committed by
	// predictive-function evaluations; SamplesSkipped the planned samples
	// never dispatched to a solver (their whole batch was aborted first, or
	// they fell outside a stage's budget).  The ledger balances exactly:
	// SamplesPlanned == SubproblemsSolved + SubproblemsAborted +
	// SamplesSkipped for sessions running only estimations and searches
	// (Solve jobs process decomposition families outside the sample ledger
	// but inside the solved/aborted counters).
	SamplesPlanned int `json:"samples_planned"`
	SamplesSkipped int `json:"samples_skipped"`
	// TasksStolen counts queued subproblems the dispatch layer revoked from
	// a backlogged worker and reassigned to a drained one;
	// SpeculativeDuplicates the unfinished subproblems it duplicated onto
	// idle slots, and SpeculationWins how many duplicates delivered the
	// first (recorded) result.  All three count scheduling events outside
	// the sample ledger: a stolen task is still solved once, and a losing
	// duplicate's result is discarded before it reaches the ledger.  They
	// stay zero unless the session's runner enables Steal/Speculate on a
	// dispatching (network) transport.
	TasksStolen           int `json:"tasks_stolen"`
	SpeculativeDuplicates int `json:"speculative_duplicates"`
	SpeculationWins       int `json:"speculation_wins"`
	// Cache is the cross-search F-cache's hit/miss/size counters.
	Cache eval.CacheStats `json:"cache"`
	// Solver sums the per-subproblem CDCL statistics over every subproblem
	// solved so far: conflicts, propagations, learned clauses by LBD tier,
	// database reductions and the peak clause-arena size.
	Solver SolverStats `json:"solver"`
}

// Stats returns a snapshot of the session's evaluation-engine counters.
func (s *Session) Stats() SessionStats {
	return SessionStats{
		Evaluations:           s.runner.Evaluations(),
		PrunedEvaluations:     s.runner.PrunedEvaluations(),
		SubproblemsSolved:     s.runner.SubproblemsSolved(),
		SubproblemsAborted:    s.runner.SubproblemsAborted(),
		SamplesPlanned:        s.runner.SamplesPlanned(),
		SamplesSkipped:        s.runner.SamplesSkipped(),
		TasksStolen:           s.runner.TasksStolen(),
		SpeculativeDuplicates: s.runner.SpeculativeDuplicates(),
		SpeculationWins:       s.runner.SpeculationWins(),
		Cache:                 s.fcache.Stats(),
		Solver:                s.runner.AggregateStats(),
	}
}

// maxSampleEvents bounds the SampleProgress notifications emitted per
// batch.  Event histories are retained for replay until the job is
// removed, so an unthrottled 2^30-member solve would pin one event per
// subproblem in memory for a run advertised to take days; batches larger
// than this emit evenly spaced notifications instead (satisfiable results
// and the batch's last result are always reported).  A variable only so
// tests can exercise the decimation on small batches.
var maxSampleEvents = 8192

// sampleObserver converts runner progress into the job's SampleProgress
// events, decimating oversized batches to at most ~maxSampleEvents
// notifications.
func sampleObserver(j *Job) func(runner.Progress) {
	return memberSampleObserver(j, 0)
}

// memberSampleObserver is sampleObserver with a fleet member tag on every
// emitted event.
func memberSampleObserver(j *Job, member int) func(runner.Progress) {
	if j == nil {
		return nil
	}
	return func(p runner.Progress) {
		stride := p.Total / maxSampleEvents
		sat := p.Result.Status == solver.Sat
		if stride > 1 && !sat && p.Done != p.Total && p.Done%stride != 0 {
			return
		}
		j.emit(SampleProgress{
			Job:         j.id,
			Member:      member,
			Done:        p.Done,
			Total:       p.Total,
			Cost:        p.Result.Cost,
			Satisfiable: sat,
			Solved:      p.Result.Started,
		})
	}
}

// EstimatePoint evaluates the predictive function at a point of the search
// space, through an EstimateJob.  A cancelled estimation returns the
// partial estimate (marked Interrupted) together with the context's error,
// so Ctrl-C still yields a report.
func (s *Session) EstimatePoint(ctx context.Context, p Point) (*SetEstimate, error) {
	if p.Count() == 0 {
		return nil, errors.New("pdsat: empty decomposition set")
	}
	res, err := s.runToCompletion(ctx, EstimateJob{Vars: p.SortedVars()})
	if res == nil {
		return nil, err
	}
	return res.Estimate, err
}

// EstimateSet evaluates the predictive function for an explicit
// decomposition set (which must be a subset of the start set).
func (s *Session) EstimateSet(ctx context.Context, vars []Var) (*SetEstimate, error) {
	if len(vars) == 0 {
		return nil, errors.New("pdsat: empty decomposition set")
	}
	res, err := s.runToCompletion(ctx, EstimateJob{Vars: vars})
	if res == nil {
		return nil, err
	}
	return res.Estimate, err
}

// EstimateStartSet evaluates the predictive function at X̃_start itself.
func (s *Session) EstimateStartSet(ctx context.Context) (*SetEstimate, error) {
	return s.EstimatePoint(ctx, s.space.FullPoint())
}

// SearchOutcome is the result of a decomposition-set search.
type SearchOutcome struct {
	// Method names the metaheuristic ("simulated annealing" or "tabu search").
	Method string
	// Result is the raw optimizer result (best point, trace, stop reason).
	Result *SearchResult
	// Best is the estimate of the best point found.
	Best *SetEstimate
}

// SearchSimulatedAnnealing searches for a good decomposition set with
// Algorithm 1, starting from the full start set (as in the paper).
func (s *Session) SearchSimulatedAnnealing(ctx context.Context) (*SearchOutcome, error) {
	return s.searchSync(ctx, SearchJob{Method: MethodSimulatedAnnealing})
}

// SearchTabu searches for a good decomposition set with Algorithm 2,
// starting from the full start set.
func (s *Session) SearchTabu(ctx context.Context) (*SearchOutcome, error) {
	return s.searchSync(ctx, SearchJob{Method: MethodTabu})
}

// SearchFrom runs the chosen method ("sa" or "tabu") from an explicit start
// point.
func (s *Session) SearchFrom(ctx context.Context, method string, start Point) (*SearchOutcome, error) {
	return s.searchSync(ctx, SearchJob{Method: method, Start: start.SortedVars()})
}

func (s *Session) searchSync(ctx context.Context, spec SearchJob) (*SearchOutcome, error) {
	res, err := s.runToCompletion(ctx, spec)
	if res == nil {
		return nil, err
	}
	return res.Search, err
}

// SolveWithSet processes the decomposition family induced by the given set
// and returns the solve report (no prediction).
func (s *Session) SolveWithSet(ctx context.Context, vars []Var, opts SolveOptions) (*SolveReport, error) {
	if len(vars) == 0 {
		return nil, errors.New("pdsat: empty decomposition set")
	}
	res, err := s.runToCompletion(ctx, SolveJob{Vars: vars, StopOnSat: opts.StopOnSat, MaxSubproblems: opts.MaxSubproblems})
	if res == nil {
		return nil, err
	}
	return res.Solve, err
}

// Comparison relates a prediction with the measured cost of actually
// processing the decomposition family (one row of Table 3).
type Comparison struct {
	// Problem names the instance.
	Problem string
	// SetSize is |X̃_best|.
	SetSize int
	// Predicted1Core is the predictive function value F (1 CPU core).
	Predicted1Core float64
	// PredictedKCores is F divided by Cores.
	PredictedKCores float64
	// Cores is the extrapolation core count.
	Cores int
	// MeasuredTotal is the measured cost of processing the whole family
	// (1-core sequential units, same metric as the prediction).
	MeasuredTotal float64
	// MeasuredToFirstSat is the measured cost until the first satisfiable
	// subproblem.
	MeasuredToFirstSat float64
	// FoundSat reports whether a satisfiable subproblem (a key) was found.
	FoundSat bool
	// KeyValid reports whether the recovered state reproduces the observed
	// keystream (only meaningful when the problem carries an Instance).
	KeyValid bool
	// Deviation is |MeasuredTotal-Predicted1Core| / Predicted1Core.
	Deviation float64
	// WallTime is the wall-clock time of the solving run.
	WallTime time.Duration
}

// PredictAndSolve estimates the partitioning induced by the decomposition
// set and then actually processes the whole family (an EstimateJob followed
// by a SolveJob), returning the prediction-versus-measurement comparison of
// Table 3.
func (s *Session) PredictAndSolve(ctx context.Context, vars []Var) (*Comparison, error) {
	p, err := s.space.PointFromVars(vars)
	if err != nil {
		return nil, err
	}
	est, err := s.EstimatePoint(ctx, p)
	if err != nil {
		return nil, err
	}
	report, err := s.SolveWithSet(ctx, vars, SolveOptions{})
	if err != nil {
		return nil, err
	}
	cmp := &Comparison{
		Problem:            s.problem.Name,
		SetSize:            p.Count(),
		Predicted1Core:     est.Estimate.Value,
		PredictedKCores:    est.PerCores,
		Cores:              est.Cores,
		MeasuredTotal:      report.TotalCost,
		MeasuredToFirstSat: report.CostToFirstSat,
		FoundSat:           report.FoundSat,
		Deviation:          montecarlo.RelativeDeviation(est.Estimate.Value, report.TotalCost),
		WallTime:           report.WallTime,
	}
	if report.FoundSat && s.problem.Instance != nil {
		gen, err := encoder.ByName(s.problem.Instance.Generator)
		if err == nil {
			ok, checkErr := s.problem.Instance.CheckRecoveredState(gen, report.Model)
			cmp.KeyValid = ok && checkErr == nil
		}
	}
	return cmp, nil
}

// runToCompletion submits a job and waits for its result, propagating the
// job's error (which for cancelled estimations accompanies a partial
// result).  A cancelled ctx propagates into the job and makes it finish
// promptly, so the wait is on the job itself — never racing the caller's
// context, which would drop the partial result of an interrupted run.
func (s *Session) runToCompletion(ctx context.Context, spec JobSpec) (*JobResult, error) {
	j, err := s.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	<-j.Done()
	return j.finishedResult()
}
