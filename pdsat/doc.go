// Package pdsat is the public, job-oriented API of the library: it ties the
// SAT substrate, the cryptanalysis encodings, the Monte Carlo estimator,
// the metaheuristic minimizers and the leader/worker runner into the
// workflow of the paper (Semenov & Zaikin, PaCT 2015), exposed as
// asynchronous jobs with typed progress-event streams.
//
//  1. Build a SAT instance together with its starting decomposition set
//     (Problem: FromGenerator, FromDIMACSFile, FromInstance, FromFormula).
//  2. Open a Session for it (NewSession).  The session owns one
//     leader/worker runner — in-process goroutine workers by default, or a
//     network cluster via Config.Runner.Transport.
//  3. Submit work as jobs: EstimateJob evaluates the predictive function F
//     for a decomposition set, SearchJob minimizes F with simulated
//     annealing or tabu search, FleetJob races several searches
//     concurrently over the same runner, SolveJob processes a whole
//     decomposition family (key recovery).
//  4. Follow a job through its typed event stream (Job.Events):
//     SampleProgress per solved subproblem (evenly sampled on very large
//     families), SearchVisit per optimizer step, WorkerJoined/WorkerLost
//     from the cluster leader, and a single terminal Done — also on
//     cancellation.  Collect the result with Job.Result, interrupt with
//     Job.Cancel.
//
// Estimation and solving runs of real instances take hours to days; the
// job model is what lets a caller watch them progress and interrupt them
// without losing the partial result.  For quick scripts the Session also
// offers synchronous wrappers (EstimatePoint, SearchTabu, SolveWithSet,
// PredictAndSolve, …) that submit a job and wait for it — both paths
// produce bit-identical results for a fixed seed.
//
// # Evaluation policies
//
// One evaluation of F costs N subproblem solves (paper §3), so an
// EvalPolicy — set session-wide via RunnerConfig.Policy or per job via
// EstimateJob.Policy/SearchJob.Policy — lets the evaluation engine spend
// less where full precision buys nothing, with each knob mapping back to a
// device of the paper:
//
//   - Prune (the paper's per-subproblem time limits): abort an evaluation
//     as soon as its partial lower bound 2^d·(Σζ)/N exceeds the best F the
//     search has seen; the cluster leader cancels only that batch on the
//     workers, and later tasks carry a solver budget capped at the
//     remaining allowance.
//   - Stages/Epsilon/Gamma (the eq.-3 CLT confidence interval): solve the
//     sample in geometric stages and stop once the confidence half-width
//     δ_γ·σ/√n falls to ε·mean.
//   - Cache: a point-keyed F-memoization cache owned by the Session and
//     shared across its searches and jobs; hit/miss counters are reported
//     by Session.Stats and GET /v1/stats.
//
// Policy activity is visible in the event stream (EvalPruned, CacheHit;
// SearchVisit.Pruned flags lower-bound visits).  The zero EvalPolicy
// disables every mechanism and reproduces full-sample evaluations bit for
// bit; DefaultEvalPolicy returns the recommended settings.
//
// # Search fleets
//
// The paper compares simulated annealing and tabu search as separate
// PDSAT runs; a FleetJob races K searches concurrently against the
// session's single runner/cluster instead — mixed strategies, multi-restart
// start points (Jitter), deterministic per-member sub-seeds — coupled
// through a global atomic incumbent (every member's best F tightens the
// pruning bound of every other member's evaluations) and the session
// F-cache.  Member i's randomness derives from the root seed r by the
// SubSeed rule: evaluation sampling SubSeed(r,3i), search walk
// SubSeed(r,3i+1), start jitter SubSeed(r,3i+2) — so a fleet of one is
// bit-identical to the direct SearchJob path under matching seeds, and a
// fixed-seed fleet's per-member results are deterministic regardless of
// interleaving whenever the policy's cross-member couplings (Prune, Cache)
// are off.  Fleet streams add member-tagged events plus FleetMemberDone and
// IncumbentImproved; the race ends early on TargetF or an exhausted member
// (KeepRacing opts out), and MaxEvaluations is a fleet-total budget split
// fairly.
//
// # Neighborhood-parallel evaluation
//
// EvalPolicy.MaxConcurrentEvals switches a search's inner loop to the
// neighbourhood scheduler: a whole tabu neighbourhood (or a speculative
// wave of annealing candidates) is submitted as concurrent evaluations on
// the shared transport, the live best F is threaded into every in-flight
// sample so sibling candidates prune each other, and deciding a pass
// aborts its remaining siblings.  Every completed pass emits a
// NeighborhoodDone event with its counters.
//
// The determinism rule: evaluation slots are reserved per neighbourhood
// up front, so each candidate's Monte Carlo sample depends only on (scope
// seed, slot) — never on completion order — and the minimum-F candidate
// can never be pruned by the live bound.  Selected centres and the
// reported best F are therefore scheduling-independent.  Still
// timing-dependent under an active policy (exactly as in fleet races):
// which non-winning candidates get pruned and the lower bounds they
// report, subproblem solved/aborted counts, conflict activity from
// truncated solves, and which discarded annealing-wave members reach the
// F-cache.  For strictly reproducible full traces, switch Prune and Cache
// off.  MaxConcurrentEvals == 1 runs the scheduler one candidate at a
// time, bit-identical to the sequential default (0); the CLI knob is
// -max-concurrent-evals, and over HTTP the policy field
// "max_concurrent_evals" passes through POST /v1/jobs.
//
// Server exposes the same API over HTTP/JSON (submit, stream events as
// NDJSON or SSE, fetch results, cancel); `pdsat -serve :8080` serves it
// from the command line.  See the package example and README.md for
// walkthroughs.
package pdsat
