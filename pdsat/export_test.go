package pdsat

// SetMaxSampleEventsForTest overrides the per-batch SampleProgress budget
// so tests can exercise the decimation on small, fast batches.  It returns
// a restore function.
func SetMaxSampleEventsForTest(n int) (restore func()) {
	old := maxSampleEvents
	maxSampleEvents = n
	return func() { maxSampleEvents = old }
}
