package pdsat

import "time"

// SetMaxSampleEventsForTest overrides the per-batch SampleProgress budget
// so tests can exercise the decimation on small, fast batches.  It returns
// a restore function.
func SetMaxSampleEventsForTest(n int) (restore func()) {
	old := maxSampleEvents
	maxSampleEvents = n
	return func() { maxSampleEvents = old }
}

// SetSSEKeepAliveIntervalForTest shortens the SSE keep-alive interval so
// tests can observe idle-stream comments without waiting half a minute.  It
// returns a restore function.
func SetSSEKeepAliveIntervalForTest(d time.Duration) (restore func()) {
	old := sseKeepAliveInterval
	sseKeepAliveInterval = d
	return func() { sseKeepAliveInterval = old }
}
