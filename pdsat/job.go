package pdsat

import (
	"context"
	"fmt"
	"math"
	"sync"

	"github.com/paper-repro/pdsat-go/internal/eval"
	"github.com/paper-repro/pdsat-go/internal/optimize"
)

// JobKind identifies the type of work a job performs.
type JobKind string

// The job kinds: the three of the paper's PDSAT workflow plus the fleet
// race of concurrent searches (see FleetJob).
const (
	JobEstimate JobKind = "estimate"
	JobSearch   JobKind = "search"
	JobSolve    JobKind = "solve"
	JobFleet    JobKind = "fleet"
)

// Search method names accepted by SearchJob.Method (the short forms "sa"
// and "tabu" are accepted too; empty means tabu search).
const (
	MethodSimulatedAnnealing = "simulated annealing"
	MethodTabu               = "tabu search"
)

// JobSpec describes one unit of asynchronous work for Session.Submit.  The
// implementations are EstimateJob, SearchJob and SolveJob.
type JobSpec interface {
	// Kind returns the job kind.
	Kind() JobKind
	// validate checks the spec against the session eagerly, so Submit
	// fails before a job is created.
	validate(s *Session) error
	// run executes the spec on the job's goroutine.
	run(ctx context.Context, j *Job) (*JobResult, error)
}

// EstimateJob evaluates the predictive function F at one decomposition
// set.  It emits a SampleProgress event per collected subproblem result
// (plus a CacheHit when the evaluation is served from the F-cache) and
// produces JobResult.Estimate.
type EstimateJob struct {
	// Vars is the decomposition set to estimate; empty means the full
	// start set.  It must be a subset of the problem's start set.
	Vars []Var `json:"vars,omitempty"`
	// Policy optionally overrides the session's evaluation policy for this
	// job (staged sampling and the F-cache apply to estimations; pruning
	// needs a search incumbent and never triggers here).  Nil means the
	// session default.
	Policy *EvalPolicy `json:"policy,omitempty"`
}

// Kind implements JobSpec.
func (EstimateJob) Kind() JobKind { return JobEstimate }

func (spec EstimateJob) validate(s *Session) error {
	if spec.Policy != nil {
		if err := spec.Policy.Validate(); err != nil {
			return err
		}
	}
	_, err := s.pointFromVars(spec.Vars)
	return err
}

func (spec EstimateJob) run(ctx context.Context, j *Job) (*JobResult, error) {
	p, err := j.session.pointFromVars(spec.Vars)
	if err != nil {
		return nil, err
	}
	est, err := j.session.estimateObserved(ctx, p, j, j.session.policyFor(spec.Policy))
	if est == nil {
		return nil, err
	}
	return &JobResult{Estimate: est}, err
}

// SearchJob minimizes the predictive function with one of the paper's
// metaheuristics.  It emits a SearchVisit event per optimizer step,
// SampleProgress events for the samples of the evaluation currently in
// flight, EvalPruned/CacheHit events when the evaluation policy saves work,
// and produces JobResult.Search.
type SearchJob struct {
	// Method selects the metaheuristic: "sa"/"simulated annealing" or
	// "tabu"/"tabu search" (default).
	Method string `json:"method,omitempty"`
	// Start is the starting decomposition set; empty means the full start
	// set, as in the paper.
	Start []Var `json:"start,omitempty"`
	// Policy optionally overrides the session's evaluation policy for this
	// job: incumbent pruning, staged sampling and the cross-search F-cache.
	// Nil means the session default.
	Policy *EvalPolicy `json:"policy,omitempty"`
}

// Kind implements JobSpec.
func (SearchJob) Kind() JobKind { return JobSearch }

// methodName normalizes the accepted method spellings.
func (spec SearchJob) methodName() (string, error) {
	switch spec.Method {
	case "sa", "annealing", MethodSimulatedAnnealing:
		return MethodSimulatedAnnealing, nil
	case "", "tabu", MethodTabu:
		return MethodTabu, nil
	default:
		return "", fmt.Errorf("pdsat: unknown search method %q", spec.Method)
	}
}

func (spec SearchJob) validate(s *Session) error {
	if _, err := spec.methodName(); err != nil {
		return err
	}
	if spec.Policy != nil {
		if err := spec.Policy.Validate(); err != nil {
			return err
		}
	}
	_, err := s.pointFromVars(spec.Start)
	return err
}

func (spec SearchJob) run(ctx context.Context, j *Job) (*JobResult, error) {
	s := j.session
	method, err := spec.methodName()
	if err != nil {
		return nil, err
	}
	start, err := s.pointFromVars(spec.Start)
	if err != nil {
		return nil, err
	}
	// One engine for the whole search: the optimizer threads its incumbent
	// through the jobObjective into the engine, which prunes, stages and
	// memoizes according to the job's effective policy.
	pol := s.policyFor(spec.Policy)
	engine := s.engineFor(j, pol)
	obj := &jobObjective{session: s, job: j, engine: engine}
	opts := s.cfg.Search
	// The policy's evaluation concurrency selects the neighbourhood-parallel
	// scheduler unless the search options already pin a width.
	if opts.MaxConcurrentEvals == 0 {
		opts.MaxConcurrentEvals = pol.MaxConcurrentEvals
	}
	userNeighborhood := opts.NeighborhoodObserver
	opts.NeighborhoodObserver = func(nb optimize.Neighborhood) {
		if userNeighborhood != nil {
			userNeighborhood(nb)
		}
		j.emit(neighborhoodDoneEvent(j.id, 0, nb))
	}
	// Emit a SearchVisit per optimizer step, chaining (not replacing) an
	// observer the session's configuration already carries.
	userObserver := opts.Observer
	opts.Observer = func(v optimize.Visit) {
		if userObserver != nil {
			userObserver(v)
		}
		j.emit(SearchVisit{
			Job:      j.id,
			Index:    v.Index,
			Vars:     v.Point.SortedVars(),
			Value:    v.Value,
			Accepted: v.Accepted,
			Improved: v.Improved,
			Pruned:   v.Pruned,
		})
	}
	var res *SearchResult
	switch method {
	case MethodSimulatedAnnealing:
		res, err = optimize.SimulatedAnnealing(ctx, obj, start, opts)
	default:
		res, err = optimize.TabuSearch(ctx, obj, start, opts)
	}
	if err != nil {
		return nil, err
	}
	// Re-estimate the best point through the same engine: with the cache
	// enabled this is a free hit on the value the search already computed.
	var best *SetEstimate
	ev, err := engine.EvaluateF(ctx, res.BestPoint, math.Inf(1))
	if ev != nil {
		best = s.setEstimateFrom(res.BestPoint, ev)
	}
	if best == nil && err != nil {
		// The search itself succeeded; return its result even if the final
		// re-estimation was interrupted before producing anything.
		return &JobResult{Search: &SearchOutcome{Method: method, Result: res}}, nil
	}
	return &JobResult{Search: &SearchOutcome{Method: method, Result: res, Best: best}}, nil
}

// jobObjective adapts the session's evaluation engine as the optimizer
// objective while streaming each evaluation's sample progress into the
// job's event stream.  It forwards the runner's conflict-activity
// statistics, so the tabu search's getNewCenter heuristic behaves exactly
// as with the bare runner, and implements eval.Evaluator so the searches
// thread their incumbent into every evaluation.
type jobObjective struct {
	session *Session
	job     *Job
	engine  *eval.Engine
}

// Evaluate implements optimize.Objective (the searches prefer EvaluateF).
func (o *jobObjective) Evaluate(ctx context.Context, p Point) (float64, error) {
	ev, err := o.EvaluateF(ctx, p, math.Inf(1))
	if err != nil {
		return 0, err
	}
	return ev.Value, nil
}

// EvaluateF implements eval.Evaluator.
func (o *jobObjective) EvaluateF(ctx context.Context, p Point, incumbent float64) (*eval.Evaluation, error) {
	ev, err := o.engine.EvaluateF(ctx, p, incumbent)
	if err != nil {
		return nil, err
	}
	return ev, nil
}

// ReserveSlots implements eval.SlotEvaluator: the neighbourhood-parallel
// scheduler reserves the evaluation indexes of a whole submission upfront,
// which keeps every candidate's derived sample seeds independent of the
// completion order.
func (o *jobObjective) ReserveSlots(n int) (int, bool) { return o.engine.ReserveSlots(n) }

// EvaluateSlotF implements eval.SlotEvaluator.
func (o *jobObjective) EvaluateSlotF(ctx context.Context, p Point, incumbent float64, slot int) (*eval.Evaluation, error) {
	return o.engine.EvaluateSlotF(ctx, p, incumbent, slot)
}

// VarActivity implements optimize.ActivitySource.
func (o *jobObjective) VarActivity(v Var) float64 { return o.session.runner.VarActivity(v) }

// neighborhoodDoneEvent converts an optimizer neighbourhood pass summary
// into the job event.
func neighborhoodDoneEvent(job string, member int, nb optimize.Neighborhood) NeighborhoodDone {
	return NeighborhoodDone{
		Job:        job,
		Member:     member,
		Center:     nb.Center.SortedVars(),
		Radius:     nb.Radius,
		Candidates: nb.Candidates,
		Evaluated:  nb.Evaluated,
		Pruned:     nb.Pruned,
		Cancelled:  nb.Cancelled,
		Improved:   nb.Improved,
		BestValue:  nb.BestValue,
		Width:      nb.Width,
	}
}

// SolveJob processes the whole decomposition family induced by a set:
// enumerate every assignment, solve every subproblem.  It emits a
// SampleProgress event per processed subproblem and produces
// JobResult.Solve.
type SolveJob struct {
	// Vars is the decomposition set; empty means the full start set.  The
	// set must be small enough to enumerate (|Vars| < 63).
	Vars []Var `json:"vars,omitempty"`
	// StopOnSat stops processing as soon as one subproblem is satisfiable
	// (key recovery); otherwise the whole family is processed (validation
	// runs).
	StopOnSat bool `json:"stop_on_sat,omitempty"`
	// MaxSubproblems bounds the number of processed subproblems (0 = all).
	MaxSubproblems uint64 `json:"max_subproblems,omitempty"`
}

// Kind implements JobSpec.
func (SolveJob) Kind() JobKind { return JobSolve }

func (spec SolveJob) validate(s *Session) error {
	_, err := s.pointFromVars(spec.Vars)
	return err
}

func (spec SolveJob) run(ctx context.Context, j *Job) (*JobResult, error) {
	p, err := j.session.pointFromVars(spec.Vars)
	if err != nil {
		return nil, err
	}
	report, err := j.session.runner.SolveObserved(ctx, p, SolveOptions{
		StopOnSat:      spec.StopOnSat,
		MaxSubproblems: spec.MaxSubproblems,
	}, sampleObserver(j))
	if report == nil {
		return nil, err
	}
	return &JobResult{Solve: report}, err
}

// JobResult carries a finished job's typed result: exactly one field is
// non-nil, matching the job's kind.
type JobResult struct {
	// Estimate is an EstimateJob's result.
	Estimate *SetEstimate `json:"estimate,omitempty"`
	// Search is a SearchJob's result.
	Search *SearchOutcome `json:"search,omitempty"`
	// Solve is a SolveJob's result.
	Solve *SolveReport `json:"solve,omitempty"`
	// Fleet is a FleetJob's result.
	Fleet *FleetOutcome `json:"fleet,omitempty"`
}

// Job is the handle of one submitted unit of work.  It exposes the job's
// typed progress-event stream (Events/Subscribe), its result (Result) and
// cancellation (Cancel).
type Job struct {
	id      string
	kind    JobKind
	session *Session
	cancel  context.CancelFunc
	log     *eventLog
	done    chan struct{}

	mu     sync.Mutex
	result *JobResult // guarded by mu
	err    error      // guarded by mu
}

// Submit validates the spec, registers a job and starts it asynchronously.
// ctx bounds the job's lifetime (independently of Cancel); pass
// context.Background() for a job that only ends on its own or via Cancel.
func (s *Session) Submit(ctx context.Context, spec JobSpec) (*Job, error) {
	if spec == nil {
		return nil, fmt.Errorf("pdsat: nil job spec")
	}
	if err := spec.validate(s); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("pdsat: session is closed")
	}
	s.nextID++
	jctx, cancel := context.WithCancel(ctx)
	j := &Job{
		id:      fmt.Sprintf("job-%d", s.nextID),
		kind:    spec.Kind(),
		session: s,
		cancel:  cancel,
		log:     newEventLog(),
		done:    make(chan struct{}),
	}
	s.jobs = append(s.jobs, j)
	s.byID[j.id] = j
	s.mu.Unlock()

	go func() {
		defer cancel()
		result, err := spec.run(jctx, j)
		j.finish(result, err, jctx.Err() != nil)
	}()
	return j, nil
}

// EstimateJob submits an estimation job: Submit with a typed spec.
func (s *Session) EstimateJob(ctx context.Context, spec EstimateJob) (*Job, error) {
	return s.Submit(ctx, spec)
}

// SearchJob submits a search job: Submit with a typed spec.
func (s *Session) SearchJob(ctx context.Context, spec SearchJob) (*Job, error) {
	return s.Submit(ctx, spec)
}

// SolveJob submits a solving job: Submit with a typed spec.
func (s *Session) SolveJob(ctx context.Context, spec SolveJob) (*Job, error) {
	return s.Submit(ctx, spec)
}

// ID returns the job's session-unique identifier ("job-1", "job-2", …).
func (j *Job) ID() string { return j.id }

// Kind returns the job's kind.
func (j *Job) Kind() JobKind { return j.kind }

// Events returns an ordered stream of the job's progress events, from the
// job's start through its terminal Done event, after which the channel is
// closed.  Every call returns a fresh channel replaying the full history,
// so late and concurrent consumers all observe the same ordered stream.
// Abandoning the channel before it closes parks its forwarding goroutine
// for the life of the process (nothing ever cancels its pending send);
// a consumer that may detach early must use Subscribe with a cancellable
// context instead.
func (j *Job) Events() <-chan Event { return j.log.subscribe(nil) }

// Subscribe is Events with a detach handle: the returned channel closes
// when the stream ends or ctx is cancelled, whichever comes first.
func (j *Job) Subscribe(ctx context.Context) <-chan Event { return j.log.subscribe(ctx.Done()) }

// Done returns a channel closed when the job has finished (its result and
// error are then final and the Done event has been emitted).
func (j *Job) Done() <-chan struct{} { return j.done }

// Result blocks until the job finishes (or ctx is cancelled) and returns
// its result.  Both may be non-nil at once: a cancelled estimation returns
// the partial estimate together with the context's error.  Result does not
// cancel the job when ctx expires — it stops waiting.
func (j *Job) Result(ctx context.Context) (*JobResult, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// finishedResult waits for the job to finish and returns its final result
// and error.  Unlike Result it takes no context: callers use it when the
// wait must be on the job alone (whose own context already makes it finish
// promptly), never racing a second context that could drop the partial
// result of an interrupted run.
func (j *Job) finishedResult() (*JobResult, error) {
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Cancel asks the job to stop.  Running subproblems receive the solver's
// non-blocking interrupt, the job finishes promptly with a partial result
// where the mode supports one, and the event stream still terminates with
// its single Done event.  Cancel is idempotent and safe after completion.
func (j *Job) Cancel() { j.cancel() }

// Err returns the job's error, or nil while it is still running.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Finished reports whether the job has completed.
func (j *Job) Finished() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// emit appends an event to the job's stream (dropped once the stream is
// sealed by Done).
func (j *Job) emit(e Event) { j.log.append(e) }

// finish records the result, emits the single terminal Done event and
// seals the stream.
func (j *Job) finish(result *JobResult, err error, cancelled bool) {
	j.mu.Lock()
	j.result = result
	j.err = err
	j.mu.Unlock()
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	j.log.finish(Done{Job: j.id, Err: msg, Cancelled: cancelled})
	close(j.done)
}
