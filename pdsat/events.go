package pdsat

import (
	"sync"
)

// Event is a typed progress notification from a running Job.  The concrete
// types are SampleProgress, SearchVisit, EvalPruned, CacheHit,
// NeighborhoodDone, FleetMemberDone, IncumbentImproved, WorkerJoined,
// WorkerLost, TaskStolen, SpeculationWon and Done.
//
// Every job's event stream is ordered (events arrive in the order the job
// produced them) and terminates with exactly one Done event — also when the
// job is cancelled or fails.  No events follow the Done.  A fleet job's
// stream interleaves the events of its members; the Member field on the
// per-member event types says which member produced each one (the HTTP
// server can filter a stream down to one member, see Server).
type Event interface {
	// EventKind returns the stable wire name of the event type
	// ("sample_progress", "search_visit", "eval_pruned", "cache_hit",
	// "neighborhood_done", "fleet_member_done", "incumbent_improved",
	// "worker_joined", "worker_lost", "task_stolen", "speculation_won",
	// "done"); the HTTP server uses it as the SSE event name and NDJSON
	// discriminator.
	EventKind() string
}

// MemberEvent is implemented by event types attributable to one fleet
// member; the server's per-member event filtering uses it.
type MemberEvent interface {
	Event
	// EventMember returns the 0-based fleet member index that produced the
	// event (0 for events of non-fleet jobs).
	EventMember() int
}

// SampleProgress reports one collected subproblem result inside an
// estimation run (a Monte Carlo sample member), a solving run (a member of
// the decomposition family) or a search run (a sample member of the
// evaluation the optimizer is currently performing).  Batches small enough
// to retain report every subproblem; larger ones (solving runs over big
// families) are decimated to evenly spaced notifications, with satisfiable
// results and the batch's final result always reported, so Done counters
// stay monotonic and end at Total.
type SampleProgress struct {
	// Job is the reporting job's ID; Member the 0-based fleet member whose
	// evaluation the sample belongs to (0 for non-fleet jobs).
	Job    string `json:"job"`
	Member int    `json:"member,omitempty"`
	// Done counts the subproblem results collected so far in the current
	// batch; Total is the batch size.  Done == Total on the batch's last
	// notification.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Cost is the subproblem's observed cost in the session's cost metric.
	Cost float64 `json:"cost"`
	// Satisfiable reports whether the subproblem was SAT.
	Satisfiable bool `json:"satisfiable"`
	// Solved distinguishes real solves from placeholders for subproblems
	// cancelled before a solver saw them.
	Solved bool `json:"solved"`
}

// EventKind implements Event.
func (SampleProgress) EventKind() string { return "sample_progress" }

// SearchVisit reports one optimizer step of a search job: a fresh
// evaluation of the predictive function at a candidate decomposition set.
type SearchVisit struct {
	// Job is the reporting job's ID; Member the 0-based fleet member whose
	// search made the visit (0 for non-fleet jobs).
	Job    string `json:"job"`
	Member int    `json:"member,omitempty"`
	// Index is the evaluation number (0-based, cache hits excluded).
	Index int `json:"index"`
	// Vars is the visited decomposition set, sorted by variable index.
	Vars []Var `json:"vars"`
	// Value is the predictive function value F at the visited point.
	Value float64 `json:"value"`
	// Accepted reports whether the point became the new search centre;
	// Improved whether it improved the best known value.
	Accepted bool `json:"accepted"`
	Improved bool `json:"improved"`
	// Pruned reports that the evaluation was aborted by incumbent pruning;
	// Value is then a certified lower bound, not a full estimate.
	Pruned bool `json:"pruned,omitempty"`
}

// EventKind implements Event.
func (SearchVisit) EventKind() string { return "search_visit" }

// EvalPruned reports that the evaluation engine aborted a
// predictive-function evaluation because its partial lower bound 2^d·(Σζ)/N
// exceeded the search incumbent: the candidate set is provably worse than
// the best one already found, and the remainder of its sample was skipped.
type EvalPruned struct {
	// Job is the reporting job's ID; Member the 0-based fleet member whose
	// evaluation was pruned (0 for non-fleet jobs).
	Job    string `json:"job"`
	Member int    `json:"member,omitempty"`
	// Vars is the pruned decomposition set, sorted by variable index.
	Vars []Var `json:"vars"`
	// LowerBound is the certified lower bound on F that triggered the
	// prune; Incumbent is the best F it was compared against.
	LowerBound float64 `json:"lower_bound"`
	Incumbent  float64 `json:"incumbent"`
	// SamplesSolved of SamplesPlanned subproblems were solved to completion
	// before the abort.
	SamplesSolved  int `json:"samples_solved"`
	SamplesPlanned int `json:"samples_planned"`
}

// EventKind implements Event.
func (EvalPruned) EventKind() string { return "eval_pruned" }

// CacheHit reports that a predictive-function evaluation was served from
// the session's cross-search F-cache without solving any subproblem.
type CacheHit struct {
	// Job is the reporting job's ID; Member the 0-based fleet member whose
	// evaluation was served from the cache (0 for non-fleet jobs).
	Job    string `json:"job"`
	Member int    `json:"member,omitempty"`
	// Vars is the memoized decomposition set, sorted by variable index.
	Vars []Var `json:"vars"`
	// Value is the cached F value (a lower bound for entries memoized from
	// pruned evaluations, which are served only when they still prove the
	// point worse than the search incumbent).
	Value float64 `json:"value"`
	// Pruned marks lower-bound entries.
	Pruned bool `json:"pruned,omitempty"`
}

// EventKind implements Event.
func (CacheHit) EventKind() string { return "cache_hit" }

// EventMember implements MemberEvent for the per-member event types.
func (e SampleProgress) EventMember() int { return e.Member }

// EventMember implements MemberEvent.
func (e SearchVisit) EventMember() int { return e.Member }

// EventMember implements MemberEvent.
func (e EvalPruned) EventMember() int { return e.Member }

// EventMember implements MemberEvent.
func (e CacheHit) EventMember() int { return e.Member }

// NeighborhoodDone reports one completed neighbourhood pass of a search
// running with Policy.MaxConcurrentEvals ≥ 1 (the neighbourhood-parallel
// scheduler): a whole tabu neighbourhood, or one speculative wave of the
// simulated annealing.  Sequential searches (MaxConcurrentEvals == 0) do
// not emit it.
type NeighborhoodDone struct {
	// Job is the reporting job's ID; Member the 0-based fleet member whose
	// search completed the pass (0 for non-fleet jobs).
	Job    string `json:"job"`
	Member int    `json:"member,omitempty"`
	// Center is the pass's neighbourhood centre, sorted by variable index;
	// Radius its Hamming radius.
	Center []Var `json:"center"`
	Radius int   `json:"radius"`
	// Candidates is the number of candidates submitted to the scheduler;
	// Evaluated how many were freshly evaluated, Pruned how many of those
	// the incumbent bound cut short, and Cancelled how many were discarded
	// unprocessed when the pass's outcome was decided early.
	Candidates int `json:"candidates"`
	Evaluated  int `json:"evaluated"`
	Pruned     int `json:"pruned,omitempty"`
	Cancelled  int `json:"cancelled,omitempty"`
	// Improved reports whether the pass improved the search's best value,
	// which BestValue reports as of the end of the pass.
	Improved  bool    `json:"improved,omitempty"`
	BestValue float64 `json:"best_value"`
	// Width is the scheduler's in-flight evaluation cap for the pass.
	Width int `json:"width"`
}

// EventKind implements Event.
func (NeighborhoodDone) EventKind() string { return "neighborhood_done" }

// EventMember implements MemberEvent.
func (e NeighborhoodDone) EventMember() int { return e.Member }

// FleetMemberDone reports that one member of a fleet job finished its
// search; the fleet job itself keeps running until every member is done
// (or the fleet-wide early stop cancels the rest).
type FleetMemberDone struct {
	// Job is the reporting fleet job's ID; Member the finished member's
	// 0-based index.
	Job    string `json:"job"`
	Member int    `json:"member"`
	// Method is the member's search method ("simulated annealing" or
	// "tabu search").
	Method string `json:"method"`
	// BestVars and BestValue are the member's best decomposition set and
	// its F value; Evaluations the member's objective evaluation count.
	BestVars    []Var   `json:"best_vars"`
	BestValue   float64 `json:"best_value"`
	Evaluations int     `json:"evaluations"`
	// Stop is the member's stop reason.
	Stop string `json:"stop"`
}

// EventKind implements Event.
func (FleetMemberDone) EventKind() string { return "fleet_member_done" }

// EventMember implements MemberEvent.
func (e FleetMemberDone) EventMember() int { return e.Member }

// IncumbentImproved reports that a fleet member lowered the fleet's global
// shared incumbent: the new best F value immediately tightens the pruning
// bound of every other member's evaluations.  Events arrive in improvement
// order, so Value is strictly decreasing within one fleet job's stream.
type IncumbentImproved struct {
	// Job is the reporting fleet job's ID; Member the improving member's
	// 0-based index.
	Job    string `json:"job"`
	Member int    `json:"member"`
	// Vars is the improving decomposition set; Value its F value, the new
	// fleet-wide incumbent.
	Vars  []Var   `json:"vars"`
	Value float64 `json:"value"`
}

// EventKind implements Event.
func (IncumbentImproved) EventKind() string { return "incumbent_improved" }

// EventMember implements MemberEvent.
func (e IncumbentImproved) EventMember() int { return e.Member }

// WorkerJoined reports that a remote worker registered with the session's
// cluster leader while the job was running (see Session.PublishWorkerJoined).
type WorkerJoined struct {
	// Job is the receiving job's ID.
	Job string `json:"job"`
	// Worker is the worker's self-reported name; Slots its solving capacity.
	Worker string `json:"worker"`
	Slots  int    `json:"slots"`
}

// EventKind implements Event.
func (WorkerJoined) EventKind() string { return "worker_joined" }

// WorkerLost reports that a remote worker was declared lost while the job
// was running; its in-flight subproblems were requeued onto the remaining
// workers.
type WorkerLost struct {
	// Job is the receiving job's ID.
	Job string `json:"job"`
	// Worker is the lost worker's name; Requeued how many of its in-flight
	// subproblems were requeued.
	Worker   string `json:"worker"`
	Requeued int    `json:"requeued"`
}

// EventKind implements Event.
func (WorkerLost) EventKind() string { return "worker_lost" }

// TaskStolen reports that the cluster leader revoked queued (not yet
// started) subproblems from a backlogged worker and reassigned them to a
// drained one (see Session.PublishTaskStolen); emitted only when work
// stealing is enabled.  Stolen subproblems are still solved exactly once,
// so the event signals rebalancing, not rework.
type TaskStolen struct {
	// Job is the receiving job's ID.
	Job string `json:"job"`
	// Worker is the backlogged worker the tasks were revoked from; Tasks
	// how many were moved.
	Worker string `json:"worker"`
	Tasks  int    `json:"tasks"`
}

// EventKind implements Event.
func (TaskStolen) EventKind() string { return "task_stolen" }

// SpeculationWon reports that a speculatively duplicated subproblem was won
// by its duplicate copy: the copy dispatched onto an idle slot finished
// before the original, whose solve was aborted (see
// Session.PublishSpeculationWon).  Emitted only when speculative straggler
// re-dispatch is enabled.
type SpeculationWon struct {
	// Job is the receiving job's ID.
	Job string `json:"job"`
	// Worker is the worker whose duplicate copy delivered the winning
	// result; Tasks how many speculated subproblems it won (currently
	// always 1 per event).
	Worker string `json:"worker"`
	Tasks  int    `json:"tasks"`
}

// EventKind implements Event.
func (SpeculationWon) EventKind() string { return "speculation_won" }

// Done is the final event of every job's stream: the job finished, failed
// or was cancelled.  Exactly one Done is emitted per job and nothing
// follows it.
type Done struct {
	// Job is the finished job's ID.
	Job string `json:"job"`
	// Err is the job's error message, empty on success.  A cancelled
	// estimation that still produced a partial result carries both the
	// context error here and the partial result on the job.
	Err string `json:"err,omitempty"`
	// Cancelled reports whether the job ended because its context was
	// cancelled (Job.Cancel, session close, or a parent context).
	Cancelled bool `json:"cancelled"`
}

// EventKind implements Event.
func (Done) EventKind() string { return "done" }

// eventLog is a job's append-only event history plus the subscription
// machinery: every subscriber replays the log from the start and then
// follows live appends, so late subscribers (e.g. an HTTP client attaching
// after the job finished) still observe the full ordered stream including
// the terminal Done.  Appending never blocks on subscribers.
type eventLog struct {
	mu     sync.Mutex
	events []Event // guarded by mu
	done   bool    // guarded by mu
	// change is closed and replaced whenever events grow or done flips;
	// subscribers wait on it instead of polling.
	change chan struct{} // guarded by mu
}

func newEventLog() *eventLog {
	return &eventLog{change: make(chan struct{})}
}

// append records an event.  Appends after finish are dropped, which is what
// guarantees that nothing follows a job's Done.
func (l *eventLog) append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.events = append(l.events, e)
	close(l.change)
	l.change = make(chan struct{})
}

// finish appends the terminal event and seals the log.
func (l *eventLog) finish(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.events = append(l.events, e)
	l.done = true
	close(l.change)
	// Leave a fresh (never closed) channel so late snapshot calls work.
	l.change = make(chan struct{})
}

// snapshot returns the events from offset onward, whether the log is
// sealed, and a channel that is closed on the next change.
func (l *eventLog) snapshot(offset int) ([]Event, bool, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if offset > len(l.events) {
		offset = len(l.events)
	}
	return l.events[offset:], l.done, l.change
}

// subscribe streams the full ordered event history plus live appends into a
// fresh channel.  The channel is closed after the terminal event has been
// delivered, or early when stop is closed (the stream is then truncated but
// still ordered).  A nil stop never fires, yielding the full stream.
func (l *eventLog) subscribe(stop <-chan struct{}) <-chan Event {
	out := make(chan Event)
	go func() {
		defer close(out)
		offset := 0
		for {
			events, done, change := l.snapshot(offset)
			for _, e := range events {
				select {
				case out <- e:
				case <-stop:
					return
				}
			}
			offset += len(events)
			if done {
				return
			}
			select {
			case <-change:
			case <-stop:
				return
			}
		}
	}()
	return out
}
