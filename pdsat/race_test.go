package pdsat_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/pdsat"
)

// TestSessionConcurrentJobsStress is the race-detector stress test of the
// session layer (CI runs the suite under -race): one session with several
// jobs of every kind in flight at once — estimate, fleet search, direct
// search and a bounded solve — each with competing Subscribe readers (one of
// which detaches mid-stream) while one job is cancelled mid-flight.  The
// assertions are the stream invariants: every job finishes, every surviving
// subscriber observes a stream terminated by exactly one Done, and the
// session stats stay coherent.
func TestSessionConcurrentJobsStress(t *testing.T) {
	inst := testInstance(t, 46, 40, 3)
	def := pdsat.DefaultEvalPolicy()
	cfg := fleetTestConfig(8, &def)
	cfg.Runner.Workers = 4
	s, err := pdsat.NewSession(pdsat.FromInstance(inst), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	jobs := make([]*pdsat.Job, 0, 5)
	submit := func(spec pdsat.JobSpec) *pdsat.Job {
		t.Helper()
		j, err := s.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
		return j
	}

	submit(pdsat.EstimateJob{})
	fleet := submit(pdsat.FleetJob{
		Members:        []pdsat.FleetMemberSpec{{Method: "tabu", Count: 2}, {Method: "sa"}},
		Seed:           7,
		MaxEvaluations: 18,
	})
	if fleet.Kind() != pdsat.JobFleet {
		t.Fatalf("fleet job kind %q", fleet.Kind())
	}
	submit(pdsat.SearchJob{Method: "tabu"})
	victim := submit(pdsat.SolveJob{MaxSubproblems: 4096})
	submit(pdsat.EstimateJob{})

	// Competing readers: two full subscribers and one that detaches early,
	// per job.
	var wg sync.WaitGroup
	for _, j := range jobs {
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(j *pdsat.Job) {
				defer wg.Done()
				var last pdsat.Event
				n := 0
				for e := range j.Events() {
					last = e
					n++
				}
				if _, ok := last.(pdsat.Done); !ok {
					t.Errorf("job %s: stream of %d events did not end with Done (%T)", j.ID(), n, last)
				}
			}(j)
		}
		wg.Add(1)
		go func(j *pdsat.Job) {
			defer wg.Done()
			dctx, cancel := context.WithCancel(ctx)
			ch := j.Subscribe(dctx)
			for i := 0; i < 3; i++ {
				if _, ok := <-ch; !ok {
					break
				}
			}
			cancel() // detach mid-stream; the channel must close promptly
			for range ch {
			}
		}(j)
	}

	// Cancel the solve once it has made some progress.
	wg.Add(1)
	go func() {
		defer wg.Done()
		seen := 0
		for range victim.Subscribe(ctx) {
			seen++
			if seen == 8 {
				victim.Cancel()
			}
		}
	}()

	for _, j := range jobs {
		select {
		case <-j.Done():
		case <-time.After(180 * time.Second):
			t.Fatalf("job %s (%s) did not finish", j.ID(), j.Kind())
		}
	}
	wg.Wait()

	if !victim.Finished() {
		t.Fatal("cancelled solve job not finished")
	}
	for _, j := range jobs {
		if j == victim {
			continue
		}
		if _, err := j.Result(ctx); err != nil {
			t.Fatalf("job %s (%s) failed: %v", j.ID(), j.Kind(), err)
		}
	}
	stats := s.Stats()
	if stats.Evaluations == 0 || stats.SubproblemsSolved == 0 {
		t.Fatalf("session stats empty after five jobs: %+v", stats)
	}
}
