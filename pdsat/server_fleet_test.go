package pdsat_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/paper-repro/pdsat-go/pdsat"
)

// TestServerFleetJob is the HTTP acceptance test of the fleet surface:
// submit a mixed fleet over POST /v1/jobs, wait for it, check the per-member
// rows of the result, and filter the replayed event stream down to one
// member.
func TestServerFleetJob(t *testing.T) {
	inst := testInstance(t, 46, 40, 3)
	def := pdsat.DefaultEvalPolicy()
	s, err := pdsat.NewSession(pdsat.FromInstance(inst), fleetTestConfig(8, &def))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(pdsat.NewServer(s))
	defer ts.Close()

	created := postJSON(t, ts.URL+"/v1/jobs",
		`{"kind":"fleet","members":[{"method":"tabu"},{"method":"sa"}],"seed":5,"max_evaluations":12}`)
	id, _ := created["id"].(string)
	if id == "" || created["kind"] != "fleet" {
		t.Fatalf("fleet submit response: %v", created)
	}

	// Wait for completion via the job's handle (the HTTP status endpoint is
	// polled below for the wire shape).
	j, ok := s.Job(id)
	if !ok {
		t.Fatalf("submitted job %q not in session", id)
	}
	select {
	case <-j.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("fleet job did not finish")
	}

	var status struct {
		State  string `json:"state"`
		Result struct {
			Fleet struct {
				Seed       int64 `json:"seed"`
				BestMember int   `json:"best_member"`
				Members    []struct {
					Member     int     `json:"member"`
					Method     string  `json:"method"`
					EvalSeed   int64   `json:"eval_seed"`
					SearchSeed int64   `json:"search_seed"`
					BestValue  float64 `json:"best_value"`
					Stop       string  `json:"stop"`
				} `json:"members"`
			} `json:"fleet"`
		} `json:"result"`
	}
	getJSON(t, ts.URL+"/v1/jobs/"+id, &status)
	if status.State != "done" {
		t.Fatalf("fleet job state %q", status.State)
	}
	f := status.Result.Fleet
	if f.Seed != 5 || len(f.Members) != 2 || f.BestMember < 0 {
		t.Fatalf("fleet wire result malformed: %+v", f)
	}
	for i, m := range f.Members {
		if m.Member != i || m.Stop == "" {
			t.Fatalf("member row %d malformed: %+v", i, m)
		}
		if m.EvalSeed != pdsat.SubSeed(5, 3*i) || m.SearchSeed != pdsat.SubSeed(5, 3*i+1) {
			t.Fatalf("member %d wire seeds do not follow the SubSeed rule: %+v", i, m)
		}
	}

	// Replay member 1's stream only: every member-tagged event must carry
	// member 1, and the terminal done still arrives.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events?member=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	type line struct {
		Event string `json:"event"`
		Data  struct {
			Member int `json:"member"`
		} `json:"data"`
	}
	var events []line
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, l)
	}
	if len(events) == 0 {
		t.Fatal("filtered stream is empty")
	}
	if events[len(events)-1].Event != "done" {
		t.Fatalf("filtered stream did not end with done but %q", events[len(events)-1].Event)
	}
	memberTagged := 0
	for _, l := range events {
		switch l.Event {
		case "done":
		default:
			if l.Data.Member != 1 {
				t.Fatalf("filtered stream leaked a member-%d %s event", l.Data.Member, l.Event)
			}
			memberTagged++
		}
	}
	if memberTagged == 0 {
		t.Fatal("filtered stream carried no member-1 events")
	}

	// A malformed member filter is a 400.
	bad, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events?member=-1")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad member filter returned %d", bad.StatusCode)
	}
}
